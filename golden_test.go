package dynamips

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"dynamips/internal/experiments"
	"dynamips/internal/obs"
)

// update regenerates the golden corpus:
//
//	go test -run TestGolden -update .
var update = flag.Bool("update", false, "rewrite testdata/golden files")

// goldenConfig is the corpus's pipeline configuration: small enough for
// CI, large enough that every sanitization rule fires and both pipelines
// produce non-trivial reports.
func goldenConfig(workers int, o *obs.Observer) experiments.Config {
	return experiments.Config{
		Seed: 20201201, Hours: 8760, ProbeScale: 0.1,
		CDNScale: 0.05, CDNDays: 60,
		Workers: workers, Obs: o,
	}
}

// goldenAtlasExperiments / goldenCDNExperiments are the corpus's report
// slices: representative, text-stable outputs of each pipeline.
var (
	goldenAtlasExperiments = []string{"table1", "sanitize", "fig1"}
	goldenCDNExperiments   = []string{"globaldur", "fig2"}
)

func goldenPath(name string) string {
	return filepath.Join("testdata", "golden", name)
}

// checkGolden compares got against the named golden file byte-for-byte,
// rewriting the file under -update.
func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := goldenPath(name)
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatalf("creating golden dir: %v", err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatalf("writing %s: %v", path, err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading %s (run 'go test -run TestGolden -update .' to create): %v", path, err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s diverged from golden (%d vs %d bytes); rerun with -update if the change is intended\n--- got ---\n%s",
			name, len(got), len(want), truncateForDiff(got, want))
	}
}

// truncateForDiff renders the first divergent region, not megabytes of
// matching prefix.
func truncateForDiff(got, want []byte) string {
	i := 0
	for i < len(got) && i < len(want) && got[i] == want[i] {
		i++
	}
	lo := max(i-120, 0)
	end := func(b []byte) int { return min(i+200, len(b)) }
	return fmt.Sprintf("first divergence at byte %d\ngot:  %q\nwant: %q", i, got[lo:end(got)], want[lo:end(want)])
}

// TestGoldenPipeline regenerates the reduced-scale corpus — atlas
// reports, CDN reports, and the observability snapshot — and diffs every
// artifact byte-for-byte against testdata/golden. It also proves the
// acceptance criterion directly: the metrics snapshot from a -workers 1
// build equals the snapshot from a parallel build, byte for byte.
func TestGoldenPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("golden corpus build in -short mode")
	}
	o := obs.NewObserver()
	cfg := goldenConfig(1, o)

	a, err := experiments.BuildAtlas(cfg)
	if err != nil {
		t.Fatalf("BuildAtlas: %v", err)
	}
	var atlasBuf bytes.Buffer
	for _, name := range goldenAtlasExperiments {
		fmt.Fprintf(&atlasBuf, "==== %s ====\n", name)
		if err := experiments.RunAtlasExperiment(name, &atlasBuf, a); err != nil {
			t.Fatalf("atlas experiment %s: %v", name, err)
		}
		fmt.Fprintln(&atlasBuf)
	}
	checkGolden(t, "atlas_report.txt", atlasBuf.Bytes())

	c, err := experiments.BuildCDN(cfg)
	if err != nil {
		t.Fatalf("BuildCDN: %v", err)
	}
	var cdnBuf bytes.Buffer
	for _, name := range goldenCDNExperiments {
		fmt.Fprintf(&cdnBuf, "==== %s ====\n", name)
		if err := experiments.RunCDNExperiment(name, &cdnBuf, c); err != nil {
			t.Fatalf("cdn experiment %s: %v", name, err)
		}
		fmt.Fprintln(&cdnBuf)
	}
	checkGolden(t, "cdn_report.txt", cdnBuf.Bytes())

	goldenSketchCorpus(t, c)

	var metricsBuf bytes.Buffer
	snap := o.Snapshot()
	if err := snap.WriteJSON(&metricsBuf); err != nil {
		t.Fatalf("writing snapshot: %v", err)
	}
	checkGolden(t, "metrics.json", metricsBuf.Bytes())

	// Rebuild both pipelines in parallel: the datasets, reports, and the
	// whole metrics snapshot must be unchanged.
	o2 := obs.NewObserver()
	cfg2 := goldenConfig(8, o2)
	if _, err := experiments.BuildAtlas(cfg2); err != nil {
		t.Fatalf("parallel BuildAtlas: %v", err)
	}
	if _, err := experiments.BuildCDN(cfg2); err != nil {
		t.Fatalf("parallel BuildCDN: %v", err)
	}
	var metrics2 bytes.Buffer
	snap2 := o2.Snapshot()
	if err := snap2.WriteJSON(&metrics2); err != nil {
		t.Fatalf("writing parallel snapshot: %v", err)
	}
	if !snap.Equal(snap2) || !bytes.Equal(metricsBuf.Bytes(), metrics2.Bytes()) {
		t.Errorf("metrics snapshot depends on worker count:\n%s", truncateForDiff(metrics2.Bytes(), metricsBuf.Bytes()))
	}
}

// TestGoldenStatsRender pins the `dynamips stats` rendering of the golden
// snapshot, so the report format only changes deliberately.
func TestGoldenStatsRender(t *testing.T) {
	f, err := os.Open(goldenPath("metrics.json"))
	if err != nil {
		if *update {
			t.Skip("metrics.json not yet generated; run TestGoldenPipeline with -update first")
		}
		t.Fatalf("opening golden snapshot: %v", err)
	}
	defer f.Close()
	snap, err := obs.ReadSnapshot(f)
	if err != nil {
		t.Fatalf("ReadSnapshot: %v", err)
	}
	var buf bytes.Buffer
	if err := snap.Render(&buf); err != nil {
		t.Fatalf("Render: %v", err)
	}
	checkGolden(t, "stats_report.txt", buf.Bytes())
}

// TestGoldenSnapshotRoundTrip proves the golden snapshot survives a
// decode/encode cycle byte-for-byte — the property `dynamips stats` and
// the bench tooling rely on.
func TestGoldenSnapshotRoundTrip(t *testing.T) {
	b, err := os.ReadFile(goldenPath("metrics.json"))
	if err != nil {
		if *update {
			t.Skip("metrics.json not yet generated")
		}
		t.Fatalf("reading golden snapshot: %v", err)
	}
	snap, err := obs.ReadSnapshot(bytes.NewReader(b))
	if err != nil {
		t.Fatalf("ReadSnapshot: %v", err)
	}
	var out bytes.Buffer
	if err := snap.WriteJSON(&out); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	if !bytes.Equal(b, out.Bytes()) {
		t.Errorf("snapshot round-trip not identity:\n%s", truncateForDiff(out.Bytes(), b))
	}
}
