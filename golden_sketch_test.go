package dynamips

import (
	"bytes"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"dynamips/internal/cdn"
	"dynamips/internal/cdn/stream"
	"dynamips/internal/experiments"
	"dynamips/internal/sketch"
)

// goldenSketchShards is the corpus run's partition width. The merged
// sketch bytes do not depend on it at this scale — the distinct-key
// counts sit inside the Misra-Gries exact regime — and the corpus gate
// proves that by rebuilding at other widths.
const goldenSketchShards = 16

// goldenSketchThreshold is the corpus run's mobile-degree threshold.
// The pipeline default (experiments.MobileDegreeThreshold) sits above
// every /24 degree at golden scale, which would leave dur_mobile empty;
// this value splits the golden degree distribution so both duration
// sketches carry mass.
const goldenSketchThreshold = 100

// goldenSketchProbs is the quantile grid the accuracy report renders.
var goldenSketchProbs = []float64{0.05, 0.25, 0.5, 0.75, 0.95}

// goldenSketchCorpus is the batch-vs-sketch golden gate: it streams the
// golden CDN dataset through the sharded analyzer, renders every sketch
// answer next to the exact batch recomputation into
// testdata/golden/sketch/accuracy.txt, and fails if any answer leaves
// its theoretical bound (rank error ≤ ceil(alpha·n), heavy-hitter error
// ≤ N/k — zero in the exact regime — cardinality within 4·RSE) or if
// the merged bytes change under a different shard/worker split.
func goldenSketchCorpus(t *testing.T, c *experiments.CDNData) {
	t.Helper()
	in := filepath.Join(t.TempDir(), "assocs.csv")
	f, err := os.Create(in)
	if err != nil {
		t.Fatalf("creating corpus CSV: %v", err)
	}
	if err := cdn.WriteCSV(f, c.Dataset.Assocs); err != nil {
		f.Close()
		t.Fatalf("writing corpus CSV: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	rep, err := stream.Analyze(stream.AnalyzeConfig{
		In: in, Shards: goldenSketchShards, Workers: 1,
		Threshold: goldenSketchThreshold,
	})
	if err != nil {
		t.Fatalf("stream.Analyze: %v", err)
	}
	sk := rep.Sketches
	if sk == nil {
		t.Fatal("streaming report carries no sketches")
	}

	// Exact batch state, recomputed from the materialized dataset the
	// batch pipeline already produced. The fixed/mobile split uses the
	// corpus threshold, not c.Mobile's pipeline default.
	mobile := cdn.MobileLabel(c.Dataset.Assocs, goldenSketchThreshold)
	var fixedD, mobileD []float64
	for _, ep := range c.Episodes {
		if mobile[ep.K24] {
			mobileD = append(mobileD, float64(ep.Days()))
		} else {
			fixedD = append(fixedD, float64(ep.Days()))
		}
	}
	deg := map[uint32]map[uint64]bool{}
	rows64 := map[uint64]uint64{}
	for _, a := range c.Dataset.Assocs {
		m := deg[a.K24]
		if m == nil {
			m = map[uint64]bool{}
			deg[a.K24] = m
		}
		m[a.K64] = true
		rows64[a.K64]++
	}
	var degD []float64
	deg24 := map[uint64]uint64{}
	for k24, m := range deg {
		degD = append(degD, float64(len(m)))
		deg24[uint64(k24)] = uint64(len(m))
	}

	var buf bytes.Buffer
	fmt.Fprintf(&buf, "batch-vs-sketch accuracy, golden CDN corpus (shards=%d)\n", goldenSketchShards)
	fmt.Fprintf(&buf, "associations=%d episodes=%d fixed=%d mobile=%d\n\n",
		len(c.Dataset.Assocs), len(c.Episodes), len(fixedD), len(mobileD))
	renderGoldenQuantile(t, &buf, stream.SkDeg24, sk.Quantile(stream.SkDeg24), degD)
	renderGoldenQuantile(t, &buf, stream.SkDurFixed, sk.Quantile(stream.SkDurFixed), fixedD)
	renderGoldenQuantile(t, &buf, stream.SkDurMobile, sk.Quantile(stream.SkDurMobile), mobileD)
	renderGoldenTopK(t, &buf, stream.SkHot24, sk.TopK(stream.SkHot24), deg24)
	renderGoldenTopK(t, &buf, stream.SkHot64, sk.TopK(stream.SkHot64), rows64)
	renderGoldenCard(t, &buf, stream.SkPfx24, sk.Card(stream.SkPfx24), len(deg))
	renderGoldenCard(t, &buf, stream.SkPfx64, sk.Card(stream.SkPfx64), len(rows64))
	checkGolden(t, filepath.Join("sketch", "accuracy.txt"), buf.Bytes())

	// The merged bytes are a pure function of the input multiset: any
	// shard partition and any worker fan-out must reproduce them.
	want := sk.Encode()
	for _, tc := range []struct{ shards, workers int }{{goldenSketchShards, 8}, {5, 2}} {
		again, err := stream.Analyze(stream.AnalyzeConfig{
			In: in, Shards: tc.shards, Workers: tc.workers,
			Threshold: goldenSketchThreshold,
		})
		if err != nil {
			t.Fatalf("shards=%d workers=%d: %v", tc.shards, tc.workers, err)
		}
		if !bytes.Equal(again.Sketches.Encode(), want) {
			t.Errorf("shards=%d workers=%d: merged sketch bytes differ from corpus run", tc.shards, tc.workers)
		}
	}
}

// renderGoldenQuantile writes one quantile sketch's grid (estimate,
// exact value, rank error, bound) and enforces rank error ≤
// ceil(alpha·n) at every probe.
func renderGoldenQuantile(t *testing.T, buf *bytes.Buffer, name string, q *sketch.Quantile, data []float64) {
	t.Helper()
	if q.Count() != uint64(len(data)) {
		t.Errorf("%s: sketch count %d, exact %d", name, q.Count(), len(data))
	}
	sorted := append([]float64(nil), data...)
	sort.Float64s(sorted)
	bound := math.Ceil(stream.SketchAlpha * float64(len(sorted)))
	fmt.Fprintf(buf, "quantile %-10s n=%-6d rank_bound=%.0f\n", name, len(sorted), bound)
	if len(sorted) == 0 {
		fmt.Fprintln(buf, "  (empty)")
		fmt.Fprintln(buf)
		return
	}
	for _, p := range goldenSketchProbs {
		est := q.Query(p)
		exact := 0.0
		if n := len(sorted); n > 0 {
			idx := int(math.Ceil(p*float64(n))) - 1
			exact = sorted[max(idx, 0)]
		}
		rankErr := quantileRankError(sorted, est, p)
		fmt.Fprintf(buf, "  p=%.2f est=%-8g exact=%-8g rank_err=%.0f\n", p, est, exact, rankErr)
		if rankErr > bound {
			t.Errorf("%s p=%.2f: rank error %.0f exceeds bound %.0f", name, p, rankErr, bound)
		}
	}
	fmt.Fprintln(buf)
}

// quantileRankError measures how far est's rank interval in sorted sits
// from the target rank ceil(p·n).
func quantileRankError(sorted []float64, est float64, p float64) float64 {
	lo := sort.SearchFloat64s(sorted, est) + 1
	hi := sort.SearchFloat64s(sorted, math.Nextafter(est, math.Inf(1)))
	if hi < lo {
		hi = lo
	}
	target := math.Ceil(p * float64(len(sorted)))
	switch {
	case float64(lo) > target:
		return float64(lo) - target
	case float64(hi) < target:
		return target - float64(hi)
	}
	return 0
}

// renderGoldenTopK writes one heavy-hitter sketch's head (top entries
// with exact weights) and enforces the exact-regime contract: zero
// slack and per-key estimates equal to the batch truth.
func renderGoldenTopK(t *testing.T, buf *bytes.Buffer, name string, tk *sketch.TopK, exact map[uint64]uint64) {
	t.Helper()
	fmt.Fprintf(buf, "topk     %-10s n=%-6d keys=%d slack=%d\n", name, tk.N(), len(exact), tk.Slack())
	if tk.Slack() != 0 {
		t.Errorf("%s: slack %d in exact regime", name, tk.Slack())
	}
	for _, e := range tk.Top(5) {
		fmt.Fprintf(buf, "  key=%#016x count=%-8d exact=%d\n", e.Key, e.Count, exact[e.Key])
		if e.Count != exact[e.Key] {
			t.Errorf("%s key %#x: estimate %d, exact %d", name, e.Key, e.Count, exact[e.Key])
		}
	}
	fmt.Fprintln(buf)
}

// renderGoldenCard writes one cardinality sketch's estimate next to the
// exact distinct count and enforces relative error ≤ 4·RSE.
func renderGoldenCard(t *testing.T, buf *bytes.Buffer, name string, c *sketch.Card, exact int) {
	t.Helper()
	rel := math.Abs(c.Estimate()-float64(exact)) / float64(exact)
	bound := 4 * c.RSE()
	fmt.Fprintf(buf, "card     %-10s est=%.1f exact=%d rel_err=%.4f bound=%.4f\n",
		name, c.Estimate(), exact, rel, bound)
	if rel > bound {
		t.Errorf("%s: estimate %.1f for %d distinct, relative error %.4f > %.4f",
			name, c.Estimate(), exact, rel, bound)
	}
}
