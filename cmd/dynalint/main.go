// Command dynalint runs the repository's static-analysis suite: stdlib-only
// analyzers enforcing determinism (injected clocks, seeded RNGs, map-order
// independence), netip hygiene, error wrapping, lock discipline (no copies,
// correctly scoped acquire/release), goroutine discipline, and zero-alloc
// hot paths across every package of the module. See README.md "Static
// analysis & determinism conventions".
//
// Usage:
//
//	go run ./cmd/dynalint ./...
//	go run ./cmd/dynalint -rules determinism,netip ./internal/dhcp4
//	go run ./cmd/dynalint -json -baseline .dynalint-baseline.json ./...
//
// Exit codes: 0 clean, 1 findings reported, 2 usage or load error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"dynamips/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("dynalint", flag.ContinueOnError)
	rules := fs.String("rules", "", "comma-separated analyzer names to run (default: all)")
	asJSON := fs.Bool("json", false, "emit diagnostics as a JSON array")
	list := fs.Bool("list", false, "list analyzers and exit")
	rootFlag := fs.String("root", "", "load this directory as the module root instead of the enclosing go.mod (e.g. a lint fixture tree)")
	simPkgs := fs.String("simpkgs", "", "comma-separated import-path suffixes to treat as simulation packages (default: the repo's analysis core)")
	baselinePath := fs.String("baseline", "", "JSON baseline file; findings matching an entry (path+rule+message, line-insensitive) are suppressed")
	writeBaseline := fs.String("write-baseline", "", "write current findings to this file as a baseline and exit clean")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: dynalint [flags] [./... | dirs]\n\nAnalyzers:\n")
		for _, a := range lint.Analyzers() {
			fmt.Fprintf(fs.Output(), "  %-12s %s\n", a.Name, a.Doc)
		}
		fmt.Fprintf(fs.Output(), "\nFlags:\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	root := *rootFlag
	if root == "" {
		var err error
		root, err = moduleRoot()
		if err != nil {
			fmt.Fprintln(os.Stderr, "dynalint:", err)
			return 2
		}
	}
	cfg := lint.DefaultConfig()
	if *simPkgs != "" {
		cfg.SimPackages = strings.Split(*simPkgs, ",")
	}
	if *rules != "" {
		cfg.Rules = strings.Split(*rules, ",")
		known := make(map[string]bool)
		for _, a := range lint.Analyzers() {
			known[a.Name] = true
		}
		for _, r := range cfg.Rules {
			if !known[r] {
				fmt.Fprintf(os.Stderr, "dynalint: unknown rule %q (have %s)\n", r, strings.Join(lint.AnalyzerNames(), ", "))
				return 2
			}
		}
	}

	mod, err := lint.LoadModule(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dynalint:", err)
		return 2
	}
	diags := lint.Run(mod, cfg, lint.Analyzers())
	diags, err = filterToPatterns(diags, root, fs.Args())
	if err != nil {
		fmt.Fprintln(os.Stderr, "dynalint:", err)
		return 2
	}

	if *writeBaseline != "" {
		if err := writeBaselineFile(*writeBaseline, diags); err != nil {
			fmt.Fprintln(os.Stderr, "dynalint:", err)
			return 2
		}
		fmt.Fprintf(os.Stderr, "dynalint: wrote %d finding(s) to %s\n", len(diags), *writeBaseline)
		return 0
	}
	if *baselinePath != "" {
		base, err := lint.ReadBaseline(*baselinePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dynalint:", err)
			return 2
		}
		var stale []lint.Diagnostic
		diags, stale = lint.ApplyBaseline(diags, base)
		for _, s := range stale {
			fmt.Fprintf(os.Stderr, "dynalint: stale baseline entry (debt paid — remove it): %s\n", s)
		}
	}

	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []lint.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintln(os.Stderr, "dynalint:", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		if !*asJSON {
			fmt.Fprintf(os.Stderr, "dynalint: %d finding(s)\n", len(diags))
		}
		return 1
	}
	return 0
}

// writeBaselineFile records the current findings as a JSON baseline.
func writeBaselineFile(path string, diags []lint.Diagnostic) error {
	if diags == nil {
		diags = []lint.Diagnostic{}
	}
	data, err := json.MarshalIndent(diags, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// moduleRoot walks up from the working directory to the enclosing go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// filterToPatterns narrows diagnostics to the requested package patterns:
// "./..." (everything, the default), "./dir/..." (a subtree), or "./dir"
// (one directory).
func filterToPatterns(diags []lint.Diagnostic, root string, patterns []string) ([]lint.Diagnostic, error) {
	if len(patterns) == 0 {
		return diags, nil
	}
	wd, err := os.Getwd()
	if err != nil {
		return nil, err
	}
	type match struct {
		prefix  string // relative to module root, "" for whole module
		subtree bool
	}
	var matches []match
	for _, pat := range patterns {
		subtree := false
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			subtree = true
			pat = rest
			if pat == "." {
				return diags, nil // ./... covers the whole module
			}
		}
		abs, err := filepath.Abs(filepath.Join(wd, pat))
		if err != nil {
			return nil, err
		}
		rel, err := filepath.Rel(root, abs)
		if err != nil || strings.HasPrefix(rel, "..") {
			return nil, fmt.Errorf("pattern %q is outside the module", pat)
		}
		if rel == "." {
			rel = ""
		}
		matches = append(matches, match{prefix: filepath.ToSlash(rel), subtree: subtree})
	}
	var out []lint.Diagnostic
	for _, d := range diags {
		dir := filepath.ToSlash(filepath.Dir(d.Path))
		if dir == "." {
			dir = ""
		}
		for _, m := range matches {
			if dir == m.prefix || (m.subtree && strings.HasPrefix(dir, m.prefix+"/")) ||
				(m.subtree && m.prefix == "" && dir != "") {
				out = append(out, d)
				break
			}
		}
	}
	return out, nil
}
