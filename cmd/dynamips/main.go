// Command dynamips drives the DynamIPs reproduction pipeline:
//
//	dynamips profiles                      list the built-in ISP profiles
//	dynamips gen atlas [flags]             generate a sanitizable IP-echo dataset (JSONL on stdout)
//	dynamips gen cdn [flags]               generate CDN association tuples (CSV on stdout)
//	dynamips analyze [flags] <series.jsonl>  sanitize + analyze an IP-echo dataset
//	dynamips experiment <name|all> [flags] regenerate a paper table/figure
//	dynamips resume <dir>                  resume an interrupted checkpointed run
//	dynamips serve-echo [-listen addr]     run the IP echo HTTP server
//	dynamips serve-bng [flags]             run the assignment-plane BNG daemon
//	dynamips stats <metrics.json>          render a -metrics dump as a report
//	dynamips watch [flags]                 follow live sketch summaries from a daemon or spill dir
//
// Every generator is seeded; the same flags reproduce identical output.
// Runs started with -checkpoint DIR journal completed work units and can
// be resumed after a crash with 'dynamips resume DIR'; the resumed output
// is byte-identical to an uninterrupted run. 'gen cdn' and 'analyze-cdn'
// take -stream to run the sharded streaming pipeline in bounded memory
// (with -shards and -spill-dir controlling the partition width and
// scratch location); streaming output is byte-identical to the
// in-memory path.
package main

import (
	"flag"
	"fmt"
	"os"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "profiles":
		err = cmdProfiles(os.Args[2:])
	case "gen":
		err = cmdGen(os.Args[2:])
	case "analyze":
		err = cmdAnalyze(os.Args[2:])
	case "analyze-cdn":
		err = cmdAnalyzeCDN(os.Args[2:])
	case "experiment":
		err = cmdExperiment(os.Args[2:])
	case "resume":
		err = cmdResume(os.Args[2:])
	case "serve-echo":
		err = cmdServeEcho(os.Args[2:])
	case "serve-bng":
		err = cmdServeBNG(os.Args[2:])
	case "stats":
		err = cmdStats(os.Args[2:])
	case "watch":
		err = cmdWatch(os.Args[2:])
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "dynamips: unknown command %q\n\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "dynamips:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `usage: dynamips <command> [flags]

commands:
  profiles                 list built-in ground-truth ISP profiles
  gen atlas|cdn            generate synthetic datasets (stdout)
  analyze <series.jsonl>   sanitize and analyze an IP-echo dataset
  analyze-cdn <assoc.csv>  rerun the CDN analyses on an association file
  experiment <name|all>    regenerate a paper table/figure
  resume <dir>             resume an interrupted checkpointed run
  serve-echo               run the IP echo HTTP server
  serve-bng                run the assignment-plane BNG daemon (paginated
                           /sessions /pools /stats API, checkpointed churn)
  stats <metrics.json>     render a -metrics snapshot as a per-stage report
  watch                    follow live online summaries: -bng URL polls a
                           serve-bng daemon's /sketch endpoint, -spill DIR
                           tails a streaming run's spill directory
                           (-interval, -once)

every command takes -metrics FILE (dump pipeline counters and virtual-time
span timings as JSON); long-running commands take -pprof ADDR (serve
net/http/pprof on ADDR for the run's duration); gen cdn and analyze-cdn
take -stream (sharded streaming pipeline, bounded memory, byte-identical
output) with -shards N and -spill-dir DIR; gen atlas and gen cdn take
-bng URL to pull ground truth from a live serve-bng daemon

run 'dynamips <command> -h' for command flags
`)
}

func newFlagSet(name string) *flag.FlagSet {
	fs := flag.NewFlagSet(name, flag.ContinueOnError)
	fs.SetOutput(os.Stderr)
	return fs
}
