package main

import (
	"fmt"
	"io"
	"net/netip"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"dynamips/internal/bng"
	"dynamips/internal/cdn/stream"
	"dynamips/internal/sketch"
)

// cmdWatch follows live online summaries: with -bng it polls a running
// serve-bng daemon's /sketch endpoint; with -spill it tails a streaming
// pipeline's spill directory, folding whatever complete chunks the
// in-flight run has journaled so far. Each tick renders one snapshot to
// stdout. -once renders a single snapshot and exits (the CI smoke
// mode); otherwise the watch re-polls every -interval until SIGTERM.
func cmdWatch(args []string) error {
	fs := newFlagSet("watch")
	bngURL := fs.String("bng", "", "poll the live serve-bng daemon at this URL")
	spill := fs.String("spill", "", "tail this streaming-pipeline spill directory")
	interval := fs.Duration("interval", 2*time.Second, "poll interval")
	once := fs.Bool("once", false, "render one snapshot and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("watch: unexpected arguments %q", fs.Args())
	}
	if (*bngURL == "") == (*spill == "") {
		return fmt.Errorf("watch: exactly one of -bng or -spill is required")
	}
	var tick func() error
	if *bngURL != "" {
		cl := bng.NewClient(*bngURL, nil)
		tick = func() error {
			v, err := cl.Sketch()
			if err != nil {
				return err
			}
			return renderBNGSketch(os.Stdout, v)
		}
	} else {
		dir := *spill
		tick = func() error {
			s, n, err := stream.TailSpillDir(dir)
			if err != nil {
				return err
			}
			return renderTailSketch(os.Stdout, s, n)
		}
	}
	if err := tick(); err != nil {
		return err
	}
	if *once {
		return nil
	}
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sig)
	for {
		select {
		case <-sig:
			return nil
		case <-time.After(*interval):
			if err := tick(); err != nil {
				return err
			}
		}
	}
}

// watchProbs is the quantile grid watch snapshots print.
var watchProbs = []float64{0.5, 0.9, 0.99}

// fmtSketchKey renders a heavy-hitter key in the sketch's own address
// space: /24 sketches carry the address's top 24 bits, /64 sketches the
// prefix's high 64 bits; anything else prints as hex.
func fmtSketchKey(name string, key uint64) string {
	switch {
	case strings.HasSuffix(name, "24"):
		a := netip.AddrFrom4([4]byte{byte(key >> 16), byte(key >> 8), byte(key), 0})
		return a.String() + "/24"
	case strings.HasSuffix(name, "64"):
		var b [16]byte
		for i := 0; i < 8; i++ {
			b[i] = byte(key >> (56 - 8*i))
		}
		return netip.PrefixFrom(netip.AddrFrom16(b), 64).String()
	default:
		return fmt.Sprintf("%#x", key)
	}
}

// renderBNGSketch prints one /sketch view snapshot.
func renderBNGSketch(w io.Writer, v bng.SketchView) error {
	fmt.Fprintf(w, "watch: bng virtual hour %d\n", v.VirtualHours)
	for _, s := range v.Sketches {
		switch s.Kind {
		case "quantile":
			fmt.Fprintf(w, "  %-10s n=%d", s.Name, s.Count)
			for _, qp := range s.Quantiles {
				for _, p := range watchProbs {
					if qp.P == p {
						fmt.Fprintf(w, " p%02.0f=%.2f", p*100, qp.V)
					}
				}
			}
			fmt.Fprintln(w)
		case "topk":
			fmt.Fprintf(w, "  %-10s n=%d slack=%d top:", s.Name, s.N, s.Slack)
			for i, e := range s.Top {
				if i == 3 {
					break
				}
				fmt.Fprintf(w, " %s=%d", fmtSketchKey(s.Name, e.Key), e.Count)
			}
			fmt.Fprintln(w)
		case "card":
			fmt.Fprintf(w, "  %-10s ~%.0f distinct (rse %.2f%%)\n", s.Name, s.Estimate, 100*s.RSE)
		}
	}
	return nil
}

// renderTailSketch prints one spill-tail snapshot folded from the
// chunks on disk so far.
func renderTailSketch(w io.Writer, s *sketch.Set, records int64) error {
	fmt.Fprintf(w, "watch: spill tail, %d association rows folded\n", records)
	for _, name := range s.Names() {
		switch s.KindOf(name) {
		case sketch.KindTopK:
			tk := s.TopK(name)
			fmt.Fprintf(w, "  %-10s n=%d slack=%d top:", name, tk.N(), tk.Slack())
			for _, e := range tk.Top(3) {
				fmt.Fprintf(w, " %s=%d", fmtSketchKey(name, e.Key), e.Count)
			}
			fmt.Fprintln(w)
		case sketch.KindCard:
			c := s.Card(name)
			fmt.Fprintf(w, "  %-10s ~%.0f distinct (rse %.2f%%)\n", name, c.Estimate(), 100*c.RSE())
		case sketch.KindQuantile:
			q := s.Quantile(name)
			fmt.Fprintf(w, "  %-10s n=%d", name, q.Count())
			for _, p := range watchProbs {
				if q.Count() > 0 {
					fmt.Fprintf(w, " p%02.0f=%.2f", p*100, q.Query(p))
				}
			}
			fmt.Fprintln(w)
		}
	}
	return nil
}
