package main

import (
	"context"
	"fmt"
	"io"
	"net/netip"
	"os"
	"os/signal"
	"syscall"
	"time"

	"dynamips/internal/bng"
	"dynamips/internal/cdn"
	"dynamips/internal/isp"
	"dynamips/internal/rir"
)

// bngRoundHook, when non-nil, runs after every churn round with the
// daemon's virtual hour — the crash test's deterministic injection
// point for delivering SIGTERM mid-churn.
var bngRoundHook func(hours int64)

// cmdServeBNG runs the persistent assignment-plane daemon: a sharded
// subscriber population churning lease renewals, renumberings and
// flaps in virtual time, with an optional read-only HTTP API. With
// -listen empty the daemon runs headless: it churns to -churn-hours,
// writes -stats-out/-snapshot-out, and exits. With -listen set it
// serves the API while churning and keeps serving after the churn
// target until SIGTERM. Either way SIGTERM drains at a round boundary,
// persists the checkpoint watermark and outputs, and exits cleanly; a
// restart with the same flags resumes by deterministic replay.
func cmdServeBNG(args []string) error {
	fs := newFlagSet("serve-bng")
	subscribers := fs.Int("subscribers", 100_000, "total subscribers across the built-in groups")
	seed := fs.Uint64("seed", 1, "master seed")
	shardBits := fs.Int("shards", 8, "shard bits: the session table and event loop use 2^n stripes")
	workers := fs.Int("workers", 0, "shard fan-out per round (0 = GOMAXPROCS)")
	churnHours := fs.Int64("churn-hours", 24, "virtual hours of churn to run")
	roundHours := fs.Int64("round-hours", 1, "round granularity: stats/watermark refresh every n virtual hours")
	listen := fs.String("listen", "", "HTTP API listen address; empty runs headless")
	ckpt := fs.String("checkpoint", "", "checkpoint directory: persist a replay watermark every round and resume from it on start")
	statsOut := fs.String("stats-out", "", "write the final /stats JSON to this file (atomic)")
	snapOut := fs.String("snapshot-out", "", "write the final session-table snapshot to this file (atomic)")
	grace := fs.Duration("grace", 5*time.Second, "graceful API shutdown drain deadline")
	metrics := fs.String("metrics", "", "dump daemon counters (JSON) to this file at exit")
	pprofAddr := fs.String("pprof", "", "serve net/http/pprof on this address for the run's duration")
	scenario := fs.String("scenario", "", "operator-event scenario, e.g. 'failover-at=12:36,policy=renumber,coa-mean=72,relay-hops=2,relay-drop=0.02'")
	standby := fs.String("standby", "", "run as warm standby tracking the active daemon at this URL; promote after -max-misses failed polls")
	poll := fs.Duration("poll", time.Second, "standby: interval between polls of the active daemon")
	maxMisses := fs.Int("max-misses", 3, "standby: consecutive failed polls before declaring the active dead and promoting")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("serve-bng: unexpected arguments %q", fs.Args())
	}
	or, err := startObs(*metrics, *pprofAddr)
	if err != nil {
		return err
	}
	cfg := bng.DefaultConfig(*subscribers, *seed)
	cfg.ShardBits = *shardBits
	cfg.Scenario, err = bng.ParseScenario(*scenario)
	if err != nil {
		return err
	}
	role := "active"
	if *standby != "" {
		role = "standby"
	}
	d, err := bng.New(cfg, bng.Options{
		Workers:       *workers,
		RoundHours:    *roundHours,
		CheckpointDir: *ckpt,
		Obs:           or.o,
		Role:          role,
	})
	if err != nil {
		return err
	}

	// Register the signal handler before any churn so a SIGTERM during
	// replay or the first round is never lost.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sig)

	if resumed, err := d.Resume(); err != nil {
		return err
	} else if resumed > 0 {
		logf("serve-bng: resumed by replay to virtual hour %d", resumed)
	}

	var api *bng.APIServer
	if *listen != "" {
		api, err = d.Serve(*listen)
		if err != nil {
			return err
		}
		logf("serve-bng: %d subscribers in %d groups; API on http://%s (/sessions /pools /stats /ha /snapshot /sketch)",
			cfg.Subscribers(), len(cfg.Groups), api.Addr())
	}

	interrupted := false
	if *standby != "" {
		interrupted, err = runStandby(d, *standby, *churnHours, *poll, *maxMisses, sig)
		if err != nil {
			return err
		}
	} else {
		failovers := 0
	churn:
		for d.Hours() < *churnHours {
			next := d.Hours() + *roundHours
			if next > *churnHours {
				next = *churnHours
			}
			if err := d.Churn(next); err != nil {
				return err
			}
			if v := d.Stats(); v.Failovers > failovers {
				failovers = v.Failovers
				logf("serve-bng: failover #%d fired at virtual hour %d (policy %s)",
					failovers, v.LastFailoverHour, cfg.Scenario.EffectivePolicy())
			}
			if bngRoundHook != nil {
				bngRoundHook(d.Hours())
			}
			select {
			case s := <-sig:
				logf("serve-bng: received %v at virtual hour %d; draining", s, d.Hours())
				interrupted = true
				break churn
			default:
			}
		}
	}

	if api != nil && !interrupted {
		v := d.Stats()
		logf("serve-bng: churned to hour %d (%d active sessions, %d events); serving until SIGTERM",
			v.VirtualHours, v.ActiveSessions, v.Events.Events)
		s := <-sig
		logf("serve-bng: received %v; draining", s)
	}

	if *statsOut != "" {
		if err := writeOutput(*statsOut, d.WriteStats); err != nil {
			return err
		}
	}
	if *snapOut != "" {
		if err := writeOutput(*snapOut, func(w io.Writer) error {
			return d.WriteSnapshot(w)
		}); err != nil {
			return err
		}
	}
	if api != nil {
		ctx, cancel := context.WithTimeout(context.Background(), *grace)
		defer cancel()
		if err := api.Shutdown(ctx); err != nil {
			return err
		}
	}
	return or.finish()
}

// runStandby tracks a remote active daemon: every poll interval it
// pulls the active's /ha view, replays its own deterministic copy of
// the same Config to the active's virtual hour, and cross-checks the
// table hash plus the codec-level /snapshot stream (warm state sync
// with split-brain detection). After maxMisses consecutive failed polls
// it declares the active dead and promotes itself: the replayed state
// already reflects the scenario's recovery policy, so promotion churns
// straight on to churnHours as the new active. Returns interrupted=true
// when a signal ended the watch before promotion.
func runStandby(d *bng.Daemon, activeURL string, churnHours int64, poll time.Duration, maxMisses int, sig <-chan os.Signal) (bool, error) {
	cl := bng.NewClient(activeURL, nil).WithRetry(0, 0)
	logf("serve-bng: standby tracking %s (poll %v, promote after %d misses)", activeURL, poll, maxMisses)
	misses := 0
	for misses < maxMisses {
		select {
		case s := <-sig:
			logf("serve-bng: standby received %v at virtual hour %d; draining", s, d.Hours())
			return true, nil
		case <-time.After(poll):
		}
		ha, err := cl.HA()
		if err != nil {
			misses++
			logf("serve-bng: standby poll miss %d/%d: %v", misses, maxMisses, err)
			continue
		}
		misses = 0
		if ha.VirtualHours > d.Hours() {
			if err := d.Churn(ha.VirtualHours); err != nil {
				return false, err
			}
		}
		if d.Hours() != ha.VirtualHours {
			continue // the active moved on mid-poll; re-check next round
		}
		if my := d.Stats().TableHash; my != ha.TableHash {
			return false, fmt.Errorf("serve-bng: standby split brain at hour %d: active table %s, standby %s", d.Hours(), ha.TableHash, my)
		}
		// Codec-level sync: pull the active's snapshot stream and verify
		// it decodes to the standby's exact session records.
		recs, err := cl.Snapshot()
		if err != nil {
			misses++
			logf("serve-bng: standby snapshot miss %d/%d: %v", misses, maxMisses, err)
			continue
		}
		mine := d.Table().SnapshotSorted()
		if len(recs) != len(mine) {
			return false, fmt.Errorf("serve-bng: standby split brain: active snapshot has %d sessions, standby %d", len(recs), len(mine))
		}
		for i := range recs {
			if recs[i] != mine[i] {
				return false, fmt.Errorf("serve-bng: standby split brain at key %#x", recs[i].Key)
			}
		}
	}
	d.SetRole("active")
	logf("serve-bng: active lost; promoting standby at virtual hour %d (policy %s)",
		d.Hours(), d.Config().Scenario.EffectivePolicy())
	if d.Hours() < churnHours {
		if err := d.Churn(churnHours); err != nil {
			return false, err
		}
	}
	return false, nil
}

// bngBaseASN numbers remote-daemon groups into the private ASN range:
// group i is announced as 64512+i.
const bngBaseASN = 64512

// bngGroupPools extracts one group's (v4 pool, v6 pool, delegated
// length, v4 lease hours) from a daemon's /pools rows.
func bngGroupPools(pools []bng.PoolStats, group string) (v4, v6 netip.Prefix, delegatedLen int, leaseHours uint32, err error) {
	for _, p := range pools {
		if p.Group != group {
			continue
		}
		pfx, perr := netip.ParsePrefix(p.Network)
		if perr != nil {
			return v4, v6, 0, 0, fmt.Errorf("daemon pool %s/%s: bad network %q: %w", p.Group, p.Profile, p.Network, perr)
		}
		switch p.Family {
		case 4:
			v4 = pfx
			leaseHours = p.LeaseSeconds / 3600
			if leaseHours == 0 {
				leaseHours = 1
			}
		case 6:
			v6 = pfx
			delegatedLen = p.DelegatedLen
		}
	}
	if !v4.IsValid() || !v6.IsValid() {
		return v4, v6, 0, 0, fmt.Errorf("daemon group %q is missing a pool family (v4=%v v6=%v)", group, v4.IsValid(), v6.IsValid())
	}
	return v4, v6, delegatedLen, leaseHours, nil
}

// bngProfile builds an isp ground-truth profile from a live serve-bng
// daemon's published pool layout, so 'gen atlas -bng' models the
// assignment practice the daemon is actually running. group selects a
// subscriber group by name; empty picks the daemon's first group.
func bngProfile(baseURL, group string) (isp.Profile, error) {
	v, err := bng.NewClient(baseURL, nil).Stats()
	if err != nil {
		return isp.Profile{}, fmt.Errorf("querying daemon at %s: %w", baseURL, err)
	}
	gi := -1
	for i, g := range v.Groups {
		if group == "" || g.Name == group {
			gi = i
			break
		}
	}
	if gi < 0 {
		return isp.Profile{}, fmt.Errorf("daemon at %s has no group %q", baseURL, group)
	}
	g := v.Groups[gi]
	v4, v6, delegatedLen, leaseHours, err := bngGroupPools(v.Pools, g.Name)
	if err != nil {
		return isp.Profile{}, err
	}
	backend := isp.BackendRADIUS
	if g.Backend == bng.BackendDHCP {
		backend = isp.BackendDHCP
	}
	// Bare-/64 delegation is the cellular signature (§4.3).
	mobile := delegatedLen == 64
	return isp.RemoteProfile("bng/"+g.Name, uint32(bngBaseASN+gi), backend,
		[]netip.Prefix{v4}, v6, delegatedLen, leaseHours, mobile)
}

// bngOperators builds a CDN operator set from a live daemon: one
// operator per subscriber group, carved from the group's published
// pools, with multiplexing/association heuristics split on the
// fixed-line vs cellular delegation signature. Registries are Unknown
// — the analyses re-derive them from the prefixes.
func bngOperators(baseURL string) ([]cdn.Operator, error) {
	v, err := bng.NewClient(baseURL, nil).Stats()
	if err != nil {
		return nil, fmt.Errorf("querying daemon at %s: %w", baseURL, err)
	}
	ops := make([]cdn.Operator, 0, len(v.Groups))
	for i, g := range v.Groups {
		v4, v6, delegatedLen, _, err := bngGroupPools(v.Pools, g.Name)
		if err != nil {
			return nil, err
		}
		op := cdn.Operator{
			Name:         "bng/" + g.Name,
			ASN:          uint32(bngBaseASN + i),
			Registry:     rir.Unknown,
			BGP4:         v4,
			BGP6:         v6,
			Subscribers:  g.Subscribers,
			DelegatedLen: delegatedLen,
		}
		if delegatedLen == 64 {
			op.Mobile = true
			op.UsersPer24 = 400
			op.AssocMeanDays = 1.5
			op.KeepV6Frac = 0.25
			op.Activity = 0.12
		} else {
			op.UsersPer24 = 160
			op.AssocMeanDays = 30
			op.StableFrac = 0.1
			op.ZeroFrac = 0.8
			op.KeepV6Frac = 0.6
		}
		ops = append(ops, op)
	}
	if len(ops) == 0 {
		return nil, fmt.Errorf("daemon at %s published no groups", baseURL)
	}
	return ops, nil
}
