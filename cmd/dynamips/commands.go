package main

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"os/signal"
	"sort"
	"syscall"
	"time"

	"dynamips/internal/atlas"
	"dynamips/internal/bgp"
	"dynamips/internal/cdn"
	"dynamips/internal/cdn/stream"
	"dynamips/internal/checkpoint"
	"dynamips/internal/core"
	"dynamips/internal/experiments"
	"dynamips/internal/faultnet"
	"dynamips/internal/isp"
	"dynamips/internal/obs"
)

// logf is the CLI's warning channel: checkpoint recovery notes, stale
// manifest discards, journal truncations. Stderr, so it never pollutes a
// dataset being written to stdout.
func logf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "dynamips: "+format+"\n", args...)
}

// writeOutput routes a command's output: "-" (or empty) streams to stdout,
// anything else goes through the checkpoint atomic writer — tempfile,
// fsync, CRC-32C read-back, rename — so an interrupted run never leaves a
// truncated destination file.
func writeOutput(path string, write func(io.Writer) error) error {
	if path == "" || path == "-" {
		bw := bufio.NewWriter(os.Stdout)
		if err := write(bw); err != nil {
			return err
		}
		return bw.Flush()
	}
	return checkpoint.WriteFileAtomic(path, write)
}

// runSpec is the manifest command record: everything needed to re-run (or
// resume) a checkpointed invocation. It doubles as the manifest key's
// config input after normalization (see specKey).
type runSpec struct {
	Kind       string  `json:"kind"` // "experiment", "gen-cdn", or "analyze-cdn"
	Name       string  `json:"name,omitempty"`
	Out        string  `json:"out"`
	JSON       bool    `json:"json,omitempty"`
	Seed       int64   `json:"seed"`
	Hours      int64   `json:"hours,omitempty"`
	ProbeScale float64 `json:"probe_scale,omitempty"`
	CDNScale   float64 `json:"cdn_scale,omitempty"`
	CDNDays    int     `json:"cdn_days,omitempty"`
	Days       int     `json:"days,omitempty"`
	Scale      float64 `json:"scale,omitempty"`
	Faults     string  `json:"faults,omitempty"`
	// RelayHops/RelayFaults route assignment exchanges through an
	// aggregation relay chain (experiment runs only). Both change the
	// generated datasets, so they participate in the manifest key.
	RelayHops   int    `json:"relay_hops,omitempty"`
	RelayFaults string `json:"relay_faults,omitempty"`
	Workers     int    `json:"workers,omitempty"`
	In          string `json:"in,omitempty"`
	Threshold   int    `json:"threshold,omitempty"`
	Pfx2as      string `json:"pfx2as,omitempty"`
	Stream      bool   `json:"stream,omitempty"`
	Shards      int    `json:"shards,omitempty"`
	SpillDir    string `json:"spill_dir,omitempty"`
}

// specKey derives the manifest key for a spec. Workers and SpillDir are
// zeroed before hashing: the determinism contract guarantees the worker
// count never changes any output, and the spill directory only decides
// where scratch files live (a resume that moves it recomputes the units
// whose files no longer validate). Everything else participates — a
// different seed, scale, fault profile, experiment, shard width, or
// destination is a different run and must invalidate stale journals.
func specKey(spec runSpec) (checkpoint.Key, error) {
	spec.Workers = 0
	spec.SpillDir = ""
	h, err := checkpoint.HashConfig(spec)
	if err != nil {
		return checkpoint.Key{}, err
	}
	return checkpoint.Key{Seed: spec.Seed, ConfigHash: h, Code: checkpoint.CodeVersion()}, nil
}

// openCheckpoint opens dir as this spec's checkpoint run; a "" dir means
// checkpointing is off and returns a nil run (which every consumer
// accepts).
func openCheckpoint(dir string, spec runSpec) (*checkpoint.Run, error) {
	if dir == "" {
		return nil, nil
	}
	key, err := specKey(spec)
	if err != nil {
		return nil, err
	}
	command, err := json.Marshal(spec)
	if err != nil {
		return nil, fmt.Errorf("recording command: %w", err)
	}
	return checkpoint.Open(dir, key, command, logf)
}

func cmdProfiles(args []string) error {
	fs := newFlagSet("profiles")
	if err := fs.Parse(args); err != nil {
		return err
	}
	fmt.Printf("%-12s %6s %3s %-8s %9s %6s %6s %6s\n",
		"name", "asn", "cc", "backend", "delegated", "pool6", "pool4", "DSfrac")
	for _, p := range isp.Profiles() {
		backend := "radius"
		if p.Backend == isp.BackendDHCP {
			backend = "dhcp"
		}
		fmt.Printf("%-12s %6d %3s %-8s %9s %6s %6s %5.0f%%\n",
			p.Name, p.ASN, p.Country, backend,
			fmt.Sprintf("/%d", p.DelegatedLen),
			fmt.Sprintf("/%d", p.PoolLen6),
			fmt.Sprintf("/%d", p.PoolLen4),
			100*p.DualStackFrac)
	}
	return nil
}

func cmdGen(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("gen: need a dataset kind (atlas or cdn)")
	}
	kind := args[0]
	fs := newFlagSet("gen " + kind)
	seed := fs.Int64("seed", 1, "generator seed")
	out := fs.String("o", "-", "output file (default stdout; written atomically)")
	metrics := fs.String("metrics", "", "dump pipeline metrics (JSON) to this file")
	switch kind {
	case "atlas":
		profileName := fs.String("profile", "DTAG", "ISP profile name")
		probes := fs.Int("probes", 100, "number of probes")
		hours := fs.Int64("hours", 17520, "simulated horizon in hours")
		raw := fs.Bool("raw", false, "emit hourly records instead of RLE series")
		bngURL := fs.String("bng", "", "pull the ground-truth profile from a live serve-bng daemon at this base URL instead of a built-in profile")
		bngGroup := fs.String("bng-group", "", "subscriber group to model when -bng is set (default: the daemon's first group)")
		if err := fs.Parse(args[1:]); err != nil {
			return err
		}
		or, err := startObs(*metrics, "")
		if err != nil {
			return err
		}
		if *bngURL != "" {
			var profile isp.Profile
			if profile, err = bngProfile(*bngURL, *bngGroup); err == nil {
				err = genAtlasProfile(profile, *probes, *hours, *seed, *raw, *out, or.o)
			}
		} else {
			err = genAtlas(*profileName, *probes, *hours, *seed, *raw, *out, or.o)
		}
		if ferr := or.finish(); err == nil {
			err = ferr
		}
		return err
	case "cdn":
		days := fs.Int("days", 150, "collection window in days")
		scale := fs.Float64("scale", 1, "population scale factor")
		workers := fs.Int("workers", 0, "per-operator generation fan-out, 0 = all CPUs (output is identical for any value)")
		ckpt := fs.String("checkpoint", "", "journal completed operators under this directory; resumable with 'dynamips resume'")
		streamMode := fs.Bool("stream", false, "stream each operator through a binary spill file instead of materializing the dataset (bounded memory; output is byte-identical)")
		spillDir := fs.String("spill-dir", "", "directory for -stream spill files (default: the checkpoint directory's spill/, or a temp dir)")
		pprofAddr := fs.String("pprof", "", "serve net/http/pprof on this address for the run's duration")
		bngURL := fs.String("bng", "", "pull the operator set from a live serve-bng daemon at this base URL instead of the built-ins")
		if err := fs.Parse(args[1:]); err != nil {
			return err
		}
		if *bngURL != "" && *ckpt != "" {
			return fmt.Errorf("gen cdn: -bng is incompatible with -checkpoint (a remote daemon's state cannot be journaled into a resumable spec)")
		}
		var ops []cdn.Operator
		if *bngURL != "" {
			var err error
			if ops, err = bngOperators(*bngURL); err != nil {
				return err
			}
		}
		spec := runSpec{Kind: "gen-cdn", Out: *out, Seed: *seed, Days: *days, Scale: *scale,
			Workers: *workers, Stream: *streamMode, SpillDir: *spillDir}
		run, err := openCheckpoint(*ckpt, spec)
		if err != nil {
			return err
		}
		defer run.Close()
		or, err := startObs(*metrics, *pprofAddr)
		if err != nil {
			return err
		}
		err = runGenCDNSpec(spec, run, ops, or.o)
		if ferr := or.finish(); err == nil {
			err = ferr
		}
		return err
	default:
		return fmt.Errorf("gen: unknown dataset kind %q", kind)
	}
}

func genAtlas(profileName string, probes int, hours, seed int64, raw bool, out string, o *obs.Observer) error {
	profile, ok := isp.ProfileByName(profileName)
	if !ok {
		return fmt.Errorf("unknown profile %q (see 'dynamips profiles')", profileName)
	}
	return genAtlasProfile(profile, probes, hours, seed, raw, out, o)
}

func genAtlasProfile(profile isp.Profile, probes int, hours, seed int64, raw bool, out string, o *obs.Observer) error {
	span := o.StartSpan("gen/atlas")
	res, err := isp.Run(isp.Config{Profile: profile, Subscribers: probes * 2, Hours: hours, Seed: seed})
	if err != nil {
		return err
	}
	fleet, err := atlas.BuildFleet(res, atlas.DefaultFleetConfig(probes, seed+1))
	if err != nil {
		return err
	}
	o.Advance(int64(len(fleet.Series)))
	span.End()
	o.Counter("gen_series", obs.L("as", profile.Name)).Add(int64(len(fleet.Series)))
	return writeOutput(out, func(w io.Writer) error {
		if raw {
			var recs []atlas.Record
			for i := range fleet.Series {
				recs = append(recs, fleet.Series[i].Expand()...)
			}
			return atlas.WriteRecords(w, recs)
		}
		return atlas.WriteSeries(w, fleet.Series)
	})
}

// runGenCDNSpec generates the CDN dataset for spec. ops, when non-nil,
// overrides the built-in operator set (the -bng path); it is always nil
// on the checkpoint/resume path, which only ever replays built-ins.
func runGenCDNSpec(spec runSpec, run *checkpoint.Run, ops []cdn.Operator, o *obs.Observer) error {
	run.SetObserver(o)
	cfg := cdn.DefaultGenConfig(spec.Seed)
	cfg.Days = spec.Days
	cfg.Scale = spec.Scale
	cfg.Workers = spec.Workers
	cfg.Checkpoint = run
	cfg.Obs = o
	cfg.Operators = ops
	if spec.Stream {
		return writeOutput(spec.Out, func(w io.Writer) error {
			return stream.Generate(stream.GenConfig{Gen: cfg, SpillDir: spec.SpillDir}, w)
		})
	}
	ds, err := cdn.Generate(cfg)
	if err != nil {
		return err
	}
	return writeOutput(spec.Out, func(w io.Writer) error {
		return cdn.WriteCSV(w, ds.Assocs)
	})
}

// cmdAnalyzeCDN loads an association CSV and reruns the CDN analyses on
// it: durations, degrees, trailing zeros. Without the generator's BGP
// table, operators are unavailable, so the output covers the label-based
// splits only. With -stream the input is hash-partitioned by /24 into
// shard spill files and analyzed shard-by-shard in bounded memory; the
// rendered report is byte-identical to the in-memory path.
func cmdAnalyzeCDN(args []string) error {
	fs := newFlagSet("analyze-cdn")
	threshold := fs.Int("mobile-threshold", 350, "unique-/64 degree above which a /24 is labeled mobile")
	pfx2as := fs.String("pfx2as", "", "pfx2as file for per-operator attribution (optional)")
	out := fs.String("o", "-", "report output file (default stdout; written atomically)")
	metrics := fs.String("metrics", "", "dump pipeline metrics (JSON) to this file")
	streamMode := fs.Bool("stream", false, "shard the input through spill files instead of loading it into memory (bounded memory; report is byte-identical)")
	shards := fs.Int("shards", stream.DefaultShards, "partition width for -stream (peak memory scales as input/shards)")
	spillDir := fs.String("spill-dir", "", "directory for -stream spill files (default: the checkpoint directory's spill/, or a temp dir)")
	ckpt := fs.String("checkpoint", "", "journal completed shards under this directory; resumable with 'dynamips resume' (requires -stream)")
	workers := fs.Int("workers", 0, "per-shard analyze fan-out for -stream, 0 = all CPUs (report is identical for any value)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("analyze-cdn: need one association CSV file")
	}
	if *ckpt != "" && !*streamMode {
		return fmt.Errorf("analyze-cdn: -checkpoint requires -stream (the in-memory path has no journal units)")
	}
	spec := runSpec{Kind: "analyze-cdn", In: fs.Arg(0), Out: *out,
		Threshold: *threshold, Pfx2as: *pfx2as, Workers: *workers,
		Stream: *streamMode, Shards: *shards, SpillDir: *spillDir}
	run, err := openCheckpoint(*ckpt, spec)
	if err != nil {
		return err
	}
	defer run.Close()
	or, err := startObs(*metrics, "")
	if err != nil {
		return err
	}
	err = runAnalyzeCDNSpec(spec, run, or.o)
	if ferr := or.finish(); err == nil {
		err = ferr
	}
	return err
}

// runAnalyzeCDNSpec executes an analyze-cdn invocation (fresh or
// resumed): streaming runs shard the input under the optional checkpoint
// run, in-memory runs materialize it, and both render the same report
// atomically.
func runAnalyzeCDNSpec(spec runSpec, run *checkpoint.Run, o *obs.Observer) error {
	run.SetObserver(o)
	var table *bgp.Table
	if spec.Pfx2as != "" {
		pf, err := os.Open(spec.Pfx2as)
		if err != nil {
			return fmt.Errorf("opening pfx2as: %w", err)
		}
		table, err = bgp.ReadPfx2as(pf)
		pf.Close()
		if err != nil {
			return err
		}
	}
	if spec.Stream {
		rep, err := stream.Analyze(stream.AnalyzeConfig{
			In: spec.In, Shards: spec.Shards, Workers: spec.Workers,
			Threshold: spec.Threshold, Table: table, SpillDir: spec.SpillDir,
			Checkpoint: run, Obs: o,
		})
		if err != nil {
			return err
		}
		return writeOutput(spec.Out, rep.Render)
	}
	f, err := os.Open(spec.In)
	if err != nil {
		return fmt.Errorf("opening associations: %w", err)
	}
	defer f.Close()
	assocs, err := cdn.ReadCSV(bufio.NewReader(f))
	if err != nil {
		return err
	}
	return writeOutput(spec.Out, func(w io.Writer) error {
		return cdn.BuildReport(assocs, table, spec.Threshold, o).Render(w)
	})
}

func cmdAnalyze(args []string) error {
	fs := newFlagSet("analyze")
	pfx2as := fs.String("pfx2as", "", "pfx2as file for BGP classification (optional)")
	format := fs.String("format", "series", "input format: series (RLE JSONL), records (hourly JSONL), or ripe (RIPE Atlas results)")
	epoch := fs.Int64("epoch", 1409529600, "unix time of hour 0 for -format ripe (default: 2014-09-01, the paper's window start)")
	out := fs.String("o", "-", "report output file (default stdout; written atomically)")
	metrics := fs.String("metrics", "", "dump pipeline metrics (JSON) to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("analyze: need one dataset file")
	}
	f, err := os.Open(fs.Arg(0))
	if err != nil {
		return fmt.Errorf("opening dataset: %w", err)
	}
	defer f.Close()
	var series []atlas.Series
	switch *format {
	case "series":
		series, err = atlas.ReadSeries(bufio.NewReader(f))
	case "records":
		var recs []atlas.Record
		recs, err = atlas.ReadRecords(bufio.NewReader(f))
		if err == nil {
			series = atlas.Compress(recs)
		}
	case "ripe":
		var recs []atlas.Record
		recs, err = atlas.ReadRIPEResults(bufio.NewReader(f), *epoch)
		if err == nil {
			series = atlas.Compress(recs)
		}
	default:
		return fmt.Errorf("analyze: unknown format %q", *format)
	}
	if err != nil {
		return err
	}
	table := &bgp.Table{}
	if *pfx2as != "" {
		pf, err := os.Open(*pfx2as)
		if err != nil {
			return fmt.Errorf("opening pfx2as: %w", err)
		}
		table, err = bgp.ReadPfx2as(pf)
		pf.Close()
		if err != nil {
			return err
		}
	} else {
		// Without a routing table, classify by the probes' own ASNs so
		// sanitization still works at AS granularity.
		for _, s := range series {
			for _, sp := range s.V4 {
				p, err := sp.Echo.Prefix(8)
				if err == nil {
					table.Announce(p, s.Probe.ASN)
				}
			}
			for _, sp := range s.V6 {
				p, err := sp.Echo.Prefix(20)
				if err == nil {
					table.Announce(p, s.Probe.ASN)
				}
			}
		}
	}
	or, err := startObs(*metrics, "")
	if err != nil {
		return err
	}
	err = writeOutput(*out, func(w io.Writer) error {
		return analyzeReport(w, series, table, or.o)
	})
	if ferr := or.finish(); err == nil {
		err = ferr
	}
	return err
}

func analyzeReport(w io.Writer, series []atlas.Series, table *bgp.Table, o *obs.Observer) error {
	sanSpan := o.StartSpan("analyze/sanitize")
	sc := atlas.DefaultSanitizeConfig()
	sc.Obs = o
	clean := atlas.Sanitize(series, table, sc)
	o.Advance(int64(len(series)))
	sanSpan.End()
	fmt.Fprintf(w, "probes: %d in, %d clean, drops: %v, splits: %d\n",
		len(series), len(clean.Clean), clean.Drops, clean.VirtualSplits)

	anaSpan := o.StartSpan("analyze/extract")
	pas := core.Analyze(clean.Clean, core.DefaultExtractConfig())
	o.Advance(int64(len(clean.Clean)))
	anaSpan.End()
	o.Counter("atlas_probes_analyzed").Add(int64(len(pas)))
	rows := core.Table1(pas, nil)
	fmt.Fprintf(w, "\n%-12s %6s %8s %9s %9s %17s %9s\n",
		"AS", "ASN", "probes", "v4chg", "DSprobes", "DS v4chg (share)", "v6chg")
	for _, r := range rows {
		fmt.Fprintln(w, r.String())
	}

	durations := core.CollectDurations(pas)
	periodic := core.DetectPeriodicRenumbering(durations, 0.05, 0.3)
	if len(periodic) > 0 {
		fmt.Fprintln(w, "\nperiodic renumbering detected:")
		for _, p := range periodic {
			fmt.Fprintf(w, "  AS%-8d %-7s", p.ASN, p.Population)
			for _, m := range p.Modes {
				fmt.Fprintf(w, " %gh(%.0f%%)", m.Period, 100*m.Fraction)
			}
			fmt.Fprintln(w)
		}
	}

	perAS, pooled := core.SubscriberLengths(pas)
	if pooled.N > 0 {
		fmt.Fprintln(w, "\ninferred subscriber prefix lengths:")
		asns := make([]uint32, 0, len(perAS))
		for asn := range perAS {
			asns = append(asns, asn)
		}
		sort.Slice(asns, func(i, j int) bool { return asns[i] < asns[j] })
		for _, asn := range asns {
			h := perAS[asn]
			fmt.Fprintf(w, "  AS%-8d mode=/%d over %d probes\n", asn, h.ArgMax(), h.N)
		}
	}
	return nil
}

// experimentFlags are the raw 'dynamips experiment' flag values before
// normalization.
type experimentFlags struct {
	name        string
	out         string
	asJSON      bool
	seed        int64
	hours       int64
	probeScale  float64
	cdnScale    float64
	cdnDays     int
	workers     int
	faults      string
	loss        float64
	relayHops   int
	relayFaults string
}

// experimentSpec validates and normalizes raw experiment flags into the
// manifest-keyed runSpec. Fault profiles are parsed and re-rendered in
// canonical form so equivalent spellings share a checkpoint key.
func experimentSpec(f experimentFlags) (runSpec, error) {
	faultSpec := ""
	if f.faults != "" || f.loss != 0 {
		prof, err := faultnet.ParseProfile(f.faults)
		if err != nil {
			return runSpec{}, fmt.Errorf("experiment: %w", err)
		}
		if f.loss != 0 {
			prof.Drop = f.loss
		}
		if err := prof.Validate(); err != nil {
			return runSpec{}, fmt.Errorf("experiment: %w", err)
		}
		faultSpec = prof.String()
	}
	if f.relayHops < 0 {
		return runSpec{}, fmt.Errorf("experiment: -relay-hops must be >= 0, got %d", f.relayHops)
	}
	relaySpec := ""
	if f.relayFaults != "" {
		if f.relayHops == 0 {
			return runSpec{}, fmt.Errorf("experiment: -relay-faults needs -relay-hops > 0")
		}
		prof, err := faultnet.ParseProfile(f.relayFaults)
		if err != nil {
			return runSpec{}, fmt.Errorf("experiment: -relay-faults: %w", err)
		}
		if err := prof.Validate(); err != nil {
			return runSpec{}, fmt.Errorf("experiment: -relay-faults: %w", err)
		}
		relaySpec = prof.String()
	}
	return runSpec{
		Kind: "experiment", Name: f.name, Out: f.out, JSON: f.asJSON,
		Seed: f.seed, Hours: f.hours, ProbeScale: f.probeScale,
		CDNScale: f.cdnScale, CDNDays: f.cdnDays, Faults: faultSpec,
		RelayHops: f.relayHops, RelayFaults: relaySpec, Workers: f.workers,
	}, nil
}

func cmdExperiment(args []string) error {
	fs := newFlagSet("experiment")
	seed := fs.Int64("seed", 20201201, "pipeline seed")
	hours := fs.Int64("hours", 50400, "Atlas horizon in hours")
	probeScale := fs.Float64("probe-scale", 1, "probe count multiplier")
	cdnScale := fs.Float64("cdn-scale", 1, "CDN population multiplier")
	cdnDays := fs.Int("cdn-days", 150, "CDN window in days")
	workers := fs.Int("workers", 0, "pipeline build fan-out, 0 = all CPUs (output is identical for any value)")
	faults := fs.String("faults", "", "fault profile, e.g. drop=0.1,dup=0.02,delay=0.05:200-1500,reorder=0.01 (empty = perfect network)")
	loss := fs.Float64("loss", 0, "shorthand for the fault profile's drop probability; overrides drop= in -faults")
	relayHops := fs.Int("relay-hops", 0, "route assignment exchanges through this many aggregation relay hops (0 = direct)")
	relayFaults := fs.String("relay-faults", "", "per-relay-hop fault profile (same syntax as -faults; empty reuses -faults; needs -relay-hops)")
	asJSON := fs.Bool("json", false, "emit the figure's data series as JSON (fig1/fig2/fig3/fig5/fig9)")
	out := fs.String("o", "-", "output file (default stdout; written atomically)")
	ckpt := fs.String("checkpoint", "", "journal completed pipeline units under this directory; resumable with 'dynamips resume'")
	metrics := fs.String("metrics", "", "dump pipeline metrics (JSON) to this file; byte-identical for any -workers value")
	pprofAddr := fs.String("pprof", "", "serve net/http/pprof on this address for the run's duration")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("experiment: need a name (one of %v) or 'all'", experiments.Names)
	}
	spec, err := experimentSpec(experimentFlags{
		name: fs.Arg(0), out: *out, asJSON: *asJSON,
		seed: *seed, hours: *hours, probeScale: *probeScale,
		cdnScale: *cdnScale, cdnDays: *cdnDays, workers: *workers,
		faults: *faults, loss: *loss,
		relayHops: *relayHops, relayFaults: *relayFaults,
	})
	if err != nil {
		return err
	}
	run, err := openCheckpoint(*ckpt, spec)
	if err != nil {
		return err
	}
	defer run.Close()
	or, err := startObs(*metrics, *pprofAddr)
	if err != nil {
		return err
	}
	err = runExperimentSpec(spec, run, or.o)
	if ferr := or.finish(); err == nil {
		err = ferr
	}
	return err
}

// runExperimentSpec executes an experiment invocation (fresh or resumed):
// builds whichever pipelines the experiment needs under the optional
// checkpoint run, and writes the full report atomically.
func runExperimentSpec(spec runSpec, run *checkpoint.Run, o *obs.Observer) error {
	run.SetObserver(o)
	cfg := experiments.Config{
		Seed: spec.Seed, Hours: spec.Hours, ProbeScale: spec.ProbeScale,
		CDNScale: spec.CDNScale, CDNDays: spec.CDNDays, Workers: spec.Workers,
		Checkpoint: run, Obs: o,
	}
	if spec.Faults != "" {
		prof, err := faultnet.ParseProfile(spec.Faults)
		if err != nil {
			return fmt.Errorf("experiment: %w", err)
		}
		cfg.Faults = &prof
	}
	cfg.RelayHops = spec.RelayHops
	if spec.RelayFaults != "" {
		prof, err := faultnet.ParseProfile(spec.RelayFaults)
		if err != nil {
			return fmt.Errorf("experiment: -relay-faults: %w", err)
		}
		cfg.RelayFaults = &prof
	}
	name := spec.Name
	if spec.JSON {
		var (
			a   *experiments.AtlasData
			c   *experiments.CDNData
			err error
		)
		if experiments.NeedsAtlas(name) {
			if a, err = experiments.BuildAtlas(cfg); err != nil {
				return err
			}
		} else {
			if c, err = experiments.BuildCDN(cfg); err != nil {
				return err
			}
		}
		return writeOutput(spec.Out, func(w io.Writer) error {
			return experiments.WriteFigureJSON(w, name, a, c)
		})
	}
	if name != "all" {
		if experiments.NeedsAtlas(name) {
			a, err := experiments.BuildAtlas(cfg)
			if err != nil {
				return err
			}
			return writeOutput(spec.Out, func(w io.Writer) error {
				return experiments.RunAtlasExperiment(name, w, a)
			})
		}
		c, err := experiments.BuildCDN(cfg)
		if err != nil {
			return err
		}
		return writeOutput(spec.Out, func(w io.Writer) error {
			return experiments.RunCDNExperiment(name, w, c)
		})
	}
	// Build each pipeline once (journaled, when checkpointed), then render
	// everything into one atomic output.
	var (
		a   *experiments.AtlasData
		c   *experiments.CDNData
		err error
	)
	for _, n := range experiments.Names {
		if experiments.NeedsAtlas(n) && a == nil {
			if a, err = experiments.BuildAtlas(cfg); err != nil {
				return err
			}
		}
		if !experiments.NeedsAtlas(n) && c == nil {
			if c, err = experiments.BuildCDN(cfg); err != nil {
				return err
			}
		}
	}
	return writeOutput(spec.Out, func(w io.Writer) error {
		for _, n := range experiments.Names {
			fmt.Fprintf(w, "==== %s ====\n", n)
			if experiments.NeedsAtlas(n) {
				err = experiments.RunAtlasExperiment(n, w, a)
			} else {
				err = experiments.RunCDNExperiment(n, w, c)
			}
			if err != nil {
				return fmt.Errorf("experiment %s: %w", n, err)
			}
			fmt.Fprintln(w)
		}
		return nil
	})
}

// cmdResume replays an interrupted (or completed) checkpointed run: the
// manifest's recorded command is re-dispatched against the same journal
// directory, completed units are decoded instead of recomputed, and the
// output is rewritten atomically — byte-identical to an uninterrupted run.
func cmdResume(args []string) error {
	fs := newFlagSet("resume")
	workers := fs.Int("workers", -1, "override the recorded worker count (output is identical for any value); -1 keeps the recorded value")
	metrics := fs.String("metrics", "", "dump pipeline metrics (JSON) to this file")
	pprofAddr := fs.String("pprof", "", "serve net/http/pprof on this address for the run's duration")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("resume: need one checkpoint directory")
	}
	run, err := checkpoint.Resume(fs.Arg(0), logf)
	if err != nil {
		return err
	}
	defer run.Close()
	var spec runSpec
	if err := json.Unmarshal(run.Command(), &spec); err != nil {
		return fmt.Errorf("resume: manifest command record: %w", err)
	}
	key, err := specKey(spec)
	if err != nil {
		return err
	}
	if key != run.Key() {
		return fmt.Errorf("resume: manifest key does not match its own command record (corrupt checkpoint)")
	}
	if *workers >= 0 {
		spec.Workers = *workers
	}
	logf("resuming %s run (seed %d) into %s", spec.Kind, spec.Seed, spec.Out)
	or, err := startObs(*metrics, *pprofAddr)
	if err != nil {
		return err
	}
	switch spec.Kind {
	case "experiment":
		err = runExperimentSpec(spec, run, or.o)
	case "gen-cdn":
		err = runGenCDNSpec(spec, run, nil, or.o)
	case "analyze-cdn":
		err = runAnalyzeCDNSpec(spec, run, or.o)
	default:
		err = fmt.Errorf("resume: manifest records unknown command kind %q", spec.Kind)
	}
	if ferr := or.finish(); err == nil {
		err = ferr
	}
	return err
}

func cmdServeEcho(args []string) error {
	fs := newFlagSet("serve-echo")
	listen := fs.String("listen", "127.0.0.1:8080", "listen address")
	grace := fs.Duration("grace", 5*time.Second, "graceful shutdown drain deadline")
	metrics := fs.String("metrics", "", "dump request counters (JSON) to this file at shutdown")
	pprofAddr := fs.String("pprof", "", "serve net/http/pprof on this address alongside the echo server")
	if err := fs.Parse(args); err != nil {
		return err
	}
	or, err := startObs(*metrics, *pprofAddr)
	if err != nil {
		return err
	}
	srv, err := atlas.StartEchoServerObs(*listen, or.o)
	if err != nil {
		return err
	}
	fmt.Printf("IP echo server on %s (GET returns %s header)\n", srv.Addr(), atlas.EchoHeader)
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	s := <-sig
	signal.Stop(sig)
	fmt.Printf("received %v; draining connections (max %s)\n", s, *grace)
	ctx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	err = srv.Shutdown(ctx)
	if ferr := or.finish(); err == nil {
		err = ferr
	}
	return err
}
