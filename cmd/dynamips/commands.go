package main

import (
	"bufio"
	"fmt"
	"net/netip"
	"os"
	"os/signal"
	"sort"

	"dynamips/internal/atlas"
	"dynamips/internal/bgp"
	"dynamips/internal/cdn"
	"dynamips/internal/core"
	"dynamips/internal/experiments"
	"dynamips/internal/faultnet"
	"dynamips/internal/isp"
	"dynamips/internal/stats"
)

func cmdProfiles(args []string) error {
	fs := newFlagSet("profiles")
	if err := fs.Parse(args); err != nil {
		return err
	}
	fmt.Printf("%-12s %6s %3s %-8s %9s %6s %6s %6s\n",
		"name", "asn", "cc", "backend", "delegated", "pool6", "pool4", "DSfrac")
	for _, p := range isp.Profiles() {
		backend := "radius"
		if p.Backend == isp.BackendDHCP {
			backend = "dhcp"
		}
		fmt.Printf("%-12s %6d %3s %-8s %9s %6s %6s %5.0f%%\n",
			p.Name, p.ASN, p.Country, backend,
			fmt.Sprintf("/%d", p.DelegatedLen),
			fmt.Sprintf("/%d", p.PoolLen6),
			fmt.Sprintf("/%d", p.PoolLen4),
			100*p.DualStackFrac)
	}
	return nil
}

func cmdGen(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("gen: need a dataset kind (atlas or cdn)")
	}
	kind := args[0]
	fs := newFlagSet("gen " + kind)
	seed := fs.Int64("seed", 1, "generator seed")
	out := fs.String("o", "-", "output file (default stdout)")
	switch kind {
	case "atlas":
		profileName := fs.String("profile", "DTAG", "ISP profile name")
		probes := fs.Int("probes", 100, "number of probes")
		hours := fs.Int64("hours", 17520, "simulated horizon in hours")
		raw := fs.Bool("raw", false, "emit hourly records instead of RLE series")
		if err := fs.Parse(args[1:]); err != nil {
			return err
		}
		return genAtlas(*profileName, *probes, *hours, *seed, *raw, *out)
	case "cdn":
		days := fs.Int("days", 150, "collection window in days")
		scale := fs.Float64("scale", 1, "population scale factor")
		workers := fs.Int("workers", 0, "per-operator generation fan-out, 0 = all CPUs (output is identical for any value)")
		if err := fs.Parse(args[1:]); err != nil {
			return err
		}
		return genCDN(*days, *scale, *seed, *workers, *out)
	default:
		return fmt.Errorf("gen: unknown dataset kind %q", kind)
	}
}

func openOut(path string) (*os.File, func(), error) {
	if path == "-" || path == "" {
		return os.Stdout, func() {}, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, nil, fmt.Errorf("creating %s: %w", path, err)
	}
	return f, func() { f.Close() }, nil
}

func genAtlas(profileName string, probes int, hours, seed int64, raw bool, out string) error {
	profile, ok := isp.ProfileByName(profileName)
	if !ok {
		return fmt.Errorf("unknown profile %q (see 'dynamips profiles')", profileName)
	}
	res, err := isp.Run(isp.Config{Profile: profile, Subscribers: probes * 2, Hours: hours, Seed: seed})
	if err != nil {
		return err
	}
	fleet, err := atlas.BuildFleet(res, atlas.DefaultFleetConfig(probes, seed+1))
	if err != nil {
		return err
	}
	f, closeOut, err := openOut(out)
	if err != nil {
		return err
	}
	defer closeOut()
	if raw {
		var recs []atlas.Record
		for i := range fleet.Series {
			recs = append(recs, fleet.Series[i].Expand()...)
		}
		return atlas.WriteRecords(f, recs)
	}
	return atlas.WriteSeries(f, fleet.Series)
}

func genCDN(days int, scale float64, seed int64, workers int, out string) error {
	cfg := cdn.DefaultGenConfig(seed)
	cfg.Days = days
	cfg.Scale = scale
	cfg.Workers = workers
	ds, err := cdn.Generate(cfg)
	if err != nil {
		return err
	}
	f, closeOut, err := openOut(out)
	if err != nil {
		return err
	}
	defer closeOut()
	return cdn.WriteCSV(f, ds.Assocs)
}

// cmdAnalyzeCDN loads an association CSV and reruns the CDN analyses on
// it: durations, degrees, trailing zeros. Without the generator's BGP
// table, operators are unavailable, so the output covers the label-based
// splits only.
func cmdAnalyzeCDN(args []string) error {
	fs := newFlagSet("analyze-cdn")
	threshold := fs.Int("mobile-threshold", 350, "unique-/64 degree above which a /24 is labeled mobile")
	pfx2as := fs.String("pfx2as", "", "pfx2as file for per-operator attribution (optional)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("analyze-cdn: need one association CSV file")
	}
	f, err := os.Open(fs.Arg(0))
	if err != nil {
		return fmt.Errorf("opening associations: %w", err)
	}
	defer f.Close()
	assocs, err := cdn.ReadCSV(bufio.NewReader(f))
	if err != nil {
		return err
	}
	mobile := cdn.MobileLabel(assocs, *threshold)
	eps := cdn.Episodes(assocs, cdn.DefaultEpisodeConfig())
	var fixedD, mobileD []float64
	for _, ep := range eps {
		if mobile[ep.K24] {
			mobileD = append(mobileD, float64(ep.Days()))
		} else {
			fixedD = append(fixedD, float64(ep.Days()))
		}
	}
	fmt.Printf("associations: %d, episodes: %d\n", len(assocs), len(eps))
	if len(fixedD) > 0 {
		fmt.Printf("fixed  durations: %s\n", stats.NewECDF(fixedD).Box())
	}
	if len(mobileD) > 0 {
		fmt.Printf("mobile durations: %s\n", stats.NewECDF(mobileD).Box())
	}
	dd := cdn.Degrees(assocs, mobile)
	fmt.Printf("degrees: mobile peak %.0f, fixed peak %.0f\n",
		dd.MobileUnique.PeakX(), dd.FixedUnique.PeakX())

	if *pfx2as != "" {
		pf, err := os.Open(*pfx2as)
		if err != nil {
			return fmt.Errorf("opening pfx2as: %w", err)
		}
		defer pf.Close()
		table, err := bgp.ReadPfx2as(pf)
		if err != nil {
			return err
		}
		perOp := map[uint32][]float64{}
		for _, ep := range eps {
			a := cdn.Association{K64: ep.K64}
			if asn, _, ok := table.Origin(a.P64().Addr()); ok {
				perOp[asn] = append(perOp[asn], float64(ep.Days()))
			}
		}
		asns := make([]uint32, 0, len(perOp))
		for asn := range perOp {
			asns = append(asns, asn)
		}
		sort.Slice(asns, func(i, j int) bool { return asns[i] < asns[j] })
		fmt.Println("per-operator association durations:")
		for _, asn := range asns {
			fmt.Printf("  %-12s %s\n", table.Name(asn), stats.NewECDF(perOp[asn]).Box())
		}
	}

	// Trailing zeros over unique fixed /64s (registry split needs the
	// RIR table, which is built in).
	seen := map[uint64]bool{}
	var prefixes []netip.Prefix
	for _, a := range assocs {
		if mobile[a.K24] || seen[a.K64] {
			continue
		}
		seen[a.K64] = true
		prefixes = append(prefixes, a.P64())
	}
	b := core.ClassifyTrailingZeros(prefixes)
	fmt.Printf("trailing zeros (fixed /64s): %.1f%% inferable;", 100*b.InferableFrac())
	for _, l := range []int{48, 52, 56, 60} {
		fmt.Printf(" /%d=%.2f", l, b.Frac(l))
	}
	fmt.Println()
	return nil
}

func cmdAnalyze(args []string) error {
	fs := newFlagSet("analyze")
	pfx2as := fs.String("pfx2as", "", "pfx2as file for BGP classification (optional)")
	format := fs.String("format", "series", "input format: series (RLE JSONL), records (hourly JSONL), or ripe (RIPE Atlas results)")
	epoch := fs.Int64("epoch", 1409529600, "unix time of hour 0 for -format ripe (default: 2014-09-01, the paper's window start)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("analyze: need one dataset file")
	}
	f, err := os.Open(fs.Arg(0))
	if err != nil {
		return fmt.Errorf("opening dataset: %w", err)
	}
	defer f.Close()
	var series []atlas.Series
	switch *format {
	case "series":
		series, err = atlas.ReadSeries(bufio.NewReader(f))
	case "records":
		var recs []atlas.Record
		recs, err = atlas.ReadRecords(bufio.NewReader(f))
		if err == nil {
			series = atlas.Compress(recs)
		}
	case "ripe":
		var recs []atlas.Record
		recs, err = atlas.ReadRIPEResults(bufio.NewReader(f), *epoch)
		if err == nil {
			series = atlas.Compress(recs)
		}
	default:
		return fmt.Errorf("analyze: unknown format %q", *format)
	}
	if err != nil {
		return err
	}
	table := &bgp.Table{}
	if *pfx2as != "" {
		pf, err := os.Open(*pfx2as)
		if err != nil {
			return fmt.Errorf("opening pfx2as: %w", err)
		}
		defer pf.Close()
		table, err = bgp.ReadPfx2as(pf)
		if err != nil {
			return err
		}
	} else {
		// Without a routing table, classify by the probes' own ASNs so
		// sanitization still works at AS granularity.
		for _, s := range series {
			for _, sp := range s.V4 {
				p, err := sp.Echo.Prefix(8)
				if err == nil {
					table.Announce(p, s.Probe.ASN)
				}
			}
			for _, sp := range s.V6 {
				p, err := sp.Echo.Prefix(20)
				if err == nil {
					table.Announce(p, s.Probe.ASN)
				}
			}
		}
	}
	clean := atlas.Sanitize(series, table, atlas.DefaultSanitizeConfig())
	fmt.Printf("probes: %d in, %d clean, drops: %v, splits: %d\n",
		len(series), len(clean.Clean), clean.Drops, clean.VirtualSplits)

	pas := core.Analyze(clean.Clean, core.DefaultExtractConfig())
	rows := core.Table1(pas, nil)
	fmt.Printf("\n%-12s %6s %8s %9s %9s %17s %9s\n",
		"AS", "ASN", "probes", "v4chg", "DSprobes", "DS v4chg (share)", "v6chg")
	for _, r := range rows {
		fmt.Println(r.String())
	}

	durations := core.CollectDurations(pas)
	periodic := core.DetectPeriodicRenumbering(durations, 0.05, 0.3)
	if len(periodic) > 0 {
		fmt.Println("\nperiodic renumbering detected:")
		for _, p := range periodic {
			fmt.Printf("  AS%-8d %-7s", p.ASN, p.Population)
			for _, m := range p.Modes {
				fmt.Printf(" %gh(%.0f%%)", m.Period, 100*m.Fraction)
			}
			fmt.Println()
		}
	}

	perAS, pooled := core.SubscriberLengths(pas)
	if pooled.N > 0 {
		fmt.Println("\ninferred subscriber prefix lengths:")
		asns := make([]uint32, 0, len(perAS))
		for asn := range perAS {
			asns = append(asns, asn)
		}
		sort.Slice(asns, func(i, j int) bool { return asns[i] < asns[j] })
		for _, asn := range asns {
			h := perAS[asn]
			fmt.Printf("  AS%-8d mode=/%d over %d probes\n", asn, h.ArgMax(), h.N)
		}
	}
	return nil
}

func cmdExperiment(args []string) error {
	fs := newFlagSet("experiment")
	seed := fs.Int64("seed", 20201201, "pipeline seed")
	hours := fs.Int64("hours", 50400, "Atlas horizon in hours")
	probeScale := fs.Float64("probe-scale", 1, "probe count multiplier")
	cdnScale := fs.Float64("cdn-scale", 1, "CDN population multiplier")
	cdnDays := fs.Int("cdn-days", 150, "CDN window in days")
	workers := fs.Int("workers", 0, "pipeline build fan-out, 0 = all CPUs (output is identical for any value)")
	faults := fs.String("faults", "", "fault profile, e.g. drop=0.1,dup=0.02,delay=0.05:200-1500,reorder=0.01 (empty = perfect network)")
	loss := fs.Float64("loss", 0, "shorthand for the fault profile's drop probability; overrides drop= in -faults")
	asJSON := fs.Bool("json", false, "emit the figure's data series as JSON (fig1/fig2/fig3/fig5/fig9)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("experiment: need a name (one of %v) or 'all'", experiments.Names)
	}
	cfg := experiments.Config{
		Seed: *seed, Hours: *hours, ProbeScale: *probeScale,
		CDNScale: *cdnScale, CDNDays: *cdnDays, Workers: *workers,
	}
	if *faults != "" || *loss != 0 {
		prof, err := faultnet.ParseProfile(*faults)
		if err != nil {
			return fmt.Errorf("experiment: %w", err)
		}
		if *loss != 0 {
			prof.Drop = *loss
		}
		if err := prof.Validate(); err != nil {
			return fmt.Errorf("experiment: %w", err)
		}
		cfg.Faults = &prof
	}
	name := fs.Arg(0)
	if *asJSON {
		var (
			a   *experiments.AtlasData
			c   *experiments.CDNData
			err error
		)
		if experiments.NeedsAtlas(name) {
			if a, err = experiments.BuildAtlas(cfg); err != nil {
				return err
			}
		} else {
			if c, err = experiments.BuildCDN(cfg); err != nil {
				return err
			}
		}
		return experiments.WriteFigureJSON(os.Stdout, name, a, c)
	}
	if name != "all" {
		return experiments.Run(name, os.Stdout, cfg)
	}
	// Build each pipeline once and run everything.
	var (
		a   *experiments.AtlasData
		c   *experiments.CDNData
		err error
	)
	for _, n := range experiments.Names {
		fmt.Printf("==== %s ====\n", n)
		if experiments.NeedsAtlas(n) {
			if a == nil {
				if a, err = experiments.BuildAtlas(cfg); err != nil {
					return err
				}
			}
			err = experiments.RunAtlasExperiment(n, os.Stdout, a)
		} else {
			if c == nil {
				if c, err = experiments.BuildCDN(cfg); err != nil {
					return err
				}
			}
			err = experiments.RunCDNExperiment(n, os.Stdout, c)
		}
		if err != nil {
			return fmt.Errorf("experiment %s: %w", n, err)
		}
		fmt.Println()
	}
	return nil
}

func cmdServeEcho(args []string) error {
	fs := newFlagSet("serve-echo")
	listen := fs.String("listen", "127.0.0.1:8080", "listen address")
	if err := fs.Parse(args); err != nil {
		return err
	}
	srv, err := atlas.StartEchoServer(*listen)
	if err != nil {
		return err
	}
	fmt.Printf("IP echo server on %s (GET returns %s header)\n", srv.Addr(), atlas.EchoHeader)
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	fmt.Println("shutting down")
	return srv.Close()
}
