package main

import (
	"strings"
	"testing"
)

// TestExperimentSpecTable pins flag normalization for 'dynamips
// experiment': fault/relay profiles parse into canonical strings (so
// equivalent spellings share a checkpoint key), and invalid knob
// combinations are rejected before any pipeline work starts.
func TestExperimentSpecTable(t *testing.T) {
	base := experimentFlags{
		name: "all", out: "-", seed: 7, hours: 2000,
		probeScale: 0.5, cdnScale: 0.1, cdnDays: 30, workers: 2,
	}
	mod := func(edit func(*experimentFlags)) experimentFlags {
		f := base
		edit(&f)
		return f
	}
	for _, tc := range []struct {
		label   string
		flags   experimentFlags
		want    runSpec // zero when wantErr
		wantErr string
	}{
		{
			label: "defaults",
			flags: base,
			want: runSpec{Kind: "experiment", Name: "all", Out: "-", Seed: 7,
				Hours: 2000, ProbeScale: 0.5, CDNScale: 0.1, CDNDays: 30, Workers: 2},
		},
		{
			label: "loss shorthand",
			flags: mod(func(f *experimentFlags) { f.loss = 0.1 }),
			want: runSpec{Kind: "experiment", Name: "all", Out: "-", Seed: 7,
				Hours: 2000, ProbeScale: 0.5, CDNScale: 0.1, CDNDays: 30, Workers: 2,
				Faults: "drop=0.1"},
		},
		{
			label: "loss overrides drop, canonical field order",
			flags: mod(func(f *experimentFlags) { f.faults = "dup=0.02,drop=0.05"; f.loss = 0.1 }),
			want: runSpec{Kind: "experiment", Name: "all", Out: "-", Seed: 7,
				Hours: 2000, ProbeScale: 0.5, CDNScale: 0.1, CDNDays: 30, Workers: 2,
				Faults: "drop=0.1,dup=0.02"},
		},
		{
			label: "relay hops without per-hop profile",
			flags: mod(func(f *experimentFlags) { f.relayHops = 3 }),
			want: runSpec{Kind: "experiment", Name: "all", Out: "-", Seed: 7,
				Hours: 2000, ProbeScale: 0.5, CDNScale: 0.1, CDNDays: 30, Workers: 2,
				RelayHops: 3},
		},
		{
			label: "relay hops with canonicalized per-hop profile",
			flags: mod(func(f *experimentFlags) { f.relayHops = 2; f.relayFaults = "dup=0.01,drop=0.25" }),
			want: runSpec{Kind: "experiment", Name: "all", Out: "-", Seed: 7,
				Hours: 2000, ProbeScale: 0.5, CDNScale: 0.1, CDNDays: 30, Workers: 2,
				RelayHops: 2, RelayFaults: "drop=0.25,dup=0.01"},
		},
		{
			label:   "relay faults require relay hops",
			flags:   mod(func(f *experimentFlags) { f.relayFaults = "drop=0.25" }),
			wantErr: "-relay-faults needs -relay-hops",
		},
		{
			label:   "negative relay hops",
			flags:   mod(func(f *experimentFlags) { f.relayHops = -1 }),
			wantErr: "-relay-hops must be >= 0",
		},
		{
			label:   "malformed faults",
			flags:   mod(func(f *experimentFlags) { f.faults = "drop=lots" }),
			wantErr: "experiment:",
		},
		{
			label:   "out-of-range loss",
			flags:   mod(func(f *experimentFlags) { f.loss = 1.5 }),
			wantErr: "experiment:",
		},
		{
			label:   "out-of-range relay profile",
			flags:   mod(func(f *experimentFlags) { f.relayHops = 1; f.relayFaults = "drop=2" }),
			wantErr: "-relay-faults:",
		},
	} {
		got, err := experimentSpec(tc.flags)
		if tc.wantErr != "" {
			if err == nil {
				t.Errorf("%s: got %+v, want error containing %q", tc.label, got, tc.wantErr)
			} else if !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("%s: error %q does not contain %q", tc.label, err, tc.wantErr)
			}
			continue
		}
		if err != nil {
			t.Errorf("%s: unexpected error %v", tc.label, err)
			continue
		}
		if got != tc.want {
			t.Errorf("%s:\n got %+v\nwant %+v", tc.label, got, tc.want)
		}
	}
}

// TestExperimentSpecKeySeparation: relay knobs must land in the
// checkpoint manifest key — a relay run can never resume a direct run's
// journal.
func TestExperimentSpecKeySeparation(t *testing.T) {
	direct, err := experimentSpec(experimentFlags{name: "all", out: "-", seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	relay, err := experimentSpec(experimentFlags{name: "all", out: "-", seed: 7, relayHops: 2})
	if err != nil {
		t.Fatal(err)
	}
	kd, err := specKey(direct)
	if err != nil {
		t.Fatal(err)
	}
	kr, err := specKey(relay)
	if err != nil {
		t.Fatal(err)
	}
	if kd == kr {
		t.Error("relay-hops did not change the checkpoint key")
	}
}
