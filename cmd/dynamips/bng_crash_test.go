package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"syscall"
	"testing"
	"time"
)

// bngArgs is the small-but-complete daemon run the crash test uses:
// both backends, both families, several rounds.
func bngArgs(workers int, ckpt, statsOut, snapOut string) []string {
	args := []string{
		"-subscribers", "2000", "-shards", "4", "-seed", "77",
		"-churn-hours", "8", "-round-hours", "2",
		"-workers", fmt.Sprint(workers),
		"-stats-out", statsOut,
		"-snapshot-out", snapOut,
	}
	if ckpt != "" {
		args = append(args, "-checkpoint", ckpt)
	}
	return args
}

func readStatsHours(t *testing.T, path string) int64 {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var v struct {
		VirtualHours int64 `json:"virtual_hours"`
	}
	if err := json.Unmarshal(raw, &v); err != nil {
		t.Fatalf("decoding %s: %v", path, err)
	}
	return v.VirtualHours
}

// TestServeBNGSigtermResume mirrors TestKillAndResume for the daemon:
// a SIGTERM mid-churn must drain at a round boundary (the command
// returns nil, not an error), persist the watermark and partial
// outputs, and a restarted daemon with the same flags — at a different
// worker count — must resume by replay and finish with -stats-out and
// -snapshot-out byte-identical to an uninterrupted reference run.
func TestServeBNGSigtermResume(t *testing.T) {
	base := t.TempDir()
	refStats := filepath.Join(base, "ref-stats.json")
	refSnap := filepath.Join(base, "ref-snap.bin")
	if err := cmdServeBNG(bngArgs(2, "", refStats, refSnap)); err != nil {
		t.Fatalf("reference run: %v", err)
	}
	wantStats, err := os.ReadFile(refStats)
	if err != nil {
		t.Fatal(err)
	}
	wantSnap, err := os.ReadFile(refSnap)
	if err != nil {
		t.Fatal(err)
	}
	if h := readStatsHours(t, refStats); h != 8 {
		t.Fatalf("reference run ended at hour %d, want 8", h)
	}

	// Interrupted run: deliver a real SIGTERM to ourselves after the
	// hour-2 round, then give the runtime a moment to route it to the
	// command's signal channel before the round loop polls it.
	ckpt := filepath.Join(base, "ckpt")
	midStats := filepath.Join(base, "mid-stats.json")
	midSnap := filepath.Join(base, "mid-snap.bin")
	fired := false
	bngRoundHook = func(hours int64) {
		if fired || hours < 2 {
			return
		}
		fired = true
		if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
			t.Errorf("sending SIGTERM: %v", err)
		}
		time.Sleep(200 * time.Millisecond)
	}
	defer func() { bngRoundHook = nil }()
	if err := cmdServeBNG(bngArgs(2, ckpt, midStats, midSnap)); err != nil {
		t.Fatalf("interrupted run: SIGTERM must drain gracefully, got %v", err)
	}
	bngRoundHook = nil
	if !fired {
		t.Fatal("round hook never fired")
	}
	midHours := readStatsHours(t, midStats)
	if midHours >= 8 {
		t.Fatalf("interrupted run churned to hour %d; SIGTERM did not interrupt", midHours)
	}

	// Restarted run resumes from the watermark — at a different worker
	// count — and must reproduce the reference bytes.
	finStats := filepath.Join(base, "fin-stats.json")
	finSnap := filepath.Join(base, "fin-snap.bin")
	if err := cmdServeBNG(bngArgs(5, ckpt, finStats, finSnap)); err != nil {
		t.Fatalf("resumed run: %v", err)
	}
	gotStats, err := os.ReadFile(finStats)
	if err != nil {
		t.Fatal(err)
	}
	gotSnap, err := os.ReadFile(finSnap)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotStats, wantStats) {
		t.Errorf("resumed /stats output differs from uninterrupted run:\n got: %s\nwant: %s", gotStats, wantStats)
	}
	if !bytes.Equal(gotSnap, wantSnap) {
		t.Error("resumed session-table snapshot differs from uninterrupted run")
	}
}

// TestServeBNGRejectsArgs: stray positional arguments are an error.
func TestServeBNGRejectsArgs(t *testing.T) {
	if err := cmdServeBNG([]string{"-subscribers", "100", "bogus"}); err == nil {
		t.Error("serve-bng accepted a stray positional argument")
	}
}
