package main

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"dynamips/internal/checkpoint"
	"dynamips/internal/faultnet"
)

// experimentArgs is the small-but-complete pipeline configuration the
// crash tests run: every experiment ("all"), both pipelines, tiny scales.
func experimentArgs(workers int, faults, out, ckpt string) []string {
	args := []string{
		"-hours", "2000", "-probe-scale", "0.03",
		"-cdn-scale", "0.02", "-cdn-days", "30",
		"-workers", fmt.Sprint(workers),
		"-o", out,
	}
	if faults != "" {
		args = append(args, "-faults", faults)
	}
	if ckpt != "" {
		args = append(args, "-checkpoint", ckpt)
	}
	return append(args, "all")
}

// TestKillAndResume is the crash-injection harness: for each worker count
// and fault profile it computes an uninterrupted reference output, then
// repeatedly kills the pipeline at seeded journal sync points (via the
// deterministic crash plan, byte-equivalent to a SIGKILL mid-append) and
// checks that 'dynamips resume' completes the run with output
// byte-identical to the reference — including when the resume runs at a
// different worker count than the killed run.
func TestKillAndResume(t *testing.T) {
	if testing.Short() {
		t.Skip("crash matrix is slow")
	}
	defer checkpoint.SetCrashPlan(0, false)
	const killPoints = 3
	for _, faults := range []string{"", "drop=0.1"} {
		for _, workers := range []int{1, 4} {
			t.Run(fmt.Sprintf("workers=%d,faults=%q", workers, faults), func(t *testing.T) {
				base := t.TempDir()
				ref := filepath.Join(base, "ref.txt")
				if err := cmdExperiment(experimentArgs(workers, faults, ref, "")); err != nil {
					t.Fatalf("reference run: %v", err)
				}
				want, err := os.ReadFile(ref)
				if err != nil {
					t.Fatal(err)
				}

				// Seeded kill points; torn alternates so both crash modes
				// (before the frame write and mid-write) are exercised.
				stream := faultnet.NewStream(uint64(workers)*1000+uint64(len(faults)), 7)
				for k := 0; k < killPoints; k++ {
					killAt := int(stream.IntN(40)) + 1
					torn := k%2 == 1
					dir := filepath.Join(base, fmt.Sprintf("ckpt-%d", k))
					out := filepath.Join(base, fmt.Sprintf("out-%d.txt", k))

					checkpoint.SetCrashPlan(killAt, torn)
					err := cmdExperiment(experimentArgs(workers, faults, out, dir))
					checkpoint.SetCrashPlan(0, false)
					if !errors.Is(err, checkpoint.ErrCrashInjected) {
						t.Fatalf("kill %d (append %d, torn=%v): err = %v, want ErrCrashInjected", k, killAt, torn, err)
					}
					if _, err := os.Stat(out); !os.IsNotExist(err) {
						t.Fatalf("kill %d: crashed run published output (atomic writer leaked): %v", k, err)
					}

					// Resume at the other worker count: the journal prefix
					// plus the determinism contract must reproduce the
					// reference bytes regardless.
					resumeArgs := []string{"-workers", fmt.Sprint(5 - workers), dir}
					if err := cmdResume(resumeArgs); err != nil {
						t.Fatalf("kill %d (append %d, torn=%v): resume: %v", k, killAt, torn, err)
					}
					got, err := os.ReadFile(out)
					if err != nil {
						t.Fatalf("kill %d: resumed output missing: %v", k, err)
					}
					if !bytes.Equal(got, want) {
						t.Fatalf("kill %d (append %d, torn=%v): resumed output differs from uninterrupted run", k, killAt, torn)
					}
				}
			})
		}
	}
}

// TestResumeAfterTrailingCorruption: a journal whose tail was damaged
// after the crash (bit rot, torn sector) must recover by truncation —
// logged, never a panic — and still resume to byte-identical output.
func TestResumeAfterTrailingCorruption(t *testing.T) {
	defer checkpoint.SetCrashPlan(0, false)
	base := t.TempDir()
	ref := filepath.Join(base, "ref.txt")
	if err := cmdExperiment(experimentArgs(2, "", ref, "")); err != nil {
		t.Fatalf("reference run: %v", err)
	}
	want, err := os.ReadFile(ref)
	if err != nil {
		t.Fatal(err)
	}

	dir := filepath.Join(base, "ckpt")
	out := filepath.Join(base, "out.txt")
	checkpoint.SetCrashPlan(9, false)
	runErr := cmdExperiment(experimentArgs(2, "", out, dir))
	checkpoint.SetCrashPlan(0, false)
	if !errors.Is(runErr, checkpoint.ErrCrashInjected) {
		t.Fatalf("err = %v, want ErrCrashInjected", runErr)
	}

	// Flip the last byte of the atlas journal: the final frame now fails
	// its CRC and recovery must drop it.
	wal := filepath.Join(dir, "atlas.wal")
	b, err := os.ReadFile(wal)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)-1] ^= 0xFF
	if err := os.WriteFile(wal, b, 0o644); err != nil {
		t.Fatal(err)
	}

	if err := cmdResume([]string{dir}); err != nil {
		t.Fatalf("resume after corruption: %v", err)
	}
	got, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("output after trailing-frame truncation differs from uninterrupted run")
	}
}

// TestResumeErrors covers the resume command's refusal paths.
func TestResumeErrors(t *testing.T) {
	if err := cmdResume(nil); err == nil {
		t.Error("resume without a directory accepted")
	}
	if err := cmdResume([]string{t.TempDir()}); err == nil {
		t.Error("resume of an empty directory accepted")
	}
	// A manifest recording an unknown command kind must be rejected.
	dir := t.TempDir()
	key, err := specKey(runSpec{Kind: "mystery", Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	run, err := checkpoint.Open(dir, key, []byte(`{"kind":"mystery","seed":3}`), nil)
	if err != nil {
		t.Fatal(err)
	}
	run.Close()
	if err := cmdResume([]string{dir}); err == nil {
		t.Error("unknown command kind accepted")
	}
}

// TestGenCDNCheckpointResume exercises the second checkpointed entry
// point: gen cdn with -checkpoint, killed and resumed.
func TestGenCDNCheckpointResume(t *testing.T) {
	defer checkpoint.SetCrashPlan(0, false)
	base := t.TempDir()
	ref := filepath.Join(base, "ref.csv")
	common := []string{"cdn", "-scale", "0.02", "-days", "30", "-workers", "2"}
	if err := cmdGen(append(common, "-o", ref)); err != nil {
		t.Fatalf("reference run: %v", err)
	}
	want, err := os.ReadFile(ref)
	if err != nil {
		t.Fatal(err)
	}

	dir := filepath.Join(base, "ckpt")
	out := filepath.Join(base, "out.csv")
	checkpoint.SetCrashPlan(2, true)
	runErr := cmdGen(append(common, "-o", out, "-checkpoint", dir))
	checkpoint.SetCrashPlan(0, false)
	if !errors.Is(runErr, checkpoint.ErrCrashInjected) {
		t.Fatalf("err = %v, want ErrCrashInjected", runErr)
	}
	if err := cmdResume([]string{dir}); err != nil {
		t.Fatalf("resume: %v", err)
	}
	got, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("resumed gen cdn output differs from uninterrupted run")
	}
}

// TestCheckpointStaleKeyStartsFresh: pointing -checkpoint at a directory
// journaled under different flags must not replay its units.
func TestCheckpointStaleKeyStartsFresh(t *testing.T) {
	defer checkpoint.SetCrashPlan(0, false)
	base := t.TempDir()
	dir := filepath.Join(base, "ckpt")
	out := filepath.Join(base, "out.csv")
	common := []string{"cdn", "-scale", "0.02", "-days", "30", "-checkpoint", dir}
	checkpoint.SetCrashPlan(2, false)
	err := cmdGen(append(common, "-seed", "1", "-o", out))
	checkpoint.SetCrashPlan(0, false)
	if !errors.Is(err, checkpoint.ErrCrashInjected) {
		t.Fatalf("err = %v", err)
	}
	// Different seed, same directory: must discard and complete cleanly.
	if err := cmdGen(append(common, "-seed", "2", "-o", out)); err != nil {
		t.Fatalf("run with changed seed: %v", err)
	}
	ref := filepath.Join(base, "ref.csv")
	if err := cmdGen([]string{"cdn", "-scale", "0.02", "-days", "30", "-seed", "2", "-o", ref}); err != nil {
		t.Fatal(err)
	}
	got, _ := os.ReadFile(out)
	want, _ := os.ReadFile(ref)
	if !bytes.Equal(got, want) {
		t.Fatal("stale checkpoint contaminated a re-keyed run")
	}
}

// TestAnalyzeCDNStreamCheckpointResume exercises the third checkpointed
// entry point: analyze-cdn -stream with -checkpoint, killed mid-shard and
// resumed to the in-memory path's exact report.
func TestAnalyzeCDNStreamCheckpointResume(t *testing.T) {
	defer checkpoint.SetCrashPlan(0, false)
	base := t.TempDir()
	csv := filepath.Join(base, "assoc.csv")
	if err := cmdGen([]string{"cdn", "-scale", "0.02", "-days", "30", "-o", csv}); err != nil {
		t.Fatalf("gen cdn: %v", err)
	}
	ref := filepath.Join(base, "ref.txt")
	if err := cmdAnalyzeCDN([]string{"-o", ref, csv}); err != nil {
		t.Fatalf("reference analyze-cdn: %v", err)
	}
	want, err := os.ReadFile(ref)
	if err != nil {
		t.Fatal(err)
	}

	dir := filepath.Join(base, "ckpt")
	out := filepath.Join(base, "out.txt")
	checkpoint.SetCrashPlan(3, true)
	runErr := cmdAnalyzeCDN([]string{"-stream", "-shards", "8", "-checkpoint", dir, "-o", out, csv})
	checkpoint.SetCrashPlan(0, false)
	if !errors.Is(runErr, checkpoint.ErrCrashInjected) {
		t.Fatalf("err = %v, want ErrCrashInjected", runErr)
	}
	if err := cmdResume([]string{dir}); err != nil {
		t.Fatalf("resume: %v", err)
	}
	got, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("resumed analyze-cdn report differs from the in-memory path")
	}
}
