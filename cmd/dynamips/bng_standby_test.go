package main

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"dynamips/internal/bng"
)

const standbyScenario = "failover-at=4,policy=renumber"

// TestServeBNGStandbyPromotion runs the full warm-standby flow: an
// in-process active daemon serves the API while a serve-bng -standby
// invocation tracks it (hash + codec-level snapshot sync), loses it, and
// promotes itself. The promoted daemon's outputs must be byte-identical
// to an uninterrupted active run with the same flags — the
// lease-assignment equivalent of a hitless takeover.
func TestServeBNGStandbyPromotion(t *testing.T) {
	base := t.TempDir()
	refStats := filepath.Join(base, "ref-stats.json")
	refSnap := filepath.Join(base, "ref-snap.bin")
	ref := []string{
		"-subscribers", "2000", "-shards", "4", "-seed", "77",
		"-churn-hours", "8", "-round-hours", "2", "-workers", "2",
		"-scenario", standbyScenario,
		"-stats-out", refStats, "-snapshot-out", refSnap,
	}
	if err := cmdServeBNG(ref); err != nil {
		t.Fatalf("reference run: %v", err)
	}
	wantStats, err := os.ReadFile(refStats)
	if err != nil {
		t.Fatal(err)
	}
	wantSnap, err := os.ReadFile(refSnap)
	if err != nil {
		t.Fatal(err)
	}

	// The active: an in-process daemon churned past the failover hour,
	// serving the API the standby syncs from.
	cfg := bng.DefaultConfig(2000, 77)
	cfg.ShardBits = 4
	if cfg.Scenario, err = bng.ParseScenario(standbyScenario); err != nil {
		t.Fatal(err)
	}
	active, err := bng.New(cfg, bng.Options{Workers: 2, RoundHours: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := active.Churn(6); err != nil {
		t.Fatal(err)
	}
	api, err := active.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	// Kill the active shortly after the standby has had a few sync
	// rounds. The exact takeover instant does not matter: the standby
	// replays deterministically, so the post-promotion churn to hour 8
	// lands on the same bytes regardless.
	go func() {
		time.Sleep(400 * time.Millisecond)
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		defer cancel()
		api.Shutdown(ctx) //nolint:errcheck // the poll misses are the point
	}()

	sbStats := filepath.Join(base, "sb-stats.json")
	sbSnap := filepath.Join(base, "sb-snap.bin")
	sb := []string{
		"-subscribers", "2000", "-shards", "4", "-seed", "77",
		"-churn-hours", "8", "-round-hours", "2", "-workers", "5",
		"-scenario", standbyScenario,
		"-standby", fmt.Sprintf("http://%s", api.Addr()),
		"-poll", "50ms", "-max-misses", "2",
		"-stats-out", sbStats, "-snapshot-out", sbSnap,
	}
	if err := cmdServeBNG(sb); err != nil {
		t.Fatalf("standby run: %v", err)
	}

	gotStats, err := os.ReadFile(sbStats)
	if err != nil {
		t.Fatal(err)
	}
	gotSnap, err := os.ReadFile(sbSnap)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotStats, wantStats) {
		t.Errorf("promoted standby /stats differs from uninterrupted active:\n got: %s\nwant: %s", gotStats, wantStats)
	}
	if !bytes.Equal(gotSnap, wantSnap) {
		t.Error("promoted standby session-table snapshot differs from uninterrupted active")
	}
	if h := readStatsHours(t, sbStats); h != 8 {
		t.Errorf("promoted standby ended at hour %d, want 8", h)
	}
}

// TestServeBNGScenarioFlag: a malformed -scenario is rejected before any
// churn.
func TestServeBNGScenarioFlag(t *testing.T) {
	if err := cmdServeBNG([]string{"-scenario", "policy=sideways"}); err == nil {
		t.Error("serve-bng accepted a bogus scenario policy")
	}
	if err := cmdServeBNG([]string{"-scenario", "relay-drop=0.5"}); err == nil {
		t.Error("serve-bng accepted relay-drop without relay-hops")
	}
}
