package main

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func TestCmdProfiles(t *testing.T) {
	if err := cmdProfiles(nil); err != nil {
		t.Fatalf("cmdProfiles: %v", err)
	}
}

func TestGenAtlasThenAnalyze(t *testing.T) {
	out := filepath.Join(t.TempDir(), "series.jsonl")
	if err := cmdGen([]string{"atlas", "-profile", "Netcologne", "-probes", "25", "-hours", "4000", "-o", out}); err != nil {
		t.Fatalf("gen atlas: %v", err)
	}
	st, err := os.Stat(out)
	if err != nil || st.Size() == 0 {
		t.Fatalf("output missing or empty: %v", err)
	}
	if err := cmdAnalyze([]string{out}); err != nil {
		t.Fatalf("analyze: %v", err)
	}
}

func TestGenAtlasRawRecords(t *testing.T) {
	out := filepath.Join(t.TempDir(), "records.jsonl")
	if err := cmdGen([]string{"atlas", "-profile", "Versatel", "-probes", "12", "-hours", "1500", "-raw", "-o", out}); err != nil {
		t.Fatalf("gen atlas -raw: %v", err)
	}
	st, err := os.Stat(out)
	if err != nil || st.Size() == 0 {
		t.Fatalf("raw output missing: %v", err)
	}
}

func TestGenCDNThenAnalyzeCDN(t *testing.T) {
	out := filepath.Join(t.TempDir(), "assoc.csv")
	if err := cmdGen([]string{"cdn", "-scale", "0.03", "-days", "60", "-o", out}); err != nil {
		t.Fatalf("gen cdn: %v", err)
	}
	if err := cmdAnalyzeCDN([]string{out}); err != nil {
		t.Fatalf("analyze-cdn: %v", err)
	}
}

func TestCmdErrors(t *testing.T) {
	if err := cmdGen(nil); err == nil {
		t.Error("gen without kind accepted")
	}
	if err := cmdGen([]string{"bogus"}); err == nil {
		t.Error("gen bogus accepted")
	}
	if err := cmdGen([]string{"atlas", "-profile", "NoSuchISP", "-o", filepath.Join(t.TempDir(), "x")}); err == nil {
		t.Error("unknown profile accepted")
	}
	if err := cmdAnalyze(nil); err == nil {
		t.Error("analyze without file accepted")
	}
	if err := cmdAnalyze([]string{"/nonexistent/file.jsonl"}); err == nil {
		t.Error("missing file accepted")
	}
	if err := cmdAnalyzeCDN(nil); err == nil {
		t.Error("analyze-cdn without file accepted")
	}
	if err := cmdExperiment(nil); err == nil {
		t.Error("experiment without name accepted")
	}
	if err := cmdExperiment([]string{"no-such-experiment"}); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestCmdExperimentSmall(t *testing.T) {
	args := []string{"-hours", "4000", "-probe-scale", "0.05", "sanitize"}
	if err := cmdExperiment(args); err != nil {
		t.Fatalf("experiment sanitize: %v", err)
	}
}

func TestAnalyzeRIPEFormat(t *testing.T) {
	in := filepath.Join(t.TempDir(), "ripe.jsonl")
	data := `{"prb_id":7,"timestamp":3600,"src_addr":"192.168.1.9","result":[{"af":4,"hdr":["X-Client-IP: 81.10.0.1"]}]}
`
	// Repeat enough hours to clear the one-month sanitizer minimum.
	var lines []byte
	for h := int64(0); h < 800; h++ {
		lines = append(lines, []byte(
			`{"prb_id":7,"timestamp":`+fmt.Sprint(3600*h)+`,"src_addr":"192.168.1.9","result":[{"af":4,"hdr":["X-Client-IP: 81.10.0.1"]}]}`+"\n")...)
	}
	_ = data
	if err := os.WriteFile(in, lines, 0o600); err != nil {
		t.Fatal(err)
	}
	if err := cmdAnalyze([]string{"-format", "ripe", "-epoch", "0", in}); err != nil {
		t.Fatalf("analyze ripe: %v", err)
	}
	if err := cmdAnalyze([]string{"-format", "bogus", in}); err == nil {
		t.Error("bogus format accepted")
	}
}

func TestAnalyzeRecordsFormat(t *testing.T) {
	series := filepath.Join(t.TempDir(), "records.jsonl")
	if err := cmdGen([]string{"atlas", "-profile", "Versatel", "-probes", "10", "-hours", "1200", "-raw", "-o", series}); err != nil {
		t.Fatalf("gen: %v", err)
	}
	if err := cmdAnalyze([]string{"-format", "records", series}); err != nil {
		t.Fatalf("analyze records: %v", err)
	}
}

func TestAnalyzeCDNWithPfx2as(t *testing.T) {
	dir := t.TempDir()
	assoc := filepath.Join(dir, "assoc.csv")
	if err := cmdGen([]string{"cdn", "-scale", "0.02", "-days", "40", "-o", assoc}); err != nil {
		t.Fatalf("gen cdn: %v", err)
	}
	pfx := filepath.Join(dir, "pfx2as.txt")
	table := "87.128.0.0\t10\t3320\n2003::\t19\t3320\n"
	if err := os.WriteFile(pfx, []byte(table), 0o600); err != nil {
		t.Fatal(err)
	}
	if err := cmdAnalyzeCDN([]string{"-pfx2as", pfx, assoc}); err != nil {
		t.Fatalf("analyze-cdn with pfx2as: %v", err)
	}
}

// TestGenCDNStreamMatchesInMemory: the -stream flag must not change a
// byte of either the generated CSV or the analyze-cdn report.
func TestGenCDNStreamMatchesInMemory(t *testing.T) {
	base := t.TempDir()
	plain := filepath.Join(base, "plain.csv")
	streamed := filepath.Join(base, "stream.csv")
	common := []string{"cdn", "-scale", "0.02", "-days", "30"}
	if err := cmdGen(append(common, "-o", plain)); err != nil {
		t.Fatalf("gen cdn: %v", err)
	}
	if err := cmdGen(append(common, "-stream", "-spill-dir", filepath.Join(base, "spill"), "-o", streamed)); err != nil {
		t.Fatalf("gen cdn -stream: %v", err)
	}
	want, err := os.ReadFile(plain)
	if err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(streamed)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Fatal("gen cdn -stream output differs from the in-memory path")
	}

	repPlain := filepath.Join(base, "rep-plain.txt")
	repStream := filepath.Join(base, "rep-stream.txt")
	if err := cmdAnalyzeCDN([]string{"-o", repPlain, plain}); err != nil {
		t.Fatalf("analyze-cdn: %v", err)
	}
	if err := cmdAnalyzeCDN([]string{"-stream", "-shards", "8", "-o", repStream, plain}); err != nil {
		t.Fatalf("analyze-cdn -stream: %v", err)
	}
	wantRep, err := os.ReadFile(repPlain)
	if err != nil {
		t.Fatal(err)
	}
	gotRep, err := os.ReadFile(repStream)
	if err != nil {
		t.Fatal(err)
	}
	if string(gotRep) != string(wantRep) {
		t.Fatalf("analyze-cdn -stream report differs:\n got: %s\nwant: %s", gotRep, wantRep)
	}

	if err := cmdAnalyzeCDN([]string{"-checkpoint", filepath.Join(base, "ckpt"), plain}); err == nil {
		t.Error("analyze-cdn -checkpoint without -stream accepted")
	}
}
