package main

import (
	"bytes"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"dynamips/internal/bng"
	"dynamips/internal/isp"
)

// startTestBNG churns a small daemon and serves its read-only API from
// an httptest listener, returning the base URL the generators dial.
func startTestBNG(t *testing.T) string {
	t.Helper()
	cfg := bng.DefaultConfig(300, 9)
	cfg.ShardBits = 2
	d, err := bng.New(cfg, bng.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Churn(2); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(d.Handler())
	t.Cleanup(srv.Close)
	return srv.URL
}

func TestBNGProfileFromDaemon(t *testing.T) {
	url := startTestBNG(t)

	// Default group: the daemon's first (residential, RADIUS, /56).
	p, err := bngProfile(url, "")
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != "bng/residential" || p.ASN != bngBaseASN {
		t.Errorf("default group: got %s AS%d, want bng/residential AS%d", p.Name, p.ASN, bngBaseASN)
	}
	if p.Backend != isp.BackendRADIUS || p.Mobile {
		t.Errorf("residential: backend=%v mobile=%v, want RADIUS fixed-line", p.Backend, p.Mobile)
	}
	if p.LeaseHours != 4 || p.DelegatedLen != 56 {
		t.Errorf("residential: lease=%dh delegated=/%d, want 4h //56", p.LeaseHours, p.DelegatedLen)
	}
	if got := p.BGP4[0].String(); got != "10.0.0.0/9" {
		t.Errorf("residential v4 pool %s, want 10.0.0.0/9", got)
	}
	if err := p.Validate(); err != nil {
		t.Errorf("remote profile fails Validate: %v", err)
	}

	// Named groups: DHCP backend and the bare-/64 mobile signature.
	if p, err = bngProfile(url, "business"); err != nil {
		t.Fatal(err)
	} else if p.Backend != isp.BackendDHCP {
		t.Errorf("business backend %v, want DHCP", p.Backend)
	}
	if p, err = bngProfile(url, "mobile"); err != nil {
		t.Fatal(err)
	} else if !p.Mobile || p.DelegatedLen != 64 {
		t.Errorf("mobile: mobile=%v delegated=/%d, want bare /64 cellular", p.Mobile, p.DelegatedLen)
	}

	if _, err := bngProfile(url, "nonesuch"); err == nil {
		t.Error("unknown group name must error")
	}
	if _, err := bngProfile("http://127.0.0.1:1", ""); err == nil {
		t.Error("unreachable daemon must error")
	}
}

func TestBNGOperatorsFromDaemon(t *testing.T) {
	url := startTestBNG(t)
	ops, err := bngOperators(url)
	if err != nil {
		t.Fatal(err)
	}
	if len(ops) != 3 {
		t.Fatalf("got %d operators, want one per daemon group (3)", len(ops))
	}
	total := 0
	for i, op := range ops {
		total += op.Subscribers
		if op.ASN != uint32(bngBaseASN+i) {
			t.Errorf("operator %s ASN %d, want %d", op.Name, op.ASN, bngBaseASN+i)
		}
		if wantMobile := op.DelegatedLen == 64; op.Mobile != wantMobile {
			t.Errorf("operator %s: mobile=%v with delegation /%d", op.Name, op.Mobile, op.DelegatedLen)
		}
		if !op.BGP4.IsValid() || !op.BGP6.IsValid() {
			t.Errorf("operator %s: missing prefixes", op.Name)
		}
	}
	if total != 300 {
		t.Errorf("operators cover %d subscribers, want the daemon's 300", total)
	}
	if !ops[2].Mobile || ops[0].Mobile {
		t.Errorf("mobile split wrong: residential=%v mobile=%v", ops[0].Mobile, ops[2].Mobile)
	}
}

// TestGenAtlasFromDaemon drives the full 'gen atlas -bng' path against
// a live API and checks the output is non-empty and reproducible.
func TestGenAtlasFromDaemon(t *testing.T) {
	url := startTestBNG(t)
	dir := t.TempDir()
	out1 := filepath.Join(dir, "a1.jsonl")
	out2 := filepath.Join(dir, "a2.jsonl")
	args := []string{"atlas", "-bng", url, "-probes", "20", "-hours", "48", "-seed", "5"}
	if err := cmdGen(append(args, "-o", out1)); err != nil {
		t.Fatal(err)
	}
	if err := cmdGen(append(args, "-o", out2)); err != nil {
		t.Fatal(err)
	}
	b1, err := os.ReadFile(out1)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := os.ReadFile(out2)
	if err != nil {
		t.Fatal(err)
	}
	if len(b1) == 0 {
		t.Fatal("gen atlas -bng wrote an empty dataset")
	}
	if !bytes.Equal(b1, b2) {
		t.Error("gen atlas -bng is not reproducible across runs")
	}
}

// TestGenCDNFromDaemon drives 'gen cdn -bng' end to end and checks the
// checkpoint incompatibility gate.
func TestGenCDNFromDaemon(t *testing.T) {
	url := startTestBNG(t)
	dir := t.TempDir()
	out := filepath.Join(dir, "assoc.csv")
	err := cmdGen([]string{"cdn", "-bng", url, "-days", "3", "-scale", "0.2", "-seed", "5", "-o", out})
	if err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if lines := bytes.Count(raw, []byte{'\n'}); lines < 2 {
		t.Fatalf("gen cdn -bng wrote only %d lines", lines)
	}

	if err := cmdGen([]string{"cdn", "-bng", url, "-checkpoint", filepath.Join(dir, "ckpt"), "-o", out}); err == nil {
		t.Error("-bng with -checkpoint must be rejected")
	}
}
