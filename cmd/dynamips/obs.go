package main

import (
	"fmt"
	"io"
	"os"

	"dynamips/internal/obs"
)

// obsRun is one invocation's observability wiring: the observer the
// pipeline records into (allocated when -metrics is set) and the optional
// -pprof endpoint.
type obsRun struct {
	o       *obs.Observer
	metrics string
	pprof   *obs.PprofServer
}

// startObs builds the per-invocation observability wiring. A non-empty
// metrics path allocates the observer the pipeline Configs carry; a
// non-empty pprof address starts the profiling endpoint immediately.
func startObs(metrics, pprofAddr string) (*obsRun, error) {
	r := &obsRun{metrics: metrics}
	if metrics != "" {
		r.o = obs.NewObserver()
	}
	if pprofAddr != "" {
		srv, err := obs.StartPprof(pprofAddr)
		if err != nil {
			return nil, err
		}
		r.pprof = srv
		logf("pprof listening on http://%s/debug/pprof/", srv.Addr())
	}
	return r, nil
}

// finish stops pprof and dumps the metrics snapshot. Deferred by every
// command, so even failed runs leave their counters behind; its error only
// surfaces when the command itself succeeded.
func (r *obsRun) finish() error {
	if r == nil {
		return nil
	}
	r.pprof.Close()
	if r.o == nil || r.metrics == "" {
		return nil
	}
	snap := r.o.Snapshot()
	return writeOutput(r.metrics, snap.WriteJSON)
}

// cmdStats renders a -metrics snapshot file as the human-readable
// per-stage report.
func cmdStats(args []string) error {
	fs := newFlagSet("stats")
	out := fs.String("o", "-", "report output file (default stdout; written atomically)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("stats: need one metrics JSON file (from -metrics)")
	}
	f, err := os.Open(fs.Arg(0))
	if err != nil {
		return fmt.Errorf("stats: opening metrics file: %w", err)
	}
	defer f.Close()
	snap, err := obs.ReadSnapshot(f)
	if err != nil {
		return err
	}
	return writeOutput(*out, func(w io.Writer) error {
		return snap.Render(w)
	})
}
