package main

import (
	"bytes"
	"context"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dynamips/internal/bng"
)

// captureStdout runs fn with os.Stdout redirected into a pipe and
// returns what it wrote.
func captureStdout(t *testing.T, fn func() error) string {
	t.Helper()
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	old := os.Stdout
	os.Stdout = w
	done := make(chan string)
	go func() {
		var buf bytes.Buffer
		_, _ = io.Copy(&buf, r)
		done <- buf.String()
	}()
	ferr := fn()
	os.Stdout = old
	w.Close()
	out := <-done
	r.Close()
	if ferr != nil {
		t.Fatalf("command failed: %v\noutput so far:\n%s", ferr, out)
	}
	return out
}

// TestWatchLiveSmoke drives 'dynamips watch -bng -once' against an
// in-process serve-bng daemon over real HTTP.
func TestWatchLiveSmoke(t *testing.T) {
	cfg := bng.DefaultConfig(2000, 3)
	cfg.ShardBits = 3
	d, err := bng.New(cfg, bng.Options{Workers: 2, RoundHours: 6})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Churn(24); err != nil {
		t.Fatal(err)
	}
	api, err := d.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer api.Shutdown(context.Background())

	out := captureStdout(t, func() error {
		return cmdWatch([]string{"-bng", "http://" + api.Addr(), "-once"})
	})
	for _, want := range []string{"virtual hour 24", bng.SkDurSession, bng.SkChurn24, bng.SkPfx64, "/24="} {
		if !strings.Contains(out, want) {
			t.Errorf("watch -bng output missing %q:\n%s", want, out)
		}
	}
}

// TestWatchSpillTail: 'watch -spill -once' folds the spill files a
// streaming gen run left behind.
func TestWatchSpillTail(t *testing.T) {
	dir := t.TempDir()
	spill := filepath.Join(dir, "spill")
	out := filepath.Join(dir, "assoc.csv")
	if err := cmdGen([]string{"cdn", "-scale", "0.03", "-days", "60", "-stream",
		"-spill-dir", spill, "-o", out}); err != nil {
		t.Fatalf("gen cdn -stream: %v", err)
	}
	got := captureStdout(t, func() error {
		return cmdWatch([]string{"-spill", spill, "-once"})
	})
	if strings.Contains(got, " 0 association rows folded") {
		t.Fatalf("watch -spill folded nothing:\n%s", got)
	}
	for _, want := range []string{"rows folded", "rows24", "rows64", "pfx24", "pfx64"} {
		if !strings.Contains(got, want) {
			t.Errorf("watch -spill output missing %q:\n%s", want, got)
		}
	}
}

// TestWatchFlagErrors pins the mutually-exclusive source flags.
func TestWatchFlagErrors(t *testing.T) {
	if err := cmdWatch(nil); err == nil {
		t.Error("watch without a source accepted")
	}
	if err := cmdWatch([]string{"-bng", "http://x", "-spill", "/tmp"}); err == nil {
		t.Error("watch with both sources accepted")
	}
	if err := cmdWatch([]string{"-bng", "http://x", "extra"}); err == nil {
		t.Error("watch with positional arguments accepted")
	}
}

// TestFmtSketchKey pins the address-space renderings.
func TestFmtSketchKey(t *testing.T) {
	if got := fmtSketchKey("churn24", 0x0A0B0C); got != "10.11.12.0/24" {
		t.Errorf("churn24 key: %q", got)
	}
	if got := fmtSketchKey("rows64", 0x20010DB800000000); got != "2001:db8::/64" {
		t.Errorf("rows64 key: %q", got)
	}
	if got := fmtSketchKey("other", 0x2A); got != "0x2a" {
		t.Errorf("other key: %q", got)
	}
}
