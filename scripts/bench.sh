#!/bin/sh
# bench.sh — run the benchmark suite at reduced scale and record ns/op
# figures to the next free BENCH_<n>.json in the repo root. BENCHTIME
# picks the go -benchtime value (default 10x: enough iterations to damp
# scheduler noise while keeping the whole suite under a minute).
#
# To refresh the CI regression baseline instead, pass a target path:
#
#   scripts/bench.sh testdata/bench_baseline.json
set -eu

cd "$(dirname "$0")/.."
BENCHTIME="${BENCHTIME:-10x}"

out="${1:-}"
if [ -z "$out" ]; then
	n=1
	while [ -e "BENCH_${n}.json" ]; do
		n=$((n + 1))
	done
	out="BENCH_${n}.json"
fi

go test -run '^$' -bench . -benchtime "$BENCHTIME" -json . \
	| go run ./scripts/benchcheck -write "$out" -note "benchtime=$BENCHTIME"
