// Command benchcheck parses `go test -json -bench` output on stdin and
// either records the ns/op figures as a JSON baseline (-write) or compares
// them against a checked-in baseline (-baseline), failing when any
// benchmark slowed down by more than the threshold factor.
//
// Record a baseline (scripts/bench.sh wraps this):
//
//	go test -run '^$' -bench . -benchtime 10x -json . \
//	    | go run ./scripts/benchcheck -write BENCH_1.json
//
// Gate against the checked-in baseline (CI wraps this):
//
//	go test -run '^$' -bench . -benchtime 10x -json . \
//	    | go run ./scripts/benchcheck -baseline testdata/bench_baseline.json
//
// Only benchmarks present in both the baseline and the run are compared,
// so a reduced CI smoke (-bench over a subset) gates cleanly against a
// full baseline. The comparison is absolute ns/op, so thresholds must
// absorb machine-to-machine variance: the default factor of 2 flags real
// regressions (accidental rescaling, a quadratic merge) while tolerating
// scheduler noise at small -benchtime.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Baseline is the on-disk format: benchmark name (GOMAXPROCS suffix
// stripped) to nanoseconds per operation. Ceilings are hand-authored
// absolute maxima on extra b.ReportMetric figures, keyed
// "BenchmarkName/unit" (e.g. "BenchmarkStreamCDNPipeline/peak-mem-bytes"):
// unlike ns/op they are not ratio-gated against a recorded figure but
// enforced as hard limits — the streaming pipeline's bounded-memory
// contract. -write preserves them from the existing file.
type Baseline struct {
	Note     string             `json:"note,omitempty"`
	NsPerOp  map[string]float64 `json:"ns_per_op"`
	Ceilings map[string]float64 `json:"ceilings,omitempty"`
}

// testEvent is the subset of the test2json event stream benchcheck reads.
type testEvent struct {
	Action  string `json:"Action"`
	Package string `json:"Package"`
	Test    string `json:"Test"`
	Output  string `json:"Output"`
}

// benchLine matches a benchmark result line inside a test2json Output
// event, e.g. "BenchmarkTable1-8   100   123456 ns/op". The tail
// captures any extra "<value> <unit>" metric pairs appended by
// b.ReportMetric (e.g. "52428800 peak-mem-bytes").
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.]+) ns/op((?:\s+[0-9.]+ [^\s]+)*)`)

// metricPair splits one "<value> <unit>" extra metric out of the tail.
var metricPair = regexp.MustCompile(`([0-9.]+) ([^\s]+)`)

func main() {
	write := flag.String("write", "", "write parsed ns/op figures to this JSON file")
	baseline := flag.String("baseline", "", "compare parsed figures against this JSON baseline")
	threshold := flag.Float64("threshold", 2.0, "fail when ns/op exceeds baseline by more than this factor")
	note := flag.String("note", "", "note to embed when writing a baseline")
	flag.Parse()

	if (*write == "") == (*baseline == "") {
		fmt.Fprintln(os.Stderr, "benchcheck: exactly one of -write or -baseline is required")
		os.Exit(2)
	}

	got, metrics, err := parseBench(os.Stdin)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchcheck: %v\n", err)
		os.Exit(1)
	}
	if len(got) == 0 {
		fmt.Fprintln(os.Stderr, "benchcheck: no benchmark results on stdin (did the bench run fail?)")
		os.Exit(1)
	}

	if *write != "" {
		b := Baseline{Note: *note, NsPerOp: got}
		// Ceilings are hand-authored, not measured: carry them over from
		// the file being refreshed so a baseline rewrite never drops the
		// memory gate.
		if prev, err := readBaseline(*write); err == nil {
			b.Ceilings = prev.Ceilings
		}
		if err := writeBaseline(*write, b); err != nil {
			fmt.Fprintf(os.Stderr, "benchcheck: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("benchcheck: wrote %d benchmarks to %s\n", len(got), *write)
		return
	}

	base, err := readBaseline(*baseline)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchcheck: %v\n", err)
		os.Exit(1)
	}
	failed := compare(os.Stdout, base.NsPerOp, got, *threshold)
	if checkCeilings(os.Stdout, base.Ceilings, metrics) {
		failed = true
	}
	if failed {
		os.Exit(1)
	}
}

// parseBench reads a test2json stream and returns ns/op by benchmark
// name. A single result line arrives split across Output events (the
// testing package flushes the padded name and the timing separately), so
// fragments are reassembled per test and matched only at line boundaries.
// Repeated runs of the same benchmark keep the fastest figure — the
// least noise-inflated observation. Extra b.ReportMetric pairs come back
// keyed "BenchmarkName/unit", keeping the LARGEST observation: the extra
// metrics gate resource ceilings, where the worst run is the honest one.
func parseBench(r io.Reader) (map[string]float64, map[string]float64, error) {
	out := map[string]float64{}
	metrics := map[string]float64{}
	partial := map[string]string{} // package/test -> unterminated line fragment
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		var ev testEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			continue // tolerate non-JSON lines (build noise)
		}
		if ev.Action != "output" {
			continue
		}
		key := ev.Package + "/" + ev.Test
		text := partial[key] + ev.Output
		for {
			nl := strings.IndexByte(text, '\n')
			if nl < 0 {
				break
			}
			line, rest := text[:nl], text[nl+1:]
			text = rest
			m := benchLine.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			ns, err := strconv.ParseFloat(m[2], 64)
			if err != nil {
				return nil, nil, fmt.Errorf("parsing ns/op in %q: %w", line, err)
			}
			if prev, ok := out[m[1]]; !ok || ns < prev {
				out[m[1]] = ns
			}
			for _, pm := range metricPair.FindAllStringSubmatch(m[3], -1) {
				v, err := strconv.ParseFloat(pm[1], 64)
				if err != nil {
					return nil, nil, fmt.Errorf("parsing metric in %q: %w", line, err)
				}
				mk := m[1] + "/" + pm[2]
				if prev, ok := metrics[mk]; !ok || v > prev {
					metrics[mk] = v
				}
			}
		}
		partial[key] = text
	}
	return out, metrics, sc.Err()
}

// checkCeilings enforces the baseline's hand-authored absolute maxima
// against this run's extra metrics. A ceiling whose metric was not
// produced this run is reported but never fails it (a reduced smoke may
// skip the benchmark); a produced metric over its ceiling always fails.
func checkCeilings(w io.Writer, ceilings, metrics map[string]float64) (failed bool) {
	if len(ceilings) == 0 {
		return false
	}
	keys := make([]string, 0, len(ceilings))
	for k := range ceilings {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		v, ok := metrics[k]
		if !ok {
			fmt.Fprintf(w, "  skipped  %-44s (ceiling set, metric not in this run)\n", k)
			continue
		}
		if v > ceilings[k] {
			fmt.Fprintf(w, "  OVER     %-44s %14.0f exceeds ceiling %14.0f\n", k, v, ceilings[k])
			failed = true
		} else {
			fmt.Fprintf(w, "  ok       %-44s %14.0f within ceiling  %14.0f\n", k, v, ceilings[k])
		}
	}
	if failed {
		fmt.Fprintln(w, "benchcheck: FAIL — resource ceiling exceeded")
	}
	return failed
}

func writeBaseline(path string, b Baseline) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(b); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func readBaseline(path string) (Baseline, error) {
	var b Baseline
	data, err := os.ReadFile(path)
	if err != nil {
		return b, err
	}
	if err := json.Unmarshal(data, &b); err != nil {
		return b, fmt.Errorf("parsing %s: %w", path, err)
	}
	if len(b.NsPerOp) == 0 {
		return b, fmt.Errorf("%s holds no benchmarks", path)
	}
	return b, nil
}

// compare prints a table of ratios and reports whether any compared
// benchmark regressed past the threshold. Benchmarks present on only one
// side are reported but never fail the run: a reduced smoke legitimately
// runs a subset, and new benchmarks have no baseline yet.
func compare(w io.Writer, base, got map[string]float64, threshold float64) (failed bool) {
	names := make([]string, 0, len(got))
	for name := range got {
		names = append(names, name)
	}
	sort.Strings(names)

	compared := 0
	for _, name := range names {
		b, ok := base[name]
		if !ok {
			fmt.Fprintf(w, "  new      %-32s %12.0f ns/op (no baseline; refresh with scripts/bench.sh)\n", name, got[name])
			continue
		}
		compared++
		ratio := got[name] / b
		verdict := "ok"
		if ratio > threshold {
			verdict = "REGRESSED"
			failed = true
		}
		fmt.Fprintf(w, "  %-8s %-32s %12.0f ns/op  baseline %12.0f  ratio %.2fx\n", verdict, name, got[name], b, ratio)
	}
	baseOnly := make([]string, 0, len(base))
	for name := range base {
		if _, ok := got[name]; !ok {
			baseOnly = append(baseOnly, name)
		}
	}
	sort.Strings(baseOnly)
	for _, name := range baseOnly {
		fmt.Fprintf(w, "  skipped  %-32s (in baseline, not in this run)\n", name)
	}
	if compared == 0 {
		fmt.Fprintln(w, "benchcheck: no benchmark overlaps the baseline")
		return true
	}
	if failed {
		fmt.Fprintf(w, "benchcheck: FAIL — regression past %.2fx threshold\n", threshold)
	} else {
		fmt.Fprintf(w, "benchcheck: OK — %d benchmarks within %.2fx of baseline\n", compared, threshold)
	}
	return failed
}
