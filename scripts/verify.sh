#!/bin/sh
# verify.sh — the repository's full correctness gate, run locally and in CI:
#   build, go vet, dynalint (determinism/netip/errwrap/lockcopy), the test
#   suite under the race detector (which includes the fault-injection soak,
#   TestPipelineUnderLoss), the crash-injection kill-and-resume smoke, a
#   coverage floor over the assignment-plane protocol packages and the
#   checkpoint layer, and a bounded fuzz smoke over every wire-codec,
#   fault-injection, and journal-decoding Fuzz* target. FUZZTIME bounds
#   each fuzz run (default 10s).
set -eu

cd "$(dirname "$0")/.."
FUZZTIME="${FUZZTIME:-10s}"
COVERAGE_FLOOR="${COVERAGE_FLOOR:-80}"

echo "==> go build ./..."
go build ./...

echo "==> go vet ./..."
go vet ./...

echo "==> dynalint ./..."
go run ./cmd/dynalint ./...

echo "==> go test -race ./... (includes the loss soak)"
go test -race ./...

echo "==> crash-injection smoke (kill-and-resume matrix)"
go test ./cmd/dynamips -run '^(TestKillAndResume|TestResumeAfterTrailingCorruption)$' -count=1

echo "==> coverage floor (>=${COVERAGE_FLOOR}% of statements)"
for pkg in internal/dhcp4 internal/dhcp6 internal/radius internal/faultnet internal/checkpoint; do
	line=$(go test -cover "./$pkg" | tail -n 1)
	echo "$line"
	pct=$(echo "$line" | sed -n 's/.*coverage: \([0-9.]*\)% of statements.*/\1/p')
	if [ -z "$pct" ]; then
		echo "FAIL: no coverage figure for $pkg" >&2
		exit 1
	fi
	if awk -v p="$pct" -v f="$COVERAGE_FLOOR" 'BEGIN{exit !(p < f)}'; then
		echo "FAIL: $pkg coverage ${pct}% below floor ${COVERAGE_FLOOR}%" >&2
		exit 1
	fi
done

echo "==> fuzz smoke (-fuzztime ${FUZZTIME} each)"
go test ./internal/dhcp4 -run '^$' -fuzz '^FuzzUnmarshal$' -fuzztime "$FUZZTIME"
go test ./internal/dhcp6 -run '^$' -fuzz '^FuzzUnmarshal$' -fuzztime "$FUZZTIME"
go test ./internal/radius -run '^$' -fuzz '^FuzzParse$' -fuzztime "$FUZZTIME"
go test ./internal/faultnet -run '^$' -fuzz '^FuzzParseProfile$' -fuzztime "$FUZZTIME"
go test ./internal/faultnet -run '^$' -fuzz '^FuzzReorder$' -fuzztime "$FUZZTIME"
go test ./internal/checkpoint -run '^$' -fuzz '^FuzzJournalScan$' -fuzztime "$FUZZTIME"

echo "==> verify OK"
