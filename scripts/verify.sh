#!/bin/sh
# verify.sh — the repository's full correctness gate, run locally and in CI:
#   build, go vet, dynalint (determinism/netip/errwrap/lockcopy), the test
#   suite under the race detector, and a bounded fuzz smoke over every
#   wire-codec Fuzz* target. FUZZTIME bounds each fuzz run (default 10s).
set -eu

cd "$(dirname "$0")/.."
FUZZTIME="${FUZZTIME:-10s}"

echo "==> go build ./..."
go build ./...

echo "==> go vet ./..."
go vet ./...

echo "==> dynalint ./..."
go run ./cmd/dynalint ./...

echo "==> go test -race ./..."
go test -race ./...

echo "==> fuzz smoke (-fuzztime ${FUZZTIME} each)"
go test ./internal/dhcp4 -run '^$' -fuzz '^FuzzUnmarshal$' -fuzztime "$FUZZTIME"
go test ./internal/dhcp6 -run '^$' -fuzz '^FuzzUnmarshal$' -fuzztime "$FUZZTIME"
go test ./internal/radius -run '^$' -fuzz '^FuzzParse$' -fuzztime "$FUZZTIME"

echo "==> verify OK"
