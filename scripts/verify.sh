#!/bin/sh
# verify.sh — the repository's full correctness gate, run locally and in CI:
#   build, go vet, dynalint (all eight analyzers, JSON findings diffed
#   against the checked-in empty baseline; DYNALINT_FINDINGS names the
#   artifact file), the test
#   suite under the race detector (which includes the fault-injection soak,
#   TestPipelineUnderLoss), the golden regression corpus, the crash-injection
#   kill-and-resume smoke, the seeded HA failover matrix (lease-preserving
#   and renumbering takeovers under -race plus the serve-bng standby
#   promotion), a metrics/stats CLI smoke, a 'dynamips watch' smoke
#   against a live serve-bng /sketch endpoint, a coverage floor over
#   the assignment-plane protocol packages, the CGN substrate, the
#   checkpoint layer, and the observability layer (plus a stricter
#   floor over the sketch plane), the non-race
#   million-session BNG soak (>=10^6 concurrent sessions at >=10^6
#   events/sec with worker-count hash identity), a bench regression
#   smoke against the checked-in
#   baseline, and a bounded fuzz smoke over every wire-codec,
#   fault-injection, journal-decoding, sketch-codec, and
#   sketch-query-parsing Fuzz* target. FUZZTIME bounds
#   each fuzz run (default 10s); BENCH_THRESHOLD bounds the allowed ns/op
#   slowdown factor (default 2.0).
set -eu

cd "$(dirname "$0")/.."
FUZZTIME="${FUZZTIME:-10s}"
COVERAGE_FLOOR="${COVERAGE_FLOOR:-80}"
SKETCH_COVERAGE_FLOOR="${SKETCH_COVERAGE_FLOOR:-90}"
BENCH_THRESHOLD="${BENCH_THRESHOLD:-2.0}"

echo "==> go build ./..."
go build ./...

echo "==> go vet ./..."
go vet ./...

echo "==> dynalint ./... (JSON findings, gated against .dynalint-baseline.json)"
lintjson="${DYNALINT_FINDINGS:-$(mktemp)}"
rc=0
go run ./cmd/dynalint -json -baseline .dynalint-baseline.json ./... >"$lintjson" || rc=$?
if [ "$rc" -ne 0 ]; then
	echo "FAIL: dynalint findings not covered by the baseline:" >&2
	cat "$lintjson" >&2
	exit 1
fi
echo "    findings artifact: $lintjson"

echo "==> go test -race ./... (includes the loss soak)"
go test -race ./...

echo "==> million-session BNG soak (non-race: >=10^6 sessions, >=10^6 events/sec, worker-count identity)"
go test ./internal/bng -run '^TestMillionSessionSoak$' -count=1 -v

echo "==> golden regression corpus"
go test . -run '^TestGolden' -count=1

echo "==> crash-injection smoke (kill-and-resume matrix)"
go test ./cmd/dynamips -run '^(TestKillAndResume|TestResumeAfterTrailingCorruption)$' -count=1

echo "==> HA failover matrix (both recovery policies under -race at workers 1/4/16; standby promotion)"
go test -race ./internal/bng -run '^(TestFailoverPreserveIdentity|TestFailoverRenumberDeterministic|TestFailoverResumeReplay|TestFailoverMeanSchedule|TestPairSyncPromote)$' -count=1
go test ./cmd/dynamips -run '^TestServeBNGStandbyPromotion$' -count=1

echo "==> metrics/stats CLI smoke"
smokedir=$(mktemp -d)
trap 'rm -rf "$smokedir"' EXIT
go build -o "$smokedir/dynamips" ./cmd/dynamips
"$smokedir/dynamips" experiment -hours 8760 -probe-scale 0.1 -workers 4 \
	-metrics "$smokedir/metrics.json" sanitize >/dev/null
"$smokedir/dynamips" stats "$smokedir/metrics.json" >/dev/null

echo "==> watch smoke (dynamips watch -once against a live serve-bng /sketch)"
"$smokedir/dynamips" serve-bng -subscribers 2000 -shards 3 -churn-hours 24 -round-hours 6 \
	-listen 127.0.0.1:0 >"$smokedir/serve.log" 2>&1 &
bngpid=$!
trap 'kill "$bngpid" 2>/dev/null; rm -rf "$smokedir"' EXIT
bngurl=""
i=0
while [ $i -lt 100 ]; do
	bngurl=$(sed -n 's,.*API on \(http://[^ ]*\).*,\1,p' "$smokedir/serve.log")
	[ -n "$bngurl" ] && break
	i=$((i + 1))
	sleep 0.1
done
if [ -z "$bngurl" ]; then
	echo "FAIL: serve-bng never published its API address:" >&2
	cat "$smokedir/serve.log" >&2
	exit 1
fi
"$smokedir/dynamips" watch -bng "$bngurl" -once >"$smokedir/watch.out"
kill "$bngpid" 2>/dev/null
wait "$bngpid" 2>/dev/null || true
for want in "virtual hour" churn24 dur_hours pfx64; do
	if ! grep -q "$want" "$smokedir/watch.out"; then
		echo "FAIL: watch output missing $want:" >&2
		cat "$smokedir/watch.out" >&2
		exit 1
	fi
done

echo "==> coverage floor (>=${COVERAGE_FLOOR}% of statements)"
for pkg in internal/dhcp4 internal/dhcp6 internal/radius internal/faultnet internal/checkpoint internal/obs internal/cgnat internal/bng; do
	line=$(go test -cover "./$pkg" | tail -n 1)
	echo "$line"
	pct=$(echo "$line" | sed -n 's/.*coverage: \([0-9.]*\)% of statements.*/\1/p')
	if [ -z "$pct" ]; then
		echo "FAIL: no coverage figure for $pkg" >&2
		exit 1
	fi
	if awk -v p="$pct" -v f="$COVERAGE_FLOOR" 'BEGIN{exit !(p < f)}'; then
		echo "FAIL: $pkg coverage ${pct}% below floor ${COVERAGE_FLOOR}%" >&2
		exit 1
	fi
done

echo "==> sketch coverage floor (internal/sketch >=${SKETCH_COVERAGE_FLOOR}% of statements)"
line=$(go test -cover ./internal/sketch | tail -n 1)
echo "$line"
pct=$(echo "$line" | sed -n 's/.*coverage: \([0-9.]*\)% of statements.*/\1/p')
if [ -z "$pct" ]; then
	echo "FAIL: no coverage figure for internal/sketch" >&2
	exit 1
fi
if awk -v p="$pct" -v f="$SKETCH_COVERAGE_FLOOR" 'BEGIN{exit !(p < f)}'; then
	echo "FAIL: internal/sketch coverage ${pct}% below floor ${SKETCH_COVERAGE_FLOOR}%" >&2
	exit 1
fi

echo "==> bench regression smoke (<=${BENCH_THRESHOLD}x of baseline; streaming RSS ceiling)"
go test -run '^$' -bench '^(BenchmarkTable1|BenchmarkFig1|BenchmarkGlobalDurations|BenchmarkBuildAtlasPipeline|BenchmarkBuildCDNPipeline|BenchmarkStreamCDNPipeline|BenchmarkBNGChurn)$' \
	-benchtime 5x -json . \
	| go run ./scripts/benchcheck -baseline testdata/bench_baseline.json -threshold "$BENCH_THRESHOLD"

echo "==> fuzz smoke (-fuzztime ${FUZZTIME} each)"
go test ./internal/dhcp4 -run '^$' -fuzz '^FuzzUnmarshal$' -fuzztime "$FUZZTIME"
go test ./internal/dhcp6 -run '^$' -fuzz '^FuzzUnmarshal$' -fuzztime "$FUZZTIME"
go test ./internal/radius -run '^$' -fuzz '^FuzzParse$' -fuzztime "$FUZZTIME"
go test ./internal/radius -run '^$' -fuzz '^FuzzDynauth$' -fuzztime "$FUZZTIME"
go test ./internal/dhcp6 -run '^$' -fuzz '^FuzzRelayMessage$' -fuzztime "$FUZZTIME"
go test ./internal/faultnet -run '^$' -fuzz '^FuzzParseProfile$' -fuzztime "$FUZZTIME"
go test ./internal/faultnet -run '^$' -fuzz '^FuzzReorder$' -fuzztime "$FUZZTIME"
go test ./internal/checkpoint -run '^$' -fuzz '^FuzzJournalScan$' -fuzztime "$FUZZTIME"
go test ./internal/cdn/stream -run '^$' -fuzz '^FuzzChunkCodec$' -fuzztime "$FUZZTIME"
go test ./internal/cdn/stream -run '^$' -fuzz '^FuzzScanCSV$' -fuzztime "$FUZZTIME"
go test ./internal/sketch -run '^$' -fuzz '^FuzzSketchCodec$' -fuzztime "$FUZZTIME"
go test ./internal/bng -run '^$' -fuzz '^FuzzSketchQuery$' -fuzztime "$FUZZTIME"

echo "==> verify OK"
