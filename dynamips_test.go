package dynamips

import (
	"bytes"
	"net/netip"
	"strings"
	"testing"
)

func TestFacadeEndToEnd(t *testing.T) {
	p, ok := ProfileByName("DTAG")
	if !ok {
		t.Fatal("DTAG profile missing")
	}
	res, err := SimulateAS(p, 120, 4000, 1)
	if err != nil {
		t.Fatalf("SimulateAS: %v", err)
	}
	fleet, err := BuildFleet(res, 60, 2)
	if err != nil {
		t.Fatalf("BuildFleet: %v", err)
	}
	clean := Sanitize(fleet.Series, fleet.BGP)
	if len(clean) == 0 {
		t.Fatal("sanitization removed everything")
	}
	pas := Analyze(clean)
	if len(pas) != len(clean) {
		t.Fatalf("analyzed %d of %d", len(pas), len(clean))
	}
}

func TestFacadeProfiles(t *testing.T) {
	if len(Profiles()) < 10 {
		t.Error("fewer than 10 profiles")
	}
	if len(ExperimentNames()) != 17 {
		t.Errorf("experiments = %v", ExperimentNames())
	}
	if Version == "" {
		t.Error("empty version")
	}
}

func TestFacadeRunExperiment(t *testing.T) {
	cfg := ReducedExperimentConfig()
	cfg.CDNScale = 0.05
	var buf bytes.Buffer
	if err := RunExperiment("fig3", &buf, cfg); err != nil {
		t.Fatalf("RunExperiment: %v", err)
	}
	if !strings.Contains(buf.String(), "RIPENCC") {
		t.Errorf("fig3 output: %q", buf.String())
	}
	if err := RunExperiment("no-such", &buf, cfg); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestFacadePipelines(t *testing.T) {
	cfg := ReducedExperimentConfig()
	cfg.ProbeScale = 0.05
	cfg.Hours = 8760
	a, err := BuildAtlasPipeline(cfg)
	if err != nil {
		t.Fatalf("BuildAtlasPipeline: %v", err)
	}
	if len(a.PAS) == 0 {
		t.Error("empty atlas pipeline")
	}
	cfg.CDNScale = 0.05
	c, err := BuildCDNPipeline(cfg)
	if err != nil {
		t.Fatalf("BuildCDNPipeline: %v", err)
	}
	if len(c.Episodes) == 0 {
		t.Error("empty cdn pipeline")
	}
}

func TestFacadeApplications(t *testing.T) {
	p, _ := ProfileByName("DTAG")
	res, err := SimulateAS(p, 150, 6000, 61)
	if err != nil {
		t.Fatal(err)
	}
	fleet, err := BuildFleet(res, 80, 62)
	if err != nil {
		t.Fatal(err)
	}
	clean := Sanitize(fleet.Series, fleet.BGP)
	pas := Analyze(clean)

	st, err := LearnHitlistStructure(3320, pas, fleet.BGP, 0.5)
	if err != nil {
		t.Fatalf("LearnHitlistStructure: %v", err)
	}
	var lan netip.Prefix
	for _, sub := range res.Subscribers {
		if len(sub.V6) > 0 {
			lan = sub.V6[0].LAN
			break
		}
	}
	if !lan.IsValid() {
		t.Fatal("no dual-stack subscriber")
	}
	l := NewHitlist(st)
	l.Observe(lan, 3320, 0)
	if l.Len() != 1 {
		t.Errorf("hitlist len = %d", l.Len())
	}
	if _, err := NewScanPlan(lan, st.PoolLen, st.SubscriberLen, true); err != nil {
		t.Errorf("NewScanPlan: %v", err)
	}
	if _, err := DeriveAnonymizePolicy(3320, pas, 8); err != nil {
		t.Errorf("DeriveAnonymizePolicy: %v", err)
	}
	rep := MeasureTracking(clean)
	if rep.Devices == 0 {
		t.Error("tracking saw no devices")
	}
}

func TestFacadeBlocking(t *testing.T) {
	p, _ := ProfileByName("DTAG")
	res, err := SimulateAS(p, 120, 5000, 71)
	if err != nil {
		t.Fatal(err)
	}
	fleet, err := BuildFleet(res, 60, 72)
	if err != nil {
		t.Fatal(err)
	}
	pas := Analyze(Sanitize(fleet.Series, fleet.BGP))
	adv, err := AdviseBlocking(3320, pas, 0.5)
	if err != nil {
		t.Fatalf("AdviseBlocking: %v", err)
	}
	b := NewBlocklist(adv)
	b.BlockV6(netip.MustParseAddr("2003:1000:0:1100::1"), 3320, 0)
	if !b.Blocked(netip.MustParseAddr("2003:1000:0:11ff::2"), 1) {
		t.Error("delegation-wide block missing")
	}
}
