module dynamips

go 1.22
