// Package dynamips is the public facade of the DynamIPs reproduction: a
// library for analyzing the temporal and spatial dynamics of IPv4 address
// and IPv6 prefix assignments, after Padmanabhan et al., "DynamIPs:
// Analyzing address assignment practices in IPv4 and IPv6" (CoNEXT 2020).
//
// The facade re-exports the pipeline's building blocks:
//
//   - ISP ground-truth simulation (internal/isp) behind real DHCPv4,
//     DHCPv6-PD and RADIUS machinery,
//   - the RIPE-Atlas-style IP-echo dataset: generation, JSONL codec,
//     sanitization (internal/atlas),
//   - the CDN association dataset: generation, filtering, labeling
//     (internal/cdn),
//   - the analyses themselves (internal/core): assignment durations,
//     total-time-fraction curves, periodic-renumbering detection, CPL
//     spectra, and subscriber/pool boundary inference,
//   - experiment runners regenerating every table and figure of the
//     paper's evaluation (internal/experiments).
//
// See the runnable programs under examples/ and the cmd/dynamips CLI.
package dynamips

import (
	"io"
	"net/netip"

	"dynamips/internal/anonymize"
	"dynamips/internal/atlas"
	"dynamips/internal/bgp"
	"dynamips/internal/cdn"
	"dynamips/internal/core"
	"dynamips/internal/experiments"
	"dynamips/internal/hitlist"
	"dynamips/internal/isp"
	"dynamips/internal/reputation"
)

// Version identifies the library release.
const Version = "1.0.0"

// Re-exported pipeline types. The heavy lifting lives in internal
// packages; these aliases are the supported surface.
type (
	// ISPProfile is the ground-truth description of one AS's
	// assignment practice.
	ISPProfile = isp.Profile
	// ISPResult is a finished AS simulation.
	ISPResult = isp.Result
	// Fleet is a generated Atlas probe population.
	Fleet = atlas.Fleet
	// Series is one probe's observation history.
	Series = atlas.Series
	// ProbeAnalysis is the per-probe analysis digest.
	ProbeAnalysis = core.ProbeAnalysis
	// BGPTable is a routed-prefix (pfx2as) table.
	BGPTable = bgp.Table
	// CDNDataset is a generated association collection.
	CDNDataset = cdn.Dataset
	// ExperimentConfig sizes the experiment pipelines.
	ExperimentConfig = experiments.Config
	// AtlasData is the built Atlas pipeline shared by experiments.
	AtlasData = experiments.AtlasData
	// CDNData is the built CDN pipeline shared by experiments.
	CDNData = experiments.CDNData
	// ScanPlan is the §6 active-probing rescan plan.
	ScanPlan = core.ScanPlan
	// HitlistStructure is a learned per-AS addressing structure.
	HitlistStructure = hitlist.Structure
	// Hitlist is a curated target list with per-AS expiry.
	Hitlist = hitlist.List
	// AnonymizePolicy is a per-AS truncation policy.
	AnonymizePolicy = anonymize.Policy
	// TrackingReport quantifies EUI-64 trackability.
	TrackingReport = core.TrackingReport
	// BlockAdvice is a per-AS blocklist policy (TTL + IPv6 granularity).
	BlockAdvice = reputation.Advice
	// Blocklist is a TTL-aware block set.
	Blocklist = reputation.Blocklist
)

// Profiles returns the built-in ground-truth ISP profiles (the paper's
// Table 1 ASes plus Sky UK).
func Profiles() []ISPProfile { return isp.Profiles() }

// ProfileByName returns a built-in profile.
func ProfileByName(name string) (ISPProfile, bool) { return isp.ProfileByName(name) }

// SimulateAS runs one ISP simulation.
func SimulateAS(p ISPProfile, subscribers int, hours, seed int64) (*ISPResult, error) {
	return isp.Run(isp.Config{Profile: p, Subscribers: subscribers, Hours: hours, Seed: seed})
}

// BuildFleet derives an Atlas probe fleet from a simulation, with the
// default anomaly mix.
func BuildFleet(res *ISPResult, probes int, seed int64) (*Fleet, error) {
	return atlas.BuildFleet(res, atlas.DefaultFleetConfig(probes, seed))
}

// Sanitize applies the Appendix A.1 pipeline and returns surviving series.
func Sanitize(series []Series, table *BGPTable) []Series {
	return atlas.Sanitize(series, table, atlas.DefaultSanitizeConfig()).Clean
}

// Analyze digests sanitized series into per-probe analyses.
func Analyze(series []Series) []ProbeAnalysis {
	return core.Analyze(series, core.DefaultExtractConfig())
}

// DefaultExperimentConfig is the full-scale experiment configuration.
func DefaultExperimentConfig() ExperimentConfig { return experiments.Default() }

// ReducedExperimentConfig is a fast configuration for exploration.
func ReducedExperimentConfig() ExperimentConfig { return experiments.Reduced() }

// BuildAtlasPipeline builds the shared Atlas pipeline.
func BuildAtlasPipeline(cfg ExperimentConfig) (*AtlasData, error) {
	return experiments.BuildAtlas(cfg)
}

// BuildCDNPipeline builds the shared CDN pipeline.
func BuildCDNPipeline(cfg ExperimentConfig) (*CDNData, error) {
	return experiments.BuildCDN(cfg)
}

// ExperimentNames lists the runnable experiments in paper order.
func ExperimentNames() []string { return append([]string(nil), experiments.Names...) }

// RunExperiment regenerates one table or figure, writing its rows to w.
func RunExperiment(name string, w io.Writer, cfg ExperimentConfig) error {
	return experiments.Run(name, w, cfg)
}

// NewScanPlan builds a §6 rescan plan from a last-seen /64 and learned
// addressing structure.
func NewScanPlan(lastSeen netip.Prefix, poolLen, subscriberLen int, aligned bool) (ScanPlan, error) {
	return core.NewScanPlan(lastSeen, poolLen, subscriberLen, aligned)
}

// LearnHitlistStructure derives an AS's addressing structure for hitlist
// curation from analyzed probes.
func LearnHitlistStructure(asn uint32, pas []ProbeAnalysis, table *BGPTable, quantile float64) (HitlistStructure, error) {
	return hitlist.LearnStructure(asn, pas, table, quantile)
}

// NewHitlist builds a curated target list with the given structures.
func NewHitlist(structures ...HitlistStructure) *Hitlist {
	return hitlist.New(structures...)
}

// DeriveAnonymizePolicy builds a per-AS truncation policy that clears the
// inferred subscriber boundary by marginBits.
func DeriveAnonymizePolicy(asn uint32, pas []ProbeAnalysis, marginBits int) (AnonymizePolicy, error) {
	return anonymize.DerivePolicy(asn, pas, marginBits)
}

// MeasureTracking quantifies EUI-64 trackability over raw series (§6).
func MeasureTracking(series []Series) TrackingReport {
	return core.MeasureTracking(series)
}

// AdviseBlocking derives per-AS blocklist policy from analyzed probes.
func AdviseBlocking(asn uint32, pas []ProbeAnalysis, residualRisk float64) (BlockAdvice, error) {
	return reputation.Advise(asn, pas, residualRisk)
}

// NewBlocklist builds a TTL-aware blocklist with per-AS advice.
func NewBlocklist(advice ...BlockAdvice) *Blocklist {
	return reputation.NewBlocklist(advice...)
}
