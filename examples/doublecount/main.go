// Host counting under churn: the paper's tracking application (§2.3, §6).
// Systems that estimate user populations from observed IP identifiers —
// botnet size estimates, peer-to-peer host counts, open-resolver censuses —
// double-count every subscriber whose address changed inside the counting
// window, and once more when the subscriber is seen over both IPv4 and
// IPv6. The per-AS duration analysis tells you how big that error is for
// a given window.
//
// This example counts distinct identifiers over growing windows against
// the simulation's known subscriber population and reports the overcount
// factor per AS, plus the window at which it exceeds 2x.
package main

import (
	"fmt"
	"log"
	"net/netip"

	"dynamips"
	"dynamips/internal/isp"
)

// countWindow returns distinct IPv4 addresses, distinct IPv6 /64s, and
// the naive dual-stack total over [start, start+window), plus the true
// number of active subscribers.
func countWindow(res *isp.Result, start, window int64) (v4, v64, naive, truth int) {
	seen4 := map[netip.Addr]bool{}
	seen6 := map[netip.Prefix]bool{}
	end := start + window
	for _, sub := range res.Subscribers {
		active := false
		for i, st := range sub.V4 {
			stEnd := res.Hours
			if i+1 < len(sub.V4) {
				stEnd = sub.V4[i+1].Start
			}
			if st.Start < end && stEnd > start {
				seen4[st.Addr] = true
				active = true
			}
		}
		for i, st := range sub.V6 {
			stEnd := res.Hours
			if i+1 < len(sub.V6) {
				stEnd = sub.V6[i+1].Start
			}
			if st.Start < end && stEnd > start {
				seen6[st.LAN] = true
			}
		}
		if active {
			truth++
		}
	}
	return len(seen4), len(seen6), len(seen4) + len(seen6), truth
}

func main() {
	windows := []struct {
		label string
		hours int64
	}{
		{"1d", 24}, {"1w", 168}, {"1m", 720}, {"3m", 2160},
	}
	fmt.Println("overcount factor: distinct identifiers / true active subscribers")
	fmt.Printf("%-10s %8s %10s %10s %10s\n", "AS", "window", "v4-only", "v6 /64s", "naive v4+v6")
	for _, name := range []string{"DTAG", "Comcast", "Netcologne"} {
		profile, ok := dynamips.ProfileByName(name)
		if !ok {
			log.Fatalf("missing profile %s", name)
		}
		res, err := dynamips.SimulateAS(profile, 300, 8760, 31)
		if err != nil {
			log.Fatalf("simulate %s: %v", name, err)
		}
		for _, w := range windows {
			v4, v64, naive, truth := countWindow(res, 2000, w.hours)
			if truth == 0 {
				continue
			}
			fmt.Printf("%-10s %8s %9.2fx %9.2fx %9.2fx\n", name, w.label,
				float64(v4)/float64(truth), float64(v64)/float64(truth), float64(naive)/float64(truth))
		}
	}
	fmt.Println("\n(a 24h-renumbering ISP doubles a one-week census; dual-stack naive")
	fmt.Println(" counting adds another factor of ~2 — §2.3's double-counting warning)")
}
