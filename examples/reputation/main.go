// Blocklist TTL advisor: the paper's host-reputation application (§6).
// An address observed misbehaving is blocklisted; the entry is useful
// while the offender still holds the address and collateral damage once
// the ISP reassigns it to an innocent subscriber. internal/reputation
// derives per-AS advice from the duration analysis (how long to block)
// and the subscriber-boundary inference (what to block in IPv6); this
// example prints the advice and replays blocklist decisions against the
// simulation's ground truth to measure the effective/collateral split.
package main

import (
	"fmt"
	"log"

	"dynamips"
	"dynamips/internal/isp"
	"dynamips/internal/reputation"
)

func advise(name string, residual float64) {
	profile, ok := dynamips.ProfileByName(name)
	if !ok {
		log.Fatalf("missing profile %s", name)
	}
	res, err := dynamips.SimulateAS(profile, 300, 2*8760, 11)
	if err != nil {
		log.Fatalf("simulate %s: %v", name, err)
	}
	fleet, err := dynamips.BuildFleet(res, 150, 12)
	if err != nil {
		log.Fatalf("fleet %s: %v", name, err)
	}
	pas := dynamips.Analyze(dynamips.Sanitize(fleet.Series, fleet.BGP))
	adv, err := reputation.Advise(profile.ASN, pas, residual)
	if err != nil {
		log.Fatalf("advise %s: %v", name, err)
	}
	fmt.Printf("%-10s block IPv6 at /%d, TTL <= %.0fh keeps residual-assignment risk under %.0f%%\n",
		name, adv.BlockLen6, adv.TTLHours, 100*residual)

	// Replay against ground truth for several TTL choices.
	for _, ttl := range []int64{24, 168, 720} {
		eff, col := replay(res, ttl)
		fmt.Printf("           TTL %5dh: %5.1f%% of blocked time on the offender, %4.1f%% collateral\n",
			ttl, 100*eff, 100*col)
	}

	// Demonstrate the blocklist itself: block a misbehaving dual-stack
	// subscriber over both families and export the coalesced set.
	b := reputation.NewBlocklist(adv)
	for _, sub := range res.Subscribers {
		if len(sub.V6) > 0 && len(sub.V4) > 0 {
			b.BlockV4(sub.V4[0].Addr, profile.ASN, 0)
			b.BlockV6(sub.V6[0].LAN.Addr(), profile.ASN, 0)
			break
		}
	}
	fmt.Printf("           exported block set: %v\n\n", b.Export())
}

// replay blocks each dual-stack subscriber's mid-history IPv4 address for
// ttl hours and splits the blocked time into offender vs collateral using
// ground truth.
func replay(res *isp.Result, ttl int64) (effective, collateral float64) {
	var onOffender, onOthers int64
	for _, sub := range res.Subscribers {
		if !sub.DualStack || len(sub.V4) < 2 {
			continue
		}
		i := len(sub.V4) / 2
		start := sub.V4[i].Start
		end := start + ttl
		hold := res.Hours
		if i+1 < len(sub.V4) {
			hold = sub.V4[i+1].Start
		}
		if hold > end {
			hold = end
		}
		onOffender += hold - start
		onOthers += end - hold
	}
	total := onOffender + onOthers
	if total == 0 {
		return 0, 0
	}
	return float64(onOffender) / float64(total), float64(onOthers) / float64(total)
}

func main() {
	fmt.Println("blocklist advice (residual-assignment risk 50%):")
	for _, n := range []string{"Comcast", "DTAG", "Netcologne"} {
		advise(n, 0.5)
	}
}
