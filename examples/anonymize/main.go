// Anonymization by truncation: the paper's privacy application (§6).
// Sharing IPv6 datasets often "anonymizes" addresses by truncating them to
// a fixed prefix — Google Analytics masks to /48. The paper shows this is
// fallacious: Netcologne delegates entire /48s to individual subscribers,
// so a /48-truncated record still identifies one household.
//
// This example measures, against simulation ground truth, how many
// truncated prefixes still isolate a single subscriber under (a) the naive
// global /48 policy and (b) a per-AS policy derived from the inferred
// subscriber boundary (truncate strictly above it so each released prefix
// aggregates many subscribers).
package main

import (
	"fmt"
	"log"
	"net/netip"

	"dynamips"
	"dynamips/internal/core"
	"dynamips/internal/isp"
	"dynamips/internal/netutil"
)

// kAnonymity measures instantaneous re-identifiability: at a snapshot
// hour, each subscriber's current LAN /64 is truncated to the given
// length; a released prefix that covers exactly one concurrent subscriber
// still identifies a household. It returns the singleton count and the
// number of released prefixes.
func kAnonymity(res *isp.Result, truncate int, at int64) (singletons, prefixes int) {
	subsPer := make(map[netip.Prefix]int)
	for _, sub := range res.Subscribers {
		var cur netip.Prefix
		for _, st := range sub.V6 {
			if st.Start > at {
				break
			}
			cur = st.LAN
		}
		if !cur.IsValid() {
			continue
		}
		subsPer[netutil.PrefixAt(cur.Addr(), truncate)]++
	}
	for _, n := range subsPer {
		if n == 1 {
			singletons++
		}
	}
	return singletons, len(subsPer)
}

func report(name string) {
	profile, ok := dynamips.ProfileByName(name)
	if !ok {
		log.Fatalf("missing profile %s", name)
	}
	res, err := dynamips.SimulateAS(profile, 400, 8760, 21)
	if err != nil {
		log.Fatalf("simulate %s: %v", name, err)
	}
	fleet, err := dynamips.BuildFleet(res, 200, 22)
	if err != nil {
		log.Fatalf("fleet %s: %v", name, err)
	}
	pas := dynamips.Analyze(dynamips.Sanitize(fleet.Series, fleet.BGP))
	perAS, _ := core.SubscriberLengths(pas)
	h := perAS[profile.ASN]
	if h == nil || h.N == 0 {
		log.Fatalf("no subscriber-length inference for %s", name)
	}
	subscriberLen := h.ArgMax()
	// Releasing just above the subscriber boundary is not enough when
	// pools are sparsely occupied; aggregate to the inferred dynamic
	// pool, where the data shows many subscribers actually live. This
	// is the paper's "per-network approach to obfuscating IPv6
	// datasets" (§6).
	safeLen := subscriberLen - 8
	if dists := core.UniquePrefixes(pas, fleet.BGP)[profile.ASN]; dists != nil {
		if pool, ok := core.InferPoolBoundary(dists, 4); ok && pool < safeLen {
			safeLen = pool
		}
	}
	if safeLen < profile.BGP6.Bits() {
		safeLen = profile.BGP6.Bits()
	}

	at := res.Hours / 2
	s48, p48 := kAnonymity(res, 48, at)
	sSafe, pSafe := kAnonymity(res, safeLen, at)
	fmt.Printf("%-10s inferred subscriber boundary /%d\n", name, subscriberLen)
	fmt.Printf("           naive /48 truncation:  %4d of %4d released prefixes identify ONE subscriber (%.0f%%)\n",
		s48, p48, pct(s48, p48))
	fmt.Printf("           boundary-aware /%d:    %4d of %4d released prefixes identify one subscriber (%.0f%%)\n\n",
		safeLen, sSafe, pSafe, pct(sSafe, pSafe))
}

func pct(a, b int) float64 {
	if b == 0 {
		return 0
	}
	return 100 * float64(a) / float64(b)
}

func main() {
	fmt.Println("anonymization by truncation: does the released prefix still identify a household?")
	fmt.Println()
	for _, name := range []string{"Netcologne", "DTAG", "Kabel DE"} {
		report(name)
	}
	fmt.Println("(the paper: a /48 boundary \"would consist of a single subscriber in the")
	fmt.Println(" case of Netcologne!\" — §5.3)")
}
