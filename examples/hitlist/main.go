// Hitlist maintenance: the paper's active-probing application (§6). A
// measurement target with a stable EUI-64 interface identifier disappears
// from a hitlist when its ISP renumbers the delegated prefix. Knowing the
// AS's spatial structure — the dynamic-pool boundary (§5.2) and the
// per-subscriber delegation length (§5.3) — shrinks the rescan space from
// the whole BGP announcement to a tractable set of candidate prefixes.
//
// This example simulates an ISP, learns the structure from a probe fleet,
// then "loses" a set of target devices to renumbering and quantifies the
// search-space reduction while verifying that the reduced space still
// contains every target.
package main

import (
	"fmt"
	"log"
	"math"

	"dynamips"
	"dynamips/internal/core"
)

func main() {
	profile, ok := dynamips.ProfileByName("DTAG")
	if !ok {
		log.Fatal("built-in DTAG profile missing")
	}
	res, err := dynamips.SimulateAS(profile, 500, 2*8760, 7)
	if err != nil {
		log.Fatalf("simulate: %v", err)
	}

	// Learn the AS's addressing structure from a probe fleet, exactly as
	// a measurement team would from public Atlas data.
	fleet, err := dynamips.BuildFleet(res, 250, 8)
	if err != nil {
		log.Fatalf("fleet: %v", err)
	}
	pas := dynamips.Analyze(dynamips.Sanitize(fleet.Series, fleet.BGP))
	dists := core.UniquePrefixes(pas, fleet.BGP)[profile.ASN]
	pool, ok := core.InferPoolBoundary(dists, 8)
	if !ok {
		log.Fatal("could not infer a pool boundary")
	}
	perAS, _ := core.SubscriberLengths(pas)
	subLen := perAS[profile.ASN].ArgMax()
	fmt.Printf("learned structure for %s: pool boundary /%d, subscriber delegation /%d\n\n",
		profile.Name, pool, subLen)

	// Every assignment change is a lost target: the device's /64 moved.
	// A core.ScanPlan built from the old prefix and the learned
	// structure defines the rescan space (delegation-aligned /64s for
	// zeroing CPEs; the full per-delegation scan for scramblers).
	var changes, found int
	var planSize uint64
	for _, sub := range res.Subscribers {
		for i := 1; i < len(sub.V6); i++ {
			oldLAN, newLAN := sub.V6[i-1].LAN, sub.V6[i].LAN
			changes++
			plan, err := core.NewScanPlan(oldLAN, pool, subLen, !sub.Scramble)
			if err != nil {
				log.Fatalf("scan plan: %v", err)
			}
			planSize = plan.Size()
			if plan.Contains(newLAN) {
				found++
			}
		}
	}
	if changes == 0 {
		log.Fatal("no renumbered targets in simulation")
	}
	var examplePlan core.ScanPlan
	for _, sub := range res.Subscribers {
		if len(sub.V6) > 0 {
			examplePlan, _ = core.NewScanPlan(sub.V6[0].LAN, pool, subLen, true)
			break
		}
	}
	fmt.Printf("assignment changes (lost targets):   %d\n", changes)
	fmt.Printf("recovered inside learned /%d plan:   %d (%.1f%%)\n", pool, found,
		100*float64(found)/float64(changes))
	fmt.Printf("aligned plan size:                   2^%.0f candidate prefixes\n", math.Log2(float64(examplePlan.Size())))
	fmt.Printf("last plan size (may be unaligned):   2^%.0f\n", math.Log2(float64(planSize)))
	fmt.Printf("search-space reduction vs BGP scan:  %.0fx\n", examplePlan.ReductionVsBGP(profile.BGP6))
	fmt.Println("\n(the paper: \"the search space is reduced from the scope of the BGP")
	fmt.Println(" announcement ... down to 2^(64-40) networks\" — §5.2)")
}
