// Quickstart: run the whole DynamIPs pipeline for one ISP — simulate the
// AS, host a probe fleet on it, sanitize the IP-echo observations, and ask
// the paper's questions: how long do assignments last, is renumbering
// periodic, and what prefix length identifies a subscriber?
package main

import (
	"fmt"
	"log"

	"dynamips"
	"dynamips/internal/core"
	"dynamips/internal/stats"
)

func main() {
	profile, ok := dynamips.ProfileByName("DTAG")
	if !ok {
		log.Fatal("built-in DTAG profile missing")
	}
	// Three simulated years of a 400-subscriber population.
	res, err := dynamips.SimulateAS(profile, 400, 3*8760, 42)
	if err != nil {
		log.Fatalf("simulating %s: %v", profile.Name, err)
	}
	fleet, err := dynamips.BuildFleet(res, 200, 43)
	if err != nil {
		log.Fatalf("building fleet: %v", err)
	}
	clean := dynamips.Sanitize(fleet.Series, fleet.BGP)
	pas := dynamips.Analyze(clean)
	fmt.Printf("%s (AS%d): %d probes survived sanitization (of %d)\n\n",
		profile.Name, profile.ASN, len(pas), len(fleet.Series))

	// Temporal: how long do assignments last?
	durations := core.CollectDurations(pas)[profile.ASN]
	nds, ds, v6 := core.DurationCurves(durations)
	fmt.Println("fraction of assignment time in durations <= 1 day / 1 month:")
	fmt.Printf("  IPv4 non-dual-stack: %.2f / %.2f\n",
		stats.FractionAtOrBelow(nds, 24), stats.FractionAtOrBelow(nds, 720))
	fmt.Printf("  IPv4 dual-stack:     %.2f / %.2f\n",
		stats.FractionAtOrBelow(ds, 24), stats.FractionAtOrBelow(ds, 720))
	fmt.Printf("  IPv6 /64:            %.2f / %.2f\n",
		stats.FractionAtOrBelow(v6, 24), stats.FractionAtOrBelow(v6, 720))

	// Is the renumbering periodic?
	for _, p := range core.DetectPeriodicRenumbering(core.CollectDurations(pas), 0.05, 0.3) {
		fmt.Printf("periodic renumbering (%s): every %g hours (%.0f%% of assignment time)\n",
			p.Population, p.Modes[0].Period, 100*p.Modes[0].Fraction)
	}

	// Spatial: what prefix identifies a subscriber, and where do
	// delegations live?
	perAS, _ := core.SubscriberLengths(pas)
	if h := perAS[profile.ASN]; h != nil {
		fmt.Printf("\ninferred subscriber prefix length: /%d (over %d probes with changes)\n",
			h.ArgMax(), h.N)
	}
	dists := core.UniquePrefixes(pas, fleet.BGP)
	if d := dists[profile.ASN]; d != nil {
		if pool, ok := core.InferPoolBoundary(d, 8); ok {
			fmt.Printf("inferred dynamic-pool boundary: /%d\n", pool)
		}
	}
	sim := core.MeasureSimultaneity(pas)[profile.ASN]
	if sim != nil && sim.V6Changes > 0 {
		fmt.Printf("IPv6 changes co-occurring with IPv4 changes: %.1f%%\n", 100*sim.Fraction())
	}
}
