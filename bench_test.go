package dynamips

import (
	"bufio"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"testing"
	"time"

	"dynamips/internal/bng"
	"dynamips/internal/cdn"
	"dynamips/internal/cdn/stream"
	"dynamips/internal/experiments"
)

// The benchmark harness: one benchmark per paper table/figure, each
// regenerating its rows from a shared pipeline built at reduced scale
// (full scale is the cmd/dynamips default; the per-experiment analysis
// cost is what the benchmarks isolate). BenchmarkBuildAtlasPipeline and
// BenchmarkBuildCDNPipeline measure the generation side.

// The shared pipelines are memoized under a mutex rather than sync.Once:
// a Once would latch a transient build error forever, failing every later
// benchmark in the binary with the stale error instead of retrying.
var (
	benchMu    sync.Mutex
	benchAtlas *experiments.AtlasData
	benchCDN   *experiments.CDNData
)

func benchData(b *testing.B) (*experiments.AtlasData, *experiments.CDNData) {
	b.Helper()
	benchMu.Lock()
	defer benchMu.Unlock()
	if benchAtlas == nil {
		a, err := experiments.BuildAtlas(experiments.Reduced())
		if err != nil {
			b.Fatalf("building atlas pipeline: %v", err)
		}
		benchAtlas = a
	}
	if benchCDN == nil {
		c, err := experiments.BuildCDN(experiments.Reduced())
		if err != nil {
			b.Fatalf("building cdn pipeline: %v", err)
		}
		benchCDN = c
	}
	return benchAtlas, benchCDN
}

func benchAtlasExperiment(b *testing.B, name string) {
	a, _ := benchData(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := experiments.RunAtlasExperiment(name, io.Discard, a); err != nil {
			b.Fatal(err)
		}
	}
}

func benchCDNExperiment(b *testing.B, name string) {
	_, c := benchData(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := experiments.RunCDNExperiment(name, io.Discard, c); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable1(b *testing.B)          { benchAtlasExperiment(b, "table1") }
func BenchmarkFig1(b *testing.B)            { benchAtlasExperiment(b, "fig1") }
func BenchmarkSimultaneity(b *testing.B)    { benchAtlasExperiment(b, "simultaneity") }
func BenchmarkTable2(b *testing.B)          { benchAtlasExperiment(b, "table2") }
func BenchmarkFig5(b *testing.B)            { benchAtlasExperiment(b, "fig5") }
func BenchmarkFig6(b *testing.B)            { benchAtlasExperiment(b, "fig6") }
func BenchmarkFig8(b *testing.B)            { benchAtlasExperiment(b, "fig8") }
func BenchmarkFig9(b *testing.B)            { benchAtlasExperiment(b, "fig9") }
func BenchmarkSanitizeReport(b *testing.B)  { benchAtlasExperiment(b, "sanitize") }
func BenchmarkFig2(b *testing.B)            { benchCDNExperiment(b, "fig2") }
func BenchmarkFig3(b *testing.B)            { benchCDNExperiment(b, "fig3") }
func BenchmarkFig4(b *testing.B)            { benchCDNExperiment(b, "fig4") }
func BenchmarkFig7(b *testing.B)            { benchCDNExperiment(b, "fig7") }
func BenchmarkGlobalDurations(b *testing.B) { benchCDNExperiment(b, "globaldur") }

func BenchmarkBuildAtlasPipeline(b *testing.B) {
	cfg := experiments.Reduced()
	cfg.ProbeScale = 0.1
	cfg.Hours = 8760
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.BuildAtlas(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBuildCDNPipeline(b *testing.B) {
	cfg := experiments.Reduced()
	cfg.CDNScale = 0.05
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.BuildCDN(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEvolution(b *testing.B) { benchAtlasExperiment(b, "evolution") }
func BenchmarkZmapBias(b *testing.B)  { benchAtlasExperiment(b, "zmapbias") }
func BenchmarkTracking(b *testing.B)  { benchAtlasExperiment(b, "tracking") }

// gcBaseline forces a collection and returns the settled heap size, the
// zero point for peak-mem-bytes deltas (so heap retained by the other
// benchmarks' memoized pipelines doesn't contaminate the measurement).
func gcBaseline() uint64 {
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.HeapAlloc
}

// withHeapSample runs fn while a background goroutine samples the Go
// heap every millisecond, folding the largest growth over base into
// *peak.
func withHeapSample(peak *uint64, base uint64, fn func() error) error {
	quit := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		tick := time.NewTicker(time.Millisecond)
		defer tick.Stop()
		var ms runtime.MemStats
		for {
			select {
			case <-quit:
				return
			case <-tick.C:
				runtime.ReadMemStats(&ms)
				if grow := ms.HeapAlloc - base; ms.HeapAlloc > base && grow > *peak {
					*peak = grow
				}
			}
		}
	}()
	err := fn()
	close(quit)
	<-done
	return err
}

// BenchmarkBNGChurn measures the assignment-plane daemon's virtual-time
// churn loop at reduced scale: 50k subscribers across the built-in
// groups, two virtual hours of renewal-dominated churn per iteration.
// Alongside ns/op it reports peak-mem-bytes — heap growth over a
// post-GC baseline while churning — which benchcheck gates against an
// absolute ceiling: the striped table's steady-state allocation
// contract, enforced in CI.
func BenchmarkBNGChurn(b *testing.B) {
	cfg := bng.DefaultConfig(50_000, 0xBE7C)
	d, err := bng.New(cfg, bng.Options{RoundHours: 2})
	if err != nil {
		b.Fatal(err)
	}
	// Attach phase: bring every subscriber online before the timer runs.
	if err := d.Churn(1); err != nil {
		b.Fatal(err)
	}

	base := gcBaseline()
	var peak uint64
	hours := d.Hours()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hours += 2
		if err := withHeapSample(&peak, base, func() error { return d.Churn(hours) }); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(peak), "peak-mem-bytes")
}

// BenchmarkStreamCDNPipeline measures the sharded streaming CDN path
// end-to-end at reduced scale: generate ~315k associations through
// per-operator spill files into a CSV, then run the partition/shard/merge
// analysis over it. Alongside ns/op it reports peak-mem-bytes — the
// largest Go heap growth over a post-GC baseline while the pipeline
// runs, sampled from a background goroutine (a delta, so heap the other
// benchmarks' memoized pipelines retain doesn't contaminate it) — which
// benchcheck gates against an absolute ceiling
// (testdata/bench_baseline.json "ceilings"): the streaming path's
// bounded-memory contract, enforced in CI.
func BenchmarkStreamCDNPipeline(b *testing.B) {
	dir := b.TempDir()
	csvPath := filepath.Join(dir, "assocs.csv")
	cfg := cdn.DefaultGenConfig(20201201)
	cfg.Scale = 0.1
	cfg.Days = 150

	base := gcBaseline()
	var peak uint64
	sampled := func(fn func() error) error {
		return withHeapSample(&peak, base, fn)
	}

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		err := sampled(func() error {
			f, err := os.Create(csvPath)
			if err != nil {
				return err
			}
			bw := bufio.NewWriterSize(f, 1<<16)
			if err := stream.Generate(stream.GenConfig{Gen: cfg, SpillDir: filepath.Join(dir, "gen-spill")}, bw); err != nil {
				f.Close()
				return err
			}
			if err := bw.Flush(); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			_, err = stream.Analyze(stream.AnalyzeConfig{
				In: csvPath, Threshold: 350,
				SpillDir: filepath.Join(dir, "az-spill"),
			})
			return err
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(peak), "peak-mem-bytes")
}
