// Package sketch provides deterministic, mergeable streaming summaries
// for the online analysis plane: a rank-error-bounded quantile sketch
// for duration CDFs (the paper's §3.2.1 total-time-fraction curves), a
// Misra-Gries heavy-hitter summary for top-churning /24s and /64s, and
// a seeded-hash HLL/linear-counting cardinality estimator for
// /64-per-/24 counts.
//
// Every sketch in this package is a commutative monoid over its input
// multiset: the in-memory state (and therefore the canonical binary
// encoding) is a function of WHICH records were folded in, never of the
// order they arrived, which worker folded them, or how partial sketches
// were associated during merging. Concretely:
//
//   - Quantile state is a bucket→count map; merge is bucket-wise
//     addition.
//   - TopK merge is a lossless pointwise union (counts add, slack
//     adds); the lossy Misra-Gries decrement runs only on Add, and the
//     top-j extraction is a pure function of state at query time.
//   - Card state is a register-wise max over seeded hashes.
//
// That is what lets per-worker and per-shard partials merge to
// byte-identical state at any -workers or -shards count, in any merge
// permutation or association — the repo-wide determinism contract,
// extended to online estimates and enforced by dynalint (this package
// is in both the Sim and Hot sets: no wall clock, no global randomness,
// no map-order dependence, and no per-record allocations on the Add
// paths).
//
// Sketches travel between processes in a CRC-framed canonical binary
// encoding (see codec.go) so they can ride the checkpoint journal and
// the daemon snapshot plane unchanged.
package sketch

import "errors"

// Kind tags a sketch's concrete type in the Set container and the
// binary codec.
type Kind uint8

const (
	// KindQuantile is a *Quantile duration-CDF sketch.
	KindQuantile Kind = 1
	// KindTopK is a *TopK heavy-hitter summary.
	KindTopK Kind = 2
	// KindCard is a *Card cardinality estimator.
	KindCard Kind = 3
)

// Merge and container errors.
var (
	// ErrMergeParam rejects merging sketches built with different
	// parameters (quantile alpha, topk capacity, card precision/seed).
	ErrMergeParam = errors.New("sketch: merge parameter mismatch")
	// ErrMergeSchema rejects merging Sets whose (name, kind) schemas
	// differ: partial sketches must be built by the same code path.
	ErrMergeSchema = errors.New("sketch: merge schema mismatch")
	// ErrDupName rejects adding two sketches under one name.
	ErrDupName = errors.New("sketch: duplicate name in set")
	// ErrName rejects empty or oversized (>255 byte) sketch names.
	ErrName = errors.New("sketch: name must be 1..255 bytes")
)

// mix64 is the SplitMix64 finalizer used for seeded hashing — the same
// avalanche the stripe table and the stream partitioner use, copied
// here so the sketch layer stays dependency-free.
func mix64(x uint64) uint64 {
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// Sketch is the closed interface over the three sketch types. Concrete
// values are always pointers (*Quantile, *TopK, *Card), so holding them
// behind the interface never boxes.
type Sketch interface {
	// Kind reports the concrete sketch type.
	Kind() Kind
	// appendBody appends the canonical body encoding (codec.go).
	appendBody(dst []byte) []byte
	// mergeSketch folds other (same concrete type) into the receiver.
	mergeSketch(other Sketch) error
	// cloneSketch returns an independent deep copy.
	cloneSketch() Sketch
}

// item is one named sketch in a Set.
type item struct {
	name string
	sk   Sketch
}

// Set is an ordered collection of named sketches: the unit that layers
// journal, snapshot, serve, and merge. Items are kept sorted by name so
// the encoding is canonical regardless of insertion order.
type Set struct {
	items []item
}

// NewSet returns an empty set.
func NewSet() *Set { return &Set{} }

// Len reports the number of sketches in the set.
func (s *Set) Len() int { return len(s.items) }

// Names returns the sketch names in canonical (sorted) order.
func (s *Set) Names() []string {
	out := make([]string, len(s.items))
	for i := range s.items {
		out[i] = s.items[i].name
	}
	return out
}

// find returns the index of name, or -1.
func (s *Set) find(name string) int {
	for i := range s.items {
		if s.items[i].name == name {
			return i
		}
	}
	return -1
}

// KindOf reports the kind stored under name, or 0 if absent.
func (s *Set) KindOf(name string) Kind {
	if i := s.find(name); i >= 0 {
		return s.items[i].sk.Kind()
	}
	return 0
}

// Put adds sk under name, keeping items sorted by name.
func (s *Set) Put(name string, sk Sketch) error {
	if len(name) == 0 || len(name) > 255 {
		return ErrName
	}
	at := len(s.items)
	for i := range s.items {
		if s.items[i].name == name {
			return ErrDupName
		}
		if s.items[i].name > name {
			at = i
			break
		}
	}
	s.items = append(s.items, item{})
	copy(s.items[at+1:], s.items[at:])
	s.items[at] = item{name: name, sk: sk}
	return nil
}

// Quantile returns the quantile sketch stored under name, or nil if
// absent or of another kind.
func (s *Set) Quantile(name string) *Quantile {
	if i := s.find(name); i >= 0 {
		if q, ok := s.items[i].sk.(*Quantile); ok {
			return q
		}
	}
	return nil
}

// TopK returns the heavy-hitter sketch stored under name, or nil.
func (s *Set) TopK(name string) *TopK {
	if i := s.find(name); i >= 0 {
		if t, ok := s.items[i].sk.(*TopK); ok {
			return t
		}
	}
	return nil
}

// Card returns the cardinality sketch stored under name, or nil.
func (s *Set) Card(name string) *Card {
	if i := s.find(name); i >= 0 {
		if c, ok := s.items[i].sk.(*Card); ok {
			return c
		}
	}
	return nil
}

// Merge folds o into s item by item. The two sets must carry the same
// (name, kind) schema — partials produced by the same builder always
// do — and each pair must have compatible parameters.
func (s *Set) Merge(o *Set) error {
	if len(s.items) != len(o.items) {
		return ErrMergeSchema
	}
	for i := range s.items {
		if s.items[i].name != o.items[i].name || s.items[i].sk.Kind() != o.items[i].sk.Kind() {
			return ErrMergeSchema
		}
	}
	for i := range s.items {
		if err := s.items[i].sk.mergeSketch(o.items[i].sk); err != nil {
			return err
		}
	}
	return nil
}

// Clone returns an independent deep copy of the set.
func (s *Set) Clone() *Set {
	out := &Set{items: make([]item, len(s.items))}
	for i := range s.items {
		out.items[i] = item{name: s.items[i].name, sk: s.items[i].sk.cloneSketch()}
	}
	return out
}
