package sketch

import "slices"

// Entry is one heavy hitter: a key and its estimated count.
type Entry struct {
	Key   uint64
	Count uint64
}

// TopK is a weighted Misra-Gries heavy-hitter summary over uint64 keys
// (/24s as netutil.U32 values, /64s as their high-64 prefix bits).
//
// The classic Misra-Gries guarantee holds per partial: a key's true
// weight exceeds its stored estimate by at most Slack() ≤ N/(k+1).
// Merging is the LOSSLESS pointwise union — counts add, slack adds, no
// re-pruning — so merged state is a pure function of the folded
// multiset (byte-identical under any merge permutation or association)
// and the merged slack of partials that partition a stream of total
// weight N is still ≤ N/(k+1) ≤ N/k. The cost of losslessness is that
// a merge of S partials may hold up to S·k entries; pruning happens
// only on subsequent Adds, and the top-j extraction is a query-time
// pure function.
type TopK struct {
	k      int
	n      uint64
	slack  uint64
	counts map[uint64]uint64
}

// NewTopK builds a summary with capacity k. It panics if k < 1.
func NewTopK(k int) *TopK {
	if k < 1 {
		panic("sketch: topk capacity must be >= 1")
	}
	return &TopK{k: k, counts: make(map[uint64]uint64)}
}

// K reports the per-partial capacity.
func (t *TopK) K() int { return t.k }

// Kind reports KindTopK.
func (t *TopK) Kind() Kind { return KindTopK }

// N reports the total weight folded in.
func (t *TopK) N() uint64 { return t.n }

// Slack reports the total Misra-Gries decrement: any key's true weight
// exceeds its Est by at most Slack.
func (t *TopK) Slack() uint64 { return t.slack }

// sortedKeys returns the tracked keys in ascending order, so every
// state walk is independent of map iteration order.
func (t *TopK) sortedKeys() []uint64 {
	keys := make([]uint64, 0, len(t.counts))
	for k := range t.counts {
		keys = append(keys, k)
	}
	slices.Sort(keys)
	return keys
}

// Add folds weight w for key. When the summary exceeds its capacity it
// runs one Misra-Gries decrement round: subtract the minimum tracked
// count from every entry, dropping the entries that reach zero and
// accounting the subtraction in Slack.
func (t *TopK) Add(key uint64, w uint64) {
	if w == 0 {
		return
	}
	t.n += w
	t.counts[key] += w
	if len(t.counts) <= t.k {
		return
	}
	keys := t.sortedKeys()
	min := t.counts[keys[0]]
	for _, k := range keys[1:] {
		if c := t.counts[k]; c < min {
			min = c
		}
	}
	for _, k := range keys {
		if c := t.counts[k]; c <= min {
			delete(t.counts, k)
		} else {
			t.counts[k] = c - min
		}
	}
	t.slack += min
}

// Est returns the stored estimate for key and whether it is tracked.
// The true weight lies in [est, est+Slack]; an untracked key's true
// weight is at most Slack.
func (t *TopK) Est(key uint64) (uint64, bool) {
	c, ok := t.counts[key]
	return c, ok
}

// Top returns the j highest-estimate entries, ordered by count
// descending with ascending-key tie-break (a total order, so the
// answer never depends on map iteration).
func (t *TopK) Top(j int) []Entry {
	keys := t.sortedKeys()
	es := make([]Entry, len(keys))
	for i, k := range keys {
		es[i] = Entry{Key: k, Count: t.counts[k]}
	}
	slices.SortFunc(es, compareEntries)
	if j < len(es) {
		es = es[:j]
	}
	return es
}

// compareEntries orders by count descending, key ascending.
func compareEntries(a, b Entry) int {
	if a.Count != b.Count {
		if a.Count > b.Count {
			return -1
		}
		return 1
	}
	if a.Key != b.Key {
		if a.Key < b.Key {
			return -1
		}
		return 1
	}
	return 0
}

// Merge folds o into t: the lossless union described on the type. Both
// summaries must share k.
func (t *TopK) Merge(o *TopK) error {
	if t.k != o.k {
		return ErrMergeParam
	}
	t.n += o.n
	t.slack += o.slack
	for _, k := range o.sortedKeys() {
		t.counts[k] += o.counts[k]
	}
	return nil
}

func (t *TopK) mergeSketch(other Sketch) error {
	o, ok := other.(*TopK)
	if !ok {
		return ErrMergeSchema
	}
	return t.Merge(o)
}

func (t *TopK) cloneSketch() Sketch {
	out := NewTopK(t.k)
	out.n = t.n
	out.slack = t.slack
	for _, k := range t.sortedKeys() {
		out.counts[k] = t.counts[k]
	}
	return out
}
