package sketch

import (
	"bytes"
	"math/rand"
	"testing"
)

// buildSetK returns the canonical three-sketch schema used across the
// property tests, with the given heavy-hitter capacity.
func buildSetK(k int) *Set {
	s := NewSet()
	if err := s.Put("duration", NewQuantile(0.01)); err != nil {
		panic(err)
	}
	if err := s.Put("churn24", NewTopK(k)); err != nil {
		panic(err)
	}
	if err := s.Put("pfx64", NewCard(10, 42)); err != nil {
		panic(err)
	}
	return s
}

// buildSet uses a small capacity so the Misra-Gries summary is deep in
// its pruning regime — the hardest case for merge invariance.
func buildSet() *Set { return buildSetK(32) }

// foldRecord sends one synthetic record into a set: a duration, a
// churn key, a prefix.
func foldRecord(s *Set, r *testRNG) {
	d := float64(1 + r.next()%100000)
	s.Quantile("duration").Add(d)
	s.TopK("churn24").Add(r.next()%512, 1+r.next()%3)
	s.Card("pfx64").Add(r.next() % 20000)
}

// buildPartials deterministically splits a seeded stream over p
// partial sets (fixed assignment, independent of visit order).
func buildPartials(seed uint64, p, records int) []*Set {
	return buildPartialsK(seed, p, records, 32)
}

func buildPartialsK(seed uint64, p, records, k int) []*Set {
	parts := make([]*Set, p)
	for i := range parts {
		parts[i] = buildSetK(k)
	}
	r := testRNG(seed)
	for i := 0; i < records; i++ {
		foldRecord(parts[mix64(uint64(i)+seed)%uint64(p)], &r)
	}
	return parts
}

// mergeInOrder left-folds the partials in the given visiting order.
func mergeInOrder(parts []*Set, order []int, t *testing.T) *Set {
	t.Helper()
	acc := parts[order[0]].Clone()
	for _, i := range order[1:] {
		if err := acc.Merge(parts[i]); err != nil {
			t.Fatalf("merge: %v", err)
		}
	}
	return acc
}

// TestMergePermutationInvariant proves merged bytes are identical
// under random permutations of the partial sketches.
func TestMergePermutationInvariant(t *testing.T) {
	const p = 9
	parts := buildPartials(0xABCD, p, 20000)
	base := make([]int, p)
	for i := range base {
		base[i] = i
	}
	want := mergeInOrder(parts, base, t).Encode()
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 8; trial++ {
		order := rng.Perm(p)
		got := mergeInOrder(parts, order, t).Encode()
		if !bytes.Equal(got, want) {
			t.Fatalf("trial %d order %v: merged bytes differ", trial, order)
		}
	}
}

// TestMergeAssociative proves left fold, right fold, and balanced-tree
// association of the same partials produce identical bytes.
func TestMergeAssociative(t *testing.T) {
	const p = 8
	parts := buildPartials(0xFEED, p, 16000)

	left := parts[0].Clone()
	for i := 1; i < p; i++ {
		if err := left.Merge(parts[i]); err != nil {
			t.Fatal(err)
		}
	}

	right := parts[p-1].Clone()
	for i := p - 2; i >= 0; i-- {
		tmp := parts[i].Clone()
		if err := tmp.Merge(right); err != nil {
			t.Fatal(err)
		}
		right = tmp
	}

	var tree func(lo, hi int) *Set
	tree = func(lo, hi int) *Set {
		if hi-lo == 1 {
			return parts[lo].Clone()
		}
		mid := (lo + hi) / 2
		l, r := tree(lo, mid), tree(mid, hi)
		if err := l.Merge(r); err != nil {
			t.Fatal(err)
		}
		return l
	}
	balanced := tree(0, p)

	lb, rb, bb := left.Encode(), right.Encode(), balanced.Encode()
	if !bytes.Equal(lb, rb) || !bytes.Equal(lb, bb) {
		t.Fatal("merge association changed the encoded bytes")
	}
}

// TestWorkerCountInvariant proves the same stream split over 1, 4, and
// 16 partials merges to identical bytes — the sketch-level form of the
// repo's -workers contract. The heavy-hitter capacity here exceeds the
// distinct-key count (the exact regime): quantile and cardinality
// state is partition-invariant unconditionally, but a Misra-Gries
// summary is a function of the input multiset only until it prunes —
// which is why the pipelines fix their shard/stripe partition
// independently of -workers and size e2e capacities to the exact
// regime (see DESIGN.md "Online analysis").
func TestWorkerCountInvariant(t *testing.T) {
	var want []byte
	for _, workers := range []int{1, 4, 16} {
		parts := buildPartialsK(0x777, workers, 30000, 1024)
		order := make([]int, workers)
		for i := range order {
			order[i] = i
		}
		got := mergeInOrder(parts, order, t).Encode()
		if want == nil {
			want = got
			continue
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("workers=%d: merged bytes differ from workers=1", workers)
		}
	}
}

// TestWorkerCountBounds proves the weaker unconditional guarantee in
// the pruning regime: at any partition width the merged summary's
// error bounds still hold against the exact stream.
func TestWorkerCountBounds(t *testing.T) {
	const records = 30000
	// Replay the stream exactly to collect ground truth.
	truth := make(map[uint64]uint64)
	var totalW uint64
	r := testRNG(0x777)
	for i := 0; i < records; i++ {
		r.next() // duration draw
		key, w := r.next()%512, 1+r.next()%3
		truth[key] += w
		totalW += w
		r.next() // card draw
	}
	for _, workers := range []int{1, 4, 16} {
		parts := buildPartials(0x777, workers, records)
		order := make([]int, workers)
		for i := range order {
			order[i] = i
		}
		merged := mergeInOrder(parts, order, t).TopK("churn24")
		if merged.N() != totalW {
			t.Fatalf("workers=%d: N=%d want %d", workers, merged.N(), totalW)
		}
		bound := totalW / uint64(merged.K())
		if merged.Slack() > bound {
			t.Fatalf("workers=%d: slack %d > N/k %d", workers, merged.Slack(), bound)
		}
		for key, want := range truth {
			est, _ := merged.Est(key)
			if est > want || want-est > merged.Slack() {
				t.Fatalf("workers=%d key %d: est %d outside [true-slack, true] (true %d, slack %d)",
					workers, key, est, want, merged.Slack())
			}
		}
	}
}

// TestKillResumeRoundtrip proves encode → decode → keep folding gives
// the same final bytes as an uninterrupted run: the property the
// checkpoint journal and daemon snapshot plane rely on.
func TestKillResumeRoundtrip(t *testing.T) {
	straight := buildSet()
	r1 := testRNG(0x1234)
	for i := 0; i < 12000; i++ {
		foldRecord(straight, &r1)
	}

	interrupted := buildSet()
	r2 := testRNG(0x1234)
	for i := 0; i < 5000; i++ {
		foldRecord(interrupted, &r2)
	}
	mid := interrupted.Encode()
	resumed, err := DecodeSet(mid)
	if err != nil {
		t.Fatalf("decode mid-state: %v", err)
	}
	for i := 5000; i < 12000; i++ {
		foldRecord(resumed, &r2)
	}

	if !bytes.Equal(straight.Encode(), resumed.Encode()) {
		t.Fatal("kill/resume changed the final sketch bytes")
	}
}

// TestMergeParamMismatch covers every incompatible-merge rejection.
func TestMergeParamMismatch(t *testing.T) {
	if err := NewQuantile(0.01).Merge(NewQuantile(0.02)); err != ErrMergeParam {
		t.Fatalf("quantile alpha mismatch: got %v", err)
	}
	if err := NewTopK(8).Merge(NewTopK(9)); err != ErrMergeParam {
		t.Fatalf("topk capacity mismatch: got %v", err)
	}
	if err := NewCard(10, 1).Merge(NewCard(10, 2)); err != ErrMergeParam {
		t.Fatalf("card seed mismatch: got %v", err)
	}
	if err := NewCard(10, 1).Merge(NewCard(11, 1)); err != ErrMergeParam {
		t.Fatalf("card precision mismatch: got %v", err)
	}

	a, b := NewSet(), NewSet()
	if err := a.Put("x", NewTopK(4)); err != nil {
		t.Fatal(err)
	}
	if err := a.Merge(b); err != ErrMergeSchema {
		t.Fatalf("length mismatch: got %v", err)
	}
	if err := b.Put("y", NewTopK(4)); err != nil {
		t.Fatal(err)
	}
	if err := a.Merge(b); err != ErrMergeSchema {
		t.Fatalf("name mismatch: got %v", err)
	}
	c, d := NewSet(), NewSet()
	if err := c.Put("x", NewTopK(4)); err != nil {
		t.Fatal(err)
	}
	if err := d.Put("x", NewCard(10, 1)); err != nil {
		t.Fatal(err)
	}
	if err := c.Merge(d); err != ErrMergeSchema {
		t.Fatalf("kind mismatch: got %v", err)
	}
	// Same schema, different parameters.
	e, f := NewSet(), NewSet()
	if err := e.Put("x", NewTopK(4)); err != nil {
		t.Fatal(err)
	}
	if err := f.Put("x", NewTopK(5)); err != nil {
		t.Fatal(err)
	}
	if err := e.Merge(f); err != ErrMergeParam {
		t.Fatalf("param mismatch through set: got %v", err)
	}
	// Cross-kind sketch-level merges through the interface.
	var q Sketch = NewQuantile(0.01)
	if err := q.mergeSketch(NewTopK(4)); err != ErrMergeSchema {
		t.Fatalf("quantile cross-kind: got %v", err)
	}
	var tk Sketch = NewTopK(4)
	if err := tk.mergeSketch(NewCard(10, 1)); err != ErrMergeSchema {
		t.Fatalf("topk cross-kind: got %v", err)
	}
	var ca Sketch = NewCard(10, 1)
	if err := ca.mergeSketch(NewQuantile(0.01)); err != ErrMergeSchema {
		t.Fatalf("card cross-kind: got %v", err)
	}
}

// TestCloneIndependence proves Clone yields a deep copy: mutating the
// clone leaves the original's bytes unchanged.
func TestCloneIndependence(t *testing.T) {
	s := buildSet()
	r := testRNG(5)
	for i := 0; i < 1000; i++ {
		foldRecord(s, &r)
	}
	before := s.Encode()
	c := s.Clone()
	for i := 0; i < 1000; i++ {
		foldRecord(c, &r)
	}
	if !bytes.Equal(s.Encode(), before) {
		t.Fatal("mutating a clone changed the original")
	}
	if bytes.Equal(c.Encode(), before) {
		t.Fatal("clone did not absorb new records")
	}
}
