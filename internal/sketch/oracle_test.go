package sketch

import (
	"math"
	"sort"
	"testing"
)

// testRNG is a SplitMix64 stream: the same generator the simulators
// use, so oracle inputs are seeded and reproducible.
type testRNG uint64

func (r *testRNG) next() uint64 {
	*r += 0x9E3779B97F4A7C15
	return mix64(uint64(*r))
}

func (r *testRNG) f64() float64 {
	return float64(r.next()>>11) / (1 << 53)
}

// dist is one seeded input distribution for the batch-vs-sketch
// oracle: gen returns the value stream, eps is the asserted rank-error
// bound for quantile queries against the exact ECDF.
type dist struct {
	name string
	eps  float64
	gen  func(seed uint64, n int) []float64
}

// oracleDists are the seeded distributions the error bounds are
// asserted on: integer episode durations (the CDN shape, exact in the
// sketch's linear region), exponential session durations in seconds
// (the BNG shape, log region), and a bimodal fixed/mobile mixture
// spanning both regions.
var oracleDists = []dist{
	{
		name: "uniform-int-days",
		eps:  1e-12, // linear region: unit buckets, rank error is zero
		gen: func(seed uint64, n int) []float64 {
			r := testRNG(seed)
			out := make([]float64, n)
			for i := range out {
				out[i] = float64(1 + r.next()%150)
			}
			return out
		},
	},
	{
		name: "exp-session-seconds",
		eps:  0.02, // log region: alpha-wide buckets on a smooth CDF
		gen: func(seed uint64, n int) []float64 {
			r := testRNG(seed)
			out := make([]float64, n)
			for i := range out {
				u := r.f64()
				if u >= 1 {
					u = 0.5
				}
				out[i] = -86400 * math.Log(1-u)
			}
			return out
		},
	},
	{
		name: "bimodal-fixed-mobile",
		eps:  0.02,
		gen: func(seed uint64, n int) []float64 {
			r := testRNG(seed)
			out := make([]float64, n)
			for i := range out {
				if r.f64() < 0.6 {
					out[i] = float64(1 + r.next()%30) // short mobile episodes
				} else {
					out[i] = 3600 * (1 + 200*r.f64()) // long fixed sessions
				}
			}
			return out
		},
	},
}

// exactQuantile is the batch oracle: nearest-rank quantile over the
// sorted data, matching stats.ECDF.Quantile.
func exactQuantile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	r := int(math.Ceil(p * float64(len(sorted))))
	if r < 1 {
		r = 1
	}
	if r > len(sorted) {
		r = len(sorted)
	}
	return sorted[r-1]
}

// exactRank counts values at or below x: the oracle CDF numerator.
func exactRank(sorted []float64, x float64) int {
	return sort.SearchFloat64s(sorted, math.Nextafter(x, math.Inf(1)))
}

// TestQuantileOracle proves the rank-error bound: for every seeded
// distribution and a grid of probabilities, the sketch's estimate has
// an exact rank within eps·n of the target rank.
func TestQuantileOracle(t *testing.T) {
	const n = 50000
	const alpha = 0.01
	probs := []float64{0.01, 0.05, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99}
	for _, d := range oracleDists {
		t.Run(d.name, func(t *testing.T) {
			data := d.gen(0xD15C0, n)
			q := NewQuantile(alpha)
			for _, x := range data {
				q.Add(x)
			}
			if q.Count() != n {
				t.Fatalf("Count = %d, want %d", q.Count(), n)
			}
			sorted := append([]float64(nil), data...)
			sort.Float64s(sorted)
			for _, p := range probs {
				est := q.Query(p)
				exact := exactQuantile(sorted, p)
				// Rank error: the estimate's true rank must sit within
				// eps of the target rank. A repeated value covers a
				// whole rank interval, and bucket representatives can
				// land between data points, so measure the distance
				// from the target rank to the rank interval spanned by
				// the estimate and the exact quantile.
				minV, maxV := math.Min(est, exact), math.Max(est, exact)
				lo := sort.SearchFloat64s(sorted, minV) + 1 // lowest rank with value >= minV
				hi := exactRank(sorted, maxV)               // highest rank with value <= maxV
				if hi < lo {
					hi = lo // estimate fell in a gap between data points
				}
				target := math.Ceil(p * n)
				rankErr := 0.0
				if float64(lo) > target {
					rankErr = float64(lo) - target
				} else if float64(hi) < target {
					rankErr = target - float64(hi)
				}
				if rankErr > d.eps*n {
					t.Errorf("p=%.2f: est %.4g (exact %.4g) rank error %.1f > eps*n = %.1f",
						p, est, exact, rankErr, d.eps*n)
				}
				// Value error in the log region is bounded by alpha
				// relative to the exact quantile's bucket.
				if exact > linCut {
					if rel := math.Abs(est-exact) / exact; rel > 2*alpha {
						t.Errorf("p=%.2f: relative value error %.4f > 2*alpha", p, rel)
					}
				}
			}
			// The CDF at exact integer bucket bounds is exact.
			if d.name == "uniform-int-days" {
				for _, x := range []float64{1, 50, 150} {
					want := float64(exactRank(sorted, x)) / n
					if got := q.CDF(x); math.Abs(got-want) > 1e-12 {
						t.Errorf("CDF(%v) = %v, want %v", x, got, want)
					}
				}
			}
		})
	}
}

// topkDist generates a seeded key stream with skewed weights.
func topkDist(seed uint64, n, keys int, skew float64) []uint64 {
	r := testRNG(seed)
	// Inverse-CDF sampling over 1/rank^skew weights.
	w := make([]float64, keys)
	sum := 0.0
	for i := range w {
		w[i] = 1 / math.Pow(float64(i+1), skew)
		sum += w[i]
	}
	cum := make([]float64, keys)
	acc := 0.0
	for i := range w {
		acc += w[i] / sum
		cum[i] = acc
	}
	out := make([]uint64, n)
	for i := range out {
		u := r.f64()
		j := sort.SearchFloat64s(cum, u)
		if j >= keys {
			j = keys - 1
		}
		// Scatter key identities so they are not dense small ints.
		out[i] = mix64(uint64(j) + seed)
	}
	return out
}

// TestTopKOracle proves the heavy-hitter bound on three seeded skews:
// every key's true count exceeds its estimate by at most Slack, Slack
// stays at or below N/k, and every key heavier than N/k is tracked.
func TestTopKOracle(t *testing.T) {
	const n = 200000
	const k = 64
	for _, tc := range []struct {
		name string
		keys int
		skew float64
	}{
		{"zipf-1.1", 5000, 1.1},
		{"zipf-1.5", 2000, 1.5},
		{"near-uniform", 300, 0.2},
	} {
		t.Run(tc.name, func(t *testing.T) {
			stream := topkDist(0xBEEF, n, tc.keys, tc.skew)
			truth := make(map[uint64]uint64)
			tk := NewTopK(k)
			for _, key := range stream {
				truth[key]++
				tk.Add(key, 1)
			}
			if tk.N() != n {
				t.Fatalf("N = %d, want %d", tk.N(), n)
			}
			if tk.Slack() > n/k {
				t.Fatalf("Slack %d > N/k = %d", tk.Slack(), n/k)
			}
			for key, want := range truth {
				est, ok := tk.Est(key)
				if !ok {
					est = 0
				}
				if est > want {
					t.Fatalf("key %#x overcounted: est %d > true %d", key, est, want)
				}
				if want-est > tk.Slack() {
					t.Fatalf("key %#x undercount %d exceeds slack %d", key, want-est, tk.Slack())
				}
				if want > n/k && !ok {
					t.Fatalf("heavy key %#x (true %d > N/k) not tracked", key, want)
				}
			}
			// Top must be count-descending and within-slack accurate.
			top := tk.Top(10)
			for i := 1; i < len(top); i++ {
				if top[i].Count > top[i-1].Count {
					t.Fatalf("Top not sorted at %d", i)
				}
			}
			for _, e := range top {
				if want := truth[e.Key]; want-e.Count > tk.Slack() {
					t.Fatalf("top key %#x est %d true %d beyond slack", e.Key, e.Count, want)
				}
			}
		})
	}
}

// TestCardOracle proves the cardinality estimator stays within a few
// multiples of its theoretical RSE across the linear-counting range,
// the HLL range, and a high-collision range.
func TestCardOracle(t *testing.T) {
	const p = 12 // m = 4096, RSE ≈ 1.6%
	for _, tc := range []struct {
		name     string
		distinct int
	}{
		{"linear-counting-small", 200},
		{"mid-range", 5000},
		{"hll-large", 250000},
	} {
		t.Run(tc.name, func(t *testing.T) {
			c := NewCard(p, 0x5EED)
			r := testRNG(0xCAFE)
			seen := make(map[uint64]bool)
			for len(seen) < tc.distinct {
				key := r.next()
				seen[key] = true
				// Duplicates must not move the estimate.
				c.Add(key)
				c.Add(key)
			}
			est := c.Estimate()
			rel := math.Abs(est-float64(tc.distinct)) / float64(tc.distinct)
			if bound := 4 * c.RSE(); rel > bound {
				t.Fatalf("estimate %.0f for %d distinct: relative error %.4f > %.4f",
					est, tc.distinct, rel, bound)
			}
		})
	}
}

// TestCardSeedIndependence checks distinct seeds give independent (not
// identical) registers while each stays within bound, and that the
// estimator is deterministic for a fixed seed.
func TestCardSeedIndependence(t *testing.T) {
	a, b, c2 := NewCard(10, 1), NewCard(10, 2), NewCard(10, 1)
	r := testRNG(7)
	for i := 0; i < 10000; i++ {
		k := r.next()
		a.Add(k)
		b.Add(k)
		c2.Add(k)
	}
	if string(a.appendBody(nil)) == string(b.appendBody(nil)) {
		t.Fatal("different seeds produced identical registers")
	}
	if string(a.appendBody(nil)) != string(c2.appendBody(nil)) {
		t.Fatal("same seed produced different registers")
	}
}
