package sketch

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
	"math"
	"math/bits"
)

// setMagic heads every encoded sketch set.
const setMagic = "DSKSET01"

// maxTopK bounds a TopK capacity so the codec's arithmetic invariants
// stay overflow-checkable; 2^20 tracked keys is far past any summary.
const maxTopK = 1 << 20

// Codec errors. Decode is strict: it accepts exactly the canonical
// encodings Encode produces, so encode(decode(b)) == b for every
// accepted b and corrupted or non-canonical bytes are rejected rather
// than silently renormalized.
var (
	ErrCodecMagic    = errors.New("sketch: bad set magic")
	ErrCodecTruncate = errors.New("sketch: truncated set encoding")
	ErrCodecCRC      = errors.New("sketch: set CRC mismatch")
	ErrCodecOrder    = errors.New("sketch: set encoding not canonical")
	ErrCodecValue    = errors.New("sketch: set encoding value out of range")
)

// castagnoli is the CRC-32C polynomial table, matching the checkpoint
// writer and the stripe snapshot codec.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// setMagicBytes is the magic as an array for allocation-free compares.
var setMagicBytes = [8]byte{'D', 'S', 'K', 'S', 'E', 'T', '0', '1'}

func le32(dst []byte, v uint32) []byte {
	return append(dst, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

func le64(dst []byte, v uint64) []byte {
	return append(dst, byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
		byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
}

// Encode returns the canonical CRC-framed encoding of the set:
//
//	magic "DSKSET01" · u32 item count ·
//	per item (names strictly ascending):
//	  u8 name length · name · u8 kind · u32 body length · body ·
//	u32 CRC-32C over everything above
//
// All integers are little-endian. Because every sketch body is emitted
// in sorted key order from monoid state, two sets built from the same
// input multiset encode to identical bytes.
func (s *Set) Encode() []byte { return s.AppendBinary(nil) }

// AppendBinary appends the canonical encoding to dst and returns the
// extended slice. The CRC covers only the bytes this call appends.
func (s *Set) AppendBinary(dst []byte) []byte {
	base := len(dst)
	dst = append(dst, setMagic...)
	dst = le32(dst, uint32(len(s.items)))
	for i := range s.items {
		it := &s.items[i]
		dst = append(dst, byte(len(it.name)))
		dst = append(dst, it.name...)
		dst = append(dst, byte(it.sk.Kind()))
		lenAt := len(dst)
		dst = le32(dst, 0)
		dst = it.sk.appendBody(dst)
		binary.LittleEndian.PutUint32(dst[lenAt:], uint32(len(dst)-lenAt-4))
	}
	return le32(dst, crc32.Checksum(dst[base:], castagnoli))
}

// appendBody emits alpha bits, the zero-bucket count, and the
// populated buckets in ascending index order.
func (q *Quantile) appendBody(dst []byte) []byte {
	dst = le64(dst, math.Float64bits(q.alpha))
	dst = le64(dst, q.zeros)
	idx := q.sortedIdx()
	dst = le32(dst, uint32(len(idx)))
	for _, i := range idx {
		dst = le32(dst, uint32(i))
		dst = le64(dst, q.counts[i])
	}
	return dst
}

// appendBody emits capacity, totals, and the tracked keys ascending.
func (t *TopK) appendBody(dst []byte) []byte {
	dst = le32(dst, uint32(t.k))
	dst = le64(dst, t.n)
	dst = le64(dst, t.slack)
	keys := t.sortedKeys()
	dst = le32(dst, uint32(len(keys)))
	for _, k := range keys {
		dst = le64(dst, k)
		dst = le64(dst, t.counts[k])
	}
	return dst
}

// appendBody emits precision, seed, and the raw register array.
func (c *Card) appendBody(dst []byte) []byte {
	dst = append(dst, c.p)
	dst = le64(dst, c.seed)
	return append(dst, c.reg...)
}

// rd is a bounds-checked little-endian cursor over an encoded set.
type rd struct {
	b   []byte
	off int
}

func (r *rd) rem() int { return len(r.b) - r.off }

func (r *rd) u8() (byte, bool) {
	if r.rem() < 1 {
		return 0, false
	}
	v := r.b[r.off]
	r.off++
	return v, true
}

func (r *rd) u32() (uint32, bool) {
	if r.rem() < 4 {
		return 0, false
	}
	v := binary.LittleEndian.Uint32(r.b[r.off:])
	r.off += 4
	return v, true
}

func (r *rd) u64() (uint64, bool) {
	if r.rem() < 8 {
		return 0, false
	}
	v := binary.LittleEndian.Uint64(r.b[r.off:])
	r.off += 8
	return v, true
}

func (r *rd) bytes(n int) ([]byte, bool) {
	if n < 0 || r.rem() < n {
		return nil, false
	}
	b := r.b[r.off : r.off+n]
	r.off += n
	return b, true
}

// addU64 is overflow-checked addition.
func addU64(a, b uint64) (uint64, bool) {
	s, carry := bits.Add64(a, b, 0)
	return s, carry == 0
}

// DecodeSet parses a canonical set encoding, validating the magic, the
// CRC trailer, strict name and key ordering, parameter ranges, and the
// per-sketch state invariants.
func DecodeSet(data []byte) (*Set, error) {
	if len(data) < len(setMagic)+4+4 {
		return nil, ErrCodecTruncate
	}
	if [8]byte(data[:8]) != setMagicBytes {
		return nil, ErrCodecMagic
	}
	body := data[: len(data)-4 : len(data)-4]
	want := binary.LittleEndian.Uint32(data[len(data)-4:])
	if crc32.Checksum(body, castagnoli) != want {
		return nil, ErrCodecCRC
	}
	r := &rd{b: body, off: len(setMagic)}
	count, _ := r.u32()
	s := NewSet()
	prev := ""
	for i := uint32(0); i < count; i++ {
		nl, ok := r.u8()
		if !ok {
			return nil, ErrCodecTruncate
		}
		if nl == 0 {
			return nil, ErrCodecValue
		}
		nameBytes, ok := r.bytes(int(nl))
		if !ok {
			return nil, ErrCodecTruncate
		}
		//lint:ignore hotalloc decode runs once per checkpoint/snapshot load, not per record
		name := string(nameBytes)
		if i > 0 && name <= prev {
			return nil, ErrCodecOrder
		}
		prev = name
		kind, ok := r.u8()
		if !ok {
			return nil, ErrCodecTruncate
		}
		blen, ok := r.u32()
		if !ok {
			return nil, ErrCodecTruncate
		}
		bodyBytes, ok := r.bytes(int(blen))
		if !ok {
			return nil, ErrCodecTruncate
		}
		var sk Sketch
		switch Kind(kind) {
		case KindQuantile:
			q, err := decodeQuantileBody(bodyBytes)
			if err != nil {
				return nil, err
			}
			sk = q
		case KindTopK:
			t, err := decodeTopKBody(bodyBytes)
			if err != nil {
				return nil, err
			}
			sk = t
		case KindCard:
			c, err := decodeCardBody(bodyBytes)
			if err != nil {
				return nil, err
			}
			sk = c
		default:
			return nil, ErrCodecValue
		}
		if err := s.Put(name, sk); err != nil {
			return nil, ErrCodecOrder
		}
	}
	if r.rem() != 0 {
		return nil, ErrCodecTruncate
	}
	return s, nil
}

func decodeQuantileBody(b []byte) (*Quantile, error) {
	r := &rd{b: b}
	abits, ok1 := r.u64()
	zeros, ok2 := r.u64()
	nb, ok3 := r.u32()
	if !ok1 || !ok2 || !ok3 {
		return nil, ErrCodecTruncate
	}
	alpha := math.Float64frombits(abits)
	if !(alpha > 0 && alpha < 0.5) {
		return nil, ErrCodecValue
	}
	if r.rem() != int(nb)*12 {
		return nil, ErrCodecTruncate
	}
	q := NewQuantile(alpha)
	q.zeros = zeros
	q.n = zeros
	prev := int32(0)
	for i := uint32(0); i < nb; i++ {
		idxU, _ := r.u32()
		cnt, _ := r.u64()
		idx := int32(idxU)
		if idx < 1 || idx <= prev || cnt == 0 {
			return nil, ErrCodecValue
		}
		prev = idx
		var ok bool
		if q.n, ok = addU64(q.n, cnt); !ok {
			return nil, ErrCodecValue
		}
		q.counts[idx] = cnt
	}
	return q, nil
}

func decodeTopKBody(b []byte) (*TopK, error) {
	r := &rd{b: b}
	k, ok1 := r.u32()
	n, ok2 := r.u64()
	slack, ok3 := r.u64()
	ne, ok4 := r.u32()
	if !ok1 || !ok2 || !ok3 || !ok4 {
		return nil, ErrCodecTruncate
	}
	if k < 1 || k > maxTopK {
		return nil, ErrCodecValue
	}
	if r.rem() != int(ne)*16 {
		return nil, ErrCodecTruncate
	}
	t := NewTopK(int(k))
	t.n = n
	t.slack = slack
	var sum uint64
	var prev uint64
	for i := uint32(0); i < ne; i++ {
		key, _ := r.u64()
		cnt, _ := r.u64()
		if cnt == 0 || (i > 0 && key <= prev) {
			return nil, ErrCodecValue
		}
		prev = key
		var ok bool
		if sum, ok = addU64(sum, cnt); !ok {
			return nil, ErrCodecValue
		}
		t.counts[key] = cnt
	}
	// Misra-Gries invariant, preserved by Add and by the lossless
	// merge: every decrement round removes at least (k+1)·δ of
	// tracked weight, so tracked + (k+1)·slack never exceeds the
	// total folded weight.
	hi, lo := bits.Mul64(uint64(k)+1, slack)
	decremented, ok := addU64(sum, lo)
	if hi != 0 || !ok || decremented > n {
		return nil, ErrCodecValue
	}
	return t, nil
}

func decodeCardBody(b []byte) (*Card, error) {
	r := &rd{b: b}
	p, ok1 := r.u8()
	seed, ok2 := r.u64()
	if !ok1 || !ok2 {
		return nil, ErrCodecTruncate
	}
	if p < MinCardP || p > MaxCardP {
		return nil, ErrCodecValue
	}
	reg, ok := r.bytes(1 << p)
	if !ok || r.rem() != 0 {
		return nil, ErrCodecTruncate
	}
	maxRho := uint8(64-p) + 1
	c := NewCard(p, seed)
	for i, v := range reg {
		if v > maxRho {
			return nil, ErrCodecValue
		}
		c.reg[i] = v
	}
	return c, nil
}
