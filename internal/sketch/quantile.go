package sketch

import (
	"math"
	"slices"
)

// linCut is the upper edge of the quantile sketch's linear region:
// values in (0, linCut] land in exact unit-width buckets (so the
// integer-valued duration data the repo produces — episode days,
// session seconds quantized to whole renew intervals — is summarized
// with ZERO value error up to linCut), while values above it fall into
// log buckets with relative width alpha.
const linCut = 1024

// Quantile is a rank-error-bounded quantile sketch over non-negative
// values: a log-linear bucket histogram in the DDSketch family. Bucket
// counts are exact, so the cumulative walk that answers Query reaches
// exactly the bucket holding the value of the target rank; the only
// error is within-bucket: zero in the linear region, relative alpha in
// the log region. State is a pure function of the folded multiset —
// merging partials in any order or association yields identical bytes.
type Quantile struct {
	alpha float64
	gamma float64
	invLg float64
	zeros uint64
	n     uint64
	// counts maps bucket index to exact count. Linear buckets use
	// index i in [1, linCut] covering (i-1, i]; log buckets use
	// linCut+j covering (linCut·gamma^(j-1), linCut·gamma^j].
	counts map[int32]uint64
}

// NewQuantile builds a sketch with relative accuracy alpha in the log
// region. It panics if alpha is outside (0, 0.5): accuracy is a
// compile-time choice of the call site, not input data.
func NewQuantile(alpha float64) *Quantile {
	if !(alpha > 0 && alpha < 0.5) {
		panic("sketch: quantile alpha outside (0, 0.5)")
	}
	gamma := (1 + alpha) / (1 - alpha)
	return &Quantile{
		alpha:  alpha,
		gamma:  gamma,
		invLg:  1 / math.Log(gamma),
		counts: make(map[int32]uint64),
	}
}

// Alpha reports the relative accuracy of the log region.
func (q *Quantile) Alpha() float64 { return q.alpha }

// Kind reports KindQuantile.
func (q *Quantile) Kind() Kind { return KindQuantile }

// Count reports how many values have been folded in.
func (q *Quantile) Count() uint64 { return q.n }

// bucketOf maps a positive value to its bucket index.
func (q *Quantile) bucketOf(x float64) int32 {
	if x <= linCut {
		return int32(math.Ceil(x))
	}
	return linCut + int32(math.Ceil(math.Log(x/linCut)*q.invLg))
}

// Add folds one value into the sketch. Values at or below zero count
// toward the zero bucket (durations are never negative; a defensive
// clamp keeps the state well-formed on junk input).
func (q *Quantile) Add(x float64) { q.AddN(x, 1) }

// AddN folds a value with multiplicity w.
func (q *Quantile) AddN(x float64, w uint64) {
	if w == 0 {
		return
	}
	q.n += w
	if x <= 0 || math.IsNaN(x) {
		q.zeros += w
		return
	}
	q.counts[q.bucketOf(x)] += w
}

// value returns the representative value of a bucket: the bucket index
// itself in the linear region (exact for integer inputs), the
// alpha-relative midpoint in the log region.
func (q *Quantile) value(idx int32) float64 {
	if idx <= linCut {
		return float64(idx)
	}
	u := linCut * math.Pow(q.gamma, float64(idx-linCut))
	return 2 * u / (1 + q.gamma)
}

// sortedIdx returns the populated bucket indices in ascending order.
func (q *Quantile) sortedIdx() []int32 {
	idx := make([]int32, 0, len(q.counts))
	for i := range q.counts {
		idx = append(idx, i)
	}
	slices.Sort(idx)
	return idx
}

// Query returns the nearest-rank p-quantile estimate (p in [0, 1]),
// matching stats.ECDF.Quantile's convention: the value whose rank is
// ceil(p·n). Zero on an empty sketch. The returned estimate is the
// representative of the bucket containing the true p-quantile of the
// folded multiset: exact for integer values up to linCut, within
// relative alpha above it.
func (q *Quantile) Query(p float64) float64 {
	if q.n == 0 {
		return 0
	}
	r := uint64(math.Ceil(p * float64(q.n)))
	if r < 1 {
		r = 1
	}
	if r > q.n {
		r = q.n
	}
	if r <= q.zeros {
		return 0
	}
	cum := q.zeros
	for _, idx := range q.sortedIdx() {
		cum += q.counts[idx]
		if cum >= r {
			return q.value(idx)
		}
	}
	return 0
}

// CDF returns the exact fraction of folded values whose bucket is at
// or below x's bucket. At bucket upper bounds — every integer up to
// linCut — this is the exact empirical CDF.
func (q *Quantile) CDF(x float64) float64 {
	if q.n == 0 {
		return 0
	}
	cum := q.zeros
	if x > 0 && !math.IsNaN(x) {
		b := q.bucketOf(x)
		for _, idx := range q.sortedIdx() {
			if idx > b {
				break
			}
			cum += q.counts[idx]
		}
	}
	return float64(cum) / float64(q.n)
}

// Merge folds o into q. Both sketches must share alpha.
func (q *Quantile) Merge(o *Quantile) error {
	if math.Float64bits(q.alpha) != math.Float64bits(o.alpha) {
		return ErrMergeParam
	}
	q.zeros += o.zeros
	q.n += o.n
	for _, idx := range o.sortedIdx() {
		q.counts[idx] += o.counts[idx]
	}
	return nil
}

func (q *Quantile) mergeSketch(other Sketch) error {
	o, ok := other.(*Quantile)
	if !ok {
		return ErrMergeSchema
	}
	return q.Merge(o)
}

func (q *Quantile) cloneSketch() Sketch {
	out := NewQuantile(q.alpha)
	out.zeros = q.zeros
	out.n = q.n
	for _, idx := range q.sortedIdx() {
		out.counts[idx] = q.counts[idx]
	}
	return out
}
