package sketch

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"testing"
)

// refit recomputes the CRC trailer after a test mutated the body, so
// corruption tests exercise the structural validators, not just CRC.
func refit(b []byte) []byte {
	binary.LittleEndian.PutUint32(b[len(b)-4:],
		crc32.Checksum(b[:len(b)-4], castagnoli))
	return b
}

// sampleSet builds a populated three-kind set.
func sampleSet() *Set {
	s := buildSet()
	r := testRNG(99)
	for i := 0; i < 5000; i++ {
		foldRecord(s, &r)
	}
	return s
}

// TestCodecRoundtrip proves decode(encode(s)) reproduces both the
// bytes and the query behavior.
func TestCodecRoundtrip(t *testing.T) {
	s := sampleSet()
	enc := s.Encode()
	got, err := DecodeSet(enc)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !bytes.Equal(got.Encode(), enc) {
		t.Fatal("re-encode differs from original encoding")
	}
	if got.Quantile("duration").Query(0.5) != s.Quantile("duration").Query(0.5) {
		t.Fatal("median changed across roundtrip")
	}
	if got.TopK("churn24").N() != s.TopK("churn24").N() {
		t.Fatal("topk N changed across roundtrip")
	}
	if got.Card("pfx64").Estimate() != s.Card("pfx64").Estimate() {
		t.Fatal("cardinality changed across roundtrip")
	}
	// AppendBinary appends after existing bytes and CRCs only its own.
	pre := []byte("prefix")
	ext := s.AppendBinary(append([]byte(nil), pre...))
	if !bytes.Equal(ext[:len(pre)], pre) || !bytes.Equal(ext[len(pre):], enc) {
		t.Fatal("AppendBinary did not append the canonical encoding")
	}
	// An empty set also roundtrips.
	empty := NewSet().Encode()
	if es, err := DecodeSet(empty); err != nil || es.Len() != 0 {
		t.Fatalf("empty set roundtrip: %v", err)
	}
}

// TestCodecRejects walks the corruption table: every non-canonical or
// damaged encoding is rejected with the right sentinel.
func TestCodecRejects(t *testing.T) {
	enc := sampleSet().Encode()
	for _, tc := range []struct {
		name string
		mut  func() []byte
		want error
	}{
		{"empty", func() []byte { return nil }, ErrCodecTruncate},
		{"short", func() []byte { return enc[:10] }, ErrCodecTruncate},
		{"bad-magic", func() []byte {
			b := append([]byte(nil), enc...)
			b[0] ^= 0xFF
			return b
		}, ErrCodecMagic},
		{"bad-crc", func() []byte {
			b := append([]byte(nil), enc...)
			b[len(b)-1] ^= 0xFF
			return b
		}, ErrCodecCRC},
		{"flipped-payload", func() []byte {
			b := append([]byte(nil), enc...)
			b[20] ^= 0x01
			return b
		}, ErrCodecCRC},
		{"trailing-junk", func() []byte {
			b := append([]byte(nil), enc[:len(enc)-4]...)
			b = append(b, 0xAA)
			return refit(append(b, 0, 0, 0, 0))
		}, ErrCodecTruncate},
		{"count-overruns", func() []byte {
			b := append([]byte(nil), enc...)
			binary.LittleEndian.PutUint32(b[8:], 200)
			return refit(b)
		}, ErrCodecTruncate},
	} {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := DecodeSet(tc.mut()); err != tc.want {
				t.Fatalf("got %v, want %v", err, tc.want)
			}
		})
	}
}

// encodeItems frames raw pre-built item bytes as a set encoding.
func encodeItems(count uint32, items []byte) []byte {
	b := append([]byte(nil), setMagic...)
	b = le32(b, count)
	b = append(b, items...)
	return le32(b, crc32.Checksum(b, castagnoli))
}

// item frames one named sketch body.
func rawItem(name string, kind Kind, body []byte) []byte {
	var b []byte
	b = append(b, byte(len(name)))
	b = append(b, name...)
	b = append(b, byte(kind))
	b = le32(b, uint32(len(body)))
	return append(b, body...)
}

// TestCodecStructuralRejects crafts canonical-framing violations that
// pass the CRC: wrong ordering, bad parameters, broken invariants.
func TestCodecStructuralRejects(t *testing.T) {
	q := NewQuantile(0.01)
	q.Add(3)
	qBody := q.appendBody(nil)
	tk := NewTopK(4)
	tk.Add(7, 2)
	tkBody := tk.appendBody(nil)
	ca := NewCard(4, 1)
	ca.Add(9)
	caBody := ca.appendBody(nil)

	mut := func(src []byte, at int, v byte) []byte {
		b := append([]byte(nil), src...)
		b[at] = v
		return b
	}

	for _, tc := range []struct {
		name  string
		items []byte
		count uint32
		want  error
	}{
		{"empty-name", rawItem("", KindQuantile, qBody), 1, ErrCodecValue},
		{"bad-kind", rawItem("x", Kind(9), qBody), 1, ErrCodecValue},
		{"unsorted-names", append(rawItem("b", KindQuantile, qBody), rawItem("a", KindTopK, tkBody)...), 2, ErrCodecOrder},
		{"dup-names", append(rawItem("a", KindQuantile, qBody), rawItem("a", KindTopK, tkBody)...), 2, ErrCodecOrder},
		{"quantile-short-body", rawItem("q", KindQuantile, qBody[:10]), 1, ErrCodecTruncate},
		{"quantile-bad-alpha", rawItem("q", KindQuantile, mut(qBody, 6, 0xFF)), 1, ErrCodecValue},
		{"quantile-zero-count", rawItem("q", KindQuantile, mut(qBody, 24, 0)), 1, ErrCodecValue},
		{"quantile-bad-idx", rawItem("q", KindQuantile, mut(qBody, 20, 0)), 1, ErrCodecValue},
		{"quantile-len-mismatch", rawItem("q", KindQuantile, qBody[:len(qBody)-1]), 1, ErrCodecTruncate},
		{"topk-short-body", rawItem("t", KindTopK, tkBody[:3]), 1, ErrCodecTruncate},
		{"topk-zero-k", rawItem("t", KindTopK, mut(tkBody, 0, 0)), 1, ErrCodecValue},
		{"topk-huge-k", rawItem("t", KindTopK, mut(tkBody, 3, 0xFF)), 1, ErrCodecValue},
		{"topk-len-mismatch", rawItem("t", KindTopK, tkBody[:len(tkBody)-1]), 1, ErrCodecTruncate},
		{"topk-zero-count", rawItem("t", KindTopK, mut(tkBody, len(tkBody)-8, 0)), 1, ErrCodecValue},
		{"topk-invariant", rawItem("t", KindTopK, mut(tkBody, 4, 0)), 1, ErrCodecValue},
		{"card-short-body", rawItem("c", KindCard, caBody[:2]), 1, ErrCodecTruncate},
		{"card-bad-p", rawItem("c", KindCard, mut(caBody, 0, 3)), 1, ErrCodecValue},
		{"card-len-mismatch", rawItem("c", KindCard, caBody[:len(caBody)-1]), 1, ErrCodecTruncate},
		{"card-bad-register", rawItem("c", KindCard, mut(caBody, 9, 0xFF)), 1, ErrCodecValue},
	} {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := DecodeSet(encodeItems(tc.count, tc.items)); err != tc.want {
				t.Fatalf("got %v, want %v", err, tc.want)
			}
		})
	}
}

// FuzzSketchCodec throws arbitrary bytes at the decoder and checks the
// strict-canonical contract: anything accepted re-encodes to the exact
// input bytes, merges with its own clone, and answers queries without
// panicking.
func FuzzSketchCodec(f *testing.F) {
	// Seeds stay small (tiny register arrays, a handful of buckets):
	// large seeds make the engine's coverage-minimization passes crawl.
	f.Add(NewSet().Encode())
	small := NewSet()
	if err := small.Put("d", NewQuantile(0.05)); err != nil {
		f.Fatal(err)
	}
	small.Quantile("d").Add(2)
	f.Add(small.Encode())
	trio := NewSet()
	for _, err := range []error{
		trio.Put("c", NewCard(4, 7)),
		trio.Put("q", NewQuantile(0.02)),
		trio.Put("t", NewTopK(3)),
	} {
		if err != nil {
			f.Fatal(err)
		}
	}
	for i := uint64(0); i < 6; i++ {
		trio.Quantile("q").Add(float64(2000 * (i + 1)))
		trio.TopK("t").Add(i%4, i+1)
		trio.Card("c").Add(i)
	}
	f.Add(trio.Encode())
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := DecodeSet(data)
		if err != nil {
			return
		}
		enc := s.Encode()
		if !bytes.Equal(enc, data) {
			t.Fatalf("accepted non-canonical encoding: re-encode differs")
		}
		if err := s.Merge(s.Clone()); err != nil {
			t.Fatalf("self-merge of decoded set: %v", err)
		}
		for _, name := range s.Names() {
			switch s.KindOf(name) {
			case KindQuantile:
				s.Quantile(name).Query(0.5)
			case KindTopK:
				s.TopK(name).Top(5)
			case KindCard:
				s.Card(name).Estimate()
			}
		}
	})
}
