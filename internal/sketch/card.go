package sketch

import (
	"math"
	"math/bits"
)

// Card precision bounds: m = 2^p registers, one byte each.
const (
	// MinCardP is the smallest supported precision (16 registers).
	MinCardP = 4
	// MaxCardP is the largest supported precision (256 KiB of
	// registers) — far past the repo's accuracy needs.
	MaxCardP = 18
)

// Card is a seeded HyperLogLog cardinality estimator over uint64 keys
// (/64 prefixes, /24 keys), with the standard linear-counting
// correction in the small range. The register array is a max-monoid
// over the per-key hash observations: merging partials in any order or
// association yields identical registers, hence identical bytes and
// identical estimates. Hashing is seeded SplitMix64 — deterministic
// across runs, independent across seeds.
type Card struct {
	p    uint8
	seed uint64
	reg  []uint8
}

// NewCard builds an estimator with 2^p registers hashed under seed. It
// panics if p is outside [MinCardP, MaxCardP].
func NewCard(p uint8, seed uint64) *Card {
	if p < MinCardP || p > MaxCardP {
		panic("sketch: card precision outside [4, 18]")
	}
	return &Card{p: p, seed: seed, reg: make([]uint8, 1<<p)}
}

// P reports the precision (log2 of the register count).
func (c *Card) P() uint8 { return c.p }

// Seed reports the hash seed.
func (c *Card) Seed() uint64 { return c.seed }

// Kind reports KindCard.
func (c *Card) Kind() Kind { return KindCard }

// Add folds one key into the estimator.
func (c *Card) Add(key uint64) {
	h := mix64(mix64(key) ^ c.seed)
	idx := h >> (64 - uint(c.p))
	w := h << c.p
	var r uint8
	if w == 0 {
		r = uint8(64-c.p) + 1
	} else {
		r = uint8(bits.LeadingZeros64(w)) + 1
	}
	if r > c.reg[idx] {
		c.reg[idx] = r
	}
}

// alphaM is the HyperLogLog bias-correction constant for m registers.
func alphaM(m float64) float64 {
	switch m {
	case 16:
		return 0.673
	case 32:
		return 0.697
	case 64:
		return 0.709
	}
	return 0.7213 / (1 + 1.079/m)
}

// Estimate returns the current cardinality estimate: raw HLL with
// linear counting below 2.5m when empty registers remain. The walk
// over registers is index-ordered, so the estimate is a deterministic
// function of state.
func (c *Card) Estimate() float64 {
	m := float64(uint64(1) << c.p)
	var sum float64
	zeros := 0
	for _, r := range c.reg {
		sum += math.Ldexp(1, -int(r))
		if r == 0 {
			zeros++
		}
	}
	raw := alphaM(m) * m * m / sum
	if raw <= 2.5*m && zeros > 0 {
		return m * math.Log(m/float64(zeros))
	}
	return raw
}

// RSE reports the theoretical relative standard error, 1.04/sqrt(m).
func (c *Card) RSE() float64 {
	return 1.04 / math.Sqrt(float64(uint64(1)<<c.p))
}

// Merge folds o into c by register-wise max. Both estimators must
// share precision and seed.
func (c *Card) Merge(o *Card) error {
	if c.p != o.p || c.seed != o.seed {
		return ErrMergeParam
	}
	for i, r := range o.reg {
		if r > c.reg[i] {
			c.reg[i] = r
		}
	}
	return nil
}

func (c *Card) mergeSketch(other Sketch) error {
	o, ok := other.(*Card)
	if !ok {
		return ErrMergeSchema
	}
	return c.Merge(o)
}

func (c *Card) cloneSketch() Sketch {
	out := NewCard(c.p, c.seed)
	copy(out.reg, c.reg)
	return out
}
