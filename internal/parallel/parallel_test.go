package parallel

import (
	"errors"
	"fmt"
	"sync"
	"testing"
)

func TestWorkers(t *testing.T) {
	if Workers(0) < 1 || Workers(-3) < 1 {
		t.Error("non-positive knob must yield at least one worker")
	}
	if Workers(5) != 5 {
		t.Errorf("Workers(5) = %d", Workers(5))
	}
}

func TestMapOrdered(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 64} {
		got := Map(100, workers, func(i int) int { return i * i })
		if len(got) != 100 {
			t.Fatalf("workers=%d: %d results", workers, len(got))
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: got[%d] = %d", workers, i, v)
			}
		}
	}
}

func TestMapErrEmptyAndSingle(t *testing.T) {
	if out, err := MapErr(0, 4, func(int) (int, error) { return 0, nil }); err != nil || out != nil {
		t.Errorf("n=0: out=%v err=%v", out, err)
	}
	out, err := MapErr(1, 8, func(i int) (string, error) { return "only", nil })
	if err != nil || len(out) != 1 || out[0] != "only" {
		t.Errorf("n=1: out=%v err=%v", out, err)
	}
}

// TestMapErrLowestIndexError: the reported error must be the lowest
// failing index no matter how the schedule interleaves.
func TestMapErrLowestIndexError(t *testing.T) {
	sentinel := errors.New("boom")
	for _, workers := range []int{1, 3, 16} {
		for trial := 0; trial < 20; trial++ {
			_, err := MapErr(50, workers, func(i int) (int, error) {
				if i == 13 || i == 31 {
					return 0, fmt.Errorf("index %d: %w", i, sentinel)
				}
				return i, nil
			})
			if err == nil || !errors.Is(err, sentinel) {
				t.Fatalf("workers=%d: err = %v", workers, err)
			}
			if got := err.Error(); got != "index 13: boom" {
				t.Fatalf("workers=%d trial %d: non-deterministic error %q", workers, trial, got)
			}
		}
	}
}

// TestMapErrRunsEveryIndexOnSuccess: each index is computed exactly once.
func TestMapErrRunsEveryIndexOnSuccess(t *testing.T) {
	var mu sync.Mutex
	counts := make([]int, 200)
	_, err := MapErr(200, 8, func(i int) (struct{}, error) {
		mu.Lock()
		counts[i]++
		mu.Unlock()
		return struct{}{}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range counts {
		if c != 1 {
			t.Fatalf("index %d ran %d times", i, c)
		}
	}
}

// TestMapErrActuallyConcurrent: with enough workers, at least two calls
// overlap (a rendezvous of two goroutines deadlocks under workers=1, so
// use a generous pool and a barrier sized to it).
func TestMapErrActuallyConcurrent(t *testing.T) {
	const workers = 4
	barrier := make(chan struct{}, workers)
	ready := make(chan struct{})
	var once sync.Once
	_, err := MapErr(workers, workers, func(i int) (int, error) {
		barrier <- struct{}{}
		if len(barrier) >= 2 {
			once.Do(func() { close(ready) })
		}
		<-ready
		return i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestMapErrOrderedContiguousPrefix: commits must arrive in strictly
// ascending order with no gaps, at every worker count.
func TestMapErrOrderedContiguousPrefix(t *testing.T) {
	for _, workers := range []int{1, 2, 5, 16} {
		var committed []int
		out, err := MapErrOrdered(60, workers,
			func(i int) (int, error) { return i * 3, nil },
			func(i int, v int) error {
				if v != i*3 {
					t.Fatalf("commit(%d) got value %d", i, v)
				}
				committed = append(committed, i) // serialized by contract
				return nil
			})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(out) != 60 || len(committed) != 60 {
			t.Fatalf("workers=%d: %d results, %d commits", workers, len(out), len(committed))
		}
		for i, c := range committed {
			if c != i {
				t.Fatalf("workers=%d: commit order %v", workers, committed)
			}
		}
	}
}

// TestMapErrOrderedStopsAtFailure: a failed unit ends the committed
// prefix; nothing at or after the lowest failure is ever committed.
func TestMapErrOrderedStopsAtFailure(t *testing.T) {
	sentinel := errors.New("unit failed")
	for _, workers := range []int{1, 4, 16} {
		for trial := 0; trial < 10; trial++ {
			var mu sync.Mutex
			var committed []int
			_, err := MapErrOrdered(40, workers,
				func(i int) (int, error) {
					if i == 17 {
						return 0, sentinel
					}
					return i, nil
				},
				func(i int, v int) error {
					mu.Lock()
					committed = append(committed, i)
					mu.Unlock()
					return nil
				})
			if !errors.Is(err, sentinel) {
				t.Fatalf("workers=%d: err = %v", workers, err)
			}
			for _, c := range committed {
				if c >= 17 {
					t.Fatalf("workers=%d: committed index %d past the failure", workers, c)
				}
			}
			mu.Lock()
			for j, c := range committed {
				if c != j {
					t.Fatalf("workers=%d: commit order %v", workers, committed)
				}
			}
			mu.Unlock()
		}
	}
}

// TestMapErrOrderedCommitError: a commit failure is reported like a work
// failure at that index and halts further commits.
func TestMapErrOrderedCommitError(t *testing.T) {
	sentinel := errors.New("journal full")
	for _, workers := range []int{1, 8} {
		var committed []int
		_, err := MapErrOrdered(20, workers,
			func(i int) (int, error) { return i, nil },
			func(i int, v int) error {
				if i == 5 {
					return sentinel
				}
				committed = append(committed, i)
				return nil
			})
		if !errors.Is(err, sentinel) {
			t.Fatalf("workers=%d: err = %v", workers, err)
		}
		if len(committed) != 5 {
			t.Fatalf("workers=%d: committed %v", workers, committed)
		}
	}
}

func TestMapErrOrderedNilCommitAndEmpty(t *testing.T) {
	out, err := MapErrOrdered(3, 2, func(i int) (int, error) { return i, nil }, nil)
	if err != nil || len(out) != 3 {
		t.Fatalf("nil commit: out=%v err=%v", out, err)
	}
	out, err = MapErrOrdered(0, 2, func(i int) (int, error) { return i, nil },
		func(int, int) error { t.Fatal("commit on empty input"); return nil })
	if err != nil || out != nil {
		t.Fatalf("n=0: out=%v err=%v", out, err)
	}
}
