// Package parallel is the deterministic fan-out primitive the pipeline
// builders share: an index-ordered map over a bounded worker pool.
//
// The repository's reproducibility contract says the same configuration
// must regenerate every table byte-for-byte. That rules out any
// concurrency whose observable outcome depends on goroutine scheduling.
// The helpers here keep the contract by construction:
//
//   - work is claimed by index, results land in a slice slot owned by
//     that index, and the caller merges in index order;
//   - the reported error is always the lowest-index failure, which is
//     scheduling-independent (indices are claimed in ascending order, so
//     every index below a claimed one runs to completion);
//   - the worker count only bounds concurrency — it never changes what is
//     computed, so workers=1 and workers=N produce identical results.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers normalizes a worker-count knob: values <= 0 select one worker
// per available CPU.
func Workers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// MapErr computes fn(0) … fn(n-1) on up to workers goroutines (per
// Workers) and returns the results in index order. Every fn call receives
// a distinct index, so fn may write only to state it derives from the
// index. On failure MapErr returns the error of the lowest failing index
// and no results; indices after the first observed failure may be
// skipped, but everything before the lowest failing index always runs.
func MapErr[T any](n, workers int, fn func(i int) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, nil
	}
	workers = min(Workers(workers), n)
	out := make([]T, n)
	errs := make([]error, n)
	if workers == 1 {
		for i := range out {
			var err error
			if out[i], err = fn(i); err != nil {
				return nil, err
			}
		}
		return out, nil
	}
	var (
		next   atomic.Int64
		failed atomic.Bool
		wg     sync.WaitGroup
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || failed.Load() {
					return
				}
				out[i], errs[i] = fn(i)
				if errs[i] != nil {
					failed.Store(true)
				}
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Map is MapErr for infallible stages.
func Map[T any](n, workers int, fn func(i int) T) []T {
	out, _ := MapErr(n, workers, func(i int) (T, error) { return fn(i), nil })
	return out
}

// MapErrOrdered is MapErr with a serialized completion callback: commit is
// invoked exactly once per successful index, in strictly ascending index
// order, as soon as every lower index has been computed and committed. The
// committed indices therefore always form a contiguous prefix 0..k-1 —
// the property crash-safe journals need so that whatever was committed
// before a crash is a valid resume point regardless of worker count.
//
// A commit error stops further commits and is reported like a work error
// at that index; computed-but-uncommitted results are discarded with it.
// commit runs on whichever worker goroutine completed the gating index,
// never concurrently with itself.
func MapErrOrdered[T any](n, workers int, fn func(i int) (T, error), commit func(i int, v T) error) ([]T, error) {
	if commit == nil {
		return MapErr(n, workers, fn)
	}
	if n <= 0 {
		return nil, nil
	}
	workers = min(Workers(workers), n)
	out := make([]T, n)
	errs := make([]error, n)
	if workers == 1 {
		for i := range out {
			var err error
			if out[i], err = fn(i); err != nil {
				return nil, err
			}
			if err := commit(i, out[i]); err != nil {
				return nil, err
			}
		}
		return out, nil
	}
	var (
		next       atomic.Int64
		failed     atomic.Bool
		wg         sync.WaitGroup
		mu         sync.Mutex
		ready      = make([]bool, n)
		nextCommit int
	)
	// drain advances the contiguous committed prefix; called after result i
	// lands. Serialized by mu, so commit never runs concurrently.
	drain := func(i int) {
		mu.Lock()
		defer mu.Unlock()
		ready[i] = true
		for nextCommit < n && ready[nextCommit] {
			if errs[nextCommit] != nil {
				return // prefix ends at the first failed unit
			}
			if err := commit(nextCommit, out[nextCommit]); err != nil {
				errs[nextCommit] = err
				failed.Store(true)
				return
			}
			nextCommit++
		}
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || failed.Load() {
					return
				}
				out[i], errs[i] = fn(i)
				if errs[i] != nil {
					failed.Store(true)
				}
				drain(i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}
