package dhcp6

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net/netip"
)

// Relay agent message types (RFC 8415 §7.3).
const (
	RelayForw MessageType = 12
	RelayRepl MessageType = 13
)

// Relay option codes (RFC 8415 §21.10, RFC 6221 §5.3).
const (
	OptRelayMsg    uint16 = 9
	OptInterfaceID uint16 = 18
)

// HopCountLimit is RFC 8415 §7.6's HOP_COUNT_LIMIT: the maximum hop
// count in a Relay-forward message.
const HopCountLimit = 8

// ErrHopLimit is returned when a relay refuses to encapsulate a message
// whose hop count has reached HOP_COUNT_LIMIT.
var ErrHopLimit = errors.New("dhcp6: relay hop count limit exceeded")

const relayHeaderLen = 34 // type + hop-count + link-address + peer-address

// RelayMessage is a Relay-forward or Relay-reply (RFC 8415 §9): a
// different wire layout from client/server messages, carrying the
// encapsulated message as the Relay Message option. Aggregation
// topologies nest these — each LDRA or relay on the path adds a layer.
type RelayMessage struct {
	Type     MessageType // RelayForw or RelayRepl
	HopCount byte
	// LinkAddr identifies the link the client sits on (an LDRA uses ::
	// and relies on Interface-ID instead, RFC 6221 §5.3.1).
	LinkAddr netip.Addr
	// PeerAddr is the address the relay received the inner message from.
	PeerAddr netip.Addr
	// InterfaceID is the opaque RFC 6221 access-loop identifier, nil
	// when absent.
	InterfaceID []byte
	// Inner is the encapsulated message in wire format: a client/server
	// Message at the innermost layer, another RelayMessage otherwise.
	Inner []byte
}

// IsRelay reports whether wire bytes carry a relay agent message.
func IsRelay(b []byte) bool {
	return len(b) > 0 && (MessageType(b[0]) == RelayForw || MessageType(b[0]) == RelayRepl)
}

func put16(b []byte, a netip.Addr) {
	if a.IsValid() {
		a16 := a.As16()
		copy(b, a16[:])
	}
}

// Marshal encodes the relay message to wire format.
func (m *RelayMessage) Marshal() []byte {
	b := make([]byte, relayHeaderLen, relayHeaderLen+8+len(m.Inner)+len(m.InterfaceID))
	b[0] = byte(m.Type)
	b[1] = m.HopCount
	put16(b[2:], m.LinkAddr)
	put16(b[18:], m.PeerAddr)
	if len(m.InterfaceID) > 0 {
		b = appendOption(b, OptInterfaceID, m.InterfaceID)
	}
	b = appendOption(b, OptRelayMsg, m.Inner)
	return b
}

// UnmarshalRelay decodes a wire-format relay agent message.
func UnmarshalRelay(b []byte) (*RelayMessage, error) {
	if len(b) < relayHeaderLen {
		return nil, fmt.Errorf("%w: relay message %d bytes", ErrShortMessage, len(b))
	}
	mt := MessageType(b[0])
	if mt != RelayForw && mt != RelayRepl {
		return nil, fmt.Errorf("%w: type %v is not a relay message", ErrBadOption, mt)
	}
	m := &RelayMessage{
		Type:     mt,
		HopCount: b[1],
		LinkAddr: netip.AddrFrom16([16]byte(b[2:18])),
		PeerAddr: netip.AddrFrom16([16]byte(b[18:34])),
	}
	rest := b[relayHeaderLen:]
	for len(rest) > 0 {
		if len(rest) < 4 {
			return nil, fmt.Errorf("%w: truncated relay option header", ErrBadOption)
		}
		code := binary.BigEndian.Uint16(rest)
		l := int(binary.BigEndian.Uint16(rest[2:]))
		if 4+l > len(rest) {
			return nil, fmt.Errorf("%w: relay option %d overruns message", ErrBadOption, code)
		}
		body := rest[4 : 4+l]
		switch code {
		case OptRelayMsg:
			m.Inner = append([]byte(nil), body...)
		case OptInterfaceID:
			m.InterfaceID = append([]byte(nil), body...)
		}
		rest = rest[4+l:]
	}
	if m.Inner == nil {
		return nil, fmt.Errorf("%w: relay message without Relay Message option", ErrBadOption)
	}
	return m, nil
}

// LDRA is a Lightweight DHCPv6 Relay Agent (RFC 6221): an access node —
// a DSLAM or OLT — that encapsulates the subscriber's messages with an
// Interface-ID identifying the access loop, without holding any
// addressing itself (link-address stays ::, §5.3.1). Aggregation
// topologies chain one LDRA per aggregation level.
type LDRA struct {
	// InterfaceID is the access-loop identifier stamped into
	// Relay-forward messages this LDRA builds.
	InterfaceID []byte
}

// Encapsulate wraps wire bytes — a client message or a previous relay's
// Relay-forward — in a new Relay-forward layer. peer is the address the
// message arrived from. Messages already at HOP_COUNT_LIMIT are refused.
func (l *LDRA) Encapsulate(inner []byte, peer netip.Addr) (*RelayMessage, error) {
	var hop byte
	if IsRelay(inner) {
		if MessageType(inner[0]) != RelayForw {
			return nil, fmt.Errorf("%w: encapsulating %v", ErrBadOption, MessageType(inner[0]))
		}
		if len(inner) < 2 {
			return nil, ErrShortMessage
		}
		if inner[1] >= HopCountLimit-1 {
			return nil, fmt.Errorf("%w: %d hops", ErrHopLimit, inner[1])
		}
		hop = inner[1] + 1
	}
	return &RelayMessage{
		Type:        RelayForw,
		HopCount:    hop,
		LinkAddr:    netip.IPv6Unspecified(),
		PeerAddr:    peer,
		InterfaceID: append([]byte(nil), l.InterfaceID...),
		Inner:       append([]byte(nil), inner...),
	}, nil
}

// Decapsulate peels one Relay-reply layer, verifying it mirrors this
// LDRA's Interface-ID (RFC 6221 §5.3.2: the reply is routed back down
// the access loop the Interface-ID names).
func (l *LDRA) Decapsulate(rm *RelayMessage) ([]byte, error) {
	if rm.Type != RelayRepl {
		return nil, fmt.Errorf("%w: decapsulating %v", ErrBadOption, rm.Type)
	}
	if string(rm.InterfaceID) != string(l.InterfaceID) {
		return nil, fmt.Errorf("%w: interface-id %q does not match LDRA %q",
			ErrBadOption, rm.InterfaceID, l.InterfaceID)
	}
	return rm.Inner, nil
}

// LDRAChain is an ordered aggregation path from the subscriber to the
// server: Chain[0] is the access node on the subscriber's loop.
type LDRAChain []*LDRA

// NewLDRAChain builds an n-level chain with deterministic interface
// identifiers derived from base (the subscriber's access-loop name).
func NewLDRAChain(base string, n int) LDRAChain {
	chain := make(LDRAChain, 0, n)
	for i := 0; i < n; i++ {
		chain = append(chain, &LDRA{InterfaceID: []byte(fmt.Sprintf("%s/%d", base, i))})
	}
	return chain
}

// Wrap encapsulates a client message through every aggregation level,
// innermost LDRA first.
func (c LDRAChain) Wrap(req *Message, peer netip.Addr) (*RelayMessage, error) {
	b := req.Marshal()
	var rm *RelayMessage
	for _, l := range c {
		var err error
		if rm, err = l.Encapsulate(b, peer); err != nil {
			return nil, err
		}
		b = rm.Marshal()
		peer = netip.IPv6Unspecified() // upper levels see the relay, not the client
	}
	return rm, nil
}

// Unwrap peels every Relay-reply layer, outermost LDRA last, returning
// the server's message to the client.
func (c LDRAChain) Unwrap(rm *RelayMessage) (*Message, error) {
	for i := len(c) - 1; i >= 0; i-- {
		inner, err := c[i].Decapsulate(rm)
		if err != nil {
			return nil, err
		}
		if i == 0 {
			return Unmarshal(inner)
		}
		if rm, err = UnmarshalRelay(inner); err != nil {
			return nil, err
		}
	}
	return nil, fmt.Errorf("%w: empty LDRA chain", ErrBadOption)
}

// HandleRelay processes a Relay-forward carrying a possibly nested
// client message and returns the mirrored Relay-reply: hop count,
// addresses, and Interface-ID are copied back at every layer so each
// relay can route the reply down its access loop (RFC 8415 §19.2).
func (s *Server) HandleRelay(rm *RelayMessage) (*RelayMessage, error) {
	if rm.Type != RelayForw {
		return nil, fmt.Errorf("dhcp6: HandleRelay on %v", rm.Type)
	}
	var payload []byte
	if IsRelay(rm.Inner) {
		nested, err := UnmarshalRelay(rm.Inner)
		if err != nil {
			return nil, err
		}
		nrep, err := s.HandleRelay(nested)
		if err != nil {
			return nil, err
		}
		payload = nrep.Marshal()
	} else {
		req, err := Unmarshal(rm.Inner)
		if err != nil {
			return nil, err
		}
		rep, err := s.Handle(req)
		if err != nil {
			return nil, err
		}
		payload = rep.Marshal()
	}
	return &RelayMessage{
		Type:        RelayRepl,
		HopCount:    rm.HopCount,
		LinkAddr:    rm.LinkAddr,
		PeerAddr:    rm.PeerAddr,
		InterfaceID: append([]byte(nil), rm.InterfaceID...),
		Inner:       payload,
	}, nil
}
