package dhcp6

import (
	"container/heap"
	"errors"
	"fmt"
	"net/netip"

	"dynamips/internal/netutil"
)

// Clock supplies time in seconds; simulations drive a virtual clock.
type Clock interface {
	Now() int64
}

// ClockFunc adapts a function to the Clock interface.
type ClockFunc func() int64

// Now implements Clock.
func (f ClockFunc) Now() int64 { return f() }

// ErrPoolExhausted is returned when no delegation is available.
var ErrPoolExhausted = errors.New("dhcp6: delegation pool exhausted")

// ServerConfig configures a prefix-delegation server.
type ServerConfig struct {
	// Pools are the blocks delegations are carved from (e.g. a per-region
	// /40 inside the ISP's aggregate, §5.2).
	Pools []netip.Prefix
	// DelegatedLen is the delegated-prefix length handed to CPEs
	// (commonly /56 per RIPE-690; Netcologne uses /48, Kabel DE CPEs
	// request /62 — §5.3).
	DelegatedLen int
	// ValidSeconds is the delegation's valid lifetime.
	ValidSeconds uint32
	// Sticky mirrors dhcp4.ServerConfig.Sticky: remember expired
	// bindings and re-delegate the same prefix to a returning CPE.
	Sticky bool
	// Stride spreads delegations across the pool: the n-th fresh
	// delegation uses slot (n*Stride) mod poolsize. Real delegation
	// servers scatter assignments over the pool; sequential allocation
	// would concentrate every active delegation in the lowest /48.
	// Even strides are rounded up to stay coprime with power-of-two
	// pool sizes. Zero means 1 (sequential).
	Stride uint64
	// ServerDUID identifies the server.
	ServerDUID DUID
}

// Binding is one active delegation.
type Binding struct {
	Prefix netip.Prefix
	Client string // DUID as map key
	Expiry int64
}

// ServerStats are a server's lifetime totals. Plain sums: they
// aggregate commutatively across delegation servers into the per-AS
// counters the observability layer reports.
type ServerStats struct {
	// Solicits/Requests/Renews count handled messages by type (Rebind
	// counts as Renew); Reassigns counts programmatic forced
	// renumberings of one subscriber.
	Solicits, Requests, Renews, Reassigns int64
	// NoBindings counts Renew/Rebind/Request replies with
	// StatusNoBinding — the CPE must re-solicit, drawing a fresh prefix.
	NoBindings int64
	// LoseStates and Renumbers count whole-server state losses.
	LoseStates, Renumbers int64
}

// Add accumulates o into s.
func (s *ServerStats) Add(o ServerStats) {
	s.Solicits += o.Solicits
	s.Requests += o.Requests
	s.Renews += o.Renews
	s.Reassigns += o.Reassigns
	s.NoBindings += o.NoBindings
	s.LoseStates += o.LoseStates
	s.Renumbers += o.Renumbers
}

// Server delegates prefixes from its pools, implementing the
// Solicit/Advertise/Request/Reply and Renew/Reply flows over IA_PD.
// It is not safe for concurrent use.
type Server struct {
	cfg      ServerConfig
	stats    ServerStats
	clock    Clock
	byClient map[string]*Binding
	byPrefix map[netip.Prefix]*Binding
	offers   map[string]netip.Prefix
	expiry   bindingHeap
	cursor   int
	offset   uint64
	freed    []netip.Prefix
	total    uint64
}

// NewServer builds a Server. It panics on configuration bugs: no pools,
// a delegated length not inside the pools, or a zero lifetime.
func NewServer(cfg ServerConfig, clock Clock) *Server {
	if len(cfg.Pools) == 0 {
		panic("dhcp6: no pools configured")
	}
	if cfg.ValidSeconds == 0 {
		panic("dhcp6: zero valid lifetime")
	}
	var total uint64
	for _, p := range cfg.Pools {
		if !p.Addr().Is6() || p.Addr().Unmap().Is4() {
			panic(fmt.Sprintf("dhcp6: non-IPv6 pool %v", p))
		}
		if cfg.DelegatedLen < p.Bits() || cfg.DelegatedLen > 64 {
			panic(fmt.Sprintf("dhcp6: delegated length /%d incompatible with pool %v", cfg.DelegatedLen, p))
		}
		total += 1 << uint(cfg.DelegatedLen-p.Bits())
	}
	if len(cfg.ServerDUID) == 0 {
		cfg.ServerDUID = DUIDLL([6]byte{0x02, 0, 0, 0, 0, 1})
	}
	if cfg.Stride == 0 {
		cfg.Stride = 1
	}
	if cfg.Stride%2 == 0 {
		cfg.Stride++
	}
	return &Server{
		cfg:      cfg,
		clock:    clock,
		byClient: make(map[string]*Binding),
		byPrefix: make(map[netip.Prefix]*Binding),
		offers:   make(map[string]netip.Prefix),
		total:    total,
	}
}

// Capacity returns the number of delegations the pools can hold.
func (s *Server) Capacity() uint64 { return s.total }

// Stats returns the server's accumulated totals.
func (s *Server) Stats() ServerStats { return s.stats }

// ActiveBindings returns the number of unexpired delegations.
func (s *Server) ActiveBindings() int {
	now := s.clock.Now()
	n := 0
	for _, b := range s.byClient {
		if b.Expiry > now {
			n++
		}
	}
	return n
}

// LoseState drops all bindings (ISP-side outage, §2.2). Renewing CPEs get
// NoBinding and must re-solicit, receiving fresh delegations.
func (s *Server) LoseState() {
	s.stats.LoseStates++
	s.byClient = make(map[string]*Binding)
	s.byPrefix = make(map[netip.Prefix]*Binding)
	s.offers = make(map[string]netip.Prefix)
	s.expiry = nil
}

// Renumber frees every binding and advances the allocation cursor past the
// highest delegation handed out so far, modeling administrative
// renumbering (§2.2): all subscribers move to new prefixes.
func (s *Server) Renumber() {
	s.stats.Renumbers++
	s.LoseState()
	s.freed = nil
}

func (s *Server) reclaim(now int64) {
	for len(s.expiry) > 0 && s.expiry[0].Expiry <= now {
		b := heap.Pop(&s.expiry).(*Binding)
		cur, ok := s.byPrefix[b.Prefix]
		if !ok || cur != b || cur.Expiry > now {
			continue
		}
		delete(s.byPrefix, b.Prefix)
		if !s.cfg.Sticky {
			delete(s.byClient, b.Client)
		}
		s.freed = append(s.freed, b.Prefix)
	}
}

func (s *Server) nextFree() (netip.Prefix, error) {
	for len(s.freed) > 0 {
		p := s.freed[len(s.freed)-1]
		s.freed = s.freed[:len(s.freed)-1]
		if _, bound := s.byPrefix[p]; !bound {
			return p, nil
		}
	}
	for s.cursor < len(s.cfg.Pools) {
		pool := s.cfg.Pools[s.cursor]
		size := uint64(1) << uint(s.cfg.DelegatedLen-pool.Bits())
		for s.offset < size {
			p, err := netutil.SubPrefix(pool, s.cfg.DelegatedLen, (s.offset*s.cfg.Stride)%size)
			s.offset++
			if err != nil {
				return netip.Prefix{}, err
			}
			if _, bound := s.byPrefix[p]; !bound {
				return p, nil
			}
		}
		s.cursor++
		s.offset = 0
	}
	return netip.Prefix{}, ErrPoolExhausted
}

func (s *Server) candidate(client string, now int64) (netip.Prefix, error) {
	if b, ok := s.byClient[client]; ok {
		if b.Expiry > now {
			return b.Prefix, nil
		}
		if s.cfg.Sticky {
			if cur, bound := s.byPrefix[b.Prefix]; !bound || cur == b {
				return b.Prefix, nil
			}
		}
	}
	return s.nextFree()
}

func (s *Server) bind(client string, p netip.Prefix, now int64) *Binding {
	b := &Binding{Prefix: p, Client: client, Expiry: now + int64(s.cfg.ValidSeconds)}
	s.byClient[client] = b
	s.byPrefix[p] = b
	heap.Push(&s.expiry, b)
	return b
}

func (s *Server) reply(req *Message, mt MessageType, ia IAPD) *Message {
	rep := NewMessage(mt, req.TxnID, req.ClientID)
	rep.ServerID = s.cfg.ServerDUID
	rep.IAPDs = []IAPD{ia}
	return rep
}

func (s *Server) iaSuccess(p netip.Prefix, iaid uint32) IAPD {
	return IAPD{
		IAID: iaid,
		T1:   s.cfg.ValidSeconds / 2,
		T2:   s.cfg.ValidSeconds * 4 / 5,
		Prefixes: []IAPrefix{{
			Preferred: s.cfg.ValidSeconds,
			Valid:     s.cfg.ValidSeconds,
			Prefix:    p,
		}},
	}
}

func (s *Server) iaStatus(iaid uint32, status uint16) IAPD {
	return IAPD{IAID: iaid, Status: status, StatusOK: true}
}

// Handle runs one request through the delegation state machine.
// Release elicits a plain success Reply.
func (s *Server) Handle(req *Message) (*Message, error) {
	now := s.clock.Now()
	s.reclaim(now)
	if len(req.ClientID) == 0 {
		return nil, errors.New("dhcp6: request missing client ID")
	}
	client := req.ClientID.String()
	var iaid uint32
	if len(req.IAPDs) > 0 {
		iaid = req.IAPDs[0].IAID
	}
	switch req.Type {
	case Solicit:
		s.stats.Solicits++
		p, err := s.candidate(client, now)
		if err != nil {
			return s.reply(req, Advertise, s.iaStatus(iaid, StatusNoPrefixAvail)), nil
		}
		if req.RapidCommit {
			// Two-message exchange: commit immediately (§18.2.1).
			b := s.bind(client, p, now)
			rep := s.reply(req, Reply, s.iaSuccess(b.Prefix, iaid))
			rep.RapidCommit = true
			return rep, nil
		}
		s.offers[client] = p
		return s.reply(req, Advertise, s.iaSuccess(p, iaid)), nil

	case Confirm:
		// The CPE rebooted and asks whether its delegation is still
		// appropriate for the link (RFC 8415 §18.3.3).
		var have netip.Prefix
		if len(req.IAPDs) > 0 && len(req.IAPDs[0].Prefixes) > 0 {
			have = req.IAPDs[0].Prefixes[0].Prefix
		}
		if b, ok := s.byClient[client]; ok && have.IsValid() && b.Prefix == have && b.Expiry > now {
			return s.reply(req, Reply, s.iaStatus(iaid, StatusSuccess)), nil
		}
		return s.reply(req, Reply, s.iaStatus(iaid, StatusNotOnLink)), nil

	case Request:
		s.stats.Requests++
		var want netip.Prefix
		if len(req.IAPDs) > 0 && len(req.IAPDs[0].Prefixes) > 0 {
			want = req.IAPDs[0].Prefixes[0].Prefix
		}
		offered := want.IsValid() && s.offers[client] == want
		if b, ok := s.byClient[client]; ok && want.IsValid() && b.Prefix == want {
			offered = true
		}
		if !offered {
			s.stats.NoBindings++
			return s.reply(req, Reply, s.iaStatus(iaid, StatusNoBinding)), nil
		}
		if cur, bound := s.byPrefix[want]; bound && cur.Client != client && cur.Expiry > now {
			return s.reply(req, Reply, s.iaStatus(iaid, StatusNoPrefixAvail)), nil
		}
		delete(s.offers, client)
		b := s.bind(client, want, now)
		return s.reply(req, Reply, s.iaSuccess(b.Prefix, iaid)), nil

	case Renew, Rebind:
		s.stats.Renews++
		b, ok := s.byClient[client]
		if !ok || b.Expiry <= now {
			s.stats.NoBindings++
			return s.reply(req, Reply, s.iaStatus(iaid, StatusNoBinding)), nil
		}
		b.Expiry = now + int64(s.cfg.ValidSeconds)
		heap.Push(&s.expiry, b)
		return s.reply(req, Reply, s.iaSuccess(b.Prefix, iaid)), nil

	case Release:
		if b, ok := s.byClient[client]; ok {
			delete(s.byPrefix, b.Prefix)
			if !s.cfg.Sticky {
				delete(s.byClient, client)
			} else {
				b.Expiry = now
			}
			s.freed = append(s.freed, b.Prefix)
		}
		return s.reply(req, Reply, s.iaStatus(iaid, StatusSuccess)), nil

	default:
		return nil, fmt.Errorf("dhcp6: unhandled message type %v", req.Type)
	}
}

// Acquire runs the Solicit/Advertise/Request/Reply exchange and returns the
// delegated prefix. It is the ISP simulator's programmatic entry point.
func (s *Server) Acquire(client DUID, txn uint32) (Binding, error) {
	adv, err := s.Handle(NewMessage(Solicit, txn, client))
	if err != nil {
		return Binding{}, err
	}
	if len(adv.IAPDs) == 0 || len(adv.IAPDs[0].Prefixes) == 0 {
		return Binding{}, ErrPoolExhausted
	}
	req := NewMessage(Request, txn, client)
	req.ServerID = adv.ServerID
	req.IAPDs = []IAPD{{IAID: adv.IAPDs[0].IAID, Prefixes: adv.IAPDs[0].Prefixes}}
	rep, err := s.Handle(req)
	if err != nil {
		return Binding{}, err
	}
	if len(rep.IAPDs) == 0 || len(rep.IAPDs[0].Prefixes) == 0 {
		return Binding{}, fmt.Errorf("dhcp6: acquire rejected (status %d)", rep.IAPDs[0].Status)
	}
	p := rep.IAPDs[0].Prefixes[0]
	return Binding{Prefix: p.Prefix, Client: client.String(), Expiry: s.clock.Now() + int64(p.Valid)}, nil
}

// Reassign forces a fresh delegation for the client, modeling an ISP-side
// renumbering of a single subscriber (periodic renumbering, §2.2). The new
// prefix is allocated while the old binding is still held, so the client
// can never be handed its previous prefix straight back; the old prefix is
// then freed for other subscribers.
func (s *Server) Reassign(client DUID, txn uint32) (Binding, error) {
	s.stats.Reassigns++
	now := s.clock.Now()
	s.reclaim(now)
	p, err := s.nextFree()
	if err != nil {
		return Binding{}, err
	}
	cl := client.String()
	if old, ok := s.byClient[cl]; ok {
		delete(s.byPrefix, old.Prefix)
		s.freed = append(s.freed, old.Prefix)
	}
	b := s.bind(cl, p, now)
	return *b, nil
}

// ReleaseBinding releases the client's delegation programmatically
// (equivalent to handling a RELEASE message).
func (s *Server) ReleaseBinding(client DUID) {
	cl := client.String()
	if b, ok := s.byClient[cl]; ok {
		delete(s.byPrefix, b.Prefix)
		delete(s.byClient, cl)
		s.freed = append(s.freed, b.Prefix)
	}
}

// RenewBinding renews the client's delegation, failing with an error when
// the server has no binding (e.g. after LoseState).
func (s *Server) RenewBinding(client DUID, txn uint32) (Binding, error) {
	rep, err := s.Handle(NewMessage(Renew, txn, client))
	if err != nil {
		return Binding{}, err
	}
	if len(rep.IAPDs) == 0 || len(rep.IAPDs[0].Prefixes) == 0 {
		return Binding{}, fmt.Errorf("dhcp6: renew: no binding")
	}
	p := rep.IAPDs[0].Prefixes[0]
	return Binding{Prefix: p.Prefix, Client: client.String(), Expiry: s.clock.Now() + int64(p.Valid)}, nil
}

type bindingHeap []*Binding

func (h bindingHeap) Len() int            { return len(h) }
func (h bindingHeap) Less(i, j int) bool  { return h[i].Expiry < h[j].Expiry }
func (h bindingHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *bindingHeap) Push(x interface{}) { *h = append(*h, x.(*Binding)) }
func (h *bindingHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return x
}
