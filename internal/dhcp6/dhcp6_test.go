package dhcp6

import (
	"net"
	"net/netip"
	"testing"
	"testing/quick"

	"dynamips/internal/netutil"
)

type fakeClock struct{ t int64 }

func (c *fakeClock) Now() int64 { return c.t }

func duid(b byte) DUID { return DUIDLL([6]byte{0xde, 0xad, 0, 0, 0, b}) }

func newTestServer(valid uint32, sticky bool, delegated int, pools ...string) (*Server, *fakeClock) {
	if len(pools) == 0 {
		pools = []string{"2003:0:a000::/40"}
	}
	var ps []netip.Prefix
	for _, p := range pools {
		ps = append(ps, netip.MustParsePrefix(p))
	}
	clk := &fakeClock{}
	srv := NewServer(ServerConfig{
		Pools:        ps,
		DelegatedLen: delegated,
		ValidSeconds: valid,
		Sticky:       sticky,
	}, clk)
	return srv, clk
}

func TestMessageRoundTrip(t *testing.T) {
	m := NewMessage(Reply, 0xabcdef, duid(1))
	m.ServerID = duid(0xff)
	m.IAPDs = []IAPD{{
		IAID: 7, T1: 100, T2: 200,
		Prefixes: []IAPrefix{{
			Preferred: 3600, Valid: 7200,
			Prefix: netip.MustParsePrefix("2003:0:a000:ff00::/56"),
		}},
	}}
	got, err := Unmarshal(m.Marshal())
	if err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if got.Type != Reply || got.TxnID != 0xabcdef {
		t.Errorf("header mismatch: %+v", got)
	}
	if got.ClientID.String() != duid(1).String() || got.ServerID.String() != duid(0xff).String() {
		t.Errorf("DUID mismatch")
	}
	if len(got.IAPDs) != 1 {
		t.Fatalf("IAPDs = %d", len(got.IAPDs))
	}
	ia := got.IAPDs[0]
	if ia.IAID != 7 || ia.T1 != 100 || ia.T2 != 200 {
		t.Errorf("IA_PD fields: %+v", ia)
	}
	if len(ia.Prefixes) != 1 || ia.Prefixes[0].Prefix != netip.MustParsePrefix("2003:0:a000:ff00::/56") ||
		ia.Prefixes[0].Valid != 7200 || ia.Prefixes[0].Preferred != 3600 {
		t.Errorf("IAPREFIX: %+v", ia.Prefixes)
	}
}

func TestMessageRoundTripProperty(t *testing.T) {
	f := func(txn uint32, iaid, t1, t2, pref, valid uint32, hi uint64) bool {
		p := netip.PrefixFrom(netutil.AddrFrom128(hi&^0xff, 0), 56)
		m := NewMessage(Solicit, txn, duid(3))
		m.IAPDs = []IAPD{{IAID: iaid, T1: t1, T2: t2,
			Prefixes: []IAPrefix{{Preferred: pref, Valid: valid, Prefix: p}}}}
		got, err := Unmarshal(m.Marshal())
		if err != nil || got.TxnID != txn&0xffffff || len(got.IAPDs) != 1 {
			return false
		}
		ia := got.IAPDs[0]
		return ia.IAID == iaid && ia.T1 == t1 && ia.T2 == t2 &&
			len(ia.Prefixes) == 1 && ia.Prefixes[0].Prefix == p &&
			ia.Prefixes[0].Preferred == pref && ia.Prefixes[0].Valid == valid
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestUnmarshalErrors(t *testing.T) {
	if _, err := Unmarshal([]byte{1, 2}); err == nil {
		t.Error("short message accepted")
	}
	// Truncated option header.
	if _, err := Unmarshal([]byte{1, 0, 0, 1, 0, 1}); err == nil {
		t.Error("truncated option header accepted")
	}
	// Option length overrun.
	if _, err := Unmarshal([]byte{1, 0, 0, 1, 0, 1, 0, 200, 0}); err == nil {
		t.Error("overrunning option accepted")
	}
	// IA_PD too short.
	m := []byte{1, 0, 0, 1, 0, 25, 0, 4, 1, 2, 3, 4}
	if _, err := Unmarshal(m); err == nil {
		t.Error("short IA_PD accepted")
	}
}

func TestStatusCodeRoundTrip(t *testing.T) {
	m := NewMessage(Reply, 1, duid(1))
	m.Status = StatusNoPrefixAvail
	m.StatusOK = true
	got, err := Unmarshal(m.Marshal())
	if err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if !got.StatusOK || got.Status != StatusNoPrefixAvail {
		t.Errorf("status = %d, ok=%v", got.Status, got.StatusOK)
	}
}

func TestSARR(t *testing.T) {
	srv, _ := newTestServer(86400, true, 56)
	b, err := srv.Acquire(duid(1), 1)
	if err != nil {
		t.Fatalf("Acquire: %v", err)
	}
	if b.Prefix.Bits() != 56 {
		t.Errorf("delegated /%d, want /56", b.Prefix.Bits())
	}
	if !netutil.ContainsPrefix(netip.MustParsePrefix("2003:0:a000::/40"), b.Prefix) {
		t.Errorf("delegation %v outside pool", b.Prefix)
	}
	b2, err := srv.Acquire(duid(2), 2)
	if err != nil {
		t.Fatalf("Acquire: %v", err)
	}
	if b2.Prefix == b.Prefix {
		t.Error("two CPEs share one delegation")
	}
	if srv.ActiveBindings() != 2 {
		t.Errorf("ActiveBindings = %d", srv.ActiveBindings())
	}
}

func TestRenewKeepsPrefix(t *testing.T) {
	srv, clk := newTestServer(86400, true, 56)
	b, _ := srv.Acquire(duid(1), 1)
	clk.t += 43200
	b2, err := srv.RenewBinding(duid(1), 2)
	if err != nil {
		t.Fatalf("Renew: %v", err)
	}
	if b2.Prefix != b.Prefix {
		t.Errorf("renew moved %v -> %v", b.Prefix, b2.Prefix)
	}
	if b2.Expiry != clk.t+86400 {
		t.Errorf("expiry = %d", b2.Expiry)
	}
}

func TestRenewAfterLoseStateFails(t *testing.T) {
	srv, clk := newTestServer(86400, true, 56)
	b, _ := srv.Acquire(duid(1), 1)
	srv.LoseState()
	clk.t += 10
	if _, err := srv.RenewBinding(duid(1), 2); err == nil {
		t.Fatal("renew after LoseState succeeded")
	}
	b2, err := srv.Acquire(duid(1), 3)
	if err != nil {
		t.Fatalf("re-acquire: %v", err)
	}
	if b2.Prefix == b.Prefix {
		t.Error("prefix unchanged after server state loss")
	}
}

func TestStickyReDelegation(t *testing.T) {
	srv, clk := newTestServer(3600, true, 56)
	b, _ := srv.Acquire(duid(1), 1)
	clk.t += 7200
	b2, err := srv.Acquire(duid(1), 2)
	if err != nil {
		t.Fatalf("Acquire: %v", err)
	}
	if b2.Prefix != b.Prefix {
		t.Errorf("sticky server moved returning CPE %v -> %v", b.Prefix, b2.Prefix)
	}
}

func TestNonStickyMovesAfterExpiry(t *testing.T) {
	srv, clk := newTestServer(3600, false, 56)
	b, _ := srv.Acquire(duid(1), 1)
	clk.t += 7200
	srv.Acquire(duid(2), 2) // takes over the reclaimed delegation
	b2, err := srv.Acquire(duid(1), 3)
	if err != nil {
		t.Fatalf("Acquire: %v", err)
	}
	if b2.Prefix == b.Prefix {
		t.Error("non-sticky server re-delegated a taken prefix")
	}
}

func TestRenumberMovesEveryone(t *testing.T) {
	srv, _ := newTestServer(86400, true, 56)
	b1, _ := srv.Acquire(duid(1), 1)
	b2, _ := srv.Acquire(duid(2), 2)
	srv.Renumber()
	n1, _ := srv.Acquire(duid(1), 3)
	n2, _ := srv.Acquire(duid(2), 4)
	if n1.Prefix == b1.Prefix || n2.Prefix == b2.Prefix {
		t.Errorf("renumbering kept a prefix: %v->%v, %v->%v", b1.Prefix, n1.Prefix, b2.Prefix, n2.Prefix)
	}
}

func TestPoolExhaustion(t *testing.T) {
	// /62 pool delegating /64s: 4 delegations.
	srv, _ := newTestServer(3600, false, 64, "2001:db8:0:4::/62")
	for i := byte(1); i <= 4; i++ {
		if _, err := srv.Acquire(duid(i), uint32(i)); err != nil {
			t.Fatalf("Acquire %d: %v", i, err)
		}
	}
	if _, err := srv.Acquire(duid(5), 5); err == nil {
		t.Fatal("5th delegation from /62 succeeded")
	}
	if srv.Capacity() != 4 {
		t.Errorf("Capacity = %d", srv.Capacity())
	}
}

func TestReleaseReturnsPrefix(t *testing.T) {
	srv, _ := newTestServer(3600, false, 64, "2001:db8:0:4::/62")
	b, _ := srv.Acquire(duid(1), 1)
	rel := NewMessage(Release, 2, duid(1))
	rep, err := srv.Handle(rel)
	if err != nil {
		t.Fatalf("Release: %v", err)
	}
	if len(rep.IAPDs) != 1 || rep.IAPDs[0].Status != StatusSuccess {
		t.Errorf("release reply: %+v", rep.IAPDs)
	}
	// The freed delegation is reusable.
	seen := map[netip.Prefix]bool{b.Prefix: false}
	for i := byte(2); i <= 5; i++ {
		nb, err := srv.Acquire(duid(i), uint32(i))
		if err != nil {
			t.Fatalf("Acquire %d: %v", i, err)
		}
		seen[nb.Prefix] = true
	}
	if !seen[b.Prefix] {
		t.Error("released prefix never reused")
	}
}

func TestRequestWithoutOfferRejected(t *testing.T) {
	srv, _ := newTestServer(3600, true, 56)
	req := NewMessage(Request, 1, duid(9))
	req.IAPDs = []IAPD{{IAID: 1, Prefixes: []IAPrefix{{
		Prefix: netip.MustParsePrefix("2003:0:a000:aa00::/56"), Valid: 60, Preferred: 60,
	}}}}
	rep, err := srv.Handle(req)
	if err != nil {
		t.Fatalf("Handle: %v", err)
	}
	if len(rep.IAPDs) != 1 || rep.IAPDs[0].Status != StatusNoBinding {
		t.Errorf("unoffered request reply: %+v", rep.IAPDs)
	}
}

func TestMissingClientIDRejected(t *testing.T) {
	srv, _ := newTestServer(3600, true, 56)
	if _, err := srv.Handle(&Message{Type: Solicit, TxnID: 1}); err == nil {
		t.Error("request without client ID accepted")
	}
}

func TestServerConfigPanics(t *testing.T) {
	pool6 := []netip.Prefix{netip.MustParsePrefix("2001:db8::/40")}
	for name, cfg := range map[string]ServerConfig{
		"no pools":       {DelegatedLen: 56, ValidSeconds: 1},
		"zero lifetime":  {Pools: pool6, DelegatedLen: 56},
		"v4 pool":        {Pools: []netip.Prefix{netip.MustParsePrefix("10.0.0.0/8")}, DelegatedLen: 24, ValidSeconds: 1},
		"delegation>64":  {Pools: pool6, DelegatedLen: 96, ValidSeconds: 1},
		"delegation<...": {Pools: pool6, DelegatedLen: 16, ValidSeconds: 1},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: NewServer did not panic", name)
				}
			}()
			NewServer(cfg, &fakeClock{})
		}()
	}
}

func TestServeOverUDP(t *testing.T) {
	srv, clk := newTestServer(86400, true, 56)
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	defer pc.Close()
	done := make(chan error, 1)
	go func() { done <- Serve(pc, srv) }()

	cc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("client listen: %v", err)
	}
	defer cc.Close()
	cl := &Client{Conn: cc, Server: pc.LocalAddr(), DUID: duid(42), Clock: clk}
	b, err := cl.AcquirePD()
	if err != nil {
		t.Fatalf("AcquirePD: %v", err)
	}
	if b.Prefix.Bits() != 56 {
		t.Errorf("delegated /%d over UDP", b.Prefix.Bits())
	}
	pc.Close()
	if err := <-done; err != net.ErrClosed {
		t.Errorf("Serve returned %v", err)
	}
}

func TestDUIDLL(t *testing.T) {
	d := DUIDLL([6]byte{1, 2, 3, 4, 5, 6})
	if len(d) != 10 {
		t.Fatalf("DUID len = %d", len(d))
	}
	if d.String() != "00030001010203040506" {
		t.Errorf("DUID = %s", d)
	}
}

func TestMessageTypeString(t *testing.T) {
	if Solicit.String() != "SOLICIT" || Reply.String() != "REPLY" {
		t.Error("type names wrong")
	}
	if MessageType(200).String() != "TYPE(200)" {
		t.Error("unknown type name wrong")
	}
}
