// Package dhcp6 implements the subset of DHCPv6 (RFC 8415) with prefix
// delegation (RFC 3633, folded into RFC 8415's IA_PD) that residential ISPs
// use to delegate IPv6 prefixes to CPE devices. The paper's IPv6 analyses
// are entirely about the dynamics of these delegated prefixes: internal/isp
// drives this package's Server as the IPv6 delegation machinery, and the
// CPE models decide which /64 of the delegation the subscriber LAN sees.
package dhcp6

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net/netip"
)

// MessageType is the DHCPv6 message type.
type MessageType byte

// RFC 8415 §7.3 message types (subset).
const (
	Solicit   MessageType = 1
	Advertise MessageType = 2
	Request   MessageType = 3
	Confirm   MessageType = 4
	Renew     MessageType = 5
	Rebind    MessageType = 6
	Reply     MessageType = 7
	Release   MessageType = 8
)

var mtNames = map[MessageType]string{
	Solicit: "SOLICIT", Advertise: "ADVERTISE", Request: "REQUEST",
	Confirm: "CONFIRM", Renew: "RENEW", Rebind: "REBIND", Reply: "REPLY",
	Release: "RELEASE",
}

// String returns the RFC name of the message type.
func (m MessageType) String() string {
	if s, ok := mtNames[m]; ok {
		return s
	}
	return fmt.Sprintf("TYPE(%d)", byte(m))
}

// Option codes (RFC 8415 §21).
const (
	OptClientID    uint16 = 1
	OptServerID    uint16 = 2
	OptIAPD        uint16 = 25
	OptIAPrefix    uint16 = 26
	OptStatusCode  uint16 = 13
	OptRapidCommit uint16 = 14
)

// Status codes (RFC 8415 §21.13).
const (
	StatusSuccess       uint16 = 0
	StatusNoBinding     uint16 = 3
	StatusNotOnLink     uint16 = 4
	StatusNoPrefixAvail uint16 = 6
)

// Errors returned by Unmarshal.
var (
	ErrShortMessage = errors.New("dhcp6: message too short")
	ErrBadOption    = errors.New("dhcp6: malformed option")
)

// DUID identifies a DHCPv6 endpoint. The simulator uses DUID-LL built
// from the CPE's MAC; any opaque bytes are accepted on the wire.
type DUID []byte

// DUIDLL builds a DUID-LL (type 3, ethernet) from a MAC address.
func DUIDLL(mac [6]byte) DUID {
	d := make(DUID, 10)
	binary.BigEndian.PutUint16(d, 3) // DUID-LL
	binary.BigEndian.PutUint16(d[2:], 1)
	copy(d[4:], mac[:])
	return d
}

// String renders the DUID in hex.
func (d DUID) String() string { return fmt.Sprintf("%x", []byte(d)) }

// IAPrefix is one delegated prefix inside an IA_PD.
type IAPrefix struct {
	Preferred uint32
	Valid     uint32
	Prefix    netip.Prefix
}

// IAPD is an Identity Association for Prefix Delegation.
type IAPD struct {
	IAID     uint32
	T1, T2   uint32
	Prefixes []IAPrefix
	Status   uint16 // StatusSuccess unless the server reports otherwise
	StatusOK bool   // whether a status-code option was present
}

// Message is a DHCPv6 message.
type Message struct {
	Type MessageType
	// TxnID uses 24 bits on the wire.
	TxnID    uint32
	ClientID DUID
	ServerID DUID
	IAPDs    []IAPD
	Status   uint16
	StatusOK bool
	// RapidCommit carries RFC 8415 §18.2.1's two-message fast path: a
	// Solicit with it set asks the server to commit immediately with a
	// Reply instead of an Advertise.
	RapidCommit bool
}

// NewMessage builds a message with the given type, transaction and client
// identity.
func NewMessage(mt MessageType, txn uint32, client DUID) *Message {
	return &Message{Type: mt, TxnID: txn & 0xffffff, ClientID: client}
}

func appendOption(b []byte, code uint16, data []byte) []byte {
	var hdr [4]byte
	binary.BigEndian.PutUint16(hdr[:], code)
	binary.BigEndian.PutUint16(hdr[2:], uint16(len(data)))
	b = append(b, hdr[:]...)
	return append(b, data...)
}

func marshalIAPD(ia IAPD) []byte {
	b := make([]byte, 12)
	binary.BigEndian.PutUint32(b, ia.IAID)
	binary.BigEndian.PutUint32(b[4:], ia.T1)
	binary.BigEndian.PutUint32(b[8:], ia.T2)
	for _, p := range ia.Prefixes {
		pp := make([]byte, 25)
		binary.BigEndian.PutUint32(pp, p.Preferred)
		binary.BigEndian.PutUint32(pp[4:], p.Valid)
		pp[8] = byte(p.Prefix.Bits())
		a16 := p.Prefix.Addr().As16()
		copy(pp[9:], a16[:])
		b = appendOption(b, OptIAPrefix, pp)
	}
	if ia.StatusOK {
		sc := make([]byte, 2)
		binary.BigEndian.PutUint16(sc, ia.Status)
		b = appendOption(b, OptStatusCode, sc)
	}
	return b
}

// Marshal encodes the message to wire format.
func (m *Message) Marshal() []byte {
	b := make([]byte, 4, 128)
	b[0] = byte(m.Type)
	b[1] = byte(m.TxnID >> 16)
	b[2] = byte(m.TxnID >> 8)
	b[3] = byte(m.TxnID)
	if len(m.ClientID) > 0 {
		b = appendOption(b, OptClientID, m.ClientID)
	}
	if len(m.ServerID) > 0 {
		b = appendOption(b, OptServerID, m.ServerID)
	}
	for _, ia := range m.IAPDs {
		b = appendOption(b, OptIAPD, marshalIAPD(ia))
	}
	if m.RapidCommit {
		b = appendOption(b, OptRapidCommit, nil)
	}
	if m.StatusOK {
		sc := make([]byte, 2)
		binary.BigEndian.PutUint16(sc, m.Status)
		b = appendOption(b, OptStatusCode, sc)
	}
	return b
}

func parseIAPD(data []byte) (IAPD, error) {
	var ia IAPD
	if len(data) < 12 {
		return ia, fmt.Errorf("%w: IA_PD body %d bytes", ErrBadOption, len(data))
	}
	ia.IAID = binary.BigEndian.Uint32(data)
	ia.T1 = binary.BigEndian.Uint32(data[4:])
	ia.T2 = binary.BigEndian.Uint32(data[8:])
	rest := data[12:]
	for len(rest) > 0 {
		if len(rest) < 4 {
			return ia, fmt.Errorf("%w: truncated IA_PD sub-option", ErrBadOption)
		}
		code := binary.BigEndian.Uint16(rest)
		l := int(binary.BigEndian.Uint16(rest[2:]))
		if 4+l > len(rest) {
			return ia, fmt.Errorf("%w: IA_PD sub-option overrun", ErrBadOption)
		}
		body := rest[4 : 4+l]
		switch code {
		case OptIAPrefix:
			if l < 25 {
				return ia, fmt.Errorf("%w: IAPREFIX body %d bytes", ErrBadOption, l)
			}
			plen := int(body[8])
			addr := netip.AddrFrom16([16]byte(body[9:25]))
			p, err := addr.Prefix(plen)
			if err != nil {
				return ia, fmt.Errorf("%w: IAPREFIX %v/%d", ErrBadOption, addr, plen)
			}
			ia.Prefixes = append(ia.Prefixes, IAPrefix{
				Preferred: binary.BigEndian.Uint32(body),
				Valid:     binary.BigEndian.Uint32(body[4:]),
				Prefix:    p,
			})
		case OptStatusCode:
			if l < 2 {
				return ia, fmt.Errorf("%w: status code body %d bytes", ErrBadOption, l)
			}
			ia.Status = binary.BigEndian.Uint16(body)
			ia.StatusOK = true
		}
		rest = rest[4+l:]
	}
	return ia, nil
}

// Unmarshal decodes a wire-format DHCPv6 message.
func Unmarshal(b []byte) (*Message, error) {
	if len(b) < 4 {
		return nil, fmt.Errorf("%w: %d bytes", ErrShortMessage, len(b))
	}
	m := &Message{
		Type:  MessageType(b[0]),
		TxnID: uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3]),
	}
	rest := b[4:]
	for len(rest) > 0 {
		if len(rest) < 4 {
			return nil, fmt.Errorf("%w: truncated option header", ErrBadOption)
		}
		code := binary.BigEndian.Uint16(rest)
		l := int(binary.BigEndian.Uint16(rest[2:]))
		if 4+l > len(rest) {
			return nil, fmt.Errorf("%w: option %d overruns message", ErrBadOption, code)
		}
		body := rest[4 : 4+l]
		switch code {
		case OptClientID:
			m.ClientID = append(DUID(nil), body...)
		case OptServerID:
			m.ServerID = append(DUID(nil), body...)
		case OptIAPD:
			ia, err := parseIAPD(body)
			if err != nil {
				return nil, err
			}
			m.IAPDs = append(m.IAPDs, ia)
		case OptStatusCode:
			if l < 2 {
				return nil, fmt.Errorf("%w: status code body %d bytes", ErrBadOption, l)
			}
			m.Status = binary.BigEndian.Uint16(body)
			m.StatusOK = true
		case OptRapidCommit:
			m.RapidCommit = true
		}
		rest = rest[4+l:]
	}
	return m, nil
}
