package dhcp6

import (
	"net/netip"
	"testing"
)

func TestRapidCommit(t *testing.T) {
	srv, _ := newTestServer(86400, true, 56)
	sol := NewMessage(Solicit, 1, duid(1))
	sol.RapidCommit = true
	rep, err := srv.Handle(sol)
	if err != nil {
		t.Fatalf("Handle: %v", err)
	}
	if rep.Type != Reply || !rep.RapidCommit {
		t.Fatalf("rapid-commit solicit got %v (rapid=%v)", rep.Type, rep.RapidCommit)
	}
	if len(rep.IAPDs) != 1 || len(rep.IAPDs[0].Prefixes) != 1 {
		t.Fatalf("no delegation in rapid reply: %+v", rep.IAPDs)
	}
	// The binding is committed: a renew succeeds immediately.
	if _, err := srv.RenewBinding(duid(1), 2); err != nil {
		t.Errorf("renew after rapid commit: %v", err)
	}
	if srv.ActiveBindings() != 1 {
		t.Errorf("ActiveBindings = %d", srv.ActiveBindings())
	}
}

func TestRapidCommitWireRoundTrip(t *testing.T) {
	m := NewMessage(Solicit, 7, duid(2))
	m.RapidCommit = true
	got, err := Unmarshal(m.Marshal())
	if err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if !got.RapidCommit {
		t.Error("rapid commit option lost on the wire")
	}
	plain := NewMessage(Solicit, 7, duid(2))
	got2, err := Unmarshal(plain.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got2.RapidCommit {
		t.Error("rapid commit appeared from nowhere")
	}
}

func TestConfirm(t *testing.T) {
	srv, _ := newTestServer(86400, true, 56)
	b, err := srv.Acquire(duid(1), 1)
	if err != nil {
		t.Fatalf("Acquire: %v", err)
	}
	confirm := func(p netip.Prefix) uint16 {
		req := NewMessage(Confirm, 2, duid(1))
		req.IAPDs = []IAPD{{IAID: 1, Prefixes: []IAPrefix{{Prefix: p, Valid: 60, Preferred: 60}}}}
		rep, err := srv.Handle(req)
		if err != nil {
			t.Fatalf("Handle(Confirm): %v", err)
		}
		return rep.IAPDs[0].Status
	}
	if st := confirm(b.Prefix); st != StatusSuccess {
		t.Errorf("confirm of own delegation = status %d", st)
	}
	if st := confirm(netip.MustParsePrefix("2001:db8:dead:be00::/56")); st != StatusNotOnLink {
		t.Errorf("confirm of foreign delegation = status %d, want NotOnLink", st)
	}
	// After the server loses state, even the right prefix is NotOnLink.
	srv.LoseState()
	if st := confirm(b.Prefix); st != StatusNotOnLink {
		t.Errorf("confirm after LoseState = status %d, want NotOnLink", st)
	}
}

func TestConfirmTypeName(t *testing.T) {
	if Confirm.String() != "CONFIRM" {
		t.Error("Confirm name wrong")
	}
}
