package dhcp6

import (
	"testing"

	"dynamips/internal/faultnet"
)

// waits drains up to n waits from the machine, stopping early at the
// final (ok=false) timeout.
func waits(rt *Retransmitter, n int) (ws []int64, gaveUp bool) {
	for i := 0; i < n; i++ {
		w, more := rt.Next()
		ws = append(ws, w)
		if !more {
			return ws, true
		}
	}
	return ws, false
}

func TestRequestScheduleRFCConstants(t *testing.T) {
	// RFC 8415 §7.6/§15: REQ IRT 1 s doubling to MRT 30 s, at most
	// REQ_MAX_RC = 10 transmissions. Unjittered: 1,2,4,8,16,30,30,30,30,30.
	ws, gaveUp := waits(NewRetransmitter(RequestParams(), nil), 50)
	want := []int64{1_000, 2_000, 4_000, 8_000, 16_000, 30_000, 30_000, 30_000, 30_000, 30_000}
	if !gaveUp || len(ws) != len(want) {
		t.Fatalf("request schedule %v (gaveUp=%v), want %v", ws, gaveUp, want)
	}
	for i := range want {
		if ws[i] != want[i] {
			t.Fatalf("request wait %d = %d ms, want %d (all: %v)", i, ws[i], want[i], ws)
		}
	}
}

func TestSolicitScheduleUnbounded(t *testing.T) {
	// SOL: IRT 1 s, MRT 3600 s, no MRC/MRD — the client solicits forever,
	// with RT pinned near MRT once reached.
	ws, gaveUp := waits(NewRetransmitter(SolicitParams(), nil), 30)
	if gaveUp {
		t.Fatalf("solicit schedule terminated: %v", ws)
	}
	want := []int64{1_000, 2_000, 4_000, 8_000, 16_000, 32_000, 64_000, 128_000,
		256_000, 512_000, 1_024_000, 2_048_000, 3_600_000, 3_600_000}
	for i := range want {
		if ws[i] != want[i] {
			t.Fatalf("solicit wait %d = %d ms, want %d", i, ws[i], want[i])
		}
	}
}

func TestRenewScheduleRFCConstants(t *testing.T) {
	ws, _ := waits(NewRetransmitter(RenewParams(), nil), 8)
	want := []int64{10_000, 20_000, 40_000, 80_000, 160_000, 320_000, 600_000, 600_000}
	for i := range want {
		if ws[i] != want[i] {
			t.Fatalf("renew wait %d = %d ms, want %d (all: %v)", i, ws[i], want[i], ws)
		}
	}
}

func TestMRDTruncatesFinalWait(t *testing.T) {
	p := RetransParams{IRT: 1_000, MRD: 2_500}
	ws, gaveUp := waits(NewRetransmitter(p, nil), 10)
	// 1 s, then the 2 s doubling is cut to the 1.5 s left before MRD.
	want := []int64{1_000, 1_500}
	if !gaveUp || len(ws) != 2 || ws[0] != want[0] || ws[1] != want[1] {
		t.Fatalf("MRD schedule %v (gaveUp=%v), want %v terminating", ws, gaveUp, want)
	}
}

func TestMRCGivesUpAfterCount(t *testing.T) {
	p := RetransParams{IRT: 1_000, MRC: 3}
	ws, gaveUp := waits(NewRetransmitter(p, nil), 10)
	if !gaveUp || len(ws) != 3 {
		t.Fatalf("MRC=3 schedule %v (gaveUp=%v), want exactly 3 waits", ws, gaveUp)
	}
}

// constJitter6 always draws the same fraction.
type constJitter6 float64

func (c constJitter6) Float64() float64 { return float64(c) }

func TestFirstSolicitRandNonNegative(t *testing.T) {
	// RFC 8415 §18.2.1: the first Solicit RT uses RAND from [0, 0.1], so
	// the client never transmits again before IRT elapses.
	low := NewRetransmitter(SolicitParams(), constJitter6(0))
	if w, _ := low.Next(); w != 1_000 {
		t.Fatalf("first solicit wait at RAND lower extreme = %d ms, want 1000", w)
	}
	high := NewRetransmitter(SolicitParams(), constJitter6(0.9999999))
	if w, _ := high.Next(); w < 1_000 || w > 1_100 {
		t.Fatalf("first solicit wait at RAND upper extreme = %d ms, want (1000,1100]", w)
	}
}

func TestRequestJitterBounds(t *testing.T) {
	// Non-first transmissions draw RAND from [-0.1, 0.1]: each wait stays
	// within 10% of the unjittered value (cap re-randomized around MRT).
	base := []int64{1_000, 2_000, 4_000, 8_000, 16_000, 30_000, 30_000, 30_000, 30_000, 30_000}
	s := faultnet.NewStream(11, 0)
	for trial := 0; trial < 100; trial++ {
		rt := NewRetransmitter(RequestParams(), s)
		prev := int64(0)
		for i := range base {
			w, more := rt.Next()
			if more != (i < len(base)-1) {
				t.Fatalf("trial %d: wait %d more=%v", trial, i, more)
			}
			// The RFC jitters each RT around the previous RT's double —
			// or around MRT once the doubled value exceeds it — so the
			// band is relative to the realized prev.
			lo19, hi21 := 2*prev-prev/10-1, 2*prev+prev/10+1
			var lo, hi int64
			switch {
			case i == 0:
				lo, hi = 900, 1_100
			case lo19 > 30_000: // every draw exceeds MRT: always capped
				lo, hi = 27_000-1, 33_000+1
			case hi21 <= 30_000: // no draw can exceed MRT: never capped
				lo, hi = lo19, hi21
			default: // straddles the cap: either band is legitimate
				lo, hi = min(lo19, 27_000-1), 33_000+1
			}
			if w < lo || w > hi {
				t.Fatalf("trial %d: wait %d = %d ms outside [%d,%d]", trial, i, w, lo, hi)
			}
			prev = w
		}
	}
}
