package dhcp6

import (
	"math/rand"
	"net/netip"
	"testing"
)

// TestUnmarshalNeverPanics: the decoder parses attacker-controlled
// datagrams and must never panic.
func TestUnmarshalNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("Unmarshal panicked: %v", r)
		}
	}()
	for i := 0; i < 5000; i++ {
		b := make([]byte, rng.Intn(300))
		rng.Read(b)
		Unmarshal(b) //nolint:errcheck // errors are expected
	}
	valid := NewMessage(Request, 7, duid(1))
	valid.IAPDs = []IAPD{{IAID: 1, Prefixes: []IAPrefix{{Valid: 60, Preferred: 60,
		Prefix: netip.MustParsePrefix("2003:1000:0:1100::/56")}}}}
	wire := valid.Marshal()
	for i := 0; i < 5000; i++ {
		b := append([]byte(nil), wire...)
		for k := 0; k < 3; k++ {
			b[rng.Intn(len(b))] ^= byte(1 << rng.Intn(8))
		}
		Unmarshal(b) //nolint:errcheck
	}
}
