package dhcp6

import (
	"math/rand"
	"net/netip"
	"testing"
)

// TestUnmarshalNeverPanics: the decoder parses attacker-controlled
// datagrams and must never panic.
func TestUnmarshalNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("Unmarshal panicked: %v", r)
		}
	}()
	for i := 0; i < 5000; i++ {
		b := make([]byte, rng.Intn(300))
		rng.Read(b)
		Unmarshal(b) //nolint:errcheck // errors are expected
	}
	valid := NewMessage(Request, 7, duid(1))
	valid.IAPDs = []IAPD{{IAID: 1, Prefixes: []IAPrefix{{Valid: 60, Preferred: 60,
		Prefix: netip.MustParsePrefix("2003:1000:0:1100::/56")}}}}
	wire := valid.Marshal()
	for i := 0; i < 5000; i++ {
		b := append([]byte(nil), wire...)
		for k := 0; k < 3; k++ {
			b[rng.Intn(len(b))] ^= byte(1 << rng.Intn(8))
		}
		Unmarshal(b) //nolint:errcheck
	}
}

// FuzzUnmarshal is the native fuzz target for the DHCPv6 codec, run with a
// bounded -fuzztime as a smoke gate in CI (scripts/verify.sh).
func FuzzUnmarshal(f *testing.F) {
	valid := NewMessage(Request, 7, duid(1))
	valid.IAPDs = []IAPD{{IAID: 1, Prefixes: []IAPrefix{{Valid: 60, Preferred: 60,
		Prefix: netip.MustParsePrefix("2003:1000:0:1100::/56")}}}}
	f.Add(valid.Marshal())
	f.Add([]byte{})
	f.Add([]byte{1, 0, 0, 7})
	f.Fuzz(func(t *testing.T, b []byte) {
		m, err := Unmarshal(b)
		if err != nil {
			return
		}
		if m == nil {
			t.Fatal("nil message without error")
		}
		m.Marshal()
	})
}
