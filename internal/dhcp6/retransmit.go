package dhcp6

// Jitter supplies RFC 8415 §15's RAND factor, a uniform draw over
// [-0.1, +0.1] of the current timeout. *math/rand.Rand and
// *faultnet.Stream both implement it; nil yields the unjittered schedule
// (RAND = 0, except the first Solicit where RFC 8415 §18.2.1 requires a
// strictly non-negative RAND and nil yields the IRT itself).
type Jitter interface {
	Float64() float64
}

// RetransParams are the RFC 8415 §7.6 timing constants for one message
// type: initial/maximum retransmission times, maximum retransmission
// count, and maximum retransmission duration. Zero MRT, MRC, or MRD mean
// "no bound", as in the RFC.
type RetransParams struct {
	IRT int64 // initial retransmission time, ms
	MRT int64 // maximum retransmission time, ms (0 = no ceiling)
	MRC int   // maximum transmissions (0 = unbounded)
	MRD int64 // maximum total duration, ms (0 = unbounded)
	// FirstRandPositive selects §18.2.1's Solicit special case: the
	// first RT uses RAND drawn from [0, +0.1] so clients never transmit
	// before IRT elapses.
	FirstRandPositive bool
}

// SolicitParams returns SOL_TIMEOUT/SOL_MAX_RT (RFC 8415 §7.6): IRT 1 s,
// MRT 3600 s, unbounded count and duration.
func SolicitParams() RetransParams {
	return RetransParams{IRT: 1_000, MRT: 3_600_000, FirstRandPositive: true}
}

// RequestParams returns REQ_TIMEOUT/REQ_MAX_RT/REQ_MAX_RC: IRT 1 s, MRT
// 30 s, at most 10 transmissions.
func RequestParams() RetransParams {
	return RetransParams{IRT: 1_000, MRT: 30_000, MRC: 10}
}

// RenewParams returns REN_TIMEOUT/REN_MAX_RT: IRT 10 s, MRT 600 s.
func RenewParams() RetransParams {
	return RetransParams{IRT: 10_000, MRT: 600_000}
}

// Retransmitter implements RFC 8415 §15's retransmission algorithm:
//
//	RT(first) = IRT + RAND*IRT
//	RT(n)     = 2*RT(n-1) + RAND*RT(n-1)
//	RT        = MRT + RAND*MRT   once RT would exceed MRT
//
// terminating after MRC transmissions or MRD elapsed milliseconds.
type Retransmitter struct {
	p       RetransParams
	j       Jitter
	rt      int64 // previous jittered RT, ms
	sent    int
	elapsed int64
}

// NewRetransmitter builds the machine for one message exchange.
func NewRetransmitter(p RetransParams, j Jitter) *Retransmitter {
	return &Retransmitter{p: p, j: j}
}

// rand draws RAND as a fraction: uniform over [-0.1, +0.1], or [0, +0.1]
// for the first Solicit transmission.
func (r *Retransmitter) rand(firstPositive bool) float64 {
	if r.j == nil {
		return 0
	}
	f := r.j.Float64()
	if firstPositive {
		return 0.1 * f
	}
	return 0.2*f - 0.1
}

// Next returns the wait after the upcoming transmission and whether a
// further transmission may follow; ok=false marks the final timeout
// (MRC reached, or MRD truncating the wait).
func (r *Retransmitter) Next() (waitMS int64, ok bool) {
	if r.sent == 0 {
		r.rt = r.p.IRT + int64(r.rand(r.p.FirstRandPositive)*float64(r.p.IRT))
	} else {
		rt := 2*r.rt + int64(r.rand(false)*float64(r.rt))
		if r.p.MRT > 0 && rt > r.p.MRT {
			rt = r.p.MRT + int64(r.rand(false)*float64(r.p.MRT))
		}
		r.rt = rt
	}
	r.sent++
	wait := r.rt
	more := r.p.MRC == 0 || r.sent < r.p.MRC
	if r.p.MRD > 0 {
		if left := r.p.MRD - r.elapsed; wait >= left {
			wait = left
			more = false
		}
	}
	if wait < 0 {
		wait = 0
	}
	r.elapsed += wait
	return wait, more
}
