package dhcp6

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"
)

// Handler answers one DHCPv6 message. *Server implements it directly for
// single-goroutine use; wrap a Server in NewGuarded when administrative
// operations must interleave with a live wire front end.
type Handler interface {
	Handle(req *Message) (*Message, error)
}

// Guarded serializes access to a Server shared between a Serve loop and
// administrative operations (LoseState) injected while the front end is
// running. The simulator path keeps calling the Server directly, unlocked.
type Guarded struct {
	mu  sync.Mutex
	srv *Server
}

// NewGuarded wraps srv for concurrent use.
func NewGuarded(srv *Server) *Guarded { return &Guarded{srv: srv} }

// Handle answers one message under the lock.
func (g *Guarded) Handle(req *Message) (*Message, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.srv.Handle(req)
}

// LoseState drops all bindings under the lock.
func (g *Guarded) LoseState() {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.srv.LoseState()
}

// Serve answers DHCPv6 messages arriving on conn until it is closed,
// returning net.ErrClosed. Replies go to the packet's source (the
// relay/unicast model). Malformed datagrams are dropped.
//
// A bare *Server is not safe for concurrent use: nothing else may touch it
// while the loop runs. To mutate server state mid-serve, pass a *Guarded.
func Serve(conn net.PacketConn, srv Handler) error {
	buf := make([]byte, 1500)
	for {
		n, src, err := conn.ReadFrom(buf)
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return net.ErrClosed
			}
			return fmt.Errorf("dhcp6: read: %w", err)
		}
		req, err := Unmarshal(buf[:n])
		if err != nil {
			continue
		}
		rep, err := srv.Handle(req)
		if err != nil || rep == nil {
			continue
		}
		if _, err := conn.WriteTo(rep.Marshal(), src); err != nil {
			if errors.Is(err, net.ErrClosed) {
				return net.ErrClosed
			}
			return fmt.Errorf("dhcp6: write: %w", err)
		}
	}
}

// Client performs requesting-router exchanges over a PacketConn.
//
// Clock is required: binding expiries are computed against the same
// injected clock the server runs on. Only the socket read deadline uses the
// wall clock (real I/O waits in real time).
type Client struct {
	Conn    net.PacketConn
	Server  net.Addr
	DUID    DUID
	Clock   Clock
	Timeout time.Duration
	// Jitter supplies RFC 8415 §15's RAND factor for retransmission
	// timing; nil uses the unjittered schedule.
	Jitter Jitter
	// WaitScale compresses the retransmission schedule for tests (the
	// 1 s Solicit IRT becomes 1 ms at 0.001); 0 means 1. Timeout still
	// caps the whole exchange in real wall time.
	WaitScale float64

	txn uint32
}

// ErrExchangeTimeout is returned when every transmission of an exchange
// went unanswered and the retransmission schedule gave up.
var ErrExchangeTimeout = errors.New("dhcp6: no reply before give-up")

// now reads the injected clock.
func (c *Client) now() int64 {
	if c.Clock == nil {
		panic("dhcp6: Client.Clock not set; inject the simulation clock (or wrap time.Now().Unix() for live use)")
	}
	return c.Clock.Now()
}

// exchange transmits req and waits for the matching reply, retransmitting
// the identical datagram on the RFC 8415 §15 schedule given by p until a
// reply with the request's transaction-id arrives, MRC/MRD terminate the
// schedule, or the client's overall Timeout expires. Replies carrying any
// other transaction-id are late or duplicated answers to earlier
// transactions and are discarded. Deadlines are genuine wire I/O bounds
// and run on the wall clock even in simulations; the virtual-time
// equivalent of this loop is faultnet.Link.Exchange.
func (c *Client) exchange(req *Message, p RetransParams) (*Message, error) {
	payload := req.Marshal()
	rt := NewRetransmitter(p, c.Jitter)
	timeout := c.Timeout
	if timeout <= 0 {
		timeout = 2 * time.Second
	}
	scale := c.WaitScale
	if scale <= 0 {
		scale = 1
	}
	remaining := timeout // overall budget: the waits may not sum past it
	buf := make([]byte, 1500)
	sends := 0
	for {
		if _, err := c.Conn.WriteTo(payload, c.Server); err != nil {
			return nil, fmt.Errorf("dhcp6: client write: %w", err)
		}
		sends++
		waitMS, more := rt.Next()
		wait := time.Duration(float64(waitMS)*scale) * time.Millisecond
		last := !more
		if wait >= remaining {
			wait = remaining
			last = true
		}
		remaining -= wait
		if err := c.Conn.SetReadDeadline(time.Now().Add(wait)); err != nil {
			return nil, fmt.Errorf("dhcp6: set deadline: %w", err)
		}
		for {
			n, _, err := c.Conn.ReadFrom(buf)
			if err != nil {
				var ne net.Error
				if errors.As(err, &ne) && ne.Timeout() {
					break // this wait expired; retransmit or give up
				}
				return nil, fmt.Errorf("dhcp6: client read: %w", err)
			}
			rep, err := Unmarshal(buf[:n])
			if err != nil {
				continue
			}
			if rep.TxnID == req.TxnID {
				return rep, nil
			}
		}
		if last {
			return nil, fmt.Errorf("%w (%d transmissions of txn %d)", ErrExchangeTimeout, sends, req.TxnID)
		}
	}
}

// AcquirePD runs Solicit/Advertise/Request/Reply over the wire and returns
// the delegated prefix binding.
func (c *Client) AcquirePD() (Binding, error) {
	c.txn++
	adv, err := c.exchange(NewMessage(Solicit, c.txn, c.DUID), SolicitParams())
	if err != nil {
		return Binding{}, err
	}
	if adv.Type != Advertise || len(adv.IAPDs) == 0 || len(adv.IAPDs[0].Prefixes) == 0 {
		return Binding{}, fmt.Errorf("dhcp6: no advertisement")
	}
	// RFC 8415 §16.1: each exchange is its own transaction; a fresh id
	// also keeps late or duplicated Advertises out of this reply filter.
	c.txn++
	req := NewMessage(Request, c.txn, c.DUID)
	req.ServerID = adv.ServerID
	req.IAPDs = []IAPD{{IAID: adv.IAPDs[0].IAID, Prefixes: adv.IAPDs[0].Prefixes}}
	rep, err := c.exchange(req, RequestParams())
	if err != nil {
		return Binding{}, err
	}
	if rep.Type != Reply || len(rep.IAPDs) == 0 || len(rep.IAPDs[0].Prefixes) == 0 {
		return Binding{}, fmt.Errorf("dhcp6: request rejected")
	}
	p := rep.IAPDs[0].Prefixes[0]
	return Binding{Prefix: p.Prefix, Client: c.DUID.String(), Expiry: c.now() + int64(p.Valid)}, nil
}
