package dhcp6

import (
	"errors"
	"fmt"
	"net"
	"time"
)

// Serve answers DHCPv6 messages arriving on conn until it is closed,
// returning net.ErrClosed. Replies go to the packet's source (the
// relay/unicast model). Malformed datagrams are dropped.
func Serve(conn net.PacketConn, srv *Server) error {
	buf := make([]byte, 1500)
	for {
		n, src, err := conn.ReadFrom(buf)
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return net.ErrClosed
			}
			return fmt.Errorf("dhcp6: read: %w", err)
		}
		req, err := Unmarshal(buf[:n])
		if err != nil {
			continue
		}
		rep, err := srv.Handle(req)
		if err != nil || rep == nil {
			continue
		}
		if _, err := conn.WriteTo(rep.Marshal(), src); err != nil {
			if errors.Is(err, net.ErrClosed) {
				return net.ErrClosed
			}
			return fmt.Errorf("dhcp6: write: %w", err)
		}
	}
}

// Client performs requesting-router exchanges over a PacketConn.
type Client struct {
	Conn    net.PacketConn
	Server  net.Addr
	DUID    DUID
	Timeout time.Duration

	txn uint32
}

func (c *Client) exchange(req *Message) (*Message, error) {
	if _, err := c.Conn.WriteTo(req.Marshal(), c.Server); err != nil {
		return nil, fmt.Errorf("dhcp6: client write: %w", err)
	}
	timeout := c.Timeout
	if timeout <= 0 {
		timeout = 2 * time.Second
	}
	if err := c.Conn.SetReadDeadline(time.Now().Add(timeout)); err != nil {
		return nil, fmt.Errorf("dhcp6: set deadline: %w", err)
	}
	buf := make([]byte, 1500)
	for {
		n, _, err := c.Conn.ReadFrom(buf)
		if err != nil {
			return nil, fmt.Errorf("dhcp6: client read: %w", err)
		}
		rep, err := Unmarshal(buf[:n])
		if err != nil {
			continue
		}
		if rep.TxnID == req.TxnID {
			return rep, nil
		}
	}
}

// AcquirePD runs Solicit/Advertise/Request/Reply over the wire and returns
// the delegated prefix binding.
func (c *Client) AcquirePD() (Binding, error) {
	c.txn++
	adv, err := c.exchange(NewMessage(Solicit, c.txn, c.DUID))
	if err != nil {
		return Binding{}, err
	}
	if adv.Type != Advertise || len(adv.IAPDs) == 0 || len(adv.IAPDs[0].Prefixes) == 0 {
		return Binding{}, fmt.Errorf("dhcp6: no advertisement")
	}
	req := NewMessage(Request, c.txn, c.DUID)
	req.ServerID = adv.ServerID
	req.IAPDs = []IAPD{{IAID: adv.IAPDs[0].IAID, Prefixes: adv.IAPDs[0].Prefixes}}
	rep, err := c.exchange(req)
	if err != nil {
		return Binding{}, err
	}
	if rep.Type != Reply || len(rep.IAPDs) == 0 || len(rep.IAPDs[0].Prefixes) == 0 {
		return Binding{}, fmt.Errorf("dhcp6: request rejected")
	}
	p := rep.IAPDs[0].Prefixes[0]
	return Binding{Prefix: p.Prefix, Client: c.DUID.String(), Expiry: time.Now().Unix() + int64(p.Valid)}, nil
}
