package dhcp6

import (
	"net"
	"testing"
)

// TestClientExpiryMatchesServerClock pins the determinism fix from the
// dynalint audit: the client computes Binding.Expiry on the injected clock,
// matching the server's view exactly at any virtual epoch.
func TestClientExpiryMatchesServerClock(t *testing.T) {
	srv, clk := newTestServer(86400, true, 56)
	clk.t = 2_000_000

	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	done := make(chan error, 1)
	go func() { done <- Serve(pc, srv) }()

	cc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("client listen: %v", err)
	}
	defer cc.Close()
	cl := &Client{Conn: cc, Server: pc.LocalAddr(), DUID: duid(7), Clock: clk}

	b, err := cl.AcquirePD()
	if err != nil {
		t.Fatalf("AcquirePD: %v", err)
	}
	if want := clk.t + 86400; b.Expiry != want {
		t.Errorf("client binding expiry %d, want %d (virtual clock + valid lifetime)", b.Expiry, want)
	}

	pc.Close()
	if err := <-done; err != net.ErrClosed {
		t.Fatalf("Serve returned %v", err)
	}
	srvB, ok := srv.byClient[duid(7).String()]
	if !ok {
		t.Fatal("server lost the binding")
	}
	if srvB.Expiry != b.Expiry {
		t.Errorf("server expiry %d != client expiry %d", srvB.Expiry, b.Expiry)
	}
}
