package dhcp6

import (
	"bytes"
	"errors"
	"net/netip"
	"testing"
)

// TestRelayMessageWireRoundTrip: the RFC 8415 §9 relay codec preserves
// every header field and option through Marshal/UnmarshalRelay,
// including a nested Relay-forward layer.
func TestRelayMessageWireRoundTrip(t *testing.T) {
	inner := &RelayMessage{
		Type:        RelayForw,
		HopCount:    0,
		LinkAddr:    netip.IPv6Unspecified(),
		PeerAddr:    netip.MustParseAddr("fe80::1"),
		InterfaceID: []byte("olt3/port7"),
		Inner:       NewMessage(Solicit, 9, duid(3)).Marshal(),
	}
	outer := &RelayMessage{
		Type:        RelayForw,
		HopCount:    1,
		LinkAddr:    netip.IPv6Unspecified(),
		PeerAddr:    netip.IPv6Unspecified(),
		InterfaceID: []byte("agg1"),
		Inner:       inner.Marshal(),
	}

	wire := outer.Marshal()
	if !IsRelay(wire) {
		t.Fatal("IsRelay = false on a Relay-forward")
	}
	got, err := UnmarshalRelay(wire)
	if err != nil {
		t.Fatalf("UnmarshalRelay: %v", err)
	}
	if got.Type != RelayForw || got.HopCount != 1 {
		t.Errorf("outer header = %v/%d", got.Type, got.HopCount)
	}
	if string(got.InterfaceID) != "agg1" {
		t.Errorf("outer Interface-ID = %q", got.InterfaceID)
	}
	nested, err := UnmarshalRelay(got.Inner)
	if err != nil {
		t.Fatalf("nested UnmarshalRelay: %v", err)
	}
	if nested.PeerAddr != netip.MustParseAddr("fe80::1") || string(nested.InterfaceID) != "olt3/port7" {
		t.Errorf("nested layer = %+v", nested)
	}
	msg, err := Unmarshal(nested.Inner)
	if err != nil {
		t.Fatalf("innermost Unmarshal: %v", err)
	}
	if msg.Type != Solicit || msg.TxnID != 9 {
		t.Errorf("client message = %v/%d", msg.Type, msg.TxnID)
	}
	if !bytes.Equal(nested.Marshal(), inner.Marshal()) {
		t.Error("nested layer does not re-encode byte-identically")
	}

	if _, err := UnmarshalRelay(wire[:20]); err == nil {
		t.Error("UnmarshalRelay accepted a truncated header")
	}
	if _, err := UnmarshalRelay(NewMessage(Solicit, 1, duid(1)).Marshal()); err == nil {
		t.Error("UnmarshalRelay accepted a client message")
	}
}

// TestLDRAChainRapidCommit drives a rapid-commit solicit through a
// two-level LDRA aggregation, the server's recursive relay handling, and
// the reply unwrap — the wire path the BNG relay scenario exercises.
func TestLDRAChainRapidCommit(t *testing.T) {
	srv, _ := newTestServer(86400, true, 56)
	chain := NewLDRAChain("dslam0", 2)

	sol := NewMessage(Solicit, 0x31, duid(4))
	sol.RapidCommit = true
	rm, err := chain.Wrap(sol, netip.MustParseAddr("fe80::4"))
	if err != nil {
		t.Fatalf("Wrap: %v", err)
	}
	if rm.HopCount != 1 {
		t.Errorf("outer hop count = %d, want 1", rm.HopCount)
	}
	if rm.LinkAddr != netip.IPv6Unspecified() {
		t.Errorf("LDRA link-address = %v, want :: (RFC 6221 §5.3.1)", rm.LinkAddr)
	}

	onWire, err := UnmarshalRelay(rm.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := srv.HandleRelay(onWire)
	if err != nil {
		t.Fatalf("HandleRelay: %v", err)
	}
	if rep.Type != RelayRepl || rep.HopCount != rm.HopCount {
		t.Errorf("reply header = %v/%d", rep.Type, rep.HopCount)
	}
	if string(rep.InterfaceID) != string(rm.InterfaceID) {
		t.Errorf("reply Interface-ID %q not mirrored from %q", rep.InterfaceID, rm.InterfaceID)
	}

	msg, err := chain.Unwrap(rep)
	if err != nil {
		t.Fatalf("Unwrap: %v", err)
	}
	if msg.Type != Reply || !msg.RapidCommit {
		t.Fatalf("unwrapped = %v (rapid=%v)", msg.Type, msg.RapidCommit)
	}
	if len(msg.IAPDs) != 1 || len(msg.IAPDs[0].Prefixes) != 1 {
		t.Fatalf("no delegation through the relay path: %+v", msg.IAPDs)
	}
	if srv.ActiveBindings() != 1 {
		t.Errorf("ActiveBindings = %d, want 1", srv.ActiveBindings())
	}
}

// TestLDRAHopLimit: HOP_COUNT_LIMIT (8) bounds the aggregation depth.
func TestLDRAHopLimit(t *testing.T) {
	sol := NewMessage(Solicit, 1, duid(5))
	if _, err := NewLDRAChain("deep", 8).Wrap(sol, netip.IPv6Unspecified()); err != nil {
		t.Errorf("8-level chain refused: %v", err)
	}
	if _, err := NewLDRAChain("deeper", 9).Wrap(sol, netip.IPv6Unspecified()); !errors.Is(err, ErrHopLimit) {
		t.Errorf("9-level chain error = %v, want ErrHopLimit", err)
	}
}

// TestLDRAValidation: replies only decapsulate at the LDRA whose
// Interface-ID they carry, and only Relay-reply messages decapsulate.
func TestLDRAValidation(t *testing.T) {
	srv, _ := newTestServer(86400, true, 56)
	chain := NewLDRAChain("a", 2)

	sol := NewMessage(Solicit, 2, duid(6))
	sol.RapidCommit = true
	rm, err := chain.Wrap(sol, netip.IPv6Unspecified())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := chain[0].Decapsulate(rm); err == nil {
		t.Error("Decapsulate accepted a Relay-forward")
	}

	rep, err := srv.HandleRelay(rm)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewLDRAChain("b", 2).Unwrap(rep); err == nil {
		t.Error("Unwrap accepted a reply for a different aggregation path")
	}
	if _, err := LDRAChain(nil).Unwrap(rep); err == nil {
		t.Error("empty chain unwrapped a nested reply")
	}
	if _, err := chain.Unwrap(rep); err != nil {
		t.Errorf("matching chain failed to unwrap: %v", err)
	}

	if _, err := srv.HandleRelay(rep); err == nil {
		t.Error("HandleRelay accepted a Relay-reply")
	}
}

// FuzzRelayMessage: arbitrary bytes through the relay codec must never
// panic, and valid parses must re-encode parseably.
func FuzzRelayMessage(f *testing.F) {
	sol := NewMessage(Solicit, 3, duid(7))
	rm, _ := NewLDRAChain("fz", 2).Wrap(sol, netip.MustParseAddr("fe80::7"))
	f.Add(rm.Marshal())
	f.Add(rm.Inner)
	f.Add([]byte{byte(RelayForw)})
	f.Fuzz(func(t *testing.T, b []byte) {
		m, err := UnmarshalRelay(b)
		if err != nil {
			return
		}
		if _, err := UnmarshalRelay(m.Marshal()); err != nil {
			t.Fatalf("re-encode of a valid parse failed: %v", err)
		}
	})
}
