package faultnet

import (
	"net"
	"sync"
)

// Conn wraps a net.PacketConn, applying the profile's faults to outgoing
// datagrams: drops are swallowed (the write still reports success, as a
// lossy network does), duplicates are written twice, and delay/reorder
// hold the datagram back until the next write. Every decision comes from
// the deterministic stream, so a given (profile, seed) produces the same
// fault schedule for the same write sequence. Payload bytes are copied on
// hold and never modified: the wrapper reorders or discards whole
// datagrams but cannot corrupt, truncate, or invent bytes (FuzzReorder
// asserts this).
//
// Reads pass through untouched; to fault both directions of a wire
// exchange, wrap both endpoints' conns.
type Conn struct {
	net.PacketConn

	mu   sync.Mutex
	prof Profile
	s    *Stream
	held []heldPacket
}

type heldPacket struct {
	payload []byte
	addr    net.Addr
}

// WrapConn builds the fault-injecting wrapper around inner.
func WrapConn(inner net.PacketConn, prof Profile, seed uint64) *Conn {
	return &Conn{PacketConn: inner, prof: prof, s: NewStream(seed, 0)}
}

// WriteTo applies the fault schedule to one outgoing datagram. It always
// reports the full payload length on success paths: a dropped datagram
// looks sent, as on a real lossy network.
func (c *Conn) WriteTo(b []byte, addr net.Addr) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.s.bernoulli(c.prof.Drop) {
		return len(b), c.flushHeld()
	}
	copies := 1
	if c.s.bernoulli(c.prof.Dup) {
		copies = 2
	}
	// Delay on a real socket has no virtual clock to wait on; both delay
	// and reorder are realized by holding the datagram until after the
	// next write.
	hold := c.s.bernoulli(c.prof.Reorder) || c.s.delayMS(c.prof) > 0
	if hold {
		// Hold this datagram one write slot and release the previously
		// held ones now, so no packet stalls more than one slot even
		// when every write draws a hold.
		prev := c.held
		c.held = nil
		for i := 0; i < copies; i++ {
			c.held = append(c.held, heldPacket{payload: append([]byte(nil), b...), addr: addr})
		}
		for _, h := range prev {
			if _, err := c.PacketConn.WriteTo(h.payload, h.addr); err != nil {
				return 0, err
			}
		}
		return len(b), nil
	}
	// Write the current datagram first, then the held ones: a held
	// packet overtaken by this write is the observable reordering.
	for i := 0; i < copies; i++ {
		if _, err := c.PacketConn.WriteTo(b, addr); err != nil {
			return 0, err
		}
	}
	return len(b), c.flushHeld()
}

// flushHeld transmits every held-back datagram, oldest first. Callers
// hold c.mu.
func (c *Conn) flushHeld() error {
	for _, h := range c.held {
		if _, err := c.PacketConn.WriteTo(h.payload, h.addr); err != nil {
			c.held = nil
			return err
		}
	}
	c.held = nil
	return nil
}

// Close discards any held datagrams (they were still "in flight") and
// closes the inner conn.
func (c *Conn) Close() error {
	c.mu.Lock()
	c.held = nil
	c.mu.Unlock()
	return c.PacketConn.Close()
}
