package faultnet

import (
	"net"
	"reflect"
	"strings"
	"testing"
	"time"
)

func TestStreamDeterminism(t *testing.T) {
	a := NewStream(42, 7)
	b := NewStream(42, 7)
	for i := 0; i < 1000; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("draw %d: streams diverged (%d vs %d)", i, av, bv)
		}
	}
	c := NewStream(42, 8)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("distinct ids collided on %d of 1000 draws", same)
	}
}

func TestStreamRanges(t *testing.T) {
	s := NewStream(1, 0)
	for i := 0; i < 10000; i++ {
		if f := s.Float64(); f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
		if n := s.IntN(7); n < 0 || n >= 7 {
			t.Fatalf("IntN(7) out of range: %d", n)
		}
	}
}

func TestParseProfile(t *testing.T) {
	cases := []struct {
		in   string
		want Profile
	}{
		{"", Profile{}},
		{"drop=0.1", Profile{Drop: 0.1}},
		{"drop=0.1,dup=0.02,delay=0.05:200-1500,reorder=0.01",
			Profile{Drop: 0.1, Dup: 0.02, Delay: 0.05, DelayMinMS: 200, DelayMaxMS: 1500, Reorder: 0.01}},
		{"delay=0.5", Profile{Delay: 0.5, DelayMinMS: 0, DelayMaxMS: 1000}},
		{" drop=0.3 , reorder=1 ", Profile{Drop: 0.3, Reorder: 1}},
	}
	for _, c := range cases {
		got, err := ParseProfile(c.in)
		if err != nil {
			t.Fatalf("ParseProfile(%q): %v", c.in, err)
		}
		if got != c.want {
			t.Fatalf("ParseProfile(%q) = %+v, want %+v", c.in, got, c.want)
		}
	}
}

func TestParseProfileErrors(t *testing.T) {
	for _, in := range []string{
		"drop",             // no key=value
		"drop=x",           // not a float
		"drop=1.5",         // outside [0,1]
		"drop=-0.1",        // outside [0,1]
		"delay=0.1:5",      // bounds missing the dash
		"delay=0.1:9-2",    // inverted bounds
		"delay=0.1:-5-2",   // negative minimum
		"delay=0.1:a-b",    // non-numeric bounds
		"jitter=0.1",       // unknown key
		"drop=0.1,,dup=.2", // empty field
	} {
		if _, err := ParseProfile(in); err == nil {
			t.Errorf("ParseProfile(%q) succeeded, want error", in)
		}
	}
}

func TestProfileStringRoundtrip(t *testing.T) {
	p := Profile{Drop: 0.1, Dup: 0.02, Delay: 0.05, DelayMinMS: 200, DelayMaxMS: 1500, Reorder: 0.01}
	back, err := ParseProfile(p.String())
	if err != nil {
		t.Fatalf("reparsing %q: %v", p.String(), err)
	}
	if back != p {
		t.Fatalf("roundtrip %q = %+v, want %+v", p.String(), back, p)
	}
	if s := (Profile{}).String(); s != "" {
		t.Fatalf("zero profile renders %q, want empty", s)
	}
}

// fixedRT yields a fixed wait forever, or gives up after maxSends.
type fixedRT struct {
	wait     int64
	sent     int
	maxSends int
}

func (r *fixedRT) Next() (int64, bool) {
	r.sent++
	return r.wait, r.maxSends == 0 || r.sent < r.maxSends
}

func TestExchangeZeroProfile(t *testing.T) {
	l := NewLink(Profile{}, 1, 0)
	calls := 0
	v := l.Exchange(5_000, &fixedRT{wait: 4000, maxSends: 5}, func(int) { calls++ })
	if !v.OK || v.DoneMS != 5_000 || v.Sends != 1 || v.Delivered != 1 || calls != 1 {
		t.Fatalf("zero-profile exchange: %+v (deliver calls %d)", v, calls)
	}
	// A zero profile must consume no stream state: the next draws from
	// every stream match a fresh link's.
	fresh := NewLink(Profile{}, 1, 0)
	if l.up.Uint64() != fresh.up.Uint64() || l.down.Uint64() != fresh.down.Uint64() {
		t.Fatal("zero-profile exchange consumed fault-stream draws")
	}
}

func TestExchangeAllDropped(t *testing.T) {
	l := NewLink(Profile{Drop: 1}, 1, 0)
	calls := 0
	v := l.Exchange(0, &fixedRT{wait: 4000, maxSends: 5}, func(int) { calls++ })
	if v.OK || v.Delivered != 0 || calls != 0 {
		t.Fatalf("drop=1 exchange delivered: %+v (calls %d)", v, calls)
	}
	if v.Sends != 5 || v.DoneMS != 5*4000 {
		t.Fatalf("drop=1 exchange: want 5 sends giving up at 20000, got %+v", v)
	}
}

func TestExchangeDuplicates(t *testing.T) {
	l := NewLink(Profile{Dup: 1}, 1, 0)
	copies := []int{}
	v := l.Exchange(0, &fixedRT{wait: 4000, maxSends: 5}, func(c int) { copies = append(copies, c) })
	if !v.OK || v.Sends != 1 || v.Delivered != 2 {
		t.Fatalf("dup=1 exchange: %+v", v)
	}
	if !reflect.DeepEqual(copies, []int{0, 1}) {
		t.Fatalf("dup=1 deliver copies = %v", copies)
	}
}

func TestExchangeDelay(t *testing.T) {
	l := NewLink(Profile{Delay: 1, DelayMinMS: 10, DelayMaxMS: 10}, 1, 0)
	v := l.Exchange(100, &fixedRT{wait: 4000, maxSends: 5}, nil)
	if !v.OK || v.DoneMS != 120 {
		t.Fatalf("delayed exchange: want arrival at 120 (10 up + 10 down), got %+v", v)
	}
}

func TestExchangeDelayBeyondWaitRetransmits(t *testing.T) {
	// A reply slower than the first wait forces a retransmission; the
	// client still accepts the earliest arrival.
	l := NewLink(Profile{Delay: 1, DelayMinMS: 5000, DelayMaxMS: 5000}, 1, 0)
	v := l.Exchange(0, &fixedRT{wait: 4000, maxSends: 5}, nil)
	if !v.OK || v.Sends < 2 {
		t.Fatalf("slow-reply exchange: %+v", v)
	}
	if v.DoneMS != 10_000 { // first send at 0 arrives at 10000 (5s up + 5s down)
		t.Fatalf("slow-reply exchange arrived at %d, want 10000", v.DoneMS)
	}
}

func TestExchangeDeterminism(t *testing.T) {
	run := func() []Verdict {
		l := NewLink(Profile{Drop: 0.5, Dup: 0.2, Delay: 0.3, DelayMinMS: 1, DelayMaxMS: 2000}, 99, 3)
		var vs []Verdict
		now := int64(0)
		for i := 0; i < 200; i++ {
			v := l.Exchange(now, &fixedRT{wait: 4000, maxSends: 5}, nil)
			now = v.DoneMS
			vs = append(vs, v)
		}
		return vs
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatal("identical seeds produced different exchange schedules")
	}
	ok := 0
	for _, v := range a {
		if v.OK {
			ok++
		}
	}
	if ok == 0 || ok == len(a) {
		t.Fatalf("50%% loss produced degenerate outcome: %d/%d exchanges ok", ok, len(a))
	}
}

// memConn is an in-memory PacketConn capturing writes.
type memConn struct {
	writes [][]byte
	closed bool
}

type memAddr struct{}

func (memAddr) Network() string { return "mem" }
func (memAddr) String() string  { return "mem" }

func (m *memConn) ReadFrom(p []byte) (int, net.Addr, error) { select {} }
func (m *memConn) WriteTo(p []byte, addr net.Addr) (int, error) {
	m.writes = append(m.writes, append([]byte(nil), p...))
	return len(p), nil
}
func (m *memConn) Close() error                       { m.closed = true; return nil }
func (m *memConn) LocalAddr() net.Addr                { return memAddr{} }
func (m *memConn) SetDeadline(t time.Time) error      { return nil }
func (m *memConn) SetReadDeadline(t time.Time) error  { return nil }
func (m *memConn) SetWriteDeadline(t time.Time) error { return nil }

func TestConnDropAndDup(t *testing.T) {
	inner := &memConn{}
	c := WrapConn(inner, Profile{Drop: 1}, 1)
	if n, err := c.WriteTo([]byte("abc"), memAddr{}); err != nil || n != 3 {
		t.Fatalf("dropped write reported (%d, %v)", n, err)
	}
	if len(inner.writes) != 0 {
		t.Fatalf("drop=1 leaked %d writes", len(inner.writes))
	}

	inner = &memConn{}
	c = WrapConn(inner, Profile{Dup: 1}, 1)
	if _, err := c.WriteTo([]byte("abc"), memAddr{}); err != nil {
		t.Fatal(err)
	}
	if len(inner.writes) != 2 || string(inner.writes[0]) != "abc" || string(inner.writes[1]) != "abc" {
		t.Fatalf("dup=1 wrote %q", inner.writes)
	}
}

func TestConnReorderSwapsAndPreservesBytes(t *testing.T) {
	// Scan seeds for a hold/no-hold pattern on two writes; that seed's
	// wrapper must emit them swapped, byte-identical.
	for seed := uint64(0); seed < 1000; seed++ {
		inner := &memConn{}
		c := WrapConn(inner, Profile{Reorder: 0.5}, seed)
		c.WriteTo([]byte("first"), memAddr{})
		c.WriteTo([]byte("second"), memAddr{})
		if len(inner.writes) == 2 && string(inner.writes[0]) == "second" {
			if string(inner.writes[1]) != "first" {
				t.Fatalf("seed %d: reorder corrupted payload: %q", seed, inner.writes)
			}
			return
		}
	}
	t.Fatal("no seed in [0,1000) produced a swap at reorder=0.5")
}

func TestConnHeldPacketReleasedNextWrite(t *testing.T) {
	inner := &memConn{}
	c := WrapConn(inner, Profile{Reorder: 1}, 1)
	c.WriteTo([]byte("a"), memAddr{})
	if len(inner.writes) != 0 {
		t.Fatalf("held packet escaped immediately: %q", inner.writes)
	}
	c.WriteTo([]byte("b"), memAddr{})
	c.WriteTo([]byte("c"), memAddr{})
	// Every write held: each released at the following write.
	if len(inner.writes) != 2 || string(inner.writes[0]) != "a" || string(inner.writes[1]) != "b" {
		t.Fatalf("reorder=1 emitted %q, want [a b]", inner.writes)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if !inner.closed || len(inner.writes) != 2 {
		t.Fatalf("Close must discard held packets (closed=%v writes=%q)", inner.closed, inner.writes)
	}
}

// TestParseProfileGarbage: truncated and garbage specifications must
// return an error — never panic, never yield an invalid profile.
func TestParseProfileGarbage(t *testing.T) {
	for _, in := range []string{
		"\x00\x01\xff",                       // binary garbage
		"drop=0.1,dup",                       // truncated trailing field
		"drop=0.1,dup=",                      // empty value
		"=0.5",                               // empty key
		"drop=NaN",                           // NaN sneaks past range checks without the explicit test
		"dup=+Inf",                           // infinity
		"delay=0.1:",                         // bounds separator with nothing after
		"delay=0.1:5-",                       // half a bound
		"delay=0.1:999999999999999999999-5",  // overflowing int64
		"drop=1e999",                         // overflowing float64
		"drop==0.1",                          // doubled separator
		strings.Repeat("drop=0.1,", 3) + "q", // junk tail
	} {
		p, err := ParseProfile(in)
		if err == nil {
			t.Errorf("ParseProfile(%q) = %+v, want error", in, p)
		}
	}
}
