// Package faultnet injects deterministic network faults into the
// assignment plane. The paper attributes a large share of observed
// reassignments to outages and measurement gaps (§2.2, Appendix A.1);
// this package supplies the lossy-network scenario those code paths need:
// datagrams are dropped, duplicated, and delayed according to a per-link
// FaultProfile whose every decision comes from a seeded SplitMix64 stream
// and the simulation's virtual clock — never wall time and never a shared
// RNG — so identical seeds yield identical fault schedules regardless of
// worker count.
//
// Two transports are provided. Link is the in-memory fast path the
// internal/isp simulator drives: Exchange replays one request/reply
// datagram exchange, including the client's RFC retransmission schedule,
// entirely in virtual milliseconds. Conn wraps a real net.PacketConn for
// wire-level integration tests.
package faultnet

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Profile configures the faults one link injects, all probabilities per
// datagram. The zero value is a perfect network: every datagram is
// delivered immediately, and no stream state is consumed deciding so.
type Profile struct {
	// Drop is the probability a datagram is lost.
	Drop float64
	// Dup is the probability a delivered datagram arrives twice.
	Dup float64
	// Delay is the probability a delivered datagram is delayed by a
	// uniform draw from [DelayMinMS, DelayMaxMS] virtual milliseconds.
	Delay                  float64
	DelayMinMS, DelayMaxMS int64
	// Reorder is the probability the Conn wrapper holds a datagram back
	// and transmits it after the next write (on a real socket, delay is
	// realized as reordering; Link models true virtual-time delay).
	Reorder float64
}

// Zero reports whether the profile injects no faults at all.
func (p Profile) Zero() bool {
	return p.Drop <= 0 && p.Dup <= 0 && p.Delay <= 0 && p.Reorder <= 0
}

// Validate rejects probabilities outside [0,1] and inverted delay bounds.
func (p Profile) Validate() error {
	for _, f := range []struct {
		name string
		v    float64
	}{{"drop", p.Drop}, {"dup", p.Dup}, {"delay", p.Delay}, {"reorder", p.Reorder}} {
		if f.v < 0 || f.v > 1 || math.IsNaN(f.v) {
			return fmt.Errorf("faultnet: %s probability %v outside [0,1]", f.name, f.v)
		}
	}
	if p.DelayMinMS < 0 || p.DelayMaxMS < p.DelayMinMS {
		return fmt.Errorf("faultnet: delay bounds [%d,%d] ms invalid", p.DelayMinMS, p.DelayMaxMS)
	}
	return nil
}

// ParseProfile parses the CLI fault specification: comma-separated
// key=value fields, e.g. "drop=0.1,dup=0.02,delay=0.05:200-1500,reorder=0.01".
// The delay value is "prob" or "prob:minms-maxms".
func ParseProfile(s string) (Profile, error) {
	var p Profile
	if strings.TrimSpace(s) == "" {
		return p, nil
	}
	for _, field := range strings.Split(s, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(field), "=")
		if !ok {
			return Profile{}, fmt.Errorf("faultnet: field %q is not key=value", field)
		}
		switch key {
		case "drop", "dup", "reorder":
			f, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return Profile{}, fmt.Errorf("faultnet: %s=%q: %w", key, val, err)
			}
			switch key {
			case "drop":
				p.Drop = f
			case "dup":
				p.Dup = f
			default:
				p.Reorder = f
			}
		case "delay":
			prob, bounds, hasBounds := strings.Cut(val, ":")
			f, err := strconv.ParseFloat(prob, 64)
			if err != nil {
				return Profile{}, fmt.Errorf("faultnet: delay=%q: %w", val, err)
			}
			p.Delay = f
			p.DelayMinMS, p.DelayMaxMS = 0, 1000
			if hasBounds {
				lo, hi, ok := strings.Cut(bounds, "-")
				if !ok {
					return Profile{}, fmt.Errorf("faultnet: delay bounds %q want minms-maxms", bounds)
				}
				if p.DelayMinMS, err = strconv.ParseInt(lo, 10, 64); err != nil {
					return Profile{}, fmt.Errorf("faultnet: delay min %q: %w", lo, err)
				}
				if p.DelayMaxMS, err = strconv.ParseInt(hi, 10, 64); err != nil {
					return Profile{}, fmt.Errorf("faultnet: delay max %q: %w", hi, err)
				}
			}
		default:
			return Profile{}, fmt.Errorf("faultnet: unknown field %q (have drop, dup, delay, reorder)", key)
		}
	}
	if err := p.Validate(); err != nil {
		return Profile{}, err
	}
	return p, nil
}

// String renders the profile in ParseProfile's format, fields in a fixed
// order with zero fields omitted.
func (p Profile) String() string {
	var fields []string
	if p.Drop > 0 {
		fields = append(fields, "drop="+trimFloat(p.Drop))
	}
	if p.Dup > 0 {
		fields = append(fields, "dup="+trimFloat(p.Dup))
	}
	if p.Delay > 0 {
		fields = append(fields, fmt.Sprintf("delay=%s:%d-%d", trimFloat(p.Delay), p.DelayMinMS, p.DelayMaxMS))
	}
	if p.Reorder > 0 {
		fields = append(fields, "reorder="+trimFloat(p.Reorder))
	}
	sort.Strings(fields) // already ordered; keeps output canonical regardless
	return strings.Join(fields, ",")
}

func trimFloat(f float64) string { return strconv.FormatFloat(f, 'g', -1, 64) }

// gamma is 2^64/φ, the SplitMix64 increment; it also spreads link ids
// drawn from one seed across the state space (as in cdn's operatorSeed).
const gamma = 0x9E3779B97F4A7C15

// Stream is one deterministic fault-decision sequence: a SplitMix64
// generator seeded from (seed, id). Each link direction owns a Stream, so
// no link's schedule depends on any other link's traffic — the property
// that makes fault injection invariant under the pipeline's worker count.
type Stream struct {
	x uint64
}

// NewStream derives the (seed, id) stream.
func NewStream(seed, id uint64) *Stream {
	return &Stream{x: seed + (id+1)*gamma}
}

// Uint64 advances the stream (SplitMix64 output function).
func (s *Stream) Uint64() uint64 {
	s.x += gamma
	z := s.x
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Float64 draws uniformly from [0,1).
func (s *Stream) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// IntN draws uniformly from [0,n); n must be positive.
func (s *Stream) IntN(n int64) int64 {
	if n <= 0 {
		panic("faultnet: IntN on non-positive n")
	}
	return int64(s.Uint64() % uint64(n))
}

// bernoulli draws a biased coin. Degenerate probabilities consume no
// stream state, so a zero profile never advances its streams: the
// fault path with an all-zero profile replays the fault-free schedule
// exactly.
func (s *Stream) bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return s.Float64() < p
}

// delayMS draws one delay decision: 0 when the datagram is not delayed.
func (s *Stream) delayMS(p Profile) int64 {
	if !s.bernoulli(p.Delay) {
		return 0
	}
	if p.DelayMaxMS <= p.DelayMinMS {
		return p.DelayMinMS
	}
	return p.DelayMinMS + s.IntN(p.DelayMaxMS-p.DelayMinMS+1)
}

// Retransmitter paces a client's retransmissions. Next returns the wait
// in virtual milliseconds after the upcoming transmission and whether a
// further transmission may follow it; ok=false means the returned wait is
// the final timeout, after which the client gives up (RFC 2131 §4.1's
// 64 s ceiling, RFC 8415 §15's MRC/MRD). internal/dhcp4, internal/dhcp6,
// and internal/radius provide the RFC implementations.
type Retransmitter interface {
	Next() (waitMS int64, ok bool)
}

// LinkStats are a link's lifetime fault-event totals, the raw material
// for the pipeline's fault counters. All fields are plain sums, so
// per-link stats aggregate commutatively into per-AS and per-run totals
// that are invariant under worker count.
type LinkStats struct {
	// Exchanges counts Exchange calls; Failed counts those where the
	// client gave up without a reply.
	Exchanges, Failed int64
	// Sends counts client transmissions; Retransmits is Sends minus
	// first transmissions.
	Sends, Retransmits int64
	// Delivered counts request copies that reached the server;
	// Duplicates counts the dup-injected extras among them.
	Delivered, Duplicates int64
	// RelayDrops counts datagrams (requests or replies) lost on a relay
	// hop rather than the access link itself.
	RelayDrops int64
}

// Add accumulates o into s.
func (s *LinkStats) Add(o LinkStats) {
	s.Exchanges += o.Exchanges
	s.Failed += o.Failed
	s.Sends += o.Sends
	s.Retransmits += o.Retransmits
	s.Delivered += o.Delivered
	s.Duplicates += o.Duplicates
	s.RelayDrops += o.RelayDrops
}

// Link is one client↔server path with independent per-direction fault
// streams plus a client-side stream for retransmission jitter and
// transaction identifiers. A relay topology (NewRelayLink) adds
// aggregation hops between the access link and the server, each with its
// own per-direction streams.
type Link struct {
	prof             Profile
	up, down, client *Stream
	stats            LinkStats

	// relayProf/relayUp/relayDown model the relay hops. Empty slices
	// (plain NewLink) consume no stream state, so a hop-free link
	// replays the original schedule exactly.
	relayProf          Profile
	relayUp, relayDown []*Stream
}

// NewLink builds the link for (seed, id). Distinct ids yield uncorrelated
// fault schedules from the same seed.
func NewLink(prof Profile, seed, id uint64) *Link {
	return &Link{
		prof:   prof,
		up:     NewStream(seed, 3*id),
		down:   NewStream(seed, 3*id+1),
		client: NewStream(seed, 3*id+2),
	}
}

// relayStreamBase offsets relay-hop stream ids away from the 3*id space
// NewLink draws from, so adding hops never shifts an access link's
// schedule.
const relayStreamBase = 1 << 62

// NewRelayLink builds a link whose datagrams additionally traverse hops
// relay hops (a DHCPv4 relay chain or DHCPv6 LDRA aggregation path)
// between the access link and the server. Each hop applies relayProf
// independently in both directions from its own (seed, id)-derived
// streams; the access link keeps the exact schedule NewLink(prof, seed,
// id) would produce. hops <= 0 yields a plain link.
func NewRelayLink(prof, relayProf Profile, seed, id uint64, hops int) *Link {
	l := NewLink(prof, seed, id)
	l.relayProf = relayProf
	for h := 0; h < hops; h++ {
		l.relayUp = append(l.relayUp, NewStream(seed, relayStreamBase+2*uint64(hops)*id+2*uint64(h)))
		l.relayDown = append(l.relayDown, NewStream(seed, relayStreamBase+2*uint64(hops)*id+2*uint64(h)+1))
	}
	return l
}

// Hops returns the number of relay hops on the link.
func (l *Link) Hops() int { return len(l.relayUp) }

// crossRelay traverses the relay chain in one direction, returning the
// accumulated hop delay and whether the datagram survived every hop.
func (l *Link) crossRelay(streams []*Stream) (delayMS int64, ok bool) {
	for _, st := range streams {
		if st.bernoulli(l.relayProf.Drop) {
			l.stats.RelayDrops++
			return 0, false
		}
		delayMS += st.delayMS(l.relayProf)
	}
	return delayMS, true
}

// Client returns the link's client-side stream, the deterministic source
// for retransmission jitter and message identifiers.
func (l *Link) Client() *Stream { return l.client }

// Stats returns the link's accumulated fault-event totals.
func (l *Link) Stats() LinkStats { return l.stats }

// Verdict summarizes one simulated request/reply exchange.
type Verdict struct {
	// OK reports whether a reply reached the client before it gave up.
	OK bool
	// DoneMS is the virtual millisecond the winning reply arrived, or
	// the give-up time when OK is false.
	DoneMS int64
	// Sends counts client transmissions (first send plus retransmits).
	Sends int
	// Delivered counts request copies that reached the server,
	// duplicates included.
	Delivered int
}

// Exchange replays one request/reply exchange starting at virtual time
// nowMS: the client transmits, the uplink may drop/duplicate/delay each
// copy, every copy that survives is handed to deliver (the server's
// Handle — duplicate deliveries are how RADIUS duplicate detection gets
// exercised), and each reply independently crosses the downlink. The
// client accepts the earliest surviving reply and stops retransmitting;
// replies arriving after give-up are discarded, exactly the late-reply
// dedup the wire clients perform by transaction id. deliver may be nil
// when only the timing verdict matters.
func (l *Link) Exchange(nowMS int64, rt Retransmitter, deliver func(copy int)) Verdict {
	const never = int64(math.MaxInt64)
	v := Verdict{DoneMS: nowMS}
	t := nowMS
	best := never
	defer func() {
		l.stats.Exchanges++
		l.stats.Sends += int64(v.Sends)
		l.stats.Retransmits += int64(v.Sends - 1)
		l.stats.Delivered += int64(v.Delivered)
		if !v.OK {
			l.stats.Failed++
		}
	}()
	for {
		v.Sends++
		if !l.up.bernoulli(l.prof.Drop) {
			copies := 1
			if l.up.bernoulli(l.prof.Dup) {
				copies = 2
				l.stats.Duplicates++
			}
			for c := 0; c < copies; c++ {
				upDelay := l.up.delayMS(l.prof)
				relayUpDelay, survived := l.crossRelay(l.relayUp)
				if !survived {
					continue // request lost on a relay hop
				}
				if deliver != nil {
					deliver(c)
				}
				v.Delivered++
				relayDownDelay, survived := l.crossRelay(l.relayDown)
				if !survived {
					continue // reply lost on a relay hop
				}
				if l.down.bernoulli(l.prof.Drop) {
					continue // reply lost on the way back
				}
				if arrival := t + upDelay + relayUpDelay + relayDownDelay + l.down.delayMS(l.prof); arrival < best {
					best = arrival
				}
			}
		}
		wait, more := rt.Next()
		if best <= t+wait {
			v.OK = true
			v.DoneMS = best
			return v
		}
		t += wait
		if !more {
			v.DoneMS = t
			return v
		}
	}
}
