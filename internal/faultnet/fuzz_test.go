package faultnet

import (
	"bytes"
	"net"
	"testing"
	"time"
)

// FuzzParseProfile asserts the CLI parser never panics, that every
// accepted profile validates, and that accepted profiles survive a
// String/Parse roundtrip.
func FuzzParseProfile(f *testing.F) {
	f.Add("")
	f.Add("drop=0.1")
	f.Add("drop=0.1,dup=0.02,delay=0.05:200-1500,reorder=0.01")
	f.Add("delay=1:0-0")
	f.Add("drop=1e-3,reorder=0.999")
	f.Add("drop=NaN")
	f.Add("delay=0.1:9-2")
	f.Add("=,=,=")
	f.Fuzz(func(t *testing.T, s string) {
		p, err := ParseProfile(s)
		if err != nil {
			return
		}
		if verr := p.Validate(); verr != nil {
			t.Fatalf("ParseProfile(%q) accepted an invalid profile %+v: %v", s, p, verr)
		}
		back, err := ParseProfile(p.String())
		if err != nil {
			t.Fatalf("reparsing String() of %+v (%q): %v", p, p.String(), err)
		}
		// Delay bounds are only meaningful with Delay > 0 (String omits
		// them otherwise), so compare what the wire behavior depends on.
		if p.Delay <= 0 {
			back.DelayMinMS, back.DelayMaxMS = p.DelayMinMS, p.DelayMaxMS
		}
		if back != p {
			t.Fatalf("roundtrip of %q: %+v != %+v", s, back, p)
		}
	})
}

// sink captures every datagram the wrapper lets through.
type sink struct {
	writes [][]byte
}

type sinkAddr struct{}

func (sinkAddr) Network() string { return "sink" }
func (sinkAddr) String() string  { return "sink" }

func (s *sink) ReadFrom(p []byte) (int, net.Addr, error) { select {} }
func (s *sink) WriteTo(p []byte, addr net.Addr) (int, error) {
	s.writes = append(s.writes, append([]byte(nil), p...))
	return len(p), nil
}
func (s *sink) Close() error                       { return nil }
func (s *sink) LocalAddr() net.Addr                { return sinkAddr{} }
func (s *sink) SetDeadline(t time.Time) error      { return nil }
func (s *sink) SetReadDeadline(t time.Time) error  { return nil }
func (s *sink) SetWriteDeadline(t time.Time) error { return nil }

// FuzzReorder drives the fault-injecting wrapper with arbitrary payloads
// and fault probabilities and asserts the invariant the package promises:
// the wrapper drops, duplicates, and reorders whole datagrams but never
// corrupts, truncates, or invents payload bytes — every delivered
// datagram is byte-identical to one that was written, at most two copies
// of any write are delivered, and reported write sizes are always the
// full payload length.
func FuzzReorder(f *testing.F) {
	f.Add(uint64(1), 0.0, 0.0, 0.0, []byte("hello"), []byte("world"), []byte("!"))
	f.Add(uint64(2), 0.5, 0.5, 0.5, []byte{0, 1, 2}, []byte{}, []byte{0xff})
	f.Add(uint64(3), 1.0, 0.0, 1.0, []byte("aa"), []byte("aa"), []byte("ab"))
	f.Fuzz(func(t *testing.T, seed uint64, drop, dup, reorder float64, p1, p2, p3 []byte) {
		prof := Profile{Drop: clamp01(drop), Dup: clamp01(dup), Reorder: clamp01(reorder)}
		inner := &sink{}
		c := WrapConn(inner, prof, seed)
		written := [][]byte{p1, p2, p3}
		for _, p := range written {
			n, err := c.WriteTo(p, sinkAddr{})
			if err != nil {
				t.Fatalf("WriteTo: %v", err)
			}
			if n != len(p) {
				t.Fatalf("WriteTo reported %d of %d bytes", n, len(p))
			}
		}
		if err := c.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
		if len(inner.writes) > 2*len(written) {
			t.Fatalf("delivered %d datagrams from %d writes", len(inner.writes), len(written))
		}
		// Each delivered datagram must be one of the written payloads,
		// and no payload may be delivered more than twice.
		for _, got := range inner.writes {
			copies, matched := 0, false
			for _, w := range written {
				if bytes.Equal(got, w) {
					matched = true
				}
			}
			if !matched {
				t.Fatalf("wrapper invented datagram %q (writes %q)", got, written)
			}
			for _, other := range inner.writes {
				if bytes.Equal(got, other) {
					copies++
				}
			}
			// Identical payloads may legitimately stack, but never past
			// two copies per write of that payload.
			limit := 0
			for _, w := range written {
				if bytes.Equal(got, w) {
					limit += 2
				}
			}
			if copies > limit {
				t.Fatalf("payload %q delivered %d times (limit %d)", got, copies, limit)
			}
		}
	})
}

func clamp01(f float64) float64 {
	if f != f || f < 0 {
		return 0
	}
	if f > 1 {
		return 1
	}
	return f
}
