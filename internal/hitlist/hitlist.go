// Package hitlist implements the paper's active-probing application (§6):
// curating a list of viable IPv6 measurement targets under address churn.
// Targets expire on the per-AS timescale the duration analysis measured;
// expired targets are rescanned inside the per-AS structure (pool
// boundary + subscriber delegation length) the spatial analysis inferred,
// instead of the whole announced space.
package hitlist

import (
	"fmt"
	"net/netip"
	"sort"

	"dynamips/internal/bgp"
	"dynamips/internal/core"
	"dynamips/internal/netutil"
	"dynamips/internal/stats"
)

// Structure is the learned addressing structure of one AS, produced by
// the core analyses.
type Structure struct {
	ASN uint32
	// PoolLen is the dynamic-pool boundary (core.InferPoolBoundary).
	PoolLen int
	// SubscriberLen is the delegated-prefix length
	// (core.SubscriberLengths).
	SubscriberLen int
	// Aligned marks CPE populations that announce delegation-aligned
	// /64s (false when scrambling is common).
	Aligned bool
	// ExpectedLifetimeHours is how long a /64 stays assigned at the
	// chosen confidence (a quantile of the AS's v6 duration curve).
	ExpectedLifetimeHours float64
}

// LearnStructure derives a Structure from analyzed probes. quantile picks
// the lifetime confidence (e.g. 0.5: half the assignment time is over).
func LearnStructure(asn uint32, pas []core.ProbeAnalysis, table *bgp.Table, quantile float64) (Structure, error) {
	st := Structure{ASN: asn, PoolLen: 40, SubscriberLen: 64, Aligned: true}

	perAS, _ := core.SubscriberLengths(pas)
	if h := perAS[asn]; h != nil && h.N > 0 {
		st.SubscriberLen = h.ArgMax()
		// A strong /64 population signals scrambling CPEs.
		st.Aligned = h.Fraction(64) < 0.25
	}
	dists := core.UniquePrefixes(pas, table)
	if d := dists[asn]; d != nil {
		if pool, ok := core.InferPoolBoundary(d, 8); ok {
			st.PoolLen = pool
		}
	}
	if st.PoolLen > st.SubscriberLen {
		st.PoolLen = st.SubscriberLen
	}
	durations := core.CollectDurations(pas)
	d := durations[asn]
	if d == nil || len(d.V6Hr) == 0 {
		return st, fmt.Errorf("hitlist: no IPv6 durations for AS%d", asn)
	}
	curve := stats.CumulativeTotalTimeFraction(d.V6Hr)
	st.ExpectedLifetimeHours = quantileOf(curve, quantile)
	return st, nil
}

// quantileOf inverts a cumulative total-time-fraction curve.
func quantileOf(curve []stats.Point, q float64) float64 {
	for _, p := range curve {
		if p.Y >= q {
			return p.X
		}
	}
	if len(curve) > 0 {
		return curve[len(curve)-1].X
	}
	return 0
}

// Target is one hitlist entry.
type Target struct {
	Prefix   netip.Prefix // the /64
	ASN      uint32
	LastSeen int64 // hour of last confirmation
}

// List is a curated target list with per-AS expiry and rescan planning.
// It is not safe for concurrent use.
type List struct {
	structures map[uint32]Structure
	targets    map[netip.Prefix]*Target
}

// New builds a List with the given learned structures.
func New(structures ...Structure) *List {
	l := &List{
		structures: make(map[uint32]Structure, len(structures)),
		targets:    make(map[netip.Prefix]*Target),
	}
	for _, st := range structures {
		l.structures[st.ASN] = st
	}
	return l
}

// Observe records that a target /64 was confirmed active at the given
// hour (from a scan response, a log line, a RUM hit, …).
func (l *List) Observe(p64 netip.Prefix, asn uint32, hour int64) {
	p64 = netip.PrefixFrom(p64.Addr(), 64).Masked()
	if t, ok := l.targets[p64]; ok {
		if hour > t.LastSeen {
			t.LastSeen = hour
		}
		return
	}
	l.targets[p64] = &Target{Prefix: p64, ASN: asn, LastSeen: hour}
}

// Len returns the number of targets.
func (l *List) Len() int { return len(l.targets) }

// Fresh returns targets still within their AS's expected lifetime at the
// given hour, sorted by prefix.
func (l *List) Fresh(hour int64) []Target {
	return l.filter(hour, true)
}

// Stale returns targets past their AS's expected lifetime: probably
// renumbered away, not worth probing directly (§6: "many viable targets
// … will move to a new network address").
func (l *List) Stale(hour int64) []Target {
	return l.filter(hour, false)
}

func (l *List) filter(hour int64, fresh bool) []Target {
	var out []Target
	for _, t := range l.targets {
		life := float64(hour - t.LastSeen)
		limit := l.lifetime(t.ASN)
		if (life <= limit) == fresh {
			out = append(out, *t)
		}
	}
	sort.Slice(out, func(i, j int) bool { return netutil.ComparePrefix(out[i].Prefix, out[j].Prefix) < 0 })
	return out
}

func (l *List) lifetime(asn uint32) float64 {
	if st, ok := l.structures[asn]; ok && st.ExpectedLifetimeHours > 0 {
		return st.ExpectedLifetimeHours
	}
	return 24 * 30 // conservative month default
}

// RefreshPlan returns the scan plan that re-finds a stale target inside
// its AS's learned structure.
func (l *List) RefreshPlan(t Target) (core.ScanPlan, error) {
	st, ok := l.structures[t.ASN]
	if !ok {
		return core.ScanPlan{}, fmt.Errorf("hitlist: no structure for AS%d", t.ASN)
	}
	return core.NewScanPlan(t.Prefix, st.PoolLen, st.SubscriberLen, st.Aligned)
}

// Refresh replaces a stale target with its rediscovered prefix.
func (l *List) Refresh(old Target, found netip.Prefix, hour int64) {
	delete(l.targets, old.Prefix)
	l.Observe(found, old.ASN, hour)
}
