package hitlist

import (
	"net/netip"
	"testing"

	"dynamips/internal/atlas"
	"dynamips/internal/core"
	"dynamips/internal/isp"
)

func p64(s string) netip.Prefix { return netip.MustParsePrefix(s) }

func TestListLifecycle(t *testing.T) {
	st := Structure{ASN: 3320, PoolLen: 40, SubscriberLen: 56, Aligned: true, ExpectedLifetimeHours: 100}
	l := New(st)
	l.Observe(p64("2003:1000:0:100::/64"), 3320, 0)
	l.Observe(p64("2003:1000:0:200::/64"), 3320, 50)
	l.Observe(p64("2003:1000:0:100::/64"), 3320, 30) // refresh sighting
	if l.Len() != 2 {
		t.Fatalf("Len = %d", l.Len())
	}
	if got := len(l.Fresh(60)); got != 2 {
		t.Errorf("Fresh(60) = %d", got)
	}
	stale := l.Stale(140)
	if len(stale) != 1 || stale[0].Prefix != p64("2003:1000:0:100::/64") {
		t.Fatalf("Stale(140) = %+v", stale)
	}
	plan, err := l.RefreshPlan(stale[0])
	if err != nil {
		t.Fatalf("RefreshPlan: %v", err)
	}
	if plan.Pool != p64("2003:1000::/40") || plan.Size() != 1<<16 {
		t.Errorf("plan = %+v", plan)
	}
	l.Refresh(stale[0], p64("2003:1000:0:4400::/64"), 150)
	if l.Len() != 2 {
		t.Errorf("Len after refresh = %d", l.Len())
	}
	// The refreshed target is fresh again; the hour-50 target has aged out.
	stale2 := l.Stale(160)
	if len(stale2) != 1 || stale2[0].Prefix != p64("2003:1000:0:200::/64") {
		t.Errorf("Stale after refresh = %+v", stale2)
	}
}

func TestRefreshPlanUnknownAS(t *testing.T) {
	l := New()
	l.Observe(p64("2003::/64"), 999, 0)
	if _, err := l.RefreshPlan(l.Stale(1e6)[0]); err == nil {
		t.Error("plan for unknown AS succeeded")
	}
	// Unknown ASes get the conservative month default.
	if got := len(l.Fresh(700)); got != 1 {
		t.Errorf("Fresh under default lifetime = %d", got)
	}
	if got := len(l.Stale(24*30 + 1)); got != 1 {
		t.Errorf("Stale past default lifetime = %d", got)
	}
}

// TestLearnAndCurateEndToEnd learns the structure from a fleet, curates a
// hitlist of the fleet's own /64s, and checks that every stale target's
// true new location falls inside its refresh plan.
func TestLearnAndCurateEndToEnd(t *testing.T) {
	profile, _ := isp.ProfileByName("DTAG")
	res, err := isp.Run(isp.Config{Profile: profile, Subscribers: 300, Hours: 18000, Seed: 401})
	if err != nil {
		t.Fatalf("isp.Run: %v", err)
	}
	fleet, err := atlas.BuildFleet(res, atlas.DefaultFleetConfig(200, 402))
	if err != nil {
		t.Fatalf("fleet: %v", err)
	}
	pas := core.Analyze(atlas.Sanitize(fleet.Series, fleet.BGP, atlas.DefaultSanitizeConfig()).Clean,
		core.DefaultExtractConfig())
	st, err := LearnStructure(3320, pas, fleet.BGP, 0.5)
	if err != nil {
		t.Fatalf("LearnStructure: %v", err)
	}
	if st.SubscriberLen != 56 {
		t.Errorf("learned subscriber length /%d", st.SubscriberLen)
	}
	if st.PoolLen < 32 || st.PoolLen > 44 {
		t.Errorf("learned pool /%d", st.PoolLen)
	}
	if st.ExpectedLifetimeHours <= 0 {
		t.Errorf("lifetime = %v", st.ExpectedLifetimeHours)
	}
	// DTAG's scrambler population pushes the aligned shortcut off.
	if st.Aligned {
		t.Log("aligned plan learned; scramblers below threshold")
	}

	l := New(st)
	// Seed the list with each dual-stack subscriber's first /64.
	for _, sub := range res.Subscribers {
		if len(sub.V6) > 0 {
			l.Observe(sub.V6[0].LAN, 3320, sub.V6[0].Start)
		}
	}
	// Fast-forward past the expected lifetime: daily-renumbered targets
	// go stale.
	horizon := res.Hours - 1
	stale := l.Stale(horizon)
	if len(stale) == 0 {
		t.Fatal("no stale targets despite daily renumbering")
	}
	// Each stale target's true current /64 must be inside its plan.
	current := make(map[netip.Prefix]netip.Prefix) // first /64 -> final /64
	for _, sub := range res.Subscribers {
		if len(sub.V6) > 0 {
			current[netip.PrefixFrom(sub.V6[0].LAN.Addr(), 64)] = sub.V6[len(sub.V6)-1].LAN
		}
	}
	found := 0
	for _, target := range stale {
		plan, err := l.RefreshPlan(target)
		if err != nil {
			t.Fatalf("RefreshPlan: %v", err)
		}
		if now, ok := current[target.Prefix]; ok && plan.Contains(now) {
			found++
		}
	}
	// First-sighting -> final-location containment over a two-year
	// horizon: cross-pool hops (CrossPool6Frac per change, compounded
	// over hundreds of changes) move a sizable minority outside the
	// original pool. Consecutive-change recovery is the ~99% number
	// (see examples/hitlist); across the full horizon ~40-60% is the
	// expected regime.
	if frac := float64(found) / float64(len(stale)); frac < 0.35 {
		t.Errorf("refresh plans contain %v of true locations, want >= 0.35", frac)
	}
}
