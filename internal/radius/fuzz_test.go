package radius

import (
	"math/rand"
	"testing"
)

// TestParseNeverPanics: RADIUS packets arrive from the network; parsing
// must reject garbage without panicking.
func TestParseNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("Parse panicked: %v", r)
		}
	}()
	for i := 0; i < 5000; i++ {
		b := make([]byte, rng.Intn(300))
		rng.Read(b)
		Parse(b) //nolint:errcheck // errors are expected
	}
	valid := New(AccessRequest, 9)
	valid.AddString(AttrUserName, "fuzz")
	valid.AddU32(AttrSessionTimeout, 60)
	wire := valid.Encode()
	for i := 0; i < 5000; i++ {
		b := append([]byte(nil), wire...)
		for k := 0; k < 3; k++ {
			b[rng.Intn(len(b))] ^= byte(1 << rng.Intn(8))
		}
		if p, err := Parse(b); err == nil && p == nil {
			t.Fatal("nil packet without error")
		}
	}
}

// TestRecoverPasswordNeverPanics covers the keystream path on arbitrary
// padded inputs.
func TestRecoverPasswordNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	var auth [16]byte
	for i := 0; i < 2000; i++ {
		n := 16 * (1 + rng.Intn(8))
		b := make([]byte, n)
		rng.Read(b)
		rng.Read(auth[:])
		if _, err := RecoverPassword(b, []byte("s"), auth); err != nil {
			t.Fatalf("padded input rejected: %v", err)
		}
	}
}

// FuzzParse is the native fuzz target for the RADIUS codec, run with a
// bounded -fuzztime as a smoke gate in CI (scripts/verify.sh).
func FuzzParse(f *testing.F) {
	valid := New(AccessRequest, 9)
	valid.AddString(AttrUserName, "fuzz")
	valid.AddU32(AttrSessionTimeout, 60)
	f.Add(valid.Encode())
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, b []byte) {
		p, err := Parse(b)
		if err != nil {
			return
		}
		if p == nil {
			t.Fatal("nil packet without error")
		}
		p.Encode()
	})
}
