package radius

import (
	"net"
	"net/netip"
	"testing"
	"testing/quick"
)

func newTestServer(timeout uint32, dualstack bool) *Server {
	cfg := ServerConfig{
		Pools4:         []netip.Prefix{netip.MustParsePrefix("81.10.0.0/24")},
		SessionTimeout: timeout,
		Secret:         []byte("s3cret"),
	}
	if dualstack {
		cfg.Pools6 = []netip.Prefix{netip.MustParsePrefix("2a01:c000::/40")}
		cfg.DelegatedLen6 = 56
	}
	return NewServer(cfg)
}

func TestPacketRoundTrip(t *testing.T) {
	p := New(AccessAccept, 42)
	p.AddString(AttrUserName, "cpe-0001")
	p.AddAddr4(AttrFramedIPAddress, netip.MustParseAddr("81.10.0.7"))
	p.AddU32(AttrSessionTimeout, 86400)
	p.AddPrefix6(AttrDelegatedIPv6Prefix, netip.MustParsePrefix("2a01:c000:ab00::/56"))

	got, err := Parse(p.Encode())
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if got.Code != AccessAccept || got.Identifier != 42 {
		t.Errorf("header: %+v", got)
	}
	if u, _ := got.GetString(AttrUserName); u != "cpe-0001" {
		t.Errorf("user = %q", u)
	}
	if a, _ := got.GetAddr4(AttrFramedIPAddress); a != netip.MustParseAddr("81.10.0.7") {
		t.Errorf("addr = %v", a)
	}
	if v, _ := got.GetU32(AttrSessionTimeout); v != 86400 {
		t.Errorf("timeout = %d", v)
	}
	if pre, ok := got.GetPrefix6(AttrDelegatedIPv6Prefix); !ok || pre != netip.MustParsePrefix("2a01:c000:ab00::/56") {
		t.Errorf("prefix = %v, %v", pre, ok)
	}
}

func TestPacketRoundTripProperty(t *testing.T) {
	f := func(id byte, user string, v uint32) bool {
		if len(user) > 200 {
			user = user[:200]
		}
		p := New(AccessRequest, id)
		p.AddString(AttrUserName, user)
		p.AddU32(AttrSessionTimeout, v)
		got, err := Parse(p.Encode())
		if err != nil {
			return false
		}
		gu, _ := got.GetString(AttrUserName)
		gv, _ := got.GetU32(AttrSessionTimeout)
		return got.Identifier == id && gu == user && gv == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestParseErrors(t *testing.T) {
	if _, err := Parse(make([]byte, 10)); err == nil {
		t.Error("short packet accepted")
	}
	p := New(AccessRequest, 1).Encode()
	p[2], p[3] = 0, 10 // length below minimum
	if _, err := Parse(p); err == nil {
		t.Error("bad length accepted")
	}
	q := New(AccessRequest, 1)
	q.AddString(AttrUserName, "x")
	b := q.Encode()
	b[21] = 1 // attribute length below 2
	if _, err := Parse(b); err == nil {
		t.Error("bad attribute length accepted")
	}
}

func TestGetPrefix6Malformed(t *testing.T) {
	p := New(AccessAccept, 1)
	p.Add(AttrDelegatedIPv6Prefix, []byte{0, 200}) // bits > 128
	if _, ok := p.GetPrefix6(AttrDelegatedIPv6Prefix); ok {
		t.Error("prefix with 200 bits accepted")
	}
	p2 := New(AccessAccept, 1)
	p2.Add(AttrDelegatedIPv6Prefix, []byte{0, 64, 1, 2}) // too few prefix bytes
	if _, ok := p2.GetPrefix6(AttrDelegatedIPv6Prefix); ok {
		t.Error("truncated prefix accepted")
	}
}

func TestResponseAuthenticator(t *testing.T) {
	secret := []byte("s3cret")
	req := New(AccessRequest, 9)
	req.Authenticator = [16]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16}
	rep := New(AccessAccept, 9)
	wire := rep.EncodeResponse(req, secret)
	if err := VerifyResponse(wire, req, secret); err != nil {
		t.Errorf("VerifyResponse: %v", err)
	}
	if err := VerifyResponse(wire, req, []byte("wrong")); err == nil {
		t.Error("wrong secret verified")
	}
	wire[0] = byte(AccessReject) // tamper
	if err := VerifyResponse(wire, req, secret); err == nil {
		t.Error("tampered packet verified")
	}
	if err := VerifyResponse(wire[:10], req, secret); err == nil {
		t.Error("short packet verified")
	}
}

func TestAttributeTooLongPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("oversize attribute did not panic")
		}
	}()
	p := New(AccessRequest, 1)
	p.Add(AttrUserName, make([]byte, 300))
	p.Encode()
}

func TestSessionLifecycle(t *testing.T) {
	s := newTestServer(86400, true)
	sess, err := s.StartSession("u1", 100)
	if err != nil {
		t.Fatalf("StartSession: %v", err)
	}
	if !netip.MustParsePrefix("81.10.0.0/24").Contains(sess.Addr4) {
		t.Errorf("addr4 %v outside pool", sess.Addr4)
	}
	if sess.Prefix6.Bits() != 56 {
		t.Errorf("prefix6 = %v", sess.Prefix6)
	}
	if sess.Timeout != 86400 {
		t.Errorf("timeout = %d", sess.Timeout)
	}
	// Reconnect draws a fresh address (RADIUS keeps no binding).
	sess2, err := s.StartSession("u1", 200)
	if err != nil {
		t.Fatalf("StartSession: %v", err)
	}
	if sess2.Addr4 == sess.Addr4 && sess2.Prefix6 == sess.Prefix6 {
		t.Error("reconnect reused both addresses; expected fresh allocation")
	}
	if s.ActiveSessions() != 1 {
		t.Errorf("ActiveSessions = %d", s.ActiveSessions())
	}
	s.StopSession("u1")
	if s.ActiveSessions() != 0 {
		t.Errorf("ActiveSessions after stop = %d", s.ActiveSessions())
	}
}

func TestDistinctAddressesAcrossUsers(t *testing.T) {
	s := newTestServer(3600, false)
	seen4 := map[netip.Addr]bool{}
	for i := 0; i < 50; i++ {
		sess, err := s.StartSession(string(rune('a'+i%26))+string(rune('0'+i/26)), int64(i))
		if err != nil {
			t.Fatalf("StartSession %d: %v", i, err)
		}
		if seen4[sess.Addr4] {
			t.Fatalf("duplicate address %v", sess.Addr4)
		}
		seen4[sess.Addr4] = true
	}
}

func TestPoolExhaustion(t *testing.T) {
	s := NewServer(ServerConfig{
		Pools4:         []netip.Prefix{netip.MustParsePrefix("81.10.0.0/30")},
		SessionTimeout: 60,
	})
	for i := 0; i < 4; i++ {
		if _, err := s.StartSession(string(rune('a'+i)), 0); err != nil {
			t.Fatalf("StartSession %d: %v", i, err)
		}
	}
	if _, err := s.StartSession("e", 0); err == nil {
		t.Fatal("5th session on /30 succeeded")
	}
	s.StopSession("a")
	if _, err := s.StartSession("e", 0); err != nil {
		t.Errorf("session after free failed: %v", err)
	}
}

func TestHandleAccessRequest(t *testing.T) {
	s := newTestServer(86400, true)
	req := New(AccessRequest, 5)
	req.AddString(AttrUserName, "cpe-42")
	rep, err := s.Handle(req, 1000)
	if err != nil {
		t.Fatalf("Handle: %v", err)
	}
	if rep.Code != AccessAccept {
		t.Fatalf("code = %v", rep.Code)
	}
	if _, ok := rep.GetAddr4(AttrFramedIPAddress); !ok {
		t.Error("no Framed-IP-Address")
	}
	if v, _ := rep.GetU32(AttrSessionTimeout); v != 86400 {
		t.Errorf("Session-Timeout = %d", v)
	}
	if _, ok := rep.GetPrefix6(AttrDelegatedIPv6Prefix); !ok {
		t.Error("no Delegated-IPv6-Prefix")
	}
}

func TestHandleRejectsAnonymous(t *testing.T) {
	s := newTestServer(60, false)
	rep, err := s.Handle(New(AccessRequest, 1), 0)
	if err != nil {
		t.Fatalf("Handle: %v", err)
	}
	if rep.Code != AccessReject {
		t.Errorf("code = %v, want reject", rep.Code)
	}
}

func TestHandleAccountingStop(t *testing.T) {
	s := newTestServer(60, false)
	s.StartSession("u9", 0)
	req := New(AccountingRequest, 2)
	req.AddString(AttrUserName, "u9")
	req.AddU32(AttrAcctStatusType, AcctStop)
	rep, err := s.Handle(req, 10)
	if err != nil {
		t.Fatalf("Handle: %v", err)
	}
	if rep.Code != AccountingResponse {
		t.Errorf("code = %v", rep.Code)
	}
	if s.ActiveSessions() != 0 {
		t.Errorf("session not stopped")
	}
}

func TestServeOverUDP(t *testing.T) {
	s := newTestServer(86400, true)
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	defer pc.Close()
	done := make(chan error, 1)
	go func() { done <- Serve(pc, s, func() int64 { return 0 }) }()

	cc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("client listen: %v", err)
	}
	defer cc.Close()
	req := New(AccessRequest, 7)
	req.Authenticator = [16]byte{9, 9, 9}
	req.AddString(AttrUserName, "wire-user")
	if _, err := cc.WriteTo(req.Encode(), pc.LocalAddr()); err != nil {
		t.Fatalf("write: %v", err)
	}
	buf := make([]byte, 4096)
	n, _, err := cc.ReadFrom(buf)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if err := VerifyResponse(buf[:n], req, []byte("s3cret")); err != nil {
		t.Errorf("VerifyResponse: %v", err)
	}
	rep, err := Parse(buf[:n])
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if rep.Code != AccessAccept || rep.Identifier != 7 {
		t.Errorf("reply = %+v", rep)
	}
	pc.Close()
	if err := <-done; err != net.ErrClosed {
		t.Errorf("Serve returned %v", err)
	}
}

func TestNewServerPanics(t *testing.T) {
	for name, cfg := range map[string]ServerConfig{
		"no pools":     {SessionTimeout: 1},
		"zero timeout": {Pools4: []netip.Prefix{netip.MustParsePrefix("10.0.0.0/24")}},
		"v6 in v4": {Pools4: []netip.Prefix{netip.MustParsePrefix("2001:db8::/64")},
			SessionTimeout: 1},
		"bad delegated": {Pools4: []netip.Prefix{netip.MustParsePrefix("10.0.0.0/24")},
			Pools6: []netip.Prefix{netip.MustParsePrefix("2001:db8::/40")}, DelegatedLen6: 20,
			SessionTimeout: 1},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: NewServer did not panic", name)
				}
			}()
			NewServer(cfg)
		}()
	}
}

func TestCodeString(t *testing.T) {
	if AccessRequest.String() != "Access-Request" {
		t.Error("code name wrong")
	}
	if Code(77).String() != "Code(77)" {
		t.Error("unknown code name wrong")
	}
}
