package radius

import (
	"errors"
	"fmt"
	"net"
	"time"
)

// Jitter randomizes retransmission delays (RFC 5080 §2.2.1 recommends
// jittered backoff to avoid synchronized retry storms). *math/rand.Rand
// and *faultnet.Stream both implement it; nil yields the base schedule.
type Jitter interface {
	Float64() float64
}

// Retransmitter paces Access-Request retransmissions: delays double from
// 3 s to 24 s (3→6→12→24, each jittered by ±500 ms), four transmissions
// in all — the BRAS-typical policy; RFC 2865 leaves timing to the
// implementation. Crucially, every retransmission reuses the same
// Identifier and Request Authenticator, which is what lets the server's
// duplicate detection recognize the retry.
type Retransmitter struct {
	j    Jitter
	base int64 // upcoming unjittered wait, ms
}

// clientCeilingMS is the 24-second delay ceiling of the retry policy.
const clientCeilingMS = 24_000

// NewRetransmitter builds the machine; j may be nil.
func NewRetransmitter(j Jitter) *Retransmitter {
	return &Retransmitter{j: j, base: 3_000}
}

// Next returns the wait after the upcoming transmission and whether a
// further transmission may follow; ok=false marks the final timeout.
func (r *Retransmitter) Next() (waitMS int64, ok bool) {
	wait := r.base
	if r.j != nil {
		wait += int64(r.j.Float64()*1001) - 500
	}
	if wait < 0 {
		wait = 0
	}
	more := r.base < clientCeilingMS
	if more {
		r.base *= 2
	}
	return wait, more
}

// Client performs RADIUS exchanges over a PacketConn with
// identifier-based retransmission: a request is resent byte-identical
// (same Identifier, same Request Authenticator) on timeout, and replies
// are matched by Identifier and verified against the shared secret, so
// late or duplicated replies from earlier transmissions are accepted once
// and stale ones discarded.
type Client struct {
	Conn   net.PacketConn
	Server net.Addr
	Secret []byte
	// Jitter seeds the retransmission jitter; nil uses the base schedule.
	Jitter Jitter
	// Timeout caps the whole exchange in wall time (default 2 s); raise
	// it to let the full retry schedule play out against a flaky server.
	Timeout time.Duration
	// WaitScale compresses the retransmission schedule (tests run the
	// 3→24 s ladder in milliseconds); 0 means 1.
	WaitScale float64

	id byte
}

// ErrExchangeTimeout is returned when every transmission went unanswered.
var ErrExchangeTimeout = errors.New("radius: no valid reply before give-up")

// NextID returns the next request identifier. Callers building their own
// packets use it to keep retransmitted and fresh requests distinct.
func (c *Client) NextID() byte {
	c.id++
	return c.id
}

// Exchange sends req (which must already carry its Identifier and
// Request Authenticator) and returns the first verified reply, driving
// the retransmission schedule on timeouts.
func (c *Client) Exchange(req *Packet) (*Packet, error) {
	payload := req.Encode()
	rt := NewRetransmitter(c.Jitter)
	timeout := c.Timeout
	if timeout <= 0 {
		timeout = 2 * time.Second
	}
	scale := c.WaitScale
	if scale <= 0 {
		scale = 1
	}
	remaining := timeout // overall budget: the waits may not sum past it
	buf := make([]byte, 4096)
	sends := 0
	for {
		if _, err := c.Conn.WriteTo(payload, c.Server); err != nil {
			return nil, fmt.Errorf("radius: client write: %w", err)
		}
		sends++
		waitMS, more := rt.Next()
		wait := time.Duration(float64(waitMS)*scale) * time.Millisecond
		last := !more
		if wait >= remaining {
			wait = remaining
			last = true
		}
		remaining -= wait
		if err := c.Conn.SetReadDeadline(time.Now().Add(wait)); err != nil {
			return nil, fmt.Errorf("radius: set deadline: %w", err)
		}
		for {
			n, _, err := c.Conn.ReadFrom(buf)
			if err != nil {
				var ne net.Error
				if errors.As(err, &ne) && ne.Timeout() {
					break // retransmit or give up
				}
				return nil, fmt.Errorf("radius: client read: %w", err)
			}
			rep, err := Parse(buf[:n])
			if err != nil || rep.Identifier != req.Identifier {
				continue // stale identifier: reply to a finished exchange
			}
			if VerifyResponse(buf[:n], req, c.Secret) != nil {
				continue
			}
			return rep, nil
		}
		if last {
			return nil, fmt.Errorf("%w (%d transmissions to %v)", ErrExchangeTimeout, sends, c.Server)
		}
	}
}

// Access performs one Access-Request for user: it assigns a fresh
// Identifier, fills the Request Authenticator from the jitter stream (or
// zeroes without one), and runs the retransmitting exchange.
func (c *Client) Access(user string) (*Packet, error) {
	req := New(AccessRequest, c.NextID())
	if c.Jitter != nil {
		for i := range req.Authenticator {
			req.Authenticator[i] = byte(c.Jitter.Float64() * 256)
		}
	}
	req.AddString(AttrUserName, user)
	return c.Exchange(req)
}
