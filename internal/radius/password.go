package radius

import (
	"crypto/md5"
	"crypto/subtle"
	"fmt"
)

// User-Password hiding, RFC 2865 §5.2: the password is padded to a
// multiple of 16 octets and XORed with an MD5 keystream chained over the
// shared secret and the request authenticator.

// maxPasswordLen is RFC 2865's 128-octet limit.
const maxPasswordLen = 128

// HidePassword encodes a cleartext password for the User-Password
// attribute of a request carrying the given authenticator.
func HidePassword(password string, secret []byte, authenticator [16]byte) ([]byte, error) {
	if len(password) == 0 || len(password) > maxPasswordLen {
		return nil, fmt.Errorf("radius: password length %d outside 1..%d", len(password), maxPasswordLen)
	}
	padded := make([]byte, (len(password)+15)&^15)
	copy(padded, password)
	out := make([]byte, len(padded))
	prev := authenticator[:]
	for i := 0; i < len(padded); i += 16 {
		h := md5.New()
		h.Write(secret)
		h.Write(prev)
		block := h.Sum(nil)
		for j := 0; j < 16; j++ {
			out[i+j] = padded[i+j] ^ block[j]
		}
		prev = out[i : i+16]
	}
	return out, nil
}

// RecoverPassword decodes a hidden User-Password attribute value.
func RecoverPassword(hidden, secret []byte, authenticator [16]byte) (string, error) {
	if len(hidden) == 0 || len(hidden)%16 != 0 || len(hidden) > maxPasswordLen {
		return "", fmt.Errorf("radius: hidden password length %d not a multiple of 16 in 16..%d", len(hidden), maxPasswordLen)
	}
	out := make([]byte, len(hidden))
	prev := authenticator[:]
	for i := 0; i < len(hidden); i += 16 {
		h := md5.New()
		h.Write(secret)
		h.Write(prev)
		block := h.Sum(nil)
		for j := 0; j < 16; j++ {
			out[i+j] = hidden[i+j] ^ block[j]
		}
		prev = hidden[i : i+16]
	}
	// Strip zero padding.
	end := len(out)
	for end > 0 && out[end-1] == 0 {
		end--
	}
	return string(out[:end]), nil
}

// CheckPassword recovers a hidden password and compares it to the
// expected cleartext in constant time.
func CheckPassword(hidden []byte, expected string, secret []byte, authenticator [16]byte) bool {
	got, err := RecoverPassword(hidden, secret, authenticator)
	if err != nil || len(got) != len(expected) {
		return false
	}
	return subtle.ConstantTimeCompare([]byte(got), []byte(expected)) == 1
}

// AttrUserPassword is the RFC 2865 User-Password attribute type.
const AttrUserPassword byte = 2
