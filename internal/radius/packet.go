// Package radius implements the subset of RADIUS (RFC 2865) that broadband
// ISPs use for subscriber address assignment: the packet codec with
// response authenticators, the Framed-IP-Address / Framed-IPv6-Prefix /
// Delegated-IPv6-Prefix / Session-Timeout attributes, and an
// Access-Request server that allocates addresses per session.
//
// RADIUS-assigned addresses "typically change after the configured
// SessionTimeout" (§2.2) because the server keeps no binding across
// sessions — the behavior behind the paper's periodic renumbering
// observations (24 h in DTAG, 1 week in Orange, …). internal/isp drives
// this package's Server for RADIUS-style profiles.
package radius

import (
	"crypto/md5"
	"encoding/binary"
	"errors"
	"fmt"
	"net/netip"
)

// Code is the RADIUS packet code.
type Code byte

// RFC 2865/2866 packet codes (subset).
const (
	AccessRequest      Code = 1
	AccessAccept       Code = 2
	AccessReject       Code = 3
	AccountingRequest  Code = 4
	AccountingResponse Code = 5
)

var codeNames = map[Code]string{
	AccessRequest: "Access-Request", AccessAccept: "Access-Accept",
	AccessReject: "Access-Reject", AccountingRequest: "Accounting-Request",
	AccountingResponse: "Accounting-Response",
	DisconnectRequest:  "Disconnect-Request", DisconnectACK: "Disconnect-ACK",
	DisconnectNAK: "Disconnect-NAK", CoARequest: "CoA-Request",
	CoAACK: "CoA-ACK", CoANAK: "CoA-NAK",
}

// String returns the RFC name of the code.
func (c Code) String() string {
	if s, ok := codeNames[c]; ok {
		return s
	}
	return fmt.Sprintf("Code(%d)", byte(c))
}

// Attribute types used by this implementation.
const (
	AttrUserName            byte = 1
	AttrNASIPAddress        byte = 4
	AttrFramedIPAddress     byte = 8
	AttrSessionTimeout      byte = 27
	AttrAcctStatusType      byte = 40
	AttrFramedIPv6Prefix    byte = 97
	AttrDelegatedIPv6Prefix byte = 123
)

// Acct-Status-Type values (RFC 2866).
const (
	AcctStart uint32 = 1
	AcctStop  uint32 = 2
)

// Errors returned by Parse.
var (
	ErrShortPacket  = errors.New("radius: packet too short")
	ErrBadLength    = errors.New("radius: bad length field")
	ErrBadAttribute = errors.New("radius: malformed attribute")
	ErrBadAuth      = errors.New("radius: response authenticator mismatch")
)

// Attribute is one TLV.
type Attribute struct {
	Type  byte
	Value []byte
}

// Packet is a RADIUS packet.
type Packet struct {
	Code          Code
	Identifier    byte
	Authenticator [16]byte
	Attributes    []Attribute
}

// New builds a packet with the given code and identifier.
func New(code Code, id byte) *Packet {
	return &Packet{Code: code, Identifier: id}
}

// Add appends a raw attribute.
func (p *Packet) Add(t byte, v []byte) { p.Attributes = append(p.Attributes, Attribute{t, v}) }

// AddString appends a text attribute (e.g. User-Name).
func (p *Packet) AddString(t byte, s string) { p.Add(t, []byte(s)) }

// AddU32 appends a 32-bit integer attribute (e.g. Session-Timeout).
func (p *Packet) AddU32(t byte, v uint32) {
	b := make([]byte, 4)
	binary.BigEndian.PutUint32(b, v)
	p.Add(t, b)
}

// AddAddr4 appends an IPv4 address attribute (e.g. Framed-IP-Address).
func (p *Packet) AddAddr4(t byte, a netip.Addr) {
	v4 := a.Unmap().As4()
	p.Add(t, v4[:])
}

// AddPrefix6 appends an IPv6 prefix attribute in RFC 3162 §2.3 format
// (reserved byte, prefix length, prefix bytes).
func (p *Packet) AddPrefix6(t byte, pre netip.Prefix) {
	nBytes := (pre.Bits() + 7) / 8
	v := make([]byte, 2+nBytes)
	v[1] = byte(pre.Bits())
	a16 := pre.Addr().As16()
	copy(v[2:], a16[:nBytes])
	p.Add(t, v)
}

// Get returns the first attribute of the given type.
func (p *Packet) Get(t byte) ([]byte, bool) {
	for _, a := range p.Attributes {
		if a.Type == t {
			return a.Value, true
		}
	}
	return nil, false
}

// GetString fetches a text attribute.
func (p *Packet) GetString(t byte) (string, bool) {
	v, ok := p.Get(t)
	return string(v), ok
}

// GetU32 fetches a 32-bit integer attribute.
func (p *Packet) GetU32(t byte) (uint32, bool) {
	v, ok := p.Get(t)
	if !ok || len(v) != 4 {
		return 0, false
	}
	return binary.BigEndian.Uint32(v), true
}

// GetAddr4 fetches an IPv4 address attribute.
func (p *Packet) GetAddr4(t byte) (netip.Addr, bool) {
	v, ok := p.Get(t)
	if !ok || len(v) != 4 {
		return netip.Addr{}, false
	}
	return netip.AddrFrom4([4]byte(v)), true
}

// GetPrefix6 fetches an RFC 3162 IPv6 prefix attribute.
func (p *Packet) GetPrefix6(t byte) (netip.Prefix, bool) {
	v, ok := p.Get(t)
	if !ok || len(v) < 2 {
		return netip.Prefix{}, false
	}
	bits := int(v[1])
	if bits > 128 || len(v)-2 < (bits+7)/8 {
		return netip.Prefix{}, false
	}
	var a16 [16]byte
	copy(a16[:], v[2:])
	pre, err := netip.AddrFrom16(a16).Prefix(bits)
	if err != nil {
		return netip.Prefix{}, false
	}
	return pre, true
}

func (p *Packet) attrBytes() []byte {
	var b []byte
	for _, a := range p.Attributes {
		if len(a.Value) > 253 {
			panic(fmt.Sprintf("radius: attribute %d value too long (%d bytes)", a.Type, len(a.Value)))
		}
		b = append(b, a.Type, byte(len(a.Value)+2))
		b = append(b, a.Value...)
	}
	return b
}

// Encode serializes the packet with its current authenticator.
func (p *Packet) Encode() []byte {
	attrs := p.attrBytes()
	b := make([]byte, 20+len(attrs))
	b[0] = byte(p.Code)
	b[1] = p.Identifier
	binary.BigEndian.PutUint16(b[2:], uint16(len(b)))
	copy(b[4:20], p.Authenticator[:])
	copy(b[20:], attrs)
	return b
}

// EncodeResponse serializes a reply to request, computing the RFC 2865 §3
// response authenticator MD5(Code+ID+Length+RequestAuth+Attributes+Secret).
func (p *Packet) EncodeResponse(request *Packet, secret []byte) []byte {
	attrs := p.attrBytes()
	b := make([]byte, 20+len(attrs))
	b[0] = byte(p.Code)
	b[1] = p.Identifier
	binary.BigEndian.PutUint16(b[2:], uint16(len(b)))
	copy(b[4:20], request.Authenticator[:])
	copy(b[20:], attrs)
	h := md5.New()
	h.Write(b)
	h.Write(secret)
	sum := h.Sum(nil)
	copy(b[4:20], sum)
	copy(p.Authenticator[:], sum)
	return b
}

// VerifyResponse checks a reply's response authenticator against the
// originating request and shared secret.
func VerifyResponse(reply []byte, request *Packet, secret []byte) error {
	if len(reply) < 20 {
		return ErrShortPacket
	}
	var got [16]byte
	copy(got[:], reply[4:20])
	scratch := append([]byte(nil), reply...)
	copy(scratch[4:20], request.Authenticator[:])
	h := md5.New()
	h.Write(scratch)
	h.Write(secret)
	if [16]byte(h.Sum(nil)) != got {
		return ErrBadAuth
	}
	return nil
}

// Parse decodes a wire-format packet.
func Parse(b []byte) (*Packet, error) {
	if len(b) < 20 {
		return nil, fmt.Errorf("%w: %d bytes", ErrShortPacket, len(b))
	}
	length := int(binary.BigEndian.Uint16(b[2:]))
	if length < 20 || length > len(b) {
		return nil, fmt.Errorf("%w: claims %d of %d bytes", ErrBadLength, length, len(b))
	}
	p := &Packet{Code: Code(b[0]), Identifier: b[1]}
	copy(p.Authenticator[:], b[4:20])
	rest := b[20:length]
	for len(rest) > 0 {
		if len(rest) < 2 {
			return nil, fmt.Errorf("%w: truncated header", ErrBadAttribute)
		}
		l := int(rest[1])
		if l < 2 || l > len(rest) {
			return nil, fmt.Errorf("%w: type %d length %d", ErrBadAttribute, rest[0], l)
		}
		p.Add(rest[0], append([]byte(nil), rest[2:l]...))
		rest = rest[l:]
	}
	return p, nil
}
