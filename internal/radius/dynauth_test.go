package radius

import (
	"net"
	"net/netip"
	"testing"
	"time"
)

// TestDynauthWireRoundTrip: CoA/Disconnect requests and replies survive
// the wire codec byte-for-byte, with valid request authenticators.
func TestDynauthWireRoundTrip(t *testing.T) {
	secret := []byte("s3cret")
	cases := []struct {
		name  string
		build func() *Packet
	}{
		{"coa-request", func() *Packet {
			p := New(CoARequest, 7)
			p.AddString(AttrUserName, "s42")
			return p
		}},
		{"disconnect-request", func() *Packet {
			p := New(DisconnectRequest, 8)
			p.AddString(AttrUserName, "s42")
			p.AddAddr4(AttrNASIPAddress, netip.MustParseAddr("192.0.2.1"))
			return p
		}},
		{"coa-request-with-addrs", func() *Packet {
			p := New(CoARequest, 9)
			p.AddString(AttrUserName, "s1")
			p.AddAddr4(AttrFramedIPAddress, netip.MustParseAddr("10.0.0.7"))
			p.AddPrefix6(AttrDelegatedIPv6Prefix, netip.MustParsePrefix("2001:db8:100::/56"))
			return p
		}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			req := c.build()
			wire := req.EncodeRequest(secret)
			if err := VerifyRequest(wire, secret); err != nil {
				t.Fatalf("VerifyRequest: %v", err)
			}
			if err := VerifyRequest(wire, []byte("wrong")); err == nil {
				t.Fatal("VerifyRequest accepted the wrong secret")
			}
			got, err := Parse(wire)
			if err != nil {
				t.Fatalf("Parse: %v", err)
			}
			if got.Code != req.Code || got.Identifier != req.Identifier {
				t.Fatalf("header mismatch: %v/%d vs %v/%d", got.Code, got.Identifier, req.Code, req.Identifier)
			}
			if u, _ := got.GetString(AttrUserName); u == "" {
				t.Fatal("User-Name lost in transit")
			}
			// Retransmission must re-encode byte-identically (the
			// replay cache keys on Identifier+Authenticator).
			again := got.Encode()
			if len(again) != len(wire) {
				t.Fatalf("re-encode length %d != %d", len(again), len(wire))
			}
			for i := range wire {
				if again[i] != wire[i] {
					t.Fatalf("re-encode differs at byte %d", i)
				}
			}
		})
	}
	// Tampering any byte breaks the authenticator.
	p := New(CoARequest, 3)
	p.AddString(AttrUserName, "u")
	wire := p.EncodeRequest(secret)
	for i := range wire {
		bad := append([]byte(nil), wire...)
		bad[i] ^= 0x40
		if err := VerifyRequest(bad, secret); err == nil {
			t.Fatalf("VerifyRequest accepted a packet tampered at byte %d", i)
		}
	}
}

// dynauthServer builds a server with one live session for user "sub".
func dynauthServer(t *testing.T) *Server {
	t.Helper()
	s := NewServer(ServerConfig{
		Secret:         []byte("s3cret"),
		Pools4:         []netip.Prefix{netip.MustParsePrefix("10.10.0.0/20")},
		Pools6:         []netip.Prefix{netip.MustParsePrefix("2001:db8::/40")},
		DelegatedLen6:  56,
		SessionTimeout: 3600,
	})
	if _, err := s.StartSession("sub", 100); err != nil {
		t.Fatal(err)
	}
	return s
}

// TestCoADispatch: a CoA renumbers the live session and ACKs with the
// fresh attributes; unknown users and missing attributes NAK with the
// right Error-Cause.
func TestCoADispatch(t *testing.T) {
	s := dynauthServer(t)
	before := s.sessions["sub"].Addr4

	req := New(CoARequest, 21)
	req.AddString(AttrUserName, "sub")
	parsed, err := Parse(req.EncodeRequest(s.Secret()))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := s.Handle(parsed, 200)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Code != CoAACK {
		t.Fatalf("Code = %v, want CoAACK", rep.Code)
	}
	after, ok := rep.GetAddr4(AttrFramedIPAddress)
	if !ok {
		t.Fatal("ACK missing Framed-IP-Address")
	}
	if after == before {
		t.Error("CoA did not renumber the session")
	}
	if sess := s.sessions["sub"]; sess.Start != 100 {
		t.Errorf("CoA reset session start to %d", sess.Start)
	}
	if _, ok := rep.GetPrefix6(AttrDelegatedIPv6Prefix); !ok {
		t.Error("ACK missing Delegated-IPv6-Prefix")
	}
	if s.Stats().CoARequests != 1 {
		t.Errorf("CoARequests = %d, want 1", s.Stats().CoARequests)
	}

	// Unknown session → NAK 503.
	req = New(CoARequest, 22)
	req.AddString(AttrUserName, "ghost")
	parsed, _ = Parse(req.EncodeRequest(s.Secret()))
	rep, err = s.Handle(parsed, 201)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Code != CoANAK {
		t.Fatalf("Code = %v, want CoANAK", rep.Code)
	}
	if cause, _ := rep.GetU32(AttrErrorCause); cause != ErrCauseSessionNotFound {
		t.Errorf("Error-Cause = %d, want %d", cause, ErrCauseSessionNotFound)
	}

	// Missing User-Name → NAK 402.
	parsed, _ = Parse(New(CoARequest, 23).EncodeRequest(s.Secret()))
	rep, _ = s.Handle(parsed, 202)
	if cause, _ := rep.GetU32(AttrErrorCause); rep.Code != CoANAK || cause != ErrCauseMissingAttribute {
		t.Errorf("missing-attr reply = %v cause %d", rep.Code, cause)
	}
}

// TestDisconnectDispatch: a Disconnect tears the session down and frees
// its addresses.
func TestDisconnectDispatch(t *testing.T) {
	s := dynauthServer(t)
	req := New(DisconnectRequest, 31)
	req.AddString(AttrUserName, "sub")
	parsed, _ := Parse(req.EncodeRequest(s.Secret()))
	rep, err := s.Handle(parsed, 300)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Code != DisconnectACK {
		t.Fatalf("Code = %v, want DisconnectACK", rep.Code)
	}
	if s.ActiveSessions() != 0 {
		t.Errorf("session survived the disconnect")
	}
	if s.Stats().Disconnects != 1 {
		t.Errorf("Disconnects = %d, want 1", s.Stats().Disconnects)
	}
	// Second disconnect with a NEW identifier: session already gone.
	req = New(DisconnectRequest, 32)
	req.AddString(AttrUserName, "sub")
	parsed, _ = Parse(req.EncodeRequest(s.Secret()))
	rep, _ = s.Handle(parsed, 301)
	if cause, _ := rep.GetU32(AttrErrorCause); rep.Code != DisconnectNAK || cause != ErrCauseSessionNotFound {
		t.Errorf("replayed disconnect = %v cause %d", rep.Code, cause)
	}
}

// TestDynauthReplayCache: a retransmitted CoA (same Identifier and
// Authenticator) must be answered from the duplicate cache, not
// renumber the session twice (RFC 5080 §2.2.2 via RFC 5176 §5.1).
func TestDynauthReplayCache(t *testing.T) {
	s := dynauthServer(t)
	req := New(CoARequest, 40)
	req.AddString(AttrUserName, "sub")
	wire := req.EncodeRequest(s.Secret())

	p1, _ := Parse(wire)
	rep1, err := s.Handle(p1, 400)
	if err != nil {
		t.Fatal(err)
	}
	addr1, _ := rep1.GetAddr4(AttrFramedIPAddress)

	p2, _ := Parse(wire)
	rep2, err := s.Handle(p2, 401)
	if err != nil {
		t.Fatal(err)
	}
	addr2, _ := rep2.GetAddr4(AttrFramedIPAddress)
	if addr1 != addr2 {
		t.Errorf("retransmitted CoA renumbered again: %v then %v", addr1, addr2)
	}
	if s.Stats().ReplayHits != 1 {
		t.Errorf("ReplayHits = %d, want 1", s.Stats().ReplayHits)
	}
	if s.Stats().CoARequests != 1 {
		t.Errorf("CoARequests = %d, want 1 (replay must not re-dispatch)", s.Stats().CoARequests)
	}
}

// TestClientCoADisconnect drives the UDP client helpers end-to-end
// against a served socket.
func TestClientCoADisconnect(t *testing.T) {
	g := NewGuarded(dynauthServer(t))
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer pc.Close()
	go Serve(pc, g, func() int64 { return 500 }) //nolint:errcheck // closed socket ends the loop

	cc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer cc.Close()

	c := &Client{Conn: cc, Server: pc.LocalAddr(), Secret: []byte("s3cret"), Timeout: 5 * time.Second}
	rep, err := c.CoA("sub")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Code != CoAACK {
		t.Fatalf("CoA reply = %v", rep.Code)
	}
	rep, err = c.Disconnect("sub")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Code != DisconnectACK {
		t.Fatalf("Disconnect reply = %v", rep.Code)
	}
	if g.ActiveSessions() != 0 {
		t.Error("session survived client-driven disconnect")
	}
}

// FuzzDynauth is the native fuzz target for the RFC 5176 paths: parsed
// packets of any shape dispatched as CoA/Disconnect must never panic,
// and VerifyRequest must reject arbitrary mutations.
func FuzzDynauth(f *testing.F) {
	seedReq := New(CoARequest, 5)
	seedReq.AddString(AttrUserName, "sub")
	f.Add(seedReq.EncodeRequest([]byte("s3cret")))
	d := New(DisconnectRequest, 6)
	d.AddString(AttrUserName, "nobody")
	f.Add(d.EncodeRequest([]byte("s3cret")))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, b []byte) {
		VerifyRequest(b, []byte("s3cret")) //nolint:errcheck // errors are expected
		p, err := Parse(b)
		if err != nil {
			return
		}
		s := NewServer(ServerConfig{
			Secret:         []byte("s3cret"),
			Pools4:         []netip.Prefix{netip.MustParsePrefix("10.9.0.0/24")},
			SessionTimeout: 3600,
		})
		if _, err := s.StartSession("sub", 1); err != nil {
			t.Fatal(err)
		}
		for _, code := range []Code{CoARequest, DisconnectRequest} {
			q := *p
			q.Code = code
			rep, err := s.Handle(&q, 2)
			if err == nil && rep != nil {
				rep.Encode()
			}
		}
	})
}
