package radius

import (
	"errors"
	"fmt"
	"net"
	"net/netip"
	"sync"

	"dynamips/internal/netutil"
)

// ErrPoolExhausted is returned when no address is available for a session.
var ErrPoolExhausted = errors.New("radius: address pool exhausted")

// ServerConfig configures the session/assignment server.
type ServerConfig struct {
	// Pools4 are IPv4 ranges for Framed-IP-Address assignment.
	Pools4 []netip.Prefix
	// Pools6 are IPv6 blocks for Delegated-IPv6-Prefix assignment;
	// nil disables IPv6 (a non-dual-stack profile).
	Pools6 []netip.Prefix
	// DelegatedLen6 is the delegated IPv6 prefix length.
	DelegatedLen6 int
	// SessionTimeout (seconds) is returned in Access-Accept; BRAS
	// equipment disconnects the session after this, and the reconnect
	// draws a fresh address (the paper's periodic renumbering).
	SessionTimeout uint32
	// Stride spreads allocations across the pool: the n-th fresh
	// allocation uses offset (n*Stride) mod poolsize instead of n. Real
	// pools hand out addresses scattered over their range; sequential
	// allocation would concentrate all active addresses in the lowest
	// /24. Even strides are rounded up to stay coprime with
	// power-of-two pool sizes. Zero means 1 (sequential).
	Stride uint64
	// Secret is the shared secret for response authenticators.
	Secret []byte
}

// Session is one active subscriber session.
type Session struct {
	User    string
	Addr4   netip.Addr
	Prefix6 netip.Prefix
	Start   int64
	Timeout uint32
}

// replayWindowSec is how long a duplicate Access-Request — same
// Identifier and Request Authenticator, i.e. a client retransmission —
// is answered from the duplicate cache instead of allocating again
// (RFC 5080 §2.2.2 duplicate detection).
const replayWindowSec = 30

// replayKey identifies a request for duplicate detection. The
// Identifier alone is too narrow (it wraps at 256 across subscribers);
// Identifier plus Request Authenticator is what RFC 5080 prescribes.
type replayKey struct {
	id   byte
	auth [16]byte
}

type replayEntry struct {
	key   replayKey
	reply *Packet
	at    int64
}

// ServerStats are a server's lifetime request totals. Plain sums: they
// aggregate commutatively across servers into the per-AS fault counters
// the observability layer reports.
type ServerStats struct {
	// AccessRequests counts first-seen Access-Requests handled;
	// ReplayHits counts retransmissions answered from the RFC 5080
	// duplicate cache instead of allocating again.
	AccessRequests, ReplayHits int64
	// Rejects counts Access-Reject replies (bad user or exhausted pool).
	Rejects int64
	// CoARequests and Disconnects count first-seen RFC 5176 CoA-Requests
	// and Disconnect-Requests; DynauthNAKs counts the NAK replies among
	// them (unknown session, missing attribute, exhausted pool).
	CoARequests, Disconnects, DynauthNAKs int64
}

// Add accumulates o into s.
func (s *ServerStats) Add(o ServerStats) {
	s.AccessRequests += o.AccessRequests
	s.ReplayHits += o.ReplayHits
	s.Rejects += o.Rejects
	s.CoARequests += o.CoARequests
	s.Disconnects += o.Disconnects
	s.DynauthNAKs += o.DynauthNAKs
}

// Server allocates per-session addresses RADIUS-style: every new session
// draws the next free address; nothing is remembered once a session stops.
// It is not safe for concurrent use.
type Server struct {
	cfg      ServerConfig
	stats    ServerStats
	sessions map[string]*Session

	replay  map[replayKey]*replayEntry
	replayQ []*replayEntry // insertion order, for window pruning

	cursor4 int
	offset4 uint64
	freed4  []netip.Addr
	used4   map[netip.Addr]bool

	cursor6 int
	offset6 uint64
	freed6  []netip.Prefix
	used6   map[netip.Prefix]bool
}

// NewServer builds a Server, panicking on configuration bugs.
func NewServer(cfg ServerConfig) *Server {
	if len(cfg.Pools4) == 0 {
		panic("radius: no IPv4 pools configured")
	}
	if cfg.SessionTimeout == 0 {
		panic("radius: zero session timeout")
	}
	for _, p := range cfg.Pools4 {
		if !p.Addr().Unmap().Is4() {
			panic(fmt.Sprintf("radius: non-IPv4 pool %v", p))
		}
	}
	for _, p := range cfg.Pools6 {
		if !p.Addr().Is6() || p.Addr().Unmap().Is4() {
			panic(fmt.Sprintf("radius: non-IPv6 pool %v", p))
		}
		if cfg.DelegatedLen6 < p.Bits() || cfg.DelegatedLen6 > 64 {
			panic(fmt.Sprintf("radius: delegated length /%d incompatible with pool %v", cfg.DelegatedLen6, p))
		}
	}
	if len(cfg.Secret) == 0 {
		cfg.Secret = []byte("dynamips")
	}
	if cfg.Stride == 0 {
		cfg.Stride = 1
	}
	if cfg.Stride%2 == 0 {
		cfg.Stride++
	}
	return &Server{
		cfg:      cfg,
		sessions: make(map[string]*Session),
		replay:   make(map[replayKey]*replayEntry),
		used4:    make(map[netip.Addr]bool),
		used6:    make(map[netip.Prefix]bool),
	}
}

// ActiveSessions returns the number of live sessions.
func (s *Server) ActiveSessions() int { return len(s.sessions) }

// Stats returns the server's accumulated request totals.
func (s *Server) Stats() ServerStats { return s.stats }

// Secret returns the shared secret replies are authenticated with.
func (s *Server) Secret() []byte { return s.cfg.Secret }

// Handler answers one RADIUS packet. *Server implements it directly for
// single-goroutine use; wrap a Server in NewGuarded when anything else —
// a test assertion, an administrative operation — must interleave with a
// live Serve loop.
type Handler interface {
	Handle(req *Packet, now int64) (*Packet, error)
	Secret() []byte
}

// Guarded serializes access to a Server shared between a Serve loop and
// concurrent observers. The plain simulator path keeps calling the
// Server directly and pays no locking.
type Guarded struct {
	mu  sync.Mutex
	srv *Server
}

// NewGuarded wraps srv for concurrent use.
func NewGuarded(srv *Server) *Guarded { return &Guarded{srv: srv} }

// Handle answers one packet under the lock.
func (g *Guarded) Handle(req *Packet, now int64) (*Packet, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.srv.Handle(req, now)
}

// Secret returns the shared secret (immutable after construction).
func (g *Guarded) Secret() []byte { return g.srv.Secret() }

// ActiveSessions counts live sessions under the lock.
func (g *Guarded) ActiveSessions() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.srv.ActiveSessions()
}

func (s *Server) nextFree4() (netip.Addr, error) {
	for len(s.freed4) > 0 {
		a := s.freed4[len(s.freed4)-1]
		s.freed4 = s.freed4[:len(s.freed4)-1]
		if !s.used4[a] {
			return a, nil
		}
	}
	for s.cursor4 < len(s.cfg.Pools4) {
		p := s.cfg.Pools4[s.cursor4]
		size := uint64(1) << uint(32-p.Bits())
		for s.offset4 < size {
			a, err := netutil.HostAddr(p, (s.offset4*s.cfg.Stride)%size)
			s.offset4++
			if err != nil {
				return netip.Addr{}, err
			}
			if !s.used4[a] {
				return a, nil
			}
		}
		s.cursor4++
		s.offset4 = 0
	}
	return netip.Addr{}, ErrPoolExhausted
}

func (s *Server) nextFree6() (netip.Prefix, error) {
	for len(s.freed6) > 0 {
		p := s.freed6[len(s.freed6)-1]
		s.freed6 = s.freed6[:len(s.freed6)-1]
		if !s.used6[p] {
			return p, nil
		}
	}
	for s.cursor6 < len(s.cfg.Pools6) {
		pool := s.cfg.Pools6[s.cursor6]
		size := uint64(1) << uint(s.cfg.DelegatedLen6-pool.Bits())
		for s.offset6 < size {
			p, err := netutil.SubPrefix(pool, s.cfg.DelegatedLen6, (s.offset6*s.cfg.Stride)%size)
			s.offset6++
			if err != nil {
				return netip.Prefix{}, err
			}
			if !s.used6[p] {
				return p, nil
			}
		}
		s.cursor6++
		s.offset6 = 0
	}
	return netip.Prefix{}, ErrPoolExhausted
}

// StartSession authenticates user and allocates session addresses. An
// existing session for the user is torn down, but only after the new
// allocation: a reconnecting subscriber therefore draws fresh addresses
// rather than instantly recycling its own (the RADIUS behavior behind
// §2.2's "even very short CPE outages or reboots can result in
// assignment changes").
func (s *Server) StartSession(user string, now int64) (*Session, error) {
	a4, err := s.nextFree4()
	if err != nil {
		return nil, err
	}
	sess := &Session{User: user, Addr4: a4, Start: now, Timeout: s.cfg.SessionTimeout}
	s.used4[a4] = true
	if len(s.cfg.Pools6) > 0 {
		p6, err := s.nextFree6()
		if err != nil {
			s.used4[a4] = false
			s.freed4 = append(s.freed4, a4)
			return nil, err
		}
		sess.Prefix6 = p6
		s.used6[p6] = true
	}
	if old, ok := s.sessions[user]; ok {
		s.stop(old)
	}
	s.sessions[user] = sess
	return sess, nil
}

func (s *Server) stop(sess *Session) {
	delete(s.sessions, sess.User)
	if sess.Addr4.IsValid() {
		s.used4[sess.Addr4] = false
		s.freed4 = append(s.freed4, sess.Addr4)
	}
	if sess.Prefix6.IsValid() {
		s.used6[sess.Prefix6] = false
		s.freed6 = append(s.freed6, sess.Prefix6)
	}
}

// StopSession ends a user's session, freeing its addresses.
func (s *Server) StopSession(user string) {
	if sess, ok := s.sessions[user]; ok {
		s.stop(sess)
	}
}

// handleAccess authenticates and allocates for one first-seen
// Access-Request, returning Access-Accept or Access-Reject.
func (s *Server) handleAccess(req *Packet, now int64) *Packet {
	user, ok := req.GetString(AttrUserName)
	if !ok || user == "" {
		return New(AccessReject, req.Identifier)
	}
	sess, err := s.StartSession(user, now)
	if err != nil {
		return New(AccessReject, req.Identifier)
	}
	rep := New(AccessAccept, req.Identifier)
	rep.AddAddr4(AttrFramedIPAddress, sess.Addr4)
	rep.AddU32(AttrSessionTimeout, sess.Timeout)
	if sess.Prefix6.IsValid() {
		rep.AddPrefix6(AttrDelegatedIPv6Prefix, sess.Prefix6)
	}
	return rep
}

// cacheReply records a first-seen request's reply for RFC 5080 §2.2.2
// duplicate detection and prunes entries past the window.
func (s *Server) cacheReply(key replayKey, rep *Packet, now int64) {
	e := &replayEntry{key: key, reply: rep, at: now}
	s.replay[key] = e
	s.replayQ = append(s.replayQ, e)
	for len(s.replayQ) > 0 && now-s.replayQ[0].at >= replayWindowSec {
		old := s.replayQ[0]
		s.replayQ = s.replayQ[1:]
		// A key re-inserted after expiry owns a newer entry; only
		// drop the mapping the stale queue slot still owns.
		if s.replay[old.key] == old {
			delete(s.replay, old.key)
		}
	}
}

// Handle processes one RADIUS packet and returns the reply (nil for
// unhandled codes). now is the current time in seconds.
//
// A retransmitted request — same Identifier and Request Authenticator
// within the duplicate window — returns the cached reply without
// touching session state: a retransmitted Access-Request keeps the
// address the first transmission allocated, and a retransmitted
// CoA-Request does not renumber the subscriber twice (RFC 5176 inherits
// RFC 5080's duplicate detection).
func (s *Server) Handle(req *Packet, now int64) (*Packet, error) {
	switch req.Code {
	case AccessRequest, CoARequest, DisconnectRequest:
		key := replayKey{id: req.Identifier, auth: req.Authenticator}
		if e, ok := s.replay[key]; ok && now-e.at < replayWindowSec {
			s.stats.ReplayHits++
			return e.reply, nil
		}
		var rep *Packet
		switch req.Code {
		case AccessRequest:
			s.stats.AccessRequests++
			rep = s.handleAccess(req, now)
			if rep.Code == AccessReject {
				s.stats.Rejects++
			}
		case CoARequest:
			s.stats.CoARequests++
			rep = s.handleCoA(req, now)
		case DisconnectRequest:
			s.stats.Disconnects++
			rep = s.handleDisconnect(req)
		}
		s.cacheReply(key, rep, now)
		return rep, nil

	case AccountingRequest:
		if st, ok := req.GetU32(AttrAcctStatusType); ok && st == AcctStop {
			if user, ok := req.GetString(AttrUserName); ok {
				s.StopSession(user)
			}
		}
		return New(AccountingResponse, req.Identifier), nil

	default:
		return nil, fmt.Errorf("radius: unhandled code %v", req.Code)
	}
}

// Serve answers RADIUS packets on conn until it is closed, returning
// net.ErrClosed. now() supplies session start times.
//
// A bare *Server is not safe for concurrent use: Serve processes packets
// strictly in arrival order, and nothing else may touch the server while
// the loop runs. To observe server state mid-serve, pass a *Guarded.
func Serve(conn net.PacketConn, s Handler, now func() int64) error {
	buf := make([]byte, 4096)
	for {
		n, src, err := conn.ReadFrom(buf)
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return net.ErrClosed
			}
			return fmt.Errorf("radius: read: %w", err)
		}
		req, err := Parse(buf[:n])
		if err != nil {
			continue
		}
		rep, err := s.Handle(req, now())
		if err != nil || rep == nil {
			continue
		}
		if _, err := conn.WriteTo(rep.EncodeResponse(req, s.Secret()), src); err != nil {
			if errors.Is(err, net.ErrClosed) {
				return net.ErrClosed
			}
			return fmt.Errorf("radius: write: %w", err)
		}
	}
}
