package radius

import (
	"net"
	"net/netip"
	"reflect"
	"testing"
	"time"

	"dynamips/internal/faultnet"
)

func TestClientRetransmitterSchedule(t *testing.T) {
	rt := NewRetransmitter(nil)
	want := []int64{3_000, 6_000, 12_000, 24_000}
	for i, w := range want {
		wait, more := rt.Next()
		if wait != w {
			t.Fatalf("wait %d = %d ms, want %d", i, wait, w)
		}
		if more != (i < len(want)-1) {
			t.Fatalf("wait %d reported more=%v", i, more)
		}
	}
}

// accessReq builds an Access-Request with a distinctive authenticator.
func accessReq(id byte, auth byte, user string) *Packet {
	req := New(AccessRequest, id)
	req.Authenticator = [16]byte{auth, 1, 2, 3}
	req.AddString(AttrUserName, user)
	return req
}

// TestDuplicateAccessRequestIsIdempotent pins the RFC 5080 §2.2.2 fix: a
// retransmitted Access-Request (same Identifier and Request
// Authenticator) must return the same Access-Accept — same
// Framed-IP-Address, same Session-Timeout — without allocating a second
// session or resetting the first one.
func TestDuplicateAccessRequestIsIdempotent(t *testing.T) {
	s := newTestServer(86400, false)
	req := accessReq(7, 0xaa, "dup-user")

	first, err := s.Handle(req, 100)
	if err != nil {
		t.Fatal(err)
	}
	if first.Code != AccessAccept {
		t.Fatalf("first reply %v", first.Code)
	}
	addr1, _ := first.GetAddr4(AttrFramedIPAddress)
	sessions := s.ActiveSessions()

	// The duplicate arrives 5 seconds later, well inside the window.
	second, err := s.Handle(req, 105)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, second) {
		t.Fatalf("duplicate got a different reply:\nfirst  %+v\nsecond %+v", first, second)
	}
	addr2, _ := second.GetAddr4(AttrFramedIPAddress)
	if addr1 != addr2 {
		t.Fatalf("duplicate reallocated: %v then %v", addr1, addr2)
	}
	if s.ActiveSessions() != sessions {
		t.Fatalf("duplicate changed session count: %d -> %d", sessions, s.ActiveSessions())
	}
	// The original session's start time must not have been reset by the
	// duplicate: a fresh allocation at now=105 would start then.
	if sess := s.sessions["dup-user"]; sess.Start != 100 {
		t.Fatalf("duplicate reset session start to %d", sess.Start)
	}
}

func TestFreshAuthenticatorAllocatesFreshly(t *testing.T) {
	s := newTestServer(86400, false)
	a, _ := s.Handle(accessReq(7, 0xaa, "re-user"), 100)
	// Same identifier, different authenticator: a genuinely new request
	// (a reconnect), which RADIUS-style assignment answers with a fresh
	// address.
	b, _ := s.Handle(accessReq(7, 0xbb, "re-user"), 101)
	addrA, _ := a.GetAddr4(AttrFramedIPAddress)
	addrB, _ := b.GetAddr4(AttrFramedIPAddress)
	if addrA == addrB {
		t.Fatalf("new authenticator reused address %v", addrA)
	}
	if s.ActiveSessions() != 1 {
		t.Fatalf("reconnect left %d sessions", s.ActiveSessions())
	}
}

func TestDuplicateWindowExpiry(t *testing.T) {
	s := newTestServer(86400, false)
	req := accessReq(7, 0xaa, "slow-user")
	a, _ := s.Handle(req, 100)
	// Past the 30 s window the same bytes are a new request again.
	b, _ := s.Handle(req, 100+replayWindowSec)
	addrA, _ := a.GetAddr4(AttrFramedIPAddress)
	addrB, _ := b.GetAddr4(AttrFramedIPAddress)
	if addrA == addrB {
		t.Fatalf("expired duplicate still served cached address %v", addrA)
	}
	if len(s.replay) != 1 || len(s.replayQ) != 1 {
		t.Fatalf("expired entries not pruned: map %d queue %d", len(s.replay), len(s.replayQ))
	}
}

func TestDuplicateRejectIsCached(t *testing.T) {
	s := NewServer(ServerConfig{
		Pools4:         []netip.Prefix{netip.MustParsePrefix("81.10.0.0/31")},
		SessionTimeout: 3600,
	})
	// Exhaust the 2-address pool, then duplicate the failing request.
	s.Handle(accessReq(1, 1, "u1"), 0)
	s.Handle(accessReq(2, 2, "u2"), 0)
	rej, _ := s.Handle(accessReq(3, 3, "u3"), 0)
	if rej.Code != AccessReject {
		t.Fatalf("expected reject, got %v", rej.Code)
	}
	again, _ := s.Handle(accessReq(3, 3, "u3"), 1)
	if !reflect.DeepEqual(rej, again) {
		t.Fatal("duplicate of a rejected request got a different reply")
	}
}

// TestClientRetransmitsOverLossyWire runs Access over a UDP socket whose
// client side drops the first datagram: the identifier-based retransmit
// must deliver, and the duplicate the wire creates must not consume a
// second address.
func TestClientRetransmitsOverLossyWire(t *testing.T) {
	s := NewGuarded(newTestServer(86400, false))
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer pc.Close()
	go Serve(pc, s, func() int64 { return 0 })

	cc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer cc.Close()

	// Seed such that the first write is dropped and the second passes:
	// the exchange succeeds only via retransmission.
	seed := dropThenPassSeed(t)
	c := &Client{
		Conn:      faultnet.WrapConn(cc, faultnet.Profile{Drop: 0.5}, seed),
		Server:    pc.LocalAddr(),
		Secret:    []byte("s3cret"),
		Timeout:   5 * time.Second,
		WaitScale: 0.01, // 3 s base wait → 30 ms of test time
	}
	rep, err := c.Access("wire-user")
	if err != nil {
		t.Fatalf("Access through 50%% loss: %v", err)
	}
	if rep.Code != AccessAccept {
		t.Fatalf("reply %v", rep.Code)
	}
	if s.ActiveSessions() != 1 {
		t.Fatalf("lossy exchange left %d sessions", s.ActiveSessions())
	}
}

// TestDuplicateOverWire duplicates the request datagram on the wire: the
// server must answer both copies identically from one allocation.
func TestDuplicateOverWire(t *testing.T) {
	s := NewGuarded(newTestServer(86400, false))
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer pc.Close()
	go Serve(pc, s, func() int64 { return 0 })

	cc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer cc.Close()

	c := &Client{
		Conn:    faultnet.WrapConn(cc, faultnet.Profile{Dup: 1}, 1),
		Server:  pc.LocalAddr(),
		Secret:  []byte("s3cret"),
		Timeout: 5 * time.Second,
	}
	rep, err := c.Access("dup-wire-user")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Code != AccessAccept {
		t.Fatalf("reply %v", rep.Code)
	}
	if s.ActiveSessions() != 1 {
		t.Fatalf("duplicated request allocated %d sessions", s.ActiveSessions())
	}
}

func dropThenPassSeed(t *testing.T) uint64 {
	t.Helper()
	for seed := uint64(0); seed < 1000; seed++ {
		s := faultnet.NewStream(seed, 0)
		if s.Float64() < 0.5 && s.Float64() >= 0.5 {
			return seed
		}
	}
	t.Fatal("no (drop, pass) seed in [0,1000)")
	return 0
}
