package radius

import (
	"strings"
	"testing"
	"testing/quick"
)

var testAuth = [16]byte{0xde, 0xad, 0xbe, 0xef, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12}

func TestPasswordRoundTrip(t *testing.T) {
	secret := []byte("s3cret")
	for _, pw := range []string{"a", "password", "exactly-16-chars", strings.Repeat("x", 17), strings.Repeat("y", 128)} {
		hidden, err := HidePassword(pw, secret, testAuth)
		if err != nil {
			t.Fatalf("HidePassword(%q): %v", pw, err)
		}
		if len(hidden)%16 != 0 {
			t.Fatalf("hidden length %d not padded", len(hidden))
		}
		got, err := RecoverPassword(hidden, secret, testAuth)
		if err != nil {
			t.Fatalf("RecoverPassword: %v", err)
		}
		if got != pw {
			t.Errorf("round trip %q -> %q", pw, got)
		}
		if !CheckPassword(hidden, pw, secret, testAuth) {
			t.Errorf("CheckPassword(%q) failed", pw)
		}
		if CheckPassword(hidden, pw+"x", secret, testAuth) {
			t.Errorf("CheckPassword accepted wrong password")
		}
		if CheckPassword(hidden, pw, []byte("wrong"), testAuth) {
			t.Errorf("CheckPassword accepted wrong secret")
		}
	}
}

func TestPasswordRoundTripProperty(t *testing.T) {
	secret := []byte("shared")
	f := func(raw []byte, auth [16]byte) bool {
		// Build a printable, bounded, zero-free password from raw bytes
		// (trailing NULs are indistinguishable from padding by design).
		var sb strings.Builder
		for _, b := range raw {
			if sb.Len() >= 100 {
				break
			}
			sb.WriteByte('!' + b%90)
		}
		pw := sb.String()
		if pw == "" {
			return true
		}
		hidden, err := HidePassword(pw, secret, auth)
		if err != nil {
			return false
		}
		got, err := RecoverPassword(hidden, secret, auth)
		return err == nil && got == pw
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPasswordErrors(t *testing.T) {
	if _, err := HidePassword("", nil, testAuth); err == nil {
		t.Error("empty password accepted")
	}
	if _, err := HidePassword(strings.Repeat("x", 129), nil, testAuth); err == nil {
		t.Error("oversize password accepted")
	}
	if _, err := RecoverPassword([]byte{1, 2, 3}, nil, testAuth); err == nil {
		t.Error("unpadded hidden password accepted")
	}
	if _, err := RecoverPassword(nil, nil, testAuth); err == nil {
		t.Error("empty hidden password accepted")
	}
	if CheckPassword([]byte{1}, "x", nil, testAuth) {
		t.Error("malformed hidden password verified")
	}
}

func TestPasswordInPacket(t *testing.T) {
	secret := []byte("s3cret")
	req := New(AccessRequest, 3)
	req.Authenticator = testAuth
	hidden, err := HidePassword("hunter2", secret, req.Authenticator)
	if err != nil {
		t.Fatal(err)
	}
	req.AddString(AttrUserName, "sub-1")
	req.Add(AttrUserPassword, hidden)

	got, err := Parse(req.Encode())
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	v, ok := got.Get(AttrUserPassword)
	if !ok {
		t.Fatal("User-Password missing")
	}
	if !CheckPassword(v, "hunter2", secret, got.Authenticator) {
		t.Error("password did not verify after wire round trip")
	}
}
