// Dynamic Authorization Extensions (RFC 5176): CoA-Request and
// Disconnect-Request handling. These are the operator-initiated packets
// behind mid-lease renumbering — a CoA re-authorizes a live session with
// fresh address attributes, a Disconnect-Message tears it down — and
// both produce DynamIPs-visible assignment changes that no subscriber
// action explains. internal/bng's engines drive these paths for
// scenario-scheduled operator events.
package radius

import (
	"crypto/md5"
	"encoding/binary"
)

// RFC 5176 §3 packet codes.
const (
	DisconnectRequest Code = 40
	DisconnectACK     Code = 41
	DisconnectNAK     Code = 42
	CoARequest        Code = 43
	CoAACK            Code = 44
	CoANAK            Code = 45
)

// AttrErrorCause is the RFC 5176 §3.5 Error-Cause attribute carried in
// NAK replies.
const AttrErrorCause byte = 101

// Error-Cause values (RFC 5176 §3.5).
const (
	ErrCauseMissingAttribute    uint32 = 402
	ErrCauseSessionNotFound     uint32 = 503
	ErrCauseResourceUnavailable uint32 = 506
)

// EncodeRequest serializes a server-originated request (CoA-Request,
// Disconnect-Request, or Accounting-Request) and fills in its Request
// Authenticator: MD5 over the packet with a zeroed authenticator field
// followed by the shared secret (RFC 5176 §3, same construction as
// RFC 2866 §3). The computed authenticator is stored on p so a
// retransmission reuses it byte-identically.
func (p *Packet) EncodeRequest(secret []byte) []byte {
	attrs := p.attrBytes()
	b := make([]byte, 20+len(attrs))
	b[0] = byte(p.Code)
	b[1] = p.Identifier
	binary.BigEndian.PutUint16(b[2:], uint16(len(b)))
	// bytes 4..20 stay zero for the digest
	copy(b[20:], attrs)
	h := md5.New()
	h.Write(b)
	h.Write(secret)
	sum := h.Sum(nil)
	copy(b[4:20], sum)
	copy(p.Authenticator[:], sum)
	return b
}

// VerifyRequest checks a server-originated request's Request
// Authenticator against the shared secret.
func VerifyRequest(req []byte, secret []byte) error {
	if len(req) < 20 {
		return ErrShortPacket
	}
	var got [16]byte
	copy(got[:], req[4:20])
	scratch := append([]byte(nil), req...)
	for i := 4; i < 20; i++ {
		scratch[i] = 0
	}
	h := md5.New()
	h.Write(scratch)
	h.Write(secret)
	if [16]byte(h.Sum(nil)) != got {
		return ErrBadAuth
	}
	return nil
}

// nakWithCause builds a NAK reply carrying an Error-Cause.
func nakWithCause(code Code, id byte, cause uint32) *Packet {
	rep := New(code, id)
	rep.AddU32(AttrErrorCause, cause)
	return rep
}

// handleDisconnect processes one first-seen Disconnect-Request: the
// named user's session is torn down and its addresses freed, forcing the
// subscriber through a full reattach (§2.2's operator-driven changes).
func (s *Server) handleDisconnect(req *Packet) *Packet {
	user, ok := req.GetString(AttrUserName)
	if !ok || user == "" {
		s.stats.DynauthNAKs++
		return nakWithCause(DisconnectNAK, req.Identifier, ErrCauseMissingAttribute)
	}
	if _, ok := s.sessions[user]; !ok {
		s.stats.DynauthNAKs++
		return nakWithCause(DisconnectNAK, req.Identifier, ErrCauseSessionNotFound)
	}
	s.StopSession(user)
	return New(DisconnectACK, req.Identifier)
}

// handleCoA processes one first-seen CoA-Request: the named user's live
// session is re-authorized with freshly allocated addresses — the
// mid-lease renumbering a RADIUS operator forces without disconnecting
// the subscriber. The ACK carries the new Framed-IP-Address and, when
// the server delegates IPv6, the new Delegated-IPv6-Prefix.
func (s *Server) handleCoA(req *Packet, now int64) *Packet {
	user, ok := req.GetString(AttrUserName)
	if !ok || user == "" {
		s.stats.DynauthNAKs++
		return nakWithCause(CoANAK, req.Identifier, ErrCauseMissingAttribute)
	}
	old, ok := s.sessions[user]
	if !ok {
		s.stats.DynauthNAKs++
		return nakWithCause(CoANAK, req.Identifier, ErrCauseSessionNotFound)
	}
	start := old.Start
	sess, err := s.StartSession(user, now)
	if err != nil {
		s.stats.DynauthNAKs++
		return nakWithCause(CoANAK, req.Identifier, ErrCauseResourceUnavailable)
	}
	sess.Start = start // the session survives; only its authorization changed
	rep := New(CoAACK, req.Identifier)
	rep.AddAddr4(AttrFramedIPAddress, sess.Addr4)
	rep.AddU32(AttrSessionTimeout, sess.Timeout)
	if sess.Prefix6.IsValid() {
		rep.AddPrefix6(AttrDelegatedIPv6Prefix, sess.Prefix6)
	}
	return rep
}

// CoA performs one CoA-Request for user against the client's server,
// with the RFC 5176 request authenticator and the standard
// retransmitting exchange.
func (c *Client) CoA(user string) (*Packet, error) {
	req := New(CoARequest, c.NextID())
	req.AddString(AttrUserName, user)
	req.EncodeRequest(c.Secret)
	return c.Exchange(req)
}

// Disconnect performs one Disconnect-Request for user.
func (c *Client) Disconnect(user string) (*Packet, error) {
	req := New(DisconnectRequest, c.NextID())
	req.AddString(AttrUserName, user)
	req.EncodeRequest(c.Secret)
	return c.Exchange(req)
}
