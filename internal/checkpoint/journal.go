package checkpoint

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"

	"dynamips/internal/obs"
)

// Journal file layout: an 8-byte file header followed by length-prefixed,
// CRC-32C-checksummed frames, one per completed work unit, appended in
// strictly increasing unit order:
//
//	file   := header frame*
//	header := "DYNWAL01"                                  (8 bytes)
//	frame  := magic index length crc payload
//	magic  := "DJF1"                                      (4 bytes)
//	index  := uint32 BE   unit index; must equal the frame's position
//	length := uint32 BE   payload byte count
//	crc    := uint32 BE   CRC-32C over index||length||payload
//	payload:= length bytes, the unit's encoded result
//
// Because frames land in index order, the set of intact frames is always a
// contiguous prefix of the run's units; recovery truncates at the first
// corrupt or torn frame and the pipeline recomputes from there.

const (
	fileHeader     = "DYNWAL01"
	frameMagic     = "DJF1"
	frameHdrSize   = 16 // magic + index + length + crc
	maxFramePayload = 1 << 30
	// syncEvery bounds how many appended frames may sit unsynced: the
	// journal fsyncs every syncEvery-th append (and on Sync/Close). A
	// power loss can cost at most that many units; a plain process crash
	// costs none, since appends are single unbuffered writes.
	syncEvery = 32
)

// ErrCrashInjected is returned by Append when the configured crash plan
// fires (see SetCrashPlan): the deterministic stand-in for a SIGKILL at a
// journal sync point.
var ErrCrashInjected = errors.New("checkpoint: crash injected")

// Journal is one stage's write-ahead log of completed work units.
type Journal struct {
	f           *os.File
	path        string
	payloads    [][]byte // frames recovered at open, unit 0..len-1
	next        uint32   // index the next Append must carry
	unsynced    int
	truncations int64 // corruption-recovery truncations during open
	units       *obs.Counter
	logf        func(format string, args ...any)
}

// SetObserver attaches o to the journal: completed work units count under
// journal_units{stage=...}, whether they were replayed from disk at open
// or appended live afterwards. Counting units instead of append/replay
// events keeps the metric resume-invariant — a run killed and resumed at
// any point reports exactly the same totals as an uninterrupted one.
// Recovery truncations are diagnostics of a particular crash, not of the
// computation, so they go to the run log only. A nil o is a no-op.
func (j *Journal) SetObserver(o *obs.Observer, stage string) {
	if o == nil {
		return
	}
	j.units = o.Counter("journal_units", obs.L("stage", stage))
	j.units.Add(int64(len(j.payloads)))
}

// OpenJournal opens (or creates) a journal, scanning any existing frames.
// Corruption — a bad file header, a torn or checksum-failing frame, an
// out-of-sequence index — is never an error: the journal is truncated at
// the last intact frame, a warning goes to logf, and the scan's survivors
// are exposed via Payloads. logf may be nil.
func OpenJournal(path string, logf func(format string, args ...any)) (*Journal, error) {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: opening journal %s: %w", path, err)
	}
	j := &Journal{f: f, path: path, logf: logf}
	if err := j.recover(); err != nil {
		f.Close()
		return nil, err
	}
	return j, nil
}

// recover scans the journal, truncating at the first sign of corruption.
func (j *Journal) recover() error {
	st, err := j.f.Stat()
	if err != nil {
		return fmt.Errorf("checkpoint: stat %s: %w", j.path, err)
	}
	size := st.Size()
	if size == 0 {
		if _, err := j.f.Write([]byte(fileHeader)); err != nil {
			return fmt.Errorf("checkpoint: writing journal header %s: %w", j.path, err)
		}
		return nil
	}
	hdr := make([]byte, len(fileHeader))
	if _, err := io.ReadFull(j.f, hdr); err != nil || string(hdr) != fileHeader {
		j.logf("journal %s: unrecognized file header; discarding journal", j.path)
		return j.truncate(0, true)
	}
	off := int64(len(fileHeader))
	var frame [frameHdrSize]byte
	for off < size {
		if size-off < frameHdrSize {
			j.logf("journal %s: %d trailing bytes are a torn frame header; truncating", j.path, size-off)
			return j.truncate(off, false)
		}
		if _, err := io.ReadFull(j.f, frame[:]); err != nil {
			return fmt.Errorf("checkpoint: reading %s at %d: %w", j.path, off, err)
		}
		index := binary.BigEndian.Uint32(frame[4:8])
		length := binary.BigEndian.Uint32(frame[8:12])
		sum := binary.BigEndian.Uint32(frame[12:16])
		switch {
		case string(frame[:4]) != frameMagic:
			j.logf("journal %s: bad frame magic at offset %d; truncating", j.path, off)
			return j.truncate(off, false)
		case index != j.next:
			j.logf("journal %s: frame at offset %d has index %d, want %d; truncating", j.path, off, index, j.next)
			return j.truncate(off, false)
		case int64(length) > size-off-frameHdrSize || length > maxFramePayload:
			j.logf("journal %s: frame %d claims %d payload bytes with %d available; truncating torn frame",
				j.path, index, length, size-off-frameHdrSize)
			return j.truncate(off, false)
		}
		payload := make([]byte, length)
		if _, err := io.ReadFull(j.f, payload); err != nil {
			return fmt.Errorf("checkpoint: reading %s frame %d: %w", j.path, index, err)
		}
		if frameCRC(index, payload) != sum {
			j.logf("journal %s: frame %d failed CRC-32C; truncating", j.path, index)
			return j.truncate(off, false)
		}
		j.payloads = append(j.payloads, payload)
		j.next++
		off += frameHdrSize + int64(length)
	}
	return nil
}

// truncate cuts the journal at off (re-writing the file header when the
// existing one was bad) and positions the write cursor at the new end.
func (j *Journal) truncate(off int64, rewriteHeader bool) error {
	j.truncations++
	if rewriteHeader {
		off = int64(len(fileHeader))
		if _, err := j.f.WriteAt([]byte(fileHeader), 0); err != nil {
			return fmt.Errorf("checkpoint: rewriting journal header %s: %w", j.path, err)
		}
	}
	if err := j.f.Truncate(off); err != nil {
		return fmt.Errorf("checkpoint: truncating %s to %d: %w", j.path, off, err)
	}
	if _, err := j.f.Seek(off, io.SeekStart); err != nil {
		return fmt.Errorf("checkpoint: seeking %s: %w", j.path, err)
	}
	return nil
}

// Payloads returns the recovered unit payloads: a contiguous prefix of the
// run's units. The caller must not mutate them.
func (j *Journal) Payloads() [][]byte { return j.payloads }

// Next returns the index the next Append must carry.
func (j *Journal) Next() int { return int(j.next) }

// frameCRC computes a frame's CRC-32C over index, length, and payload.
func frameCRC(index uint32, payload []byte) uint32 {
	var pre [8]byte
	binary.BigEndian.PutUint32(pre[0:4], index)
	binary.BigEndian.PutUint32(pre[4:8], uint32(len(payload)))
	crc := crc32.New(castagnoli)
	crc.Write(pre[:])
	crc.Write(payload)
	return crc.Sum32()
}

// Append journals one completed unit. Units must arrive in index order
// (parallel.MapErrOrdered guarantees this), so the on-disk frames are
// always a contiguous prefix. The frame goes out in a single unbuffered
// write; fsync happens every syncEvery appends and on Sync/Close.
func (j *Journal) Append(index int, payload []byte) error {
	if index != int(j.next) {
		return fmt.Errorf("checkpoint: journal %s: append index %d out of order, want %d", j.path, index, j.next)
	}
	if len(payload) > maxFramePayload {
		return fmt.Errorf("checkpoint: journal %s: %d-byte payload exceeds frame limit", j.path, len(payload))
	}
	frame := make([]byte, frameHdrSize+len(payload))
	copy(frame[0:4], frameMagic)
	binary.BigEndian.PutUint32(frame[4:8], j.next)
	binary.BigEndian.PutUint32(frame[8:12], uint32(len(payload)))
	binary.BigEndian.PutUint32(frame[12:16], frameCRC(j.next, payload))
	copy(frame[frameHdrSize:], payload)
	if torn, crashed := crashTicket(); crashed {
		if torn && len(frame) > 1 {
			j.f.Write(frame[:1+len(frame)/2]) //nolint:errcheck // simulating a kill mid-write
		}
		return ErrCrashInjected
	}
	if _, err := j.f.Write(frame); err != nil {
		return fmt.Errorf("checkpoint: appending to %s: %w", j.path, err)
	}
	j.units.Inc()
	j.next++
	j.unsynced++
	if j.unsynced >= syncEvery {
		return j.Sync()
	}
	return nil
}

// Sync fsyncs pending appends.
func (j *Journal) Sync() error {
	if j.unsynced == 0 {
		return nil
	}
	j.unsynced = 0
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("checkpoint: syncing %s: %w", j.path, err)
	}
	return nil
}

// Close syncs and closes the journal.
func (j *Journal) Close() error {
	if j.f == nil {
		return nil
	}
	serr := j.Sync()
	cerr := j.f.Close()
	j.f = nil
	if serr != nil {
		return serr
	}
	if cerr != nil {
		return fmt.Errorf("checkpoint: closing %s: %w", j.path, cerr)
	}
	return nil
}

// Crash plan: the deterministic crash-injection harness behind the
// kill-and-resume tests. SetCrashPlan(k, torn) makes the k-th journal
// Append across the process fail with ErrCrashInjected instead of (torn:
// after partially) writing its frame. Because appends are single
// unbuffered writes with no user-space buffering, the file state this
// leaves is byte-identical to what a SIGKILL at the same sync point would
// leave, so in-process tests exercise real kill semantics.
var crash struct {
	mu    sync.Mutex
	after int // 0 disables
	torn  bool
	count int
}

// SetCrashPlan arms (afterAppends > 0) or disarms (afterAppends <= 0) the
// crash plan and resets the process-wide append counter.
func SetCrashPlan(afterAppends int, torn bool) {
	crash.mu.Lock()
	defer crash.mu.Unlock()
	crash.after = max(afterAppends, 0)
	crash.torn = torn
	crash.count = 0
}

// crashTicket advances the append counter and reports whether this append
// is the planned crash point.
func crashTicket() (torn, crashed bool) {
	crash.mu.Lock()
	defer crash.mu.Unlock()
	if crash.after == 0 {
		return false, false
	}
	crash.count++
	return crash.torn, crash.count == crash.after
}
