package checkpoint

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/netip"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// collectLog returns a logf that appends formatted warnings to a
// mutex-guarded slice (journals may log from worker goroutines).
func collectLog() (func(format string, args ...any), func() []string) {
	var mu sync.Mutex
	var lines []string
	logf := func(format string, args ...any) {
		mu.Lock()
		defer mu.Unlock()
		lines = append(lines, fmt.Sprintf(format, args...))
	}
	get := func() []string {
		mu.Lock()
		defer mu.Unlock()
		return append([]string(nil), lines...)
	}
	return logf, get
}

func hasWarning(lines []string, substr string) bool {
	for _, l := range lines {
		if strings.Contains(l, substr) {
			return true
		}
	}
	return false
}

func TestAtomicFileCommit(t *testing.T) {
	dir := t.TempDir()
	dest := filepath.Join(dir, "out.txt")
	af, err := CreateAtomic(dest)
	if err != nil {
		t.Fatal(err)
	}
	defer af.Abort()
	if _, err := af.Write([]byte("hello ")); err != nil {
		t.Fatal(err)
	}
	if _, err := af.Write([]byte("world")); err != nil {
		t.Fatal(err)
	}
	if err := af.Commit(); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(dest)
	if err != nil || string(got) != "hello world" {
		t.Fatalf("read back %q, %v", got, err)
	}
	if err := af.Commit(); err == nil {
		t.Error("double Commit accepted")
	}
	entries, _ := os.ReadDir(dir)
	if len(entries) != 1 {
		t.Errorf("tempfile left behind: %v", entries)
	}
}

func TestAtomicFileAbortLeavesOldContent(t *testing.T) {
	dir := t.TempDir()
	dest := filepath.Join(dir, "out.txt")
	if err := os.WriteFile(dest, []byte("original"), 0o644); err != nil {
		t.Fatal(err)
	}
	af, err := CreateAtomic(dest)
	if err != nil {
		t.Fatal(err)
	}
	af.Write([]byte("half-written repl")) //nolint:errcheck
	af.Abort()
	got, err := os.ReadFile(dest)
	if err != nil || string(got) != "original" {
		t.Fatalf("abort clobbered destination: %q, %v", got, err)
	}
	entries, _ := os.ReadDir(dir)
	if len(entries) != 1 {
		t.Errorf("tempfile left behind after abort: %v", entries)
	}
}

func TestWriteFileAtomic(t *testing.T) {
	dir := t.TempDir()
	dest := filepath.Join(dir, "data.csv")
	if err := WriteFileAtomic(dest, func(w io.Writer) error {
		_, err := fmt.Fprintln(w, "a,b,c")
		return err
	}); err != nil {
		t.Fatal(err)
	}
	got, _ := os.ReadFile(dest)
	if string(got) != "a,b,c\n" {
		t.Fatalf("content %q", got)
	}

	// A failing write callback must leave the previous content intact.
	boom := errors.New("render failed")
	err := WriteFileAtomic(dest, func(w io.Writer) error {
		fmt.Fprintln(w, "partial garbage")
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	got, _ = os.ReadFile(dest)
	if string(got) != "a,b,c\n" {
		t.Fatalf("failed write clobbered destination: %q", got)
	}
	entries, _ := os.ReadDir(dir)
	if len(entries) != 1 {
		t.Errorf("tempfile left behind: %v", entries)
	}
}

func TestWriteFileAtomicMissingDir(t *testing.T) {
	if err := WriteFileAtomic(filepath.Join(t.TempDir(), "no", "such", "dir", "f"), func(io.Writer) error {
		return nil
	}); err == nil {
		t.Error("write into missing directory accepted")
	}
}

func testPayloads(n int) [][]byte {
	out := make([][]byte, n)
	for i := range out {
		out[i] = []byte(fmt.Sprintf("unit-%d-payload", i))
	}
	// An empty payload is legal; exercise it.
	if n > 2 {
		out[2] = nil
	}
	return out
}

func appendAll(t *testing.T, j *Journal, payloads [][]byte) {
	t.Helper()
	for i, p := range payloads {
		if err := j.Append(i, p); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
}

func TestJournalAppendRecover(t *testing.T) {
	path := filepath.Join(t.TempDir(), "stage.wal")
	j, err := OpenJournal(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := testPayloads(40) // crosses the syncEvery boundary
	appendAll(t, j, want)
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Errorf("double Close: %v", err)
	}

	logf, lines := collectLog()
	j2, err := OpenJournal(path, logf)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	got := j2.Payloads()
	if len(got) != len(want) || j2.Next() != len(want) {
		t.Fatalf("recovered %d payloads, next=%d", len(got), j2.Next())
	}
	for i := range want {
		if string(got[i]) != string(want[i]) {
			t.Fatalf("payload %d = %q, want %q", i, got[i], want[i])
		}
	}
	if len(lines()) != 0 {
		t.Errorf("clean recovery logged warnings: %v", lines())
	}
	// The journal must keep accepting appends after recovery.
	if err := j2.Append(len(want), []byte("next")); err != nil {
		t.Fatal(err)
	}
}

func TestJournalAppendErrors(t *testing.T) {
	j, err := OpenJournal(filepath.Join(t.TempDir(), "s.wal"), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if err := j.Append(1, nil); err == nil {
		t.Error("out-of-order append accepted")
	}
	if err := j.Append(0, nil); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(0, nil); err == nil {
		t.Error("repeated index accepted")
	}
}

// TestJournalCorruptionMatrix: every corruption mode must recover by
// truncating at the last intact frame with a logged warning, never an
// error or a panic, and the journal must accept appends at the truncated
// index afterwards.
func TestJournalCorruptionMatrix(t *testing.T) {
	const units = 5
	cases := []struct {
		name    string
		corrupt func(t *testing.T, path string)
		keep    int    // intact prefix expected after recovery
		warn    string // required warning substring
	}{
		{
			name: "bad file header",
			corrupt: func(t *testing.T, path string) {
				patchFile(t, path, 0, []byte("NOTAWAL!"))
			},
			keep: 0,
			warn: "unrecognized file header",
		},
		{
			name: "short file header",
			corrupt: func(t *testing.T, path string) {
				truncateFile(t, path, 3)
			},
			keep: 0,
			warn: "unrecognized file header",
		},
		{
			name: "torn frame header",
			corrupt: func(t *testing.T, path string) {
				truncateFile(t, path, frameOffset(t, path, units)+7)
			},
			keep: units,
			warn: "torn frame header",
		},
		{
			name: "torn payload",
			corrupt: func(t *testing.T, path string) {
				truncateFile(t, path, frameOffset(t, path, units)+frameHdrSize+3)
			},
			keep: units,
			warn: "truncating torn frame",
		},
		{
			name: "bad magic mid-file",
			corrupt: func(t *testing.T, path string) {
				patchFile(t, path, frameOffset(t, path, 2), []byte("XXXX"))
			},
			keep: 2,
			warn: "bad frame magic",
		},
		{
			name: "payload bit flip",
			corrupt: func(t *testing.T, path string) {
				off := frameOffset(t, path, 3) + frameHdrSize
				flipByte(t, path, off)
			},
			keep: 3,
			warn: "failed CRC-32C",
		},
		{
			name: "index out of sequence",
			corrupt: func(t *testing.T, path string) {
				off := frameOffset(t, path, 1) + 4
				var idx [4]byte
				binary.BigEndian.PutUint32(idx[:], 9)
				patchFile(t, path, off, idx[:])
			},
			keep: 1,
			warn: "index 9, want 1",
		},
		{
			name: "absurd length claim",
			corrupt: func(t *testing.T, path string) {
				off := frameOffset(t, path, 4) + 8
				var ln [4]byte
				binary.BigEndian.PutUint32(ln[:], 1<<31)
				patchFile(t, path, off, ln[:])
			},
			keep: 4,
			warn: "truncating torn frame",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "stage.wal")
			j, err := OpenJournal(path, nil)
			if err != nil {
				t.Fatal(err)
			}
			// One extra frame so mid-file corruption has a tail to drop.
			appendAll(t, j, testPayloads(units+1))
			if err := j.Close(); err != nil {
				t.Fatal(err)
			}
			tc.corrupt(t, path)

			logf, lines := collectLog()
			j2, err := OpenJournal(path, logf)
			if err != nil {
				t.Fatalf("recovery errored: %v", err)
			}
			defer j2.Close()
			if got := len(j2.Payloads()); got != tc.keep {
				t.Fatalf("recovered %d payloads, want %d", got, tc.keep)
			}
			if !hasWarning(lines(), tc.warn) {
				t.Fatalf("warning %q not logged; got %v", tc.warn, lines())
			}
			// The truncated journal must be appendable at its new end and
			// reopen cleanly.
			if err := j2.Append(tc.keep, []byte("replacement")); err != nil {
				t.Fatal(err)
			}
			if err := j2.Close(); err != nil {
				t.Fatal(err)
			}
			j3, err := OpenJournal(path, nil)
			if err != nil {
				t.Fatal(err)
			}
			defer j3.Close()
			if got := len(j3.Payloads()); got != tc.keep+1 {
				t.Fatalf("after repair: %d payloads, want %d", got, tc.keep+1)
			}
		})
	}
}

// frameOffset returns the byte offset of frame idx by scanning headers.
func frameOffset(t *testing.T, path string, idx int) int64 {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	off := int64(len(fileHeader))
	for i := 0; i < idx; i++ {
		length := binary.BigEndian.Uint32(b[off+8 : off+12])
		off += frameHdrSize + int64(length)
	}
	return off
}

func patchFile(t *testing.T, path string, off int64, p []byte) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.WriteAt(p, off); err != nil {
		t.Fatal(err)
	}
}

func flipByte(t *testing.T, path string, off int64) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var b [1]byte
	if _, err := f.ReadAt(b[:], off); err != nil {
		t.Fatal(err)
	}
	b[0] ^= 0xFF
	if _, err := f.WriteAt(b[:], off); err != nil {
		t.Fatal(err)
	}
}

func truncateFile(t *testing.T, path string, size int64) {
	t.Helper()
	if err := os.Truncate(path, size); err != nil {
		t.Fatal(err)
	}
}

func TestJournalCrashPlan(t *testing.T) {
	for _, torn := range []bool{false, true} {
		t.Run(fmt.Sprintf("torn=%v", torn), func(t *testing.T) {
			defer SetCrashPlan(0, false)
			path := filepath.Join(t.TempDir(), "s.wal")
			j, err := OpenJournal(path, nil)
			if err != nil {
				t.Fatal(err)
			}
			SetCrashPlan(3, torn)
			var gotErr error
			for i := 0; i < 5; i++ {
				if gotErr = j.Append(i, []byte(fmt.Sprintf("p%d", i))); gotErr != nil {
					break
				}
			}
			if !errors.Is(gotErr, ErrCrashInjected) {
				t.Fatalf("err = %v, want ErrCrashInjected", gotErr)
			}
			j.Close() //nolint:errcheck // simulating a dead process
			SetCrashPlan(0, false)

			logf, lines := collectLog()
			j2, err := OpenJournal(path, logf)
			if err != nil {
				t.Fatal(err)
			}
			defer j2.Close()
			if got := len(j2.Payloads()); got != 2 {
				t.Fatalf("recovered %d payloads, want 2 (appends before the crash)", got)
			}
			if torn && !hasWarning(lines(), "truncating") {
				t.Errorf("torn crash left no truncation warning: %v", lines())
			}
		})
	}
}

func TestRunOpenFreshAndResume(t *testing.T) {
	dir := t.TempDir()
	key := Key{Seed: 7, ConfigHash: "abc", Code: CodeVersion()}
	cmd := json.RawMessage(`{"kind":"test"}`)

	r, err := Open(dir, key, cmd, nil)
	if err != nil {
		t.Fatal(err)
	}
	if r.Resumed() {
		t.Error("fresh open reported resumed")
	}
	if r.Dir() != dir || r.Key() != key || string(r.Command()) != string(cmd) {
		t.Error("accessors disagree with Open arguments")
	}
	j, err := r.Journal("stage-a")
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(0, []byte("x")); err != nil {
		t.Fatal(err)
	}
	// Journal caching: same stage returns the same journal.
	if j2, _ := r.Journal("stage-a"); j2 != j {
		t.Error("stage journal not cached")
	}
	if _, err := r.Journal("Bad Name!"); err == nil {
		t.Error("invalid stage name accepted")
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}

	// Same key: resumes, journal intact.
	r2, err := Open(dir, key, cmd, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !r2.Resumed() {
		t.Error("same-key reopen did not resume")
	}
	j, err = r2.Journal("stage-a")
	if err != nil {
		t.Fatal(err)
	}
	if len(j.Payloads()) != 1 {
		t.Errorf("journal lost across reopen: %d payloads", len(j.Payloads()))
	}
	if err := r2.Close(); err != nil {
		t.Fatal(err)
	}

	// Resume() on the same directory works and exposes the command.
	r3, err := Resume(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	var replay struct{ Kind string }
	if err := json.Unmarshal(r3.Command(), &replay); err != nil {
		t.Fatal(err)
	}
	if !r3.Resumed() || replay.Kind != "test" {
		t.Error("Resume lost manifest state")
	}
	r3.Close()

	// Different key: stale checkpoint is discarded with a warning and the
	// journals are cleared.
	logf, lines := collectLog()
	r4, err := Open(dir, Key{Seed: 8, ConfigHash: "abc", Code: CodeVersion()}, cmd, logf)
	if err != nil {
		t.Fatal(err)
	}
	defer r4.Close()
	if r4.Resumed() {
		t.Error("stale checkpoint reported resumed")
	}
	if !hasWarning(lines(), "starting fresh") {
		t.Errorf("stale discard not logged: %v", lines())
	}
	j, err = r4.Journal("stage-a")
	if err != nil {
		t.Fatal(err)
	}
	if len(j.Payloads()) != 0 {
		t.Error("stale journal survived key change")
	}
}

func TestRunResumeErrors(t *testing.T) {
	if _, err := Resume(filepath.Join(t.TempDir(), "nothing-here"), nil); err == nil {
		t.Error("Resume of empty directory accepted")
	}

	// Unparseable manifest: Resume errors, Open starts fresh with warning.
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, manifestName), []byte("{garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Resume(dir, nil); err == nil {
		t.Error("Resume with corrupt manifest accepted")
	}
	logf, lines := collectLog()
	r, err := Open(dir, Key{Seed: 1, Code: CodeVersion()}, nil, logf)
	if err != nil {
		t.Fatal(err)
	}
	r.Close()
	if !hasWarning(lines(), "unreadable manifest") {
		t.Errorf("corrupt manifest not logged: %v", lines())
	}

	// Manifest from a different code version: Resume must refuse.
	dir2 := t.TempDir()
	m := Manifest{Format: FormatVersion, Key: Key{Seed: 1, Code: "some-other-binary"}}
	b, _ := json.Marshal(m)
	if err := os.WriteFile(filepath.Join(dir2, manifestName), b, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Resume(dir2, nil); err == nil {
		t.Error("Resume across code versions accepted")
	}

	// Nil-run Close is a no-op.
	var nilRun *Run
	if err := nilRun.Close(); err != nil {
		t.Errorf("nil Close: %v", err)
	}
}

func TestHashConfigAndCodeVersion(t *testing.T) {
	type cfg struct {
		A int
		B string
	}
	h1, err := HashConfig(cfg{1, "x"})
	if err != nil {
		t.Fatal(err)
	}
	h2, _ := HashConfig(cfg{1, "x"})
	h3, _ := HashConfig(cfg{2, "x"})
	if h1 != h2 {
		t.Error("equal configs hash differently")
	}
	if h1 == h3 {
		t.Error("different configs hash equal")
	}
	if _, err := HashConfig(func() {}); err == nil {
		t.Error("unmarshalable config accepted")
	}
	if !strings.HasPrefix(CodeVersion(), FormatVersion) {
		t.Errorf("CodeVersion %q does not start with format version", CodeVersion())
	}
}

func stageCodecs() (func(int) ([]byte, error), func([]byte) (int, error)) {
	return GobEncode[int], GobDecode[int]
}

func TestStageNilRun(t *testing.T) {
	enc, dec := stageCodecs()
	out, err := Stage(nil, "s", 5, 2, func(i int) (int, error) { return i * 10, nil }, enc, dec)
	if err != nil || len(out) != 5 || out[3] != 30 {
		t.Fatalf("out=%v err=%v", out, err)
	}
}

func TestStageJournalAndResume(t *testing.T) {
	dir := t.TempDir()
	key := Key{Seed: 1, ConfigHash: "h", Code: CodeVersion()}
	enc, dec := stageCodecs()

	// First run crashes at unit 6 (compute error stands in for a kill).
	boom := errors.New("crash")
	r, err := Open(dir, key, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	_, err = Stage(r, "work", 10, 1, func(i int) (int, error) {
		if i == 6 {
			return 0, boom
		}
		return i * i, nil
	}, enc, dec)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	r.Close()

	// Second run must recompute only units 6..9.
	logf, lines := collectLog()
	r2, err := Open(dir, key, nil, logf)
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	var computed []int
	var mu sync.Mutex
	out, err := Stage(r2, "work", 10, 4, func(i int) (int, error) {
		mu.Lock()
		computed = append(computed, i)
		mu.Unlock()
		return i * i, nil
	}, enc, dec)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
	for _, i := range computed {
		if i < 6 {
			t.Fatalf("journaled unit %d recomputed", i)
		}
	}
	if !hasWarning(lines(), "resuming with 6/10") {
		t.Errorf("resume not logged: %v", lines())
	}
}

func TestStageOversizedJournal(t *testing.T) {
	dir := t.TempDir()
	key := Key{Seed: 1, ConfigHash: "h", Code: CodeVersion()}
	enc, dec := stageCodecs()
	r, err := Open(dir, key, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Stage(r, "s", 4, 1, func(i int) (int, error) { return i, nil }, enc, dec); err != nil {
		t.Fatal(err)
	}
	r.Close()
	r2, err := Open(dir, key, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	if _, err := Stage(r2, "s", 2, 1, func(i int) (int, error) { return i, nil }, enc, dec); err == nil {
		t.Error("journal longer than the run accepted")
	}
}

func TestStageUndecodablePayloadRecomputes(t *testing.T) {
	dir := t.TempDir()
	key := Key{Seed: 1, ConfigHash: "h", Code: CodeVersion()}
	r, err := Open(dir, key, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Journal a frame whose payload is not valid gob.
	j, err := r.Journal("s")
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(0, []byte("not gob")); err != nil {
		t.Fatal(err)
	}
	r.Close()

	logf, lines := collectLog()
	r2, err := Open(dir, key, nil, logf)
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	enc, dec := stageCodecs()
	out, err := Stage(r2, "s", 2, 1, func(i int) (int, error) { return 100 + i, nil }, enc, dec)
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != 100 || out[1] != 101 {
		t.Fatalf("out = %v", out)
	}
	if !hasWarning(lines(), "undecodable") {
		t.Errorf("undecodable payload not logged: %v", lines())
	}
}

func TestGobCodecNetip(t *testing.T) {
	type unit struct {
		Addr   netip.Addr
		Prefix netip.Prefix
		Xs     []float64
	}
	in := unit{
		Addr:   netip.MustParseAddr("2001:db8::1"),
		Prefix: netip.MustParsePrefix("81.10.0.0/16"),
		Xs:     []float64{1, 2.5},
	}
	b, err := GobEncode(in)
	if err != nil {
		t.Fatal(err)
	}
	got, err := GobDecode[unit](b)
	if err != nil {
		t.Fatal(err)
	}
	if got.Addr != in.Addr || got.Prefix != in.Prefix || len(got.Xs) != 2 {
		t.Fatalf("round trip lost data: %+v", got)
	}
	if _, err := GobDecode[unit]([]byte("junk")); err == nil {
		t.Error("garbage gob accepted")
	}
}

// FuzzJournalScan: journal recovery must never panic or error on arbitrary
// file bytes — any input recovers to some intact prefix that then accepts
// an append and reopens cleanly.
func FuzzJournalScan(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte(fileHeader))
	f.Add([]byte("DYNWAL01DJF1\x00\x00\x00\x00\x00\x00\x00\x04\x00\x00\x00\x00abcd"))
	// A genuine two-frame journal as a seed.
	dir := f.TempDir()
	seedPath := filepath.Join(dir, "seed.wal")
	j, err := OpenJournal(seedPath, nil)
	if err != nil {
		f.Fatal(err)
	}
	j.Append(0, []byte("hello")) //nolint:errcheck
	j.Append(1, []byte("world")) //nolint:errcheck
	j.Close()                    //nolint:errcheck
	seed, err := os.ReadFile(seedPath)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add(append(seed, "DJF1garbage"...))

	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "fuzz.wal")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		j, err := OpenJournal(path, nil)
		if err != nil {
			t.Fatalf("recovery errored on arbitrary bytes: %v", err)
		}
		n := j.Next()
		if n != len(j.Payloads()) {
			t.Fatalf("Next()=%d but %d payloads", n, len(j.Payloads()))
		}
		if err := j.Append(n, []byte("tail")); err != nil {
			t.Fatalf("append after recovery: %v", err)
		}
		if err := j.Close(); err != nil {
			t.Fatal(err)
		}
		j2, err := OpenJournal(path, nil)
		if err != nil {
			t.Fatalf("reopen after repair: %v", err)
		}
		defer j2.Close()
		if got := len(j2.Payloads()); got != n+1 {
			t.Fatalf("reopen found %d payloads, want %d", got, n+1)
		}
	})
}
