package checkpoint

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

// randPayloads draws n random frames, mixing empty, small, and multi-KB
// payloads — the shapes real stage encoders produce.
func randPayloads(rng *rand.Rand, n int) [][]byte {
	out := make([][]byte, n)
	for i := range out {
		size := 0
		switch rng.Intn(3) {
		case 1:
			size = rng.Intn(64)
		case 2:
			size = rng.Intn(4096)
		}
		p := make([]byte, size)
		rng.Read(p)
		out[i] = p
	}
	return out
}

// writeJournal appends payloads to a fresh journal at path and closes it.
func writeJournal(t *testing.T, path string, payloads [][]byte) {
	t.Helper()
	j, err := OpenJournal(path, nil)
	if err != nil {
		t.Fatalf("OpenJournal: %v", err)
	}
	for i, p := range payloads {
		if err := j.Append(i, p); err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

// TestJournalRoundTripProperty checks append→reopen identity over seeded
// random payload sets: recovery must return every frame byte-for-byte.
func TestJournalRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	dir := t.TempDir()
	for iter := 0; iter < 50; iter++ {
		path := filepath.Join(dir, "round.wal")
		os.Remove(path)
		in := randPayloads(rng, rng.Intn(20))
		writeJournal(t, path, in)
		j, err := OpenJournal(path, nil)
		if err != nil {
			t.Fatalf("iter %d: reopen: %v", iter, err)
		}
		got := j.Payloads()
		if len(got) != len(in) {
			t.Fatalf("iter %d: recovered %d frames, want %d", iter, len(got), len(in))
		}
		for i := range in {
			if !bytes.Equal(got[i], in[i]) {
				t.Fatalf("iter %d: frame %d diverged", iter, i)
			}
		}
		j.Close()
	}
}

// prefixOf reports whether got is a byte-exact prefix of want.
func prefixOf(got, want [][]byte) bool {
	if len(got) > len(want) {
		return false
	}
	for i := range got {
		if !bytes.Equal(got[i], want[i]) {
			return false
		}
	}
	return true
}

// TestJournalTruncatedPrefixNoPanic re-opens the journal truncated at
// every byte offset: recovery must never panic or error, and the frames
// it salvages must be a contiguous prefix of what was appended — the
// invariant the resume path's correctness rests on.
func TestJournalTruncatedPrefixNoPanic(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	dir := t.TempDir()
	in := randPayloads(rng, 8)
	full := filepath.Join(dir, "full.wal")
	writeJournal(t, full, in)
	enc, err := os.ReadFile(full)
	if err != nil {
		t.Fatalf("reading journal: %v", err)
	}
	for cut := 0; cut <= len(enc); cut++ {
		path := filepath.Join(dir, "cut.wal")
		if err := os.WriteFile(path, enc[:cut], 0o644); err != nil {
			t.Fatalf("cut %d: writing: %v", cut, err)
		}
		j, err := OpenJournal(path, nil)
		if err != nil {
			t.Fatalf("cut %d: OpenJournal: %v", cut, err)
		}
		if !prefixOf(j.Payloads(), in) {
			t.Fatalf("cut %d: recovered frames are not a prefix of the appended frames", cut)
		}
		j.Close()
	}
}

// TestJournalCorruptedByteRecoversPrefix flips one byte at a time through
// the encoded journal: recovery must never panic, and — because every
// frame is CRC-protected — the surviving frames must still be a prefix of
// the appended set (barring the vanishingly unlikely CRC collision, which
// the fixed corpus below does not contain).
func TestJournalCorruptedByteRecoversPrefix(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	dir := t.TempDir()
	in := randPayloads(rng, 5)
	full := filepath.Join(dir, "full.wal")
	writeJournal(t, full, in)
	enc, err := os.ReadFile(full)
	if err != nil {
		t.Fatalf("reading journal: %v", err)
	}
	for pos := 0; pos < len(enc); pos++ {
		corrupt := append([]byte(nil), enc...)
		corrupt[pos] ^= 0xFF
		path := filepath.Join(dir, "corrupt.wal")
		if err := os.WriteFile(path, corrupt, 0o644); err != nil {
			t.Fatalf("pos %d: writing: %v", pos, err)
		}
		j, err := OpenJournal(path, nil)
		if err != nil {
			t.Fatalf("pos %d: OpenJournal: %v", pos, err)
		}
		if !prefixOf(j.Payloads(), in) {
			t.Fatalf("pos %d: corruption produced frames that are not a prefix", pos)
		}
		j.Close()
	}
}
