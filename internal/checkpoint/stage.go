package checkpoint

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"dynamips/internal/parallel"
)

// Stage runs one journaled pipeline stage: n independent work units
// computed under the usual deterministic fan-out, with each completed
// unit's encoded result appended to the run's stage journal in index
// order. Units already present in the journal are decoded instead of
// recomputed, so an interrupted run resumes exactly where the journal's
// intact prefix ends. A nil run degrades to plain parallel.MapErr.
//
// The determinism contract makes this sound: compute(i) depends only on i
// and the run's configuration (which the manifest key pins), so a decoded
// unit is byte-equivalent to a recomputed one and the final output of a
// resumed run matches an uninterrupted run bit-for-bit at any worker
// count.
func Stage[T any](run *Run, stage string, n, workers int, compute func(i int) (T, error), enc func(T) ([]byte, error), dec func([]byte) (T, error)) ([]T, error) {
	if run == nil {
		return parallel.MapErr(n, workers, compute)
	}
	j, err := run.Journal(stage)
	if err != nil {
		return nil, err
	}
	recovered := j.Payloads()
	if len(recovered) > n {
		return nil, fmt.Errorf("checkpoint: stage %s journal holds %d units but the run has %d — manifest key failed to invalidate it", stage, len(recovered), n)
	}
	if len(recovered) > 0 {
		run.Logf("checkpoint: stage %s resuming with %d/%d units journaled", stage, len(recovered), n)
	}
	done := len(recovered)
	fn := func(i int) (T, error) {
		if i < done {
			v, derr := dec(recovered[i])
			if derr == nil {
				return v, nil
			}
			// A payload that passed the CRC but fails to decode means a
			// codec change the key missed; recompute rather than fail.
			run.Logf("checkpoint: stage %s unit %d: journaled payload undecodable (%v); recomputing", stage, i, derr)
			return compute(i)
		}
		return compute(i)
	}
	commit := func(i int, v T) error {
		if i < done {
			return nil
		}
		b, err := enc(v)
		if err != nil {
			return fmt.Errorf("checkpoint: stage %s unit %d: %w", stage, i, err)
		}
		return j.Append(i, b)
	}
	out, err := parallel.MapErrOrdered(n, workers, fn, commit)
	if err != nil {
		return nil, err
	}
	// The stage is complete: make its tail durable before the next stage
	// starts consuming it.
	if err := j.Sync(); err != nil {
		return nil, err
	}
	return out, nil
}

// GobEncode is the default unit codec: encoding/gob, which round-trips
// the pipeline's result structs (including netip values, which gob
// serializes via their binary marshalers) losslessly.
func GobEncode[T any](v T) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&v); err != nil {
		return nil, fmt.Errorf("checkpoint: gob encode: %w", err)
	}
	return buf.Bytes(), nil
}

// GobDecode is GobEncode's inverse.
func GobDecode[T any](b []byte) (T, error) {
	var v T
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&v); err != nil {
		return v, fmt.Errorf("checkpoint: gob decode: %w", err)
	}
	return v, nil
}
