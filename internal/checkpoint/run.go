package checkpoint

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"runtime/debug"
	"sync"

	"dynamips/internal/obs"
)

// FormatVersion names the journal/manifest format. It participates in the
// manifest key, so bumping it invalidates every existing checkpoint.
const FormatVersion = "dynamips-checkpoint-v1"

// manifestName is the manifest file inside a checkpoint directory.
const manifestName = "MANIFEST.json"

// Key identifies what a checkpoint directory's journals are valid for. A
// journal frame may only be replayed when all three components match:
// the seed and config hash pin the deterministic computation, the code
// string pins the binary that produced the frames.
type Key struct {
	Seed       int64  `json:"seed"`
	ConfigHash string `json:"config_hash"`
	Code       string `json:"code"`
}

// Manifest is the checkpoint directory's root record: the key plus the
// caller's opaque command description, which `dynamips resume` replays.
type Manifest struct {
	Format  string          `json:"format"`
	Key     Key             `json:"key"`
	Command json.RawMessage `json:"command"`
}

// CodeVersion returns the code component of the manifest key: the format
// version, refined with the VCS revision when the binary carries one.
func CodeVersion() string {
	v := FormatVersion
	if bi, ok := debug.ReadBuildInfo(); ok {
		for _, s := range bi.Settings {
			if s.Key == "vcs.revision" {
				v += "+" + s.Value
			}
		}
	}
	return v
}

// HashConfig returns the hex SHA-256 of v's canonical JSON, the config
// component of the manifest key. Callers must hash a normalized config:
// fields that provably do not change the output (worker counts, output
// paths) belong outside the hash so a resume may vary them.
func HashConfig(v any) (string, error) {
	b, err := json.Marshal(v)
	if err != nil {
		return "", fmt.Errorf("checkpoint: hashing config: %w", err)
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}

// Run is an open checkpoint directory: a manifest plus one journal per
// pipeline stage.
type Run struct {
	dir      string
	manifest Manifest
	resumed  bool
	logf     func(format string, args ...any)

	mu       sync.Mutex
	obs      *obs.Observer
	journals map[string]*Journal
}

// SetObserver routes journal accounting (resume-invariant per-stage unit
// counts) for every stage journal opened afterwards into o's counters.
// Call it right after Open/Resume, before the pipeline touches any stage.
func (r *Run) SetObserver(o *obs.Observer) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.obs = o
	r.mu.Unlock()
}

// Open opens dir as a checkpoint for the run identified by key, creating
// it if needed. command is an opaque record of the invocation (replayed by
// Resume). If dir already holds a checkpoint for the same key, the run
// resumes from its journals; a checkpoint for a different key (or an
// unreadable manifest) is stale — it is discarded with a logged warning
// and the run starts fresh. logf may be nil.
func Open(dir string, key Key, command json.RawMessage, logf func(format string, args ...any)) (*Run, error) {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("checkpoint: creating %s: %w", dir, err)
	}
	r := &Run{dir: dir, logf: logf, journals: make(map[string]*Journal)}
	m, err := readManifest(dir)
	switch {
	case err == nil && m.Format == FormatVersion && m.Key == key:
		r.manifest = *m
		r.resumed = true
		return r, nil
	case err == nil:
		logf("checkpoint %s: manifest key does not match this run (stale seed, config, or code); starting fresh", dir)
	case !os.IsNotExist(err):
		logf("checkpoint %s: unreadable manifest (%v); starting fresh", dir, err)
	}
	if err := clearJournals(dir); err != nil {
		return nil, err
	}
	r.manifest = Manifest{Format: FormatVersion, Key: key, Command: command}
	if err := writeManifest(dir, &r.manifest); err != nil {
		return nil, err
	}
	return r, nil
}

// Resume opens an existing checkpoint directory for replay. Unlike Open it
// never starts fresh: a missing or unreadable manifest, or one written by
// a different code version, is an error, because the caller is asking to
// continue that specific run.
func Resume(dir string, logf func(format string, args ...any)) (*Run, error) {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	m, err := readManifest(dir)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: no resumable run in %s: %w", dir, err)
	}
	if m.Format != FormatVersion || m.Key.Code != CodeVersion() {
		return nil, fmt.Errorf("checkpoint: %s was written by %s/%s; this binary is %s/%s — rerun from scratch",
			dir, m.Format, m.Key.Code, FormatVersion, CodeVersion())
	}
	return &Run{dir: dir, manifest: *m, resumed: true, logf: logf, journals: make(map[string]*Journal)}, nil
}

// Dir returns the checkpoint directory.
func (r *Run) Dir() string { return r.dir }

// Key returns the manifest key the directory is bound to.
func (r *Run) Key() Key { return r.manifest.Key }

// Command returns the opaque command record stored at Open time.
func (r *Run) Command() json.RawMessage { return r.manifest.Command }

// Resumed reports whether the directory held a matching checkpoint when
// opened (journals may hold completed units).
func (r *Run) Resumed() bool { return r.resumed }

// Logf logs through the run's logger.
func (r *Run) Logf(format string, args ...any) { r.logf(format, args...) }

var stageNameRE = regexp.MustCompile(`^[a-z0-9][a-z0-9-]*$`)

// Journal opens (or returns the already-open) journal for a named stage.
func (r *Run) Journal(stage string) (*Journal, error) {
	if !stageNameRE.MatchString(stage) {
		return nil, fmt.Errorf("checkpoint: invalid stage name %q", stage)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if j, ok := r.journals[stage]; ok {
		return j, nil
	}
	j, err := OpenJournal(filepath.Join(r.dir, stage+".wal"), r.logf)
	if err != nil {
		return nil, err
	}
	j.SetObserver(r.obs, stage)
	r.journals[stage] = j
	return j, nil
}

// Close syncs and closes every open journal. The directory and its
// journals stay on disk: a completed run resumes into a pure replay that
// reproduces the same output bytes.
func (r *Run) Close() error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	var first error
	for _, j := range r.journals {
		if err := j.Close(); err != nil && first == nil {
			first = err
		}
	}
	r.journals = make(map[string]*Journal)
	return first
}

func readManifest(dir string) (*Manifest, error) {
	b, err := os.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		return nil, err
	}
	var m Manifest
	if err := json.Unmarshal(b, &m); err != nil {
		return nil, fmt.Errorf("parsing manifest: %w", err)
	}
	return &m, nil
}

func writeManifest(dir string, m *Manifest) error {
	return WriteFileAtomic(filepath.Join(dir, manifestName), func(w io.Writer) error {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(m)
	})
}

// clearJournals removes every stage journal in dir (stale checkpoints).
func clearJournals(dir string) error {
	wals, err := filepath.Glob(filepath.Join(dir, "*.wal"))
	if err != nil {
		return fmt.Errorf("checkpoint: listing journals in %s: %w", dir, err)
	}
	for _, w := range wals {
		if err := os.Remove(w); err != nil {
			return fmt.Errorf("checkpoint: removing stale journal %s: %w", w, err)
		}
	}
	return nil
}
