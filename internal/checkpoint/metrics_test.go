package checkpoint

import (
	"path/filepath"
	"testing"

	"dynamips/internal/obs"
)

// TestJournalUnitsResumeInvariant: journal_units counts completed work
// units, not append events — a journal that replays a prefix and appends
// the rest must report exactly what an uninterrupted journal reports.
func TestJournalUnitsResumeInvariant(t *testing.T) {
	const total = 15
	key := `journal_units{stage="s"}`

	// Uninterrupted: every unit appended live.
	fresh := obs.NewObserver()
	pathA := filepath.Join(t.TempDir(), "a.wal")
	ja, err := OpenJournal(pathA, nil)
	if err != nil {
		t.Fatal(err)
	}
	ja.SetObserver(fresh, "s")
	for i := 0; i < total; i++ {
		if err := ja.Append(i, []byte("unit")); err != nil {
			t.Fatal(err)
		}
	}
	if err := ja.Close(); err != nil {
		t.Fatal(err)
	}

	// Interrupted: 10 units land in a first process, the rest after a
	// reopen that replays them.
	pathB := filepath.Join(t.TempDir(), "b.wal")
	jb, err := OpenJournal(pathB, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := jb.Append(i, []byte("unit")); err != nil {
			t.Fatal(err)
		}
	}
	if err := jb.Close(); err != nil {
		t.Fatal(err)
	}
	resumed := obs.NewObserver()
	jb2, err := OpenJournal(pathB, nil)
	if err != nil {
		t.Fatal(err)
	}
	jb2.SetObserver(resumed, "s")
	for i := 10; i < total; i++ {
		if err := jb2.Append(i, []byte("unit")); err != nil {
			t.Fatal(err)
		}
	}
	if err := jb2.Close(); err != nil {
		t.Fatal(err)
	}

	a := fresh.Snapshot().Counters[key]
	b := resumed.Snapshot().Counters[key]
	if a != total || b != total {
		t.Fatalf("journal_units: fresh=%d resumed=%d, want both %d", a, b, total)
	}
	if !fresh.Snapshot().Equal(resumed.Snapshot()) {
		t.Fatal("journal metrics differ between fresh and resumed runs")
	}
}
