// Package checkpoint is the pipeline's crash-safety layer: an atomic
// output writer and a chunked run journal (write-ahead log) that records
// completed work units as CRC-32C-framed entries under a manifest keyed on
// (seed, config hash, code version).
//
// The design leans on the repository's determinism contract: because the
// same configuration regenerates every work unit byte-for-byte regardless
// of worker count, a journal holding any contiguous prefix of completed
// units is a valid resume point — recovery replays only the missing units
// and the final output is byte-identical to an uninterrupted run. Workers
// report unit completion in index order (parallel.MapErrOrdered), so the
// journal is such a prefix by construction.
//
// Everything here is stdlib-only and deterministic: no wall clock, no
// randomness. The only nondeterminism a crash can introduce — a torn
// trailing frame — is healed on open by truncating at the first corrupt
// frame and recomputing from there.
package checkpoint

import (
	"bufio"
	"fmt"
	"hash"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
)

// castagnoli is the CRC-32C polynomial table shared by the atomic writer's
// read-back verification and the journal's frame checksums.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// AtomicFile writes a destination file without ever exposing a torn
// intermediate state: bytes go to a same-directory tempfile, and Commit
// fsyncs, re-reads the tempfile to verify a CRC-32C of everything written,
// and only then renames it over the destination. A crash at any point
// leaves either the old file or the new file, never a truncated mix.
type AtomicFile struct {
	f    *os.File
	path string // final destination
	crc  hash.Hash32
	n    int64
	done bool
}

// CreateAtomic opens an atomic writer for path. The caller must finish
// with either Commit or Abort; Abort after Commit is a no-op, so
// `defer af.Abort()` is the idiomatic cleanup.
func CreateAtomic(path string) (*AtomicFile, error) {
	f, err := os.CreateTemp(filepath.Dir(path), "."+filepath.Base(path)+".tmp-*")
	if err != nil {
		return nil, fmt.Errorf("checkpoint: creating tempfile for %s: %w", path, err)
	}
	return &AtomicFile{f: f, path: path, crc: crc32.New(castagnoli)}, nil
}

// Write appends to the tempfile, folding the bytes into the running CRC.
func (a *AtomicFile) Write(p []byte) (int, error) {
	n, err := a.f.Write(p)
	a.crc.Write(p[:n])
	a.n += int64(n)
	if err != nil {
		return n, fmt.Errorf("checkpoint: writing %s: %w", a.path, err)
	}
	return n, nil
}

// Commit publishes the file: fsync the tempfile, verify its on-disk bytes
// against the running CRC-32C, rename it over the destination, and fsync
// the directory so the rename itself is durable.
func (a *AtomicFile) Commit() error {
	if a.done {
		return fmt.Errorf("checkpoint: %s already committed or aborted", a.path)
	}
	tmp := a.f.Name()
	if err := a.f.Sync(); err != nil {
		a.Abort()
		return fmt.Errorf("checkpoint: syncing %s: %w", tmp, err)
	}
	if err := a.verify(); err != nil {
		a.Abort()
		return err
	}
	a.done = true
	if err := a.f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("checkpoint: closing %s: %w", tmp, err)
	}
	if err := os.Rename(tmp, a.path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("checkpoint: publishing %s: %w", a.path, err)
	}
	syncDir(filepath.Dir(a.path))
	return nil
}

// verify re-reads the synced tempfile and compares size and CRC-32C with
// what Write accumulated, catching torn or corrupted writes before the
// rename makes them visible.
func (a *AtomicFile) verify() error {
	if _, err := a.f.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("checkpoint: rewinding %s: %w", a.f.Name(), err)
	}
	reread := crc32.New(castagnoli)
	n, err := io.Copy(reread, a.f)
	if err != nil {
		return fmt.Errorf("checkpoint: re-reading %s: %w", a.f.Name(), err)
	}
	if n != a.n || reread.Sum32() != a.crc.Sum32() {
		return fmt.Errorf("checkpoint: %s failed CRC-32C read-back (wrote %d bytes crc %08x, read %d bytes crc %08x)",
			a.path, a.n, a.crc.Sum32(), n, reread.Sum32())
	}
	return nil
}

// Abort discards the tempfile. Safe to call after Commit (no-op).
func (a *AtomicFile) Abort() {
	if a.done {
		return
	}
	a.done = true
	tmp := a.f.Name()
	a.f.Close()
	os.Remove(tmp)
}

// WriteFileAtomic runs write against a buffered atomic writer and commits
// on success. On any error the destination is untouched.
func WriteFileAtomic(path string, write func(io.Writer) error) error {
	af, err := CreateAtomic(path)
	if err != nil {
		return err
	}
	defer af.Abort()
	bw := bufio.NewWriter(af)
	if err := write(bw); err != nil {
		return err
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	return af.Commit()
}

// syncDir fsyncs a directory so a just-renamed entry survives power loss.
// Best effort: some platforms cannot sync directories.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	d.Sync() //nolint:errcheck // best effort; rename already happened
	d.Close()
}
