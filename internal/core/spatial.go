package core

import (
	"net/netip"
	"sort"

	"dynamips/internal/bgp"
	"dynamips/internal/netutil"
	"dynamips/internal/stats"
)

// CPLSpectrum is Fig. 5's data for one AS: for each common-prefix length
// n in [0, 64], how many IPv6 assignment changes had n leading bits in
// common between the previous and next /64, and how many probes observed
// at least one such change.
type CPLSpectrum struct {
	ASN     uint32
	Changes [65]int
	Probes  [65]int
}

// TotalChanges sums the change counts.
func (c *CPLSpectrum) TotalChanges() int {
	n := 0
	for _, v := range c.Changes {
		n += v
	}
	return n
}

// ModeCPL returns the CPL with the most changes.
func (c *CPLSpectrum) ModeCPL() int {
	best, bestN := 0, -1
	for n, v := range c.Changes {
		if v > bestN {
			best, bestN = n, v
		}
	}
	return best
}

// MassAtLeast returns the fraction of changes with CPL >= n.
func (c *CPLSpectrum) MassAtLeast(n int) float64 {
	tot, cnt := 0, 0
	for i, v := range c.Changes {
		tot += v
		if i >= n {
			cnt += v
		}
	}
	if tot == 0 {
		return 0
	}
	return float64(cnt) / float64(tot)
}

// CPLSpectra computes Fig. 5 for every AS.
func CPLSpectra(pas []ProbeAnalysis) map[uint32]*CPLSpectrum {
	out := make(map[uint32]*CPLSpectrum)
	for _, pa := range pas {
		spec := out[pa.Probe.ASN]
		if spec == nil {
			spec = &CPLSpectrum{ASN: pa.Probe.ASN}
			out[pa.Probe.ASN] = spec
		}
		var seen [65]bool
		ChangePairs(pa.V6, false, func(prev, next Assignment[netip.Prefix]) {
			n := netutil.CommonPrefixLen64(prev.Value, next.Value)
			spec.Changes[n]++
			seen[n] = true
		})
		for n, ok := range seen {
			if ok {
				spec.Probes[n]++
			}
		}
	}
	return out
}

// UniquePrefixLengths are Fig. 8's prefix lengths.
var UniquePrefixLengths = []int{64, 56, 48, 40, 32, 24, 16}

// UniquePrefixDist is Fig. 8 for one AS: the distribution over probes of
// the number of unique prefixes observed at each length, plus unique
// routed BGP prefixes.
type UniquePrefixDist struct {
	ASN     uint32
	PerLen  map[int]*stats.ECDF // length -> distribution of unique counts
	BGPDist *stats.ECDF
}

// UniquePrefixes computes Fig. 8 for every AS. Probes without IPv6
// observations are skipped. A nil table leaves the BGP distribution
// empty.
func UniquePrefixes(pas []ProbeAnalysis, table *bgp.Table) map[uint32]*UniquePrefixDist {
	out := make(map[uint32]*UniquePrefixDist)
	for _, pa := range pas {
		if len(pa.V6) == 0 {
			continue
		}
		d := out[pa.Probe.ASN]
		if d == nil {
			d = &UniquePrefixDist{ASN: pa.Probe.ASN, PerLen: make(map[int]*stats.ECDF), BGPDist: &stats.ECDF{}}
			for _, l := range UniquePrefixLengths {
				d.PerLen[l] = &stats.ECDF{}
			}
			out[pa.Probe.ASN] = d
		}
		uniq := make(map[int]map[netip.Prefix]bool, len(UniquePrefixLengths))
		for _, l := range UniquePrefixLengths {
			uniq[l] = make(map[netip.Prefix]bool)
		}
		bgpUniq := make(map[netip.Prefix]bool)
		for _, a := range pa.V6 {
			for _, l := range UniquePrefixLengths {
				uniq[l][netutil.PrefixAt(a.Value.Addr(), l)] = true
			}
			if table != nil {
				if _, routed, ok := table.OriginOfPrefix(a.Value); ok {
					bgpUniq[routed] = true
				}
			}
		}
		for _, l := range UniquePrefixLengths {
			d.PerLen[l].Add(float64(len(uniq[l])))
		}
		d.BGPDist.Add(float64(len(bgpUniq)))
	}
	return out
}

// InferPoolBoundary estimates the AS's dynamic-pool prefix length (§5.2):
// the longest length L at which even heavy-churn probes (the 90th
// percentile) see at most maxUnique distinct /L prefixes over their
// lifetimes, while seeing many more at longer lengths. The paper finds
// /40 for many domestic ISPs. The high quantile is deliberate: the
// localization evidence comes from probes with many changes, and CPE
// prefix-scrambling inflates low-churn probes' /64 counts without saying
// anything about pools.
func InferPoolBoundary(d *UniquePrefixDist, maxUnique float64) (length int, ok bool) {
	const q = 0.9
	// Without enough movement at the /64 level there is nothing to
	// localize.
	if e64 := d.PerLen[64]; e64 == nil || e64.Len() == 0 || e64.Quantile(q) <= maxUnique {
		return 0, false
	}
	lens := append([]int(nil), UniquePrefixLengths...)
	sort.Ints(lens) // ascending: 16 … 64
	for i := len(lens) - 2; i >= 0; i-- {
		e := d.PerLen[lens[i]]
		if e == nil || e.Len() == 0 {
			continue
		}
		if e.Quantile(q) <= maxUnique {
			return lens[i], true
		}
	}
	return 0, false
}

// Table2Row quantifies how often assignments jump across prefix
// boundaries for one AS (Table 2).
type Table2Row struct {
	ASN        uint32
	V4Changes  int
	V6Changes  int
	Diff24     int // v4 changes crossing a /24 boundary
	DiffBGP4   int // v4 changes crossing routed BGP prefixes
	DiffBGP6   int // v6 changes crossing routed BGP prefixes
	V4Unrouted int // v4 changes with at least one unrouted endpoint
	V6Unrouted int
}

// Pct returns the three percentages the paper's Table 2 prints.
func (r Table2Row) Pct() (diff24, diffBGP4, diffBGP6 float64) {
	pct := func(n, d int) float64 {
		if d == 0 {
			return 0
		}
		return 100 * float64(n) / float64(d)
	}
	return pct(r.Diff24, r.V4Changes), pct(r.DiffBGP4, r.V4Changes), pct(r.DiffBGP6, r.V6Changes)
}

// Table2 computes boundary-crossing rates per AS.
func Table2(pas []ProbeAnalysis, table *bgp.Table) map[uint32]*Table2Row {
	out := make(map[uint32]*Table2Row)
	for _, pa := range pas {
		r := out[pa.Probe.ASN]
		if r == nil {
			r = &Table2Row{ASN: pa.Probe.ASN}
			out[pa.Probe.ASN] = r
		}
		ChangePairs(pa.V4, false, func(prev, next Assignment[netip.Addr]) {
			r.V4Changes++
			if !netutil.SameAtLength(prev.Value, next.Value, 24) {
				r.Diff24++
			}
			_, p1, ok1 := table.Origin(prev.Value)
			_, p2, ok2 := table.Origin(next.Value)
			switch {
			case !ok1 || !ok2:
				r.V4Unrouted++
			case p1 != p2:
				r.DiffBGP4++
			}
		})
		ChangePairs(pa.V6, false, func(prev, next Assignment[netip.Prefix]) {
			r.V6Changes++
			_, p1, ok1 := table.OriginOfPrefix(prev.Value)
			_, p2, ok2 := table.OriginOfPrefix(next.Value)
			switch {
			case !ok1 || !ok2:
				r.V6Unrouted++
			case p1 != p2:
				r.DiffBGP6++
			}
		})
	}
	return out
}
