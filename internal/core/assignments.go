// Package core implements the DynamIPs analyses: assignment-change
// detection and duration inference from IP-echo observations (§3),
// total-time-fraction duration curves (Fig. 1), periodic-renumbering
// detection, dual-stack simultaneity (§3.2), spatial analyses — CPL
// spectra (Fig. 5), unique-prefix distributions (Fig. 8), BGP-prefix
// change rates (Table 2) — and subscriber/pool boundary inference
// (Figs. 6, 7, 9; §5.2–5.3).
package core

import (
	"net/netip"

	"dynamips/internal/atlas"
	"dynamips/internal/checkpoint"
	"dynamips/internal/netutil"
)

// Assignment is one maximal stretch of hours over which a probe reported a
// constant value (an IPv4 address, or an IPv6 /64 prefix).
type Assignment[V comparable] struct {
	Value V
	// Start and End are the first and last hour the value was observed
	// in this stretch (inclusive).
	Start, End int64
	// LeftExact/RightExact report whether the assignment's boundaries
	// were observed exactly: the previous/next hourly measurement exists
	// and carried a different value. Only assignments exact on both
	// sides yield duration samples (§3.1: "sandwiched between changes").
	LeftExact, RightExact bool
}

// Duration returns the assignment's observed duration in hours.
func (a Assignment[V]) Duration() int64 { return a.End - a.Start + 1 }

// Sandwiched reports whether the assignment yields an exact duration.
func (a Assignment[V]) Sandwiched() bool { return a.LeftExact && a.RightExact }

// ExtractConfig tunes assignment extraction.
type ExtractConfig struct {
	// MaxGapHours is the longest observation gap across which a
	// same-valued assignment is considered continuous (probe downtime
	// shorter than this does not break an assignment). Gaps longer than
	// this split the assignment, and neither fragment's outer boundary
	// is exact.
	MaxGapHours int64
	// Workers bounds Analyze's per-series fan-out; <= 0 uses one worker
	// per CPU. Series are digested independently and results keep input
	// order, so the worker count never changes the output.
	Workers int
	// Checkpoint, when non-nil, makes AnalyzeErr journal each digested
	// series under the "analyze" stage so an interrupted run resumes
	// without re-digesting completed series. Analyze ignores it; the
	// caller owns manifest keying.
	Checkpoint *checkpoint.Run
}

// DefaultExtractConfig allows assignments to ride out short probe
// downtime.
func DefaultExtractConfig() ExtractConfig { return ExtractConfig{MaxGapHours: 6} }

// extract folds spans into assignments under cfg. Spans must be sorted by
// Start and non-overlapping, as atlas produces them.
func extract[V comparable](spans []atlas.Span, value func(atlas.Span) V, cfg ExtractConfig) []Assignment[V] {
	var out []Assignment[V]
	for _, sp := range spans {
		v := value(sp)
		n := len(out)
		if n > 0 {
			cur := &out[n-1]
			gap := sp.Start - cur.End - 1
			switch {
			case v == cur.Value && gap <= cfg.MaxGapHours:
				cur.End = sp.End
				continue
			case v == cur.Value:
				// Same value across a long gap: split; boundaries
				// inside the gap are unobservable.
				cur.RightExact = false
				out = append(out, Assignment[V]{Value: v, Start: sp.Start, End: sp.End})
				continue
			default:
				exact := gap == 0
				cur.RightExact = exact
				out = append(out, Assignment[V]{Value: v, Start: sp.Start, End: sp.End, LeftExact: exact})
				continue
			}
		}
		out = append(out, Assignment[V]{Value: v, Start: sp.Start, End: sp.End})
	}
	return out
}

// V4Assignments extracts IPv4 address assignments from a probe's spans.
func V4Assignments(spans []atlas.Span, cfg ExtractConfig) []Assignment[netip.Addr] {
	return extract(spans, func(sp atlas.Span) netip.Addr { return sp.Echo }, cfg)
}

// V6Assignments extracts IPv6 /64-prefix assignments from a probe's spans.
// The /64 is the paper's IPv6 tracking granularity (§2.1).
func V6Assignments(spans []atlas.Span, cfg ExtractConfig) []Assignment[netip.Prefix] {
	return extract(spans, func(sp atlas.Span) netip.Prefix { return netutil.Prefix64(sp.Echo) }, cfg)
}

// Changes counts assignment changes: consecutive assignments whose values
// differ. Same-value splits (probe downtime) do not count.
func Changes[V comparable](as []Assignment[V]) int {
	n := 0
	for i := 1; i < len(as); i++ {
		if as[i].Value != as[i-1].Value {
			n++
		}
	}
	return n
}

// SandwichedDurations returns the exact duration samples (hours) from an
// assignment sequence.
func SandwichedDurations[V comparable](as []Assignment[V]) []float64 {
	var out []float64
	for _, a := range as {
		if a.Sandwiched() {
			out = append(out, float64(a.Duration()))
		}
	}
	return out
}

// ChangePairs visits consecutive different-valued assignment pairs (the
// spatial analyses' unit: where did the address move). exact restricts to
// pairs whose boundary was observed contiguously.
func ChangePairs[V comparable](as []Assignment[V], exact bool, fn func(prev, next Assignment[V])) {
	for i := 1; i < len(as); i++ {
		if as[i].Value == as[i-1].Value {
			continue
		}
		if exact && !as[i-1].RightExact {
			continue
		}
		fn(as[i-1], as[i])
	}
}
