package core

import (
	"net/netip"
	"testing"
)

func TestNewScanPlan(t *testing.T) {
	last := netip.MustParsePrefix("2003:1000:40:ab00::/64")
	p, err := NewScanPlan(last, 40, 56, true)
	if err != nil {
		t.Fatalf("NewScanPlan: %v", err)
	}
	if p.Pool != netip.MustParsePrefix("2003:1000::/40") {
		t.Errorf("Pool = %v", p.Pool)
	}
	if p.Size() != 1<<16 {
		t.Errorf("Size = %d, want 65536", p.Size())
	}
	if r := p.ReductionVsBGP(netip.MustParsePrefix("2003::/19")); r != float64(uint64(1)<<45)/65536 {
		t.Errorf("ReductionVsBGP = %v", r)
	}
}

func TestScanPlanErrors(t *testing.T) {
	v4 := netip.MustParsePrefix("10.0.0.0/24")
	if _, err := NewScanPlan(v4, 40, 56, true); err == nil {
		t.Error("IPv4 input accepted")
	}
	last := netip.MustParsePrefix("2003::/64")
	if _, err := NewScanPlan(last, 60, 56, true); err == nil {
		t.Error("pool longer than subscriber accepted")
	}
	if _, err := NewScanPlan(last, 40, 96, true); err == nil {
		t.Error("subscriber longer than /64 accepted")
	}
}

func TestScanPlanContains(t *testing.T) {
	p, _ := NewScanPlan(netip.MustParsePrefix("2003:1000:40:ab00::/64"), 40, 56, true)
	cases := []struct {
		pfx  string
		want bool
	}{
		{"2003:1000:40:cd00::/64", true},  // aligned, same pool
		{"2003:1000:40:cd01::/64", false}, // unaligned
		{"2003:1100:0:cd00::/64", false},  // other pool
		{"2003:1000:40:0:1::/64", true},   // low /64 of some delegation
	}
	for _, c := range cases {
		if got := p.Contains(netip.MustParsePrefix(c.pfx)); got != c.want {
			t.Errorf("Contains(%s) = %v, want %v", c.pfx, got, c.want)
		}
	}
	// Unaligned plans accept everything in the pool.
	u, _ := NewScanPlan(netip.MustParsePrefix("2003:1000:40:ab00::/64"), 40, 56, false)
	if !u.Contains(netip.MustParsePrefix("2003:1000:40:cd01::/64")) {
		t.Error("unaligned plan rejected in-pool /64")
	}
	if u.Size() != 1<<24 {
		t.Errorf("unaligned Size = %d", u.Size())
	}
}

func TestScanPlanCandidates(t *testing.T) {
	// Small plan: /60 pool, /62 delegations -> 4 candidates.
	p, err := NewScanPlan(netip.MustParsePrefix("2001:db8:0:10::/64"), 60, 62, true)
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	if err := p.Candidates(func(c netip.Prefix) bool {
		got = append(got, c.String())
		return true
	}); err != nil {
		t.Fatal(err)
	}
	want := []string{
		"2001:db8:0:10::/64", "2001:db8:0:14::/64",
		"2001:db8:0:18::/64", "2001:db8:0:1c::/64",
	}
	if len(got) != len(want) {
		t.Fatalf("candidates = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("candidate %d = %s, want %s", i, got[i], want[i])
		}
	}
	// Early stop.
	n := 0
	p.Candidates(func(netip.Prefix) bool { n++; return false })
	if n != 1 {
		t.Errorf("early stop visited %d", n)
	}
	// Every candidate satisfies Contains.
	p.Candidates(func(c netip.Prefix) bool {
		if !p.Contains(c) {
			t.Fatalf("candidate %v not contained in its own plan", c)
		}
		return true
	})
}
