package core

import (
	"fmt"
	"net/netip"

	"dynamips/internal/netutil"
)

// ScanPlan is the §6 active-probing product: given where a target was
// last seen and the AS's learned addressing structure, the set of /64s
// worth rescanning after the target's prefix changed.
type ScanPlan struct {
	// Pool is the dynamic pool the target's assignments stay inside
	// (§5.2's long-term locality, e.g. a /40).
	Pool netip.Prefix
	// SubscriberLen is the per-subscriber delegation length (§5.3); a
	// zeroing CPE announces only the delegation-aligned /64.
	SubscriberLen int
	// Aligned restricts candidates to delegation-aligned /64s. Disable
	// for CPE populations known to scramble their sub-/64 bits.
	Aligned bool
}

// NewScanPlan derives a plan from a last-seen /64 and learned structure.
func NewScanPlan(lastSeen netip.Prefix, poolLen, subscriberLen int, aligned bool) (ScanPlan, error) {
	if !lastSeen.Addr().Is6() || lastSeen.Addr().Unmap().Is4() {
		return ScanPlan{}, fmt.Errorf("core: scan plan needs an IPv6 /64, got %v", lastSeen)
	}
	if poolLen <= 0 || poolLen > subscriberLen || subscriberLen > 64 {
		return ScanPlan{}, fmt.Errorf("core: inconsistent lengths pool /%d, subscriber /%d", poolLen, subscriberLen)
	}
	return ScanPlan{
		Pool:          netutil.PrefixAt(lastSeen.Addr(), poolLen),
		SubscriberLen: subscriberLen,
		Aligned:       aligned,
	}, nil
}

// Size returns the number of candidate /64s the plan visits.
func (p ScanPlan) Size() uint64 {
	if p.Aligned {
		return 1 << uint(p.SubscriberLen-p.Pool.Bits())
	}
	return 1 << uint(64-p.Pool.Bits())
}

// ReductionVsBGP returns how many times smaller the plan is than scanning
// every /64 of the routed announcement.
func (p ScanPlan) ReductionVsBGP(announcement netip.Prefix) float64 {
	full := float64(uint64(1) << uint(min(63, 64-announcement.Bits())))
	return full / float64(p.Size())
}

// Contains reports whether a /64 is in the plan's candidate set.
func (p ScanPlan) Contains(target netip.Prefix) bool {
	if !p.Pool.Contains(target.Addr()) {
		return false
	}
	if !p.Aligned {
		return true
	}
	return netutil.ZeroBitsBefore64(target) >= 64-p.SubscriberLen
}

// Candidates visits the plan's /64s in order, stopping when fn returns
// false. For aligned plans this walks one /64 per delegation; unaligned
// plans walk every /64 (callers should check Size first).
func (p ScanPlan) Candidates(fn func(netip.Prefix) bool) error {
	step := p.SubscriberLen
	if !p.Aligned {
		step = 64
	}
	n := uint64(1) << uint(step-p.Pool.Bits())
	for i := uint64(0); i < n; i++ {
		d, err := netutil.SubPrefix(p.Pool, step, i)
		if err != nil {
			return fmt.Errorf("core: enumerating scan plan: %w", err)
		}
		if !fn(netip.PrefixFrom(d.Addr(), 64)) {
			return nil
		}
	}
	return nil
}
