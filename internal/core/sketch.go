package core

import (
	"encoding/binary"

	"dynamips/internal/parallel"
	"dynamips/internal/sketch"
)

// Atlas-side sketch schema parameters. They mirror the CDN stream
// pipeline's choices (rank error ≤ alpha·n, heavy-hitter error ≤ N/k,
// cardinality RSE ≈ 0.8%) but are declared independently: the two
// planes version their schemas separately.
const (
	sketchAlpha    = 0.01
	sketchTopK     = 1024
	sketchCardP    = 14
	sketchCardSeed = 0x64796E616D495073
)

// Canonical sketch names in the atlas analysis set.
const (
	SkChurnAS = "churn_as" // top-k: ASNs by observed assignment changes
	SkDurV4   = "dur_v4"   // quantile: sandwiched IPv4 durations (hours)
	SkDurV6   = "dur_v6"   // quantile: sandwiched IPv6 /64 durations (hours)
	SkPfx64   = "pfx64"    // cardinality: distinct assigned /64s
)

// NewSketchSet returns an empty sketch set with the atlas schema.
func NewSketchSet() *sketch.Set {
	s := sketch.NewSet()
	put := func(name string, sk sketch.Sketch) {
		if err := s.Put(name, sk); err != nil {
			panic(err)
		}
	}
	put(SkChurnAS, sketch.NewTopK(sketchTopK))
	put(SkDurV4, sketch.NewQuantile(sketchAlpha))
	put(SkDurV6, sketch.NewQuantile(sketchAlpha))
	put(SkPfx64, sketch.NewCard(sketchCardP, sketchCardSeed))
	return s
}

// sketchChunk is the fixed per-partial probe count. The partition into
// partials depends only on the input order, never on the worker count,
// so BuildSketches is worker-count invariant byte for byte.
const sketchChunk = 64

// FoldProbe folds one probe analysis into a sketch set: its sandwiched
// duration samples, its assignment-change churn attributed to the
// probe's AS, and every distinct /64 it was ever assigned.
func FoldProbe(s *sketch.Set, pa *ProbeAnalysis) {
	durV4 := s.Quantile(SkDurV4)
	for _, a := range pa.V4 {
		if a.Sandwiched() {
			durV4.Add(float64(a.Duration()))
		}
	}
	durV6 := s.Quantile(SkDurV6)
	pfx64 := s.Card(SkPfx64)
	for _, a := range pa.V6 {
		if a.Sandwiched() {
			durV6.Add(float64(a.Duration()))
		}
		b := a.Value.Addr().As16()
		pfx64.Add(binary.BigEndian.Uint64(b[:8]))
	}
	s.TopK(SkChurnAS).Add(uint64(pa.Probe.ASN), uint64(Changes(pa.V4)+Changes(pa.V6)))
}

// BuildSketches folds every probe analysis into the atlas sketch set.
// Probes are chunked into fixed-size partials built concurrently under
// workers, then merged in chunk order — so the encoded result is
// identical for any worker count, and identical to a serial fold
// (sketch state is a commutative-monoid function of the input
// multiset).
func BuildSketches(pas []ProbeAnalysis, workers int) *sketch.Set {
	chunks := (len(pas) + sketchChunk - 1) / sketchChunk
	if chunks == 0 {
		return NewSketchSet()
	}
	parts := parallel.Map(chunks, workers, func(ci int) *sketch.Set {
		s := NewSketchSet()
		lo := ci * sketchChunk
		hi := min(lo+sketchChunk, len(pas))
		for i := lo; i < hi; i++ {
			FoldProbe(s, &pas[i])
		}
		return s
	})
	acc := parts[0]
	for _, p := range parts[1:] {
		if err := acc.Merge(p); err != nil {
			// Partials share one schema by construction; a mismatch is
			// a programming error, not an input condition.
			panic(err)
		}
	}
	return acc
}
