package core

import (
	"testing"

	"dynamips/internal/atlas"
	"dynamips/internal/isp"
)

// TestAllProfilesRecoverDelegation runs a small pipeline for every
// built-in profile and checks the analyzer recovers the profile's
// ground-truth delegated-prefix length — the verification loop DESIGN.md
// promises for Fig. 6.
func TestAllProfilesRecoverDelegation(t *testing.T) {
	if testing.Short() {
		t.Skip("all-profile sweep in -short mode")
	}
	for i, profile := range isp.Profiles() {
		profile := profile
		t.Run(profile.Name, func(t *testing.T) {
			res, err := isp.Run(isp.Config{
				Profile:     profile,
				Subscribers: 160,
				Hours:       26280,
				Seed:        int64(9000 + i),
			})
			if err != nil {
				t.Fatalf("isp.Run: %v", err)
			}
			fleet, err := atlas.BuildFleet(res, atlas.FleetConfig{
				Probes: 90, Seed: int64(9100 + i), JoinSpreadFrac: 0.3,
				UptimeMeanHours: 4000, DowntimeMeanHours: 6,
			})
			if err != nil {
				t.Fatalf("fleet: %v", err)
			}
			pas := Analyze(atlas.Sanitize(fleet.Series, fleet.BGP, atlas.DefaultSanitizeConfig()).Clean,
				DefaultExtractConfig())
			perAS, _ := SubscriberLengths(pas)
			h := perAS[profile.ASN]
			if h == nil || h.N == 0 {
				// Low-churn ASes may not yield enough multi-prefix
				// probes in a small run; that is a sample-size issue,
				// not an inference failure.
				t.Skipf("no probes with IPv6 changes for %s", profile.Name)
			}
			mode := h.ArgMax()
			// Scrambling CPEs legitimately push individual probes to
			// /64; the mode must still be the true delegation when
			// scramblers are a minority.
			want := profile.DelegatedLen
			if profile.ScrambleFrac > 0.5 {
				want = 64
			}
			if mode != want {
				t.Errorf("inferred /%d, ground truth /%d (n=%d)", mode, want, h.N)
			}

			// Every delegated prefix observed must match the profile
			// length (generator invariant re-checked through the
			// public data path).
			for _, sub := range res.Subscribers {
				for _, st := range sub.V6 {
					if st.Delegated.Bits() != profile.DelegatedLen {
						t.Fatalf("delegation %v != /%d", st.Delegated, profile.DelegatedLen)
					}
				}
			}
		})
	}
}
