package core

import (
	"net/netip"
	"sort"

	"dynamips/internal/atlas"
	"dynamips/internal/netutil"
)

// EUI-64 tracking (§2.3, §6): devices with stable interface identifiers
// remain linkable across network renumbering — an observer who sees the
// full address can follow the device from /64 to /64 by its IID alone.
// This file measures that trackability over IP-echo observations, and the
// collision rate that bounds the technique's precision.

// IID extracts the 64-bit interface identifier of an IPv6 address.
func IID(a netip.Addr) (uint64, bool) {
	if !a.Is6() || a.Unmap().Is4() {
		return 0, false
	}
	_, lo := netutil.U128(a)
	return lo, true
}

// TrackingReport quantifies IID-based cross-renumbering tracking over a
// probe population.
type TrackingReport struct {
	// Devices is the number of probes with IPv6 observations.
	Devices int
	// Changes counts /64 changes across all devices.
	Changes int
	// Linkable counts changes where the device's IID stayed constant
	// across the change — the observer re-links the device immediately.
	Linkable int
	// Collisions counts IIDs shared by more than one device, which
	// would cause the tracker to conflate them.
	Collisions int
}

// LinkableFrac is the share of renumberings that IID tracking survives.
func (r TrackingReport) LinkableFrac() float64 {
	if r.Changes == 0 {
		return 0
	}
	return float64(r.Linkable) / float64(r.Changes)
}

// MeasureTracking evaluates IID trackability over raw series (the IIDs
// live in the full echoed addresses, which Analyze's /64 aggregation
// discards).
func MeasureTracking(series []atlas.Series) TrackingReport {
	var rep TrackingReport
	owners := make(map[uint64]map[int]bool) // IID -> set of probes
	for i := range series {
		s := &series[i]
		if len(s.V6) == 0 {
			continue
		}
		rep.Devices++
		var (
			prev64   netip.Prefix
			prevIID  uint64
			havePrev bool
		)
		for _, sp := range s.V6 {
			iid, ok := IID(sp.Echo)
			if !ok {
				continue
			}
			om, ok2 := owners[iid]
			if !ok2 {
				om = make(map[int]bool)
				owners[iid] = om
			}
			om[s.Probe.ID] = true
			p64 := sp.Prefix64()
			if havePrev && p64 != prev64 {
				rep.Changes++
				if iid == prevIID {
					rep.Linkable++
				}
			}
			prev64, prevIID, havePrev = p64, iid, true
		}
	}
	for _, om := range owners {
		if len(om) > 1 {
			rep.Collisions++
		}
	}
	return rep
}

// TrackedDevice is one device's trajectory across /64s, reconstructed
// purely from its IID — what a tracker (or a hitlist maintainer, §6)
// derives from passively observed addresses.
type TrackedDevice struct {
	IID      uint64
	Prefixes []netip.Prefix // /64s in order of first appearance
}

// LinkByIID groups observed IPv6 addresses (with observation hours) by
// IID, returning per-device /64 trajectories sorted by IID.
func LinkByIID(series []atlas.Series) []TrackedDevice {
	type sighting struct {
		hour int64
		p64  netip.Prefix
	}
	byIID := make(map[uint64][]sighting)
	for i := range series {
		for _, sp := range series[i].V6 {
			iid, ok := IID(sp.Echo)
			if !ok {
				continue
			}
			byIID[iid] = append(byIID[iid], sighting{sp.Start, sp.Prefix64()})
		}
	}
	out := make([]TrackedDevice, 0, len(byIID))
	for iid, ss := range byIID {
		sort.Slice(ss, func(a, b int) bool { return ss[a].hour < ss[b].hour })
		d := TrackedDevice{IID: iid}
		for _, s := range ss {
			if n := len(d.Prefixes); n == 0 || d.Prefixes[n-1] != s.p64 {
				if !containsPrefix(d.Prefixes, s.p64) {
					d.Prefixes = append(d.Prefixes, s.p64)
				}
			}
		}
		out = append(out, d)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].IID < out[b].IID })
	return out
}

func containsPrefix(ps []netip.Prefix, p netip.Prefix) bool {
	for _, q := range ps {
		if q == p {
			return true
		}
	}
	return false
}
