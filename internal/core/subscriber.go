package core

import (
	"net/netip"

	"dynamips/internal/netutil"
	"dynamips/internal/stats"
)

// InferSubscriberLength applies the paper's RIPE Atlas subscriber-boundary
// technique (§5.3) to one probe: the number of bits immediately above the
// /64 boundary that were zero in every /64 the probe observed is
// subtracted from 64, yielding the prefix length likely delegated to the
// subscriber. The boolean is false when the probe observed fewer than two
// distinct /64s (no inference possible — a single /64 sharing zeros may be
// chance) or when no zero run exists.
func InferSubscriberLength(v6 []Assignment[netip.Prefix]) (length int, ok bool) {
	uniq := make(map[netip.Prefix]bool)
	var prefixes []netip.Prefix
	for _, a := range v6 {
		if !uniq[a.Value] {
			uniq[a.Value] = true
			prefixes = append(prefixes, a.Value)
		}
	}
	if len(prefixes) < 2 {
		return 0, false
	}
	zeros := netutil.ZeroBitsBefore64Of(prefixes)
	if zeros == 0 {
		return 64, true // no shared zero bits: the subscriber holds a /64
	}
	if zeros > 32 {
		zeros = 32 // shorter than /32 is implausible for a subscriber
	}
	return 64 - zeros, true
}

// SubscriberLengths computes the per-AS histogram of inferred subscriber
// prefix lengths over probes with at least one IPv6 change (Fig. 6), and
// the pooled histogram over all such probes (Fig. 9).
func SubscriberLengths(pas []ProbeAnalysis) (perAS map[uint32]*stats.IntHistogram, pooled *stats.IntHistogram) {
	perAS = make(map[uint32]*stats.IntHistogram)
	pooled = stats.NewIntHistogram(64)
	for _, pa := range pas {
		if Changes(pa.V6) == 0 {
			continue
		}
		l, ok := InferSubscriberLength(pa.V6)
		if !ok {
			continue
		}
		h := perAS[pa.Probe.ASN]
		if h == nil {
			h = stats.NewIntHistogram(64)
			perAS[pa.Probe.ASN] = h
		}
		h.Add(l)
		pooled.Add(l)
	}
	return perAS, pooled
}

// TrailingZeroBuckets classifies a set of observed /64 prefixes by their
// nibble-aligned trailing-zero run, the paper's CDN technique (§5.3,
// Fig. 7): the returned map counts prefixes whose longest zero run ends at
// the /60, /56, /52, and /48 boundaries; Total counts all prefixes and
// Inferable those with any nibble-aligned run.
type TrailingZeroBuckets struct {
	Counts    map[int]int // inferred delegated length -> count
	Total     int
	Inferable int
}

// InferableFrac is the share of prefixes whose delegation length the
// technique recovers (the percentages in Fig. 7's panel titles).
func (b *TrailingZeroBuckets) InferableFrac() float64 {
	if b.Total == 0 {
		return 0
	}
	return float64(b.Inferable) / float64(b.Total)
}

// Frac returns the fraction of all prefixes classified at the length.
func (b *TrailingZeroBuckets) Frac(length int) float64 {
	if b.Total == 0 {
		return 0
	}
	return float64(b.Counts[length]) / float64(b.Total)
}

// ClassifyTrailingZeros buckets /64 prefixes by inferred delegation length.
func ClassifyTrailingZeros(prefixes []netip.Prefix) *TrailingZeroBuckets {
	b := &TrailingZeroBuckets{Counts: make(map[int]int)}
	for _, p := range prefixes {
		b.Total++
		if l, ok := netutil.InferredDelegation(p); ok {
			b.Counts[l]++
			b.Inferable++
		}
	}
	return b
}
