package core

import (
	"testing"

	"dynamips/internal/atlas"
	"dynamips/internal/isp"
)

// TestEndToEndDTAG runs the full pipeline — ISP simulation, probe fleet
// with anomalies, sanitization, analysis — and checks that the analyzer
// recovers the generator's ground truth: 24 h periodic renumbering, high
// change simultaneity, /56 subscriber boundaries, /40 pool boundaries, and
// v6 changes that stay inside one routed BGP prefix.
func TestEndToEndDTAG(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end pipeline in -short mode")
	}
	profile, ok := isp.ProfileByName("DTAG")
	if !ok {
		t.Fatal("DTAG profile missing")
	}
	res, err := isp.Run(isp.Config{Profile: profile, Subscribers: 400, Hours: 26280, Seed: 101})
	if err != nil {
		t.Fatalf("isp.Run: %v", err)
	}
	fleet, err := atlas.BuildFleet(res, atlas.DefaultFleetConfig(300, 202))
	if err != nil {
		t.Fatalf("BuildFleet: %v", err)
	}
	clean := atlas.Sanitize(fleet.Series, fleet.BGP, atlas.DefaultSanitizeConfig())
	if len(clean.Clean) < 150 {
		t.Fatalf("only %d probes survived sanitization (drops: %v)", len(clean.Clean), clean.Drops)
	}
	pas := Analyze(clean.Clean, DefaultExtractConfig())

	// Temporal ground truth: DTAG's non-dual-stack population renumbers
	// every 24 h; dual-stack durations are longer on average.
	durations := CollectDurations(pas)
	d := durations[3320]
	if d == nil {
		t.Fatal("no durations for AS3320")
	}
	periodic := DetectPeriodicRenumbering(durations, 0.05, 0.3)
	found24NDS := false
	for _, p := range periodic {
		if p.ASN == 3320 && p.Population == "v4-nds" && p.Modes[0].Period == 24 {
			found24NDS = true
		}
	}
	if !found24NDS {
		t.Errorf("24h non-dual-stack renumbering not detected: %+v", periodic)
	}

	// Simultaneity: most DTAG v6 changes co-occur with v4 changes
	// (paper: 90.6%).
	sim := MeasureSimultaneity(pas)
	if s := sim[3320]; s == nil || s.Fraction() < 0.8 {
		t.Errorf("simultaneity = %+v, want > 0.8", sim[3320])
	}

	// Spatial ground truth: CPL mass at or above the /40 pool boundary.
	spec := CPLSpectra(pas)[3320]
	if spec == nil || spec.TotalChanges() == 0 {
		t.Fatal("no CPL spectrum")
	}
	if mass := spec.MassAtLeast(40); mass < 0.9 {
		t.Errorf("CPL mass >= 40 is %v, want > 0.9", mass)
	}
	// Scramblers contribute a visible population of probes with CPL >= 56
	// changes (the paper: "close to 100 probes contribute at least one
	// change with a common prefix length larger or equal to 56").
	probes56 := 0
	for n := 56; n <= 64; n++ {
		probes56 += spec.Probes[n]
	}
	if probes56 < 10 {
		t.Errorf("probes with CPL>=56 changes = %d, want >= 10 (scrambling CPEs)", probes56)
	}

	// Pool boundary: /40 pools should emerge from unique-prefix counts.
	dists := UniquePrefixes(pas, fleet.BGP)
	if d40 := dists[3320]; d40 == nil {
		t.Fatal("no unique-prefix distribution")
	} else if l, ok := InferPoolBoundary(d40, 8); !ok || l < 32 || l > 44 {
		t.Errorf("InferPoolBoundary = (%d, %v), want ~40", l, ok)
	}

	// Subscriber boundary: the dominant inferred length is /56 (zeroing
	// CPEs), with a secondary /64 population (scrambling CPEs).
	perAS, _ := SubscriberLengths(pas)
	h := perAS[3320]
	if h == nil || h.N == 0 {
		t.Fatal("no subscriber-length histogram")
	}
	if h.Fraction(56) < 0.4 {
		t.Errorf("inferred /56 fraction = %v, want > 0.4", h.Fraction(56))
	}
	if h.Fraction(64) < 0.05 {
		t.Errorf("inferred /64 fraction = %v, want >= 0.05 (scramblers)", h.Fraction(64))
	}

	// Table 2 ground truth: v6 changes stay within the single announced
	// aggregate; a quarter-ish of v4 changes cross BGP prefixes.
	t2 := Table2(pas, fleet.BGP)[3320]
	if t2 == nil {
		t.Fatal("no Table 2 row")
	}
	d24, db4, db6 := t2.Pct()
	if d24 < 80 {
		t.Errorf("Diff /24 = %v%%, want > 80%%", d24)
	}
	if db4 < 15 || db4 > 40 {
		t.Errorf("Diff BGP v4 = %v%%, want ~27%%", db4)
	}
	if db6 > 2 {
		t.Errorf("Diff BGP v6 = %v%%, want ~0%%", db6)
	}

	// Table 1 structure: a dominant DTAG row; AS-switch virtual probes
	// may contribute small foreign-AS rows.
	rows := Table1(pas, map[uint32]string{3320: "DTAG"})
	if len(rows) == 0 || rows[0].ASN != 3320 || rows[0].DSProbes == 0 || rows[0].V6Changes == 0 {
		t.Errorf("Table 1: %+v", rows)
	}
}
