package core

import (
	"math"
	"net/netip"
	"testing"

	"dynamips/internal/atlas"
	"dynamips/internal/stats"
)

// fixtureSeries builds a probe with deterministic daily IPv4 changes and
// monthly IPv6 changes over a year, dual-stack.
func fixtureSeries(id int, asn uint32) atlas.Series {
	ser := atlas.Series{Probe: atlas.Probe{ID: id, ASN: asn}}
	for d := int64(0); d < 365; d++ {
		ser.V4 = append(ser.V4, atlas.Span{
			Start: d * 24, End: d*24 + 23,
			Echo: netip.AddrFrom4([4]byte{81, 10, byte(d >> 8), byte(d)}),
			Src:  netip.MustParseAddr("192.168.1.2"),
		})
	}
	for m := int64(0); m < 12; m++ {
		p := netip.MustParseAddr("2003:1000::").As16()
		p[6] = byte(m)
		addr := netip.AddrFrom16(p)
		ser.V6 = append(ser.V6, atlas.Span{
			Start: m * 730, End: m*730 + 729,
			Echo: addr, Src: addr,
		})
	}
	return ser
}

func TestAnalyzeAndCollectDurations(t *testing.T) {
	series := []atlas.Series{fixtureSeries(1, 3320), fixtureSeries(2, 3320)}
	pas := Analyze(series, DefaultExtractConfig())
	if len(pas) != 2 {
		t.Fatalf("analyzed %d probes", len(pas))
	}
	if !pas[0].DualStack {
		t.Error("fixture probe not dual-stack")
	}
	ds := CollectDurations(pas)
	d := ds[3320]
	if d == nil {
		t.Fatal("no durations for AS3320")
	}
	// 365 daily assignments -> 363 sandwiched per probe.
	if len(d.V4DS) != 2*363 {
		t.Errorf("V4DS samples = %d, want 726", len(d.V4DS))
	}
	for _, v := range d.V4DS {
		if v != 24 {
			t.Fatalf("duration %v, want 24", v)
		}
	}
	if len(d.V4NonDS) != 0 {
		t.Errorf("V4NonDS = %d", len(d.V4NonDS))
	}
	if len(d.V6Hr) != 2*10 {
		t.Errorf("V6 samples = %d, want 20", len(d.V6Hr))
	}
	nds, dsy, v6y := d.TotalYears()
	if nds != 0 || dsy <= 0 || v6y <= 0 {
		t.Errorf("TotalYears = %v, %v, %v", nds, dsy, v6y)
	}
}

func TestDurationCurves(t *testing.T) {
	d := &ASDurations{V4DS: []float64{24, 24, 24, 720}}
	_, ds, _ := DurationCurves(d)
	if len(ds) != 2 {
		t.Fatalf("curve = %+v", ds)
	}
	// 3*24=72h at d=24, 720h at d=720; fractions 72/792 and 1.0.
	if math.Abs(ds[0].Y-72.0/792) > 1e-9 || math.Abs(ds[1].Y-1) > 1e-9 {
		t.Errorf("curve = %+v", ds)
	}
	if got := stats.FractionAtOrBelow(ds, 100); math.Abs(got-72.0/792) > 1e-9 {
		t.Errorf("FractionAtOrBelow(100) = %v", got)
	}
}

func TestDetectPeriodicRenumbering(t *testing.T) {
	ds := map[uint32]*ASDurations{
		3320: {ASN: 3320, V4NonDS: repeat(24, 200), V4DS: repeat(24, 150), V6Hr: repeat(24, 100)},
		7922: {ASN: 7922, V4NonDS: []float64{5000, 9000, 12000}, V6Hr: []float64{8000}},
	}
	found := DetectPeriodicRenumbering(ds, 0.05, 0.5)
	if len(found) != 3 {
		t.Fatalf("found = %+v", found)
	}
	for _, f := range found {
		if f.ASN != 3320 {
			t.Errorf("non-periodic AS %d flagged", f.ASN)
		}
		if f.Modes[0].Period != 24 {
			t.Errorf("mode = %+v", f.Modes[0])
		}
	}
}

func repeat(v float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = v
	}
	return out
}

func TestMeasureSimultaneity(t *testing.T) {
	// Probe whose v4 and v6 change at the same hours.
	coupled := atlas.Series{Probe: atlas.Probe{ID: 1, ASN: 3320}}
	for d := int64(0); d < 60; d++ {
		coupled.V4 = append(coupled.V4, atlas.Span{
			Start: d * 24, End: d*24 + 23,
			Echo: netip.AddrFrom4([4]byte{81, 10, 0, byte(d)}),
		})
		p := netip.MustParseAddr("2003:1000::").As16()
		p[7] = byte(d)
		coupled.V6 = append(coupled.V6, atlas.Span{
			Start: d * 24, End: d*24 + 23,
			Echo: netip.AddrFrom16(p), Src: netip.AddrFrom16(p),
		})
	}
	// Probe whose v6 changes at offset hours.
	uncoupled := atlas.Series{Probe: atlas.Probe{ID: 2, ASN: 7922}}
	for d := int64(0); d < 60; d++ {
		uncoupled.V4 = append(uncoupled.V4, atlas.Span{
			Start: d * 24, End: d*24 + 23,
			Echo: netip.AddrFrom4([4]byte{24, 10, 0, byte(d)}),
		})
		p := netip.MustParseAddr("2601::").As16()
		p[7] = byte(d)
		uncoupled.V6 = append(uncoupled.V6, atlas.Span{
			Start: d*24 + 12, End: d*24 + 35,
			Echo: netip.AddrFrom16(p), Src: netip.AddrFrom16(p),
		})
	}
	pas := Analyze([]atlas.Series{coupled, uncoupled}, DefaultExtractConfig())
	sim := MeasureSimultaneity(pas)
	if got := sim[3320].Fraction(); got != 1 {
		t.Errorf("coupled fraction = %v, want 1", got)
	}
	if got := sim[7922].Fraction(); got != 0 {
		t.Errorf("uncoupled fraction = %v, want 0", got)
	}
	if sim[3320].V6Changes != 59 {
		t.Errorf("v6 changes = %d", sim[3320].V6Changes)
	}
	if (Simultaneity{}).Fraction() != 0 {
		t.Error("empty simultaneity fraction")
	}
}

func TestTable1(t *testing.T) {
	// One dual-stack probe with 363+ changes, one v4-only.
	dsSer := fixtureSeries(1, 3320)
	ndsSer := fixtureSeries(2, 3320)
	ndsSer.V6 = nil
	pas := Analyze([]atlas.Series{dsSer, ndsSer}, DefaultExtractConfig())
	rows := Table1(pas, map[uint32]string{3320: "DTAG"})
	if len(rows) != 1 {
		t.Fatalf("rows = %+v", rows)
	}
	r := rows[0]
	if r.Name != "DTAG" || r.Probes != 2 || r.DSProbes != 1 {
		t.Errorf("row = %+v", r)
	}
	if r.V4Changes != 2*364 || r.DSV4Changes != 364 {
		t.Errorf("changes: %+v", r)
	}
	if r.V6Changes != 11 {
		t.Errorf("v6 changes = %d", r.V6Changes)
	}
	if s := r.DSV4Share(); math.Abs(s-0.5) > 1e-9 {
		t.Errorf("DS share = %v", s)
	}
	if r.String() == "" {
		t.Error("empty row render")
	}
	// Unknown ASN names fall back.
	rows2 := Table1(pas, nil)
	if rows2[0].Name != "AS3320" {
		t.Errorf("fallback name = %q", rows2[0].Name)
	}
}

func TestGroupByASN(t *testing.T) {
	pas := Analyze([]atlas.Series{fixtureSeries(1, 3320), fixtureSeries(2, 7922)}, DefaultExtractConfig())
	g := GroupByASN(pas)
	if len(g) != 2 || len(g[3320]) != 1 || len(g[7922]) != 1 {
		t.Errorf("groups: %v", g)
	}
}
