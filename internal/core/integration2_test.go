package core

import (
	"testing"

	"dynamips/internal/atlas"
	"dynamips/internal/isp"
)

// TestEndToEndNetcologne verifies the /48-delegating, 24h-coupled profile
// end to end: the analyzer must recover the /48 subscriber boundary the
// paper verified against Netcologne's documentation, plus the 24h modes
// and near-total change simultaneity.
func TestEndToEndNetcologne(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end pipeline in -short mode")
	}
	profile, ok := isp.ProfileByName("Netcologne")
	if !ok {
		t.Fatal("Netcologne profile missing")
	}
	res, err := isp.Run(isp.Config{Profile: profile, Subscribers: 120, Hours: 17520, Seed: 301})
	if err != nil {
		t.Fatalf("isp.Run: %v", err)
	}
	fleet, err := atlas.BuildFleet(res, atlas.DefaultFleetConfig(60, 302))
	if err != nil {
		t.Fatalf("BuildFleet: %v", err)
	}
	clean := atlas.Sanitize(fleet.Series, fleet.BGP, atlas.DefaultSanitizeConfig())
	pas := Analyze(clean.Clean, DefaultExtractConfig())

	perAS, _ := SubscriberLengths(pas)
	h := perAS[8422]
	if h == nil || h.N == 0 {
		t.Fatal("no subscriber inference")
	}
	if h.ArgMax() != 48 {
		t.Errorf("inferred subscriber length /%d, want /48", h.ArgMax())
	}
	if h.Fraction(48) < 0.9 {
		t.Errorf("inferred /48 fraction = %v", h.Fraction(48))
	}

	durations := CollectDurations(pas)
	periodic := DetectPeriodicRenumbering(durations, 0.05, 0.3)
	found := map[string]bool{}
	for _, p := range periodic {
		if p.ASN == 8422 && p.Modes[0].Period == 24 {
			found[p.Population] = true
		}
	}
	for _, pop := range []string{"v4-nds", "v4-ds", "v6"} {
		if !found[pop] {
			t.Errorf("24h mode missing in %s (periodic=%v)", pop, periodic)
		}
	}

	sim := MeasureSimultaneity(pas)[8422]
	if sim == nil || sim.Fraction() < 0.9 {
		t.Errorf("simultaneity = %+v, want > 0.9", sim)
	}
}

// TestEndToEndBT checks BT's two-mode spatial signature (Fig. 5: one mode
// at 28–32 from cross-pool jumps, one at 41–54 within pools) and the
// 2-week IPv4 period.
func TestEndToEndBT(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end pipeline in -short mode")
	}
	profile, ok := isp.ProfileByName("BT")
	if !ok {
		t.Fatal("BT profile missing")
	}
	res, err := isp.Run(isp.Config{Profile: profile, Subscribers: 400, Hours: 50400, Seed: 303})
	if err != nil {
		t.Fatalf("isp.Run: %v", err)
	}
	fleet, err := atlas.BuildFleet(res, atlas.DefaultFleetConfig(200, 304))
	if err != nil {
		t.Fatalf("BuildFleet: %v", err)
	}
	clean := atlas.Sanitize(fleet.Series, fleet.BGP, atlas.DefaultSanitizeConfig())
	pas := Analyze(clean.Clean, DefaultExtractConfig())

	durations := CollectDurations(pas)
	periodic := DetectPeriodicRenumbering(durations, 0.05, 0.3)
	has2w := false
	for _, p := range periodic {
		if p.ASN == 2856 && p.Population == "v4-nds" && p.Modes[0].Period == 336 {
			has2w = true
		}
	}
	if !has2w {
		t.Errorf("BT 2-week v4 mode not detected: %+v", periodic)
	}

	spec := CPLSpectra(pas)[2856]
	if spec == nil || spec.TotalChanges() == 0 {
		t.Fatal("no BT CPL spectrum")
	}
	var low, high int
	for n := 24; n <= 39; n++ {
		low += spec.Changes[n]
	}
	for n := 40; n <= 55; n++ {
		high += spec.Changes[n]
	}
	if low == 0 || high == 0 {
		t.Errorf("BT CPL bimodality missing: low=%d high=%d", low, high)
	}
	if spec.MassAtLeast(24) < 0.95 {
		t.Errorf("BT CPL mass >= 24 is %v", spec.MassAtLeast(24))
	}
}
