package core

import (
	"net/netip"
	"sort"

	"dynamips/internal/atlas"
	"dynamips/internal/checkpoint"
	"dynamips/internal/parallel"
	"dynamips/internal/stats"
)

// DualStackMinHours is the paper's dual-stack probe criterion: at least a
// month of both IPv4 and IPv6 measurements (Table 1 fn. 3).
const DualStackMinHours = 720

// ProbeAnalysis is the per-probe digest every higher-level analysis
// consumes: the extracted assignment sequences plus derived classifiers.
type ProbeAnalysis struct {
	Probe     atlas.Probe
	V4        []Assignment[netip.Addr]
	V6        []Assignment[netip.Prefix]
	DualStack bool
}

// Analyze digests sanitized series into per-probe analyses. Series are
// independent, so they are digested concurrently under cfg.Workers; the
// result keeps the input order. Analyze never journals (and so never
// fails); checkpointed pipelines use AnalyzeErr.
func Analyze(series []atlas.Series, cfg ExtractConfig) []ProbeAnalysis {
	return parallel.Map(len(series), cfg.Workers, func(i int) ProbeAnalysis {
		return analyzeOne(&series[i], cfg)
	})
}

// AnalyzeErr is Analyze with crash-safe journaling: when cfg.Checkpoint is
// set, each digested series is recorded in index order under the "analyze"
// stage, and a resumed run decodes completed digests instead of
// recomputing them. With a nil Checkpoint it is exactly Analyze.
func AnalyzeErr(series []atlas.Series, cfg ExtractConfig) ([]ProbeAnalysis, error) {
	return checkpoint.Stage(cfg.Checkpoint, "analyze", len(series), cfg.Workers,
		func(i int) (ProbeAnalysis, error) {
			return analyzeOne(&series[i], cfg), nil
		},
		checkpoint.GobEncode[ProbeAnalysis], checkpoint.GobDecode[ProbeAnalysis])
}

func analyzeOne(s *atlas.Series, cfg ExtractConfig) ProbeAnalysis {
	return ProbeAnalysis{
		Probe:     s.Probe,
		V4:        V4Assignments(s.V4, cfg),
		V6:        V6Assignments(s.V6, cfg),
		DualStack: s.DualStack(DualStackMinHours),
	}
}

// GroupByASN buckets analyses by the probe's AS.
func GroupByASN(pas []ProbeAnalysis) map[uint32][]ProbeAnalysis {
	m := make(map[uint32][]ProbeAnalysis)
	for _, pa := range pas {
		m[pa.Probe.ASN] = append(m[pa.Probe.ASN], pa)
	}
	return m
}

// ASDurations aggregates the paper's three duration populations for one AS
// (Fig. 1): IPv4 on non-dual-stack probes, IPv4 on dual-stack probes, and
// IPv6 /64 durations.
type ASDurations struct {
	ASN                 uint32
	V4NonDS, V4DS, V6Hr []float64
}

// TotalYears returns each population's total assignment time in years, the
// number Fig. 1 reports in parentheses.
func (d *ASDurations) TotalYears() (nds, ds, v6 float64) {
	sum := func(xs []float64) float64 {
		var s float64
		for _, x := range xs {
			s += x
		}
		return s / (24 * 365)
	}
	return sum(d.V4NonDS), sum(d.V4DS), sum(d.V6Hr)
}

// CollectDurations gathers sandwiched duration samples per AS.
func CollectDurations(pas []ProbeAnalysis) map[uint32]*ASDurations {
	m := make(map[uint32]*ASDurations)
	for _, pa := range pas {
		d := m[pa.Probe.ASN]
		if d == nil {
			d = &ASDurations{ASN: pa.Probe.ASN}
			m[pa.Probe.ASN] = d
		}
		v4 := SandwichedDurations(pa.V4)
		if pa.DualStack {
			d.V4DS = append(d.V4DS, v4...)
		} else {
			d.V4NonDS = append(d.V4NonDS, v4...)
		}
		d.V6Hr = append(d.V6Hr, SandwichedDurations(pa.V6)...)
	}
	return m
}

// DurationCurves returns the three cumulative total-time-fraction curves
// for an AS (the Fig. 1 panels).
func DurationCurves(d *ASDurations) (nds, ds, v6 []stats.Point) {
	return stats.CumulativeTotalTimeFraction(d.V4NonDS),
		stats.CumulativeTotalTimeFraction(d.V4DS),
		stats.CumulativeTotalTimeFraction(d.V6Hr)
}

// CandidatePeriods are the renumbering periods prior work and the paper
// report: 12 h, 24 h, 36 h, 48 h, 1 week, 2 weeks (§2.2, §3.2).
var CandidatePeriods = []float64{12, 24, 36, 48, 168, 336}

// PeriodicAS describes detected periodic renumbering in one AS and
// population.
type PeriodicAS struct {
	ASN        uint32
	Population string // "v4-nds", "v4-ds", "v6"
	Modes      []stats.Mode
}

// DetectPeriodicRenumbering scans all ASes' duration populations for
// concentration at the candidate periods. minFraction is the share of
// total assignment time that must fall within ±tol of a candidate (the
// paper's "consistent periodic renumbering", found in 35 networks for
// non-dual-stack IPv4).
func DetectPeriodicRenumbering(ds map[uint32]*ASDurations, tol, minFraction float64) []PeriodicAS {
	var out []PeriodicAS
	add := func(asn uint32, pop string, durations []float64) {
		modes := stats.DetectPeriodicModes(durations, CandidatePeriods, tol, minFraction)
		if len(modes) > 0 {
			out = append(out, PeriodicAS{ASN: asn, Population: pop, Modes: modes})
		}
	}
	asns := make([]uint32, 0, len(ds))
	for asn := range ds {
		asns = append(asns, asn)
	}
	sort.Slice(asns, func(i, j int) bool { return asns[i] < asns[j] })
	for _, asn := range asns {
		d := ds[asn]
		add(asn, "v4-nds", d.V4NonDS)
		add(asn, "v4-ds", d.V4DS)
		add(asn, "v6", d.V6Hr)
	}
	return out
}

// Simultaneity measures how often a dual-stack probe's IPv6 change
// co-occurs (same hour) with an IPv4 change (§3.2: DTAG 90.6%, Comcast
// mostly not). Only exact (contiguously observed) changes are compared.
type Simultaneity struct {
	ASN       uint32
	V6Changes int
	CoOccur   int
}

// Fraction returns the co-occurrence share (0 when no changes).
func (s Simultaneity) Fraction() float64 {
	if s.V6Changes == 0 {
		return 0
	}
	return float64(s.CoOccur) / float64(s.V6Changes)
}

// MeasureSimultaneity computes per-AS co-occurrence over dual-stack probes.
func MeasureSimultaneity(pas []ProbeAnalysis) map[uint32]*Simultaneity {
	out := make(map[uint32]*Simultaneity)
	for _, pa := range pas {
		if !pa.DualStack {
			continue
		}
		s := out[pa.Probe.ASN]
		if s == nil {
			s = &Simultaneity{ASN: pa.Probe.ASN}
			out[pa.Probe.ASN] = s
		}
		v4ChangeHours := make(map[int64]bool)
		ChangePairs(pa.V4, true, func(prev, next Assignment[netip.Addr]) {
			v4ChangeHours[next.Start] = true
		})
		ChangePairs(pa.V6, true, func(prev, next Assignment[netip.Prefix]) {
			s.V6Changes++
			if v4ChangeHours[next.Start] {
				s.CoOccur++
			}
		})
	}
	return out
}
