package core

import (
	"fmt"
	"sort"
)

// Table1Row summarizes assignment changes for one AS (the paper's
// Table 1).
type Table1Row struct {
	Name        string
	ASN         uint32
	Probes      int
	V4Changes   int
	DSProbes    int
	DSV4Changes int
	V6Changes   int
}

// DSV4Share is the "(NN%)" column: the dual-stack share of all IPv4
// changes.
func (r Table1Row) DSV4Share() float64 {
	if r.V4Changes == 0 {
		return 0
	}
	return float64(r.DSV4Changes) / float64(r.V4Changes)
}

// String renders the row like the paper's table.
func (r Table1Row) String() string {
	return fmt.Sprintf("%-12s %6d %8d %9d %9d %10d (%2.0f%%) %9d",
		r.Name, r.ASN, r.Probes, r.V4Changes, r.DSProbes, r.DSV4Changes, 100*r.DSV4Share(), r.V6Changes)
}

// Table1 aggregates per-AS change counts over analyzed probes. names maps
// ASN to operator name (unknown ASNs render as AS<n>).
func Table1(pas []ProbeAnalysis, names map[uint32]string) []Table1Row {
	rows := make(map[uint32]*Table1Row)
	for _, pa := range pas {
		r := rows[pa.Probe.ASN]
		if r == nil {
			name := names[pa.Probe.ASN]
			if name == "" {
				name = fmt.Sprintf("AS%d", pa.Probe.ASN)
			}
			r = &Table1Row{Name: name, ASN: pa.Probe.ASN}
			rows[pa.Probe.ASN] = r
		}
		r.Probes++
		v4 := Changes(pa.V4)
		r.V4Changes += v4
		if pa.DualStack {
			r.DSProbes++
			r.DSV4Changes += v4
			r.V6Changes += Changes(pa.V6)
		}
	}
	out := make([]Table1Row, 0, len(rows))
	for _, r := range rows {
		out = append(out, *r)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].DSProbes != out[j].DSProbes {
			return out[i].DSProbes > out[j].DSProbes
		}
		return out[i].ASN < out[j].ASN
	})
	return out
}
