package core

import (
	"math/rand"
	"net/netip"
	"testing"

	"dynamips/internal/atlas"
)

func a4(s string) netip.Addr { return netip.MustParseAddr(s) }

func spans(parts ...atlas.Span) []atlas.Span { return parts }

func sp4(start, end int64, addr string) atlas.Span {
	return atlas.Span{Start: start, End: end, Echo: a4(addr)}
}

func sp6(start, end int64, addr string) atlas.Span {
	return atlas.Span{Start: start, End: end, Echo: netip.MustParseAddr(addr)}
}

func TestV4AssignmentsContiguous(t *testing.T) {
	as := V4Assignments(spans(
		sp4(0, 23, "81.10.0.1"),
		sp4(24, 47, "81.10.0.2"),
		sp4(48, 100, "81.10.0.3"),
	), DefaultExtractConfig())
	if len(as) != 3 {
		t.Fatalf("got %d assignments", len(as))
	}
	// First: no observed left boundary; exact right.
	if as[0].LeftExact || !as[0].RightExact {
		t.Errorf("first boundaries: %+v", as[0])
	}
	// Middle: sandwiched, 24 hours.
	if !as[1].Sandwiched() || as[1].Duration() != 24 {
		t.Errorf("middle: %+v", as[1])
	}
	// Last: open right.
	if as[2].RightExact {
		t.Errorf("last boundaries: %+v", as[2])
	}
	if got := Changes(as); got != 2 {
		t.Errorf("Changes = %d", got)
	}
	if d := SandwichedDurations(as); len(d) != 1 || d[0] != 24 {
		t.Errorf("durations = %v", d)
	}
}

func TestAssignmentsShortGapSameValue(t *testing.T) {
	// A 3-hour outage inside one assignment: still one assignment.
	as := V4Assignments(spans(
		sp4(0, 10, "81.10.0.1"),
		sp4(14, 20, "81.10.0.1"),
	), DefaultExtractConfig())
	if len(as) != 1 || as[0].Start != 0 || as[0].End != 20 {
		t.Fatalf("assignments = %+v", as)
	}
}

func TestAssignmentsLongGapSameValueSplits(t *testing.T) {
	as := V4Assignments(spans(
		sp4(0, 10, "81.10.0.1"),
		sp4(100, 120, "81.10.0.1"),
	), DefaultExtractConfig())
	if len(as) != 2 {
		t.Fatalf("assignments = %+v", as)
	}
	if as[0].RightExact || as[1].LeftExact {
		t.Error("split across long gap must not be exact")
	}
	if Changes(as) != 0 {
		t.Error("same-value split counted as change")
	}
}

func TestAssignmentsChangeAcrossGapInexact(t *testing.T) {
	as := V4Assignments(spans(
		sp4(0, 10, "81.10.0.1"),
		sp4(50, 80, "81.10.0.2"),
	), DefaultExtractConfig())
	if len(as) != 2 {
		t.Fatalf("assignments = %+v", as)
	}
	if as[0].RightExact || as[1].LeftExact {
		t.Error("change across gap must not be exact")
	}
	if Changes(as) != 1 {
		t.Error("change across gap must still count")
	}
	if len(SandwichedDurations(as)) != 0 {
		t.Error("no sandwiched durations expected")
	}
}

func TestV6AssignmentsTrackSlash64(t *testing.T) {
	// Host-part changes within the same /64 are not assignment changes.
	as := V6Assignments(spans(
		sp6(0, 10, "2003:1000:0:100::1:1"),
		sp6(11, 20, "2003:1000:0:100::2:2"),
		sp6(21, 30, "2003:1000:0:200::1:1"),
	), DefaultExtractConfig())
	if len(as) != 2 {
		t.Fatalf("assignments = %+v", as)
	}
	if as[0].Value != netip.MustParsePrefix("2003:1000:0:100::/64") {
		t.Errorf("value = %v", as[0].Value)
	}
	if as[0].End != 20 {
		t.Errorf("first /64 ends at %d, want 20", as[0].End)
	}
	if Changes(as) != 1 {
		t.Errorf("Changes = %d", Changes(as))
	}
}

func TestChangePairsExactFilter(t *testing.T) {
	as := V4Assignments(spans(
		sp4(0, 10, "81.10.0.1"),
		sp4(11, 20, "81.10.0.2"), // exact boundary
		sp4(50, 60, "81.10.0.3"), // inexact boundary
	), DefaultExtractConfig())
	var all, exact int
	ChangePairs(as, false, func(_, _ Assignment[netip.Addr]) { all++ })
	ChangePairs(as, true, func(_, _ Assignment[netip.Addr]) { exact++ })
	if all != 2 || exact != 1 {
		t.Errorf("all=%d exact=%d, want 2, 1", all, exact)
	}
}

func TestEmptySpans(t *testing.T) {
	if got := V4Assignments(nil, DefaultExtractConfig()); len(got) != 0 {
		t.Errorf("nil spans produced %v", got)
	}
	if Changes[netip.Addr](nil) != 0 {
		t.Error("Changes on empty")
	}
	if len(SandwichedDurations[netip.Addr](nil)) != 0 {
		t.Error("durations on empty")
	}
}

// TestExtractionInvariantsProperty drives extraction with random span
// layouts and checks the structural invariants every consumer relies on.
func TestExtractionInvariantsProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	addrs := []string{"81.10.0.1", "81.10.0.2", "81.10.0.3"}
	for trial := 0; trial < 200; trial++ {
		var spans []atlas.Span
		hour := int64(0)
		for i := 0; i < 20; i++ {
			hour += int64(rng.Intn(20)) // gaps of 0..19 hours
			length := int64(1 + rng.Intn(30))
			spans = append(spans, sp4(hour, hour+length-1, addrs[rng.Intn(len(addrs))]))
			hour += length
		}
		as := V4Assignments(spans, DefaultExtractConfig())
		for i, a := range as {
			if a.End < a.Start {
				t.Fatalf("trial %d: inverted assignment %+v", trial, a)
			}
			if i > 0 && a.Start <= as[i-1].End {
				t.Fatalf("trial %d: overlapping assignments", trial)
			}
			if a.Sandwiched() && a.Duration() < 1 {
				t.Fatalf("trial %d: non-positive duration", trial)
			}
		}
		if got := Changes(as); got > len(as)-1 && len(as) > 0 {
			t.Fatalf("trial %d: %d changes from %d assignments", trial, got, len(as))
		}
		// Total covered hours match the input.
		var inHours, outHours int64
		for _, sp := range spans {
			inHours += sp.End - sp.Start + 1
		}
		for _, a := range as {
			outHours += a.Duration()
		}
		if outHours < inHours {
			t.Fatalf("trial %d: extraction lost hours (%d < %d)", trial, outHours, inHours)
		}
	}
}
