package core_test

import (
	"fmt"
	"net/netip"

	"dynamips/internal/atlas"
	"dynamips/internal/core"
)

// ExampleInferSubscriberLength shows the §5.3 zero-bit technique: three
// /64s whose low byte is always zero reveal a /56 delegation.
func ExampleInferSubscriberLength() {
	spans := []atlas.Span{
		{Start: 0, End: 99, Echo: netip.MustParseAddr("2003:1000:0:1100::1")},
		{Start: 100, End: 199, Echo: netip.MustParseAddr("2003:1000:0:4300::1")},
		{Start: 200, End: 299, Echo: netip.MustParseAddr("2003:1000:1:af00::1")},
	}
	as := core.V6Assignments(spans, core.DefaultExtractConfig())
	length, ok := core.InferSubscriberLength(as)
	fmt.Println(length, ok)
	// Output: 56 true
}

// ExampleV4Assignments shows sandwiched-duration extraction: only the
// middle assignment has both boundaries observed.
func ExampleV4Assignments() {
	spans := []atlas.Span{
		{Start: 0, End: 23, Echo: netip.MustParseAddr("81.10.0.1")},
		{Start: 24, End: 47, Echo: netip.MustParseAddr("81.10.0.2")},
		{Start: 48, End: 80, Echo: netip.MustParseAddr("81.10.0.3")},
	}
	as := core.V4Assignments(spans, core.DefaultExtractConfig())
	fmt.Println(core.Changes(as), core.SandwichedDurations(as))
	// Output: 2 [24]
}

// ExampleNewScanPlan shows the §6 rescan space after a target's prefix
// changed: a /40 pool of /56 delegations needs 2^16 probes instead of the
// announcement's 2^45.
func ExampleNewScanPlan() {
	lastSeen := netip.MustParsePrefix("2003:1000:40:ab00::/64")
	plan, _ := core.NewScanPlan(lastSeen, 40, 56, true)
	fmt.Println(plan.Pool, plan.Size())
	// Output: 2003:1000::/40 65536
}
