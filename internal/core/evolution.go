package core

// Evolution over time (§3.2): the paper breaks durations down by year and
// finds that assignment durations across all categories have lengthened,
// especially in DTAG and Orange. CollectDurationsByEra reproduces that
// per-year view; internal/isp's PolicyShift provides the generative
// counterpart.

// EraDurations is one era's duration populations per AS.
type EraDurations struct {
	// Era is the era index (assignment start hour / eraHours).
	Era int
	// PerAS maps ASN to that era's duration populations.
	PerAS map[uint32]*ASDurations
}

// CollectDurationsByEra splits sandwiched duration samples by the era in
// which the assignment started (eraHours = 8760 gives the paper's
// per-year breakdown). The returned slice is indexed by era; eras without
// samples carry empty maps.
func CollectDurationsByEra(pas []ProbeAnalysis, eraHours int64) []EraDurations {
	if eraHours <= 0 {
		eraHours = 8760
	}
	var eras []EraDurations
	get := func(era int, asn uint32) *ASDurations {
		for len(eras) <= era {
			eras = append(eras, EraDurations{Era: len(eras), PerAS: make(map[uint32]*ASDurations)})
		}
		d := eras[era].PerAS[asn]
		if d == nil {
			d = &ASDurations{ASN: asn}
			eras[era].PerAS[asn] = d
		}
		return d
	}
	for _, pa := range pas {
		for _, a := range pa.V4 {
			if !a.Sandwiched() {
				continue
			}
			d := get(int(a.Start/eraHours), pa.Probe.ASN)
			if pa.DualStack {
				d.V4DS = append(d.V4DS, float64(a.Duration()))
			} else {
				d.V4NonDS = append(d.V4NonDS, float64(a.Duration()))
			}
		}
		for _, a := range pa.V6 {
			if !a.Sandwiched() {
				continue
			}
			d := get(int(a.Start/eraHours), pa.Probe.ASN)
			d.V6Hr = append(d.V6Hr, float64(a.Duration()))
		}
	}
	return eras
}

// MeanDuration returns the arithmetic mean of a duration population
// (0 when empty) — a compact trend indicator for the evolution report.
func MeanDuration(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
