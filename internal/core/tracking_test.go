package core

import (
	"net/netip"
	"testing"

	"dynamips/internal/atlas"
	"dynamips/internal/isp"
	"dynamips/internal/netutil"
)

func v6WithIID(p64 string, iid uint64) netip.Addr {
	hi, _ := netutil.U128(netip.MustParsePrefix(p64).Addr())
	return netutil.AddrFrom128(hi, iid)
}

func TestIID(t *testing.T) {
	a := v6WithIID("2003:1000:0:100::/64", 0xdeadbeefcafe)
	iid, ok := IID(a)
	if !ok || iid != 0xdeadbeefcafe {
		t.Fatalf("IID = %x, %v", iid, ok)
	}
	if _, ok := IID(netip.MustParseAddr("10.0.0.1")); ok {
		t.Error("IPv4 yielded an IID")
	}
}

func TestMeasureTrackingStableIID(t *testing.T) {
	const iid = 0x0200_0000_0000_0042
	ser := atlas.Series{Probe: atlas.Probe{ID: 1, ASN: 3320}}
	for i := int64(0); i < 5; i++ {
		p := netip.MustParseAddr("2003:1000::").As16()
		p[6] = byte(i + 1)
		addr := netutil.AddrFrom128(netutil.Key64(netip.AddrFrom16(p)), iid)
		ser.V6 = append(ser.V6, atlas.Span{Start: i * 100, End: i*100 + 99, Echo: addr, Src: addr})
	}
	rep := MeasureTracking([]atlas.Series{ser})
	if rep.Devices != 1 || rep.Changes != 4 || rep.Linkable != 4 {
		t.Fatalf("report = %+v", rep)
	}
	if rep.LinkableFrac() != 1 {
		t.Errorf("LinkableFrac = %v", rep.LinkableFrac())
	}
	if rep.Collisions != 0 {
		t.Errorf("Collisions = %d", rep.Collisions)
	}
}

func TestMeasureTrackingPrivacyAddresses(t *testing.T) {
	// A device that rotates its IID on every renumbering (privacy
	// addresses, RFC 4941) is not linkable.
	ser := atlas.Series{Probe: atlas.Probe{ID: 1, ASN: 3320}}
	for i := int64(0); i < 5; i++ {
		p := netip.MustParseAddr("2003:1000::").As16()
		p[6] = byte(i + 1)
		addr := netutil.AddrFrom128(netutil.Key64(netip.AddrFrom16(p)), uint64(0x1000+i))
		ser.V6 = append(ser.V6, atlas.Span{Start: i * 100, End: i*100 + 99, Echo: addr, Src: addr})
	}
	rep := MeasureTracking([]atlas.Series{ser})
	if rep.Changes != 4 || rep.Linkable != 0 {
		t.Fatalf("report = %+v", rep)
	}
}

func TestMeasureTrackingCollisions(t *testing.T) {
	mk := func(id int, iid uint64) atlas.Series {
		addr := v6WithIID("2003:1000:0:100::/64", iid)
		return atlas.Series{Probe: atlas.Probe{ID: id, ASN: 3320},
			V6: []atlas.Span{{Start: 0, End: 9, Echo: addr, Src: addr}}}
	}
	rep := MeasureTracking([]atlas.Series{mk(1, 7), mk(2, 7), mk(3, 8)})
	if rep.Collisions != 1 {
		t.Errorf("Collisions = %d, want 1", rep.Collisions)
	}
}

func TestLinkByIID(t *testing.T) {
	const iid = 0x0200_0000_0000_0099
	ser := atlas.Series{Probe: atlas.Probe{ID: 1, ASN: 3320}}
	prefixes := []string{"2003:1000:0:100::/64", "2003:1000:0:200::/64", "2003:1000:0:100::/64"}
	for i, ps := range prefixes {
		addr := v6WithIID(ps, iid)
		ser.V6 = append(ser.V6, atlas.Span{Start: int64(i) * 50, End: int64(i)*50 + 49, Echo: addr, Src: addr})
	}
	devices := LinkByIID([]atlas.Series{ser})
	if len(devices) != 1 {
		t.Fatalf("devices = %+v", devices)
	}
	d := devices[0]
	if d.IID != iid || len(d.Prefixes) != 2 {
		t.Fatalf("device = %+v", d)
	}
}

// TestTrackingOnFleet confirms the §6 claim end to end: Atlas-style
// probes use stable IIDs, so nearly all renumberings are linkable.
func TestTrackingOnFleet(t *testing.T) {
	p, _ := isp.ProfileByName("DTAG")
	res, err := isp.Run(isp.Config{Profile: p, Subscribers: 150, Hours: 5000, Seed: 55})
	if err != nil {
		t.Fatal(err)
	}
	fleet, err := atlas.BuildFleet(res, atlas.FleetConfig{Probes: 80, Seed: 56, JoinSpreadFrac: 0.2,
		UptimeMeanHours: 4000, DowntimeMeanHours: 5})
	if err != nil {
		t.Fatal(err)
	}
	rep := MeasureTracking(fleet.Series)
	if rep.Devices == 0 || rep.Changes == 0 {
		t.Fatalf("report = %+v", rep)
	}
	if rep.LinkableFrac() < 0.99 {
		t.Errorf("LinkableFrac = %v, want ~1 for stable-IID probes", rep.LinkableFrac())
	}
	if rep.Collisions != 0 {
		t.Errorf("collisions across distinct probes: %d", rep.Collisions)
	}
}

// TestTrackingPrivacyFleet: privacy-address devices defeat IID linking
// while the /64 subscriber identification (the paper's point) survives.
func TestTrackingPrivacyFleet(t *testing.T) {
	p, _ := isp.ProfileByName("DTAG")
	res, err := isp.Run(isp.Config{Profile: p, Subscribers: 150, Hours: 5000, Seed: 57})
	if err != nil {
		t.Fatal(err)
	}
	fleet, err := atlas.BuildFleet(res, atlas.FleetConfig{Probes: 80, Seed: 58, JoinSpreadFrac: 0.2,
		UptimeMeanHours: 4000, DowntimeMeanHours: 5, PrivacyIIDFrac: 1})
	if err != nil {
		t.Fatal(err)
	}
	rep := MeasureTracking(fleet.Series)
	if rep.Changes == 0 {
		t.Fatal("no changes")
	}
	if rep.LinkableFrac() > 0.01 {
		t.Errorf("LinkableFrac = %v, want ~0 for privacy addresses", rep.LinkableFrac())
	}
	// The /64-level analysis is unaffected: subscriber inference still
	// works on the same fleet.
	pas := Analyze(atlas.Sanitize(fleet.Series, fleet.BGP, atlas.DefaultSanitizeConfig()).Clean,
		DefaultExtractConfig())
	perAS, _ := SubscriberLengths(pas)
	if h := perAS[3320]; h == nil || h.ArgMax() != 56 {
		t.Errorf("subscriber inference degraded under privacy addresses: %+v", h)
	}
}
