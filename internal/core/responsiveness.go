package core

import (
	"math/rand"
	"net/netip"
	"sort"
)

// Responsiveness-based duration estimation: §3.2's "Comparisons with
// prior work" suspects that Moura et al.'s ZMap technique — inferring
// session durations from continuous ICMP responsiveness — under-reports
// durations, explaining why they saw 10–20 h sessions in ISPs whose
// actual renumbering period is 24 h to 2 weeks. This file implements that
// estimator against the same assignment histories the echo method sees,
// so the bias can be measured directly (the "zmapbias" experiment).

// ResponsivenessConfig models the probing and the CPE's reachability.
type ResponsivenessConfig struct {
	// ResponseProb is the chance an assigned CPE answers a given hourly
	// probe (CPEs rate-limit ICMP, sleep, or sit behind filters).
	ResponseProb float64
	// MaxSilentHours is the longest gap the estimator bridges before
	// declaring the session over.
	MaxSilentHours int64
	// Seed drives the response draws.
	Seed int64
}

// DefaultResponsivenessConfig reflects a well-behaved residential CPE:
// answering three of four probes, with single-hour gaps bridged.
func DefaultResponsivenessConfig() ResponsivenessConfig {
	return ResponsivenessConfig{ResponseProb: 0.75, MaxSilentHours: 1, Seed: 1}
}

// ResponsivenessDurations derives ping-observed session durations from
// true IPv4 assignment histories: each hour of each assignment responds
// with ResponseProb; maximal response runs (bridging gaps up to
// MaxSilentHours) become inferred sessions, measured first-response to
// last-response — exactly what an address-centric prober can observe.
func ResponsivenessDurations(pas []ProbeAnalysis, cfg ResponsivenessConfig) map[uint32][]float64 {
	if cfg.ResponseProb <= 0 || cfg.ResponseProb > 1 {
		cfg.ResponseProb = 0.75
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	out := make(map[uint32][]float64)
	for _, pa := range pas {
		for _, a := range pa.V4 {
			out[pa.Probe.ASN] = append(out[pa.Probe.ASN], sessionsOf(a, cfg, rng)...)
		}
	}
	return out
}

func sessionsOf(a Assignment[netip.Addr], cfg ResponsivenessConfig, rng *rand.Rand) []float64 {
	var (
		sessions    []float64
		runStart    = int64(-1)
		lastSeen    = int64(-1)
		silentSince int64
	)
	flush := func() {
		if runStart >= 0 {
			sessions = append(sessions, float64(lastSeen-runStart+1))
			runStart = -1
		}
	}
	for h := a.Start; h <= a.End; h++ {
		if rng.Float64() < cfg.ResponseProb {
			if runStart < 0 {
				runStart = h
			}
			lastSeen = h
			silentSince = 0
			continue
		}
		if runStart >= 0 {
			silentSince++
			if silentSince > cfg.MaxSilentHours {
				flush()
				silentSince = 0
			}
		}
	}
	flush()
	return sessions
}

// MedianBias summarizes the estimator's error for one AS: the ratio of
// the echo-derived median duration to the responsiveness-derived median.
// Values well above 1 reproduce the paper's suspicion that the ZMap
// technique under-reports session durations.
func MedianBias(echo, responsiveness []float64) float64 {
	if len(echo) == 0 || len(responsiveness) == 0 {
		return 0
	}
	return median(echo) / median(responsiveness)
}

func median(xs []float64) float64 {
	ys := append([]float64(nil), xs...)
	sort.Float64s(ys)
	return ys[len(ys)/2]
}
