package core

import (
	"bytes"
	"math"
	"net/netip"
	"sort"
	"testing"

	"dynamips/internal/atlas"
)

// sketchFixture builds n synthetic probe analyses with seeded,
// reproducible assignment sequences spanning several ASes.
func sketchFixture(n int) []ProbeAnalysis {
	rng := uint64(0x5EED)
	next := func() uint64 {
		rng += 0x9E3779B97F4A7C15
		x := rng
		x ^= x >> 30
		x *= 0xBF58476D1CE4E5B9
		x ^= x >> 27
		x *= 0x94D049BB133111EB
		x ^= x >> 31
		return x
	}
	pas := make([]ProbeAnalysis, n)
	for i := range pas {
		pa := ProbeAnalysis{Probe: atlas.Probe{ID: i, ASN: uint32(1000 + next()%7)}}
		hour := int64(0)
		for j := 0; j < 3+int(next()%5); j++ {
			d := int64(1 + next()%200)
			pa.V4 = append(pa.V4, Assignment[netip.Addr]{
				Value: netip.AddrFrom4([4]byte{10, byte(i), byte(j), 1}),
				Start: hour, End: hour + d - 1,
				LeftExact: j > 0, RightExact: true,
			})
			hour += d
		}
		hour = 0
		for j := 0; j < 2+int(next()%4); j++ {
			d := int64(1 + next()%400)
			pa.V6 = append(pa.V6, Assignment[netip.Prefix]{
				Value: netip.PrefixFrom(netip.AddrFrom16(
					[16]byte{0x20, 0x01, byte(next()), byte(next()), byte(i), byte(j)}), 64),
				Start: hour, End: hour + d - 1,
				LeftExact: j > 0, RightExact: j < 4,
			})
			hour += d
		}
		pas[i] = pa
	}
	return pas
}

// TestBuildSketchesWorkerInvariance: the encoded sketch bytes must be
// identical at any worker count, and identical to a serial fold.
func TestBuildSketchesWorkerInvariance(t *testing.T) {
	pas := sketchFixture(300)
	serial := NewSketchSet()
	for i := range pas {
		FoldProbe(serial, &pas[i])
	}
	want := serial.Encode()
	for _, workers := range []int{1, 4, 16} {
		if got := BuildSketches(pas, workers).Encode(); !bytes.Equal(got, want) {
			t.Fatalf("workers=%d: sketch bytes differ from serial fold", workers)
		}
	}
	if got := BuildSketches(nil, 4); got.Len() != 4 {
		t.Fatalf("empty input: schema has %d sketches, want 4", got.Len())
	}
}

// TestBuildSketchesMatchesOracle: the sketched duration quantiles, AS
// churn counts, and /64 cardinality must match exact recomputation
// within their theoretical bounds.
func TestBuildSketchesMatchesOracle(t *testing.T) {
	pas := sketchFixture(300)
	s := BuildSketches(pas, 0)

	var v4D, v6D []float64
	churn := map[uint64]uint64{}
	pfx := map[uint64]bool{}
	for i := range pas {
		pa := &pas[i]
		v4D = append(v4D, SandwichedDurations(pa.V4)...)
		v6D = append(v6D, SandwichedDurations(pa.V6)...)
		churn[uint64(pa.Probe.ASN)] += uint64(Changes(pa.V4) + Changes(pa.V6))
		for _, a := range pa.V6 {
			b := a.Value.Addr().As16()
			var k uint64
			for _, x := range b[:8] {
				k = k<<8 | uint64(x)
			}
			pfx[k] = true
		}
	}

	for _, tc := range []struct {
		name string
		data []float64
	}{{SkDurV4, v4D}, {SkDurV6, v6D}} {
		q := s.Quantile(tc.name)
		if q.Count() != uint64(len(tc.data)) {
			t.Fatalf("%s: count %d, exact %d", tc.name, q.Count(), len(tc.data))
		}
		sorted := append([]float64(nil), tc.data...)
		sort.Float64s(sorted)
		for _, p := range []float64{0.25, 0.5, 0.9} {
			est := q.Query(p)
			lo := sort.SearchFloat64s(sorted, est) + 1
			hi := sort.SearchFloat64s(sorted, math.Nextafter(est, math.Inf(1)))
			if hi < lo {
				hi = lo
			}
			target := math.Ceil(p * float64(len(sorted)))
			rankErr := 0.0
			if float64(lo) > target {
				rankErr = float64(lo) - target
			} else if float64(hi) < target {
				rankErr = target - float64(hi)
			}
			if bound := sketchAlpha*float64(len(sorted)) + 1; rankErr > bound {
				t.Errorf("%s p=%.2f: rank error %.1f > %.1f", tc.name, p, rankErr, bound)
			}
		}
	}

	// Seven ASes, far below capacity: exact regime, zero slack.
	tk := s.TopK(SkChurnAS)
	if tk.Slack() != 0 {
		t.Fatalf("churn_as slack %d in exact regime", tk.Slack())
	}
	for asn, want := range churn {
		if est, ok := tk.Est(asn); !ok || est != want {
			t.Fatalf("churn_as %d: est %d tracked=%v, exact %d", asn, est, ok, want)
		}
	}

	c := s.Card(SkPfx64)
	rel := math.Abs(c.Estimate()-float64(len(pfx))) / float64(len(pfx))
	if bound := 4 * c.RSE(); rel > bound {
		t.Errorf("pfx64: estimate %.0f for %d distinct, relative error %.4f > %.4f",
			c.Estimate(), len(pfx), rel, bound)
	}
}
