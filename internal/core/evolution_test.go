package core

import (
	"math"
	"net/netip"
	"testing"

	"dynamips/internal/atlas"
	"dynamips/internal/isp"
	"dynamips/internal/stats"
)

// evolvingSeries changes daily for the first year, then weekly.
func evolvingSeries(id int, asn uint32) atlas.Series {
	ser := atlas.Series{Probe: atlas.Probe{ID: id, ASN: asn}}
	hour := int64(0)
	i := 0
	for hour < 8760 {
		end := hour + 23
		ser.V4 = append(ser.V4, atlas.Span{Start: hour, End: end,
			Echo: netip.AddrFrom4([4]byte{81, 1, byte(i >> 8), byte(i)})})
		hour = end + 1
		i++
	}
	for hour < 2*8760 {
		end := hour + 167
		ser.V4 = append(ser.V4, atlas.Span{Start: hour, End: end,
			Echo: netip.AddrFrom4([4]byte{81, 2, byte(i >> 8), byte(i)})})
		hour = end + 1
		i++
	}
	return ser
}

func TestCollectDurationsByEra(t *testing.T) {
	pas := Analyze([]atlas.Series{evolvingSeries(1, 3320)}, DefaultExtractConfig())
	eras := CollectDurationsByEra(pas, 8760)
	if len(eras) < 2 {
		t.Fatalf("eras = %d", len(eras))
	}
	y0 := eras[0].PerAS[3320]
	y1 := eras[1].PerAS[3320]
	if y0 == nil || y1 == nil {
		t.Fatal("missing era populations")
	}
	if m := MeanDuration(y0.V4NonDS); math.Abs(m-24) > 1 {
		t.Errorf("year-0 mean = %v, want ~24", m)
	}
	if m := MeanDuration(y1.V4NonDS); math.Abs(m-168) > 2 {
		t.Errorf("year-1 mean = %v, want ~168", m)
	}
	if MeanDuration(nil) != 0 {
		t.Error("empty mean not 0")
	}
	// Default era length kicks in for non-positive values.
	if got := CollectDurationsByEra(pas, 0); len(got) != len(eras) {
		t.Errorf("default era length differs: %d vs %d", len(got), len(eras))
	}
}

func TestPolicyShiftLengthensDurations(t *testing.T) {
	p, ok := isp.ProfileByName("DTAG")
	if !ok {
		t.Fatal("no DTAG profile")
	}
	if p.Shift == nil {
		t.Fatal("DTAG profile lost its policy shift")
	}
	res, err := isp.Run(isp.Config{Profile: p, Subscribers: 300, Hours: 50400, Seed: 33})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	fleet, err := atlas.BuildFleet(res, atlas.FleetConfig{Probes: 200, Seed: 34, JoinSpreadFrac: 0.1,
		UptimeMeanHours: 5000, DowntimeMeanHours: 5})
	if err != nil {
		t.Fatalf("fleet: %v", err)
	}
	pas := Analyze(atlas.Sanitize(fleet.Series, fleet.BGP, atlas.DefaultSanitizeConfig()).Clean,
		DefaultExtractConfig())
	eras := CollectDurationsByEra(pas, 8760)
	if len(eras) < 5 {
		t.Fatalf("eras = %d", len(eras))
	}
	early := eras[1].PerAS[3320]
	late := eras[4].PerAS[3320]
	if early == nil || late == nil {
		t.Fatal("missing eras")
	}
	_, dsEarly, _ := DurationCurves(early)
	_, dsLate, _ := DurationCurves(late)
	fe := fractionAt(dsEarly, 24)
	fl := fractionAt(dsLate, 24)
	if !(fl < fe) {
		t.Errorf("daily fraction did not drop after policy shift: early=%v late=%v", fe, fl)
	}
}

func fractionAt(curve []stats.Point, x float64) float64 {
	return stats.FractionAtOrBelow(curve, x)
}

func TestResponsivenessDurationsUnderReport(t *testing.T) {
	// A probe with exact 2-week assignments: the echo method sees 336h;
	// the responsiveness estimator splits sessions at unanswered probes.
	var ser atlas.Series
	ser.Probe = atlas.Probe{ID: 1, ASN: 2856}
	for i := int64(0); i < 20; i++ {
		ser.V4 = append(ser.V4, atlas.Span{Start: i * 336, End: i*336 + 335,
			Echo: netip.AddrFrom4([4]byte{86, 128, 0, byte(i)})})
	}
	pas := Analyze([]atlas.Series{ser}, DefaultExtractConfig())
	resp := ResponsivenessDurations(pas, DefaultResponsivenessConfig())[2856]
	if len(resp) == 0 {
		t.Fatal("no inferred sessions")
	}
	echo := SandwichedDurations(pas[0].V4)
	bias := MedianBias(echo, resp)
	if bias < 3 {
		t.Errorf("bias = %v, want substantial under-reporting", bias)
	}
	// Sessions never exceed the true assignment duration.
	for _, d := range resp {
		if d > 336 {
			t.Fatalf("inferred session %vh exceeds true 336h assignment", d)
		}
	}
}

func TestResponsivenessPerfectProber(t *testing.T) {
	var ser atlas.Series
	ser.Probe = atlas.Probe{ID: 1, ASN: 1}
	for i := int64(0); i < 5; i++ {
		ser.V4 = append(ser.V4, atlas.Span{Start: i * 100, End: i*100 + 99,
			Echo: netip.AddrFrom4([4]byte{81, 0, 0, byte(i)})})
	}
	pas := Analyze([]atlas.Series{ser}, DefaultExtractConfig())
	resp := ResponsivenessDurations(pas, ResponsivenessConfig{ResponseProb: 1, MaxSilentHours: 0, Seed: 1})[1]
	if len(resp) != 5 {
		t.Fatalf("sessions = %v", resp)
	}
	for _, d := range resp {
		if d != 100 {
			t.Errorf("perfect prober session = %v, want 100", d)
		}
	}
}

func TestMedianBiasEdgeCases(t *testing.T) {
	if MedianBias(nil, []float64{1}) != 0 || MedianBias([]float64{1}, nil) != 0 {
		t.Error("empty inputs should yield 0")
	}
	if got := MedianBias([]float64{10, 10, 10}, []float64{5, 5, 5}); got != 2 {
		t.Errorf("bias = %v, want 2", got)
	}
}
