package core

import (
	"net/netip"
	"testing"

	"dynamips/internal/atlas"
	"dynamips/internal/bgp"
	"dynamips/internal/stats"
)

func v6Series(id int, asn uint32, prefixes []string, hoursEach int64) atlas.Series {
	ser := atlas.Series{Probe: atlas.Probe{ID: id, ASN: asn}}
	for i, ps := range prefixes {
		p := netip.MustParsePrefix(ps)
		addr := p.Addr().Next() // host inside the /64
		ser.V6 = append(ser.V6, atlas.Span{
			Start: int64(i) * hoursEach, End: int64(i+1)*hoursEach - 1,
			Echo: addr, Src: addr,
		})
	}
	return ser
}

func TestCPLSpectra(t *testing.T) {
	ser := v6Series(1, 3320, []string{
		"2003:1000:0:100::/64",
		"2003:1000:0:1f0::/64",  // CPL 56 with previous
		"2003:1000:40:100::/64", // CPL 41
	}, 100)
	pas := Analyze([]atlas.Series{ser}, DefaultExtractConfig())
	spec := CPLSpectra(pas)[3320]
	if spec == nil {
		t.Fatal("no spectrum")
	}
	if spec.TotalChanges() != 2 {
		t.Fatalf("total changes = %d", spec.TotalChanges())
	}
	if spec.Changes[56] != 1 || spec.Changes[41] != 1 {
		t.Errorf("changes histogram: 56=%d 41=%d", spec.Changes[56], spec.Changes[41])
	}
	if spec.Probes[56] != 1 || spec.Probes[41] != 1 {
		t.Errorf("probe histogram wrong")
	}
	if got := spec.MassAtLeast(48); got != 0.5 {
		t.Errorf("MassAtLeast(48) = %v", got)
	}
	if m := spec.ModeCPL(); m != 41 && m != 56 {
		t.Errorf("ModeCPL = %d", m)
	}
}

func TestUniquePrefixesAndPoolBoundary(t *testing.T) {
	var table bgp.Table
	table.Announce(netip.MustParsePrefix("2003::/19"), 3320)
	// Probe hops across many /56s inside one /40.
	var prefixes []string
	for i := 0; i < 8; i++ {
		prefixes = append(prefixes, netip.MustParsePrefix("2003:1000::/40").String())
		p := netip.MustParseAddr("2003:1000::").As16()
		p[5] = byte(i + 1) // vary bits 40..47: distinct /48s inside one /40
		prefixes[i] = netip.PrefixFrom(netip.AddrFrom16(p), 64).String()
	}
	ser := v6Series(1, 3320, prefixes, 500)
	pas := Analyze([]atlas.Series{ser}, DefaultExtractConfig())
	dists := UniquePrefixes(pas, &table)
	d := dists[3320]
	if d == nil {
		t.Fatal("no distribution")
	}
	if got := d.PerLen[64].Median(); got != 8 {
		t.Errorf("unique /64s = %v", got)
	}
	if got := d.PerLen[40].Median(); got != 1 {
		t.Errorf("unique /40s = %v", got)
	}
	if got := d.BGPDist.Median(); got != 1 {
		t.Errorf("unique BGP prefixes = %v", got)
	}
	l, ok := InferPoolBoundary(d, 3)
	if !ok || l != 40 {
		t.Errorf("InferPoolBoundary = %d, %v; want 40", l, ok)
	}
}

func TestInferPoolBoundaryEmpty(t *testing.T) {
	d := &UniquePrefixDist{PerLen: map[int]*stats.ECDF{}}
	if _, ok := InferPoolBoundary(d, 3); ok {
		t.Error("empty distribution inferred a boundary")
	}
}

func TestTable2(t *testing.T) {
	var table bgp.Table
	table.Announce(netip.MustParsePrefix("81.0.0.0/10"), 3215)
	table.Announce(netip.MustParsePrefix("90.0.0.0/9"), 3215)
	table.Announce(netip.MustParsePrefix("2003::/19"), 3320)

	ser := atlas.Series{Probe: atlas.Probe{ID: 1, ASN: 3215}}
	addrs := []string{
		"81.10.0.1",  // base
		"81.10.0.99", // same /24, same BGP
		"81.20.0.1",  // diff /24, same BGP
		"90.1.2.3",   // diff /24, diff BGP
		"8.8.8.8",    // unrouted in this table
	}
	for i, a := range addrs {
		ser.V4 = append(ser.V4, atlas.Span{Start: int64(i) * 10, End: int64(i)*10 + 9, Echo: netip.MustParseAddr(a)})
	}
	ser.V6 = []atlas.Span{
		{Start: 0, End: 9, Echo: netip.MustParseAddr("2003:1::1")},
		{Start: 10, End: 19, Echo: netip.MustParseAddr("2003:2::1")},
	}
	pas := Analyze([]atlas.Series{ser}, DefaultExtractConfig())
	rows := Table2(pas, &table)
	r := rows[3215]
	if r == nil {
		t.Fatal("no row")
	}
	if r.V4Changes != 4 {
		t.Fatalf("v4 changes = %d", r.V4Changes)
	}
	if r.Diff24 != 3 {
		t.Errorf("Diff24 = %d, want 3", r.Diff24)
	}
	if r.DiffBGP4 != 1 {
		t.Errorf("DiffBGP4 = %d, want 1", r.DiffBGP4)
	}
	if r.V4Unrouted != 1 {
		t.Errorf("V4Unrouted = %d", r.V4Unrouted)
	}
	if r.V6Changes != 1 || r.DiffBGP6 != 0 {
		t.Errorf("v6: %+v", r)
	}
	d24, db4, db6 := r.Pct()
	if d24 != 75 || db4 != 25 || db6 != 0 {
		t.Errorf("Pct = %v, %v, %v", d24, db4, db6)
	}
}

func TestTable2PctEmpty(t *testing.T) {
	var r Table2Row
	a, b, c := r.Pct()
	if a != 0 || b != 0 || c != 0 {
		t.Error("empty row pct not zero")
	}
}
