package core

import (
	"net/netip"
	"testing"

	"dynamips/internal/atlas"
)

func assignmentsFor(prefixes ...string) []Assignment[netip.Prefix] {
	var spans []atlas.Span
	for i, ps := range prefixes {
		p := netip.MustParsePrefix(ps)
		spans = append(spans, atlas.Span{
			Start: int64(i) * 100, End: int64(i)*100 + 99,
			Echo: p.Addr().Next(), Src: p.Addr().Next(),
		})
	}
	return V6Assignments(spans, DefaultExtractConfig())
}

func TestInferSubscriberLength(t *testing.T) {
	cases := []struct {
		name     string
		prefixes []string
		want     int
		ok       bool
	}{
		{
			name: "slash56 zeroing CPE",
			prefixes: []string{
				"2003:1000:0:100::/64",
				"2003:1000:0:4300::/64",
				"2003:1000:1:af00::/64",
			},
			want: 56, ok: true,
		},
		{
			name: "slash48 delegation (Netcologne)",
			prefixes: []string{
				"2001:4dd0:1::/64",
				"2001:4dd0:47::/64",
				"2001:4dd0:b2::/64",
			},
			want: 48, ok: true,
		},
		{
			name: "slash62 delegation (Kabel DE)",
			prefixes: []string{
				"2a02:8100:0:4::/64",
				"2a02:8100:0:a4::/64",
				"2a02:8100:1:b8::/64",
			},
			want: 62, ok: true,
		},
		{
			name: "scrambling CPE looks like /64",
			prefixes: []string{
				"2003:1000:0:11ab::/64",
				"2003:1000:0:42ff::/64",
				"2003:1000:0:9d01::/64",
			},
			want: 64, ok: true,
		},
		{
			name:     "single prefix: no inference",
			prefixes: []string{"2003:1000:0:100::/64"},
			ok:       false,
		},
		{
			name:     "no changes at all",
			prefixes: nil,
			ok:       false,
		},
	}
	for _, c := range cases {
		got, ok := InferSubscriberLength(assignmentsFor(c.prefixes...))
		if ok != c.ok || (ok && got != c.want) {
			t.Errorf("%s: InferSubscriberLength = (%d, %v), want (%d, %v)", c.name, got, ok, c.want, c.ok)
		}
	}
}

func TestInferSubscriberLengthCap(t *testing.T) {
	// Prefixes sharing absurdly many zero bits cap at /32.
	as := assignmentsFor("2003::/64", "2004::/64")
	l, ok := InferSubscriberLength(as)
	if !ok || l != 32 {
		t.Errorf("capped inference = (%d, %v), want (32, true)", l, ok)
	}
}

func TestSubscriberLengths(t *testing.T) {
	mk := func(id int, asn uint32, prefixes ...string) atlas.Series {
		var spans []atlas.Span
		for i, ps := range prefixes {
			p := netip.MustParsePrefix(ps)
			spans = append(spans, atlas.Span{
				Start: int64(i) * 1000, End: int64(i)*1000 + 999,
				Echo: p.Addr().Next(), Src: p.Addr().Next(),
			})
		}
		return atlas.Series{Probe: atlas.Probe{ID: id, ASN: asn}, V6: spans}
	}
	series := []atlas.Series{
		mk(1, 3320, "2003:1000:0:100::/64", "2003:1000:0:7800::/64"),
		mk(2, 3320, "2003:2000:0:a100::/64", "2003:2000:0:4200::/64"),
		mk(3, 8422, "2001:4dd0:5::/64", "2001:4dd0:91::/64"),
		mk(4, 8422, "2001:4dd0:77::/64"), // no change: excluded
	}
	pas := Analyze(series, DefaultExtractConfig())
	perAS, pooled := SubscriberLengths(pas)
	if got := perAS[3320]; got == nil || got.N != 2 || got.Counts[56] != 2 {
		t.Errorf("DTAG histogram: %+v", got)
	}
	if got := perAS[8422]; got == nil || got.Counts[48] != 1 {
		t.Errorf("Netcologne histogram: %+v", got)
	}
	if pooled.N != 3 {
		t.Errorf("pooled N = %d", pooled.N)
	}
}

func TestClassifyTrailingZeros(t *testing.T) {
	prefixes := []netip.Prefix{
		netip.MustParsePrefix("2a01:c000:0:ff00::/64"), // /56
		netip.MustParsePrefix("2a01:c000:0:fff0::/64"), // /60
		netip.MustParsePrefix("2a01:c000:0:f000::/64"), // /52
		netip.MustParsePrefix("2a01:c000:1::/64"),      // /48
		netip.MustParsePrefix("2a01:c000:0:ffff::/64"), // none
	}
	b := ClassifyTrailingZeros(prefixes)
	if b.Total != 5 || b.Inferable != 4 {
		t.Fatalf("buckets: %+v", b)
	}
	for l, want := range map[int]int{56: 1, 60: 1, 52: 1, 48: 1} {
		if b.Counts[l] != want {
			t.Errorf("Counts[%d] = %d, want %d", l, b.Counts[l], want)
		}
	}
	if f := b.InferableFrac(); f != 0.8 {
		t.Errorf("InferableFrac = %v", f)
	}
	if f := b.Frac(56); f != 0.2 {
		t.Errorf("Frac(56) = %v", f)
	}
	empty := ClassifyTrailingZeros(nil)
	if empty.InferableFrac() != 0 || empty.Frac(56) != 0 {
		t.Error("empty buckets nonzero")
	}
}
