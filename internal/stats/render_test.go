package stats

import (
	"strings"
	"testing"
)

func TestRenderBar(t *testing.T) {
	cases := []struct {
		v, max float64
		width  int
		want   string
	}{
		{50, 100, 10, "#####"},
		{100, 100, 10, "##########"},
		{1, 1000, 10, "#"}, // floor of one cell
		{0, 100, 10, ""},
		{-5, 100, 10, ""},
		{50, 0, 10, ""},
		{50, 100, 0, ""},
		{200, 100, 10, "##########"}, // clamped
	}
	for _, c := range cases {
		if got := RenderBar(c.v, c.max, c.width); got != c.want {
			t.Errorf("RenderBar(%v,%v,%d) = %q, want %q", c.v, c.max, c.width, got, c.want)
		}
	}
}

func TestRenderHistogram(t *testing.T) {
	rows := []struct {
		Label string
		Value float64
	}{
		{"/56", 80},
		{"/60", 40},
		{"/64", 0},
	}
	out := RenderHistogram(rows, 20)
	if len(out) != 3 {
		t.Fatalf("rows = %v", out)
	}
	if out[0] != "/56 |####################" {
		t.Errorf("row 0 = %q", out[0])
	}
	if !strings.HasPrefix(out[1], "/60 |##########") {
		t.Errorf("row 1 = %q", out[1])
	}
	if out[2] != "/64 |" {
		t.Errorf("row 2 = %q", out[2])
	}
}
