package stats

import (
	"math/rand"
	"sort"
	"testing"
)

func benchDurations(n int) []float64 {
	rng := rand.New(rand.NewSource(3))
	out := make([]float64, n)
	for i := range out {
		if rng.Intn(2) == 0 {
			out[i] = 24
		} else {
			out[i] = float64(1 + rng.Intn(5000))
		}
	}
	return out
}

func BenchmarkTotalTimeFraction(b *testing.B) {
	ds := benchDurations(100000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if pts := TotalTimeFraction(ds); len(pts) == 0 {
			b.Fatal("empty")
		}
	}
}

// BenchmarkNaivePMF is the ablation baseline the paper's §3.2.1 argues
// against: an unweighted PMF over the same samples. It is cheaper but
// over-represents short durations; the benchmark quantifies the cost of
// doing it right.
func BenchmarkNaivePMF(b *testing.B) {
	ds := benchDurations(100000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		counts := make(map[float64]int, 64)
		for _, d := range ds {
			counts[d]++
		}
		type pt struct {
			x float64
			y float64
		}
		pts := make([]pt, 0, len(counts))
		for d, n := range counts {
			pts = append(pts, pt{d, float64(n) / float64(len(ds))})
		}
		sort.Slice(pts, func(i, j int) bool { return pts[i].x < pts[j].x })
		if len(pts) == 0 {
			b.Fatal("empty")
		}
	}
}

func BenchmarkECDFQuantile(b *testing.B) {
	e := NewECDF(benchDurations(100000))
	e.Quantile(0.5) // force the sort outside the loop
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Quantile(float64(i%100) / 100)
	}
}

func BenchmarkDetectPeriodicModes(b *testing.B) {
	ds := benchDurations(100000)
	candidates := []float64{12, 24, 36, 48, 168, 336}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		DetectPeriodicModes(ds, candidates, 0.05, 0.3)
	}
}

// TestNaiveVsWeightedPMF documents the §3.2.1 bias: with one daily
// changer and one monthly changer observed for a year, the naive PMF
// assigns 96.8% of the mass to the 1-day duration, while the total time
// fraction splits it evenly.
func TestNaiveVsWeightedPMF(t *testing.T) {
	var ds []float64
	for i := 0; i < 365; i++ {
		ds = append(ds, 24)
	}
	for i := 0; i < 12; i++ {
		ds = append(ds, 720)
	}
	naiveShort := 365.0 / float64(len(ds))
	weighted := TotalTimeFraction(ds)
	weightedShort := weighted[0].Y
	if naiveShort < 0.95 {
		t.Fatalf("naive short-duration share = %v, expected ~0.97", naiveShort)
	}
	if weightedShort > 0.55 || weightedShort < 0.45 {
		t.Fatalf("weighted short-duration share = %v, expected ~0.5", weightedShort)
	}
}
