package stats_test

import (
	"fmt"

	"dynamips/internal/stats"
)

// ExampleTotalTimeFraction reproduces §3.2.1's motivating example: a
// naive PMF would give the 365 one-day durations 96.8% of the mass; the
// total time fraction weighs them by time spent.
func ExampleTotalTimeFraction() {
	var durations []float64
	for i := 0; i < 365; i++ {
		durations = append(durations, 24) // CPE1: daily changes for a year
	}
	for i := 0; i < 12; i++ {
		durations = append(durations, 720) // CPE2: monthly changes
	}
	pts := stats.TotalTimeFraction(durations)
	fmt.Printf("%.3f %.3f\n", pts[0].Y, pts[1].Y)
	// Output: 0.503 0.497
}
