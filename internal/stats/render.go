package stats

import "strings"

// RenderBar draws a proportional text bar of at most width cells for
// value v on a scale of max. Non-positive values render empty; a
// non-zero value always gets at least one cell so small populations stay
// visible (the same convention the paper's bar charts use).
func RenderBar(v, max float64, width int) string {
	if width <= 0 || max <= 0 || v <= 0 {
		return ""
	}
	n := int(v / max * float64(width))
	if n == 0 {
		n = 1
	}
	if n > width {
		n = width
	}
	return strings.Repeat("#", n)
}

// RenderHistogram renders labeled rows with proportional bars, aligned to
// the widest label. rows preserve their order.
func RenderHistogram(rows []struct {
	Label string
	Value float64
}, width int) []string {
	var max float64
	labelW := 0
	for _, r := range rows {
		if r.Value > max {
			max = r.Value
		}
		if len(r.Label) > labelW {
			labelW = len(r.Label)
		}
	}
	out := make([]string, len(rows))
	for i, r := range rows {
		pad := strings.Repeat(" ", labelW-len(r.Label))
		out[i] = r.Label + pad + " |" + RenderBar(r.Value, max, width)
	}
	return out
}
