package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestECDFBasics(t *testing.T) {
	e := NewECDF([]float64{3, 1, 2, 2})
	if e.Len() != 4 {
		t.Fatalf("Len = %d", e.Len())
	}
	if got := e.At(0.5); got != 0 {
		t.Errorf("At(0.5) = %v, want 0", got)
	}
	if got := e.At(2); !almost(got, 0.75) {
		t.Errorf("At(2) = %v, want 0.75", got)
	}
	if got := e.At(3); !almost(got, 1) {
		t.Errorf("At(3) = %v, want 1", got)
	}
	if got := e.Median(); got != 2 {
		t.Errorf("Median = %v, want 2", got)
	}
	if got := e.Mean(); !almost(got, 2) {
		t.Errorf("Mean = %v, want 2", got)
	}
}

func TestECDFEmpty(t *testing.T) {
	var e ECDF
	if !math.IsNaN(e.Quantile(0.5)) || !math.IsNaN(e.Mean()) {
		t.Error("empty ECDF should return NaN quantiles and mean")
	}
	if e.At(100) != 0 {
		t.Error("empty ECDF At != 0")
	}
	if pts := e.Curve(); len(pts) != 0 {
		t.Errorf("empty curve has %d points", len(pts))
	}
}

func TestECDFAddThenQuery(t *testing.T) {
	var e ECDF
	for _, v := range []float64{5, 1, 9} {
		e.Add(v)
	}
	if got := e.Quantile(1); got != 9 {
		t.Errorf("Quantile(1) = %v, want 9", got)
	}
	if got := e.Quantile(0); got != 1 {
		t.Errorf("Quantile(0) = %v, want 1", got)
	}
}

func TestQuantileMonotoneProperty(t *testing.T) {
	f := func(raw []float64, a, b float64) bool {
		xs := raw[:0]
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		p := math.Abs(math.Mod(a, 1))
		q := math.Abs(math.Mod(b, 1))
		if p > q {
			p, q = q, p
		}
		e := NewECDF(xs)
		return e.Quantile(p) <= e.Quantile(q)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestECDFCurve(t *testing.T) {
	e := NewECDF([]float64{1, 1, 2, 4})
	pts := e.Curve()
	want := []Point{{1, 0.5}, {2, 0.75}, {4, 1}}
	if len(pts) != len(want) {
		t.Fatalf("curve has %d points, want %d", len(pts), len(want))
	}
	for i := range want {
		if pts[i].X != want[i].X || !almost(pts[i].Y, want[i].Y) {
			t.Errorf("curve[%d] = %+v, want %+v", i, pts[i], want[i])
		}
	}
}

func TestBoxStats(t *testing.T) {
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = float64(i + 1) // 1..100
	}
	b := NewECDF(xs).Box()
	if b.P5 != 5 || b.Q1 != 25 || b.Median != 50 || b.Q3 != 75 || b.P95 != 95 {
		t.Errorf("Box = %v", b)
	}
	if b.N != 100 {
		t.Errorf("N = %d", b.N)
	}
}

// TestTotalTimeFractionPaperExample reproduces the metric's motivating
// example from §3.2.1: CPE1 with 365 one-day durations and CPE2 with 12
// thirty-day durations. A naive PMF would give CPE1's durations 96.8% of
// the mass; the total time fraction splits it by time spent.
func TestTotalTimeFractionPaperExample(t *testing.T) {
	var durations []float64
	for i := 0; i < 365; i++ {
		durations = append(durations, 1)
	}
	for i := 0; i < 12; i++ {
		durations = append(durations, 30)
	}
	pts := TotalTimeFraction(durations)
	if len(pts) != 2 {
		t.Fatalf("got %d points, want 2", len(pts))
	}
	total := 365.0 + 360.0
	if !almost(pts[0].Y, 365/total) {
		t.Errorf("mass at d=1 is %v, want %v", pts[0].Y, 365/total)
	}
	if !almost(pts[1].Y, 360/total) {
		t.Errorf("mass at d=30 is %v, want %v", pts[1].Y, 360/total)
	}
}

func TestTotalTimeFractionSumsToOneProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		var ds []float64
		for _, v := range raw {
			if v > 0 {
				ds = append(ds, float64(v))
			}
		}
		pts := TotalTimeFraction(ds)
		if len(ds) == 0 {
			return pts == nil
		}
		var sum float64
		for _, p := range pts {
			sum += p.Y
		}
		return math.Abs(sum-1) < 1e-9 && sort.SliceIsSorted(pts, func(i, j int) bool { return pts[i].X < pts[j].X })
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCumulativeTotalTimeFraction(t *testing.T) {
	pts := CumulativeTotalTimeFraction([]float64{1, 1, 2})
	// total=4; mass(1)=2*1/4=0.5; mass(2)=2/4=0.5 -> cumulative 0.5, 1.0
	if len(pts) != 2 || !almost(pts[0].Y, 0.5) || !almost(pts[1].Y, 1.0) {
		t.Errorf("cumulative = %+v", pts)
	}
	if CumulativeTotalTimeFraction(nil) != nil {
		t.Error("empty input should return nil")
	}
}

func TestFractionAtOrBelow(t *testing.T) {
	curve := []Point{{24, 0.6}, {168, 0.9}, {720, 1.0}}
	cases := []struct {
		x, want float64
	}{
		{1, 0}, {24, 0.6}, {100, 0.6}, {168, 0.9}, {1e6, 1.0},
	}
	for _, c := range cases {
		if got := FractionAtOrBelow(curve, c.x); !almost(got, c.want) {
			t.Errorf("FractionAtOrBelow(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}

func TestDetectPeriodicModes(t *testing.T) {
	// 80% of time in 24h durations, 20% in scattered long ones.
	var ds []float64
	for i := 0; i < 100; i++ {
		ds = append(ds, 24)
	}
	ds = append(ds, 600)
	candidates := []float64{12, 24, 36, 48, 168, 336}
	modes := DetectPeriodicModes(ds, candidates, 0.05, 0.3)
	if len(modes) != 1 || modes[0].Period != 24 {
		t.Fatalf("modes = %+v, want single 24h mode", modes)
	}
	if modes[0].Fraction < 0.7 {
		t.Errorf("24h fraction = %v, want >= 0.7", modes[0].Fraction)
	}
	if got := DetectPeriodicModes(nil, candidates, 0.05, 0.3); got != nil {
		t.Error("empty input should return nil")
	}
}

func TestDetectPeriodicModesSortedByMass(t *testing.T) {
	var ds []float64
	for i := 0; i < 10; i++ {
		ds = append(ds, 24)
	}
	for i := 0; i < 100; i++ {
		ds = append(ds, 168)
	}
	modes := DetectPeriodicModes(ds, []float64{24, 168}, 0.05, 0.01)
	if len(modes) != 2 || modes[0].Period != 168 {
		t.Fatalf("modes = %+v, want 168 first", modes)
	}
}

func TestLogHistogram(t *testing.T) {
	h := NewLogHistogram(1) // one bin per decade
	h.Add(5, 1)             // decade 0
	h.Add(50, 1)            // decade 1
	h.Add(80000, 2)         // decade 4
	pts := h.Density()
	if len(pts) != 3 {
		t.Fatalf("density has %d points", len(pts))
	}
	var sum float64
	for _, p := range pts {
		sum += p.Y
	}
	if !almost(sum, 1) {
		t.Errorf("density sums to %v", sum)
	}
	if peak := h.PeakX(); peak < 1e4 || peak >= 1e5 {
		t.Errorf("PeakX = %v, want within decade 4", peak)
	}
	h.Add(-3, 1) // ignored
	h.Add(3, -1) // ignored
	if h.Total != 4 {
		t.Errorf("Total = %v, want 4", h.Total)
	}
}

func TestLogHistogramEmpty(t *testing.T) {
	h := NewLogHistogram(10)
	if h.Density() != nil {
		t.Error("empty histogram density should be nil")
	}
	if !math.IsNaN(h.PeakX()) {
		t.Error("empty histogram PeakX should be NaN")
	}
}

func TestIntHistogram(t *testing.T) {
	h := NewIntHistogram(64)
	for _, v := range []int{40, 40, 56, 64, 70, -3} {
		h.Add(v)
	}
	if h.N != 6 {
		t.Fatalf("N = %d", h.N)
	}
	if got := h.Counts[64]; got != 2 { // 64 and clamped 70
		t.Errorf("Counts[64] = %d, want 2", got)
	}
	if got := h.Counts[0]; got != 1 { // clamped -3
		t.Errorf("Counts[0] = %d, want 1", got)
	}
	if got := h.ArgMax(); got != 40 && got != 64 {
		t.Errorf("ArgMax = %d", got)
	}
	if got := h.Fraction(40); !almost(got, 2.0/6) {
		t.Errorf("Fraction(40) = %v", got)
	}
	if got := h.MassAbove(56); !almost(got, 3.0/6) {
		t.Errorf("MassAbove(56) = %v", got)
	}
	if got := h.Fraction(200); got != 0 {
		t.Errorf("Fraction out of range = %v", got)
	}
}

func TestIntHistogramEmpty(t *testing.T) {
	h := NewIntHistogram(10)
	if h.Fraction(3) != 0 || h.MassAbove(0) != 0 {
		t.Error("empty histogram fractions should be 0")
	}
	if !math.IsNaN(h.Mean()) {
		t.Error("empty histogram mean should be NaN")
	}
}
