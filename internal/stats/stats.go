// Package stats implements the statistical machinery used throughout the
// DynamIPs analyses: empirical CDFs, quantile/box summaries, log-binned
// densities, and — centrally — the paper's "total time fraction" metric
// (§3.2.1, Eq. 1), a duration-weighted probability mass function that avoids
// over-representing hosts with short assignment durations.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Point is one (x, y) sample of a distribution curve.
type Point struct {
	X float64
	Y float64
}

// ECDF is an empirical cumulative distribution function over float64 samples.
// The zero value is an empty distribution; Add samples and call Sort (or use
// NewECDF) before querying.
type ECDF struct {
	xs     []float64
	sorted bool
}

// NewECDF builds an ECDF from the given samples. The input slice is copied.
func NewECDF(samples []float64) *ECDF {
	e := &ECDF{xs: append([]float64(nil), samples...)}
	e.Sort()
	return e
}

// Add appends one sample.
func (e *ECDF) Add(x float64) { e.xs = append(e.xs, x); e.sorted = false }

// Len returns the number of samples.
func (e *ECDF) Len() int { return len(e.xs) }

// Sort orders the samples; queries require sorted data and call it lazily
// through the exported query methods.
func (e *ECDF) Sort() {
	if !e.sorted {
		sort.Float64s(e.xs)
		e.sorted = true
	}
}

// At returns the fraction of samples <= x, in [0, 1].
func (e *ECDF) At(x float64) float64 {
	e.Sort()
	if len(e.xs) == 0 {
		return 0
	}
	i := sort.SearchFloat64s(e.xs, math.Nextafter(x, math.Inf(1)))
	return float64(i) / float64(len(e.xs))
}

// Quantile returns the p-quantile (0 <= p <= 1) using nearest-rank on the
// sorted samples. An empty distribution returns NaN.
func (e *ECDF) Quantile(p float64) float64 {
	e.Sort()
	n := len(e.xs)
	if n == 0 {
		return math.NaN()
	}
	if p <= 0 {
		return e.xs[0]
	}
	if p >= 1 {
		return e.xs[n-1]
	}
	i := int(math.Ceil(p*float64(n))) - 1
	if i < 0 {
		i = 0
	}
	if i >= n {
		i = n - 1
	}
	return e.xs[i]
}

// Median returns the 0.5 quantile.
func (e *ECDF) Median() float64 { return e.Quantile(0.5) }

// Mean returns the arithmetic mean of the samples (NaN when empty).
func (e *ECDF) Mean() float64 {
	if len(e.xs) == 0 {
		return math.NaN()
	}
	var s float64
	for _, x := range e.xs {
		s += x
	}
	return s / float64(len(e.xs))
}

// Curve returns the full step curve of the ECDF as (x, F(x)) points, one per
// distinct sample value.
func (e *ECDF) Curve() []Point {
	e.Sort()
	n := len(e.xs)
	pts := make([]Point, 0, n)
	for i := 0; i < n; {
		j := i
		for j < n && e.xs[j] == e.xs[i] {
			j++
		}
		pts = append(pts, Point{X: e.xs[i], Y: float64(j) / float64(n)})
		i = j
	}
	return pts
}

// BoxStats is a five-number summary matching the paper's Fig. 3 box plots:
// whiskers at the 5th and 95th percentiles, the inner-quartile box, and the
// median.
type BoxStats struct {
	P5     float64
	Q1     float64
	Median float64
	Q3     float64
	P95    float64
	N      int
}

// Box computes BoxStats for the distribution.
func (e *ECDF) Box() BoxStats {
	return BoxStats{
		P5:     e.Quantile(0.05),
		Q1:     e.Quantile(0.25),
		Median: e.Quantile(0.5),
		Q3:     e.Quantile(0.75),
		P95:    e.Quantile(0.95),
		N:      e.Len(),
	}
}

// BoxOfCounts computes the BoxStats of a multiset given as parallel
// (value, count) slices with values in ascending order — equivalent to
// NewECDF over the expanded multiset without materializing it, which is
// how the streaming CDN pipeline summarizes 10⁸ episode durations in a
// few hundred histogram cells. Quantiles use the same nearest-rank rule
// as ECDF.Quantile, so for any multiset the result is byte-identical to
// the in-memory path's ECDF.Box().
func BoxOfCounts(vals []float64, counts []int64) BoxStats {
	var n int64
	for _, c := range counts {
		n += c
	}
	q := func(p float64) float64 {
		if n == 0 {
			return math.NaN()
		}
		i := int64(math.Ceil(p*float64(n))) - 1
		if i < 0 {
			i = 0
		}
		if i >= n {
			i = n - 1
		}
		var cum int64
		for k, c := range counts {
			cum += c
			if i < cum {
				return vals[k]
			}
		}
		return vals[len(vals)-1]
	}
	return BoxStats{
		P5:     q(0.05),
		Q1:     q(0.25),
		Median: q(0.5),
		Q3:     q(0.75),
		P95:    q(0.95),
		N:      int(n),
	}
}

// String renders a box summary compactly.
func (b BoxStats) String() string {
	return fmt.Sprintf("n=%d p5=%.2f q1=%.2f med=%.2f q3=%.2f p95=%.2f",
		b.N, b.P5, b.Q1, b.Median, b.Q3, b.P95)
}

// TotalTimeFraction computes the paper's Eq. 1: a weighted PMF over the
// distinct duration values d, where each duration's mass is
// n(d)*d / sum(all durations). Hosts whose addresses change rarely thus
// contribute mass proportional to the *time* they spent in each assignment
// rather than the *count* of assignments.
//
// The returned points are sorted by duration and their Y values sum to 1
// (within floating-point error). An empty input returns nil.
func TotalTimeFraction(durations []float64) []Point {
	if len(durations) == 0 {
		return nil
	}
	var total float64
	byVal := make(map[float64]int, len(durations))
	for _, d := range durations {
		total += d
		byVal[d]++
	}
	if total <= 0 {
		return nil
	}
	pts := make([]Point, 0, len(byVal))
	for d, n := range byVal {
		pts = append(pts, Point{X: d, Y: float64(n) * d / total})
	}
	sort.Slice(pts, func(i, j int) bool { return pts[i].X < pts[j].X })
	return pts
}

// CumulativeTotalTimeFraction returns the running sum of TotalTimeFraction:
// the paper's "cumulative total time fraction" curves (Fig. 1). The final
// point's Y is 1 (within floating-point error).
func CumulativeTotalTimeFraction(durations []float64) []Point {
	pts := TotalTimeFraction(durations)
	var c float64
	for i := range pts {
		c += pts[i].Y
		pts[i].Y = c
	}
	return pts
}

// FractionAtOrBelow evaluates a cumulative curve at x: the largest Y whose
// X <= x, or 0 when x precedes the first point.
func FractionAtOrBelow(curve []Point, x float64) float64 {
	i := sort.Search(len(curve), func(i int) bool { return curve[i].X > x })
	if i == 0 {
		return 0
	}
	return curve[i-1].Y
}

// Mode is a detected concentration of duration mass around a period.
type Mode struct {
	Period   float64 // center of the detected mode
	Fraction float64 // total-time fraction within the tolerance window
}

// DetectPeriodicModes scans a set of candidate periods (e.g. 12 h, 24 h,
// 36 h, 48 h, 1 w, 2 w) and reports those where at least minFraction of the
// total assignment time falls within ±tol (relative) of the candidate. This
// operationalizes the paper's "well-defined modes … suggest that ISPs
// renumber addresses periodically" (§3.2): e.g. DTAG's 24 h mode.
func DetectPeriodicModes(durations []float64, candidates []float64, tol, minFraction float64) []Mode {
	if len(durations) == 0 {
		return nil
	}
	var total float64
	for _, d := range durations {
		total += d
	}
	if total <= 0 {
		return nil
	}
	var modes []Mode
	for _, p := range candidates {
		lo, hi := p*(1-tol), p*(1+tol)
		var mass float64
		for _, d := range durations {
			if d >= lo && d <= hi {
				mass += d
			}
		}
		if frac := mass / total; frac >= minFraction {
			modes = append(modes, Mode{Period: p, Fraction: frac})
		}
	}
	sort.Slice(modes, func(i, j int) bool { return modes[i].Fraction > modes[j].Fraction })
	return modes
}

// LogHistogram bins positive samples into logarithmic bins of the given
// number per decade, as used for Fig. 4's density over 10^0..10^6.
type LogHistogram struct {
	BinsPerDecade int
	Counts        map[int]float64 // bin index -> accumulated weight
	Total         float64
}

// NewLogHistogram creates a histogram with the given resolution.
func NewLogHistogram(binsPerDecade int) *LogHistogram {
	if binsPerDecade <= 0 {
		binsPerDecade = 10
	}
	return &LogHistogram{BinsPerDecade: binsPerDecade, Counts: make(map[int]float64)}
}

// Add accumulates weight w at value x (x must be > 0; non-positive x is
// ignored).
func (h *LogHistogram) Add(x, w float64) {
	if x <= 0 || w <= 0 {
		return
	}
	bin := int(math.Floor(math.Log10(x) * float64(h.BinsPerDecade)))
	h.Counts[bin] += w
	h.Total += w
}

// Density returns normalized (bin center, fraction) points sorted by X.
func (h *LogHistogram) Density() []Point {
	if h.Total <= 0 {
		return nil
	}
	pts := make([]Point, 0, len(h.Counts))
	for bin, w := range h.Counts {
		center := math.Pow(10, (float64(bin)+0.5)/float64(h.BinsPerDecade))
		pts = append(pts, Point{X: center, Y: w / h.Total})
	}
	sort.Slice(pts, func(i, j int) bool { return pts[i].X < pts[j].X })
	return pts
}

// PeakX returns the bin center holding the most mass (NaN when empty).
// Ties break toward the lowest bin so the answer is independent of map
// iteration order.
func (h *LogHistogram) PeakX() float64 {
	best, bestBin, bestW := math.NaN(), 0, -1.0
	for bin, w := range h.Counts {
		if w > bestW || (w == bestW && bin < bestBin) {
			bestW = w
			bestBin = bin
			best = math.Pow(10, (float64(bin)+0.5)/float64(h.BinsPerDecade))
		}
	}
	return best
}

// IntHistogram counts occurrences of small non-negative integer values,
// used for the CPL spectra (Fig. 5, X in 0..64) and inferred-prefix-length
// charts (Figs. 6/9).
type IntHistogram struct {
	Counts []int
	N      int
}

// NewIntHistogram creates a histogram for values in [0, max].
func NewIntHistogram(max int) *IntHistogram {
	return &IntHistogram{Counts: make([]int, max+1)}
}

// Add counts one occurrence of v; out-of-range values are clamped.
func (h *IntHistogram) Add(v int) {
	if v < 0 {
		v = 0
	}
	if v >= len(h.Counts) {
		v = len(h.Counts) - 1
	}
	h.Counts[v]++
	h.N++
}

// Fraction returns the share of samples with value v.
func (h *IntHistogram) Fraction(v int) float64 {
	if h.N == 0 || v < 0 || v >= len(h.Counts) {
		return 0
	}
	return float64(h.Counts[v]) / float64(h.N)
}

// ArgMax returns the value with the highest count (lowest index wins ties).
func (h *IntHistogram) ArgMax() int {
	best, bestC := 0, -1
	for v, c := range h.Counts {
		if c > bestC {
			best, bestC = v, c
		}
	}
	return best
}

// MassAbove returns the fraction of samples with value >= v.
func (h *IntHistogram) MassAbove(v int) float64 {
	if h.N == 0 {
		return 0
	}
	var c int
	for i := v; i >= 0 && i < len(h.Counts); i++ {
		c += h.Counts[i]
	}
	return float64(c) / float64(h.N)
}

// Mean returns the mean sample value (NaN when empty).
func (h *IntHistogram) Mean() float64 {
	if h.N == 0 {
		return math.NaN()
	}
	var s float64
	for v, c := range h.Counts {
		s += float64(v) * float64(c)
	}
	return s / float64(h.N)
}
