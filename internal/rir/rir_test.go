package rir

import (
	"net/netip"
	"testing"
)

func TestDefaultLookups(t *testing.T) {
	tab := Default()
	cases := []struct {
		addr string
		want Registry
	}{
		{"2003:40:aa00::1", RIPENCC}, // DTAG space
		{"2a02:8100::1", RIPENCC},    // RIPE /12
		{"2600:1700::1", ARIN},       // ARIN /12
		{"2001:506::1", ARIN},        // ARIN /23
		{"2400:cb00::1", APNIC},      // APNIC /12
		{"240e:1::1", APNIC},         // China Telecom
		{"2800:a4::1", LACNIC},       // LACNIC /12
		{"2c0f:f248::1", AFRINIC},    // AFRINIC /12
		{"93.184.216.34", RIPENCC},   // 80.0.0.0/4
		{"23.1.2.3", ARIN},           // Akamai space
		{"1.1.1.1", APNIC},           // APNIC 1/8
		{"200.1.2.3", LACNIC},        // LACNIC 200/7
		{"196.25.1.1", AFRINIC},      // AFRINIC 196/7
		{"41.1.2.3", AFRINIC},        // AFRINIC 41/8
		{"10.0.0.1", Unknown},        // private space not delegated
		{"fe80::1", Unknown},         // link local
		{"2001:db8::1", Unknown},     // documentation
	}
	for _, c := range cases {
		if got := tab.Of(netip.MustParseAddr(c.addr)); got != c.want {
			t.Errorf("Of(%s) = %v, want %v", c.addr, got, c.want)
		}
	}
}

func TestOfPrefix(t *testing.T) {
	tab := Default()
	p := netip.MustParsePrefix("2003:40:aa00::/64")
	if got := tab.OfPrefix(p); got != RIPENCC {
		t.Errorf("OfPrefix(%v) = %v, want RIPENCC", p, got)
	}
}

func TestMoreSpecificOverride(t *testing.T) {
	tab := Default()
	// A transferred block: more-specific wins over the covering /8.
	tab.Add(netip.MustParsePrefix("23.128.0.0/10"), RIPENCC)
	if got := tab.Of(netip.MustParseAddr("23.129.0.1")); got != RIPENCC {
		t.Errorf("override lookup = %v, want RIPENCC", got)
	}
	if got := tab.Of(netip.MustParseAddr("23.1.0.1")); got != ARIN {
		t.Errorf("non-overridden lookup = %v, want ARIN", got)
	}
}

func TestRegistryString(t *testing.T) {
	cases := map[Registry]string{
		ARIN: "ARIN", RIPENCC: "RIPENCC", APNIC: "APNIC",
		LACNIC: "LACNIC", AFRINIC: "AFRINIC", Unknown: "UNKNOWN",
		Registry(99): "UNKNOWN", Registry(-1): "UNKNOWN",
	}
	for r, want := range cases {
		if got := r.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(r), got, want)
		}
	}
}

func TestAllOrder(t *testing.T) {
	all := All()
	want := []Registry{ARIN, RIPENCC, APNIC, LACNIC, AFRINIC}
	if len(all) != len(want) {
		t.Fatalf("All() has %d entries", len(all))
	}
	for i := range want {
		if all[i] != want[i] {
			t.Errorf("All()[%d] = %v, want %v", i, all[i], want[i])
		}
	}
}

func TestLen(t *testing.T) {
	tab := Default()
	if tab.Len() != len(defaultDelegations) {
		t.Errorf("Len = %d, want %d", tab.Len(), len(defaultDelegations))
	}
}
