// Package rir maps IP addresses to the Regional Internet Registry that
// delegated them. The paper groups CDN association durations (Fig. 3) and
// trailing-zero delegation inferences (Fig. 7) by registry; this package
// provides that classification from a built-in table of the registries'
// top-level IANA allocations.
package rir

import (
	"net/netip"

	"dynamips/internal/rtrie"
)

// Registry identifies one of the five RIRs.
type Registry int

// The five regional registries plus Unknown for unclassified space.
const (
	Unknown Registry = iota
	ARIN
	RIPENCC
	APNIC
	LACNIC
	AFRINIC
)

var names = [...]string{"UNKNOWN", "ARIN", "RIPENCC", "APNIC", "LACNIC", "AFRINIC"}

// String returns the registry's canonical short name.
func (r Registry) String() string {
	if r < 0 || int(r) >= len(names) {
		return "UNKNOWN"
	}
	return names[r]
}

// All lists the five registries in the paper's Fig. 3 order.
func All() []Registry { return []Registry{ARIN, RIPENCC, APNIC, LACNIC, AFRINIC} }

// Table is an address→registry lookup table.
type Table struct {
	trie rtrie.Trie[Registry]
}

// Add registers a delegation.
func (t *Table) Add(p netip.Prefix, r Registry) { t.trie.Insert(p, r) }

// Of returns the registry responsible for a, or Unknown.
func (t *Table) Of(a netip.Addr) Registry {
	r, _, ok := t.trie.Lookup(a)
	if !ok {
		return Unknown
	}
	return r
}

// OfPrefix returns the registry responsible for a prefix's network address.
func (t *Table) OfPrefix(p netip.Prefix) Registry { return t.Of(p.Addr()) }

// Len returns the number of delegations in the table.
func (t *Table) Len() int { return t.trie.Len() }

// defaultDelegations reflects the real top-level IANA→RIR allocations that
// cover the unicast space the paper's datasets draw from. IPv4 entries are
// the /8s most prominent in each region; IPv6 entries are the registries'
// primary /12 and /23 blocks.
var defaultDelegations = []struct {
	cidr string
	reg  Registry
}{
	// IPv6 top-level RIR blocks.
	{"2600::/12", ARIN}, {"2001:400::/23", ARIN}, {"2610::/23", ARIN},
	{"2a00::/12", RIPENCC}, {"2001:600::/23", RIPENCC}, {"2003::/18", RIPENCC},
	{"2400::/12", APNIC}, {"2001:200::/23", APNIC}, {"240e::/16", APNIC},
	{"2800::/12", LACNIC}, {"2001:1200::/23", LACNIC},
	{"2c00::/12", AFRINIC}, {"2001:4200::/23", AFRINIC},
	// IPv4 /8s (representative subset).
	{"3.0.0.0/8", ARIN}, {"23.0.0.0/8", ARIN}, {"50.0.0.0/8", ARIN},
	{"63.0.0.0/8", ARIN}, {"66.0.0.0/8", ARIN}, {"68.0.0.0/8", ARIN},
	{"71.0.0.0/8", ARIN}, {"73.0.0.0/8", ARIN}, {"96.0.0.0/8", ARIN},
	{"173.0.0.0/8", ARIN}, {"184.0.0.0/8", ARIN}, {"192.0.0.0/8", ARIN},
	{"2.0.0.0/8", RIPENCC}, {"5.0.0.0/8", RIPENCC}, {"31.0.0.0/8", RIPENCC},
	{"37.0.0.0/8", RIPENCC}, {"46.0.0.0/8", RIPENCC}, {"62.0.0.0/8", RIPENCC},
	{"77.0.0.0/8", RIPENCC}, {"78.0.0.0/7", RIPENCC}, {"80.0.0.0/4", RIPENCC},
	{"109.0.0.0/8", RIPENCC}, {"176.0.0.0/8", RIPENCC}, {"178.0.0.0/8", RIPENCC},
	{"193.0.0.0/8", RIPENCC}, {"194.0.0.0/7", RIPENCC}, {"212.0.0.0/7", RIPENCC},
	{"217.0.0.0/8", RIPENCC},
	{"1.0.0.0/8", APNIC}, {"14.0.0.0/8", APNIC}, {"27.0.0.0/8", APNIC},
	{"36.0.0.0/8", APNIC}, {"39.0.0.0/8", APNIC}, {"42.0.0.0/8", APNIC},
	{"49.0.0.0/8", APNIC}, {"58.0.0.0/7", APNIC}, {"60.0.0.0/7", APNIC},
	{"101.0.0.0/8", APNIC}, {"103.0.0.0/8", APNIC}, {"110.0.0.0/7", APNIC},
	{"112.0.0.0/5", APNIC}, {"120.0.0.0/6", APNIC}, {"124.0.0.0/7", APNIC},
	{"126.0.0.0/8", APNIC}, {"202.0.0.0/7", APNIC}, {"210.0.0.0/7", APNIC},
	{"218.0.0.0/7", APNIC}, {"220.0.0.0/6", APNIC},
	{"177.0.0.0/8", LACNIC}, {"179.0.0.0/8", LACNIC}, {"181.0.0.0/8", LACNIC},
	{"186.0.0.0/7", LACNIC}, {"189.0.0.0/8", LACNIC}, {"190.0.0.0/8", LACNIC},
	{"191.0.0.0/8", LACNIC}, {"200.0.0.0/7", LACNIC},
	{"41.0.0.0/8", AFRINIC}, {"102.0.0.0/8", AFRINIC}, {"105.0.0.0/8", AFRINIC},
	{"154.0.0.0/8", AFRINIC}, {"196.0.0.0/7", AFRINIC}, {"45.192.0.0/10", AFRINIC},
}

// Default returns a fresh Table loaded with the built-in top-level
// delegations. Callers may Add more-specific overrides.
func Default() *Table {
	t := &Table{}
	for _, d := range defaultDelegations {
		t.Add(netip.MustParsePrefix(d.cidr), d.reg)
	}
	return t
}
