package cdn

import (
	"net/netip"
	"sort"

	"dynamips/internal/core"
	"dynamips/internal/netutil"
	"dynamips/internal/rir"
	"dynamips/internal/stats"
)

// Episode is one association episode: the period over which an IPv6 /64
// reported the same IPv4 /24 (§4.2). It ends when another /24 appears for
// the /64 or the /64 disappears.
type Episode struct {
	K64      uint64
	K24      uint32
	StartDay int
	EndDay   int // inclusive, last day observed
	Hits     int64
}

// Days returns the episode duration in days.
func (e Episode) Days() int { return e.EndDay - e.StartDay + 1 }

// EpisodeConfig tunes episode extraction.
type EpisodeConfig struct {
	// MaxGapDays is the longest absence after which a /64 is considered
	// gone (ending the episode at its last sighting). RUM clients are
	// not seen every day, so small gaps are bridged.
	MaxGapDays int
}

// DefaultEpisodeConfig bridges week-scale gaps.
func DefaultEpisodeConfig() EpisodeConfig { return EpisodeConfig{MaxGapDays: 7} }

// Episodes groups associations by /64 and splits them into episodes.
// The input is not modified.
func Episodes(assocs []Association, cfg EpisodeConfig) []Episode {
	if cfg.MaxGapDays <= 0 {
		cfg.MaxGapDays = 7
	}
	sorted := append([]Association(nil), assocs...)
	// Total order: a /64 can report two /24s on the same day (CGNAT
	// remaps, interleaved attachments), and sort.Slice is unstable, so
	// ordering by (K64, Day) alone would make the episode split — and the
	// hit attribution — depend on the input permutation.
	sort.Slice(sorted, func(i, j int) bool {
		a, b := sorted[i], sorted[j]
		if a.K64 != b.K64 {
			return a.K64 < b.K64
		}
		if a.Day != b.Day {
			return a.Day < b.Day
		}
		if a.K24 != b.K24 {
			return a.K24 < b.K24
		}
		return a.Hits < b.Hits
	})
	var out []Episode
	for i := 0; i < len(sorted); {
		a := sorted[i]
		ep := Episode{K64: a.K64, K24: a.K24, StartDay: int(a.Day), EndDay: int(a.Day), Hits: int64(a.Hits)}
		j := i + 1
		for ; j < len(sorted); j++ {
			b := sorted[j]
			if b.K64 != a.K64 || b.K24 != ep.K24 || int(b.Day)-ep.EndDay > cfg.MaxGapDays {
				break
			}
			if int(b.Day) > ep.EndDay {
				ep.EndDay = int(b.Day)
			}
			ep.Hits += int64(b.Hits)
		}
		out = append(out, ep)
		i = j
	}
	return out
}

// MobileLabel classifies /24s as mobile by their IPv6 connectivity degree,
// following the paper's observation that CGNAT multiplexing puts orders of
// magnitude more /64s behind a mobile /24 (§4.3). It returns the set of
// mobile /24 keys. threshold is the unique-/64 count above which a /24 is
// labeled mobile.
func MobileLabel(assocs []Association, threshold int) map[uint32]bool {
	uniq := make(map[uint32]map[uint64]struct{})
	for _, a := range assocs {
		m, ok := uniq[a.K24]
		if !ok {
			m = make(map[uint64]struct{})
			uniq[a.K24] = m
		}
		m[a.K64] = struct{}{}
	}
	out := make(map[uint32]bool, len(uniq))
	for k24, m := range uniq {
		out[k24] = len(m) > threshold
	}
	return out
}

// DurationGroups splits episode durations into the paper's populations:
// per-operator (Fig. 2), global fixed/mobile (§4.2), and per-registry
// fixed/mobile (Fig. 3).
type DurationGroups struct {
	ByOperator map[uint32]*stats.ECDF // ASN -> durations (days)
	Fixed      *stats.ECDF
	Mobile     *stats.ECDF
	ByRegistry map[rir.Registry]*regPair
}

type regPair struct {
	Fixed  *stats.ECDF
	Mobile *stats.ECDF
}

// RegistryBox returns the fixed and mobile box stats for a registry.
func (g *DurationGroups) RegistryBox(r rir.Registry) (fixed, mobile stats.BoxStats) {
	p := g.ByRegistry[r]
	if p == nil {
		return stats.BoxStats{}, stats.BoxStats{}
	}
	return p.Fixed.Box(), p.Mobile.Box()
}

// GroupDurations computes DurationGroups from episodes, using the dataset's
// BGP table for operator attribution, its RIR table for registry grouping,
// and the mobile labeling for the fixed/mobile split.
func GroupDurations(ds *Dataset, eps []Episode, mobile map[uint32]bool) *DurationGroups {
	g := &DurationGroups{
		ByOperator: make(map[uint32]*stats.ECDF),
		Fixed:      &stats.ECDF{},
		Mobile:     &stats.ECDF{},
		ByRegistry: make(map[rir.Registry]*regPair),
	}
	for _, ep := range eps {
		d := float64(ep.Days())
		p64 := netutil.AddrFrom128(ep.K64, 0)
		asn, _, ok := ds.BGP.Origin(p64)
		if ok {
			e := g.ByOperator[asn]
			if e == nil {
				e = &stats.ECDF{}
				g.ByOperator[asn] = e
			}
			e.Add(d)
		}
		isMobile := mobile[ep.K24]
		if isMobile {
			g.Mobile.Add(d)
		} else {
			g.Fixed.Add(d)
		}
		reg := ds.RIR.Of(p64)
		if reg == rir.Unknown {
			continue
		}
		p := g.ByRegistry[reg]
		if p == nil {
			p = &regPair{Fixed: &stats.ECDF{}, Mobile: &stats.ECDF{}}
			g.ByRegistry[reg] = p
		}
		if isMobile {
			p.Mobile.Add(d)
		} else {
			p.Fixed.Add(d)
		}
	}
	return g
}

// DegreeDistributions computes Fig. 4: the distribution of unique (and
// hit-weighted) /64s per /24, split mobile vs fixed. Weighted counts each
// /64 by its total hits on the /24.
type DegreeDistributions struct {
	MobileUnique   *stats.LogHistogram
	MobileWeighted *stats.LogHistogram
	FixedUnique    *stats.LogHistogram
	FixedWeighted  *stats.LogHistogram
	// Connectivity1Frac is the share of unique /64s associated with
	// exactly one /24 (the paper: 87% in mobile networks).
	Connectivity1Frac map[bool]float64 // keyed by mobile
}

// Degrees computes the Fig. 4 distributions.
func Degrees(assocs []Association, mobile map[uint32]bool) *DegreeDistributions {
	type deg struct {
		uniq map[uint64]struct{}
		hits float64
	}
	per24 := make(map[uint32]*deg)
	conn := make(map[uint64]map[uint32]struct{}) // /64 -> /24 set
	for _, a := range assocs {
		d, ok := per24[a.K24]
		if !ok {
			d = &deg{uniq: make(map[uint64]struct{})}
			per24[a.K24] = d
		}
		d.uniq[a.K64] = struct{}{}
		d.hits += float64(a.Hits)
		c, ok := conn[a.K64]
		if !ok {
			c = make(map[uint32]struct{})
			conn[a.K64] = c
		}
		c[a.K24] = struct{}{}
	}
	dd := &DegreeDistributions{
		MobileUnique:      stats.NewLogHistogram(4),
		MobileWeighted:    stats.NewLogHistogram(4),
		FixedUnique:       stats.NewLogHistogram(4),
		FixedWeighted:     stats.NewLogHistogram(4),
		Connectivity1Frac: make(map[bool]float64),
	}
	for k24, d := range per24 {
		n := float64(len(d.uniq))
		if mobile[k24] {
			dd.MobileUnique.Add(n, 1)
			dd.MobileWeighted.Add(n, d.hits)
		} else {
			dd.FixedUnique.Add(n, 1)
			dd.FixedWeighted.Add(n, d.hits)
		}
	}
	var m1, mAll, f1, fAll float64
	for k64, c := range conn {
		isMobile := false
		for k24 := range c {
			if mobile[k24] {
				isMobile = true
				break
			}
		}
		_ = k64
		if isMobile {
			mAll++
			if len(c) == 1 {
				m1++
			}
		} else {
			fAll++
			if len(c) == 1 {
				f1++
			}
		}
	}
	if mAll > 0 {
		dd.Connectivity1Frac[true] = m1 / mAll
	}
	if fAll > 0 {
		dd.Connectivity1Frac[false] = f1 / fAll
	}
	return dd
}

// TrailingZerosByRegistry computes Fig. 7: unique fixed /64s classified by
// nibble-aligned trailing-zero run, per registry. Mobile /24s' prefixes
// are excluded, matching the paper's fixed-only analysis.
func TrailingZerosByRegistry(ds *Dataset, mobile map[uint32]bool) map[rir.Registry]*core.TrailingZeroBuckets {
	seen := make(map[uint64]bool)
	perReg := make(map[rir.Registry][]netip.Prefix)
	for _, a := range ds.Assocs {
		if mobile[a.K24] || seen[a.K64] {
			continue
		}
		seen[a.K64] = true
		p64 := a.P64()
		reg := ds.RIR.Of(p64.Addr())
		if reg == rir.Unknown {
			continue
		}
		perReg[reg] = append(perReg[reg], p64)
	}
	out := make(map[rir.Registry]*core.TrailingZeroBuckets, len(perReg))
	for reg, prefixes := range perReg {
		out[reg] = core.ClassifyTrailingZeros(prefixes)
	}
	return out
}

// MobileTrailingZeroFrac returns the share of unique mobile /64s with any
// nibble-aligned trailing zeros — the paper finds "no evidence of
// consistent trailing zeroes" for mobile (§5.3).
func MobileTrailingZeroFrac(ds *Dataset, mobile map[uint32]bool) float64 {
	seen := make(map[uint64]bool)
	var tot, withZeros int
	for _, a := range ds.Assocs {
		if !mobile[a.K24] || seen[a.K64] {
			continue
		}
		seen[a.K64] = true
		tot++
		if _, ok := netutil.InferredDelegation(a.P64()); ok {
			withZeros++
		}
	}
	if tot == 0 {
		return 0
	}
	return float64(withZeros) / float64(tot)
}
