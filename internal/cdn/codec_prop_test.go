package cdn

import (
	"bytes"
	"fmt"
	"math/rand"
	"reflect"
	"testing"
)

// randAssocs draws a random association list: any 24-bit /24 key, any
// 64-bit /64 key (P64 fills only the high half of the address, so every
// value renders as a valid non-v4-mapped /64), any day and hit count.
func randAssocs(rng *rand.Rand, n int) []Association {
	out := make([]Association, n)
	for i := range out {
		out[i] = Association{
			K24:  rng.Uint32() & 0xFFFFFF,
			K64:  rng.Uint64(),
			Day:  uint16(rng.Intn(1 << 16)),
			Hits: rng.Uint32(),
		}
	}
	return out
}

// TestCSVRoundTripProperty checks encode→decode identity over seeded
// random association lists, including the empty list.
func TestCSVRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for iter := 0; iter < 200; iter++ {
		in := randAssocs(rng, rng.Intn(50))
		var buf bytes.Buffer
		if err := WriteCSV(&buf, in); err != nil {
			t.Fatalf("iter %d: WriteCSV: %v", iter, err)
		}
		got, err := ReadCSV(&buf)
		if err != nil {
			t.Fatalf("iter %d: ReadCSV: %v", iter, err)
		}
		if len(in) == 0 && len(got) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, in) {
			t.Fatalf("iter %d: round trip diverged:\nin:  %v\ngot: %v", iter, in, got)
		}
	}
}

// TestAppendCSVRowMatchesNetip pins the append-based formatter to the
// reference netip rendering over random keys: every /24 must print as
// Prefix.String's dotted decimal and every /64 as its RFC 5952 canonical
// compression, or downstream byte-identity guarantees break.
func TestAppendCSVRowMatchesNetip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	cases := randAssocs(rng, 5000)
	// Force the interesting /64 shapes: zero key, single hextet, zero
	// hextets in the middle, and high bit patterns.
	cases = append(cases,
		Association{K64: 0},
		Association{K64: 1},
		Association{K64: 0x0001_0000_0000_0000},
		Association{K64: 0x2001_0000_0000_0005},
		Association{K64: 0x2001_0db8_0000_0000, K24: 0xFFFFFF},
		Association{K64: 0xffff_ffff_ffff_ffff, Day: 65535, Hits: 1<<32 - 1},
	)
	for _, a := range cases {
		want := fmt.Sprintf("%s,%s,%d,%d\n", a.P24(), a.P64(), a.Day, a.Hits)
		got := string(AppendCSVRow(nil, a))
		if got != want {
			t.Fatalf("AppendCSVRow(%+v) = %q, want %q", a, got, want)
		}
	}
}

// TestCSVTruncatedPrefixNoPanic feeds ReadCSV every truncated prefix of a
// valid encoding: decoding must never panic, and when it succeeds, every
// record except possibly the last must be a prefix of the original list.
// (The final record may legitimately differ: a line cut mid-number, like
// hits 12345 truncated to 123, still parses — the CSV format carries no
// per-record checksum, unlike the checkpoint journal.)
func TestCSVTruncatedPrefixNoPanic(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	in := randAssocs(rng, 25)
	var buf bytes.Buffer
	if err := WriteCSV(&buf, in); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	enc := buf.Bytes()
	for cut := 0; cut <= len(enc); cut++ {
		got, err := ReadCSV(bytes.NewReader(enc[:cut]))
		if err != nil {
			continue
		}
		if len(got) > len(in) {
			t.Fatalf("cut %d: decoded %d assocs from a %d-assoc input", cut, len(got), len(in))
		}
		for i := 0; i < len(got)-1; i++ {
			if got[i] != in[i] {
				t.Fatalf("cut %d: intact record %d diverged: got %v, want %v", cut, i, got[i], in[i])
			}
		}
	}
}

// TestCSVCorruptedByteNoPanic flips one byte at a time through the
// encoding: ReadCSV must return gracefully (data or error), never panic.
func TestCSVCorruptedByteNoPanic(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	in := randAssocs(rng, 10)
	var buf bytes.Buffer
	if err := WriteCSV(&buf, in); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	enc := buf.Bytes()
	for pos := 0; pos < len(enc); pos++ {
		corrupt := append([]byte(nil), enc...)
		corrupt[pos] ^= 0x20
		ReadCSV(bytes.NewReader(corrupt)) //nolint:errcheck // only panics matter here
	}
}
