package cdn

import (
	"fmt"
	"math"
	"math/rand"
	"net/netip"

	"dynamips/internal/bgp"
	"dynamips/internal/cgnat"
	"dynamips/internal/checkpoint"
	"dynamips/internal/netutil"
	"dynamips/internal/obs"
	"dynamips/internal/rir"
)

// GenConfig shapes a synthetic RUM collection run.
type GenConfig struct {
	// Days is the collection window (the paper's is ~150 days).
	Days int
	// Scale multiplies every operator's subscriber count (1.0 ≈ tens of
	// thousands of subscribers; the paper's population is documented as
	// the full-scale equivalent in DESIGN.md).
	Scale float64
	// Seed makes the run reproducible.
	Seed int64
	// ActivityProb is the per-day probability a subscriber generates
	// RUM transactions (browsing clients are not seen every day).
	ActivityProb float64
	// MismatchFrac is the fraction of raw associations whose IPv4 and
	// IPv6 come from different ASes (clients switching networks between
	// connections, §4.1); the filter must remove them.
	MismatchFrac float64
	// Operators overrides the built-in operator set when non-nil.
	Operators []Operator
	// Workers bounds the per-operator generation fan-out; <= 0 uses one
	// worker per CPU. Every operator draws from its own seed-derived RNG
	// stream and the streams are merged in operator order, so the worker
	// count never changes the generated dataset.
	Workers int
	// Checkpoint, when non-nil, journals each operator's generated chunk
	// under the "cdn" stage so an interrupted run resumes without
	// regenerating completed operators. The caller owns manifest keying:
	// the journal is only valid for an identical (Seed, Days, Scale, ...)
	// configuration.
	Checkpoint *checkpoint.Run
	// Obs, when non-nil, receives the generation stage's span (one
	// virtual tick per operator) and the raw/filtered/mismatch counters.
	// It never changes the generated dataset.
	Obs *obs.Observer
}

// DefaultGenConfig returns the experiments' configuration.
func DefaultGenConfig(seed int64) GenConfig {
	return GenConfig{Days: 150, Scale: 1, Seed: seed, ActivityProb: 0.75, MismatchFrac: 0.01}
}

// Normalized returns the config with the legacy soft defaults applied: a
// non-positive Scale becomes 1 and an out-of-range ActivityProb becomes
// 0.75. Both paths (Generate and the streaming pipeline) normalize before
// validating, so they agree on the effective configuration.
func (cfg GenConfig) Normalized() GenConfig {
	if cfg.Scale <= 0 {
		cfg.Scale = 1
	}
	if cfg.ActivityProb <= 0 || cfg.ActivityProb > 1 {
		cfg.ActivityProb = 0.75
	}
	return cfg
}

// OperatorSet returns the effective operator list: the override when set,
// the built-in ground-truth set otherwise.
func (cfg GenConfig) OperatorSet() []Operator {
	if cfg.Operators != nil {
		return cfg.Operators
	}
	return Operators()
}

// Validate checks the (normalized) configuration up front, so a
// misconfigured run fails fast with a config error instead of erroring
// mid-generate deep inside pick24 or the CGNAT pool loop. Generate and
// the streaming pipeline both call it before any work starts.
func (cfg GenConfig) Validate() error {
	if cfg.Days <= 0 {
		return fmt.Errorf("cdn: non-positive window")
	}
	if cfg.Days > 1<<16 {
		return fmt.Errorf("cdn: %d-day window overflows the tuple's uint16 day", cfg.Days)
	}
	if math.IsNaN(cfg.Scale) || math.IsInf(cfg.Scale, 0) || cfg.Scale <= 0 {
		return fmt.Errorf("cdn: scale %v is not a positive finite factor", cfg.Scale)
	}
	if math.IsNaN(cfg.MismatchFrac) || cfg.MismatchFrac < 0 || cfg.MismatchFrac > 1 {
		return fmt.Errorf("cdn: mismatch fraction %v outside [0, 1]", cfg.MismatchFrac)
	}
	for i, op := range cfg.OperatorSet() {
		if err := validateOperator(op); err != nil {
			return fmt.Errorf("cdn: operator %d (%s): %w", i, op.Name, err)
		}
	}
	return nil
}

// validateOperator rejects operator models that would make generation
// fail or hang mid-run: unusable address pools, division by zero in the
// /24 demand, or negative durations that would walk the day cursor
// backwards.
func validateOperator(op Operator) error {
	switch {
	case !op.BGP4.IsValid() || !op.BGP4.Addr().Unmap().Is4():
		return fmt.Errorf("BGP4 %v is not an IPv4 prefix", op.BGP4)
	case op.BGP4.Bits() > 24:
		return fmt.Errorf("BGP4 %v is longer than the /24 aggregation granularity", op.BGP4)
	case !op.BGP6.IsValid() || !op.BGP6.Addr().Is6() || op.BGP6.Addr().Unmap().Is4():
		return fmt.Errorf("BGP6 %v is not an IPv6 prefix", op.BGP6)
	case op.BGP6.Bits() > 64:
		return fmt.Errorf("BGP6 %v is longer than the /64 aggregation granularity", op.BGP6)
	case op.UsersPer24 <= 0:
		return fmt.Errorf("UsersPer24 %d must be positive", op.UsersPer24)
	case op.Subscribers < 0:
		return fmt.Errorf("negative subscriber count %d", op.Subscribers)
	case math.IsNaN(op.AssocMeanDays) || op.AssocMeanDays < 0:
		return fmt.Errorf("negative association mean %v", op.AssocMeanDays)
	case op.DelegatedLen < 0 || op.DelegatedLen > 64:
		return fmt.Errorf("delegated length /%d outside [0, 64]", op.DelegatedLen)
	}
	return nil
}

// Env is the generation environment shared by the in-memory and streaming
// paths: the operator set with its routing/registry tables and the mobile
// ground truth. The ASN-mismatch pre-filter (Keep) lives here so both
// paths drop exactly the same associations.
type Env struct {
	Ops         []Operator
	BGP         *bgp.Table
	RIR         *rir.Table
	TruthMobile map[uint32]bool
}

// NewEnv builds the environment for an operator set.
func NewEnv(ops []Operator) *Env {
	e := &Env{
		Ops:         ops,
		BGP:         &bgp.Table{},
		RIR:         rir.Default(),
		TruthMobile: make(map[uint32]bool),
	}
	for _, op := range ops {
		e.BGP.Announce(op.BGP4, op.ASN)
		e.BGP.Announce(op.BGP6, op.ASN)
		e.BGP.SetName(op.ASN, op.Name)
		e.TruthMobile[op.ASN] = op.Mobile
	}
	return e
}

// Keep reports whether the association survives the paper's
// pre-processing: associations whose IPv4 and IPv6 ASNs disagree are
// discarded (§4.1).
func (e *Env) Keep(a Association) bool {
	asn4, _, ok4 := e.BGP.Origin(a.P24().Addr())
	asn6, _, ok6 := e.BGP.Origin(a.P64().Addr())
	return ok4 && ok6 && asn4 == asn6
}

// Dataset is a generated and filtered association collection.
type Dataset struct {
	Assocs []Association
	// RawCount counts associations before the ASN-mismatch filter;
	// Mismatches counts what the filter removed.
	RawCount   int
	Mismatches int
	Days       int
	Operators  []Operator
	BGP        *bgp.Table
	RIR        *rir.Table
	// TruthMobile maps each operator ASN to its mobile ground truth.
	TruthMobile map[uint32]bool
}

// Generate synthesizes the RUM dataset: per-subscriber association
// episodes sampled daily, aggregated to (/24, /64, day) tuples, then run
// through the ASN-mismatch filter exactly as the paper's pipeline does.
func Generate(cfg GenConfig) (*Dataset, error) {
	cfg = cfg.Normalized()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	ops := cfg.OperatorSet()
	env := NewEnv(ops)
	ds := &Dataset{
		Days:        cfg.Days,
		Operators:   ops,
		BGP:         env.BGP,
		RIR:         env.RIR,
		TruthMobile: env.TruthMobile,
	}
	// One seed-derived RNG stream per operator: each operator's draw
	// sequence depends only on (Seed, operator index), never on how the
	// other operators are scheduled. Completed chunks are journaled in
	// operator order when a checkpoint is attached.
	genSpan := cfg.Obs.StartSpan("cdn/generate")
	chunks, err := checkpoint.Stage(cfg.Checkpoint, "cdn", len(ops), cfg.Workers,
		func(oi int) ([]Association, error) {
			rng := rand.New(rand.NewSource(operatorSeed(cfg.Seed, oi)))
			return generateOperator(ops[oi], ops, oi, cfg, rng)
		},
		checkpoint.GobEncode[[]Association], checkpoint.GobDecode[[]Association])
	if err != nil {
		return nil, err
	}
	cfg.Obs.Advance(int64(len(ops)))
	genSpan.End()
	var raw []Association
	for _, c := range chunks {
		raw = append(raw, c...)
	}
	ds.RawCount = len(raw)
	// The paper's pre-processing: discard associations whose IPv4 and
	// IPv6 ASNs disagree (§4.1).
	ds.Assocs = raw[:0]
	for _, a := range raw {
		if !env.Keep(a) {
			ds.Mismatches++
			continue
		}
		ds.Assocs = append(ds.Assocs, a)
	}
	cfg.Obs.Counter("cdn_assocs_raw").Add(int64(ds.RawCount))
	cfg.Obs.Counter("cdn_assocs_filtered").Add(int64(len(ds.Assocs)))
	cfg.Obs.Counter("cdn_mismatches_dropped").Add(int64(ds.Mismatches))
	return ds, nil
}

// sub24Count returns the operator's /24 pool size: the scaled subscriber
// demand, clamped to what the BGP4 aggregate can actually carve
// (sub24Cap). Saturating instead of overflowing means a high -scale run
// degrades to a fully multiplexed pool rather than failing mid-generate
// in pick24 or the CGNAT pool loop.
func sub24Count(op Operator, scale float64) uint32 {
	cap24 := sub24Cap(op)
	subsF := float64(op.Subscribers) * scale
	if subsF >= 1<<62 {
		// The demand dwarfs any carvable pool (and would overflow the
		// int conversion below).
		return cap24
	}
	n := uint64(int(subsF)/op.UsersPer24) + 1
	if n >= uint64(cap24) {
		return cap24
	}
	return uint32(n)
}

// sub24Cap returns the number of /24s carvable from the operator's IPv4
// aggregate: 2^(24−Bits). Validate guarantees Bits ≤ 24.
func sub24Cap(op Operator) uint32 {
	return 1 << uint(24-op.BGP4.Bits())
}

// pick24 returns the /24 key for a subscriber's current attachment: a
// draw from the operator's /24 pool. Fixed-line IPv4 changes usually land
// in a different /24 (Table 2's Diff /24 column), and CGNAT remaps freely,
// so both populations draw per association episode.
func pick24(op Operator, n24 uint32, rng *rand.Rand) (uint32, error) {
	idx := uint32(rng.Intn(int(n24)))
	p, err := netutil.SubPrefix(op.BGP4, 24, uint64(idx))
	if err != nil {
		return 0, fmt.Errorf("cdn: carving /24 for %s: %w", op.Name, err)
	}
	return netutil.U32(p.Addr()) >> 8, nil
}

// new64 draws a fresh /64 for a subscriber, honoring the operator's
// delegation structure: with probability ZeroFrac the bits below the
// delegated length are zero (a zeroing CPE), otherwise they are random
// (scrambling CPEs or direct /64 assignment).
func new64(op Operator, rng *rand.Rand) uint64 {
	span := op.BGP6.Bits() // bits fixed by the aggregate
	hi, _ := netutil.U128(op.BGP6.Addr())
	random := rng.Uint64()
	// Fill bits below the aggregate with randomness, then zero the
	// delegation's host-side bits when the CPE zeroes them.
	mask := ^uint64(0) >> uint(span)
	hi |= random & mask
	if op.DelegatedLen < 64 && rng.Float64() < op.ZeroFrac {
		hi &^= 1<<uint(64-op.DelegatedLen) - 1
	}
	return hi
}

// operatorSeed derives operator oi's RNG stream from the run seed. The
// golden-ratio multiplier spreads consecutive indices across the seed
// space so neighboring operators never share a lagged sequence.
func operatorSeed(seed int64, oi int) int64 {
	const gamma = uint64(0x9E3779B97F4A7C15) // 2^64 / φ, as in SplitMix64
	return seed ^ int64((uint64(oi)+1)*gamma)
}

// generateOperator materializes one operator's raw chunk — the in-memory
// unit Generate journals per operator.
func generateOperator(op Operator, all []Operator, oi int, cfg GenConfig, rng *rand.Rand) ([]Association, error) {
	var out []Association
	err := emitOperator(op, all, oi, cfg, rng, func(a Association) error {
		out = append(out, a)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// EmitOperator streams operator oi's raw associations to emit in
// generation order, drawing from the operator's seed-derived RNG stream.
// It is the streaming pipeline's entry point: the draw sequence (and so
// the emitted tuples) is identical to what Generate journals for the same
// normalized configuration, without ever materializing the chunk. The
// caller must pass a Normalized and Validated config.
func EmitOperator(oi int, cfg GenConfig, emit func(Association) error) error {
	ops := cfg.OperatorSet()
	rng := rand.New(rand.NewSource(operatorSeed(cfg.Seed, oi)))
	return emitOperator(ops[oi], ops, oi, cfg, rng, emit)
}

func emitOperator(op Operator, all []Operator, oi int, cfg GenConfig, rng *rand.Rand, emit func(Association) error) error {
	subs := int(float64(op.Subscribers) * cfg.Scale)
	if subs <= 0 {
		subs = 1
	}
	n24 := sub24Count(op, cfg.Scale)
	activity := op.Activity
	if activity <= 0 {
		activity = cfg.ActivityProb
	}
	// Mobile subscribers sit behind a CGNAT gateway (§2.1): the gateway
	// binds each one to a public address via deterministic port blocks,
	// fixing the /24 of its first association; later remaps move it
	// across the gateway's addresses.
	var gw *cgnat.Gateway
	if op.Mobile {
		var public []netip.Prefix
		for i := uint32(0); i < n24; i++ {
			p, err := netutil.SubPrefix(op.BGP4, 24, uint64(i))
			if err != nil {
				return fmt.Errorf("cdn: cgnat pool for %s: %w", op.Name, err)
			}
			public = append(public, p)
		}
		gw = cgnat.NewGateway(cgnat.DefaultConfig(public...))
	}
	for sub := 0; sub < subs; sub++ {
		day := 0
		var k64 uint64
		haveV6 := false
		firstEpisode := true
		for day < cfg.Days {
			// One association episode: a (/24, /64) pair holding for
			// the drawn duration.
			var durDays int
			if op.StableFrac > 0 && rng.Float64() < op.StableFrac {
				durDays = cfg.Days
			} else {
				durDays = 1 + int(rng.ExpFloat64()*op.AssocMeanDays)
			}
			end := min(day+durDays, cfg.Days)
			var k24 uint32
			if gw != nil && firstEpisode {
				b, err := gw.Bind(fmt.Sprintf("%s-%d", op.Name, sub))
				if err != nil {
					return fmt.Errorf("cdn: cgnat bind for %s: %w", op.Name, err)
				}
				k24 = netutil.U32(b.Public) >> 8
			} else {
				var err error
				k24, err = pick24(op, n24, rng)
				if err != nil {
					return err
				}
			}
			firstEpisode = false
			if !haveV6 || rng.Float64() >= op.KeepV6Frac {
				k64 = new64(op, rng)
				haveV6 = true
			}
			hits := uint32(1 + rng.Intn(40))
			for d := day; d < end; d++ {
				if rng.Float64() >= activity {
					continue
				}
				a := Association{K24: k24, K64: k64, Day: uint16(d), Hits: hits}
				if cfg.MismatchFrac > 0 && rng.Float64() < cfg.MismatchFrac && len(all) > 1 {
					// The client reported over another operator's IPv4
					// (e.g. phone on WiFi vs cellular): corrupt the /24.
					other := all[(oi+1+rng.Intn(len(all)-1))%len(all)]
					ok24, err := pick24(other, sub24Count(other, cfg.Scale), rng)
					if err != nil {
						return err
					}
					a.K24 = ok24
				}
				if err := emit(a); err != nil {
					return err
				}
			}
			day = end
		}
	}
	return nil
}
