package cdn

import (
	"fmt"
	"math/rand"
	"net/netip"

	"dynamips/internal/bgp"
	"dynamips/internal/cgnat"
	"dynamips/internal/checkpoint"
	"dynamips/internal/netutil"
	"dynamips/internal/obs"
	"dynamips/internal/rir"
)

// GenConfig shapes a synthetic RUM collection run.
type GenConfig struct {
	// Days is the collection window (the paper's is ~150 days).
	Days int
	// Scale multiplies every operator's subscriber count (1.0 ≈ tens of
	// thousands of subscribers; the paper's population is documented as
	// the full-scale equivalent in DESIGN.md).
	Scale float64
	// Seed makes the run reproducible.
	Seed int64
	// ActivityProb is the per-day probability a subscriber generates
	// RUM transactions (browsing clients are not seen every day).
	ActivityProb float64
	// MismatchFrac is the fraction of raw associations whose IPv4 and
	// IPv6 come from different ASes (clients switching networks between
	// connections, §4.1); the filter must remove them.
	MismatchFrac float64
	// Operators overrides the built-in operator set when non-nil.
	Operators []Operator
	// Workers bounds the per-operator generation fan-out; <= 0 uses one
	// worker per CPU. Every operator draws from its own seed-derived RNG
	// stream and the streams are merged in operator order, so the worker
	// count never changes the generated dataset.
	Workers int
	// Checkpoint, when non-nil, journals each operator's generated chunk
	// under the "cdn" stage so an interrupted run resumes without
	// regenerating completed operators. The caller owns manifest keying:
	// the journal is only valid for an identical (Seed, Days, Scale, ...)
	// configuration.
	Checkpoint *checkpoint.Run
	// Obs, when non-nil, receives the generation stage's span (one
	// virtual tick per operator) and the raw/filtered/mismatch counters.
	// It never changes the generated dataset.
	Obs *obs.Observer
}

// DefaultGenConfig returns the experiments' configuration.
func DefaultGenConfig(seed int64) GenConfig {
	return GenConfig{Days: 150, Scale: 1, Seed: seed, ActivityProb: 0.75, MismatchFrac: 0.01}
}

// Dataset is a generated and filtered association collection.
type Dataset struct {
	Assocs []Association
	// RawCount counts associations before the ASN-mismatch filter;
	// Mismatches counts what the filter removed.
	RawCount   int
	Mismatches int
	Days       int
	Operators  []Operator
	BGP        *bgp.Table
	RIR        *rir.Table
	// TruthMobile maps each operator ASN to its mobile ground truth.
	TruthMobile map[uint32]bool
}

// Generate synthesizes the RUM dataset: per-subscriber association
// episodes sampled daily, aggregated to (/24, /64, day) tuples, then run
// through the ASN-mismatch filter exactly as the paper's pipeline does.
func Generate(cfg GenConfig) (*Dataset, error) {
	if cfg.Days <= 0 {
		return nil, fmt.Errorf("cdn: non-positive window")
	}
	if cfg.Scale <= 0 {
		cfg.Scale = 1
	}
	if cfg.ActivityProb <= 0 || cfg.ActivityProb > 1 {
		cfg.ActivityProb = 0.75
	}
	ops := cfg.Operators
	if ops == nil {
		ops = Operators()
	}
	ds := &Dataset{
		Days:        cfg.Days,
		Operators:   ops,
		BGP:         &bgp.Table{},
		RIR:         rir.Default(),
		TruthMobile: make(map[uint32]bool),
	}
	for _, op := range ops {
		ds.BGP.Announce(op.BGP4, op.ASN)
		ds.BGP.Announce(op.BGP6, op.ASN)
		ds.BGP.SetName(op.ASN, op.Name)
		ds.TruthMobile[op.ASN] = op.Mobile
	}
	// One seed-derived RNG stream per operator: each operator's draw
	// sequence depends only on (Seed, operator index), never on how the
	// other operators are scheduled. Completed chunks are journaled in
	// operator order when a checkpoint is attached.
	genSpan := cfg.Obs.StartSpan("cdn/generate")
	chunks, err := checkpoint.Stage(cfg.Checkpoint, "cdn", len(ops), cfg.Workers,
		func(oi int) ([]Association, error) {
			rng := rand.New(rand.NewSource(operatorSeed(cfg.Seed, oi)))
			return generateOperator(ops[oi], ops, oi, cfg, rng)
		},
		checkpoint.GobEncode[[]Association], checkpoint.GobDecode[[]Association])
	if err != nil {
		return nil, err
	}
	cfg.Obs.Advance(int64(len(ops)))
	genSpan.End()
	var raw []Association
	for _, c := range chunks {
		raw = append(raw, c...)
	}
	ds.RawCount = len(raw)
	// The paper's pre-processing: discard associations whose IPv4 and
	// IPv6 ASNs disagree (§4.1).
	ds.Assocs = raw[:0]
	for _, a := range raw {
		asn4, _, ok4 := ds.BGP.Origin(a.P24().Addr())
		asn6, _, ok6 := ds.BGP.Origin(a.P64().Addr())
		if !ok4 || !ok6 || asn4 != asn6 {
			ds.Mismatches++
			continue
		}
		ds.Assocs = append(ds.Assocs, a)
	}
	cfg.Obs.Counter("cdn_assocs_raw").Add(int64(ds.RawCount))
	cfg.Obs.Counter("cdn_assocs_filtered").Add(int64(len(ds.Assocs)))
	cfg.Obs.Counter("cdn_mismatches_dropped").Add(int64(ds.Mismatches))
	return ds, nil
}

// sub24Count returns the operator's /24 pool size.
func sub24Count(op Operator, scale float64) uint32 {
	subs := int(float64(op.Subscribers) * scale)
	n := uint32(subs/op.UsersPer24) + 1
	return n
}

// pick24 returns the /24 key for a subscriber's current attachment: a
// draw from the operator's /24 pool. Fixed-line IPv4 changes usually land
// in a different /24 (Table 2's Diff /24 column), and CGNAT remaps freely,
// so both populations draw per association episode.
func pick24(op Operator, n24 uint32, rng *rand.Rand) (uint32, error) {
	idx := uint32(rng.Intn(int(n24)))
	p, err := netutil.SubPrefix(op.BGP4, 24, uint64(idx))
	if err != nil {
		return 0, fmt.Errorf("cdn: carving /24 for %s: %w", op.Name, err)
	}
	return netutil.U32(p.Addr()) >> 8, nil
}

// new64 draws a fresh /64 for a subscriber, honoring the operator's
// delegation structure: with probability ZeroFrac the bits below the
// delegated length are zero (a zeroing CPE), otherwise they are random
// (scrambling CPEs or direct /64 assignment).
func new64(op Operator, rng *rand.Rand) uint64 {
	span := op.BGP6.Bits() // bits fixed by the aggregate
	hi, _ := netutil.U128(op.BGP6.Addr())
	random := rng.Uint64()
	// Fill bits below the aggregate with randomness, then zero the
	// delegation's host-side bits when the CPE zeroes them.
	mask := ^uint64(0) >> uint(span)
	hi |= random & mask
	if op.DelegatedLen < 64 && rng.Float64() < op.ZeroFrac {
		hi &^= 1<<uint(64-op.DelegatedLen) - 1
	}
	return hi
}

// operatorSeed derives operator oi's RNG stream from the run seed. The
// golden-ratio multiplier spreads consecutive indices across the seed
// space so neighboring operators never share a lagged sequence.
func operatorSeed(seed int64, oi int) int64 {
	const gamma = uint64(0x9E3779B97F4A7C15) // 2^64 / φ, as in SplitMix64
	return seed ^ int64((uint64(oi)+1)*gamma)
}

func generateOperator(op Operator, all []Operator, oi int, cfg GenConfig, rng *rand.Rand) ([]Association, error) {
	subs := int(float64(op.Subscribers) * cfg.Scale)
	if subs <= 0 {
		subs = 1
	}
	n24 := sub24Count(op, cfg.Scale)
	activity := op.Activity
	if activity <= 0 {
		activity = cfg.ActivityProb
	}
	// Mobile subscribers sit behind a CGNAT gateway (§2.1): the gateway
	// binds each one to a public address via deterministic port blocks,
	// fixing the /24 of its first association; later remaps move it
	// across the gateway's addresses.
	var gw *cgnat.Gateway
	if op.Mobile {
		var public []netip.Prefix
		for i := uint32(0); i < n24; i++ {
			p, err := netutil.SubPrefix(op.BGP4, 24, uint64(i))
			if err != nil {
				return nil, fmt.Errorf("cdn: cgnat pool for %s: %w", op.Name, err)
			}
			public = append(public, p)
		}
		gw = cgnat.NewGateway(cgnat.DefaultConfig(public...))
	}
	var out []Association
	for sub := 0; sub < subs; sub++ {
		day := 0
		var k64 uint64
		haveV6 := false
		firstEpisode := true
		for day < cfg.Days {
			// One association episode: a (/24, /64) pair holding for
			// the drawn duration.
			var durDays int
			if op.StableFrac > 0 && rng.Float64() < op.StableFrac {
				durDays = cfg.Days
			} else {
				durDays = 1 + int(rng.ExpFloat64()*op.AssocMeanDays)
			}
			end := min(day+durDays, cfg.Days)
			var k24 uint32
			if gw != nil && firstEpisode {
				b, err := gw.Bind(fmt.Sprintf("%s-%d", op.Name, sub))
				if err != nil {
					return nil, fmt.Errorf("cdn: cgnat bind for %s: %w", op.Name, err)
				}
				k24 = netutil.U32(b.Public) >> 8
			} else {
				var err error
				k24, err = pick24(op, n24, rng)
				if err != nil {
					return nil, err
				}
			}
			firstEpisode = false
			if !haveV6 || rng.Float64() >= op.KeepV6Frac {
				k64 = new64(op, rng)
				haveV6 = true
			}
			hits := uint32(1 + rng.Intn(40))
			for d := day; d < end; d++ {
				if rng.Float64() >= activity {
					continue
				}
				a := Association{K24: k24, K64: k64, Day: uint16(d), Hits: hits}
				if cfg.MismatchFrac > 0 && rng.Float64() < cfg.MismatchFrac && len(all) > 1 {
					// The client reported over another operator's IPv4
					// (e.g. phone on WiFi vs cellular): corrupt the /24.
					other := all[(oi+1+rng.Intn(len(all)-1))%len(all)]
					ok24, err := pick24(other, sub24Count(other, cfg.Scale), rng)
					if err != nil {
						return nil, err
					}
					a.K24 = ok24
				}
				out = append(out, a)
			}
			day = end
		}
	}
	return out, nil
}
