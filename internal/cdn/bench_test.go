package cdn

import (
	"sort"
	"testing"
)

func benchAssocs(b *testing.B) []Association {
	b.Helper()
	cfg := DefaultGenConfig(9)
	cfg.Scale = 0.1
	ds, err := Generate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	return ds.Assocs
}

// BenchmarkDegreesMapJoin measures the production join (hash maps keyed by
// /24 and /64).
func BenchmarkDegreesMapJoin(b *testing.B) {
	assocs := benchAssocs(b)
	mobile := MobileLabel(assocs, 350)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Degrees(assocs, mobile)
	}
}

// BenchmarkDegreesSortMerge is the ablation baseline called out in
// DESIGN.md: the same unique-/64-per-/24 computation done by sorting the
// association list and merging runs instead of hashing.
func BenchmarkDegreesSortMerge(b *testing.B) {
	assocs := benchAssocs(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sorted := append([]Association(nil), assocs...)
		sort.Slice(sorted, func(x, y int) bool {
			if sorted[x].K24 != sorted[y].K24 {
				return sorted[x].K24 < sorted[y].K24
			}
			return sorted[x].K64 < sorted[y].K64
		})
		var (
			uniq  int
			total int
		)
		for j := 0; j < len(sorted); j++ {
			if j == 0 || sorted[j].K24 != sorted[j-1].K24 || sorted[j].K64 != sorted[j-1].K64 {
				uniq++
			}
			if j == len(sorted)-1 || sorted[j].K24 != sorted[j+1].K24 {
				total += uniq
				uniq = 0
			}
		}
		if total == 0 {
			b.Fatal("no degrees")
		}
	}
}

func BenchmarkMobileLabel(b *testing.B) {
	assocs := benchAssocs(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MobileLabel(assocs, 350)
	}
}
