package cdn

import (
	"math"
	"math/rand"
	"net/netip"
	"reflect"
	"strings"
	"testing"

	"dynamips/internal/rir"
)

// testOp is a small, valid operator the validation and sweep tests mutate.
func testOp() Operator {
	return Operator{
		Name: "tiny", ASN: 65000, Registry: rir.RIPENCC,
		BGP4: netip.MustParsePrefix("192.0.2.0/24"),
		BGP6: netip.MustParsePrefix("2001:db8::/32"),
		Subscribers: 50, UsersPer24: 10, AssocMeanDays: 5, DelegatedLen: 60,
	}
}

func TestValidateErrors(t *testing.T) {
	base := DefaultGenConfig(1)
	cases := []struct {
		name string
		mut  func(*GenConfig)
		want string
	}{
		{"zero days", func(c *GenConfig) { c.Days = 0 }, "non-positive window"},
		{"day overflow", func(c *GenConfig) { c.Days = 1<<16 + 1 }, "uint16 day"},
		{"nan scale", func(c *GenConfig) { c.Scale = math.NaN() }, "not a positive finite"},
		{"inf scale", func(c *GenConfig) { c.Scale = math.Inf(1) }, "not a positive finite"},
		{"mismatch frac", func(c *GenConfig) { c.MismatchFrac = 1.5 }, "outside [0, 1]"},
		{"v6 as BGP4", func(c *GenConfig) {
			op := testOp()
			op.BGP4 = netip.MustParsePrefix("2001:db8::/32")
			c.Operators = []Operator{op}
		}, "not an IPv4 prefix"},
		{"BGP4 too long", func(c *GenConfig) {
			op := testOp()
			op.BGP4 = netip.MustParsePrefix("192.0.2.0/25")
			c.Operators = []Operator{op}
		}, "longer than the /24"},
		{"v4 as BGP6", func(c *GenConfig) {
			op := testOp()
			op.BGP6 = netip.MustParsePrefix("192.0.2.0/24")
			c.Operators = []Operator{op}
		}, "not an IPv6 prefix"},
		{"BGP6 too long", func(c *GenConfig) {
			op := testOp()
			op.BGP6 = netip.MustParsePrefix("2001:db8::/72")
			c.Operators = []Operator{op}
		}, "longer than the /64"},
		{"zero UsersPer24", func(c *GenConfig) {
			op := testOp()
			op.UsersPer24 = 0
			c.Operators = []Operator{op}
		}, "UsersPer24"},
		{"negative subscribers", func(c *GenConfig) {
			op := testOp()
			op.Subscribers = -1
			c.Operators = []Operator{op}
		}, "negative subscriber"},
		{"negative assoc mean", func(c *GenConfig) {
			op := testOp()
			op.AssocMeanDays = -2
			c.Operators = []Operator{op}
		}, "negative association mean"},
		{"delegated length", func(c *GenConfig) {
			op := testOp()
			op.DelegatedLen = 65
			c.Operators = []Operator{op}
		}, "outside [0, 64]"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := base
			tc.mut(&cfg)
			_, err := Generate(cfg)
			if err == nil {
				t.Fatal("invalid config accepted")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err = %q, want it to mention %q", err, tc.want)
			}
		})
	}
}

func TestSub24CountClamp(t *testing.T) {
	op := testOp()
	op.BGP4 = netip.MustParsePrefix("198.51.0.0/22") // 4 carvable /24s
	if got := sub24Cap(op); got != 4 {
		t.Fatalf("sub24Cap = %d, want 4", got)
	}
	// Below the cap the demand formula is untouched.
	op.Subscribers, op.UsersPer24 = 20, 10
	if got := sub24Count(op, 1); got != 3 {
		t.Errorf("in-range demand = %d, want 3", got)
	}
	// At and past the boundary the pool saturates instead of overflowing.
	for _, scale := range []float64{2, 100, 1e6, 1e30, math.MaxFloat64} {
		if got := sub24Count(op, scale); got != 4 {
			t.Errorf("scale %v: sub24Count = %d, want saturated 4", scale, got)
		}
	}
	// Every built-in operator saturates to its own carvable cap.
	for _, op := range Operators() {
		if got := sub24Count(op, 1e12); got != sub24Cap(op) {
			t.Errorf("%s: sub24Count = %d, want cap %d", op.Name, got, sub24Cap(op))
		}
	}
}

// TestScaleSweepPoolExhaustion drives a tiny operator pool across its
// exhaustion boundary: every scale must generate successfully (pre-clamp,
// the oversized /24 demand errored mid-generate inside pick24), and every
// emitted /24 must stay inside the operator's aggregate.
func TestScaleSweepPoolExhaustion(t *testing.T) {
	op := testOp()
	op.BGP4 = netip.MustParsePrefix("198.51.0.0/22")
	op.Subscribers, op.UsersPer24 = 30, 10
	// Demand crosses the 4-/24 cap at scale > 1: 30*s/10+1 > 4.
	for _, scale := range []float64{0.5, 1, 2, 40, 5000} {
		cfg := GenConfig{Days: 5, Scale: scale, Seed: 3, ActivityProb: 0.9,
			Operators: []Operator{op}}
		ds, err := Generate(cfg)
		if err != nil {
			t.Fatalf("scale %v: %v", scale, err)
		}
		if len(ds.Assocs) == 0 {
			t.Fatalf("scale %v: empty dataset", scale)
		}
		for _, a := range ds.Assocs {
			if !op.BGP4.Contains(a.P24().Addr()) {
				t.Fatalf("scale %v: /24 %v escaped pool %v", scale, a.P24(), op.BGP4)
			}
		}
	}
}

// TestScaleSweepBuiltinOperators: the full built-in set (LGI's /14 is the
// tightest pool: it exhausts past scale ≈ 19) must survive a sweep across
// that boundary without mid-generate errors.
func TestScaleSweepBuiltinOperators(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep is slow")
	}
	for _, scale := range []float64{5, 25} {
		cfg := DefaultGenConfig(11)
		cfg.Days = 2
		cfg.Scale = scale
		ds, err := Generate(cfg)
		if err != nil {
			t.Fatalf("scale %v: %v", scale, err)
		}
		if len(ds.Assocs) == 0 {
			t.Fatalf("scale %v: empty dataset", scale)
		}
	}
}

// TestEpisodesPermutationProperty: over a realistic generated dataset,
// episode extraction is a pure function of the association multiset.
func TestEpisodesPermutationProperty(t *testing.T) {
	cfg := DefaultGenConfig(17)
	cfg.Scale = 0.02
	cfg.Days = 20
	ds, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := Episodes(ds.Assocs, DefaultEpisodeConfig())
	if len(want) == 0 {
		t.Fatal("no episodes")
	}
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 5; trial++ {
		shuf := append([]Association(nil), ds.Assocs...)
		rng.Shuffle(len(shuf), func(i, j int) { shuf[i], shuf[j] = shuf[j], shuf[i] })
		got := Episodes(shuf, DefaultEpisodeConfig())
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: episodes depend on input permutation", trial)
		}
	}
}
