package stream

import (
	"bufio"
	"bytes"
	"os"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"dynamips/internal/cdn"
)

// millionGenConfig sizes the model to roughly 10⁶ associations — the
// scale the acceptance contract pins byte-identity at (DefaultGenConfig
// yields ~3.1M associations at scale 1 over 150 days).
func millionGenConfig(seed int64) cdn.GenConfig {
	cfg := cdn.DefaultGenConfig(seed)
	cfg.Scale = 0.32
	cfg.Days = 150
	return cfg
}

// TestMillionScaleIdentity is the acceptance-scale oracle check: at ~10⁶
// associations the streaming generate emits byte-identical CSV, and the
// sharded analyze renders the byte-identical report, versus the
// in-memory path. Skipped under -short; the full run takes a few
// seconds.
func TestMillionScaleIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("10⁶-association identity check skipped with -short")
	}
	cfg := millionGenConfig(20201201)
	ds, want := oracleCSV(t, cfg)
	if len(ds.Assocs) < 900_000 {
		t.Fatalf("model produced %d associations, want ~10⁶ (rescale millionGenConfig)", len(ds.Assocs))
	}

	var got bytes.Buffer
	got.Grow(len(want))
	if err := Generate(GenConfig{Gen: cfg}, &got); err != nil {
		t.Fatalf("stream Generate: %v", err)
	}
	if !bytes.Equal(got.Bytes(), want) {
		t.Fatalf("stream CSV differs from oracle at %d associations", len(ds.Assocs))
	}

	in := filepath.Join(t.TempDir(), "assocs.csv")
	if err := os.WriteFile(in, want, 0o644); err != nil {
		t.Fatal(err)
	}
	wantRep := renderReport(t, cdn.BuildReport(ds.Assocs, ds.BGP, 350, nil))
	rep, err := Analyze(AnalyzeConfig{In: in, Threshold: 350, Table: ds.BGP})
	if err != nil {
		t.Fatalf("stream Analyze: %v", err)
	}
	if gotRep := renderReport(t, rep); !bytes.Equal(gotRep, wantRep) {
		t.Fatalf("stream report differs from oracle at %d associations:\n got: %s\nwant: %s",
			len(ds.Assocs), gotRep, wantRep)
	}
}

// TestPaperScaleStream is the 10⁸-association soak: generate ~10⁸
// associations through the streaming path into a CSV on disk, then
// analyze it sharded, asserting the Go heap stays under a hard ceiling
// the whole way — the dataset (~4 GB as CSV, ~1.7 GB materialized)
// must never be resident. Gated behind DYNAMIPS_PAPER_SCALE=1 because
// the run needs several GB of disk and a few minutes of CPU; CI covers
// the same bounded-memory contract at reduced scale through the
// BenchmarkStreamCDNPipeline peak-mem-bytes ceiling.
func TestPaperScaleStream(t *testing.T) {
	if os.Getenv("DYNAMIPS_PAPER_SCALE") == "" {
		t.Skip("set DYNAMIPS_PAPER_SCALE=1 to run the 10⁸-association soak")
	}
	// The 2 GiB ceiling is far below the ~10 GB an in-memory run would need.
	runScaleSoak(t, 32, 256, 2<<30, 100_000_000)
}

// TestGigaScaleStream is the 10⁹-tuple tier of the same soak: ~40 GB of
// CSV and two spill generations pass through the pipeline while the Go
// heap stays bounded — an in-memory run would need ~100 GB. Gated
// behind DYNAMIPS_PAPER_SCALE=2 (several hours on one core, ~60 GB of
// scratch disk); DYNAMIPS_PAPER_SCALE=1 runs the 10⁸ tier above, and CI
// enforces the same contract at reduced scale via the
// BenchmarkStreamCDNPipeline peak-mem-bytes ceiling in benchcheck.
func TestGigaScaleStream(t *testing.T) {
	if os.Getenv("DYNAMIPS_PAPER_SCALE") != "2" {
		t.Skip("set DYNAMIPS_PAPER_SCALE=2 to run the 10⁹-tuple soak")
	}
	// Twice the shard width of the 10⁸ tier; the 4 GiB ceiling keeps the
	// merge fan-in honest at 10× the spill volume.
	runScaleSoak(t, 320, 512, 4<<30, 1_000_000_000)
}

// runScaleSoak streams ~3.1M·scale associations to a CSV on disk, then
// analyzes it sharded, asserting the Go heap never exceeds heapCeiling
// and at least wantAssocs tuples flowed through.
func runScaleSoak(t *testing.T, scale float64, shards int, heapCeiling uint64, wantAssocs int) {
	t.Helper()
	stopSampler := sampleHeap(t)
	cfg := cdn.DefaultGenConfig(20201201)
	cfg.Scale = scale // ~3.1M associations per unit scale
	cfg.Days = 150

	dir := t.TempDir()
	csvPath := filepath.Join(dir, "assocs.csv")
	f, err := os.Create(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	genSpill := filepath.Join(dir, "gen-spill")
	bw := bufio.NewWriterSize(f, 1<<20)
	if err := Generate(GenConfig{Gen: cfg, SpillDir: genSpill}, bw); err != nil {
		t.Fatalf("stream Generate: %v", err)
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	// Drop the generation spill before analysis spills, so peak disk is
	// CSV + one spill generation, not two.
	if err := os.RemoveAll(genSpill); err != nil {
		t.Fatal(err)
	}
	st, err := os.Stat(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("generated CSV: %d bytes", st.Size())

	rep, err := Analyze(AnalyzeConfig{
		In: csvPath, Shards: shards, Threshold: 350,
		SpillDir: filepath.Join(dir, "az-spill"),
	})
	if err != nil {
		t.Fatalf("stream Analyze: %v", err)
	}
	max := stopSampler()
	t.Logf("associations=%d episodes=%d peak-heap=%d", rep.Assocs, rep.Episodes, max)
	if rep.Assocs < wantAssocs {
		t.Errorf("analyzed %d associations, want >= %d (rescale cfg.Scale)", rep.Assocs, wantAssocs)
	}
	if max > heapCeiling {
		t.Errorf("peak heap %d exceeds ceiling %d: streaming path is not bounded", max, heapCeiling)
	}
}

// sampleHeap polls the runtime heap from a background goroutine until the
// returned stop function is called; stop reports the peak observation.
func sampleHeap(t *testing.T) (stop func() uint64) {
	t.Helper()
	var peak uint64
	done := make(chan struct{})
	quit := make(chan struct{})
	go func() {
		defer close(done)
		tick := time.NewTicker(5 * time.Millisecond)
		defer tick.Stop()
		var ms runtime.MemStats
		for {
			select {
			case <-quit:
				return
			case <-tick.C:
				runtime.ReadMemStats(&ms)
				if ms.HeapAlloc > peak {
					peak = ms.HeapAlloc
				}
			}
		}
	}()
	var once bool
	return func() uint64 {
		if !once {
			once = true
			close(quit)
			<-done
		}
		return peak
	}
}
