package stream

import (
	"os"
	"path/filepath"
	"slices"
	"strings"

	"dynamips/internal/cdn"
	"dynamips/internal/sketch"
)

// Sketch schema parameters. They are part of the pipeline's determinism
// contract: every shard builds its partial with the same capacities and
// the same seed, so partials merge to byte-identical state at any
// -workers value (the shard partition is fixed by -shards, never by
// -workers). The heavy-hitter capacity also sets where the summary
// leaves its exact regime: below SketchTopK distinct keys a merged
// Misra-Gries summary is a pure function of the input multiset; above
// it, only the N/k error bound is partition-invariant (see DESIGN.md
// "Online analysis").
const (
	// SketchAlpha is the quantile sketches' relative-accuracy knob:
	// rank error is bounded by alpha·n.
	SketchAlpha = 0.01
	// SketchTopK is the heavy-hitter capacity; estimates are within
	// N/SketchTopK of truth.
	SketchTopK = 1024
	// SketchCardP is the cardinality register precision (2^p registers,
	// RSE ≈ 1.04/2^(p/2) ≈ 0.8%).
	SketchCardP = 14
	// SketchCardSeed seeds the cardinality hash; fixed so independently
	// built partials share register assignments and merge by max.
	SketchCardSeed = 0x64796E616D495073 // "dynamIPs"
)

// Canonical sketch names in the analysis set. Sorted here as they are
// in the encoding.
const (
	SkDeg24     = "deg24"      // quantile: distinct-/64 degree per /24
	SkDurFixed  = "dur_fixed"  // quantile: fixed episode durations (days)
	SkDurMobile = "dur_mobile" // quantile: mobile episode durations (days)
	SkHot24     = "hot24"      // top-k: /24s by distinct-/64 churn
	SkHot64     = "hot64"      // top-k: /64s by association count
	SkPfx24     = "pfx24"      // cardinality: distinct /24s
	SkPfx64     = "pfx64"      // cardinality: distinct /64s
)

func mustPut(s *sketch.Set, name string, sk sketch.Sketch) {
	if err := s.Put(name, sk); err != nil {
		panic(err)
	}
}

// NewAnalysisSet returns an empty sketch set with the analyze
// pipeline's schema. Every shard partial and the merged barrier state
// use exactly this shape, so Merge never sees a schema mismatch.
func NewAnalysisSet() *sketch.Set {
	s := sketch.NewSet()
	mustPut(s, SkDeg24, sketch.NewQuantile(SketchAlpha))
	mustPut(s, SkDurFixed, sketch.NewQuantile(SketchAlpha))
	mustPut(s, SkDurMobile, sketch.NewQuantile(SketchAlpha))
	mustPut(s, SkHot24, sketch.NewTopK(SketchTopK))
	mustPut(s, SkHot64, sketch.NewTopK(SketchTopK))
	mustPut(s, SkPfx24, sketch.NewCard(SketchCardP, SketchCardSeed))
	mustPut(s, SkPfx64, sketch.NewCard(SketchCardP, SketchCardSeed))
	return s
}

// buildShardSketch folds one shard's complete view into an encoded
// partial: the degree, /24-churn, and /24-cardinality sketches from the
// per-/24 summaries (a /24 maps to exactly one shard, so its degree is
// final here), and the /64 activity and cardinality sketches from the
// episode-ordered records (the stream is K64-major after cmpEpisode, so
// one linear group walk counts each /64's rows). Durations are not
// folded here — episodes can only be cut after the global k-way merge —
// so the reduce barrier adds dur_fixed/dur_mobile into the merged set.
func buildShardSketch(recs []cdn.Association, sums []k24Sum) []byte {
	s := NewAnalysisSet()
	deg := s.Quantile(SkDeg24)
	hot24 := s.TopK(SkHot24)
	pfx24 := s.Card(SkPfx24)
	for i := range sums {
		deg.Add(float64(sums[i].Uniq))
		hot24.Add(uint64(sums[i].K24), uint64(sums[i].Uniq))
		pfx24.Add(uint64(sums[i].K24))
	}
	hot64 := s.TopK(SkHot64)
	pfx64 := s.Card(SkPfx64)
	i := 0
	for i < len(recs) {
		k64 := recs[i].K64
		j := i + 1
		for ; j < len(recs) && recs[j].K64 == k64; j++ {
		}
		hot64.Add(k64, uint64(j-i))
		pfx64.Add(k64)
		i = j
	}
	return s.Encode()
}

// mergeShardSketches decodes every shard partial and merges them in
// shard-index order into one analysis set. Decoding validates each
// partial's frame again even though decShard already did: the merge is
// the last consumer before the bytes become queryable state.
func mergeShardSketches(shards []shardMeta) (*sketch.Set, error) {
	acc := NewAnalysisSet()
	for i := range shards {
		part, err := sketch.DecodeSet(shards[i].Sketch)
		if err != nil {
			return nil, wrap("stream: shard sketch", err)
		}
		if err := acc.Merge(part); err != nil {
			return nil, wrap("stream: merging shard sketch", err)
		}
	}
	return acc, nil
}

// Tail-set schema: the raw-association view a live observer can build
// from spill files alone, without the sort or the k-way merge. Episode
// durations and per-/24 degrees need the full reduce, so the tail set
// tracks row activity and cardinalities only — all of them pure
// monoid folds, so a partially written spill just yields a partial
// prefix of the same state.
const (
	SkRows24 = "rows24" // top-k: /24s by association rows
	SkRows64 = "rows64" // top-k: /64s by association rows
)

// NewTailSet returns an empty sketch set with the spill-tail schema
// (rows24, rows64, pfx24, pfx64).
func NewTailSet() *sketch.Set {
	s := sketch.NewSet()
	mustPut(s, SkPfx24, sketch.NewCard(SketchCardP, SketchCardSeed))
	mustPut(s, SkPfx64, sketch.NewCard(SketchCardP, SketchCardSeed))
	mustPut(s, SkRows24, sketch.NewTopK(SketchTopK))
	mustPut(s, SkRows64, sketch.NewTopK(SketchTopK))
	return s
}

// FoldTail folds one raw association into a tail set.
func FoldTail(s *sketch.Set, a cdn.Association) {
	s.TopK(SkRows24).Add(uint64(a.K24), 1)
	s.TopK(SkRows64).Add(a.K64, 1)
	s.Card(SkPfx24).Add(uint64(a.K24))
	s.Card(SkPfx64).Add(a.K64)
}

// TailSpillDir folds every record it can read from the association
// spill files under dir (the generate path's gen-*.bin and the analyze
// path's shard-*.bin; run-*.bin holds the same records re-sorted, so it
// is skipped to avoid double counting) into a fresh tail set. It is
// tolerant by design — 'dynamips watch' polls directories that a
// generator or analyzer is actively writing — so a torn final chunk
// ends that file's scan without error, and the records folded so far
// stay in the set. Files are visited in sorted name order, but the
// result does not depend on it: tail-set folds are commutative.
// Returns the set and the number of records folded.
func TailSpillDir(dir string) (*sketch.Set, int64, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, 0, wrap("stream: reading spill dir", err)
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		name := e.Name()
		if e.Type().IsRegular() && strings.HasSuffix(name, ".bin") &&
			(strings.HasPrefix(name, "gen-") || strings.HasPrefix(name, "shard-")) {
			names = append(names, name)
		}
	}
	slices.Sort(names)
	s := NewTailSet()
	var total int64
	for _, name := range names {
		total += tailSpill(filepath.Join(dir, name), s)
	}
	return s, total, nil
}

// tailSpill folds one spill file's readable prefix into s. Torn or
// corrupt chunks end the scan silently, and so does a file whose
// header is not yet written (the writer may still be appending or may
// have just created it); folding never fails mid-poll.
func tailSpill(path string, s *sketch.Set) int64 {
	f, r, err := openSpill(path)
	if err != nil {
		return 0
	}
	defer f.Close()
	var n int64
	for {
		a, ok, err := r.Next()
		if err != nil || !ok {
			return n
		}
		FoldTail(s, a)
		n++
	}
}
