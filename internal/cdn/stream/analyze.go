package stream

import (
	"bufio"
	"os"
	"path/filepath"
	"slices"
	"strconv"

	"dynamips/internal/bgp"
	"dynamips/internal/cdn"
	"dynamips/internal/checkpoint"
	"dynamips/internal/core"
	"dynamips/internal/netutil"
	"dynamips/internal/obs"
	"dynamips/internal/sketch"
	"dynamips/internal/stats"
)

// DefaultShards is the analyze partition width: peak memory is roughly
// input/shards per worker, so 64 keeps a 10⁸-record run in tens of
// megabytes per shard.
const DefaultShards = 64

// AnalyzeConfig configures the streaming analyze path.
type AnalyzeConfig struct {
	// In is the association CSV path (the partition phase may read it
	// more than once across resumes, so it is a path, not a reader).
	In string
	// Shards is the /24-hash partition width; <= 0 uses DefaultShards.
	// It participates in resume correctness: the checkpoint key must
	// change when it does.
	Shards int
	// Workers bounds the per-shard fan-out (0 = all CPUs); the report
	// is identical for any value.
	Workers int
	// Threshold is the unique-/64 degree above which a /24 is mobile.
	Threshold int
	// Table, when non-nil, attributes episodes to operators.
	Table *bgp.Table
	// SpillDir overrides where shard and run files live.
	SpillDir string
	// Checkpoint, when non-nil, journals the partition and shard units.
	Checkpoint *checkpoint.Run
	// Obs receives the analyze span, counters, and shard throughput.
	Obs *obs.Observer
}

// partMeta journals the partition phase: every shard file with its size
// and record count, plus the input total.
type partMeta struct {
	Records int64
	Files   []string
	Sizes   []int64
	Counts  []int64
}

// shardMeta journals one shard unit: its sorted run file, the per-/24
// degree summaries (complete, because a /24 maps to exactly one shard),
// and the shard's encoded sketch partial. Journals written before the
// sketch plane existed carry a nil Sketch; decShard rejects those, and
// checkpoint.Stage answers by recomputing the unit.
type shardMeta struct {
	File    string
	Size    int64
	Records int64
	Sums    []k24Sum
	Sketch  []byte
}

// k24Sum is one /24's degree: its distinct-/64 count.
type k24Sum struct {
	K24  uint32
	Uniq int64
}

// Analyze runs the sharded streaming analysis over a CSV association
// file and returns the same Report the in-memory oracle
// (cdn.BuildReport) produces — byte-identical once rendered — without
// ever materializing more than one shard per worker.
//
// Three phases: partition hash-splits the input by /24 key into shard
// spill files (one journal unit); each shard unit sorts its records to
// extract per-/24 degree summaries and writes a (K64, Day, K24, Hits)
// sorted run (one journal unit each); the reduce phase derives mobile
// labels from the merged summaries, then k-way-merges the runs to scan
// episodes, durations, and per-/64 trailing zeros in one bounded pass.
func Analyze(cfg AnalyzeConfig) (*cdn.Report, error) {
	if cfg.In == "" {
		return nil, errNoInput
	}
	if cfg.Shards <= 0 {
		cfg.Shards = DefaultShards
	}
	dir, temp, err := ensureSpillDir(cfg.SpillDir, cfg.Checkpoint)
	if err != nil {
		return nil, err
	}
	if temp {
		defer os.RemoveAll(dir)
	}
	az := &analyzer{cfg: cfg, dir: dir}
	span := cfg.Obs.StartSpan("analyze-cdn")
	parts, err := checkpoint.Stage(cfg.Checkpoint, "cdn-stream-part", 1, 1,
		az.partition, checkpoint.GobEncode[partMeta], az.decPart)
	if err != nil {
		return nil, err
	}
	az.part = parts[0]
	shards, err := checkpoint.Stage(cfg.Checkpoint, "cdn-stream-shard", cfg.Shards, cfg.Workers,
		az.shard, checkpoint.GobEncode[shardMeta], az.decShard)
	if err != nil {
		return nil, err
	}
	rep, err := az.reduce(shards)
	if err != nil {
		return nil, err
	}
	cfg.Obs.Advance(az.part.Records)
	span.End()
	return rep, nil
}

type analyzer struct {
	cfg  AnalyzeConfig
	dir  string
	part partMeta
}

// partition streams the input CSV once, routing each record to its
// shard's spill file.
func (az *analyzer) partition(_ int) (partMeta, error) {
	in, err := os.Open(az.cfg.In)
	if err != nil {
		return partMeta{}, wrap("stream: opening associations", err)
	}
	defer in.Close()
	n := az.cfg.Shards
	p := &partitioner{shards: make([]*spillFile, n), counts: make([]int64, n)}
	names := make([]string, n)
	for i := 0; i < n; i++ {
		names[i] = "shard-" + strconv.Itoa(i) + ".bin"
		sf, err := createSpill(filepath.Join(az.dir, names[i]))
		if err != nil {
			p.abortAll()
			return partMeta{}, err
		}
		p.shards[i] = sf
	}
	if err := cdn.ScanCSV(bufio.NewReaderSize(in, 1<<16), p.route); err != nil {
		p.abortAll()
		return partMeta{}, err
	}
	sizes := make([]int64, n)
	for i := 0; i < n; i++ {
		sz, err := p.shards[i].finish()
		p.shards[i] = nil
		if err != nil {
			p.abortAll()
			return partMeta{}, err
		}
		sizes[i] = sz
	}
	return partMeta{Records: p.total, Files: names, Sizes: sizes, Counts: p.counts}, nil
}

func (az *analyzer) decPart(b []byte) (partMeta, error) {
	m, err := checkpoint.GobDecode[partMeta](b)
	if err != nil {
		return partMeta{}, err
	}
	if len(m.Files) != az.cfg.Shards || len(m.Sizes) != az.cfg.Shards || len(m.Counts) != az.cfg.Shards {
		return partMeta{}, errSpillChanged
	}
	for i := range m.Files {
		if err := validateSpill(filepath.Join(az.dir, m.Files[i]), m.Sizes[i]); err != nil {
			return partMeta{}, err
		}
	}
	return m, nil
}

// shard processes one shard: load, sort by (K24, K64) for the degree
// summaries, re-sort into the analysis order, and write the sorted run.
func (az *analyzer) shard(si int) (shardMeta, error) {
	recs, err := readSpill(filepath.Join(az.dir, az.part.Files[si]), az.part.Counts[si])
	if err != nil {
		return shardMeta{}, err
	}
	slices.SortFunc(recs, cmpK24K64)
	sums := summarize(recs)
	slices.SortFunc(recs, cmpEpisode)
	name := "run-" + strconv.Itoa(si) + ".bin"
	sf, err := createSpill(filepath.Join(az.dir, name))
	if err != nil {
		return shardMeta{}, err
	}
	for i := range recs {
		if err := sf.cw.Append(recs[i]); err != nil {
			sf.abort()
			return shardMeta{}, err
		}
	}
	size, err := sf.finish()
	if err != nil {
		return shardMeta{}, err
	}
	return shardMeta{File: name, Size: size, Records: int64(len(recs)), Sums: sums,
		Sketch: buildShardSketch(recs, sums)}, nil
}

func (az *analyzer) decShard(b []byte) (shardMeta, error) {
	m, err := checkpoint.GobDecode[shardMeta](b)
	if err != nil {
		return shardMeta{}, err
	}
	if err := validateSpill(filepath.Join(az.dir, m.File), m.Size); err != nil {
		return shardMeta{}, err
	}
	if _, err := sketch.DecodeSet(m.Sketch); err != nil {
		return shardMeta{}, err
	}
	return m, nil
}

// summarize walks a (K24, K64)-sorted shard and counts distinct /64s
// per /24. Summaries come out K24-ascending.
func summarize(recs []cdn.Association) []k24Sum {
	var out []k24Sum
	i := 0
	for i < len(recs) {
		k24 := recs[i].K24
		uniq := int64(1)
		last := recs[i].K64
		j := i + 1
		for ; j < len(recs) && recs[j].K24 == k24; j++ {
			if recs[j].K64 != last {
				uniq++
				last = recs[j].K64
			}
		}
		out = append(out, k24Sum{K24: k24, Uniq: uniq})
		i = j
	}
	return out
}

// reduce derives the report: mobile labels and degree peaks from the
// shard summaries, then one merged pass over the sorted runs for
// episodes, durations, and trailing zeros.
func (az *analyzer) reduce(shards []shardMeta) (*cdn.Report, error) {
	o := az.cfg.Obs
	o.Counter("cdn_assocs_filtered").Add(az.part.Records)
	o.Counter("cdn_stream_shards").Add(int64(len(shards)))
	shardHist := o.Histogram("cdn_stream_shard_records", unitBounds)
	mobile := make(map[uint32]bool)
	mu := stats.NewLogHistogram(4)
	fu := stats.NewLogHistogram(4)
	paths := make([]string, len(shards))
	for i := range shards {
		shardHist.Observe(shards[i].Records)
		paths[i] = filepath.Join(az.dir, shards[i].File)
		for _, s := range shards[i].Sums {
			if s.Uniq > int64(az.cfg.Threshold) {
				mobile[s.K24] = true
				mu.Add(float64(s.Uniq), 1)
			} else {
				fu.Add(float64(s.Uniq), 1)
			}
		}
	}

	sk, err := mergeShardSketches(shards)
	if err != nil {
		return nil, err
	}
	m, err := newMerger(paths)
	if err != nil {
		return nil, err
	}
	defer m.close()
	red := &reducer{
		gap:      cdn.DefaultEpisodeConfig().MaxGapDays,
		mobile:   mobile,
		table:    az.cfg.Table,
		perOp:    make(map[uint32]*durCounts),
		zeros:    &core.TrailingZeroBuckets{Counts: make(map[int]int)},
		skFixed:  sk.Quantile(SkDurFixed),
		skMobile: sk.Quantile(SkDurMobile),
	}
	for {
		a, ok, err := m.next()
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
		red.record(a)
	}
	red.finish()
	o.Counter("cdn_episodes").Add(int64(red.episodes))

	r := &cdn.Report{
		Assocs:     int(az.part.Records),
		Episodes:   red.episodes,
		Fixed:      red.fixedDur.box(),
		Mobile:     red.mobileDur.box(),
		MobilePeak: mu.PeakX(),
		FixedPeak:  fu.PeakX(),
		Zeros:      red.zeros,
		Sketches:   sk,
	}
	if az.cfg.Table != nil {
		r.PerOperator = true
		slices.Sort(red.asns)
		for _, asn := range red.asns {
			r.PerOp = append(r.PerOp, cdn.OperatorDurations{
				ASN: asn, Name: az.cfg.Table.Name(asn), Box: red.perOp[asn].box(),
			})
		}
	}
	return r, nil
}

// durCounts is a duration multiset as per-value counts (durations are
// small ints bounded by the window length), convertible to the same
// nearest-rank box stats the oracle computes from the expanded list.
type durCounts struct {
	counts []int64 // index = duration in days
	n      int64
}

func (d *durCounts) add(days int) {
	for len(d.counts) <= days {
		d.counts = append(d.counts, 0)
	}
	d.counts[days]++
	d.n++
}

func (d *durCounts) box() stats.BoxStats {
	if d.n == 0 {
		return stats.BoxStats{}
	}
	vals := make([]float64, 0, len(d.counts))
	cnts := make([]int64, 0, len(d.counts))
	for v, c := range d.counts {
		if c > 0 {
			vals = append(vals, float64(v))
			cnts = append(cnts, c)
		}
	}
	return stats.BoxOfCounts(vals, cnts)
}

// reducer consumes the merged record stream: the episode scan mirrors
// cdn.Episodes' split rules exactly, and the per-/64 grouping (the
// stream is K64-major) feeds the trailing-zero buckets with every /64
// that appeared at least once on a non-mobile /24.
type reducer struct {
	gap    int
	mobile map[uint32]bool
	table  *bgp.Table

	has            bool
	epK64          uint64
	epK24          uint32
	epStart, epEnd int

	curK64   uint64
	anyFixed bool

	episodes  int
	fixedDur  durCounts
	mobileDur durCounts
	perOp     map[uint32]*durCounts
	asns      []uint32
	zeros     *core.TrailingZeroBuckets

	// skFixed and skMobile receive every episode duration; the barrier
	// is the only place episodes exist, so the duration sketches are
	// folded here rather than per shard.
	skFixed  *sketch.Quantile
	skMobile *sketch.Quantile
}

func (r *reducer) record(a cdn.Association) {
	switch {
	case !r.has:
		r.has = true
		r.curK64 = a.K64
		r.startEpisode(a)
	case a.K64 != r.curK64:
		r.endEpisode()
		r.endK64Group()
		r.curK64 = a.K64
		r.anyFixed = false
		r.startEpisode(a)
	case a.K24 != r.epK24 || int(a.Day)-r.epEnd > r.gap:
		r.endEpisode()
		r.startEpisode(a)
	default:
		if int(a.Day) > r.epEnd {
			r.epEnd = int(a.Day)
		}
	}
	if !r.mobile[a.K24] {
		r.anyFixed = true
	}
}

func (r *reducer) finish() {
	if !r.has {
		return
	}
	r.endEpisode()
	r.endK64Group()
}

func (r *reducer) startEpisode(a cdn.Association) {
	r.epK64 = a.K64
	r.epK24 = a.K24
	r.epStart = int(a.Day)
	r.epEnd = int(a.Day)
}

func (r *reducer) endEpisode() {
	r.episodes++
	d := r.epEnd - r.epStart + 1
	if r.mobile[r.epK24] {
		r.mobileDur.add(d)
		r.skMobile.Add(float64(d))
	} else {
		r.fixedDur.add(d)
		r.skFixed.Add(float64(d))
	}
	if r.table != nil {
		if asn, _, ok := r.table.Origin(netutil.AddrFrom128(r.epK64, 0)); ok {
			dc := r.perOp[asn]
			if dc == nil {
				dc = &durCounts{}
				r.perOp[asn] = dc
				r.asns = append(r.asns, asn)
			}
			dc.add(d)
		}
	}
}

func (r *reducer) endK64Group() {
	if !r.anyFixed {
		return
	}
	r.zeros.Total++
	p := cdn.Association{K64: r.curK64}.P64()
	if l, ok := netutil.InferredDelegation(p); ok {
		r.zeros.Counts[l]++
		r.zeros.Inferable++
	}
}

// partitioner routes records to shard spill files during the partition
// phase.
type partitioner struct {
	shards []*spillFile
	counts []int64
	total  int64
}

func (p *partitioner) route(a cdn.Association) error {
	i := shardOf(a.K24, len(p.shards))
	p.total++
	p.counts[i]++
	return p.shards[i].cw.Append(a)
}

func (p *partitioner) abortAll() {
	for _, sf := range p.shards {
		if sf != nil {
			sf.abort()
		}
	}
}
