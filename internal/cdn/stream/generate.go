package stream

import (
	"bufio"
	"io"
	"os"
	"path/filepath"
	"strconv"

	"dynamips/internal/cdn"
	"dynamips/internal/checkpoint"
)

// GenConfig configures the streaming generate path.
type GenConfig struct {
	// Gen is the shared generation model; its Checkpoint, Obs, and
	// Workers fields drive this path exactly as they drive cdn.Generate.
	Gen cdn.GenConfig
	// SpillDir overrides where per-operator spill files live (see
	// ensureSpillDir for the default resolution).
	SpillDir string
}

// genMeta is the journaled result of one operator unit: its spill file
// plus the counts the pipeline's counters need. Size lets a resume
// re-validate the file before trusting it.
type genMeta struct {
	File       string
	Raw        int64
	Kept       int64
	Mismatches int64
	Size       int64
}

// Generate streams the synthetic dataset to w as CSV without ever
// holding more than one codec chunk per worker in memory: each operator
// unit streams its associations through the ASN-mismatch filter into a
// binary spill file (journaled, so interrupted runs resume), then the
// spills are concatenated in operator order through the append-based CSV
// encoder. For the same normalized config the output is byte-identical
// to cdn.WriteCSV over cdn.Generate's dataset, at any worker count.
func Generate(cfg GenConfig, w io.Writer) error {
	gen := cfg.Gen.Normalized()
	if err := gen.Validate(); err != nil {
		return err
	}
	dir, temp, err := ensureSpillDir(cfg.SpillDir, gen.Checkpoint)
	if err != nil {
		return err
	}
	if temp {
		defer os.RemoveAll(dir)
	}
	g := &generator{cfg: gen, env: cdn.NewEnv(gen.OperatorSet()), dir: dir}
	n := len(g.env.Ops)
	span := gen.Obs.StartSpan("cdn/generate")
	metas, err := checkpoint.Stage(gen.Checkpoint, "cdn-stream-gen", n, gen.Workers,
		g.unit, checkpoint.GobEncode[genMeta], g.decMeta)
	if err != nil {
		return err
	}
	gen.Obs.Advance(int64(n))
	span.End()
	var raw, kept, mism int64
	unitHist := gen.Obs.Histogram("cdn_stream_unit_records", unitBounds)
	for i := range metas {
		raw += metas[i].Raw
		kept += metas[i].Kept
		mism += metas[i].Mismatches
		unitHist.Observe(metas[i].Kept)
	}
	gen.Obs.Counter("cdn_assocs_raw").Add(raw)
	gen.Obs.Counter("cdn_assocs_filtered").Add(kept)
	gen.Obs.Counter("cdn_mismatches_dropped").Add(mism)

	bw := bufio.NewWriterSize(w, 1<<16)
	if err := cdn.WriteCSVHeader(bw); err != nil {
		return err
	}
	for i := range metas {
		if err := g.appendSpillCSV(bw, metas[i].File); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// generator carries the run state so the stage hooks are method values
// (hot-path rule: no capturing closures).
type generator struct {
	cfg cdn.GenConfig
	env *cdn.Env
	dir string
}

// unit generates one operator's filtered associations into its spill
// file and returns the journaled meta.
func (g *generator) unit(oi int) (genMeta, error) {
	name := "gen-" + strconv.Itoa(oi) + ".bin"
	sf, err := createSpill(filepath.Join(g.dir, name))
	if err != nil {
		return genMeta{}, err
	}
	e := &genEmitter{w: sf.cw, env: g.env}
	if err := cdn.EmitOperator(oi, g.cfg, e.emit); err != nil {
		sf.abort()
		return genMeta{}, err
	}
	size, err := sf.finish()
	if err != nil {
		return genMeta{}, err
	}
	return genMeta{File: name, Raw: e.raw, Kept: e.kept, Mismatches: e.mism, Size: size}, nil
}

func (g *generator) decMeta(b []byte) (genMeta, error) {
	m, err := checkpoint.GobDecode[genMeta](b)
	if err != nil {
		return genMeta{}, err
	}
	if err := validateSpill(filepath.Join(g.dir, m.File), m.Size); err != nil {
		return genMeta{}, err
	}
	return m, nil
}

// appendSpillCSV re-encodes one spill file as CSV rows into bw.
func (g *generator) appendSpillCSV(bw *bufio.Writer, name string) error {
	f, r, err := openSpill(filepath.Join(g.dir, name))
	if err != nil {
		return err
	}
	defer f.Close()
	row := make([]byte, 0, 64)
	for {
		a, ok, err := r.Next()
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		row = cdn.AppendCSVRow(row[:0], a)
		if _, err := bw.Write(row); err != nil {
			return wrap("stream: writing csv row", err)
		}
	}
}

// genEmitter applies the ASN-mismatch pre-filter in generation order —
// the filter is per-record, so filtering inside each operator stream is
// equivalent to the oracle's post-concatenation pass.
type genEmitter struct {
	w    *Writer
	env  *cdn.Env
	raw  int64
	kept int64
	mism int64
}

func (e *genEmitter) emit(a cdn.Association) error {
	e.raw++
	if !e.env.Keep(a) {
		e.mism++
		return nil
	}
	e.kept++
	return e.w.Append(a)
}
