package stream

import (
	"bytes"
	"encoding/json"
	"errors"
	"math"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"dynamips/internal/cdn"
	"dynamips/internal/checkpoint"
	"dynamips/internal/sketch"
)

// writeOracleCSV materializes the reference dataset to a CSV file.
func writeOracleCSV(t *testing.T, cfg cdn.GenConfig) (*cdn.Dataset, string) {
	t.Helper()
	ds, csv := oracleCSV(t, cfg)
	in := filepath.Join(t.TempDir(), "assocs.csv")
	if err := os.WriteFile(in, csv, 0o644); err != nil {
		t.Fatal(err)
	}
	return ds, in
}

// TestSketchWorkerShardInvariance: the merged sketch bytes must be
// identical at every -workers value (the partition is fixed by -shards,
// so this holds unconditionally) and at every -shards value too, because
// the test dataset's distinct-key counts sit below SketchTopK — the
// Misra-Gries exact regime, where sketch state is a pure function of the
// input multiset (see DESIGN.md "Online analysis").
func TestSketchWorkerShardInvariance(t *testing.T) {
	_, in := writeOracleCSV(t, testGenConfig(7))
	var want []byte
	for _, tc := range []struct{ shards, workers int }{
		{16, 1}, {16, 4}, {16, 16}, {1, 1}, {5, 2}, {64, 4},
	} {
		rep, err := Analyze(AnalyzeConfig{In: in, Shards: tc.shards, Workers: tc.workers, Threshold: 350})
		if err != nil {
			t.Fatalf("shards=%d workers=%d: %v", tc.shards, tc.workers, err)
		}
		got := rep.Sketches.Encode()
		if want == nil {
			want = got
			continue
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("shards=%d workers=%d: sketch bytes differ from baseline", tc.shards, tc.workers)
		}
	}
}

// TestSketchMatchesBatchOracle is the batch-vs-sketch harness over the
// full pipeline: every summary the streaming path sketches is recomputed
// exactly from the materialized dataset, and the sketch answers must sit
// inside their theoretical error bounds (rank error ≤ alpha·n,
// heavy-hitter error ≤ N/k — zero here, exact regime — and cardinality
// relative error within 4·RSE).
func TestSketchMatchesBatchOracle(t *testing.T) {
	ds, in := writeOracleCSV(t, testGenConfig(7))
	const threshold = 350
	rep, err := Analyze(AnalyzeConfig{In: in, Shards: 16, Threshold: threshold})
	if err != nil {
		t.Fatal(err)
	}
	sk := rep.Sketches
	if sk == nil {
		t.Fatal("streaming report carries no sketches")
	}

	// Exact batch state.
	mobile := cdn.MobileLabel(ds.Assocs, threshold)
	eps := cdn.Episodes(ds.Assocs, cdn.DefaultEpisodeConfig())
	var fixedD, mobileD []float64
	for _, ep := range eps {
		if mobile[ep.K24] {
			mobileD = append(mobileD, float64(ep.Days()))
		} else {
			fixedD = append(fixedD, float64(ep.Days()))
		}
	}
	deg := map[uint32]map[uint64]bool{}
	rows64 := map[uint64]uint64{}
	for _, a := range ds.Assocs {
		m := deg[a.K24]
		if m == nil {
			m = map[uint64]bool{}
			deg[a.K24] = m
		}
		m[a.K64] = true
		rows64[a.K64]++
	}
	var degD []float64
	for _, m := range deg {
		degD = append(degD, float64(len(m)))
	}

	checkQuantile := func(name string, q *sketch.Quantile, data []float64) {
		t.Helper()
		if q.Count() != uint64(len(data)) {
			t.Fatalf("%s: sketch count %d, exact %d", name, q.Count(), len(data))
		}
		sorted := append([]float64(nil), data...)
		sort.Float64s(sorted)
		for _, p := range []float64{0.05, 0.25, 0.5, 0.75, 0.95} {
			est := q.Query(p)
			// Rank error: the estimate's rank interval must be within
			// alpha*n of the target rank.
			lo := sort.SearchFloat64s(sorted, est) + 1
			hi := sort.SearchFloat64s(sorted, math.Nextafter(est, math.Inf(1)))
			if hi < lo {
				hi = lo
			}
			target := math.Ceil(p * float64(len(sorted)))
			rankErr := 0.0
			if float64(lo) > target {
				rankErr = float64(lo) - target
			} else if float64(hi) < target {
				rankErr = target - float64(hi)
			}
			if bound := SketchAlpha * float64(len(sorted)); rankErr > bound+1 {
				t.Errorf("%s p=%.2f: est %.3g rank error %.1f > %.1f", name, p, est, rankErr, bound)
			}
		}
	}
	checkQuantile(SkDurFixed, sk.Quantile(SkDurFixed), fixedD)
	checkQuantile(SkDurMobile, sk.Quantile(SkDurMobile), mobileD)
	checkQuantile(SkDeg24, sk.Quantile(SkDeg24), degD)

	// Heavy hitters: the test scale is in the exact regime, so every
	// estimate must be exact and slack zero.
	hot24 := sk.TopK(SkHot24)
	if hot24.Slack() != 0 {
		t.Fatalf("hot24 slack %d in exact regime", hot24.Slack())
	}
	for k24, m := range deg {
		if est, ok := hot24.Est(uint64(k24)); !ok || est != uint64(len(m)) {
			t.Fatalf("hot24 /24 %d: est %d tracked=%v, exact %d", k24, est, ok, len(m))
		}
	}
	hot64 := sk.TopK(SkHot64)
	if hot64.Slack() != 0 {
		t.Fatalf("hot64 slack %d in exact regime", hot64.Slack())
	}
	for k64, rows := range rows64 {
		if est, ok := hot64.Est(k64); !ok || est != rows {
			t.Fatalf("hot64 /64 %#x: est %d tracked=%v, exact %d", k64, est, ok, rows)
		}
	}

	// Cardinalities: within 4 relative standard errors of truth.
	for _, tc := range []struct {
		name  string
		exact int
	}{
		{SkPfx24, len(deg)},
		{SkPfx64, len(rows64)},
	} {
		c := sk.Card(tc.name)
		rel := math.Abs(c.Estimate()-float64(tc.exact)) / float64(tc.exact)
		if bound := 4 * c.RSE(); rel > bound {
			t.Errorf("%s: estimate %.0f for %d distinct, relative error %.4f > %.4f",
				tc.name, c.Estimate(), tc.exact, rel, bound)
		}
	}
}

// TestSketchKillAndResume: an analyze run killed mid-shard must resume to
// byte-identical sketches, including recomputing journal entries whose
// sketch bytes fail decoding (the self-heal path for journals written
// before the sketch plane existed).
func TestSketchKillAndResume(t *testing.T) {
	defer checkpoint.SetCrashPlan(0, false)
	cfg := testGenConfig(13)
	ds, csv := oracleCSV(t, cfg)
	base := t.TempDir()
	in := filepath.Join(base, "assocs.csv")
	if err := os.WriteFile(in, csv, 0o644); err != nil {
		t.Fatal(err)
	}
	fresh, err := Analyze(AnalyzeConfig{In: in, Shards: 16, Threshold: 350, Table: ds.BGP})
	if err != nil {
		t.Fatal(err)
	}
	want := fresh.Sketches.Encode()

	ckpt := filepath.Join(base, "ckpt")
	run, err := checkpoint.Open(ckpt, testKey(13), json.RawMessage(`{}`), nil)
	if err != nil {
		t.Fatal(err)
	}
	acfg := AnalyzeConfig{In: in, Shards: 16, Threshold: 350, Table: ds.BGP, Checkpoint: run}
	checkpoint.SetCrashPlan(7, true)
	_, anErr := Analyze(acfg)
	checkpoint.SetCrashPlan(0, false)
	if !errors.Is(anErr, checkpoint.ErrCrashInjected) {
		t.Fatalf("err = %v, want ErrCrashInjected", anErr)
	}
	run.Close()

	resumed, err := checkpoint.Open(ckpt, testKey(13), json.RawMessage(`{}`), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resumed.Close()
	acfg.Checkpoint = resumed
	acfg.Workers = 2
	rep, err := Analyze(acfg)
	if err != nil {
		t.Fatalf("resumed Analyze: %v", err)
	}
	if !bytes.Equal(rep.Sketches.Encode(), want) {
		t.Fatal("resumed sketches differ from uninterrupted run")
	}
}

// TestDecShardRejectsBadSketch: a journaled shard whose sketch bytes do
// not decode (nil — the pre-sketch journal shape — or corrupt) must fail
// decode validation so checkpoint.Stage recomputes the unit.
func TestDecShardRejectsBadSketch(t *testing.T) {
	dir := t.TempDir()
	sf, err := createSpill(filepath.Join(dir, "run-0.bin"))
	if err != nil {
		t.Fatal(err)
	}
	size, err := sf.finish()
	if err != nil {
		t.Fatal(err)
	}
	az := &analyzer{dir: dir}
	enc := func(m shardMeta) []byte {
		b, err := checkpoint.GobEncode(m)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	good := shardMeta{File: "run-0.bin", Size: size, Sketch: sketch.NewSet().Encode()}
	if _, err := az.decShard(enc(good)); err != nil {
		t.Fatalf("valid meta rejected: %v", err)
	}
	for _, tc := range []struct {
		name   string
		sketch []byte
	}{
		{"nil-sketch", nil},
		{"corrupt-sketch", []byte("not a sketch set")},
	} {
		m := good
		m.Sketch = tc.sketch
		if _, err := az.decShard(enc(m)); err == nil {
			t.Fatalf("%s: accepted", tc.name)
		}
	}
}

// TestTailSpillDir: folding spill files reproduces a direct fold of the
// same records, skips re-sorted run files, and tolerates torn writes.
func TestTailSpillDir(t *testing.T) {
	dir := t.TempDir()
	recs := make([]cdn.Association, 500)
	for i := range recs {
		recs[i] = cdn.Association{
			K24:  uint32(i % 37),
			K64:  uint64(i % 111),
			Day:  uint16(i % 30),
			Hits: 1,
		}
	}
	write := func(name string, rs []cdn.Association) {
		t.Helper()
		sf, err := createSpill(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		for _, a := range rs {
			if err := sf.cw.Append(a); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := sf.finish(); err != nil {
			t.Fatal(err)
		}
	}
	write("shard-0.bin", recs[:200])
	write("gen-1.bin", recs[200:])
	// Run files hold the same records re-sorted; folding them too would
	// double count.
	write("run-0.bin", recs[:100])

	want := NewTailSet()
	for _, a := range recs {
		FoldTail(want, a)
	}
	got, n, err := TailSpillDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(len(recs)) {
		t.Fatalf("folded %d records, want %d", n, len(recs))
	}
	if !bytes.Equal(got.Encode(), want.Encode()) {
		t.Fatal("tail fold differs from direct fold")
	}

	// A torn file (truncated mid-chunk) contributes the chunks before
	// the tear without failing the poll: two full chunks survive, the
	// third is damaged.
	tornRecs := make([]cdn.Association, 2*chunkRecords+10)
	for i := range tornRecs {
		tornRecs[i] = cdn.Association{K24: uint32(i), K64: uint64(i), Day: 1, Hits: 1}
	}
	write("shard-2.bin", tornRecs)
	torn := filepath.Join(dir, "shard-2.bin")
	src, err := os.ReadFile(torn)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(torn, src[:len(src)-7], 0o644); err != nil {
		t.Fatal(err)
	}
	// An empty (header-less) file is still being created by its writer.
	if err := os.WriteFile(filepath.Join(dir, "gen-9.bin"), nil, 0o644); err != nil {
		t.Fatal(err)
	}
	got2, n2, err := TailSpillDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if n2 <= n {
		t.Fatalf("torn file contributed no records (%d -> %d)", n, n2)
	}
	if bytes.Equal(got2.Encode(), got.Encode()) {
		t.Fatal("torn file's prefix did not change the fold")
	}
}
