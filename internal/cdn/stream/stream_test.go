package stream

import (
	"bytes"
	"encoding/json"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"dynamips/internal/cdn"
	"dynamips/internal/checkpoint"
	"dynamips/internal/obs"
)

// testGenConfig is the small-but-nontrivial model the identity tests run:
// big enough that every operator contributes and the mismatch filter
// fires, small enough to stay fast.
func testGenConfig(seed int64) cdn.GenConfig {
	cfg := cdn.DefaultGenConfig(seed)
	cfg.Scale = 0.02
	cfg.Days = 30
	return cfg
}

// oracleCSV materializes the reference dataset and its CSV encoding.
func oracleCSV(t *testing.T, cfg cdn.GenConfig) (*cdn.Dataset, []byte) {
	t.Helper()
	ds, err := cdn.Generate(cfg)
	if err != nil {
		t.Fatalf("oracle Generate: %v", err)
	}
	var buf bytes.Buffer
	if err := cdn.WriteCSV(&buf, ds.Assocs); err != nil {
		t.Fatalf("oracle WriteCSV: %v", err)
	}
	return ds, buf.Bytes()
}

func TestChunkCodecRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	// Spans several full chunks plus a partial tail.
	recs := make([]cdn.Association, 3*chunkRecords+57)
	for i := range recs {
		recs[i] = cdn.Association{
			K24:  rng.Uint32() & 0xFFFFFF,
			K64:  rng.Uint64(),
			Day:  uint16(rng.Intn(1 << 16)),
			Hits: rng.Uint32(),
		}
	}
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range recs {
		if err := w.Append(a); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	for i := range recs {
		a, ok, err := r.Next()
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if !ok {
			t.Fatalf("stream ended at record %d of %d", i, len(recs))
		}
		if a != recs[i] {
			t.Fatalf("record %d: got %+v want %+v", i, a, recs[i])
		}
	}
	if _, ok, err := r.Next(); ok || err != nil {
		t.Fatalf("after last record: ok=%v err=%v, want clean EOF", ok, err)
	}
}

func TestChunkCodecEmpty(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, err := r.Next(); ok || err != nil {
		t.Fatalf("empty file: ok=%v err=%v", ok, err)
	}
}

func TestChunkCodecCorruption(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if err := w.Append(cdn.Association{K24: uint32(i), K64: uint64(i), Day: 1, Hits: 2}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	drain := func(b []byte) error {
		r, err := NewReader(bytes.NewReader(b))
		if err != nil {
			return err
		}
		for {
			_, ok, err := r.Next()
			if err != nil || !ok {
				return err
			}
		}
	}

	if err := drain(nil); !errors.Is(err, ErrBadMagic) {
		t.Errorf("empty input: err = %v, want ErrBadMagic", err)
	}
	bad := append([]byte(nil), good...)
	bad[0] ^= 0xFF
	if err := drain(bad); !errors.Is(err, ErrBadMagic) {
		t.Errorf("wrong magic: err = %v, want ErrBadMagic", err)
	}
	if err := drain(good[:len(good)-3]); !errors.Is(err, ErrCorrupt) {
		t.Errorf("truncated payload: err = %v, want ErrCorrupt", err)
	}
	if err := drain(good[:len(magic)+4]); !errors.Is(err, ErrCorrupt) {
		t.Errorf("truncated header: err = %v, want ErrCorrupt", err)
	}
	bad = append([]byte(nil), good...)
	bad[len(bad)-1] ^= 0x01
	if err := drain(bad); !errors.Is(err, ErrCorrupt) {
		t.Errorf("flipped payload bit: err = %v, want ErrCorrupt", err)
	}
}

func TestShardOfRange(t *testing.T) {
	for _, shards := range []int{1, 2, 7, 64} {
		hit := make([]bool, shards)
		for k := uint32(0); k < 1<<16; k++ {
			s := shardOf(k, shards)
			if s < 0 || s >= shards {
				t.Fatalf("shardOf(%d, %d) = %d out of range", k, shards, s)
			}
			hit[s] = true
		}
		for s, ok := range hit {
			if !ok {
				t.Errorf("shards=%d: shard %d never hit", shards, s)
			}
		}
	}
}

// TestGenerateMatchesOracle: the streaming generate path must emit
// byte-identical CSV to WriteCSV over the in-memory dataset.
func TestGenerateMatchesOracle(t *testing.T) {
	cfg := testGenConfig(7)
	_, want := oracleCSV(t, cfg)
	var got bytes.Buffer
	if err := Generate(GenConfig{Gen: cfg}, &got); err != nil {
		t.Fatalf("stream Generate: %v", err)
	}
	if !bytes.Equal(got.Bytes(), want) {
		t.Fatalf("stream CSV differs from oracle (%d vs %d bytes)", got.Len(), len(want))
	}
}

// TestGenerateWorkerInvariance: the fan-out width must not change a byte.
func TestGenerateWorkerInvariance(t *testing.T) {
	cfg := testGenConfig(3)
	outs := make([][]byte, 0, 3)
	for _, workers := range []int{1, 4, 9} {
		c := cfg
		c.Workers = workers
		var buf bytes.Buffer
		if err := Generate(GenConfig{Gen: c}, &buf); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		outs = append(outs, buf.Bytes())
	}
	for i := 1; i < len(outs); i++ {
		if !bytes.Equal(outs[0], outs[i]) {
			t.Fatalf("output depends on worker count (variant %d differs)", i)
		}
	}
}

func TestGenerateValidatesConfig(t *testing.T) {
	bad := testGenConfig(1)
	bad.Days = 0
	if err := Generate(GenConfig{Gen: bad}, &bytes.Buffer{}); err == nil {
		t.Error("zero-day window accepted")
	}
}

// renderReport serializes a report the way the CLI does, so comparing
// streams and oracle reduces to comparing bytes.
func renderReport(t *testing.T, r *cdn.Report) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := r.Render(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestAnalyzeMatchesOracle: the sharded streaming analysis must render the
// exact report the in-memory oracle produces, with and without the
// per-operator table, at several shard widths.
func TestAnalyzeMatchesOracle(t *testing.T) {
	cfg := testGenConfig(7)
	ds, csv := oracleCSV(t, cfg)
	in := filepath.Join(t.TempDir(), "assocs.csv")
	if err := os.WriteFile(in, csv, 0o644); err != nil {
		t.Fatal(err)
	}
	const threshold = 350
	wantTable := renderReport(t, cdn.BuildReport(ds.Assocs, ds.BGP, threshold, nil))
	wantPlain := renderReport(t, cdn.BuildReport(ds.Assocs, nil, threshold, nil))

	for _, shards := range []int{1, 5, 64} {
		rep, err := Analyze(AnalyzeConfig{In: in, Shards: shards, Threshold: threshold, Table: ds.BGP})
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if got := renderReport(t, rep); !bytes.Equal(got, wantTable) {
			t.Fatalf("shards=%d: report differs from oracle:\n got: %s\nwant: %s", shards, got, wantTable)
		}
	}
	rep, err := Analyze(AnalyzeConfig{In: in, Threshold: threshold})
	if err != nil {
		t.Fatal(err)
	}
	if got := renderReport(t, rep); !bytes.Equal(got, wantPlain) {
		t.Fatalf("no-table report differs from oracle:\n got: %s\nwant: %s", got, wantPlain)
	}
}

// TestAnalyzeWorkerInvariance: shard fan-out width must not change the
// report.
func TestAnalyzeWorkerInvariance(t *testing.T) {
	cfg := testGenConfig(5)
	ds, csv := oracleCSV(t, cfg)
	in := filepath.Join(t.TempDir(), "assocs.csv")
	if err := os.WriteFile(in, csv, 0o644); err != nil {
		t.Fatal(err)
	}
	want := renderReport(t, cdn.BuildReport(ds.Assocs, ds.BGP, 350, nil))
	for _, workers := range []int{1, 4} {
		rep, err := Analyze(AnalyzeConfig{In: in, Shards: 16, Workers: workers, Threshold: 350, Table: ds.BGP})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if got := renderReport(t, rep); !bytes.Equal(got, want) {
			t.Fatalf("workers=%d: report differs from oracle", workers)
		}
	}
}

func TestAnalyzeNoInput(t *testing.T) {
	if _, err := Analyze(AnalyzeConfig{}); err == nil {
		t.Error("empty input path accepted")
	}
}

func testKey(seed int64) checkpoint.Key {
	return checkpoint.Key{Seed: seed, ConfigHash: "stream-test", Code: checkpoint.CodeVersion()}
}

// TestGenerateKillAndResume: a generate run killed at a journal sync point
// must resume from its spill files to byte-identical output.
func TestGenerateKillAndResume(t *testing.T) {
	defer checkpoint.SetCrashPlan(0, false)
	cfg := testGenConfig(9)
	_, want := oracleCSV(t, cfg)

	dir := t.TempDir()
	run, err := checkpoint.Open(dir, testKey(9), json.RawMessage(`{}`), nil)
	if err != nil {
		t.Fatal(err)
	}
	killed := cfg
	killed.Checkpoint = run
	checkpoint.SetCrashPlan(5, false)
	genErr := Generate(GenConfig{Gen: killed}, &bytes.Buffer{})
	checkpoint.SetCrashPlan(0, false)
	if !errors.Is(genErr, checkpoint.ErrCrashInjected) {
		t.Fatalf("err = %v, want ErrCrashInjected", genErr)
	}
	run.Close()

	resumed, err := checkpoint.Open(dir, testKey(9), json.RawMessage(`{}`), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resumed.Close()
	if !resumed.Resumed() {
		t.Fatal("second open did not resume")
	}
	again := cfg
	again.Checkpoint = resumed
	again.Workers = 3 // resume at a different width
	var got bytes.Buffer
	if err := Generate(GenConfig{Gen: again}, &got); err != nil {
		t.Fatalf("resumed Generate: %v", err)
	}
	if !bytes.Equal(got.Bytes(), want) {
		t.Fatal("resumed output differs from uninterrupted run")
	}
}

// TestAnalyzeKillAndResume: an analyze run killed mid-shard must resume —
// reusing validated spill files, recomputing invalidated ones — to the
// oracle's exact report.
func TestAnalyzeKillAndResume(t *testing.T) {
	defer checkpoint.SetCrashPlan(0, false)
	cfg := testGenConfig(13)
	ds, csv := oracleCSV(t, cfg)
	base := t.TempDir()
	in := filepath.Join(base, "assocs.csv")
	if err := os.WriteFile(in, csv, 0o644); err != nil {
		t.Fatal(err)
	}
	want := renderReport(t, cdn.BuildReport(ds.Assocs, ds.BGP, 350, nil))

	ckpt := filepath.Join(base, "ckpt")
	run, err := checkpoint.Open(ckpt, testKey(13), json.RawMessage(`{}`), nil)
	if err != nil {
		t.Fatal(err)
	}
	acfg := AnalyzeConfig{In: in, Shards: 16, Threshold: 350, Table: ds.BGP, Checkpoint: run}
	checkpoint.SetCrashPlan(7, true)
	_, anErr := Analyze(acfg)
	checkpoint.SetCrashPlan(0, false)
	if !errors.Is(anErr, checkpoint.ErrCrashInjected) {
		t.Fatalf("err = %v, want ErrCrashInjected", anErr)
	}
	run.Close()

	resumed, err := checkpoint.Open(ckpt, testKey(13), json.RawMessage(`{}`), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resumed.Close()
	acfg.Checkpoint = resumed
	acfg.Workers = 2
	rep, err := Analyze(acfg)
	if err != nil {
		t.Fatalf("resumed Analyze: %v", err)
	}
	if got := renderReport(t, rep); !bytes.Equal(got, want) {
		t.Fatalf("resumed report differs from oracle:\n got: %s\nwant: %s", got, want)
	}
}

// TestGenerateMetricsResumeInvariant: the streaming generate's spans,
// counters, and throughput histograms must be identical whether the run
// completed in one shot or was killed and resumed.
func TestGenerateMetricsResumeInvariant(t *testing.T) {
	defer checkpoint.SetCrashPlan(0, false)
	cfg := testGenConfig(29)

	run := func(dir string, killAt int) (obs.Snapshot, error) {
		r, err := checkpoint.Open(dir, testKey(29), json.RawMessage(`{}`), nil)
		if err != nil {
			t.Fatal(err)
		}
		defer r.Close()
		o := obs.NewObserver()
		r.SetObserver(o)
		c := cfg
		c.Checkpoint = r
		c.Obs = o
		if killAt > 0 {
			checkpoint.SetCrashPlan(killAt, false)
			defer checkpoint.SetCrashPlan(0, false)
		}
		err = Generate(GenConfig{Gen: c}, &bytes.Buffer{})
		return o.Snapshot(), err
	}

	fresh, err := run(t.TempDir(), 0)
	if err != nil {
		t.Fatalf("uninterrupted run: %v", err)
	}
	dir := t.TempDir()
	if _, err := run(dir, 6); !errors.Is(err, checkpoint.ErrCrashInjected) {
		t.Fatalf("killed run: err = %v, want ErrCrashInjected", err)
	}
	resumed, err := run(dir, 0)
	if err != nil {
		t.Fatalf("resumed run: %v", err)
	}
	if !fresh.Equal(resumed) {
		t.Fatalf("resumed metrics differ from uninterrupted run:\nfresh:   %+v\nresumed: %+v", fresh, resumed)
	}
}

// TestResumeRecomputesTamperedSpill: a spill file that changed size since
// it was journaled fails validation on resume and is recomputed, not
// trusted.
func TestResumeRecomputesTamperedSpill(t *testing.T) {
	defer checkpoint.SetCrashPlan(0, false)
	cfg := testGenConfig(21)
	_, want := oracleCSV(t, cfg)

	dir := t.TempDir()
	run, err := checkpoint.Open(dir, testKey(21), json.RawMessage(`{}`), nil)
	if err != nil {
		t.Fatal(err)
	}
	killed := cfg
	killed.Checkpoint = run
	checkpoint.SetCrashPlan(4, false)
	genErr := Generate(GenConfig{Gen: killed}, &bytes.Buffer{})
	checkpoint.SetCrashPlan(0, false)
	if !errors.Is(genErr, checkpoint.ErrCrashInjected) {
		t.Fatalf("err = %v, want ErrCrashInjected", genErr)
	}
	run.Close()

	// Truncate every journaled spill: the metas replay but their files
	// no longer validate, so the units must recompute.
	spills, err := filepath.Glob(filepath.Join(dir, "spill", "gen-*.bin"))
	if err != nil || len(spills) == 0 {
		t.Fatalf("no spill files to tamper with (err=%v)", err)
	}
	for _, p := range spills {
		if err := os.Truncate(p, 1); err != nil {
			t.Fatal(err)
		}
	}

	resumed, err := checkpoint.Open(dir, testKey(21), json.RawMessage(`{}`), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resumed.Close()
	again := cfg
	again.Checkpoint = resumed
	var got bytes.Buffer
	if err := Generate(GenConfig{Gen: again}, &got); err != nil {
		t.Fatalf("resumed Generate: %v", err)
	}
	if !bytes.Equal(got.Bytes(), want) {
		t.Fatal("resume with tampered spills produced wrong output")
	}
}
