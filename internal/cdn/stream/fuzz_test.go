package stream

import (
	"bytes"
	"errors"
	"testing"

	"dynamips/internal/cdn"
)

// FuzzChunkCodec feeds arbitrary bytes to the chunk reader: it must never
// panic, never allocate unboundedly, and fail only with the codec's own
// error values (or a clean end of stream). Valid prefixes decode exactly
// the records the writer framed.
func FuzzChunkCodec(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte(magic))
	f.Add([]byte("DYNCDN1\nxxxx"))
	var seed bytes.Buffer
	w, err := NewWriter(&seed)
	if err != nil {
		f.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := w.Append(cdn.Association{K24: uint32(i), K64: uint64(i) << 40, Day: uint16(i), Hits: uint32(i * i)}); err != nil {
			f.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.Bytes())
	f.Add(seed.Bytes()[:seed.Len()-1])
	f.Add(append(append([]byte{}, seed.Bytes()...), 0xFF, 0xFF, 0xFF, 0xFF))

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			if !errors.Is(err, ErrBadMagic) {
				t.Fatalf("NewReader: unexpected error class: %v", err)
			}
			return
		}
		var recs []cdn.Association
		for {
			a, ok, err := r.Next()
			if err != nil {
				if !errors.Is(err, ErrCorrupt) {
					t.Fatalf("Next: unexpected error class: %v", err)
				}
				return
			}
			if !ok {
				break
			}
			if len(recs) < 1<<16 {
				recs = append(recs, a)
			}
		}
		// A cleanly-decoded stream must re-encode to a stream that decodes
		// to the same records (chunk boundaries may differ from the input's).
		var re bytes.Buffer
		w, err := NewWriter(&re)
		if err != nil {
			t.Fatal(err)
		}
		for _, a := range recs {
			if err := w.Append(a); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		r2, err := NewReader(bytes.NewReader(re.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		for i := range recs {
			a, ok, err := r2.Next()
			if err != nil || !ok || a != recs[i] {
				t.Fatalf("re-decode diverged at record %d (ok=%v err=%v)", i, ok, err)
			}
		}
	})
}

// FuzzScanCSV exercises the hot-path CSV parser (fast paths plus their
// netip/strconv fallbacks) on arbitrary input: it must never panic, and
// every line it accepts must re-encode canonically and re-parse to the
// same association.
func FuzzScanCSV(f *testing.F) {
	f.Add([]byte(""))
	f.Add([]byte("# v4_prefix24,v6_prefix64,day,hits\n81.16.10.0/24,2003:1000:0:100::/64,3,12\n"))
	f.Add([]byte("1.2.3.0/24,::/64,0,0\n"))
	f.Add([]byte("1.2.3.0/24,2001:db8::/64,65535,4294967295\n"))
	f.Add([]byte("01.2.3.0/24,::/64,0,0\n"))
	f.Add([]byte("1.2.3.4/24,2001:0db8:0:0::/64,9,9\n"))
	f.Add([]byte("256.2.3.0/24,::/64,1,1\n"))
	f.Add([]byte("1.2.3.0/24,::/64,99999,1\n"))
	f.Add([]byte("a,b,c\n"))

	f.Fuzz(func(t *testing.T, data []byte) {
		var accepted []cdn.Association
		err := cdn.ScanCSV(bytes.NewReader(data), func(a cdn.Association) error {
			if len(accepted) < 1<<12 {
				accepted = append(accepted, a)
			}
			return nil
		})
		if err != nil {
			return
		}
		// Round-trip: canonical encoding of everything accepted parses back
		// verbatim.
		var buf bytes.Buffer
		if err := cdn.WriteCSV(&buf, accepted); err != nil {
			t.Fatal(err)
		}
		got, err := cdn.ReadCSV(&buf)
		if err != nil {
			t.Fatalf("round-trip rejected canonical output: %v", err)
		}
		if len(got) != len(accepted) {
			t.Fatalf("round-trip count %d != %d", len(got), len(accepted))
		}
		for i := range got {
			if got[i] != accepted[i] {
				t.Fatalf("round-trip record %d: %+v != %+v", i, got[i], accepted[i])
			}
		}
	})
}
