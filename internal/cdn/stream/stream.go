// Package stream is the sharded streaming CDN pipeline: generate and
// analyze paths that never materialize the full association list, sized
// for the paper's 32.7-billion-tuple dataset. Associations travel in a
// fixed-width binary chunk codec (18 bytes per record, CRC-32C per
// chunk) instead of CSV; the analyze path hash-partitions records by /24
// key into bounded shards, aggregates per shard, and k-way-merges
// per-shard sorted runs to recover the global episode order. Shards are
// checkpoint-journal units, so a half-finished run resumes from its
// journal. The in-memory path (cdn.Generate, cdn.BuildReport) stays as
// the oracle: for the same inputs this package produces byte-identical
// output at any worker count.
//
// The whole package is on dynalint's hot-path allocation budget
// (HotPackages): no fmt, no capturing closures, no per-record
// conversions.
package stream

import (
	"bufio"
	"errors"
	"os"
	"path/filepath"

	"dynamips/internal/cdn"
	"dynamips/internal/checkpoint"
)

var (
	errNoInput      = errors.New("stream: no input path")
	errSpillChanged = errors.New("stream: spill file missing or resized since it was journaled")
)

// wrapErr contextualizes an error without fmt (hot-path rule); it
// supports errors.Is/As through Unwrap.
type wrapErr struct {
	msg string
	err error
}

func (e *wrapErr) Error() string { return e.msg + ": " + e.err.Error() }
func (e *wrapErr) Unwrap() error { return e.err }

func wrap(msg string, err error) error { return &wrapErr{msg: msg, err: err} }

// shardOf maps a /24 key to its shard: a SplitMix64 finalizer over the
// key, reduced modulo the shard count. The multiplicative mixing spreads
// the sequential /24 pools each operator carves across all shards, so no
// shard inherits a whole operator.
func shardOf(k24 uint32, shards int) int {
	x := uint64(k24) + 0x9E3779B97F4A7C15
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return int(x % uint64(shards))
}

// ensureSpillDir resolves where spill and run files live: an explicit
// directory wins, then the checkpoint directory's spill/ subdirectory
// (spills must survive the process for a resume to validate them), then
// a temp directory the caller removes (temp reports that case).
func ensureSpillDir(explicit string, run *checkpoint.Run) (dir string, temp bool, err error) {
	switch {
	case explicit != "":
		return explicit, false, os.MkdirAll(explicit, 0o755)
	case run != nil:
		dir = filepath.Join(run.Dir(), "spill")
		return dir, false, os.MkdirAll(dir, 0o755)
	default:
		dir, err = os.MkdirTemp("", "dynamips-stream-")
		return dir, true, err
	}
}

// spillFile is an open spill or run file being written through the chunk
// codec.
type spillFile struct {
	f  *os.File
	bw *bufio.Writer
	cw *Writer
}

func createSpill(path string) (*spillFile, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, wrap("stream: creating spill file", err)
	}
	bw := bufio.NewWriterSize(f, 1<<16)
	cw, err := NewWriter(bw)
	if err != nil {
		f.Close()
		return nil, err
	}
	return &spillFile{f: f, bw: bw, cw: cw}, nil
}

// finish flushes, syncs, and closes the file, returning its final size.
// The size goes into the journaled unit meta: a resume re-validates it
// before trusting the file (validateSpill).
func (s *spillFile) finish() (int64, error) {
	if err := s.cw.Flush(); err != nil {
		s.f.Close()
		return 0, err
	}
	if err := s.bw.Flush(); err != nil {
		s.f.Close()
		return 0, err
	}
	if err := s.f.Sync(); err != nil {
		s.f.Close()
		return 0, err
	}
	info, err := s.f.Stat()
	if err != nil {
		s.f.Close()
		return 0, err
	}
	if err := s.f.Close(); err != nil {
		return 0, err
	}
	return info.Size(), nil
}

// abort closes the file without flushing; a recompute will truncate it.
func (s *spillFile) abort() { s.f.Close() }

// openSpill opens a spill file for chunk-codec reading. The caller owns
// closing the returned file.
func openSpill(path string) (*os.File, *Reader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, wrap("stream: opening spill file", err)
	}
	r, err := NewReader(bufio.NewReaderSize(f, 1<<16))
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	return f, r, nil
}

// validateSpill checks a journaled spill file is still present at its
// recorded size. A mismatch makes the journal entry undecodable, which
// checkpoint.Stage answers by recomputing the unit.
func validateSpill(path string, size int64) error {
	info, err := os.Stat(path)
	if err != nil {
		return err
	}
	if info.Size() != size {
		return errSpillChanged
	}
	return nil
}

// readSpill loads a whole spill file (one shard — the bounded unit of
// the analyze path) into memory, preallocated from the journaled record
// count.
func readSpill(path string, count int64) ([]cdn.Association, error) {
	f, r, err := openSpill(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	out := make([]cdn.Association, 0, int(count))
	for {
		a, ok, err := r.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			return out, nil
		}
		out = append(out, a)
	}
}

// unitBounds buckets per-unit record counts for the throughput
// histograms (decades from 10² to 10⁸).
var unitBounds = []int64{100, 1e3, 1e4, 1e5, 1e6, 1e7, 1e8}
