package stream

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
	"io"

	"dynamips/internal/cdn"
)

// The chunk file format:
//
//	file  := magic chunk*
//	magic := "DYNCDN1\n" (8 bytes)
//	chunk := count u32 | crc u32 | count × record   (big-endian)
//
// record is the fixed-width Association encoding — K24 u32, K64 u64,
// Day u16, Hits u32: 18 bytes, under a quarter of the average CSV row.
// crc is the CRC-32C of the chunk's records; a reader detects torn or
// bit-rotted spill files at chunk granularity instead of silently
// aggregating garbage. EOF is clean only at a chunk boundary.
const (
	magic      = "DYNCDN1\n"
	recordSize = 18
	// chunkRecords bounds writer buffering (~72 KiB per open spill).
	chunkRecords = 4096
	chunkHeader  = 8
	// maxChunkRecords caps what a reader will allocate for one chunk, so
	// a corrupt count can't balloon memory.
	maxChunkRecords = 1 << 20
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

var (
	// ErrBadMagic reports a chunk file that does not start with the
	// format magic.
	ErrBadMagic = errors.New("stream: bad chunk file magic")
	// ErrCorrupt reports a torn or checksum-failing chunk.
	ErrCorrupt = errors.New("stream: corrupt chunk")
)

// Writer encodes associations into the chunk format. Records accumulate
// in a fixed buffer and flush as CRC-framed chunks; nothing allocates
// per record.
type Writer struct {
	w   io.Writer
	buf []byte // chunkHeader bytes reserved, then packed records
	n   int    // records buffered
}

// NewWriter writes the file magic and returns a chunk writer.
func NewWriter(w io.Writer) (*Writer, error) {
	if _, err := io.WriteString(w, magic); err != nil {
		return nil, wrap("stream: writing magic", err)
	}
	return &Writer{w: w, buf: make([]byte, chunkHeader, chunkHeader+chunkRecords*recordSize)}, nil
}

// Append buffers one association, flushing a full chunk when reached.
func (w *Writer) Append(a cdn.Association) error {
	w.buf = appendRecord(w.buf, a)
	w.n++
	if w.n >= chunkRecords {
		return w.flushChunk()
	}
	return nil
}

// Flush writes any buffered partial chunk. Call it before closing the
// underlying writer; the Writer stays usable afterwards.
func (w *Writer) Flush() error { return w.flushChunk() }

func (w *Writer) flushChunk() error {
	if w.n == 0 {
		return nil
	}
	payload := w.buf[chunkHeader:]
	binary.BigEndian.PutUint32(w.buf[0:4], uint32(w.n))
	binary.BigEndian.PutUint32(w.buf[4:8], crc32.Checksum(payload, castagnoli))
	if _, err := w.w.Write(w.buf); err != nil {
		return wrap("stream: writing chunk", err)
	}
	w.buf = w.buf[:chunkHeader]
	w.n = 0
	return nil
}

func appendRecord(dst []byte, a cdn.Association) []byte {
	return append(dst,
		byte(a.K24>>24), byte(a.K24>>16), byte(a.K24>>8), byte(a.K24),
		byte(a.K64>>56), byte(a.K64>>48), byte(a.K64>>40), byte(a.K64>>32),
		byte(a.K64>>24), byte(a.K64>>16), byte(a.K64>>8), byte(a.K64),
		byte(a.Day>>8), byte(a.Day),
		byte(a.Hits>>24), byte(a.Hits>>16), byte(a.Hits>>8), byte(a.Hits),
	)
}

// Reader decodes a chunk file record by record, verifying each chunk's
// CRC before yielding from it.
type Reader struct {
	r   io.Reader
	buf []byte
	pos int
}

// NewReader checks the file magic and returns a chunk reader.
func NewReader(r io.Reader) (*Reader, error) {
	var m [len(magic)]byte
	if _, err := io.ReadFull(r, m[:]); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return nil, ErrBadMagic
		}
		return nil, wrap("stream: reading magic", err)
	}
	for i := 0; i < len(magic); i++ {
		if m[i] != magic[i] {
			return nil, ErrBadMagic
		}
	}
	return &Reader{r: r}, nil
}

// Next returns the next association; ok is false at a clean end of file.
func (r *Reader) Next() (a cdn.Association, ok bool, err error) {
	if r.pos >= len(r.buf) {
		if err := r.fill(); err != nil {
			if err == io.EOF {
				return cdn.Association{}, false, nil
			}
			return cdn.Association{}, false, err
		}
	}
	b := r.buf[r.pos : r.pos+recordSize]
	r.pos += recordSize
	return cdn.Association{
		K24:  binary.BigEndian.Uint32(b[0:4]),
		K64:  binary.BigEndian.Uint64(b[4:12]),
		Day:  binary.BigEndian.Uint16(b[12:14]),
		Hits: binary.BigEndian.Uint32(b[14:18]),
	}, true, nil
}

func (r *Reader) fill() error {
	var hdr [chunkHeader]byte
	if _, err := io.ReadFull(r.r, hdr[:]); err != nil {
		if err == io.EOF {
			return io.EOF
		}
		if err == io.ErrUnexpectedEOF {
			return ErrCorrupt
		}
		return wrap("stream: reading chunk header", err)
	}
	count := binary.BigEndian.Uint32(hdr[0:4])
	if count == 0 || count > maxChunkRecords {
		return ErrCorrupt
	}
	need := int(count) * recordSize
	if cap(r.buf) < need {
		r.buf = make([]byte, need)
	}
	r.buf = r.buf[:need]
	if _, err := io.ReadFull(r.r, r.buf); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return ErrCorrupt
		}
		return wrap("stream: reading chunk", err)
	}
	if crc32.Checksum(r.buf, castagnoli) != binary.BigEndian.Uint32(hdr[4:8]) {
		return ErrCorrupt
	}
	r.pos = 0
	return nil
}
