package stream

import (
	"os"

	"dynamips/internal/cdn"
)

// cmpEpisode is the analysis total order — (K64, Day, K24, Hits) — the
// same one cdn.Episodes sorts by. Per-shard runs are sorted with it and
// the merger re-establishes it globally.
func cmpEpisode(a, b cdn.Association) int {
	switch {
	case a.K64 != b.K64:
		if a.K64 < b.K64 {
			return -1
		}
		return 1
	case a.Day != b.Day:
		if a.Day < b.Day {
			return -1
		}
		return 1
	case a.K24 != b.K24:
		if a.K24 < b.K24 {
			return -1
		}
		return 1
	case a.Hits != b.Hits:
		if a.Hits < b.Hits {
			return -1
		}
		return 1
	}
	return 0
}

// cmpK24K64 groups a shard by (/24, /64) for the degree summaries.
func cmpK24K64(a, b cdn.Association) int {
	switch {
	case a.K24 != b.K24:
		if a.K24 < b.K24 {
			return -1
		}
		return 1
	case a.K64 != b.K64:
		if a.K64 < b.K64 {
			return -1
		}
		return 1
	}
	return 0
}

// merger k-way-merges per-shard sorted run files back into the global
// (K64, Day, K24, Hits) order. The heap is hand-rolled: container/heap
// would box every operation (hot-path rule). Ties across sources cannot
// occur — equal tuples share a K24 and therefore a shard — but the
// comparator still breaks them by source index so the merge order is a
// total order regardless.
type merger struct {
	files []*os.File
	rs    []*Reader
	cur   []cdn.Association
	heap  []int // source indices, min at heap[0]
}

// newMerger opens every run file and primes the heap. On error it closes
// whatever it opened.
func newMerger(paths []string) (*merger, error) {
	m := &merger{
		files: make([]*os.File, 0, len(paths)),
		rs:    make([]*Reader, 0, len(paths)),
		cur:   make([]cdn.Association, 0, len(paths)),
	}
	for i := 0; i < len(paths); i++ {
		f, r, err := openSpill(paths[i])
		if err != nil {
			m.close()
			return nil, err
		}
		m.files = append(m.files, f)
		m.rs = append(m.rs, r)
		m.cur = append(m.cur, cdn.Association{})
		a, ok, err := r.Next()
		if err != nil {
			m.close()
			return nil, err
		}
		if ok {
			m.cur[i] = a
			m.heap = append(m.heap, i)
		}
	}
	for i := len(m.heap)/2 - 1; i >= 0; i-- {
		m.down(i)
	}
	return m, nil
}

func (m *merger) close() {
	for _, f := range m.files {
		f.Close()
	}
}

func (m *merger) less(x, y int) bool {
	if c := cmpEpisode(m.cur[x], m.cur[y]); c != 0 {
		return c < 0
	}
	return x < y
}

func (m *merger) down(i int) {
	for {
		l := 2*i + 1
		if l >= len(m.heap) {
			return
		}
		min := l
		if r := l + 1; r < len(m.heap) && m.less(m.heap[r], m.heap[l]) {
			min = r
		}
		if !m.less(m.heap[min], m.heap[i]) {
			return
		}
		m.heap[i], m.heap[min] = m.heap[min], m.heap[i]
		i = min
	}
}

// next yields the globally smallest pending record; ok is false once
// every source is drained.
func (m *merger) next() (cdn.Association, bool, error) {
	if len(m.heap) == 0 {
		return cdn.Association{}, false, nil
	}
	src := m.heap[0]
	out := m.cur[src]
	a, ok, err := m.rs[src].Next()
	if err != nil {
		return cdn.Association{}, false, err
	}
	if ok {
		m.cur[src] = a
	} else {
		last := len(m.heap) - 1
		m.heap[0] = m.heap[last]
		m.heap = m.heap[:last]
	}
	m.down(0)
	return out, true, nil
}
