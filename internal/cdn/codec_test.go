package cdn

import (
	"bytes"
	"strings"
	"testing"
)

func TestCSVRoundTrip(t *testing.T) {
	cfg := DefaultGenConfig(5)
	cfg.Scale = 0.03
	ds, err := Generate(cfg)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, ds.Assocs); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatalf("ReadCSV: %v", err)
	}
	if len(got) != len(ds.Assocs) {
		t.Fatalf("round trip %d of %d associations", len(got), len(ds.Assocs))
	}
	for i := range got {
		if got[i] != ds.Assocs[i] {
			t.Fatalf("association %d differs: %+v vs %+v", i, got[i], ds.Assocs[i])
		}
	}
}

func TestReadCSVSkipsCommentsAndBlanks(t *testing.T) {
	in := `# header
81.16.10.0/24,2003:1000:0:100::/64,3,9

# another comment
81.16.11.0/24,2003:1000:0:200::/64,4,1
`
	got, err := ReadCSV(strings.NewReader(in))
	if err != nil {
		t.Fatalf("ReadCSV: %v", err)
	}
	if len(got) != 2 || got[0].Day != 3 || got[1].Hits != 1 {
		t.Fatalf("got %+v", got)
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := []string{
		"81.16.10.0/24,2003::/64,3",         // too few fields
		"81.16.10.0/23,2003::/64,3,1",       // wrong v4 length
		"2003::/64,2003::/64,3,1",           // v6 where v4 expected
		"81.16.10.0/24,2003::/56,3,1",       // wrong v6 length
		"81.16.10.0/24,10.0.0.0/24,3,1",     // v4 where v6 expected
		"81.16.10.0/24,2003::/64,notaday,1", // bad day
		"81.16.10.0/24,2003::/64,3,nothits", // bad hits
		"81.16.10.0/24,2003::/64,99999,1",   // day overflows uint16
		"garbage,2003::/64,3,1",             // unparsable prefix
	}
	for _, c := range cases {
		if _, err := ReadCSV(strings.NewReader(c)); err == nil {
			t.Errorf("ReadCSV(%q) did not fail", c)
		}
	}
}
