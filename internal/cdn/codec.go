package cdn

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"net/netip"
	"strconv"

	"dynamips/internal/netutil"
)

// csvHeader is the interchange format's comment header.
const csvHeader = "# v4_prefix24,v6_prefix64,day,hits"

// WriteCSV writes associations as "v4_prefix24,v6_prefix64,day,hits"
// lines with a header comment, the interchange format of
// `dynamips gen cdn`. Rows are formatted with AppendCSVRow into a reused
// buffer, so the writer allocates nothing per record.
func WriteCSV(w io.Writer, assocs []Association) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(csvHeader + "\n"); err != nil {
		return fmt.Errorf("cdn: writing header: %w", err)
	}
	buf := make([]byte, 0, 64)
	for _, a := range assocs {
		buf = AppendCSVRow(buf[:0], a)
		if _, err := bw.Write(buf); err != nil {
			return fmt.Errorf("cdn: writing association: %w", err)
		}
	}
	return bw.Flush()
}

// WriteCSVHeader writes just the header comment; the streaming pipeline
// uses it before concatenating per-shard row buffers.
func WriteCSVHeader(w io.Writer) error {
	if _, err := io.WriteString(w, csvHeader+"\n"); err != nil {
		return fmt.Errorf("cdn: writing header: %w", err)
	}
	return nil
}

// AppendCSVRow appends one association's CSV line (newline included) to
// dst and returns the extended slice. The output is byte-identical to
// formatting via netip's Prefix.String: the /24 prints as dotted decimal
// and the /64 — whose low 64 bits are zero by construction — always
// compresses its trailing zero run per RFC 5952, since that run spans at
// least four hextets while any internal run spans at most three.
//
//lint:hotpath
func AppendCSVRow(dst []byte, a Association) []byte {
	dst = appendP24(dst, a.K24)
	dst = append(dst, ',')
	dst = appendP64(dst, a.K64)
	dst = append(dst, ',')
	dst = strconv.AppendUint(dst, uint64(a.Day), 10)
	dst = append(dst, ',')
	dst = strconv.AppendUint(dst, uint64(a.Hits), 10)
	return append(dst, '\n')
}

// appendP24 appends "a.b.c.0/24" for the /24 key (the network address
// K24<<8, which always ends in a zero octet).
//
//lint:hotpath
func appendP24(dst []byte, k24 uint32) []byte {
	v := k24 << 8
	dst = strconv.AppendUint(dst, uint64(v>>24), 10)
	dst = append(dst, '.')
	dst = strconv.AppendUint(dst, uint64(v>>16&0xff), 10)
	dst = append(dst, '.')
	dst = strconv.AppendUint(dst, uint64(v>>8&0xff), 10)
	return append(dst, ".0/24"...)
}

// appendP64 appends the RFC 5952 canonical "h0:h1:h2:h3::/64" form for
// the /64 key: hextets up to the last non-zero one, then the compressed
// trailing run ("::/64" alone when the key is zero).
//
//lint:hotpath
func appendP64(dst []byte, k64 uint64) []byte {
	last := -1
	for i := 0; i < 4; i++ {
		if k64>>(48-16*i)&0xffff != 0 {
			last = i
		}
	}
	for i := 0; i <= last; i++ {
		if i > 0 {
			dst = append(dst, ':')
		}
		dst = strconv.AppendUint(dst, k64>>(48-16*i)&0xffff, 16)
	}
	return append(dst, "::/64"...)
}

// ScanCSV streams the association CSV format to fn one record at a time,
// never materializing the dataset — the entry point sized for paper-scale
// inputs. Blank lines and lines starting with '#' are skipped. Prefixes
// longer than the aggregation granularity are rejected. A non-nil error
// from fn aborts the scan.
//
// Rows in the canonical emitted form parse by direct byte indexing; any
// other accepted spelling (unmasked prefixes, uppercase or zero-padded
// hextets, uncompressed /64s) falls back to netip, keeping ReadCSV's
// accept/reject semantics exactly.
func ScanCSV(r io.Reader, fn func(Association) error) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 8*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		text := bytes.TrimSpace(sc.Bytes())
		if len(text) == 0 || text[0] == '#' {
			continue
		}
		a, err := parseCSVRow(text, line)
		if err != nil {
			return err
		}
		if err := fn(a); err != nil {
			return err
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("cdn: reading associations: %w", err)
	}
	return nil
}

// ReadCSV parses the association CSV format into memory. Blank lines and
// lines starting with '#' are skipped. Prefixes longer than the
// aggregation granularity are rejected.
func ReadCSV(r io.Reader) ([]Association, error) {
	var out []Association
	err := ScanCSV(r, func(a Association) error {
		out = append(out, a)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// parseCSVRow parses one non-comment CSV line. Fast paths cover the
// canonical emitted spellings; everything else goes through the same
// netip/strconv checks the original parser used, so the accepted language
// (and its error text) is unchanged.
func parseCSVRow(text []byte, line int) (Association, error) {
	var f [4][]byte
	rest := text
	for i := 0; i < 3; i++ {
		j := bytes.IndexByte(rest, ',')
		if j < 0 {
			return Association{}, fmt.Errorf("cdn: line %d: want 4 fields, got %d", line, i+1)
		}
		f[i] = rest[:j]
		rest = rest[j+1:]
	}
	if bytes.IndexByte(rest, ',') >= 0 {
		return Association{}, fmt.Errorf("cdn: line %d: want 4 fields, got %d", line, 4+bytes.Count(rest, []byte{','}))
	}
	f[3] = rest

	k24, ok := parseP24Fast(f[0])
	if !ok {
		p24, err := netip.ParsePrefix(string(f[0]))
		if err != nil || p24.Bits() != 24 || !p24.Addr().Is4() {
			return Association{}, fmt.Errorf("cdn: line %d: bad IPv4 /24 %q", line, f[0])
		}
		k24 = netutil.U32(p24.Masked().Addr()) >> 8
	}
	k64, ok := parseP64Fast(f[1])
	if !ok {
		p64, err := netip.ParsePrefix(string(f[1]))
		if err != nil || p64.Bits() != 64 || !p64.Addr().Is6() || p64.Addr().Unmap().Is4() {
			return Association{}, fmt.Errorf("cdn: line %d: bad IPv6 /64 %q", line, f[1])
		}
		k64 = netutil.Key64(p64.Masked().Addr())
	}
	day, ok := parseUintFast(f[2], 1<<16-1)
	if !ok {
		v, err := strconv.ParseUint(string(f[2]), 10, 16)
		if err != nil {
			return Association{}, fmt.Errorf("cdn: line %d: bad day: %w", line, err)
		}
		day = v
	}
	hits, ok := parseUintFast(f[3], 1<<32-1)
	if !ok {
		v, err := strconv.ParseUint(string(f[3]), 10, 32)
		if err != nil {
			return Association{}, fmt.Errorf("cdn: line %d: bad hits: %w", line, err)
		}
		hits = v
	}
	return Association{K24: k24, K64: k64, Day: uint16(day), Hits: uint32(hits)}, nil
}

// parseP24Fast parses "a.b.c.d/24" with canonical decimal octets (no
// leading zeros, values <= 255), returning the /24 key. Anything else —
// including spellings netip would still accept — reports !ok for the
// fallback path; what it does accept yields the same masked key netip
// would.
//
//lint:hotpath
func parseP24Fast(s []byte) (uint32, bool) {
	var v uint32
	for i := 0; i < 4; i++ {
		if i > 0 {
			if len(s) == 0 || s[0] != '.' {
				return 0, false
			}
			s = s[1:]
		}
		o, rest, ok := parseOctet(s)
		if !ok {
			return 0, false
		}
		v = v<<8 | o
		s = rest
	}
	if len(s) != 3 || s[0] != '/' || s[1] != '2' || s[2] != '4' {
		return 0, false
	}
	return v >> 8, true
}

// parseOctet parses one canonical decimal octet prefix of s.
//
//lint:hotpath
func parseOctet(s []byte) (uint32, []byte, bool) {
	n := 0
	var v uint32
	for n < len(s) && s[n] >= '0' && s[n] <= '9' {
		v = v*10 + uint32(s[n]-'0')
		n++
		if n > 3 {
			return 0, nil, false
		}
	}
	if n == 0 || v > 255 {
		return 0, nil, false
	}
	if n > 1 && s[0] == '0' { // leading zeros: netip rejects them too
		return 0, nil, false
	}
	return v, s[n:], true
}

// parseP64Fast parses "h0:h1:h2:h3::/64" forms — up to four leading
// hextets, a trailing "::" compression, and the /64 length — covering
// every spelling AppendCSVRow emits. The hextets may carry leading zeros
// or uppercase digits (netip accepts both); dotted or uncompressed forms
// fall back.
//
//lint:hotpath
func parseP64Fast(s []byte) (uint64, bool) {
	var k64 uint64
	for i := 0; i < 4; i++ {
		if len(s) >= 2 && s[0] == ':' && s[1] == ':' {
			break
		}
		if i > 0 {
			if len(s) == 0 || s[0] != ':' {
				return 0, false
			}
			s = s[1:]
		}
		h, rest, ok := parseHextet(s)
		if !ok {
			return 0, false
		}
		k64 |= h << (48 - 16*i)
		s = rest
	}
	if len(s) != 5 || s[0] != ':' || s[1] != ':' || s[2] != '/' || s[3] != '6' || s[4] != '4' {
		return 0, false
	}
	return k64, true
}

// parseHextet parses one 1-4 digit hex hextet prefix of s.
//
//lint:hotpath
func parseHextet(s []byte) (uint64, []byte, bool) {
	n := 0
	var v uint64
	for n < len(s) {
		c := s[n]
		switch {
		case c >= '0' && c <= '9':
			v = v<<4 | uint64(c-'0')
		case c >= 'a' && c <= 'f':
			v = v<<4 | uint64(c-'a'+10)
		case c >= 'A' && c <= 'F':
			v = v<<4 | uint64(c-'A'+10)
		default:
			if n == 0 {
				return 0, nil, false
			}
			return v, s[n:], true
		}
		n++
		if n > 4 {
			return 0, nil, false
		}
	}
	if n == 0 {
		return 0, nil, false
	}
	return v, s[n:], true
}

// parseUintFast parses a plain decimal field (the complete base-10
// unsigned grammar strconv accepts), reporting !ok on any other byte or
// on overflow past max so the caller can route through strconv for the
// error.
//
//lint:hotpath
func parseUintFast(s []byte, max uint64) (uint64, bool) {
	if len(s) == 0 {
		return 0, false
	}
	var v uint64
	for _, c := range s {
		if c < '0' || c > '9' {
			return 0, false
		}
		v = v*10 + uint64(c-'0')
		if v > max {
			return 0, false
		}
	}
	return v, true
}
