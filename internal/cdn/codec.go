package cdn

import (
	"bufio"
	"fmt"
	"io"
	"net/netip"
	"strconv"
	"strings"

	"dynamips/internal/netutil"
)

// WriteCSV writes associations as "v4_prefix24,v6_prefix64,day,hits"
// lines with a header comment, the interchange format of
// `dynamips gen cdn`.
func WriteCSV(w io.Writer, assocs []Association) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, "# v4_prefix24,v6_prefix64,day,hits"); err != nil {
		return fmt.Errorf("cdn: writing header: %w", err)
	}
	for _, a := range assocs {
		if _, err := fmt.Fprintf(bw, "%s,%s,%d,%d\n", a.P24(), a.P64(), a.Day, a.Hits); err != nil {
			return fmt.Errorf("cdn: writing association: %w", err)
		}
	}
	return bw.Flush()
}

// ReadCSV parses the association CSV format. Blank lines and lines
// starting with '#' are skipped. Prefixes longer than the aggregation
// granularity are rejected.
func ReadCSV(r io.Reader) ([]Association, error) {
	var out []Association
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 8*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Split(text, ",")
		if len(fields) != 4 {
			return nil, fmt.Errorf("cdn: line %d: want 4 fields, got %d", line, len(fields))
		}
		p24, err := netip.ParsePrefix(fields[0])
		if err != nil || p24.Bits() != 24 || !p24.Addr().Is4() {
			return nil, fmt.Errorf("cdn: line %d: bad IPv4 /24 %q", line, fields[0])
		}
		p64, err := netip.ParsePrefix(fields[1])
		if err != nil || p64.Bits() != 64 || !p64.Addr().Is6() || p64.Addr().Unmap().Is4() {
			return nil, fmt.Errorf("cdn: line %d: bad IPv6 /64 %q", line, fields[1])
		}
		day, err := strconv.ParseUint(fields[2], 10, 16)
		if err != nil {
			return nil, fmt.Errorf("cdn: line %d: bad day: %w", line, err)
		}
		hits, err := strconv.ParseUint(fields[3], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("cdn: line %d: bad hits: %w", line, err)
		}
		out = append(out, Association{
			K24:  netutil.U32(p24.Masked().Addr()) >> 8,
			K64:  netutil.Key64(p64.Masked().Addr()),
			Day:  uint16(day),
			Hits: uint32(hits),
		})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("cdn: reading associations: %w", err)
	}
	return out, nil
}
