package cdn

import (
	"fmt"
	"io"
	"net/netip"
	"sort"

	"dynamips/internal/bgp"
	"dynamips/internal/core"
	"dynamips/internal/netutil"
	"dynamips/internal/obs"
	"dynamips/internal/sketch"
	"dynamips/internal/stats"
)

// Report is the analyze-cdn summary: every figure the CLI report prints,
// reduced to order-independent aggregates (multiset box stats, histogram
// peaks, bucket counts). Both the in-memory oracle (BuildReport) and the
// sharded streaming pipeline produce one, and Render serializes it — so
// proving the two paths byte-identical reduces to proving their Reports
// equal.
type Report struct {
	Assocs   int
	Episodes int
	// Fixed and Mobile are the episode-duration five-number summaries;
	// a zero N means the population was empty and its line is omitted.
	Fixed  stats.BoxStats
	Mobile stats.BoxStats
	// MobilePeak and FixedPeak are the modes of the unique-degree
	// histograms (Fig. 4); NaN when the population is empty.
	MobilePeak float64
	FixedPeak  float64
	// PerOperator reports whether a pfx2as table attributed episodes to
	// operators (the section header prints even when no episode matched).
	PerOperator bool
	PerOp       []OperatorDurations
	// Zeros buckets unique fixed /64s by inferred delegation length.
	Zeros *core.TrailingZeroBuckets
	// Sketches holds the streaming pipeline's merged online summaries
	// (durations, degrees, heavy hitters, cardinalities). The in-memory
	// oracle leaves it nil — exact answers need no sketch — and Render
	// ignores it, so the byte-identity contract between the two paths is
	// untouched.
	Sketches *sketch.Set
}

// OperatorDurations is one operator's episode-duration summary, keyed and
// ordered by ASN.
type OperatorDurations struct {
	ASN  uint32
	Name string
	Box  stats.BoxStats
}

// Render writes the report in the CLI's text format.
func (r *Report) Render(w io.Writer) error {
	fmt.Fprintf(w, "associations: %d, episodes: %d\n", r.Assocs, r.Episodes)
	if r.Fixed.N > 0 {
		fmt.Fprintf(w, "fixed  durations: %s\n", r.Fixed)
	}
	if r.Mobile.N > 0 {
		fmt.Fprintf(w, "mobile durations: %s\n", r.Mobile)
	}
	fmt.Fprintf(w, "degrees: mobile peak %.0f, fixed peak %.0f\n", r.MobilePeak, r.FixedPeak)
	if r.PerOperator {
		fmt.Fprintln(w, "per-operator association durations:")
		for _, op := range r.PerOp {
			fmt.Fprintf(w, "  %-12s %s\n", op.Name, op.Box)
		}
	}
	fmt.Fprintf(w, "trailing zeros (fixed /64s): %.1f%% inferable;", 100*r.Zeros.InferableFrac())
	for _, l := range []int{48, 52, 56, 60} {
		fmt.Fprintf(w, " /%d=%.2f", l, r.Zeros.Frac(l))
	}
	fmt.Fprintln(w)
	return nil
}

// BuildReport runs the in-memory analysis over a materialized association
// list — the oracle the streaming pipeline is validated against. table
// may be nil (skips per-operator attribution). The observer sees the
// "analyze-cdn" span, one virtual tick per association, and the
// association/episode counters.
func BuildReport(assocs []Association, table *bgp.Table, threshold int, o *obs.Observer) *Report {
	span := o.StartSpan("analyze-cdn")
	defer func() {
		o.Advance(int64(len(assocs)))
		span.End()
	}()
	o.Counter("cdn_assocs_filtered").Add(int64(len(assocs)))
	mobile := MobileLabel(assocs, threshold)
	eps := Episodes(assocs, DefaultEpisodeConfig())
	o.Counter("cdn_episodes").Add(int64(len(eps)))
	r := &Report{Assocs: len(assocs), Episodes: len(eps)}
	var fixedD, mobileD []float64
	for _, ep := range eps {
		if mobile[ep.K24] {
			mobileD = append(mobileD, float64(ep.Days()))
		} else {
			fixedD = append(fixedD, float64(ep.Days()))
		}
	}
	if len(fixedD) > 0 {
		r.Fixed = stats.NewECDF(fixedD).Box()
	}
	if len(mobileD) > 0 {
		r.Mobile = stats.NewECDF(mobileD).Box()
	}
	dd := Degrees(assocs, mobile)
	r.MobilePeak = dd.MobileUnique.PeakX()
	r.FixedPeak = dd.FixedUnique.PeakX()

	if table != nil {
		r.PerOperator = true
		perOp := map[uint32][]float64{}
		for _, ep := range eps {
			if asn, _, ok := table.Origin(netutil.AddrFrom128(ep.K64, 0)); ok {
				perOp[asn] = append(perOp[asn], float64(ep.Days()))
			}
		}
		asns := make([]uint32, 0, len(perOp))
		for asn := range perOp {
			asns = append(asns, asn)
		}
		sort.Slice(asns, func(i, j int) bool { return asns[i] < asns[j] })
		for _, asn := range asns {
			r.PerOp = append(r.PerOp, OperatorDurations{
				ASN: asn, Name: table.Name(asn), Box: stats.NewECDF(perOp[asn]).Box(),
			})
		}
	}

	// Trailing zeros over unique fixed /64s: each /64 counts once if any
	// of its associations arrived on a non-mobile /24.
	seen := map[uint64]bool{}
	var prefixes []netip.Prefix
	for _, a := range assocs {
		if mobile[a.K24] || seen[a.K64] {
			continue
		}
		seen[a.K64] = true
		prefixes = append(prefixes, a.P64())
	}
	r.Zeros = core.ClassifyTrailingZeros(prefixes)
	return r
}
