package cdn

import (
	"encoding/json"
	"errors"
	"testing"

	"dynamips/internal/checkpoint"
	"dynamips/internal/obs"
)

// TestGenerateMetricsResumeInvariant: a checkpointed Generate that is
// killed and resumed must report exactly the metrics, spans, and virtual
// time of an uninterrupted run — resuming replays results, it does not
// re-shape the accounting.
func TestGenerateMetricsResumeInvariant(t *testing.T) {
	defer checkpoint.SetCrashPlan(0, false)
	cfg := DefaultGenConfig(23)
	cfg.Scale = 0.02
	cfg.Days = 20
	key := checkpoint.Key{Seed: 23, ConfigHash: "metrics-test", Code: checkpoint.CodeVersion()}

	run := func(dir string, killAt int) (obs.Snapshot, error) {
		r, err := checkpoint.Open(dir, key, json.RawMessage(`{}`), nil)
		if err != nil {
			t.Fatal(err)
		}
		defer r.Close()
		o := obs.NewObserver()
		r.SetObserver(o)
		c := cfg
		c.Checkpoint = r
		c.Obs = o
		if killAt > 0 {
			checkpoint.SetCrashPlan(killAt, false)
			defer checkpoint.SetCrashPlan(0, false)
		}
		_, err = Generate(c)
		return o.Snapshot(), err
	}

	fresh, err := run(t.TempDir(), 0)
	if err != nil {
		t.Fatalf("uninterrupted run: %v", err)
	}

	dir := t.TempDir()
	if _, err := run(dir, 4); !errors.Is(err, checkpoint.ErrCrashInjected) {
		t.Fatalf("killed run: err = %v, want ErrCrashInjected", err)
	}
	resumed, err := run(dir, 0)
	if err != nil {
		t.Fatalf("resumed run: %v", err)
	}
	if !fresh.Equal(resumed) {
		t.Fatalf("resumed metrics differ from uninterrupted run:\nfresh:   %+v\nresumed: %+v", fresh, resumed)
	}
}
