package cdn

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"dynamips/internal/rir"
)

func smallDataset(t *testing.T) *Dataset {
	t.Helper()
	cfg := DefaultGenConfig(1)
	cfg.Scale = 0.15
	ds, err := Generate(cfg)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	return ds
}

func TestAssociationKeys(t *testing.T) {
	a := Association{K24: 0x51100A, K64: 0x2003100000000100}
	if got := a.P24().String(); got != "81.16.10.0/24" {
		t.Errorf("P24 = %s", got)
	}
	if got := a.P64().String(); got != "2003:1000:0:100::/64" {
		t.Errorf("P64 = %s", got)
	}
}

func TestGenerateBasics(t *testing.T) {
	ds := smallDataset(t)
	if len(ds.Assocs) == 0 {
		t.Fatal("no associations generated")
	}
	if ds.Mismatches == 0 {
		t.Error("no mismatches injected/filtered")
	}
	if ds.RawCount != len(ds.Assocs)+ds.Mismatches {
		t.Errorf("raw=%d filtered=%d mismatches=%d", ds.RawCount, len(ds.Assocs), ds.Mismatches)
	}
	// Every surviving association is ASN-consistent.
	for i, a := range ds.Assocs {
		if i%1000 != 0 {
			continue // sampling keeps the test fast
		}
		asn4, _, ok4 := ds.BGP.Origin(a.P24().Addr())
		asn6, _, ok6 := ds.BGP.Origin(a.P64().Addr())
		if !ok4 || !ok6 || asn4 != asn6 {
			t.Fatalf("mismatched association survived: %v %v", a.P24(), a.P64())
		}
		if int(a.Day) >= ds.Days {
			t.Fatalf("day %d outside window", a.Day)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := DefaultGenConfig(7)
	cfg.Scale = 0.05
	a, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Assocs) != len(b.Assocs) {
		t.Fatalf("lengths differ: %d vs %d", len(a.Assocs), len(b.Assocs))
	}
	for i := range a.Assocs {
		if a.Assocs[i] != b.Assocs[i] {
			t.Fatalf("association %d differs", i)
		}
	}
}

func TestGenerateErrors(t *testing.T) {
	if _, err := Generate(GenConfig{Days: 0}); err == nil {
		t.Error("zero-day window accepted")
	}
}

func TestEpisodes(t *testing.T) {
	assocs := []Association{
		{K64: 1, K24: 10, Day: 0, Hits: 5},
		{K64: 1, K24: 10, Day: 1, Hits: 5},
		{K64: 1, K24: 10, Day: 4, Hits: 5},  // gap of 2: bridged
		{K64: 1, K24: 11, Day: 5, Hits: 5},  // /24 change: new episode
		{K64: 1, K24: 11, Day: 40, Hits: 5}, // gap > 7: new episode
		{K64: 2, K24: 10, Day: 3, Hits: 9},
	}
	eps := Episodes(assocs, DefaultEpisodeConfig())
	if len(eps) != 4 {
		t.Fatalf("episodes = %+v", eps)
	}
	if eps[0].K64 != 1 || eps[0].StartDay != 0 || eps[0].EndDay != 4 || eps[0].Days() != 5 {
		t.Errorf("episode 0: %+v", eps[0])
	}
	if eps[1].K24 != 11 || eps[1].Days() != 1 {
		t.Errorf("episode 1: %+v", eps[1])
	}
	if eps[2].StartDay != 40 {
		t.Errorf("episode 2: %+v", eps[2])
	}
	if eps[3].K64 != 2 {
		t.Errorf("episode 3: %+v", eps[3])
	}
	if eps[0].Hits != 15 {
		t.Errorf("episode 0 hits = %d", eps[0].Hits)
	}
}

func TestMobileLabelAgainstGroundTruth(t *testing.T) {
	ds := smallDataset(t)
	mobile := MobileLabel(ds.Assocs, 350)
	var agree, total int
	for _, a := range ds.Assocs {
		asn, _, ok := ds.BGP.Origin(a.P24().Addr())
		if !ok {
			continue
		}
		total++
		if mobile[a.K24] == ds.TruthMobile[asn] {
			agree++
		}
	}
	if total == 0 {
		t.Fatal("nothing to classify")
	}
	if frac := float64(agree) / float64(total); frac < 0.95 {
		t.Errorf("mobile labeling agreement = %v, want > 0.95", frac)
	}
}

func TestDurationShapes(t *testing.T) {
	ds := smallDataset(t)
	mobile := MobileLabel(ds.Assocs, 350)
	eps := Episodes(ds.Assocs, DefaultEpisodeConfig())
	g := GroupDurations(ds, eps, mobile)

	// §4.2: fixed durations are dramatically longer than mobile; the
	// paper reports a 60x median gap and 75% of mobile <= 1 day.
	fm, mm := g.Fixed.Median(), g.Mobile.Median()
	if !(fm > 10*mm) {
		t.Errorf("fixed median %v not >> mobile median %v", fm, mm)
	}
	if q := g.Mobile.Quantile(0.75); q > 3 {
		t.Errorf("mobile p75 = %v days, want small", q)
	}
	// Fig. 2 orderings: DTAG shortest, BT next, Comcast longest.
	dtag := g.ByOperator[3320].Median()
	bt := g.ByOperator[2856].Median()
	comcast := g.ByOperator[7922].Median()
	if !(dtag < bt && bt < comcast) {
		t.Errorf("operator medians: DTAG=%v BT=%v Comcast=%v, want increasing", dtag, bt, comcast)
	}
	// DTAG median ~1 week, BT ~2 weeks (paper: "closely match").
	if dtag < 3 || dtag > 14 {
		t.Errorf("DTAG median = %v days, want ~7", dtag)
	}
	if bt < 8 || bt > 28 {
		t.Errorf("BT median = %v days, want ~14", bt)
	}
	// Fig. 3: RIPE mobile has a long tail (EE Ltd) versus other
	// registries' mobile populations.
	_, ripeMobile := g.RegistryBox(rir.RIPENCC)
	_, arinMobile := g.RegistryBox(rir.ARIN)
	if !(ripeMobile.Q3 > 3*arinMobile.Q3) {
		t.Errorf("RIPE mobile q3 %v not >> ARIN mobile q3 %v (EE Ltd tail)", ripeMobile.Q3, arinMobile.Q3)
	}
	// ARIN fixed is the longest-lived fixed population.
	arinFixed, _ := g.RegistryBox(rir.ARIN)
	ripeFixed, _ := g.RegistryBox(rir.RIPENCC)
	if !(arinFixed.Median > ripeFixed.Median) {
		t.Errorf("ARIN fixed median %v not > RIPE fixed median %v", arinFixed.Median, ripeFixed.Median)
	}
}

func TestDegrees(t *testing.T) {
	ds := smallDataset(t)
	mobile := MobileLabel(ds.Assocs, 350)
	dd := Degrees(ds.Assocs, mobile)
	mp := dd.MobileUnique.PeakX()
	fp := dd.FixedUnique.PeakX()
	if math.IsNaN(mp) || math.IsNaN(fp) {
		t.Fatal("empty degree distributions")
	}
	// Mobile /24s multiplex far more /64s (Fig. 4); the gap grows with
	// Scale (the paper's full population shows ~400x), so at test scale
	// only the order-of-magnitude separation is asserted.
	if !(mp > 5*fp) {
		t.Errorf("mobile peak %v not >> fixed peak %v", mp, fp)
	}
	// Fixed peak lands near the 150-200 /64s-per-/24 regime.
	if fp < 50 || fp > 600 {
		t.Errorf("fixed unique peak = %v, want O(150-200)", fp)
	}
	// 87%-style /64 connectivity of one in mobile.
	if c := dd.Connectivity1Frac[true]; c < 0.6 {
		t.Errorf("mobile connectivity-1 fraction = %v, want high", c)
	}
}

func TestTrailingZeros(t *testing.T) {
	ds := smallDataset(t)
	mobile := MobileLabel(ds.Assocs, 350)
	tz := TrailingZerosByRegistry(ds, mobile)
	ripe := tz[rir.RIPENCC]
	if ripe == nil || ripe.Total == 0 {
		t.Fatal("no RIPE trailing-zero data")
	}
	// RIPE: over 60% of /64s have >= 8 trailing zero bits (/56 or
	// shorter inferred delegation) per Fig. 7.
	frac56OrShorter := ripe.Frac(56) + ripe.Frac(52) + ripe.Frac(48)
	if frac56OrShorter < 0.5 {
		t.Errorf("RIPE /56-or-shorter fraction = %v, want > 0.5", frac56OrShorter)
	}
	if ripe.InferableFrac() < 0.5 {
		t.Errorf("RIPE inferable fraction = %v", ripe.InferableFrac())
	}
	// LACNIC is the low-inference outlier (15.1% in the paper): BR Cable
	// delegates bare /64s.
	lac := tz[rir.LACNIC]
	if lac == nil {
		t.Fatal("no LACNIC data")
	}
	if !(lac.InferableFrac() < ripe.InferableFrac()/2) {
		t.Errorf("LACNIC inferable %v not << RIPE %v", lac.InferableFrac(), ripe.InferableFrac())
	}
	// Mobile /64s show ~no trailing-zero structure.
	if f := MobileTrailingZeroFrac(ds, mobile); f > 0.2 {
		t.Errorf("mobile trailing-zero fraction = %v, want ~1/16 by chance", f)
	}
}

func BenchmarkGenerate(b *testing.B) {
	cfg := DefaultGenConfig(1)
	cfg.Scale = 0.1
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Generate(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEpisodes(b *testing.B) {
	cfg := DefaultGenConfig(1)
	cfg.Scale = 0.1
	ds, err := Generate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Episodes(ds.Assocs, DefaultEpisodeConfig())
	}
}

func TestEpisodesCustomGap(t *testing.T) {
	assocs := []Association{
		{K64: 1, K24: 10, Day: 0, Hits: 1},
		{K64: 1, K24: 10, Day: 3, Hits: 1},
	}
	// Gap of 2 days splits when MaxGapDays is 1.
	eps := Episodes(assocs, EpisodeConfig{MaxGapDays: 1})
	if len(eps) != 2 {
		t.Fatalf("episodes = %+v", eps)
	}
	// Non-positive config falls back to the default (bridged).
	eps = Episodes(assocs, EpisodeConfig{})
	if len(eps) != 1 {
		t.Fatalf("default-config episodes = %+v", eps)
	}
}

func TestGroupDurationsUnknownRegistry(t *testing.T) {
	ds := smallDataset(t)
	// A /64 outside every RIR delegation contributes to the global
	// split but to no registry bucket.
	eps := []Episode{{K64: 0x20010db8_00000000, K24: 10, StartDay: 0, EndDay: 4}}
	g := GroupDurations(ds, eps, map[uint32]bool{})
	if g.Fixed.Len() != 1 {
		t.Errorf("global fixed count = %d", g.Fixed.Len())
	}
	for reg, pair := range g.ByRegistry {
		if pair.Fixed.Len()+pair.Mobile.Len() != 0 {
			t.Errorf("registry %v got the undelegated episode", reg)
		}
	}
}

// TestEpisodesOrderInsensitive: a /64 can report two /24s on the same day;
// episode extraction must not depend on the input permutation.
func TestEpisodesOrderInsensitive(t *testing.T) {
	base := []Association{
		{K64: 9, K24: 20, Day: 0, Hits: 3},
		{K64: 9, K24: 21, Day: 0, Hits: 4},
		{K64: 9, K24: 21, Day: 1, Hits: 2},
		{K64: 9, K24: 20, Day: 2, Hits: 1},
		{K64: 5, K24: 20, Day: 0, Hits: 8},
	}
	want := Episodes(base, DefaultEpisodeConfig())
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		shuf := append([]Association(nil), base...)
		rng.Shuffle(len(shuf), func(i, j int) { shuf[i], shuf[j] = shuf[j], shuf[i] })
		got := Episodes(shuf, DefaultEpisodeConfig())
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: episodes depend on input order:\n got %+v\nwant %+v", trial, got, want)
		}
	}
}

// TestMobileLabelThresholdBoundary: the threshold is documented everywhere
// as the degree ABOVE which a /24 is mobile — the boundary itself is fixed.
func TestMobileLabelThresholdBoundary(t *testing.T) {
	var assocs []Association
	for i := 0; i < 5; i++ {
		assocs = append(assocs, Association{K24: 1, K64: uint64(i)})
	}
	for i := 0; i < 6; i++ {
		assocs = append(assocs, Association{K24: 2, K64: uint64(100 + i)})
	}
	mobile := MobileLabel(assocs, 5)
	if mobile[1] {
		t.Error("degree == threshold labeled mobile; doc says strictly above")
	}
	if !mobile[2] {
		t.Error("degree > threshold not labeled mobile")
	}
}

// TestGenerateWorkersEquivalence: the fan-out width must not change a
// single association.
func TestGenerateWorkersEquivalence(t *testing.T) {
	cfg := DefaultGenConfig(7)
	cfg.Scale = 0.05
	cfg.Workers = 1
	a, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 8
	b, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Assocs) != len(b.Assocs) || a.RawCount != b.RawCount || a.Mismatches != b.Mismatches {
		t.Fatalf("shape differs: %d/%d/%d vs %d/%d/%d",
			len(a.Assocs), a.RawCount, a.Mismatches, len(b.Assocs), b.RawCount, b.Mismatches)
	}
	for i := range a.Assocs {
		if a.Assocs[i] != b.Assocs[i] {
			t.Fatalf("association %d differs: %+v vs %+v", i, a.Assocs[i], b.Assocs[i])
		}
	}
}
