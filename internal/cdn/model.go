// Package cdn models the paper's CDN Real-User-Monitoring dataset (§4.1):
// IPv4↔IPv6 address associations from dual-stacked clients, aggregated to
// (IPv4 /24, IPv6 /64, day) tuples. The real dataset (32.7 billion
// associations) is proprietary; this package generates a synthetic
// population from per-operator models that encode the paper's published
// findings — fixed vs. mobile duration regimes, CGNAT multiplexing
// degrees, per-registry trailing-zero structure — at a configurable scale,
// and implements the paper's aggregation, ASN-mismatch filtering,
// mobile/fixed labeling, and §4/§5.3 analyses on the same tuple schema.
package cdn

import (
	"net/netip"

	"dynamips/internal/netutil"
	"dynamips/internal/rir"
)

// Association is one aggregated (IPv4 /24, IPv6 /64, day) observation with
// its RUM hit count. Prefixes are stored as compact keys: K24 is the /24
// network right-shifted 8 bits; K64 is the /64 network component.
type Association struct {
	K24  uint32
	K64  uint64
	Day  uint16
	Hits uint32
}

// P24 returns the IPv4 /24 prefix.
func (a Association) P24() netip.Prefix {
	return netip.PrefixFrom(netutil.AddrFromU32(a.K24<<8), 24)
}

// P64 returns the IPv6 /64 prefix.
func (a Association) P64() netip.Prefix {
	return netip.PrefixFrom(netutil.AddrFrom128(a.K64, 0), 64)
}

// Operator is a ground-truth model of one network's dual-stack behavior.
type Operator struct {
	Name   string
	ASN    uint32
	Mobile bool
	// Registry is the delegating RIR (ground truth; analyses re-derive
	// it from the prefixes).
	Registry rir.Registry

	// BGP4 and BGP6 are the operator's announced prefixes; the /24 pool
	// and subscriber /64s are carved from them.
	BGP4 netip.Prefix
	BGP6 netip.Prefix

	// Subscribers is the scaled dual-stack population.
	Subscribers int
	// UsersPer24 controls IPv4 multiplexing: how many concurrent
	// subscribers share one /24 (fixed: 150–200 via NAT per home;
	// mobile CGNAT: hundreds sharing few /24s, §4.3).
	UsersPer24 int

	// AssocMeanDays is the mean association duration; durations are
	// exponential with a point mass of StableFrac lasting the whole
	// window (ARIN fixed lines, §4.2).
	AssocMeanDays float64
	StableFrac    float64

	// DelegatedLen is the subscriber delegation length; ZeroFrac is the
	// share of /64s with the bits below the delegation zeroed (Orange:
	// 99.7% — §5.3). Mobile operators delegate bare /64s (ZeroFrac 0).
	DelegatedLen int
	ZeroFrac     float64

	// KeepV6Frac is the probability a subscriber keeps its /64 across an
	// association change (only the IPv4 side moved). Fixed-line /64s
	// outlive IPv4 addresses; mobile /64s mostly die with the session
	// ("87% of unique /64s have a connectivity of one", §4.3).
	KeepV6Frac float64
	// Activity overrides GenConfig.ActivityProb for this operator:
	// the per-day probability a subscriber produces RUM traffic. Mobile
	// clients are seen far more sparsely than fixed lines. Zero uses
	// the config default.
	Activity float64
}

// Operators returns the built-in ground-truth operator set: the six ISPs
// of Fig. 2 plus generic fixed and mobile operators in every registry
// (including EE Ltd., the long-duration British mobile outlier of §4.2).
// Subscriber counts are a scaled-down stand-in for the paper's 2.1 billion
// unique /64s; Scale in GenConfig multiplies them.
func Operators() []Operator {
	p := netip.MustParsePrefix
	return []Operator{
		// Fig. 2's fixed ISPs. Association durations track the shorter
		// of the two families (dual-stack IPv4, mostly).
		{Name: "DTAG", ASN: 3320, Registry: rir.RIPENCC, BGP4: p("87.128.0.0/10"), BGP6: p("2003::/19"),
			Subscribers: 420, UsersPer24: 12, AssocMeanDays: 10, DelegatedLen: 56, ZeroFrac: 0.75, KeepV6Frac: 0.5},
		{Name: "Orange", ASN: 3215, Registry: rir.RIPENCC, BGP4: p("90.0.0.0/9"), BGP6: p("2a01:c000::/19"),
			Subscribers: 1400, UsersPer24: 70, AssocMeanDays: 65, StableFrac: 0.05, DelegatedLen: 56, ZeroFrac: 0.997, KeepV6Frac: 0.6},
		{Name: "LGI", ASN: 6830, Registry: rir.RIPENCC, BGP4: p("84.104.0.0/14"), BGP6: p("2001:4c40::/22"),
			Subscribers: 1200, UsersPer24: 65, AssocMeanDays: 45, StableFrac: 0.05, DelegatedLen: 60, ZeroFrac: 0.7, KeepV6Frac: 0.6},
		{Name: "BT", ASN: 2856, Registry: rir.RIPENCC, BGP4: p("86.128.0.0/11"), BGP6: p("2a00:2300::/28"),
			Subscribers: 380, UsersPer24: 25, AssocMeanDays: 20, DelegatedLen: 56, ZeroFrac: 0.8, KeepV6Frac: 0.55},
		{Name: "Comcast", ASN: 7922, Registry: rir.ARIN, BGP4: p("73.0.0.0/8"), BGP6: p("2601::/20"),
			Subscribers: 2800, UsersPer24: 120, AssocMeanDays: 130, StableFrac: 0.18, DelegatedLen: 60, ZeroFrac: 0.6, KeepV6Frac: 0.6},
		{Name: "Proximus", ASN: 5432, Registry: rir.RIPENCC, BGP4: p("91.176.0.0/13"), BGP6: p("2a02:a000::/21"),
			Subscribers: 1000, UsersPer24: 65, AssocMeanDays: 50, StableFrac: 0.05, DelegatedLen: 56, ZeroFrac: 0.85, KeepV6Frac: 0.6},
		// Generic fixed operators per registry (Fig. 3's fixed boxes).
		{Name: "US Fiber", ASN: 64610, Registry: rir.ARIN, BGP4: p("66.60.0.0/15"), BGP6: p("2600:8800::/28"),
			Subscribers: 5600, UsersPer24: 130, AssocMeanDays: 150, StableFrac: 0.25, DelegatedLen: 60, ZeroFrac: 0.55, KeepV6Frac: 0.6},
		{Name: "JP Broadband", ASN: 64620, Registry: rir.APNIC, BGP4: p("60.60.0.0/15"), BGP6: p("2400:4000::/26"),
			Subscribers: 4400, UsersPer24: 90, AssocMeanDays: 90, StableFrac: 0.15, DelegatedLen: 48, ZeroFrac: 0.6, KeepV6Frac: 0.6},
		{Name: "BR Cable", ASN: 64630, Registry: rir.LACNIC, BGP4: p("177.32.0.0/14"), BGP6: p("2804:1000::/28"),
			Subscribers: 3600, UsersPer24: 70, AssocMeanDays: 75, StableFrac: 0.12, DelegatedLen: 64, ZeroFrac: 0.12, KeepV6Frac: 0.6},
		{Name: "ZA DSL", ASN: 64640, Registry: rir.AFRINIC, BGP4: p("41.0.0.0/13"), BGP6: p("2c0f:f000::/28"),
			Subscribers: 2800, UsersPer24: 80, AssocMeanDays: 80, StableFrac: 0.12, DelegatedLen: 56, ZeroFrac: 0.9, KeepV6Frac: 0.6},
		{Name: "EU Fiber", ASN: 64650, Registry: rir.RIPENCC, BGP4: p("77.64.0.0/14"), BGP6: p("2a05:4000::/26"),
			Subscribers: 4000, UsersPer24: 120, AssocMeanDays: 120, StableFrac: 0.2, DelegatedLen: 56, ZeroFrac: 0.8, KeepV6Frac: 0.6},
		// Mobile operators (Fig. 3's mobile boxes, Fig. 4a's degrees).
		{Name: "US Mobile", ASN: 64710, Mobile: true, Registry: rir.ARIN, BGP4: p("172.32.0.0/14"), BGP6: p("2600:1000::/28"),
			Subscribers: 550, UsersPer24: 300, AssocMeanDays: 1.3, DelegatedLen: 64, KeepV6Frac: 0.25, Activity: 0.12},
		{Name: "EE Ltd", ASN: 12576, Mobile: true, Registry: rir.RIPENCC, BGP4: p("31.64.0.0/13"), BGP6: p("2a01:4c00::/26"),
			Subscribers: 450, UsersPer24: 300, AssocMeanDays: 18, DelegatedLen: 64, KeepV6Frac: 0.25, Activity: 0.5},
		{Name: "IN Mobile", ASN: 64720, Mobile: true, Registry: rir.APNIC, BGP4: p("106.192.0.0/11"), BGP6: p("2401:4900::/26"),
			Subscribers: 620, UsersPer24: 320, AssocMeanDays: 1.2, DelegatedLen: 64, KeepV6Frac: 0.25, Activity: 0.12},
		{Name: "MX Mobile", ASN: 64730, Mobile: true, Registry: rir.LACNIC, BGP4: p("189.128.0.0/12"), BGP6: p("2806:100::/26"),
			Subscribers: 520, UsersPer24: 300, AssocMeanDays: 1.2, DelegatedLen: 64, KeepV6Frac: 0.25, Activity: 0.12},
		{Name: "KE Mobile", ASN: 64740, Mobile: true, Registry: rir.AFRINIC, BGP4: p("105.160.0.0/12"), BGP6: p("2c0f:fe00::/26"),
			Subscribers: 470, UsersPer24: 290, AssocMeanDays: 1.3, DelegatedLen: 64, KeepV6Frac: 0.25, Activity: 0.12},
	}
}
