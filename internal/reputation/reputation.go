// Package reputation implements the paper's host-reputation application
// (§6): blocklists whose entry lifetimes come from the per-AS duration
// analysis (block too long and you hit the subscriber who inherited the
// address — collateral damage; too short and the offender escapes) and
// whose IPv6 granularity comes from the inferred subscriber boundary
// (block a /64 and a /48-delegated offender sidesteps it; block too wide
// and you take out neighbors).
package reputation

import (
	"fmt"
	"net/netip"
	"sort"

	"dynamips/internal/core"
	"dynamips/internal/netutil"
	"dynamips/internal/stats"
)

// Advice is the per-AS blocking policy derived from the analyses.
type Advice struct {
	ASN uint32
	// TTLHours is how long an entry should live: beyond this, the
	// duration curve says the address has probably been reassigned.
	TTLHours float64
	// BlockLen6 is the IPv6 prefix length to block: the inferred
	// subscriber boundary, so the offender cannot rotate within its
	// delegation (§6: "blocking at the granularity of a /64 is more
	// typical ... an individual subscriber can be delegated a prefix
	// shorter than a /64, potentially allowing evasion").
	BlockLen6 int
}

// Advise derives per-AS blocking policy: the TTL is the duration mark at
// which residualRisk of the v4 assignment time is still running (0.5:
// even odds the offender still holds the address).
func Advise(asn uint32, pas []core.ProbeAnalysis, residualRisk float64) (Advice, error) {
	if residualRisk <= 0 || residualRisk >= 1 {
		return Advice{}, fmt.Errorf("reputation: residual risk %v outside (0,1)", residualRisk)
	}
	durations := core.CollectDurations(pas)
	d := durations[asn]
	if d == nil {
		return Advice{}, fmt.Errorf("reputation: no durations for AS%d", asn)
	}
	all := append(append([]float64(nil), d.V4NonDS...), d.V4DS...)
	if len(all) == 0 {
		return Advice{}, fmt.Errorf("reputation: no v4 duration samples for AS%d", asn)
	}
	curve := stats.CumulativeTotalTimeFraction(all)
	adv := Advice{ASN: asn, TTLHours: ttlAt(curve, 1-residualRisk), BlockLen6: 64}
	perAS, _ := core.SubscriberLengths(pas)
	if h := perAS[asn]; h != nil && h.N > 0 {
		adv.BlockLen6 = h.ArgMax()
	}
	return adv, nil
}

// ttlAt finds the duration at which the cumulative curve first reaches f.
func ttlAt(curve []stats.Point, f float64) float64 {
	for _, p := range curve {
		if p.Y >= f {
			return p.X
		}
	}
	if len(curve) > 0 {
		return curve[len(curve)-1].X
	}
	return 0
}

// Entry is one blocklist entry.
type Entry struct {
	Prefix  netip.Prefix
	ASN     uint32
	AddedAt int64 // hour
}

// Blocklist is a TTL-aware block set. It is not safe for concurrent use.
type Blocklist struct {
	advice  map[uint32]Advice
	entries []Entry
}

// NewBlocklist builds a blocklist with per-AS advice.
func NewBlocklist(advice ...Advice) *Blocklist {
	b := &Blocklist{advice: make(map[uint32]Advice, len(advice))}
	for _, a := range advice {
		b.advice[a.ASN] = a
	}
	return b
}

// BlockV4 adds an IPv4 offender address.
func (b *Blocklist) BlockV4(addr netip.Addr, asn uint32, hour int64) {
	b.entries = append(b.entries, Entry{Prefix: netip.PrefixFrom(addr.Unmap(), 32), ASN: asn, AddedAt: hour})
}

// BlockV6 adds an IPv6 offender at the AS's advised granularity (the
// subscriber boundary; /64 for unknown ASes).
func (b *Blocklist) BlockV6(addr netip.Addr, asn uint32, hour int64) {
	bits := 64
	if a, ok := b.advice[asn]; ok && a.BlockLen6 > 0 {
		bits = a.BlockLen6
	}
	b.entries = append(b.entries, Entry{Prefix: netutil.PrefixAt(addr, bits), ASN: asn, AddedAt: hour})
}

// ttl returns the AS's TTL (a month for unknown ASes).
func (b *Blocklist) ttl(asn uint32) float64 {
	if a, ok := b.advice[asn]; ok && a.TTLHours > 0 {
		return a.TTLHours
	}
	return 720
}

// Blocked reports whether addr is blocked at the given hour, honoring
// per-AS TTLs.
func (b *Blocklist) Blocked(addr netip.Addr, hour int64) bool {
	for _, e := range b.entries {
		if e.Prefix.Contains(addr.Unmap()) && float64(hour-e.AddedAt) <= b.ttl(e.ASN) {
			return true
		}
	}
	return false
}

// Expire removes entries past their TTL and returns how many were
// dropped.
func (b *Blocklist) Expire(hour int64) int {
	kept := b.entries[:0]
	dropped := 0
	for _, e := range b.entries {
		if float64(hour-e.AddedAt) <= b.ttl(e.ASN) {
			kept = append(kept, e)
		} else {
			dropped++
		}
	}
	b.entries = kept
	return dropped
}

// Len returns the number of live entries.
func (b *Blocklist) Len() int { return len(b.entries) }

// Export returns the current block set, coalesced into the minimal
// prefix list (adjacent subscriber blocks merge), sorted.
func (b *Blocklist) Export() []netip.Prefix {
	ps := make([]netip.Prefix, 0, len(b.entries))
	for _, e := range b.entries {
		ps = append(ps, e.Prefix)
	}
	out := netutil.Coalesce(ps)
	sort.Slice(out, func(i, j int) bool { return netutil.ComparePrefix(out[i], out[j]) < 0 })
	return out
}
