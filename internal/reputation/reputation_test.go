package reputation

import (
	"net/netip"
	"testing"

	"dynamips/internal/atlas"
	"dynamips/internal/core"
	"dynamips/internal/isp"
)

func dtagAnalyses(t *testing.T) []core.ProbeAnalysis {
	t.Helper()
	p, _ := isp.ProfileByName("DTAG")
	res, err := isp.Run(isp.Config{Profile: p, Subscribers: 200, Hours: 8000, Seed: 601})
	if err != nil {
		t.Fatal(err)
	}
	fleet, err := atlas.BuildFleet(res, atlas.DefaultFleetConfig(120, 602))
	if err != nil {
		t.Fatal(err)
	}
	return core.Analyze(atlas.Sanitize(fleet.Series, fleet.BGP, atlas.DefaultSanitizeConfig()).Clean,
		core.DefaultExtractConfig())
}

func TestAdviseDTAG(t *testing.T) {
	pas := dtagAnalyses(t)
	adv, err := Advise(3320, pas, 0.5)
	if err != nil {
		t.Fatalf("Advise: %v", err)
	}
	// DTAG renumbers daily: the even-odds TTL sits at/below ~a day.
	if adv.TTLHours > 48 {
		t.Errorf("TTL = %vh, want <= 48 for a 24h-renumbering ISP", adv.TTLHours)
	}
	if adv.BlockLen6 != 56 {
		t.Errorf("BlockLen6 = /%d, want /56", adv.BlockLen6)
	}
}

func TestAdviseErrors(t *testing.T) {
	if _, err := Advise(1, nil, 0.5); err == nil {
		t.Error("advice without data")
	}
	if _, err := Advise(3320, nil, 0); err == nil {
		t.Error("zero risk accepted")
	}
	if _, err := Advise(3320, nil, 1); err == nil {
		t.Error("unit risk accepted")
	}
}

func TestBlocklistLifecycle(t *testing.T) {
	adv := Advice{ASN: 3320, TTLHours: 24, BlockLen6: 56}
	b := NewBlocklist(adv)
	b.BlockV4(netip.MustParseAddr("81.10.0.7"), 3320, 0)
	b.BlockV6(netip.MustParseAddr("2003:1000:0:11ab::5"), 3320, 0)
	if b.Len() != 2 {
		t.Fatalf("Len = %d", b.Len())
	}
	// The /56 block covers the whole delegation, not just the /64.
	if !b.Blocked(netip.MustParseAddr("2003:1000:0:11ff::9"), 10) {
		t.Error("sibling /64 of the offender's delegation not blocked")
	}
	if b.Blocked(netip.MustParseAddr("2003:1000:0:1200::9"), 10) {
		t.Error("neighboring subscriber blocked")
	}
	if !b.Blocked(netip.MustParseAddr("81.10.0.7"), 20) {
		t.Error("fresh v4 entry not blocking")
	}
	// Past the TTL the entries stop matching and expire.
	if b.Blocked(netip.MustParseAddr("81.10.0.7"), 30) {
		t.Error("expired entry still blocking")
	}
	if dropped := b.Expire(30); dropped != 2 {
		t.Errorf("Expire dropped %d, want 2", dropped)
	}
	if b.Len() != 0 {
		t.Errorf("Len after expire = %d", b.Len())
	}
}

func TestBlocklistUnknownASDefaults(t *testing.T) {
	b := NewBlocklist()
	b.BlockV6(netip.MustParseAddr("2001:db8::1"), 999, 0)
	// Default granularity /64, default TTL a month.
	if !b.Blocked(netip.MustParseAddr("2001:db8::42"), 700) {
		t.Error("default TTL too short")
	}
	if b.Blocked(netip.MustParseAddr("2001:db8:0:1::1"), 1) {
		t.Error("default /64 block leaked into the neighbor /64")
	}
}

func TestExportCoalesces(t *testing.T) {
	adv := Advice{ASN: 3320, TTLHours: 1000, BlockLen6: 56}
	b := NewBlocklist(adv)
	// Two sibling /56 delegations misbehaving: export merges them.
	b.BlockV6(netip.MustParseAddr("2003:1000:0:1000::1"), 3320, 0)
	b.BlockV6(netip.MustParseAddr("2003:1000:0:1100::1"), 3320, 0)
	out := b.Export()
	if len(out) != 1 || out[0] != netip.MustParsePrefix("2003:1000:0:1000::/55") {
		t.Fatalf("Export = %v", out)
	}
}

// TestBlocklistReplay validates the advice against ground truth: entries
// with the advised TTL almost always block the offender, rarely an heir.
func TestBlocklistReplay(t *testing.T) {
	p, _ := isp.ProfileByName("DTAG")
	res, err := isp.Run(isp.Config{Profile: p, Subscribers: 200, Hours: 8000, Seed: 603})
	if err != nil {
		t.Fatal(err)
	}
	pas := dtagAnalyses(t)
	adv, err := Advise(3320, pas, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	var onOffender, collateral int64
	for _, sub := range res.Subscribers {
		if len(sub.V4) < 3 {
			continue
		}
		i := len(sub.V4) / 2
		start := sub.V4[i].Start
		hold := sub.V4[i+1].Start
		end := start + int64(adv.TTLHours)
		if hold > end {
			hold = end
		}
		onOffender += hold - start
		collateral += end - hold
	}
	total := onOffender + collateral
	if total == 0 {
		t.Fatal("no replay samples")
	}
	if frac := float64(onOffender) / float64(total); frac < 0.75 {
		t.Errorf("advised TTL keeps only %v of blocked time on the offender", frac)
	}
}
