package netutil

import (
	"math/rand"
	"net/netip"
	"testing"
)

func pfxs(ss ...string) []netip.Prefix {
	out := make([]netip.Prefix, len(ss))
	for i, s := range ss {
		out[i] = netip.MustParsePrefix(s)
	}
	return out
}

func TestCoalesceMergesSiblings(t *testing.T) {
	got := Coalesce(pfxs("2003:1000:0:100::/56", "2003:1000:0:0::/56"))
	if len(got) != 1 || got[0] != netip.MustParsePrefix("2003:1000::/55") {
		t.Fatalf("Coalesce = %v", got)
	}
}

func TestCoalesceDropsCovered(t *testing.T) {
	got := Coalesce(pfxs("10.0.0.0/8", "10.1.0.0/16", "10.2.3.0/24", "192.0.2.0/24"))
	want := pfxs("10.0.0.0/8", "192.0.2.0/24")
	if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("Coalesce = %v", got)
	}
}

func TestCoalesceRecursiveMerge(t *testing.T) {
	// Four /26 quarters of one /24 collapse fully.
	got := Coalesce(pfxs("192.0.2.0/26", "192.0.2.64/26", "192.0.2.128/26", "192.0.2.192/26"))
	if len(got) != 1 || got[0] != netip.MustParsePrefix("192.0.2.0/24") {
		t.Fatalf("Coalesce = %v", got)
	}
}

func TestCoalesceKeepsFamiliesApart(t *testing.T) {
	got := Coalesce(pfxs("0.0.0.0/1", "128.0.0.0/1", "::/1", "8000::/1"))
	if len(got) != 2 {
		t.Fatalf("Coalesce = %v", got)
	}
	if got[0] != netip.MustParsePrefix("0.0.0.0/0") || got[1] != netip.MustParsePrefix("::/0") {
		t.Fatalf("Coalesce = %v", got)
	}
}

func TestCoalesceEmptyAndInvalid(t *testing.T) {
	if got := Coalesce(nil); got != nil {
		t.Errorf("Coalesce(nil) = %v", got)
	}
	if got := Coalesce([]netip.Prefix{{}}); len(got) != 0 {
		t.Errorf("Coalesce(invalid) = %v", got)
	}
}

// TestCoalescePreservesCoverage: the coalesced set covers exactly the
// same addresses as the input (checked by sampling).
func TestCoalescePreservesCoverage(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 20; trial++ {
		var in []netip.Prefix
		for i := 0; i < 30; i++ {
			bits := 8 + rng.Intn(16)
			p, _ := AddrFromU32(rng.Uint32()).Prefix(bits)
			in = append(in, p)
		}
		out := Coalesce(in)
		if len(out) > len(in) {
			t.Fatalf("coalesce grew the set: %d -> %d", len(in), len(out))
		}
		for q := 0; q < 500; q++ {
			a := AddrFromU32(rng.Uint32())
			if CoveredBy(a, in) != CoveredBy(a, out) {
				t.Fatalf("trial %d: coverage differs at %v\nin: %v\nout: %v", trial, a, in, out)
			}
		}
		// Sampling inside each input prefix too, where coverage is
		// guaranteed.
		for _, p := range in {
			host := rng.Uint64() & (1<<uint(32-p.Bits()) - 1)
			a, err := HostAddr(p, host)
			if err != nil {
				continue
			}
			if !CoveredBy(a, out) {
				t.Fatalf("trial %d: %v in input %v not covered by output %v", trial, a, p, out)
			}
		}
	}
}
