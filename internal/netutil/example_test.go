package netutil_test

import (
	"fmt"
	"net/netip"

	"dynamips/internal/netutil"
)

// ExampleCommonPrefixLen reproduces the paper's §5.2 CPL example.
func ExampleCommonPrefixLen() {
	a := netip.MustParseAddr("2604:3d08:4b80:aa00::")
	b := netip.MustParseAddr("2604:3d08:4b80:aaf0::")
	fmt.Println(netutil.CommonPrefixLen(a, b))
	// Output: 56
}

// ExampleInferredDelegation classifies a /64 by its nibble-aligned
// trailing zeros, the Fig. 7 technique.
func ExampleInferredDelegation() {
	p := netip.MustParsePrefix("2a01:c000:0:ff00::/64")
	length, ok := netutil.InferredDelegation(p)
	fmt.Println(length, ok)
	// Output: 56 true
}

// ExampleCoalesce merges adjacent subscriber blocks for compact
// blocklists.
func ExampleCoalesce() {
	out := netutil.Coalesce([]netip.Prefix{
		netip.MustParsePrefix("2003:1000:0:1000::/56"),
		netip.MustParsePrefix("2003:1000:0:1100::/56"),
	})
	fmt.Println(out)
	// Output: [2003:1000:0:1000::/55]
}
