// Package netutil provides the address and prefix algebra that the DynamIPs
// analyses are built on: common-prefix-length computation between successive
// assignments, trailing-zero inspection of delegated prefixes, nibble-boundary
// classification, prefix arithmetic for pool carving, and compact keys for
// the aggregation granularities the paper uses (IPv4 /24, IPv6 /64).
//
// All functions operate on net/netip values. IPv4 addresses are handled in
// their native 32-bit form (netip.Addr.Is4 or 4-in-6 mapped forms are
// normalized with Unmap).
package netutil

import (
	"errors"
	"fmt"
	"math/bits"
	"net/netip"
)

// ErrPrefixRange is returned when a requested sub-prefix or host index does
// not fit inside the parent prefix.
var ErrPrefixRange = errors.New("netutil: index out of prefix range")

// U128 returns the 128-bit value of an IPv6 address as two 64-bit halves.
// IPv4 addresses are mapped into the low 32 bits of lo with hi == 0.
//
//lint:hotpath called per record on the CDN/Atlas aggregation paths
func U128(a netip.Addr) (hi, lo uint64) {
	a = a.Unmap()
	if a.Is4() {
		b := a.As4()
		return 0, uint64(b[0])<<24 | uint64(b[1])<<16 | uint64(b[2])<<8 | uint64(b[3])
	}
	b := a.As16()
	for i := 0; i < 8; i++ {
		hi = hi<<8 | uint64(b[i])
		lo = lo<<8 | uint64(b[i+8])
	}
	return hi, lo
}

// AddrFrom128 builds an IPv6 address from two 64-bit halves.
//
//lint:hotpath called per record on the CDN/Atlas aggregation paths
func AddrFrom128(hi, lo uint64) netip.Addr {
	var b [16]byte
	for i := 7; i >= 0; i-- {
		b[i] = byte(hi)
		b[i+8] = byte(lo)
		hi >>= 8
		lo >>= 8
	}
	return netip.AddrFrom16(b)
}

// U32 returns the 32-bit value of an IPv4 address.
// It panics if a is not an IPv4 (or 4-in-6 mapped) address.
//
//lint:hotpath called per record on the CDN/Atlas aggregation paths
func U32(a netip.Addr) uint32 {
	a = a.Unmap()
	if !a.Is4() {
		panic(fmt.Sprintf("netutil: U32 on non-IPv4 address %v", a))
	}
	b := a.As4()
	return uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
}

// AddrFromU32 builds an IPv4 address from its 32-bit value.
//
//lint:hotpath called per record on the CDN/Atlas aggregation paths
func AddrFromU32(v uint32) netip.Addr {
	return netip.AddrFrom4([4]byte{byte(v >> 24), byte(v >> 16), byte(v >> 8), byte(v)})
}

// PrefixAt returns the prefix of the given length that contains a,
// with host bits zeroed (a masked prefix).
//
//lint:hotpath called per record on the CDN/Atlas aggregation paths
func PrefixAt(a netip.Addr, length int) netip.Prefix {
	p, err := a.Unmap().Prefix(length)
	if err != nil {
		panic(fmt.Sprintf("netutil: PrefixAt(%v, %d): %v", a, length, err))
	}
	return p
}

// Prefix64 returns the /64 prefix containing the IPv6 address a.
// This is the granularity at which the paper tracks IPv6 assignments.
//
//lint:hotpath called per record on the CDN/Atlas aggregation paths
func Prefix64(a netip.Addr) netip.Prefix { return PrefixAt(a, 64) }

// Prefix24 returns the /24 prefix containing the IPv4 address a.
// This is the CDN dataset's IPv4 aggregation granularity.
//
//lint:hotpath called per record on the CDN/Atlas aggregation paths
func Prefix24(a netip.Addr) netip.Prefix { return PrefixAt(a, 24) }

// Key64 returns the upper 64 bits (the network component) of an IPv6
// address, usable as a compact map key for its /64.
//
//lint:hotpath called per record on the CDN/Atlas aggregation paths
func Key64(a netip.Addr) uint64 {
	hi, _ := U128(a)
	return hi
}

// Key24 returns the upper 24 bits of an IPv4 address shifted down,
// usable as a compact map key for its /24.
//
//lint:hotpath called per record on the CDN/Atlas aggregation paths
func Key24(a netip.Addr) uint32 { return U32(a) >> 8 }

// CommonPrefixLen returns the number of leading bits that a and b share.
// Both addresses must be the same family; the result is in [0, 32] for
// IPv4 and [0, 128] for IPv6. Mixed families return 0.
//
//lint:hotpath called per record on the CDN/Atlas aggregation paths
func CommonPrefixLen(a, b netip.Addr) int {
	a, b = a.Unmap(), b.Unmap()
	if a.Is4() != b.Is4() {
		return 0
	}
	if a.Is4() {
		x := U32(a) ^ U32(b)
		if x == 0 {
			return 32
		}
		return bits.LeadingZeros32(x)
	}
	ahi, alo := U128(a)
	bhi, blo := U128(b)
	if x := ahi ^ bhi; x != 0 {
		return bits.LeadingZeros64(x)
	}
	if x := alo ^ blo; x != 0 {
		return 64 + bits.LeadingZeros64(x)
	}
	return 128
}

// CommonPrefixLen64 returns the common prefix length between two IPv6 /64
// prefixes, capped at 64. This is the paper's "CPL" metric (§5.2) between
// successive delegated-prefix observations.
//
//lint:hotpath called per record on the CDN/Atlas aggregation paths
func CommonPrefixLen64(a, b netip.Prefix) int {
	n := CommonPrefixLen(a.Addr(), b.Addr())
	if n > 64 {
		n = 64
	}
	return n
}

// ZeroBitsBefore64 returns the number of consecutive zero bits in the
// network component of p immediately above the /64 boundary; that is, the
// length of the run of zeros ending at bit 64 (exclusive) when scanning
// from bit 63 upward. For a /64 prefix 2001:db8:40:aa00::/64 the low byte
// of the network part is 0x00, so the result is at least 8.
//
// The paper's RIPE Atlas subscriber-boundary technique (§5.3) intersects
// this over all /64s a probe observed: inferred length = 64 - zeros.
//
//lint:hotpath called per record on the CDN/Atlas aggregation paths
func ZeroBitsBefore64(p netip.Prefix) int {
	hi, _ := U128(p.Addr())
	if hi == 0 {
		return 64
	}
	return bits.TrailingZeros64(hi)
}

// ZeroBitsBefore64Of intersects ZeroBitsBefore64 across a set of /64
// prefixes: it returns the number of low bits of the network component that
// are zero in every element. An empty set yields 0.
func ZeroBitsBefore64Of(prefixes []netip.Prefix) int {
	if len(prefixes) == 0 {
		return 0
	}
	var or uint64
	for _, p := range prefixes {
		hi, _ := U128(p.Addr())
		or |= hi
	}
	if or == 0 {
		return 64
	}
	return bits.TrailingZeros64(or)
}

// NibbleZeroRun returns the longest run of zero bits ending at the /64
// boundary, rounded DOWN to a whole number of nibbles (multiples of 4 bits).
// The CDN trailing-zero technique (§5.3, Fig. 7) classifies each /64 by
// this run: 4 zero bits → /60 delegation, 8 → /56, 12 → /52, 16+ → /48.
//
//lint:hotpath called per record on the CDN/Atlas aggregation paths
func NibbleZeroRun(p netip.Prefix) int {
	z := ZeroBitsBefore64(p)
	return z &^ 3 // round down to nibble boundary
}

// InferredDelegation classifies a /64 prefix by its nibble-aligned trailing
// zero run into an inferred delegated-prefix length, mirroring Fig. 7's
// /48, /52, /56, /60 buckets. The boolean is false when the /64 has no
// nibble-aligned trailing zeros (no inference possible).
func InferredDelegation(p netip.Prefix) (length int, ok bool) {
	run := NibbleZeroRun(p)
	if run == 0 {
		return 0, false
	}
	if run > 16 {
		run = 16 // paper buckets stop at /48
	}
	return 64 - run, true
}

// SubPrefix returns the index-th sub-prefix of the given length inside
// parent. Index 0 is the lowest-numbered sub-prefix. It fails if length is
// shorter than the parent's or the index does not fit.
func SubPrefix(parent netip.Prefix, length int, index uint64) (netip.Prefix, error) {
	parent = parent.Masked()
	pb := parent.Bits()
	a := parent.Addr()
	maxBits := 32
	if a.Is6() {
		maxBits = 128
	}
	if length < pb || length > maxBits {
		return netip.Prefix{}, fmt.Errorf("netutil: sub-prefix /%d of %v: %w", length, parent, ErrPrefixRange)
	}
	span := length - pb
	if span < 64 && index >= 1<<uint(span) {
		return netip.Prefix{}, fmt.Errorf("netutil: index %d exceeds /%d span of %v: %w", index, length, parent, ErrPrefixRange)
	}
	if a.Is4() {
		v := U32(a) | uint32(index)<<(32-length)
		return netip.PrefixFrom(AddrFromU32(v), length), nil
	}
	hi, lo := U128(a)
	if length <= 64 {
		hi |= index << (64 - length)
	} else {
		// The index may straddle the hi/lo split when parent is shorter
		// than /64. Go defines x>>64 == 0 for uint64, so the hi
		// contribution vanishes when it does not straddle.
		shift := uint(128 - length)
		lo |= index << shift
		hi |= index >> (64 - shift)
	}
	return netip.PrefixFrom(AddrFrom128(hi, lo), length), nil
}

// HostAddr returns the address at the given host offset inside p.
// Offset 0 is the network address itself. It fails if host does not fit in
// the prefix's host bits (host bits wider than 64 accept any uint64).
func HostAddr(p netip.Prefix, host uint64) (netip.Addr, error) {
	p = p.Masked()
	a := p.Addr()
	if a.Is4() {
		hostBits := 32 - p.Bits()
		if hostBits < 32 && host >= 1<<uint(hostBits) {
			return netip.Addr{}, fmt.Errorf("netutil: host %d in %v: %w", host, p, ErrPrefixRange)
		}
		return AddrFromU32(U32(a) | uint32(host)), nil
	}
	hostBits := 128 - p.Bits()
	if hostBits < 64 && host >= 1<<uint(hostBits) {
		return netip.Addr{}, fmt.Errorf("netutil: host %d in %v: %w", host, p, ErrPrefixRange)
	}
	hi, lo := U128(a)
	if hostBits <= 64 {
		lo |= host
	} else {
		lo |= host // wider host parts still place the offset in the low half
	}
	return AddrFrom128(hi, lo), nil
}

// ContainsPrefix reports whether outer fully contains inner
// (same family, outer no longer than inner, and inner's network falls
// inside outer).
func ContainsPrefix(outer, inner netip.Prefix) bool {
	if outer.Addr().Is4() != inner.Addr().Is4() {
		return false
	}
	return outer.Bits() <= inner.Bits() && outer.Contains(inner.Addr())
}

// SameAtLength reports whether two addresses fall in the same prefix of the
// given length.
func SameAtLength(a, b netip.Addr, length int) bool {
	return CommonPrefixLen(a, b) >= length
}

// ScrambleBits returns a copy of the /64 prefix p with the bits between
// position `fromBit` (inclusive, counting from the left, 0-based) and the
// /64 boundary replaced by the low bits of r. This models CPE devices that
// "scramble the available bits in the ISP-delegated prefix" (§5.2, fn. 5 —
// a feature of many DTAG CPEs): the delegated /56 stays fixed while the
// sub-/64 selector bits are randomized.
func ScrambleBits(p netip.Prefix, fromBit int, r uint64) netip.Prefix {
	if fromBit < 0 || fromBit >= 64 {
		return p
	}
	hi, lo := U128(p.Addr())
	width := 64 - fromBit
	var mask uint64
	if width >= 64 {
		mask = ^uint64(0)
	} else {
		mask = 1<<uint(width) - 1
	}
	hi = hi&^mask | r&mask
	return netip.PrefixFrom(AddrFrom128(hi, lo), p.Bits()).Masked()
}

// ZeroLowBits returns a copy of /64 prefix p with the bits between fromBit
// and the /64 boundary zeroed. This models CPEs that announce the
// lowest-numbered /64 of their delegation (§5.3, scenario 1).
func ZeroLowBits(p netip.Prefix, fromBit int) netip.Prefix {
	return ScrambleBits(p, fromBit, 0)
}

// ComparePrefix orders prefixes by address and then by length (shorter, i.e.
// less specific, first), the natural address-space order. It fills the gap
// left by net/netip, whose Prefix has no Compare method, and replaces
// String()-based sorting, which is both slower and wrong ("10.0.0.0/8"
// sorts before "2.0.0.0/8" as a string).
func ComparePrefix(a, b netip.Prefix) int {
	if c := a.Addr().Compare(b.Addr()); c != 0 {
		return c
	}
	switch {
	case a.Bits() < b.Bits():
		return -1
	case a.Bits() > b.Bits():
		return 1
	}
	return 0
}
