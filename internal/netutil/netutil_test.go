package netutil

import (
	"math/rand"
	"net/netip"
	"testing"
	"testing/quick"
)

func mustAddr(t *testing.T, s string) netip.Addr {
	t.Helper()
	a, err := netip.ParseAddr(s)
	if err != nil {
		t.Fatalf("ParseAddr(%q): %v", s, err)
	}
	return a
}

func mustPrefix(t *testing.T, s string) netip.Prefix {
	t.Helper()
	p, err := netip.ParsePrefix(s)
	if err != nil {
		t.Fatalf("ParsePrefix(%q): %v", s, err)
	}
	return p
}

func TestU128RoundTrip(t *testing.T) {
	cases := []string{
		"::", "::1", "2001:db8::1", "ffff:ffff:ffff:ffff:ffff:ffff:ffff:ffff",
		"2003:40:aa00::", "fe80::1",
	}
	for _, s := range cases {
		a := mustAddr(t, s)
		hi, lo := U128(a)
		if got := AddrFrom128(hi, lo); got != a {
			t.Errorf("round trip %v: got %v (hi=%x lo=%x)", a, got, hi, lo)
		}
	}
}

func TestU128RoundTripProperty(t *testing.T) {
	f := func(hi, lo uint64) bool {
		ghi, glo := U128(AddrFrom128(hi, lo))
		return ghi == hi && glo == lo
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestU32RoundTripProperty(t *testing.T) {
	f := func(v uint32) bool { return U32(AddrFromU32(v)) == v }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestU128IPv4Mapping(t *testing.T) {
	a := mustAddr(t, "192.0.2.1")
	hi, lo := U128(a)
	if hi != 0 || lo != 0xC0000201 {
		t.Errorf("U128(192.0.2.1) = %x, %x; want 0, c0000201", hi, lo)
	}
}

func TestU32PanicsOnIPv6(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("U32 on IPv6 did not panic")
		}
	}()
	U32(mustAddr(t, "2001:db8::1"))
}

func TestPrefixKeys(t *testing.T) {
	a6 := mustAddr(t, "2604:3d08:4b80:aa00:1234:5678:9abc:def0")
	if got, want := Prefix64(a6), mustPrefix(t, "2604:3d08:4b80:aa00::/64"); got != want {
		t.Errorf("Prefix64 = %v, want %v", got, want)
	}
	a4 := mustAddr(t, "203.0.113.77")
	if got, want := Prefix24(a4), mustPrefix(t, "203.0.113.0/24"); got != want {
		t.Errorf("Prefix24 = %v, want %v", got, want)
	}
	if got, want := Key24(a4), uint32(203)<<16|0<<8|113; got != uint32(want) {
		t.Errorf("Key24 = %x, want %x", got, want)
	}
	hi, _ := U128(a6)
	if Key64(a6) != hi {
		t.Errorf("Key64 mismatch")
	}
}

func TestCommonPrefixLen(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"2604:3d08:4b80:aa00::", "2604:3d08:4b80:aaf0::", 56}, // the paper's §5.2 example
		{"2001:db8::", "2001:db8::", 128},
		{"2001:db8::", "2001:db8::1", 127},
		{"8000::", "::", 0},
		{"2003::", "2003:8000::", 16},
		{"192.0.2.1", "192.0.2.1", 32},
		{"192.0.2.0", "192.0.3.0", 23},
		{"0.0.0.0", "128.0.0.0", 0},
		{"192.0.2.1", "2001:db8::1", 0}, // mixed family
	}
	for _, c := range cases {
		if got := CommonPrefixLen(mustAddr(t, c.a), mustAddr(t, c.b)); got != c.want {
			t.Errorf("CommonPrefixLen(%s, %s) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestCommonPrefixLenSymmetricProperty(t *testing.T) {
	f := func(ahi, alo, bhi, blo uint64) bool {
		a, b := AddrFrom128(ahi, alo), AddrFrom128(bhi, blo)
		return CommonPrefixLen(a, b) == CommonPrefixLen(b, a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCommonPrefixLenConsistentWithPrefixContainment(t *testing.T) {
	// If CPL(a,b) >= L then both are inside the same /L.
	f := func(ahi, alo, bhi uint64) bool {
		a, b := AddrFrom128(ahi, alo), AddrFrom128(bhi, alo)
		n := CommonPrefixLen(a, b)
		if n == 0 {
			return true
		}
		p, err := a.Prefix(n)
		if err != nil {
			return false
		}
		return p.Contains(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCommonPrefixLen64Caps(t *testing.T) {
	a := mustPrefix(t, "2001:db8:1:2::/64")
	if got := CommonPrefixLen64(a, a); got != 64 {
		t.Errorf("CPL64 of identical prefixes = %d, want 64", got)
	}
	b := mustPrefix(t, "2001:db8:1:3::/64")
	if got := CommonPrefixLen64(a, b); got != 63 {
		t.Errorf("CPL64 = %d, want 63", got)
	}
}

func TestZeroBitsBefore64(t *testing.T) {
	cases := []struct {
		p    string
		want int
	}{
		{"2604:3d08:4b80:aa00::/64", 9}, // 0xaa00 has 9 trailing zero bits
		{"2604:3d08:4b80:aaf0::/64", 4},
		{"2604:3d08:4b80:aaf1::/64", 0},
		{"2003:40:aa:0::/64", 17}, // 0x00aa0000 has 17 trailing zero bits
		{"::/64", 64},
		{"2001:db8::/64", 35}, // 0x20010db800000000 has 35 trailing zeros
	}
	for _, c := range cases {
		if got := ZeroBitsBefore64(mustPrefix(t, c.p)); got != c.want {
			t.Errorf("ZeroBitsBefore64(%s) = %d, want %d", c.p, got, c.want)
		}
	}
}

func TestZeroBitsBefore64Of(t *testing.T) {
	set := []netip.Prefix{
		mustPrefix(t, "2003:40:aa:100::/64"),
		mustPrefix(t, "2003:40:bb:f00::/64"),
		mustPrefix(t, "2003:40:cc:200::/64"),
	}
	if got := ZeroBitsBefore64Of(set); got != 8 {
		t.Errorf("intersection = %d, want 8", got)
	}
	if got := ZeroBitsBefore64Of(nil); got != 0 {
		t.Errorf("empty set = %d, want 0", got)
	}
}

func TestNibbleZeroRunAndInferredDelegation(t *testing.T) {
	cases := []struct {
		p      string
		run    int
		length int
		ok     bool
	}{
		{"2001:db8:1:fff0::/64", 4, 60, true},
		{"2001:db8:1:ff00::/64", 8, 56, true},
		{"2001:db8:1:f000::/64", 12, 52, true},
		{"2001:db8:1::/64", 16, 48, true},
		{"2001:db8::/64", 32, 48, true}, // capped at /48 bucket
		{"2001:db8:1:ffff::/64", 0, 0, false},
		{"2001:db8:1:fff8::/64", 0, 0, false}, // 3 zero bits: below nibble
	}
	for _, c := range cases {
		p := mustPrefix(t, c.p)
		if got := NibbleZeroRun(p); got != c.run {
			t.Errorf("NibbleZeroRun(%s) = %d, want %d", c.p, got, c.run)
		}
		l, ok := InferredDelegation(p)
		if ok != c.ok || l != c.length {
			t.Errorf("InferredDelegation(%s) = (%d, %v), want (%d, %v)", c.p, l, ok, c.length, c.ok)
		}
	}
}

func TestSubPrefix(t *testing.T) {
	parent := mustPrefix(t, "2003::/19")
	p, err := SubPrefix(parent, 40, 5)
	if err != nil {
		t.Fatalf("SubPrefix: %v", err)
	}
	if want := mustPrefix(t, "2003:0:500::/40"); p != want {
		t.Errorf("SubPrefix = %v, want %v", p, want)
	}

	// /56 inside a /40.
	p2, err := SubPrefix(p, 56, 1)
	if err != nil {
		t.Fatalf("SubPrefix: %v", err)
	}
	if want := mustPrefix(t, "2003:0:500:100::/56"); p2 != want {
		t.Errorf("SubPrefix = %v, want %v", p2, want)
	}

	// Straddling the /64 boundary: /96 inside a /56.
	p3, err := SubPrefix(mustPrefix(t, "2001:db8:0:ff00::/56"), 96, 0x1_0000_0001)
	if err != nil {
		t.Fatalf("SubPrefix: %v", err)
	}
	if want := mustPrefix(t, "2001:db8:0:ff01:0:1::/96"); p3 != want {
		t.Errorf("SubPrefix straddle = %v, want %v", p3, want)
	}

	// IPv4.
	p4, err := SubPrefix(mustPrefix(t, "10.0.0.0/8"), 24, 300)
	if err != nil {
		t.Fatalf("SubPrefix v4: %v", err)
	}
	if want := mustPrefix(t, "10.1.44.0/24"); p4 != want {
		t.Errorf("SubPrefix v4 = %v, want %v", p4, want)
	}

	if _, err := SubPrefix(parent, 10, 0); err == nil {
		t.Error("length shorter than parent did not fail")
	}
	if _, err := SubPrefix(mustPrefix(t, "10.0.0.0/24"), 26, 4); err == nil {
		t.Error("out-of-range index did not fail")
	}
}

func TestSubPrefixContainedProperty(t *testing.T) {
	f := func(idx uint16) bool {
		parent := netip.MustParsePrefix("2003::/19")
		p, err := SubPrefix(parent, 40, uint64(idx))
		if err != nil {
			return false
		}
		return ContainsPrefix(parent, p) && p.Bits() == 40
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHostAddr(t *testing.T) {
	a, err := HostAddr(mustPrefix(t, "203.0.113.0/24"), 77)
	if err != nil {
		t.Fatalf("HostAddr: %v", err)
	}
	if want := mustAddr(t, "203.0.113.77"); a != want {
		t.Errorf("HostAddr = %v, want %v", a, want)
	}
	if _, err := HostAddr(mustPrefix(t, "203.0.113.0/24"), 256); err == nil {
		t.Error("overflowing host offset did not fail")
	}
	a6, err := HostAddr(mustPrefix(t, "2001:db8:1:2::/64"), 0xdeadbeef)
	if err != nil {
		t.Fatalf("HostAddr v6: %v", err)
	}
	if want := mustAddr(t, "2001:db8:1:2::dead:beef"); a6 != want {
		t.Errorf("HostAddr v6 = %v, want %v", a6, want)
	}
}

func TestContainsPrefix(t *testing.T) {
	cases := []struct {
		outer, inner string
		want         bool
	}{
		{"2003::/19", "2003:0:a0::/40", true},
		{"2003:0:a0::/40", "2003::/19", false},
		{"10.0.0.0/8", "10.200.0.0/16", true},
		{"10.0.0.0/8", "11.0.0.0/16", false},
		{"10.0.0.0/8", "2001:db8::/32", false},
	}
	for _, c := range cases {
		if got := ContainsPrefix(mustPrefix(t, c.outer), mustPrefix(t, c.inner)); got != c.want {
			t.Errorf("ContainsPrefix(%s, %s) = %v, want %v", c.outer, c.inner, got, c.want)
		}
	}
}

func TestScrambleAndZeroLowBits(t *testing.T) {
	p := mustPrefix(t, "2003:40:aa:ff00::/64")
	z := ZeroLowBits(p, 56)
	if want := mustPrefix(t, "2003:40:aa:ff00::/64"); z != want {
		t.Errorf("ZeroLowBits(56) = %v, want %v (bits below /56 were already zero)", z, want)
	}
	z = ZeroLowBits(p, 48)
	if want := mustPrefix(t, "2003:40:aa::/64"); z != want {
		t.Errorf("ZeroLowBits(48) = %v, want %v", z, want)
	}
	s := ScrambleBits(p, 56, 0xab)
	if want := mustPrefix(t, "2003:40:aa:ffab::/64"); s != want {
		t.Errorf("ScrambleBits = %v, want %v", s, want)
	}
	// Scrambling must preserve everything above fromBit.
	if CommonPrefixLen64(p, s) < 56 {
		t.Errorf("scramble disturbed bits above /56: %v vs %v", p, s)
	}
	// Out-of-range fromBit is a no-op.
	if got := ScrambleBits(p, -1, 7); got != p {
		t.Errorf("ScrambleBits(-1) = %v, want %v", got, p)
	}
	if got := ScrambleBits(p, 64, 7); got != p {
		t.Errorf("ScrambleBits(64) = %v, want %v", got, p)
	}
}

func TestScramblePreservesUpperBitsProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 500; i++ {
		hi := rng.Uint64()
		p := netip.PrefixFrom(AddrFrom128(hi, 0), 64)
		from := rng.Intn(64)
		s := ScrambleBits(p, from, rng.Uint64())
		if CommonPrefixLen(p.Addr(), s.Addr()) < from {
			t.Fatalf("scramble from %d disturbed upper bits: %v -> %v", from, p, s)
		}
	}
}

func TestSameAtLength(t *testing.T) {
	a := mustAddr(t, "2003:40:aa:100::1")
	b := mustAddr(t, "2003:40:aa:f00::1")
	if !SameAtLength(a, b, 48) {
		t.Error("expected same /48")
	}
	if SameAtLength(a, b, 56) {
		t.Error("did not expect same /56")
	}
}

func TestComparePrefix(t *testing.T) {
	mp := func(s string) netip.Prefix { return netip.MustParsePrefix(s) }
	cases := []struct {
		a, b string
		want int
	}{
		{"2.0.0.0/8", "10.0.0.0/8", -1}, // string order would invert this
		{"10.0.0.0/8", "2.0.0.0/8", 1},
		{"10.0.0.0/8", "10.0.0.0/8", 0},
		{"10.0.0.0/8", "10.0.0.0/16", -1}, // less specific first
		{"2003:1000::/40", "2003:2000::/40", -1},
		{"192.0.2.0/24", "2003::/19", -1}, // v4 sorts before v6, as Addr.Compare does
	}
	for _, c := range cases {
		if got := ComparePrefix(mp(c.a), mp(c.b)); got != c.want {
			t.Errorf("ComparePrefix(%s, %s) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}
