package netutil

import (
	"net/netip"
	"sort"
)

// Coalesce merges a set of prefixes into the minimal equivalent set:
// prefixes covered by others are dropped, and sibling pairs are merged
// into their parent, recursively. Families never merge with each other.
// The input is not modified; the result is sorted by family, network,
// then length.
//
// Blocklist maintenance uses this to aggregate per-subscriber blocks
// (§6): blocking every /56 of a misbehaving pool collapses into the pool
// prefix itself.
func Coalesce(prefixes []netip.Prefix) []netip.Prefix {
	if len(prefixes) == 0 {
		return nil
	}
	ps := make([]netip.Prefix, 0, len(prefixes))
	for _, p := range prefixes {
		if p.IsValid() {
			ps = append(ps, p.Masked())
		}
	}
	for {
		sortPrefixes(ps)
		// Drop prefixes covered by an earlier (shorter-or-equal) one.
		kept := ps[:0]
		for _, p := range ps {
			covered := false
			for _, q := range kept {
				if ContainsPrefix(q, p) {
					covered = true
					break
				}
			}
			if !covered {
				kept = append(kept, p)
			}
		}
		ps = kept
		// Merge sibling pairs.
		merged := false
		out := ps[:0]
		for i := 0; i < len(ps); i++ {
			if i+1 < len(ps) && siblings(ps[i], ps[i+1]) {
				parent, err := ps[i].Addr().Prefix(ps[i].Bits() - 1)
				if err == nil {
					out = append(out, parent)
					i++
					merged = true
					continue
				}
			}
			out = append(out, ps[i])
		}
		ps = out
		if !merged {
			return append([]netip.Prefix(nil), ps...)
		}
	}
}

// siblings reports whether a and b are the two halves of one parent.
func siblings(a, b netip.Prefix) bool {
	if a.Bits() != b.Bits() || a.Bits() == 0 {
		return false
	}
	if a.Addr().Is4() != b.Addr().Is4() {
		return false
	}
	pa, erra := a.Addr().Prefix(a.Bits() - 1)
	pb, errb := b.Addr().Prefix(b.Bits() - 1)
	return erra == nil && errb == nil && pa == pb && a != b
}

func sortPrefixes(ps []netip.Prefix) {
	sort.Slice(ps, func(i, j int) bool {
		ai, aj := ps[i].Addr(), ps[j].Addr()
		if ai.Is4() != aj.Is4() {
			return ai.Is4()
		}
		if c := ai.Compare(aj); c != 0 {
			return c < 0
		}
		return ps[i].Bits() < ps[j].Bits()
	})
}

// CoveredBy reports whether addr falls inside any prefix of the set.
func CoveredBy(addr netip.Addr, set []netip.Prefix) bool {
	for _, p := range set {
		if p.Contains(addr) {
			return true
		}
	}
	return false
}
