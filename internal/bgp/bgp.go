// Package bgp models the routed-prefix view the paper uses to classify
// address changes: a RIB mapping prefixes to origin ASNs, equivalent to the
// Routeviews pfx2as dataset ([1] in the paper). The analyzer asks "did this
// assignment change cross a routed BGP prefix boundary?" (Table 2) and
// "which ASN does this address belong to?" (the CDN pipeline's
// ASN-mismatch filter, §4.1).
//
// The package includes a text codec compatible with the Routeviews
// pfx2as format (one "prefix<TAB>length<TAB>asn" line per entry).
package bgp

import (
	"bufio"
	"fmt"
	"io"
	"net/netip"
	"sort"
	"strconv"
	"strings"

	"dynamips/internal/netutil"

	"dynamips/internal/rtrie"
)

// Table is a RIB keyed by routed prefix with origin-ASN values.
// The zero value is empty and ready to use.
type Table struct {
	trie  rtrie.Trie[uint32]
	names map[uint32]string
}

// Announce inserts (or replaces) a routed prefix with its origin ASN.
func (t *Table) Announce(p netip.Prefix, asn uint32) {
	t.trie.Insert(p, asn)
}

// SetName attaches a human-readable operator name to an ASN for reporting.
func (t *Table) SetName(asn uint32, name string) {
	if t.names == nil {
		t.names = make(map[uint32]string)
	}
	t.names[asn] = name
}

// Name returns the operator name for an ASN, or "AS<n>".
func (t *Table) Name(asn uint32) string {
	if n, ok := t.names[asn]; ok {
		return n
	}
	return fmt.Sprintf("AS%d", asn)
}

// Len returns the number of routed prefixes.
func (t *Table) Len() int { return t.trie.Len() }

// Origin returns the origin ASN and routed BGP prefix covering a.
func (t *Table) Origin(a netip.Addr) (asn uint32, routed netip.Prefix, ok bool) {
	return t.trie.Lookup(a)
}

// OriginOfPrefix returns the origin ASN and routed BGP prefix covering a
// prefix's network address.
func (t *Table) OriginOfPrefix(p netip.Prefix) (asn uint32, routed netip.Prefix, ok bool) {
	return t.trie.Lookup(p.Addr())
}

// SameRoutedPrefix reports whether two addresses fall inside the same
// routed BGP prefix. Addresses outside the table never match.
func (t *Table) SameRoutedPrefix(a, b netip.Addr) bool {
	_, pa, oka := t.trie.Lookup(a)
	_, pb, okb := t.trie.Lookup(b)
	return oka && okb && pa == pb
}

// Entry is one (prefix, origin ASN) pair of the RIB.
type Entry struct {
	Prefix netip.Prefix
	ASN    uint32
}

// Entries returns the RIB contents in address order (netutil.ComparePrefix)
// for stable output.
func (t *Table) Entries() []Entry {
	var es []Entry
	t.trie.Walk(func(p netip.Prefix, asn uint32) bool {
		es = append(es, Entry{p, asn})
		return true
	})
	sort.Slice(es, func(i, j int) bool { return netutil.ComparePrefix(es[i].Prefix, es[j].Prefix) < 0 })
	return es
}

// WritePfx2as writes the table in Routeviews pfx2as text format:
// "network<TAB>prefixlen<TAB>asn", one entry per line.
func (t *Table) WritePfx2as(w io.Writer) error {
	bw := bufio.NewWriter(w)
	var werr error
	t.trie.Walk(func(p netip.Prefix, asn uint32) bool {
		_, werr = fmt.Fprintf(bw, "%s\t%d\t%d\n", p.Addr(), p.Bits(), asn)
		return werr == nil
	})
	if werr != nil {
		return fmt.Errorf("bgp: writing pfx2as: %w", werr)
	}
	return bw.Flush()
}

// ReadPfx2as parses a Routeviews-style pfx2as stream into a new Table.
// Blank lines and lines starting with '#' are skipped. Multi-origin
// entries ("asn1_asn2" or "asn1,asn2") keep the first origin, matching
// common pfx2as consumers.
func ReadPfx2as(r io.Reader) (*Table, error) {
	t := &Table{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1024*1024)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) != 3 {
			return nil, fmt.Errorf("bgp: pfx2as line %d: want 3 fields, got %d", line, len(fields))
		}
		addr, err := netip.ParseAddr(fields[0])
		if err != nil {
			return nil, fmt.Errorf("bgp: pfx2as line %d: %w", line, err)
		}
		bits, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("bgp: pfx2as line %d: bad length: %w", line, err)
		}
		p, err := addr.Prefix(bits)
		if err != nil {
			return nil, fmt.Errorf("bgp: pfx2as line %d: %w", line, err)
		}
		asField := fields[2]
		if i := strings.IndexAny(asField, "_,"); i >= 0 {
			asField = asField[:i]
		}
		asn, err := strconv.ParseUint(asField, 10, 32)
		if err != nil {
			return nil, fmt.Errorf("bgp: pfx2as line %d: bad asn: %w", line, err)
		}
		t.Announce(p, uint32(asn))
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("bgp: reading pfx2as: %w", err)
	}
	return t, nil
}
