package bgp

import (
	"bytes"
	"net/netip"
	"strings"
	"testing"

	"dynamips/internal/netutil"
)

func mp(s string) netip.Prefix { return netip.MustParsePrefix(s) }
func ma(s string) netip.Addr   { return netip.MustParseAddr(s) }

func TestOriginLookup(t *testing.T) {
	var tab Table
	tab.Announce(mp("2003::/19"), 3320)
	tab.Announce(mp("2003:40::/27"), 3320)
	tab.Announce(mp("81.0.0.0/10"), 3215)
	tab.SetName(3320, "DTAG")

	asn, p, ok := tab.Origin(ma("2003:40:aa00::1"))
	if !ok || asn != 3320 || p != mp("2003:40::/27") {
		t.Errorf("Origin = (%d, %v, %v)", asn, p, ok)
	}
	asn, p, ok = tab.Origin(ma("2003:80::1"))
	if !ok || asn != 3320 || p != mp("2003::/19") {
		t.Errorf("Origin = (%d, %v, %v)", asn, p, ok)
	}
	if _, _, ok := tab.Origin(ma("9.9.9.9")); ok {
		t.Error("unrouted address matched")
	}
	if got := tab.Name(3320); got != "DTAG" {
		t.Errorf("Name = %q", got)
	}
	if got := tab.Name(7922); got != "AS7922" {
		t.Errorf("fallback Name = %q", got)
	}
}

func TestOriginOfPrefix(t *testing.T) {
	var tab Table
	tab.Announce(mp("2a01:c000::/19"), 3215)
	asn, routed, ok := tab.OriginOfPrefix(mp("2a01:cb00:1:2::/64"))
	if !ok || asn != 3215 || routed != mp("2a01:c000::/19") {
		t.Errorf("OriginOfPrefix = (%d, %v, %v)", asn, routed, ok)
	}
}

func TestSameRoutedPrefix(t *testing.T) {
	var tab Table
	tab.Announce(mp("81.0.0.0/10"), 3215)
	tab.Announce(mp("90.0.0.0/9"), 3215)
	if !tab.SameRoutedPrefix(ma("81.1.2.3"), ma("81.60.9.9")) {
		t.Error("same routed prefix not detected")
	}
	if tab.SameRoutedPrefix(ma("81.1.2.3"), ma("90.1.2.3")) {
		t.Error("different routed prefixes matched")
	}
	if tab.SameRoutedPrefix(ma("81.1.2.3"), ma("8.8.8.8")) {
		t.Error("unrouted address matched")
	}
}

func TestPfx2asRoundTrip(t *testing.T) {
	var tab Table
	tab.Announce(mp("1.0.0.0/24"), 13335)
	tab.Announce(mp("2003::/19"), 3320)
	tab.Announce(mp("73.0.0.0/8"), 7922)

	var buf bytes.Buffer
	if err := tab.WritePfx2as(&buf); err != nil {
		t.Fatalf("WritePfx2as: %v", err)
	}
	got, err := ReadPfx2as(&buf)
	if err != nil {
		t.Fatalf("ReadPfx2as: %v", err)
	}
	if got.Len() != 3 {
		t.Fatalf("round-trip Len = %d", got.Len())
	}
	a, b := tab.Entries(), got.Entries()
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("entry %d: %v != %v", i, a[i], b[i])
		}
	}
}

func TestReadPfx2asFormats(t *testing.T) {
	in := `# comment
1.0.0.0	24	13335

2003::	19	3320_6695
9.9.9.0	24	19281,1234
`
	tab, err := ReadPfx2as(strings.NewReader(in))
	if err != nil {
		t.Fatalf("ReadPfx2as: %v", err)
	}
	if tab.Len() != 3 {
		t.Fatalf("Len = %d", tab.Len())
	}
	if asn, _, _ := tab.Origin(ma("2003::1")); asn != 3320 {
		t.Errorf("multi-origin underscore: asn = %d", asn)
	}
	if asn, _, _ := tab.Origin(ma("9.9.9.9")); asn != 19281 {
		t.Errorf("multi-origin comma: asn = %d", asn)
	}
}

func TestReadPfx2asErrors(t *testing.T) {
	cases := []string{
		"1.0.0.0 24",              // too few fields
		"nonsense 24 13335",       // bad address
		"1.0.0.0 notanum 13335",   // bad length
		"1.0.0.0 99 13335",        // length out of range for v4
		"1.0.0.0 24 notanasn",     // bad asn
		"1.0.0.0 24 999999999999", // asn overflow
	}
	for _, c := range cases {
		if _, err := ReadPfx2as(strings.NewReader(c)); err == nil {
			t.Errorf("ReadPfx2as(%q) did not fail", c)
		}
	}
}

func TestEntriesSorted(t *testing.T) {
	var tab Table
	tab.Announce(mp("9.0.0.0/8"), 1)
	tab.Announce(mp("1.0.0.0/8"), 2)
	tab.Announce(mp("2003::/19"), 3)
	es := tab.Entries()
	for i := 1; i < len(es); i++ {
		if netutil.ComparePrefix(es[i-1].Prefix, es[i].Prefix) > 0 {
			t.Fatalf("entries not sorted: %v", es)
		}
	}
}
