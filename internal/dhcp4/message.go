// Package dhcp4 implements the subset of DHCPv4 (RFC 2131/2132) that
// domestic ISPs use to assign IPv4 addresses to CPE devices: the wire
// codec for the fixed-format BOOTP header plus TLV options, and a lease
// server with configurable lease durations and reclamation behavior.
//
// The paper's temporal analyses hinge on DHCP semantics — leases, renewals
// before expiry, reclamation after CPE outages longer than the lease
// (§2.2) — and internal/isp drives this package's Server as the IPv4
// assignment machinery for simulated subscribers.
package dhcp4

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net/netip"
	"sort"
)

// MessageType is the DHCP message type (option 53).
type MessageType byte

// RFC 2132 §9.6 message type values.
const (
	Discover MessageType = 1
	Offer    MessageType = 2
	Request  MessageType = 3
	Decline  MessageType = 4
	ACK      MessageType = 5
	NAK      MessageType = 6
	Release  MessageType = 7
	Inform   MessageType = 8
)

var mtNames = map[MessageType]string{
	Discover: "DISCOVER", Offer: "OFFER", Request: "REQUEST", Decline: "DECLINE",
	ACK: "ACK", NAK: "NAK", Release: "RELEASE", Inform: "INFORM",
}

// String returns the RFC name of the message type.
func (m MessageType) String() string {
	if s, ok := mtNames[m]; ok {
		return s
	}
	return fmt.Sprintf("TYPE(%d)", byte(m))
}

// Option codes used by this implementation (RFC 2132).
const (
	OptSubnetMask    byte = 1
	OptRouter        byte = 3
	OptDNS           byte = 6
	OptRequestedIP   byte = 50
	OptLeaseTime     byte = 51
	OptMessageType   byte = 53
	OptServerID      byte = 54
	OptRenewalTime   byte = 58
	OptRebindingTime byte = 59
	optPad           byte = 0
	optEnd           byte = 255
)

// Opcode values for the BOOTP op field.
const (
	OpRequest byte = 1
	OpReply   byte = 2
)

var magicCookie = [4]byte{99, 130, 83, 99}

// Errors returned by Unmarshal.
var (
	ErrShortMessage = errors.New("dhcp4: message too short")
	ErrBadCookie    = errors.New("dhcp4: bad magic cookie")
	ErrBadOptions   = errors.New("dhcp4: malformed options")
)

// HWAddr is a client hardware address (chaddr); residential CPEs use
// 6-byte MACs.
type HWAddr [6]byte

// String formats the hardware address in colon notation.
func (h HWAddr) String() string {
	return fmt.Sprintf("%02x:%02x:%02x:%02x:%02x:%02x", h[0], h[1], h[2], h[3], h[4], h[5])
}

// Message is a DHCPv4 message: the fixed BOOTP fields plus options.
type Message struct {
	Op     byte
	Hops   byte
	XID    uint32
	Secs   uint16
	Flags  uint16
	CIAddr netip.Addr // client's current address, for renewals
	YIAddr netip.Addr // "your" address, set by the server
	SIAddr netip.Addr
	GIAddr netip.Addr
	CHAddr HWAddr

	Options map[byte][]byte
}

const headerLen = 236 // through the file field, before the cookie

// NewMessage returns a message of the given type with empty but non-nil
// options and zeroed addresses.
func NewMessage(mt MessageType, xid uint32, hw HWAddr) *Message {
	op := OpRequest
	if mt == Offer || mt == ACK || mt == NAK {
		op = OpReply
	}
	m := &Message{
		Op:     op,
		XID:    xid,
		CHAddr: hw,
		CIAddr: netip.IPv4Unspecified(),
		YIAddr: netip.IPv4Unspecified(),
		SIAddr: netip.IPv4Unspecified(),
		GIAddr: netip.IPv4Unspecified(),
		Options: map[byte][]byte{
			OptMessageType: {byte(mt)},
		},
	}
	return m
}

// Type returns the message type from option 53, or 0 if absent.
func (m *Message) Type() MessageType {
	if v, ok := m.Options[OptMessageType]; ok && len(v) == 1 {
		return MessageType(v[0])
	}
	return 0
}

func put4(b []byte, a netip.Addr) {
	if a.IsValid() {
		v4 := a.Unmap().As4()
		copy(b, v4[:])
	}
}

func get4(b []byte) netip.Addr {
	return netip.AddrFrom4([4]byte(b[:4]))
}

// SetAddrOption stores an IPv4 address option (e.g. server ID, requested IP).
func (m *Message) SetAddrOption(code byte, a netip.Addr) {
	v4 := a.Unmap().As4()
	m.Options[code] = v4[:]
}

// AddrOption fetches an IPv4 address option.
func (m *Message) AddrOption(code byte) (netip.Addr, bool) {
	v, ok := m.Options[code]
	if !ok || len(v) != 4 {
		return netip.Addr{}, false
	}
	return get4(v), true
}

// SetU32Option stores a 32-bit option (e.g. lease time in seconds).
func (m *Message) SetU32Option(code byte, v uint32) {
	b := make([]byte, 4)
	binary.BigEndian.PutUint32(b, v)
	m.Options[code] = b
}

// U32Option fetches a 32-bit option.
func (m *Message) U32Option(code byte) (uint32, bool) {
	v, ok := m.Options[code]
	if !ok || len(v) != 4 {
		return 0, false
	}
	return binary.BigEndian.Uint32(v), true
}

// Marshal encodes the message to wire format.
func (m *Message) Marshal() []byte {
	buf := make([]byte, headerLen, headerLen+4+64)
	buf[0] = m.Op
	buf[1] = 1 // htype: ethernet
	buf[2] = 6 // hlen
	buf[3] = m.Hops
	binary.BigEndian.PutUint32(buf[4:], m.XID)
	binary.BigEndian.PutUint16(buf[8:], m.Secs)
	binary.BigEndian.PutUint16(buf[10:], m.Flags)
	put4(buf[12:], m.CIAddr)
	put4(buf[16:], m.YIAddr)
	put4(buf[20:], m.SIAddr)
	put4(buf[24:], m.GIAddr)
	copy(buf[28:], m.CHAddr[:])
	// sname (64) and file (128) stay zero.
	buf = append(buf, magicCookie[:]...)
	codes := make([]byte, 0, len(m.Options))
	for c := range m.Options {
		codes = append(codes, c)
	}
	sort.Slice(codes, func(i, j int) bool { return codes[i] < codes[j] })
	for _, c := range codes {
		v := m.Options[c]
		buf = append(buf, c, byte(len(v)))
		buf = append(buf, v...)
	}
	buf = append(buf, optEnd)
	return buf
}

// Unmarshal decodes a wire-format message.
func Unmarshal(b []byte) (*Message, error) {
	if len(b) < headerLen+4 {
		return nil, fmt.Errorf("%w: %d bytes", ErrShortMessage, len(b))
	}
	if [4]byte(b[headerLen:headerLen+4]) != magicCookie {
		return nil, ErrBadCookie
	}
	m := &Message{
		Op:      b[0],
		Hops:    b[3],
		XID:     binary.BigEndian.Uint32(b[4:]),
		Secs:    binary.BigEndian.Uint16(b[8:]),
		Flags:   binary.BigEndian.Uint16(b[10:]),
		CIAddr:  get4(b[12:]),
		YIAddr:  get4(b[16:]),
		SIAddr:  get4(b[20:]),
		GIAddr:  get4(b[24:]),
		Options: make(map[byte][]byte),
	}
	copy(m.CHAddr[:], b[28:34])
	opts := b[headerLen+4:]
	for i := 0; i < len(opts); {
		code := opts[i]
		switch code {
		case optPad:
			i++
			continue
		case optEnd:
			return m, nil
		}
		if i+1 >= len(opts) {
			return nil, fmt.Errorf("%w: truncated option %d", ErrBadOptions, code)
		}
		l := int(opts[i+1])
		if i+2+l > len(opts) {
			return nil, fmt.Errorf("%w: option %d overruns message", ErrBadOptions, code)
		}
		m.Options[code] = append([]byte(nil), opts[i+2:i+2+l]...)
		i += 2 + l
	}
	return nil, fmt.Errorf("%w: missing end option", ErrBadOptions)
}
