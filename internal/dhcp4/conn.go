package dhcp4

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"
)

// Handler answers one DHCP message. *Server implements it directly for
// single-goroutine use; wrap a Server in NewGuarded when administrative
// operations must interleave with a live wire front end.
type Handler interface {
	Handle(req *Message) (*Message, error)
}

// Guarded serializes access to a Server shared between a Serve loop and
// administrative operations such as an outage (LoseState) injected while
// the front end is running. The plain simulator path keeps calling the
// Server directly and pays no locking.
type Guarded struct {
	mu  sync.Mutex
	srv *Server
}

// NewGuarded wraps srv for concurrent use.
func NewGuarded(srv *Server) *Guarded { return &Guarded{srv: srv} }

// Handle answers one message under the lock.
func (g *Guarded) Handle(req *Message) (*Message, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.srv.Handle(req)
}

// LoseState drops all bindings under the lock, modeling a server outage
// while the wire front end keeps serving.
func (g *Guarded) LoseState() {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.srv.LoseState()
}

// ActiveLeases counts unexpired bindings under the lock.
func (g *Guarded) ActiveLeases() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.srv.ActiveLeases()
}

// Serve answers DHCP messages arriving on conn with replies from srv until
// conn is closed or a non-temporary read error occurs. Replies go back to
// the packet's source address (the unicast relay model; link-layer
// broadcast is out of scope for the simulator). Serve returns net.ErrClosed
// once the listener is closed.
//
// A bare *Server is not safe for concurrent use: Serve processes packets
// strictly in arrival order, and nothing else may touch the server while
// the loop runs. To mutate server state mid-serve (outages), pass a
// *Guarded instead.
func Serve(conn net.PacketConn, srv Handler) error {
	buf := make([]byte, 1500)
	for {
		n, src, err := conn.ReadFrom(buf)
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return net.ErrClosed
			}
			return fmt.Errorf("dhcp4: read: %w", err)
		}
		req, err := Unmarshal(buf[:n])
		if err != nil {
			continue // malformed datagrams are dropped, as on a real server
		}
		rep, err := srv.Handle(req)
		if err != nil || rep == nil {
			continue
		}
		if _, err := conn.WriteTo(rep.Marshal(), src); err != nil {
			if errors.Is(err, net.ErrClosed) {
				return net.ErrClosed
			}
			return fmt.Errorf("dhcp4: write: %w", err)
		}
	}
}

// Client performs DHCP exchanges over a PacketConn against a server
// address. It is a minimal CPE-side implementation sufficient for the
// DORA and renewal flows.
//
// Clock is required: lease expiries are computed against the same injected
// clock the server runs on, so a simulation's virtual epoch and a live
// deployment's wall clock both stay internally consistent. Only the socket
// read deadline uses the wall clock (real I/O waits in real time).
type Client struct {
	Conn    net.PacketConn
	Server  net.Addr
	HW      HWAddr
	Clock   Clock
	Timeout time.Duration
	// Jitter randomizes the RFC 2131 §4.1 retransmission delays; nil
	// uses the unjittered 4→8→16→32→64 s base schedule.
	Jitter Jitter
	// WaitScale compresses the retransmission schedule for tests (the
	// 4 s first wait becomes 4 ms at 0.001); 0 means 1. Timeout still
	// caps the whole exchange in real wall time.
	WaitScale float64

	xid uint32
}

// ErrExchangeTimeout is returned when every transmission of an exchange
// went unanswered and the retransmission schedule gave up.
var ErrExchangeTimeout = errors.New("dhcp4: no reply before give-up")

func (c *Client) timeout() time.Duration {
	if c.Timeout <= 0 {
		return 2 * time.Second
	}
	return c.Timeout
}

// now reads the injected clock.
func (c *Client) now() int64 {
	if c.Clock == nil {
		panic("dhcp4: Client.Clock not set; inject the simulation clock (or wrap time.Now().Unix() for live use)")
	}
	return c.Clock.Now()
}

// exchange transmits req and waits for the matching reply, retransmitting
// the identical datagram on the RFC 2131 §4.1 schedule (4→8→16→32→64 s,
// jittered ±1 s) until a reply with the request's xid arrives or the
// schedule — or the client's overall Timeout — gives up. Replies carrying
// any other xid are late or duplicated answers to earlier transactions
// and are discarded; a duplicated reply to *this* request is accepted
// once and its twin dropped by the next exchange's xid filter. Deadlines
// are genuine wire I/O bounds and run on the wall clock even in
// simulations; the virtual-time equivalent of this loop is
// faultnet.Link.Exchange.
func (c *Client) exchange(req *Message) (*Message, error) {
	payload := req.Marshal()
	rt := NewRetransmitter(c.Jitter)
	scale := c.WaitScale
	if scale <= 0 {
		scale = 1
	}
	remaining := c.timeout() // overall budget: the waits may not sum past it
	buf := make([]byte, 1500)
	sends := 0
	for {
		if _, err := c.Conn.WriteTo(payload, c.Server); err != nil {
			return nil, fmt.Errorf("dhcp4: client write: %w", err)
		}
		sends++
		waitMS, more := rt.Next()
		wait := time.Duration(float64(waitMS)*scale) * time.Millisecond
		last := !more
		if wait >= remaining {
			wait = remaining
			last = true
		}
		remaining -= wait
		if err := c.Conn.SetReadDeadline(time.Now().Add(wait)); err != nil {
			return nil, fmt.Errorf("dhcp4: set deadline: %w", err)
		}
		for {
			n, _, err := c.Conn.ReadFrom(buf)
			if err != nil {
				var ne net.Error
				if errors.As(err, &ne) && ne.Timeout() {
					break // this wait expired; retransmit or give up
				}
				return nil, fmt.Errorf("dhcp4: client read: %w", err)
			}
			rep, err := Unmarshal(buf[:n])
			if err != nil {
				continue
			}
			if rep.XID == req.XID && rep.CHAddr == c.HW {
				return rep, nil
			}
		}
		if last {
			return nil, fmt.Errorf("%w (%d transmissions of xid %d)", ErrExchangeTimeout, sends, req.XID)
		}
	}
}

// Acquire runs the DORA exchange over the wire and returns the lease.
func (c *Client) Acquire() (Lease, error) {
	c.xid++
	offer, err := c.exchange(NewMessage(Discover, c.xid, c.HW))
	if err != nil {
		return Lease{}, err
	}
	if offer.Type() != Offer {
		return Lease{}, fmt.Errorf("dhcp4: expected OFFER, got %v", offer.Type())
	}
	// A fresh xid for the REQUEST leg keeps a late or duplicated OFFER
	// from the discover leg out of this exchange's reply filter.
	c.xid++
	req := NewMessage(Request, c.xid, c.HW)
	req.SetAddrOption(OptRequestedIP, offer.YIAddr)
	ack, err := c.exchange(req)
	if err != nil {
		return Lease{}, err
	}
	if ack.Type() != ACK {
		return Lease{}, fmt.Errorf("dhcp4: expected ACK, got %v", ack.Type())
	}
	lease, _ := ack.U32Option(OptLeaseTime)
	return Lease{Addr: ack.YIAddr, HW: c.HW, Expiry: c.now() + int64(lease)}, nil
}

// Renew extends an existing lease over the wire (the RFC 2131 RENEWING
// state: a unicast REQUEST with the current address in ciaddr). It fails
// when the server NAKs, at which point the client must re-Acquire.
func (c *Client) Renew(l Lease) (Lease, error) {
	c.xid++
	req := NewMessage(Request, c.xid, c.HW)
	req.CIAddr = l.Addr
	rep, err := c.exchange(req)
	if err != nil {
		return Lease{}, err
	}
	if rep.Type() != ACK {
		return Lease{}, fmt.Errorf("dhcp4: renew of %v got %v", l.Addr, rep.Type())
	}
	lease, _ := rep.U32Option(OptLeaseTime)
	return Lease{Addr: rep.YIAddr, HW: c.HW, Expiry: c.now() + int64(lease)}, nil
}

// Release notifies the server that the client's lease can be reclaimed.
// DHCP RELEASE elicits no reply.
func (c *Client) Release(l Lease) error {
	c.xid++
	rel := NewMessage(Release, c.xid, c.HW)
	rel.CIAddr = l.Addr
	if _, err := c.Conn.WriteTo(rel.Marshal(), c.Server); err != nil {
		return fmt.Errorf("dhcp4: client write: %w", err)
	}
	return nil
}
