package dhcp4

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"
)

// Handler answers one DHCP message. *Server implements it directly for
// single-goroutine use; wrap a Server in NewGuarded when administrative
// operations must interleave with a live wire front end.
type Handler interface {
	Handle(req *Message) (*Message, error)
}

// Guarded serializes access to a Server shared between a Serve loop and
// administrative operations such as an outage (LoseState) injected while
// the front end is running. The plain simulator path keeps calling the
// Server directly and pays no locking.
type Guarded struct {
	mu  sync.Mutex
	srv *Server
}

// NewGuarded wraps srv for concurrent use.
func NewGuarded(srv *Server) *Guarded { return &Guarded{srv: srv} }

// Handle answers one message under the lock.
func (g *Guarded) Handle(req *Message) (*Message, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.srv.Handle(req)
}

// LoseState drops all bindings under the lock, modeling a server outage
// while the wire front end keeps serving.
func (g *Guarded) LoseState() {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.srv.LoseState()
}

// ActiveLeases counts unexpired bindings under the lock.
func (g *Guarded) ActiveLeases() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.srv.ActiveLeases()
}

// Serve answers DHCP messages arriving on conn with replies from srv until
// conn is closed or a non-temporary read error occurs. Replies go back to
// the packet's source address (the unicast relay model; link-layer
// broadcast is out of scope for the simulator). Serve returns net.ErrClosed
// once the listener is closed.
//
// A bare *Server is not safe for concurrent use: Serve processes packets
// strictly in arrival order, and nothing else may touch the server while
// the loop runs. To mutate server state mid-serve (outages), pass a
// *Guarded instead.
func Serve(conn net.PacketConn, srv Handler) error {
	buf := make([]byte, 1500)
	for {
		n, src, err := conn.ReadFrom(buf)
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return net.ErrClosed
			}
			return fmt.Errorf("dhcp4: read: %w", err)
		}
		req, err := Unmarshal(buf[:n])
		if err != nil {
			continue // malformed datagrams are dropped, as on a real server
		}
		rep, err := srv.Handle(req)
		if err != nil || rep == nil {
			continue
		}
		if _, err := conn.WriteTo(rep.Marshal(), src); err != nil {
			if errors.Is(err, net.ErrClosed) {
				return net.ErrClosed
			}
			return fmt.Errorf("dhcp4: write: %w", err)
		}
	}
}

// Client performs DHCP exchanges over a PacketConn against a server
// address. It is a minimal CPE-side implementation sufficient for the
// DORA and renewal flows.
//
// Clock is required: lease expiries are computed against the same injected
// clock the server runs on, so a simulation's virtual epoch and a live
// deployment's wall clock both stay internally consistent. Only the socket
// read deadline uses the wall clock (real I/O waits in real time).
type Client struct {
	Conn    net.PacketConn
	Server  net.Addr
	HW      HWAddr
	Clock   Clock
	Timeout time.Duration

	xid uint32
}

func (c *Client) timeout() time.Duration {
	if c.Timeout <= 0 {
		return 2 * time.Second
	}
	return c.Timeout
}

// now reads the injected clock.
func (c *Client) now() int64 {
	if c.Clock == nil {
		panic("dhcp4: Client.Clock not set; inject the simulation clock (or wrap time.Now().Unix() for live use)")
	}
	return c.Clock.Now()
}

func (c *Client) exchange(req *Message) (*Message, error) {
	if _, err := c.Conn.WriteTo(req.Marshal(), c.Server); err != nil {
		return nil, fmt.Errorf("dhcp4: client write: %w", err)
	}
	// The read deadline is genuine wire I/O: it bounds how long the real
	// socket blocks, so it runs on the wall clock even in simulations.
	if err := c.Conn.SetReadDeadline(time.Now().Add(c.timeout())); err != nil {
		return nil, fmt.Errorf("dhcp4: set deadline: %w", err)
	}
	buf := make([]byte, 1500)
	for {
		n, _, err := c.Conn.ReadFrom(buf)
		if err != nil {
			return nil, fmt.Errorf("dhcp4: client read: %w", err)
		}
		rep, err := Unmarshal(buf[:n])
		if err != nil {
			continue
		}
		if rep.XID == req.XID && rep.CHAddr == c.HW {
			return rep, nil
		}
	}
}

// Acquire runs the DORA exchange over the wire and returns the lease.
func (c *Client) Acquire() (Lease, error) {
	c.xid++
	offer, err := c.exchange(NewMessage(Discover, c.xid, c.HW))
	if err != nil {
		return Lease{}, err
	}
	if offer.Type() != Offer {
		return Lease{}, fmt.Errorf("dhcp4: expected OFFER, got %v", offer.Type())
	}
	req := NewMessage(Request, c.xid, c.HW)
	req.SetAddrOption(OptRequestedIP, offer.YIAddr)
	ack, err := c.exchange(req)
	if err != nil {
		return Lease{}, err
	}
	if ack.Type() != ACK {
		return Lease{}, fmt.Errorf("dhcp4: expected ACK, got %v", ack.Type())
	}
	lease, _ := ack.U32Option(OptLeaseTime)
	return Lease{Addr: ack.YIAddr, HW: c.HW, Expiry: c.now() + int64(lease)}, nil
}

// Renew extends an existing lease over the wire (the RFC 2131 RENEWING
// state: a unicast REQUEST with the current address in ciaddr). It fails
// when the server NAKs, at which point the client must re-Acquire.
func (c *Client) Renew(l Lease) (Lease, error) {
	c.xid++
	req := NewMessage(Request, c.xid, c.HW)
	req.CIAddr = l.Addr
	rep, err := c.exchange(req)
	if err != nil {
		return Lease{}, err
	}
	if rep.Type() != ACK {
		return Lease{}, fmt.Errorf("dhcp4: renew of %v got %v", l.Addr, rep.Type())
	}
	lease, _ := rep.U32Option(OptLeaseTime)
	return Lease{Addr: rep.YIAddr, HW: c.HW, Expiry: c.now() + int64(lease)}, nil
}

// Release notifies the server that the client's lease can be reclaimed.
// DHCP RELEASE elicits no reply.
func (c *Client) Release(l Lease) error {
	c.xid++
	rel := NewMessage(Release, c.xid, c.HW)
	rel.CIAddr = l.Addr
	if _, err := c.Conn.WriteTo(rel.Marshal(), c.Server); err != nil {
		return fmt.Errorf("dhcp4: client write: %w", err)
	}
	return nil
}
