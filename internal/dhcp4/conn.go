package dhcp4

import (
	"errors"
	"fmt"
	"net"
	"time"
)

// Serve answers DHCP messages arriving on conn with replies from srv until
// conn is closed or a non-temporary read error occurs. Replies go back to
// the packet's source address (the unicast relay model; link-layer
// broadcast is out of scope for the simulator). Serve returns net.ErrClosed
// once the listener is closed.
//
// srv is not safe for concurrent use, so Serve processes packets strictly
// in arrival order.
func Serve(conn net.PacketConn, srv *Server) error {
	buf := make([]byte, 1500)
	for {
		n, src, err := conn.ReadFrom(buf)
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return net.ErrClosed
			}
			return fmt.Errorf("dhcp4: read: %w", err)
		}
		req, err := Unmarshal(buf[:n])
		if err != nil {
			continue // malformed datagrams are dropped, as on a real server
		}
		rep, err := srv.Handle(req)
		if err != nil || rep == nil {
			continue
		}
		if _, err := conn.WriteTo(rep.Marshal(), src); err != nil {
			if errors.Is(err, net.ErrClosed) {
				return net.ErrClosed
			}
			return fmt.Errorf("dhcp4: write: %w", err)
		}
	}
}

// Client performs DHCP exchanges over a PacketConn against a server
// address. It is a minimal CPE-side implementation sufficient for the
// DORA and renewal flows.
type Client struct {
	Conn    net.PacketConn
	Server  net.Addr
	HW      HWAddr
	Timeout time.Duration

	xid uint32
}

func (c *Client) timeout() time.Duration {
	if c.Timeout <= 0 {
		return 2 * time.Second
	}
	return c.Timeout
}

func (c *Client) exchange(req *Message) (*Message, error) {
	if _, err := c.Conn.WriteTo(req.Marshal(), c.Server); err != nil {
		return nil, fmt.Errorf("dhcp4: client write: %w", err)
	}
	deadline := time.Now().Add(c.timeout())
	if err := c.Conn.SetReadDeadline(deadline); err != nil {
		return nil, fmt.Errorf("dhcp4: set deadline: %w", err)
	}
	buf := make([]byte, 1500)
	for {
		n, _, err := c.Conn.ReadFrom(buf)
		if err != nil {
			return nil, fmt.Errorf("dhcp4: client read: %w", err)
		}
		rep, err := Unmarshal(buf[:n])
		if err != nil {
			continue
		}
		if rep.XID == req.XID && rep.CHAddr == c.HW {
			return rep, nil
		}
	}
}

// Acquire runs the DORA exchange over the wire and returns the lease.
func (c *Client) Acquire() (Lease, error) {
	c.xid++
	offer, err := c.exchange(NewMessage(Discover, c.xid, c.HW))
	if err != nil {
		return Lease{}, err
	}
	if offer.Type() != Offer {
		return Lease{}, fmt.Errorf("dhcp4: expected OFFER, got %v", offer.Type())
	}
	req := NewMessage(Request, c.xid, c.HW)
	req.SetAddrOption(OptRequestedIP, offer.YIAddr)
	ack, err := c.exchange(req)
	if err != nil {
		return Lease{}, err
	}
	if ack.Type() != ACK {
		return Lease{}, fmt.Errorf("dhcp4: expected ACK, got %v", ack.Type())
	}
	lease, _ := ack.U32Option(OptLeaseTime)
	return Lease{Addr: ack.YIAddr, HW: c.HW, Expiry: time.Now().Unix() + int64(lease)}, nil
}

// Renew extends an existing lease over the wire (the RFC 2131 RENEWING
// state: a unicast REQUEST with the current address in ciaddr). It fails
// when the server NAKs, at which point the client must re-Acquire.
func (c *Client) Renew(l Lease) (Lease, error) {
	c.xid++
	req := NewMessage(Request, c.xid, c.HW)
	req.CIAddr = l.Addr
	rep, err := c.exchange(req)
	if err != nil {
		return Lease{}, err
	}
	if rep.Type() != ACK {
		return Lease{}, fmt.Errorf("dhcp4: renew of %v got %v", l.Addr, rep.Type())
	}
	lease, _ := rep.U32Option(OptLeaseTime)
	return Lease{Addr: rep.YIAddr, HW: c.HW, Expiry: time.Now().Unix() + int64(lease)}, nil
}

// Release notifies the server that the client's lease can be reclaimed.
// DHCP RELEASE elicits no reply.
func (c *Client) Release(l Lease) error {
	c.xid++
	rel := NewMessage(Release, c.xid, c.HW)
	rel.CIAddr = l.Addr
	if _, err := c.Conn.WriteTo(rel.Marshal(), c.Server); err != nil {
		return fmt.Errorf("dhcp4: client write: %w", err)
	}
	return nil
}
