package dhcp4

// Jitter supplies the ±1 s randomization RFC 2131 §4.1 prescribes for
// retransmission delays. *math/rand.Rand and *faultnet.Stream both
// implement it; a nil Jitter yields the unjittered base schedule.
type Jitter interface {
	Float64() float64
}

// Retransmitter implements the RFC 2131 §4.1 retransmission strategy:
// delays double from 4 s up to the 64 s ceiling (4→8→16→32→64), each
// randomized by a uniform draw from ±1 s. After the 64 s wait expires
// without a reply, the client gives up — five transmissions in all,
// roughly 124 s of trying. Waits are reported in milliseconds so virtual
// clocks and wire deadlines share one schedule.
type Retransmitter struct {
	j    Jitter
	base int64 // upcoming unjittered wait, ms
}

// retransCeilingMS is RFC 2131 §4.1's 64-second delay ceiling.
const retransCeilingMS = 64_000

// NewRetransmitter builds the machine; j may be nil for the exact base
// schedule.
func NewRetransmitter(j Jitter) *Retransmitter {
	return &Retransmitter{j: j, base: 4_000}
}

// Next returns the wait after the upcoming transmission and whether a
// further transmission may follow; ok=false marks the final timeout.
func (r *Retransmitter) Next() (waitMS int64, ok bool) {
	wait := r.base
	if r.j != nil {
		// Uniform over [-1000, +1000] ms, the RFC's ±1 s.
		wait += int64(r.j.Float64()*2001) - 1000
	}
	if wait < 0 {
		wait = 0
	}
	more := r.base < retransCeilingMS
	if more {
		r.base *= 2
	}
	return wait, more
}
