package dhcp4

import (
	"container/heap"
	"errors"
	"fmt"
	"net/netip"

	"dynamips/internal/netutil"
)

// Clock supplies time to the server in seconds. Simulations drive a
// virtual clock; live deployments wrap time.Now().Unix().
type Clock interface {
	Now() int64
}

// ClockFunc adapts a function to the Clock interface.
type ClockFunc func() int64

// Now implements Clock.
func (f ClockFunc) Now() int64 { return f() }

// ErrPoolExhausted is returned when no address is available.
var ErrPoolExhausted = errors.New("dhcp4: address pool exhausted")

// ServerConfig configures a lease server.
type ServerConfig struct {
	// Pools are the ranges addresses are drawn from, in order.
	Pools []netip.Prefix
	// LeaseSeconds is the lease duration granted to clients.
	LeaseSeconds uint32
	// Sticky controls whether the server remembers expired bindings and
	// re-offers the same address to a returning client (typical DHCP
	// server behavior). When false the server forgets bindings at
	// expiry, modeling RADIUS-style assignment where reconnecting after
	// the session times out yields a fresh address (§2.2).
	Sticky bool
	// ServerID is the server identifier placed in replies.
	ServerID netip.Addr
}

// Lease is one active binding.
type Lease struct {
	Addr   netip.Addr
	HW     HWAddr
	Expiry int64
}

// ServerStats are a server's lifetime totals. Plain sums, so they
// aggregate commutatively into the observability layer's counters.
type ServerStats struct {
	// Discovers/Requests count handled messages by type; NAKs counts
	// Request replies refused (unknown binding or conflicting address).
	Discovers, Requests, NAKs int64
	// LoseStates counts whole-server state losses.
	LoseStates int64
}

// Add accumulates o into s.
func (s *ServerStats) Add(o ServerStats) {
	s.Discovers += o.Discovers
	s.Requests += o.Requests
	s.NAKs += o.NAKs
	s.LoseStates += o.LoseStates
}

// Server implements the DHCP state machine over a set of address pools.
// It is not safe for concurrent use; callers serialize access (the
// simulator is single-threaded per ISP, and the UDP front end in
// conn.go serializes on its receive loop).
type Server struct {
	cfg   ServerConfig
	stats ServerStats
	clock Clock

	byHW    map[HWAddr]*Lease
	byAddr  map[netip.Addr]*Lease
	offers  map[HWAddr]netip.Addr
	expiry  leaseHeap
	cursor  int // pool index
	offset  uint64
	freed   []netip.Addr // released addresses, reused LIFO
	total   uint64       // total pool capacity
	granted uint64
}

// NewServer builds a Server. It panics on an empty pool set, zero lease, or
// a non-IPv4 pool, which are configuration bugs.
func NewServer(cfg ServerConfig, clock Clock) *Server {
	if len(cfg.Pools) == 0 {
		panic("dhcp4: no pools configured")
	}
	if cfg.LeaseSeconds == 0 {
		panic("dhcp4: zero lease duration")
	}
	var total uint64
	for _, p := range cfg.Pools {
		if !p.Addr().Unmap().Is4() {
			panic(fmt.Sprintf("dhcp4: non-IPv4 pool %v", p))
		}
		total += 1 << uint(32-p.Bits())
	}
	if !cfg.ServerID.IsValid() {
		cfg.ServerID = netip.MustParseAddr("192.0.2.1")
	}
	return &Server{
		cfg:    cfg,
		clock:  clock,
		byHW:   make(map[HWAddr]*Lease),
		byAddr: make(map[netip.Addr]*Lease),
		offers: make(map[HWAddr]netip.Addr),
		total:  total,
	}
}

// Capacity returns the total number of addresses across pools.
func (s *Server) Capacity() uint64 { return s.total }

// Stats returns the server's accumulated totals.
func (s *Server) Stats() ServerStats { return s.stats }

// ActiveLeases returns the number of unexpired bindings.
func (s *Server) ActiveLeases() int {
	now := s.clock.Now()
	n := 0
	for _, l := range s.byHW {
		if l.Expiry > now {
			n++
		}
	}
	return n
}

// LoseState drops all bindings, modeling an ISP-side outage of the
// server responsible for the pools (§2.2 "Changes due to outages"):
// clients renewing afterwards are NAKed and must re-discover, typically
// receiving different addresses.
func (s *Server) LoseState() {
	s.stats.LoseStates++
	s.byHW = make(map[HWAddr]*Lease)
	s.byAddr = make(map[netip.Addr]*Lease)
	s.offers = make(map[HWAddr]netip.Addr)
	s.expiry = nil
	// The allocation cursor deliberately keeps advancing so fresh
	// discoveries land on different addresses than before the outage.
}

// reclaim removes expired bindings whose time has passed, returning their
// addresses to the free list.
func (s *Server) reclaim(now int64) {
	for len(s.expiry) > 0 && s.expiry[0].Expiry <= now {
		l := heap.Pop(&s.expiry).(*Lease)
		cur, ok := s.byAddr[l.Addr]
		if !ok || cur != l || cur.Expiry > now {
			continue // renewed or re-bound since being queued
		}
		delete(s.byAddr, l.Addr)
		if !s.cfg.Sticky {
			delete(s.byHW, l.HW)
		}
		s.freed = append(s.freed, l.Addr)
	}
}

// nextFree returns an unbound address.
func (s *Server) nextFree() (netip.Addr, error) {
	for len(s.freed) > 0 {
		a := s.freed[len(s.freed)-1]
		s.freed = s.freed[:len(s.freed)-1]
		if _, bound := s.byAddr[a]; !bound {
			return a, nil
		}
	}
	for s.cursor < len(s.cfg.Pools) {
		p := s.cfg.Pools[s.cursor]
		size := uint64(1) << uint(32-p.Bits())
		for s.offset < size {
			a, err := netutil.HostAddr(p, s.offset)
			s.offset++
			if err != nil {
				return netip.Addr{}, err
			}
			if _, bound := s.byAddr[a]; !bound {
				return a, nil
			}
		}
		s.cursor++
		s.offset = 0
	}
	return netip.Addr{}, ErrPoolExhausted
}

func (s *Server) bind(hw HWAddr, a netip.Addr, now int64) *Lease {
	l := &Lease{Addr: a, HW: hw, Expiry: now + int64(s.cfg.LeaseSeconds)}
	s.byHW[hw] = l
	s.byAddr[a] = l
	heap.Push(&s.expiry, l)
	s.granted++
	return l
}

// candidate picks the address the server would offer hw: its current or
// remembered binding when sticky and still free, otherwise a fresh one.
func (s *Server) candidate(hw HWAddr, now int64) (netip.Addr, error) {
	if l, ok := s.byHW[hw]; ok {
		if l.Expiry > now {
			return l.Addr, nil
		}
		if s.cfg.Sticky {
			if cur, bound := s.byAddr[l.Addr]; !bound || cur == l {
				return l.Addr, nil
			}
		}
	}
	return s.nextFree()
}

// Handle runs one request through the server state machine and returns the
// reply, or nil for messages that elicit none (e.g. RELEASE).
func (s *Server) Handle(req *Message) (*Message, error) {
	now := s.clock.Now()
	s.reclaim(now)
	switch req.Type() {
	case Discover:
		s.stats.Discovers++
		a, err := s.candidate(req.CHAddr, now)
		if err != nil {
			return nil, err
		}
		s.offers[req.CHAddr] = a
		rep := NewMessage(Offer, req.XID, req.CHAddr)
		rep.YIAddr = a
		rep.GIAddr = req.GIAddr // echoed so relays can route the reply (RFC 2131 §4.1)
		rep.SetAddrOption(OptServerID, s.cfg.ServerID)
		s.setTimes(rep)
		return rep, nil

	case Request:
		s.stats.Requests++
		want, ok := req.AddrOption(OptRequestedIP)
		if !ok {
			want = req.CIAddr // renewal: client puts its address in ciaddr
		}
		if !want.IsValid() || want == netip.IPv4Unspecified() {
			return s.nak(req), nil
		}
		// The server is authoritative: it only ACKs addresses it offered
		// to this client or currently has bound to it. A renewal after
		// LoseState therefore NAKs, forcing re-discovery — the paper's
		// outage-driven address change.
		offered := s.offers[req.CHAddr] == want
		if l, bound := s.byHW[req.CHAddr]; bound && l.Addr == want {
			offered = true
		}
		if !offered {
			return s.nak(req), nil
		}
		if cur, bound := s.byAddr[want]; bound && cur.HW != req.CHAddr && cur.Expiry > now {
			return s.nak(req), nil
		}
		delete(s.offers, req.CHAddr)
		l := s.bind(req.CHAddr, want, now)
		rep := NewMessage(ACK, req.XID, req.CHAddr)
		rep.YIAddr = l.Addr
		rep.GIAddr = req.GIAddr
		rep.SetAddrOption(OptServerID, s.cfg.ServerID)
		s.setTimes(rep)
		return rep, nil

	case Release:
		if l, ok := s.byHW[req.CHAddr]; ok {
			delete(s.byAddr, l.Addr)
			if !s.cfg.Sticky {
				delete(s.byHW, req.CHAddr)
			} else {
				l.Expiry = now // remembered, but free for others
			}
			s.freed = append(s.freed, l.Addr)
		}
		return nil, nil

	default:
		return nil, fmt.Errorf("dhcp4: unhandled message type %v", req.Type())
	}
}

// setTimes attaches the lease time plus the RFC 2131 renewal (T1) and
// rebinding (T2) timers at their default positions: 50% and 87.5% of the
// lease.
func (s *Server) setTimes(rep *Message) {
	rep.SetU32Option(OptLeaseTime, s.cfg.LeaseSeconds)
	rep.SetU32Option(OptRenewalTime, s.cfg.LeaseSeconds/2)
	rep.SetU32Option(OptRebindingTime, s.cfg.LeaseSeconds*7/8)
}

func (s *Server) nak(req *Message) *Message {
	s.stats.NAKs++
	rep := NewMessage(NAK, req.XID, req.CHAddr)
	rep.GIAddr = req.GIAddr
	rep.SetAddrOption(OptServerID, s.cfg.ServerID)
	return rep
}

// Forget releases hw's binding AND drops the sticky memory of it, so the
// client's next discovery draws a fresh address. This is the
// operator-forced renumbering a failover with the renumbering recovery
// policy applies: unlike LoseState the pool bookkeeping survives (no
// leaked addresses), and unlike Release a sticky server will not
// re-offer the same address.
func (s *Server) Forget(hw HWAddr) {
	if l, ok := s.byHW[hw]; ok {
		delete(s.byHW, hw)
		// An expired sticky binding may already have been reclaimed (or
		// its address re-bound); only free the address this lease still owns.
		if cur, bound := s.byAddr[l.Addr]; bound && cur == l {
			delete(s.byAddr, l.Addr)
			s.freed = append(s.freed, l.Addr)
		}
	}
	delete(s.offers, hw)
}

// Acquire performs the full DORA exchange for hw and returns the resulting
// lease. It is the programmatic entry point the ISP simulator uses.
func (s *Server) Acquire(hw HWAddr, xid uint32) (Lease, error) {
	offer, err := s.Handle(NewMessage(Discover, xid, hw))
	if err != nil {
		return Lease{}, err
	}
	req := NewMessage(Request, xid, hw)
	req.SetAddrOption(OptRequestedIP, offer.YIAddr)
	ack, err := s.Handle(req)
	if err != nil {
		return Lease{}, err
	}
	if ack.Type() != ACK {
		return Lease{}, fmt.Errorf("dhcp4: acquire got %v", ack.Type())
	}
	lease, _ := ack.U32Option(OptLeaseTime)
	return Lease{Addr: ack.YIAddr, HW: hw, Expiry: s.clock.Now() + int64(lease)}, nil
}

// Renew attempts to extend hw's lease on addr, returning the refreshed
// lease or an error when the server NAKs (e.g. after LoseState).
func (s *Server) Renew(hw HWAddr, addr netip.Addr, xid uint32) (Lease, error) {
	req := NewMessage(Request, xid, hw)
	req.CIAddr = addr
	ack, err := s.Handle(req)
	if err != nil {
		return Lease{}, err
	}
	if ack.Type() != ACK {
		return Lease{}, fmt.Errorf("dhcp4: renew of %v NAKed", addr)
	}
	lease, _ := ack.U32Option(OptLeaseTime)
	return Lease{Addr: ack.YIAddr, HW: hw, Expiry: s.clock.Now() + int64(lease)}, nil
}

// leaseHeap orders leases by expiry for lazy reclamation.
type leaseHeap []*Lease

func (h leaseHeap) Len() int            { return len(h) }
func (h leaseHeap) Less(i, j int) bool  { return h[i].Expiry < h[j].Expiry }
func (h leaseHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *leaseHeap) Push(x interface{}) { *h = append(*h, x.(*Lease)) }
func (h *leaseHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return x
}
