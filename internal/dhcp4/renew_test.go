package dhcp4

import (
	"net"
	"testing"
)

func TestServerSetsT1T2(t *testing.T) {
	srv, _ := newTestServer(3600, true)
	offer, err := srv.Handle(NewMessage(Discover, 1, hw(1)))
	if err != nil {
		t.Fatalf("Discover: %v", err)
	}
	t1, ok1 := offer.U32Option(OptRenewalTime)
	t2, ok2 := offer.U32Option(OptRebindingTime)
	if !ok1 || !ok2 {
		t.Fatal("T1/T2 missing from OFFER")
	}
	if t1 != 1800 || t2 != 3150 {
		t.Errorf("T1=%d T2=%d, want 1800, 3150", t1, t2)
	}
}

func TestClientRenewOverUDP(t *testing.T) {
	srv, clk := newTestServer(3600, true)
	// The test injects an outage (LoseState) while the serve loop is
	// live, so the server must be wrapped for concurrent use.
	guarded := NewGuarded(srv)
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	defer pc.Close()
	go Serve(pc, guarded)

	cc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("client listen: %v", err)
	}
	defer cc.Close()
	cl := &Client{Conn: cc, Server: pc.LocalAddr(), HW: hw(9), Clock: clk}
	l, err := cl.Acquire()
	if err != nil {
		t.Fatalf("Acquire: %v", err)
	}
	l2, err := cl.Renew(l)
	if err != nil {
		t.Fatalf("Renew: %v", err)
	}
	if l2.Addr != l.Addr {
		t.Errorf("renew moved %v -> %v", l.Addr, l2.Addr)
	}
	// After the server loses state, the renewal NAKs and a fresh
	// acquisition yields a different address — the paper's outage model
	// observed over the wire.
	guarded.LoseState()
	if _, err := cl.Renew(l2); err == nil {
		t.Fatal("renew after LoseState succeeded")
	}
	l3, err := cl.Acquire()
	if err != nil {
		t.Fatalf("re-Acquire: %v", err)
	}
	if l3.Addr == l2.Addr {
		t.Error("address unchanged across server state loss")
	}
}
