package dhcp4

import (
	"net"
	"testing"
	"time"

	"dynamips/internal/faultnet"
)

// collect drains a retransmitter into (sendTimesMS, giveUpMS): the
// virtual send instants and the moment the client abandons the exchange.
func collect(rt interface {
	Next() (int64, bool)
}) (sends []int64, giveUp int64) {
	t := int64(0)
	for {
		sends = append(sends, t)
		wait, more := rt.Next()
		t += wait
		if !more {
			return sends, t
		}
	}
}

func TestRetransmitterBaseSchedule(t *testing.T) {
	// RFC 2131 §4.1: delays of 4, 8, 16, 32, 64 seconds — five
	// transmissions, giving up 124 s after the first.
	sends, giveUp := collect(NewRetransmitter(nil))
	want := []int64{0, 4_000, 12_000, 28_000, 60_000}
	if len(sends) != len(want) {
		t.Fatalf("sends = %v, want %v", sends, want)
	}
	for i := range want {
		if sends[i] != want[i] {
			t.Fatalf("send %d at %d ms, want %d ms (all: %v)", i, sends[i], want[i], sends)
		}
	}
	if giveUp != 124_000 {
		t.Fatalf("give-up at %d ms, want 124000", giveUp)
	}
}

// constJitter always draws the same fraction.
type constJitter float64

func (c constJitter) Float64() float64 { return float64(c) }

func TestRetransmitterJitterBounds(t *testing.T) {
	cases := []struct {
		name   string
		j      Jitter
		offset int64 // per-wait shift vs the base schedule, ms
	}{
		{"low extreme", constJitter(0), -1000},
		{"high extreme", constJitter(0.9999999), +1000},
		{"midpoint", constJitter(0.5), 0},
	}
	base := []int64{4_000, 8_000, 16_000, 32_000, 64_000}
	for _, c := range cases {
		rt := NewRetransmitter(c.j)
		for i, b := range base {
			wait, more := rt.Next()
			if wait != b+c.offset {
				t.Fatalf("%s: wait %d = %d ms, want %d ms", c.name, i, wait, b+c.offset)
			}
			if more != (i < len(base)-1) {
				t.Fatalf("%s: wait %d reported more=%v", c.name, i, more)
			}
		}
	}
}

func TestRetransmitterJitterStaysInRFCBand(t *testing.T) {
	// Any jitter draw keeps each wait within ±1 s of its base value.
	s := faultnet.NewStream(7, 0)
	for trial := 0; trial < 200; trial++ {
		rt := NewRetransmitter(s)
		for _, b := range []int64{4_000, 8_000, 16_000, 32_000, 64_000} {
			wait, _ := rt.Next()
			if wait < b-1000 || wait > b+1000 {
				t.Fatalf("wait %d ms outside [%d,%d]", wait, b-1000, b+1000)
			}
		}
	}
}

// lossyPipe builds a connected UDP client/server socket pair with the
// client's outbound datagrams routed through a faultnet wrapper.
func lossyPipe(t *testing.T, prof faultnet.Profile, seed uint64) (client net.PacketConn, server net.PacketConn) {
	t.Helper()
	srv, err := net.ListenPacket("udp4", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	cli, err := net.ListenPacket("udp4", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close(); cli.Close() })
	return faultnet.WrapConn(cli, prof, seed), srv
}

// TestClientRetransmitsThroughLoss drops the first client datagram on the
// wire and relies on the RFC schedule (compressed by WaitScale) to carry
// the DORA exchange through.
func TestClientRetransmitsThroughLoss(t *testing.T) {
	// Seed chosen so the wrapper's first two bernoulli(0.5) draws are
	// drop, pass — asserted below so a faultnet change can't silently
	// weaken the test.
	prof := faultnet.Profile{Drop: 0.5}
	seed := pickDropThenPassSeed(t)
	cli, srvConn := lossyPipe(t, prof, seed)

	srv, clk := newTestServer(86400, false)
	go Serve(srvConn, srv)

	c := &Client{
		Conn:      cli,
		Server:    srvConn.LocalAddr(),
		HW:        hw(201),
		Clock:     clk,
		Timeout:   5 * time.Second,
		WaitScale: 0.01, // 4 s base wait → 40 ms of test time
	}
	lease, err := c.Acquire()
	if err != nil {
		t.Fatalf("Acquire through 50%% loss: %v", err)
	}
	if !lease.Addr.IsValid() {
		t.Fatal("Acquire returned an invalid lease address")
	}
}

// pickDropThenPassSeed finds a wrapper seed whose first draws at p=0.5
// are (drop, pass), so the first DISCOVER is lost and the retransmission
// must succeed.
func pickDropThenPassSeed(t *testing.T) uint64 {
	t.Helper()
	for seed := uint64(0); seed < 1000; seed++ {
		s := faultnet.NewStream(seed, 0)
		if s.Float64() < 0.5 && s.Float64() >= 0.5 {
			return seed
		}
	}
	t.Fatal("no (drop, pass) seed in [0,1000)")
	return 0
}
