package dhcp4

import (
	"errors"
	"fmt"
	"net/netip"
)

// ErrHopLimit is returned when a relay refuses to forward a message whose
// hop count has reached the configured ceiling (RFC 1542 §4.1.1).
var ErrHopLimit = errors.New("dhcp4: relay hop limit exceeded")

// relayHardHops is the absolute hop ceiling RFC 1542 §4.1.1 imposes
// ("must be discarded if it exceeds 16").
const relayHardHops = 16

// Relay is a BOOTP/DHCP relay agent (RFC 1542, RFC 2131 §4.3.1): a
// router on the subscriber's broadcast domain that forwards DHCP
// traffic to a server elsewhere in the ISP, stamping its own gateway
// address into giaddr so the server can both address the reply and pick
// the pool serving that subnet. Aggregation topologies chain several —
// access node behind a BNG behind a core relay — each incrementing the
// hop count.
type Relay struct {
	// GIAddr is the relay's gateway address, stamped into requests whose
	// giaddr is still empty (only the relay closest to the client sets
	// it; later hops preserve it, per RFC 1542 §4.1.1).
	GIAddr netip.Addr
	// MaxHops is the per-relay discard threshold; zero means the RFC's
	// hard ceiling of 16.
	MaxHops byte
}

// Forward relays a client-to-server message: the hop count is
// incremented, giaddr is stamped if this is the first relay on the path,
// and the message is rejected if it has traveled too far. The input is
// not modified.
func (r *Relay) Forward(req *Message) (*Message, error) {
	if req.Op != OpRequest {
		return nil, fmt.Errorf("dhcp4: relay forwarding non-request op %d", req.Op)
	}
	limit := r.MaxHops
	if limit == 0 || limit > relayHardHops {
		limit = relayHardHops
	}
	if req.Hops >= limit {
		return nil, fmt.Errorf("%w: %d hops at relay %v", ErrHopLimit, req.Hops, r.GIAddr)
	}
	out := req.Clone()
	out.Hops++
	if !out.GIAddr.IsValid() || out.GIAddr == netip.IPv4Unspecified() {
		out.GIAddr = r.GIAddr
	}
	return out, nil
}

// Return relays a server-to-client reply back toward the subscriber.
// The server unicasts replies to giaddr (RFC 2131 §4.1); a relay only
// accepts replies stamped with its own gateway address.
func (r *Relay) Return(rep *Message) (*Message, error) {
	if rep.Op != OpReply {
		return nil, fmt.Errorf("dhcp4: relay returning non-reply op %d", rep.Op)
	}
	if rep.GIAddr != r.GIAddr {
		return nil, fmt.Errorf("dhcp4: reply giaddr %v does not match relay %v", rep.GIAddr, r.GIAddr)
	}
	out := rep.Clone()
	return out, nil
}

// Clone returns a deep copy of the message (options included).
func (m *Message) Clone() *Message {
	out := *m
	out.Options = make(map[byte][]byte, len(m.Options))
	for c, v := range m.Options {
		cp := make([]byte, len(v))
		copy(cp, v)
		out.Options[c] = cp
	}
	return &out
}

// RelayChain is an ordered aggregation path from the subscriber to the
// server: Chain[0] is the relay on the client's broadcast domain.
type RelayChain []*Relay

// NewRelayChain builds an n-hop chain with deterministic gateway
// addresses drawn from base's subnet (hop i gets base+i).
func NewRelayChain(base netip.Addr, n int) (RelayChain, error) {
	chain := make(RelayChain, 0, n)
	a := base
	for i := 0; i < n; i++ {
		if !a.Is4() && !a.Is4In6() {
			return nil, fmt.Errorf("dhcp4: relay gateway %v not IPv4", a)
		}
		chain = append(chain, &Relay{GIAddr: a.Unmap()})
		a = a.Next()
	}
	return chain, nil
}

// Forward runs a request up the whole chain, client to server.
func (c RelayChain) Forward(req *Message) (*Message, error) {
	out := req
	for _, r := range c {
		var err error
		if out, err = r.Forward(out); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Return runs a reply down the chain, server to client. Only the
// innermost relay stamped giaddr, so only it validates the address;
// outer hops pass the reply through.
func (c RelayChain) Return(rep *Message) (*Message, error) {
	if len(c) == 0 {
		return rep, nil
	}
	return c[0].Return(rep)
}
