package dhcp4

import (
	"net"
	"net/netip"
	"sync/atomic"
	"testing"
)

// atomicClock is a virtual clock safe to advance while a Serve loop reads
// it from another goroutine.
type atomicClock struct{ t atomic.Int64 }

func (c *atomicClock) Now() int64 { return c.t.Load() }

// TestClientExpiryMatchesServerClock pins the determinism fix from the
// dynalint audit: client-side lease expiries are computed on the injected
// simulation clock, not the wall clock, so they agree exactly with the
// server's binding expiry at any virtual epoch.
func TestClientExpiryMatchesServerClock(t *testing.T) {
	clk := &atomicClock{}
	clk.t.Store(1_000_000) // a virtual epoch nowhere near wall time
	srv := NewServer(ServerConfig{
		Pools:        []netip.Prefix{netip.MustParsePrefix("100.64.10.0/24")},
		LeaseSeconds: 3600,
		Sticky:       true,
		ServerID:     netip.MustParseAddr("100.64.0.1"),
	}, clk)

	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	done := make(chan error, 1)
	go func() { done <- Serve(pc, srv) }()

	cc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("client listen: %v", err)
	}
	defer cc.Close()
	cl := &Client{Conn: cc, Server: pc.LocalAddr(), HW: hw(77), Clock: clk}

	l, err := cl.Acquire()
	if err != nil {
		t.Fatalf("Acquire: %v", err)
	}
	if want := clk.Now() + 3600; l.Expiry != want {
		t.Errorf("client lease expiry %d, want %d (virtual clock + lease)", l.Expiry, want)
	}

	// Advance the virtual clock and renew: the refreshed expiry must track
	// the virtual epoch, which a wall-clock computation cannot.
	clk.t.Add(1800)
	l2, err := cl.Renew(l)
	if err != nil {
		t.Fatalf("Renew: %v", err)
	}
	if want := clk.Now() + 3600; l2.Expiry != want {
		t.Errorf("renewed lease expiry %d, want %d", l2.Expiry, want)
	}

	// Stop the server loop, then compare against its authoritative binding:
	// client and server views of the expiry must be identical.
	pc.Close()
	if err := <-done; err != net.ErrClosed {
		t.Fatalf("Serve returned %v", err)
	}
	binding, ok := srv.byHW[hw(77)]
	if !ok {
		t.Fatal("server lost the binding")
	}
	if binding.Expiry != l2.Expiry {
		t.Errorf("server expiry %d != client expiry %d", binding.Expiry, l2.Expiry)
	}
}
