package dhcp4

import (
	"errors"
	"net/netip"
	"testing"
)

func relayChain(t *testing.T, n int) RelayChain {
	t.Helper()
	chain, err := NewRelayChain(netip.MustParseAddr("198.51.100.1"), n)
	if err != nil {
		t.Fatal(err)
	}
	return chain
}

// TestRelayChainDORA runs a full wire-level DORA through a two-hop
// aggregation chain: the innermost relay stamps giaddr, the server
// echoes it, and the reply routes back down the same chain.
func TestRelayChainDORA(t *testing.T) {
	srv, _ := newTestServer(3600, true)
	chain := relayChain(t, 2)
	inner := chain[0].GIAddr

	disc := NewMessage(Discover, 0x11, hw(1))
	fwd, err := chain.Forward(disc)
	if err != nil {
		t.Fatalf("Forward(discover): %v", err)
	}
	if fwd.Hops != 2 {
		t.Errorf("Hops = %d, want 2", fwd.Hops)
	}
	if fwd.GIAddr != inner {
		t.Errorf("giaddr = %v, want innermost relay %v", fwd.GIAddr, inner)
	}
	if disc.Hops != 0 || disc.GIAddr == inner {
		t.Error("Forward mutated the original message")
	}

	// The server sees the relayed request over the wire codec.
	onWire, err := Unmarshal(fwd.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	offer, err := srv.Handle(onWire)
	if err != nil {
		t.Fatalf("Handle(discover): %v", err)
	}
	if offer.GIAddr != inner {
		t.Errorf("offer giaddr = %v, want %v (RFC 2131 §4.1 echo)", offer.GIAddr, inner)
	}
	down, err := chain.Return(offer)
	if err != nil {
		t.Fatalf("Return(offer): %v", err)
	}

	req := NewMessage(Request, 0x11, hw(1))
	req.SetAddrOption(OptRequestedIP, down.YIAddr)
	fwd, err = chain.Forward(req)
	if err != nil {
		t.Fatal(err)
	}
	ack, err := srv.Handle(fwd)
	if err != nil {
		t.Fatalf("Handle(request): %v", err)
	}
	if ack.Type() != ACK {
		t.Fatalf("reply = %v, want ACK", ack.Type())
	}
	if _, err := chain.Return(ack); err != nil {
		t.Fatalf("Return(ack): %v", err)
	}
	if srv.ActiveLeases() != 1 {
		t.Errorf("ActiveLeases = %d, want 1", srv.ActiveLeases())
	}
}

// TestRelayGiaddrFirstHopOnly: later hops must preserve the giaddr the
// innermost relay stamped (RFC 1542 §4.1.1).
func TestRelayGiaddrFirstHopOnly(t *testing.T) {
	chain := relayChain(t, 3)
	fwd, err := chain.Forward(NewMessage(Discover, 1, hw(2)))
	if err != nil {
		t.Fatal(err)
	}
	if fwd.GIAddr != chain[0].GIAddr {
		t.Errorf("giaddr = %v, want %v", fwd.GIAddr, chain[0].GIAddr)
	}
	for i, r := range chain {
		want := netip.MustParseAddr("198.51.100.1").As4()
		want[3] += byte(i)
		if r.GIAddr != netip.AddrFrom4(want) {
			t.Errorf("relay %d gateway = %v", i, r.GIAddr)
		}
	}
}

// TestRelayHopLimit: the RFC 1542 hard cap of 16 hops discards the
// message, and a per-relay MaxHops tightens it.
func TestRelayHopLimit(t *testing.T) {
	long := relayChain(t, 17)
	if _, err := long.Forward(NewMessage(Discover, 1, hw(3))); !errors.Is(err, ErrHopLimit) {
		t.Errorf("17-hop chain error = %v, want ErrHopLimit", err)
	}
	if _, err := relayChain(t, 16).Forward(NewMessage(Discover, 1, hw(3))); err != nil {
		t.Errorf("16-hop chain refused: %v", err)
	}

	tight := &Relay{GIAddr: netip.MustParseAddr("198.51.100.9"), MaxHops: 2}
	m := NewMessage(Discover, 1, hw(4))
	m.Hops = 2
	if _, err := tight.Forward(m); !errors.Is(err, ErrHopLimit) {
		t.Errorf("MaxHops=2 with 2 hops error = %v, want ErrHopLimit", err)
	}
}

// TestRelayValidation: relays refuse wrong-direction messages and
// replies addressed to another relay's gateway.
func TestRelayValidation(t *testing.T) {
	r := &Relay{GIAddr: netip.MustParseAddr("198.51.100.1")}

	rep := NewMessage(Offer, 1, hw(5)) // Op is OpReply
	if _, err := r.Forward(rep); err == nil {
		t.Error("Forward accepted a server-to-client reply")
	}
	req := NewMessage(Discover, 1, hw(5))
	if _, err := r.Return(req); err == nil {
		t.Error("Return accepted a client-to-server request")
	}

	stray := NewMessage(Offer, 1, hw(5))
	stray.GIAddr = netip.MustParseAddr("198.51.100.200")
	if _, err := r.Return(stray); err == nil {
		t.Error("Return accepted a reply stamped for a different relay")
	}
}

// TestRelayNAKRoutesBack: a NAK (the outage-driven renumbering signal)
// carries the echoed giaddr, so it survives the return path too.
func TestRelayNAKRoutesBack(t *testing.T) {
	srv, _ := newTestServer(3600, true)
	chain := relayChain(t, 2)

	req := NewMessage(Request, 7, hw(6))
	req.SetAddrOption(OptRequestedIP, netip.MustParseAddr("100.64.10.250"))
	fwd, err := chain.Forward(req)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := srv.Handle(fwd)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Type() != NAK {
		t.Fatalf("unoffered request got %v, want NAK", rep.Type())
	}
	if _, err := chain.Return(rep); err != nil {
		t.Errorf("NAK failed the return path: %v", err)
	}
}
