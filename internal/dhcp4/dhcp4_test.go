package dhcp4

import (
	"bytes"
	"net"
	"net/netip"
	"testing"
	"testing/quick"
)

type fakeClock struct{ t int64 }

func (c *fakeClock) Now() int64 { return c.t }

func hw(b byte) HWAddr { return HWAddr{0xde, 0xad, 0, 0, 0, b} }

func newTestServer(lease uint32, sticky bool, pools ...string) (*Server, *fakeClock) {
	if len(pools) == 0 {
		pools = []string{"100.64.10.0/24"}
	}
	var ps []netip.Prefix
	for _, p := range pools {
		ps = append(ps, netip.MustParsePrefix(p))
	}
	clk := &fakeClock{}
	srv := NewServer(ServerConfig{
		Pools:        ps,
		LeaseSeconds: lease,
		Sticky:       sticky,
		ServerID:     netip.MustParseAddr("100.64.0.1"),
	}, clk)
	return srv, clk
}

func TestMessageRoundTrip(t *testing.T) {
	m := NewMessage(Request, 0xdeadbeef, hw(7))
	m.CIAddr = netip.MustParseAddr("203.0.113.9")
	m.Secs = 12
	m.SetAddrOption(OptRequestedIP, netip.MustParseAddr("203.0.113.10"))
	m.SetU32Option(OptLeaseTime, 86400)

	got, err := Unmarshal(m.Marshal())
	if err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if got.XID != m.XID || got.CHAddr != m.CHAddr || got.CIAddr != m.CIAddr || got.Secs != 12 {
		t.Errorf("header mismatch: %+v vs %+v", got, m)
	}
	if got.Type() != Request {
		t.Errorf("Type = %v", got.Type())
	}
	if a, ok := got.AddrOption(OptRequestedIP); !ok || a != netip.MustParseAddr("203.0.113.10") {
		t.Errorf("requested IP = %v, %v", a, ok)
	}
	if v, ok := got.U32Option(OptLeaseTime); !ok || v != 86400 {
		t.Errorf("lease = %d, %v", v, ok)
	}
}

func TestMessageRoundTripProperty(t *testing.T) {
	f := func(xid uint32, secs uint16, flags uint16, h [6]byte, lease uint32) bool {
		m := NewMessage(Discover, xid, HWAddr(h))
		m.Secs = secs
		m.Flags = flags
		m.SetU32Option(OptLeaseTime, lease)
		got, err := Unmarshal(m.Marshal())
		if err != nil {
			return false
		}
		gl, _ := got.U32Option(OptLeaseTime)
		return got.XID == xid && got.Secs == secs && got.Flags == flags &&
			got.CHAddr == HWAddr(h) && gl == lease && got.Type() == Discover
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestUnmarshalErrors(t *testing.T) {
	if _, err := Unmarshal(make([]byte, 10)); err == nil {
		t.Error("short message accepted")
	}
	m := NewMessage(Discover, 1, hw(1)).Marshal()
	m[headerLen] = 0 // corrupt cookie
	if _, err := Unmarshal(m); err == nil {
		t.Error("bad cookie accepted")
	}
	m2 := NewMessage(Discover, 1, hw(1)).Marshal()
	m2 = m2[:len(m2)-1] // strip end option
	if _, err := Unmarshal(m2); err == nil {
		t.Error("missing end option accepted")
	}
	m3 := NewMessage(Discover, 1, hw(1)).Marshal()
	m3[headerLen+4+1] = 200 // option length overruns
	if _, err := Unmarshal(m3); err == nil {
		t.Error("overrunning option accepted")
	}
}

func TestUnmarshalSkipsPadding(t *testing.T) {
	m := NewMessage(Discover, 7, hw(1)).Marshal()
	// Insert pad bytes before the options by rebuilding: header+cookie+pads+opts.
	padded := append([]byte{}, m[:headerLen+4]...)
	padded = append(padded, 0, 0, 0)
	padded = append(padded, m[headerLen+4:]...)
	got, err := Unmarshal(padded)
	if err != nil {
		t.Fatalf("Unmarshal padded: %v", err)
	}
	if got.Type() != Discover {
		t.Errorf("Type = %v", got.Type())
	}
}

func TestMessageTypeString(t *testing.T) {
	if Discover.String() != "DISCOVER" || NAK.String() != "NAK" {
		t.Error("message type names wrong")
	}
	if MessageType(99).String() != "TYPE(99)" {
		t.Errorf("unknown type = %q", MessageType(99).String())
	}
}

func TestHWAddrString(t *testing.T) {
	if got := hw(0xab).String(); got != "de:ad:00:00:00:ab" {
		t.Errorf("HWAddr.String = %q", got)
	}
}

func TestDORA(t *testing.T) {
	srv, _ := newTestServer(3600, true)
	l, err := srv.Acquire(hw(1), 100)
	if err != nil {
		t.Fatalf("Acquire: %v", err)
	}
	if !netip.MustParsePrefix("100.64.10.0/24").Contains(l.Addr) {
		t.Errorf("lease %v outside pool", l.Addr)
	}
	if srv.ActiveLeases() != 1 {
		t.Errorf("ActiveLeases = %d", srv.ActiveLeases())
	}
	// A second client gets a different address.
	l2, err := srv.Acquire(hw(2), 101)
	if err != nil {
		t.Fatalf("Acquire: %v", err)
	}
	if l2.Addr == l.Addr {
		t.Error("two clients share one address")
	}
}

func TestRenewKeepsAddress(t *testing.T) {
	srv, clk := newTestServer(3600, true)
	l, _ := srv.Acquire(hw(1), 1)
	clk.t += 1800
	l2, err := srv.Renew(hw(1), l.Addr, 2)
	if err != nil {
		t.Fatalf("Renew: %v", err)
	}
	if l2.Addr != l.Addr {
		t.Errorf("renew moved address %v -> %v", l.Addr, l2.Addr)
	}
	if l2.Expiry != clk.t+3600 {
		t.Errorf("renewed expiry = %d, want %d", l2.Expiry, clk.t+3600)
	}
}

func TestStickyReofferAfterExpiry(t *testing.T) {
	srv, clk := newTestServer(3600, true)
	l, _ := srv.Acquire(hw(1), 1)
	clk.t += 7200 // lease expired
	l2, err := srv.Acquire(hw(1), 2)
	if err != nil {
		t.Fatalf("Acquire: %v", err)
	}
	if l2.Addr != l.Addr {
		t.Errorf("sticky server moved returning client %v -> %v", l.Addr, l2.Addr)
	}
}

func TestNonStickyMovesAfterExpiry(t *testing.T) {
	srv, clk := newTestServer(3600, false)
	l, _ := srv.Acquire(hw(1), 1)
	clk.t += 7200
	// Another client grabs the reclaimed address space first.
	srv.Acquire(hw(2), 2)
	l2, err := srv.Acquire(hw(1), 3)
	if err != nil {
		t.Fatalf("Acquire: %v", err)
	}
	if l2.Addr == l.Addr {
		t.Error("non-sticky server re-issued the same address after expiry and reuse")
	}
}

func TestLoseStateNAKsRenewal(t *testing.T) {
	srv, clk := newTestServer(3600, true)
	l, _ := srv.Acquire(hw(1), 1)
	srv.LoseState()
	clk.t += 10
	if _, err := srv.Renew(hw(1), l.Addr, 2); err == nil {
		t.Fatal("renew after LoseState succeeded")
	}
	// Re-discovery succeeds and, cursor having advanced, yields a new address.
	l2, err := srv.Acquire(hw(1), 3)
	if err != nil {
		t.Fatalf("Acquire after LoseState: %v", err)
	}
	if l2.Addr == l.Addr {
		t.Error("address unchanged after server state loss")
	}
}

func TestRequestUnofferedNAKs(t *testing.T) {
	srv, _ := newTestServer(3600, true)
	req := NewMessage(Request, 9, hw(9))
	req.SetAddrOption(OptRequestedIP, netip.MustParseAddr("100.64.10.77"))
	rep, err := srv.Handle(req)
	if err != nil {
		t.Fatalf("Handle: %v", err)
	}
	if rep.Type() != NAK {
		t.Errorf("unoffered request got %v, want NAK", rep.Type())
	}
}

func TestRequestConflictNAKs(t *testing.T) {
	srv, _ := newTestServer(3600, true)
	l1, _ := srv.Acquire(hw(1), 1)
	// hw(2) tries to claim hw(1)'s active address via a forged renewal.
	req := NewMessage(Request, 2, hw(2))
	req.CIAddr = l1.Addr
	rep, err := srv.Handle(req)
	if err != nil {
		t.Fatalf("Handle: %v", err)
	}
	if rep.Type() != NAK {
		t.Errorf("conflicting request got %v, want NAK", rep.Type())
	}
}

func TestReleaseFreesAddress(t *testing.T) {
	srv, _ := newTestServer(3600, false, "100.64.10.0/30") // tiny pool: 4 addrs
	l1, _ := srv.Acquire(hw(1), 1)
	rel := NewMessage(Release, 2, hw(1))
	rel.CIAddr = l1.Addr
	if _, err := srv.Handle(rel); err != nil {
		t.Fatalf("Release: %v", err)
	}
	// Fill the rest of the pool plus the released address.
	for i := byte(2); i <= 5; i++ {
		if _, err := srv.Acquire(hw(i), uint32(i)); err != nil {
			t.Fatalf("Acquire %d: %v", i, err)
		}
	}
	if _, err := srv.Acquire(hw(6), 6); err == nil {
		t.Error("exhausted pool still allocated")
	}
}

func TestPoolExhaustion(t *testing.T) {
	srv, clk := newTestServer(100, false, "100.64.10.0/30")
	for i := byte(1); i <= 4; i++ {
		if _, err := srv.Acquire(hw(i), uint32(i)); err != nil {
			t.Fatalf("Acquire %d: %v", i, err)
		}
	}
	if _, err := srv.Acquire(hw(5), 5); err == nil {
		t.Fatal("5th client on /30 pool succeeded")
	}
	// After expiry the pool drains back.
	clk.t += 200
	if _, err := srv.Acquire(hw(5), 6); err != nil {
		t.Errorf("Acquire after reclamation: %v", err)
	}
	if srv.Capacity() != 4 {
		t.Errorf("Capacity = %d", srv.Capacity())
	}
}

func TestMultiplePools(t *testing.T) {
	srv, _ := newTestServer(3600, false, "100.64.10.0/31", "100.64.20.0/31")
	seen := map[netip.Addr]bool{}
	for i := byte(1); i <= 4; i++ {
		l, err := srv.Acquire(hw(i), uint32(i))
		if err != nil {
			t.Fatalf("Acquire %d: %v", i, err)
		}
		seen[l.Addr] = true
	}
	if len(seen) != 4 {
		t.Errorf("allocated %d distinct addresses, want 4", len(seen))
	}
	inSecond := 0
	for a := range seen {
		if netip.MustParsePrefix("100.64.20.0/31").Contains(a) {
			inSecond++
		}
	}
	if inSecond != 2 {
		t.Errorf("second pool served %d addresses, want 2", inSecond)
	}
}

func TestServerConfigPanics(t *testing.T) {
	for name, cfg := range map[string]ServerConfig{
		"no pools":   {LeaseSeconds: 1},
		"zero lease": {Pools: []netip.Prefix{netip.MustParsePrefix("10.0.0.0/24")}},
		"v6 pool":    {Pools: []netip.Prefix{netip.MustParsePrefix("2001:db8::/64")}, LeaseSeconds: 1},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: NewServer did not panic", name)
				}
			}()
			NewServer(cfg, &fakeClock{})
		}()
	}
}

func TestServeOverUDP(t *testing.T) {
	srv, clk := newTestServer(3600, true)
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	defer pc.Close()
	done := make(chan error, 1)
	go func() { done <- Serve(pc, srv) }()

	cc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("client listen: %v", err)
	}
	defer cc.Close()
	cl := &Client{Conn: cc, Server: pc.LocalAddr(), HW: hw(42), Clock: clk}
	l, err := cl.Acquire()
	if err != nil {
		t.Fatalf("Acquire over UDP: %v", err)
	}
	if !netip.MustParsePrefix("100.64.10.0/24").Contains(l.Addr) {
		t.Errorf("lease %v outside pool", l.Addr)
	}
	if err := cl.Release(l); err != nil {
		t.Errorf("Release: %v", err)
	}
	pc.Close()
	if err := <-done; err != net.ErrClosed {
		t.Errorf("Serve returned %v, want net.ErrClosed", err)
	}
}

func TestServeIgnoresGarbage(t *testing.T) {
	srv, clk := newTestServer(3600, true)
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	defer pc.Close()
	go Serve(pc, srv)

	cc, _ := net.ListenPacket("udp", "127.0.0.1:0")
	defer cc.Close()
	// Garbage first; the server must survive and still answer DHCP.
	cc.WriteTo([]byte("not dhcp"), pc.LocalAddr())
	cl := &Client{Conn: cc, Server: pc.LocalAddr(), HW: hw(5), Clock: clk}
	if _, err := cl.Acquire(); err != nil {
		t.Fatalf("Acquire after garbage: %v", err)
	}
}

func TestMarshalDeterministic(t *testing.T) {
	m := NewMessage(Offer, 3, hw(1))
	m.SetAddrOption(OptServerID, netip.MustParseAddr("100.64.0.1"))
	m.SetU32Option(OptLeaseTime, 60)
	a, b := m.Marshal(), m.Marshal()
	if !bytes.Equal(a, b) {
		t.Error("Marshal is not deterministic")
	}
}
