package dhcp4

import (
	"math/rand"
	"testing"
)

// TestUnmarshalNeverPanics feeds random and mutated-valid byte slices to
// the decoder: it may reject them, but must never panic — servers parse
// attacker-controlled datagrams.
func TestUnmarshalNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("Unmarshal panicked: %v", r)
		}
	}()
	for i := 0; i < 5000; i++ {
		n := rng.Intn(400)
		b := make([]byte, n)
		rng.Read(b)
		Unmarshal(b) //nolint:errcheck // errors are expected
	}
	// Bit-flipped valid messages.
	valid := NewMessage(Request, 7, hw(1))
	valid.SetU32Option(OptLeaseTime, 3600)
	wire := valid.Marshal()
	for i := 0; i < 5000; i++ {
		b := append([]byte(nil), wire...)
		for k := 0; k < 3; k++ {
			b[rng.Intn(len(b))] ^= byte(1 << rng.Intn(8))
		}
		if m, err := Unmarshal(b); err == nil && m == nil {
			t.Fatal("nil message without error")
		}
	}
}

// TestHandleMalformedOptions: a message with a present but wrong-sized
// option must not crash the server state machine.
func TestHandleMalformedOptions(t *testing.T) {
	srv, _ := newTestServer(3600, true)
	req := NewMessage(Request, 1, hw(1))
	req.Options[OptRequestedIP] = []byte{1, 2} // wrong length
	rep, err := srv.Handle(req)
	if err != nil {
		t.Fatalf("Handle: %v", err)
	}
	if rep.Type() != NAK {
		t.Errorf("malformed requested IP got %v", rep.Type())
	}
	// No message type option at all.
	anon := &Message{Options: map[byte][]byte{}}
	if _, err := srv.Handle(anon); err == nil {
		t.Error("typeless message accepted")
	}
}

// FuzzUnmarshal is the native fuzz target for the DHCPv4 codec, run with a
// bounded -fuzztime as a smoke gate in CI (scripts/verify.sh). The decoder
// parses attacker-controlled datagrams: it may reject input, but must never
// panic, and anything it accepts must survive a re-marshal round trip.
func FuzzUnmarshal(f *testing.F) {
	valid := NewMessage(Request, 7, hw(1))
	valid.SetU32Option(OptLeaseTime, 3600)
	f.Add(valid.Marshal())
	f.Add([]byte{})
	f.Add([]byte{1, 1, 6, 0})
	f.Fuzz(func(t *testing.T, b []byte) {
		m, err := Unmarshal(b)
		if err != nil {
			return
		}
		if m == nil {
			t.Fatal("nil message without error")
		}
		m.Marshal() // round trip of accepted input must not panic
	})
}
