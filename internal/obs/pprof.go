package obs

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// PprofServer is a running profiling endpoint.
type PprofServer struct {
	srv *http.Server
	ln  net.Listener
}

// Addr returns the endpoint's bound address (useful with ":0").
func (p *PprofServer) Addr() string { return p.ln.Addr().String() }

// Close shuts the endpoint down immediately; a nil receiver is a no-op,
// so callers can unconditionally defer Close on the "-pprof not set"
// path.
func (p *PprofServer) Close() error {
	if p == nil {
		return nil
	}
	return p.srv.Close()
}

// StartPprof serves the runtime profiling endpoints (/debug/pprof/...)
// on addr in a background goroutine. It exists for the CLI's -pprof
// flag on long-running commands: profiles observe the hot paths of a
// real build without any code in the pipeline itself. An empty addr
// returns (nil, nil) — profiling off.
//
// The handler set is registered on a private mux, not
// http.DefaultServeMux, so importing this package never widens another
// server's surface.
func StartPprof(addr string) (*PprofServer, error) {
	if addr == "" {
		return nil, nil
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: pprof listener on %s: %w", addr, err)
	}
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	//lint:ignore goroutines background pprof listener joined by PprofServer.Close, never touches sim state
	go srv.Serve(ln) //nolint:errcheck // Close surfaces as ErrServerClosed here
	return &PprofServer{srv: srv, ln: ln}, nil
}
