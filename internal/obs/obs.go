// Package obs is the pipeline's stdlib-only observability layer:
// deterministic counters, gauges, and histograms in a name+label-keyed
// Registry, virtual-time span tracing over the same injected-Clock
// discipline the simulators use, and runtime profiling hooks (a pprof
// HTTP endpoint for long-running commands).
//
// Determinism is the design constraint everything else bends around: a
// metrics snapshot must be byte-identical across worker counts and across
// runs of the same seed. Three rules deliver that:
//
//   - Metric values are integers updated by commutative operations
//     (atomic adds), so concurrent pipeline stages produce the same
//     totals regardless of interleaving; no float accumulation order can
//     leak in.
//   - Time never comes from the wall clock. Span durations are measured
//     on a VirtualClock that the pipeline advances by one tick per
//     completed work unit (a simulated profile, a sanitized series, a
//     generated operator), so a span's duration reads as "work units
//     processed", identical for any -workers value.
//   - Snapshots are canonically ordered: metric keys sort
//     lexicographically, spans sort by (start, name), and the JSON
//     encoding has one stable formatting.
//
// A nil *Observer (and nil *Counter/*Gauge/*Histogram/*Span) is a valid
// no-op sink, so instrumented code never branches on "is observability
// on".
package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one name=value metric dimension.
type Label struct {
	Key, Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// metricKey renders the canonical registry key: name{k1="v1",k2="v2"}
// with labels sorted by key. A label-free metric's key is just its name.
func metricKey(name string, labels []Label) string {
	if len(labels) == 0 {
		return name
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", l.Key, l.Value)
	}
	b.WriteByte('}')
	return b.String()
}

// Counter is a monotonically increasing integer metric.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n; a nil receiver is a no-op.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on a nil receiver).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a set-to-latest integer metric.
type Gauge struct {
	v atomic.Int64
}

// Set records the gauge's current value; a nil receiver is a no-op.
func (g *Gauge) Set(n int64) {
	if g != nil {
		g.v.Store(n)
	}
}

// Value returns the last value set (0 on a nil receiver).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram counts integer observations into fixed cumulative-bound
// buckets. Values and the running sum are integers, so concurrent
// observation order cannot change the final state.
type Histogram struct {
	mu     sync.Mutex
	bounds []int64 // ascending upper bounds; an implicit +Inf bucket follows
	counts []int64 // len(bounds)+1
	sum    int64
	n      int64
}

// Observe records one value; a nil receiver is a no-op.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	i := sort.Search(len(h.bounds), func(i int) bool { return v <= h.bounds[i] })
	h.counts[i]++
	h.sum += v
	h.n++
}

// HistogramSnapshot is a histogram's frozen state. Counts has one entry
// per bound plus a final overflow bucket.
type HistogramSnapshot struct {
	Bounds []int64 `json:"bounds"`
	Counts []int64 `json:"counts"`
	Sum    int64   `json:"sum"`
	Count  int64   `json:"count"`
}

// PowersOfTwoBounds returns 1, 2, 4, ... 2^(n-1), the default histogram
// bucket layout.
func PowersOfTwoBounds(n int) []int64 {
	bounds := make([]int64, n)
	for i := range bounds {
		bounds[i] = 1 << uint(i)
	}
	return bounds
}

// Registry holds a process's metrics, keyed by name+labels. The zero
// value is not usable; use NewRegistry. A nil *Registry hands out nil
// (no-op) instruments.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns (creating on first use) the named counter.
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	key := metricKey(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[key]
	if !ok {
		c = &Counter{}
		r.counters[key] = c
	}
	return c
}

// Gauge returns (creating on first use) the named gauge.
func (r *Registry) Gauge(name string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	key := metricKey(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[key]
	if !ok {
		g = &Gauge{}
		r.gauges[key] = g
	}
	return g
}

// Histogram returns (creating on first use) the named histogram. The
// bounds argument is honored on first creation only; passing nil uses
// PowersOfTwoBounds(20).
func (r *Registry) Histogram(name string, bounds []int64, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	key := metricKey(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[key]
	if !ok {
		if bounds == nil {
			bounds = PowersOfTwoBounds(20)
		}
		h = &Histogram{bounds: append([]int64(nil), bounds...), counts: make([]int64, len(bounds)+1)}
		r.hists[key] = h
	}
	return h
}

// snapshotInto freezes the registry's state into s, omitting zero-valued
// counters and histograms so a snapshot reflects what the pipeline did,
// not which instruments it touched.
func (r *Registry) snapshotInto(s *Snapshot) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for k, c := range r.counters {
		if v := c.Value(); v != 0 {
			s.Counters[k] = v
		}
	}
	for k, g := range r.gauges {
		s.Gauges[k] = g.Value()
	}
	for k, h := range r.hists {
		h.mu.Lock()
		if h.n != 0 {
			s.Histograms[k] = HistogramSnapshot{
				Bounds: append([]int64(nil), h.bounds...),
				Counts: append([]int64(nil), h.counts...),
				Sum:    h.sum,
				Count:  h.n,
			}
		}
		h.mu.Unlock()
	}
}
