package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
)

// Snapshot is a frozen, canonically ordered view of one run's metrics:
// the payload of the CLI's -metrics FILE dump. Map keys marshal sorted
// (encoding/json's map ordering), spans are pre-sorted, and values are
// integers, so the encoding is byte-stable for a given pipeline outcome.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]int64             `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
	Spans      []SpanSnapshot               `json:"spans,omitempty"`
}

// NewSnapshot returns an empty snapshot with allocated maps.
func NewSnapshot() Snapshot {
	return Snapshot{
		Counters:   make(map[string]int64),
		Gauges:     make(map[string]int64),
		Histograms: make(map[string]HistogramSnapshot),
	}
}

// WriteJSON writes the snapshot's canonical JSON encoding.
func (s Snapshot) WriteJSON(w io.Writer) error {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return fmt.Errorf("obs: encoding snapshot: %w", err)
	}
	b = append(b, '\n')
	if _, err := w.Write(b); err != nil {
		return fmt.Errorf("obs: writing snapshot: %w", err)
	}
	return nil
}

// ReadSnapshot parses a snapshot produced by WriteJSON.
func ReadSnapshot(r io.Reader) (Snapshot, error) {
	s := NewSnapshot()
	dec := json.NewDecoder(r)
	if err := dec.Decode(&s); err != nil {
		return Snapshot{}, fmt.Errorf("obs: decoding snapshot: %w", err)
	}
	return s, nil
}

// splitKey undoes metricKey: name plus the rendered label list (possibly
// empty).
func splitKey(key string) (name, labels string) {
	if i := strings.IndexByte(key, '{'); i >= 0 {
		return key[:i], strings.TrimSuffix(key[i+1:], "}")
	}
	return key, ""
}

// Render writes the snapshot as the human-readable per-stage report
// `dynamips stats` prints: the span timeline first (virtual-time stage
// durations), then counters and gauges grouped by metric name, then
// histogram summaries.
func (s Snapshot) Render(w io.Writer) error {
	if len(s.Spans) > 0 {
		fmt.Fprintln(w, "stages (virtual time; 1 tick = 1 work unit):")
		nameW := 0
		for _, sp := range s.Spans {
			if len(sp.Name) > nameW {
				nameW = len(sp.Name)
			}
		}
		for _, sp := range s.Spans {
			fmt.Fprintf(w, "  %-*s  [%6d, %6d]  %6d units\n", nameW, sp.Name, sp.Start, sp.End, sp.Units())
		}
		fmt.Fprintln(w)
	}
	renderGroup := func(title string, m map[string]int64) {
		if len(m) == 0 {
			return
		}
		fmt.Fprintf(w, "%s:\n", title)
		keys := make([]string, 0, len(m))
		for k := range m {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		lastName := ""
		for _, k := range keys {
			name, labels := splitKey(k)
			if name != lastName {
				if labels == "" {
					fmt.Fprintf(w, "  %-40s %12d\n", name, m[k])
				} else {
					fmt.Fprintf(w, "  %s\n", name)
				}
				lastName = name
			}
			if labels != "" {
				fmt.Fprintf(w, "    %-38s %12d\n", labels, m[k])
			}
		}
		fmt.Fprintln(w)
	}
	renderGroup("counters", s.Counters)
	renderGroup("gauges", s.Gauges)
	if len(s.Histograms) > 0 {
		fmt.Fprintln(w, "histograms:")
		keys := make([]string, 0, len(s.Histograms))
		for k := range s.Histograms {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			h := s.Histograms[k]
			mean := int64(0)
			if h.Count > 0 {
				mean = h.Sum / h.Count
			}
			fmt.Fprintf(w, "  %-40s n=%d sum=%d mean=%d\n", k, h.Count, h.Sum, mean)
			for i, c := range h.Counts {
				if c == 0 {
					continue
				}
				if i < len(h.Bounds) {
					fmt.Fprintf(w, "    le %-12d %12d\n", h.Bounds[i], c)
				} else {
					fmt.Fprintf(w, "    le %-12s %12d\n", "+inf", c)
				}
			}
		}
		fmt.Fprintln(w)
	}
	return nil
}

// Equal reports whether two snapshots are identical — the check the
// worker-count-invariance tests make, comparing a -workers 1 run's
// snapshot against a -workers N run's.
func (s Snapshot) Equal(t Snapshot) bool {
	a, err1 := json.Marshal(s)
	b, err2 := json.Marshal(t)
	return err1 == nil && err2 == nil && string(a) == string(b)
}
