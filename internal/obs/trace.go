package obs

import (
	"sort"
	"sync"
)

// Clock is the virtual time source spans are measured on — the same
// injected-clock shape the simulators use (dhcp4.Clock, dhcp6.Clock):
// Now returns the current virtual time, whose unit the owner defines.
// The pipeline's convention is one tick per completed work unit.
type Clock interface {
	Now() int64
}

// VirtualClock is a manually advanced Clock. The pipeline owns one per
// run and advances it deterministically (never from the wall clock), so
// everything derived from it is byte-identical across worker counts.
type VirtualClock struct {
	mu sync.Mutex
	t  int64
}

// Now returns the current virtual time; a nil clock reads as 0.
func (c *VirtualClock) Now() int64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

// Advance moves virtual time forward by n ticks; a nil clock is a no-op.
func (c *VirtualClock) Advance(n int64) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.t += n
	c.mu.Unlock()
}

// SpanSnapshot is one finished span: a named interval in virtual time.
type SpanSnapshot struct {
	Name  string `json:"name"`
	Start int64  `json:"start"`
	End   int64  `json:"end"`
}

// Units returns the span's duration in virtual ticks (work units).
func (s SpanSnapshot) Units() int64 { return s.End - s.Start }

// Tracer records spans against a Clock. A nil *Tracer hands out nil
// (no-op) spans.
type Tracer struct {
	mu    sync.Mutex
	clock Clock
	spans []SpanSnapshot
}

// NewTracer builds a tracer over the given clock.
func NewTracer(clock Clock) *Tracer {
	return &Tracer{clock: clock}
}

// Span is an open span; End closes it.
type Span struct {
	t     *Tracer
	name  string
	start int64
}

// Start opens a span at the clock's current virtual time.
func (t *Tracer) Start(name string) *Span {
	if t == nil {
		return nil
	}
	return &Span{t: t, name: name, start: t.clock.Now()}
}

// End closes the span at the clock's current virtual time and records
// it; a nil receiver is a no-op.
func (s *Span) End() {
	if s == nil {
		return
	}
	end := s.t.clock.Now()
	s.t.mu.Lock()
	s.t.spans = append(s.t.spans, SpanSnapshot{Name: s.name, Start: s.start, End: end})
	s.t.mu.Unlock()
}

// snapshotInto appends the tracer's finished spans to s in canonical
// (start, end, name) order.
func (t *Tracer) snapshotInto(s *Snapshot) {
	if t == nil {
		return
	}
	t.mu.Lock()
	spans := append([]SpanSnapshot(nil), t.spans...)
	t.mu.Unlock()
	sort.Slice(spans, func(i, j int) bool {
		if spans[i].Start != spans[j].Start {
			return spans[i].Start < spans[j].Start
		}
		if spans[i].End != spans[j].End {
			return spans[i].End < spans[j].End
		}
		return spans[i].Name < spans[j].Name
	})
	s.Spans = append(s.Spans, spans...)
}

// Observer bundles one run's metrics registry, virtual clock, and
// tracer — the single handle threaded through the pipeline's Config
// structs. A nil *Observer is a valid no-op sink everywhere.
type Observer struct {
	Metrics *Registry
	Clock   *VirtualClock
	Trace   *Tracer
}

// NewObserver wires a fresh registry, clock, and tracer.
func NewObserver() *Observer {
	clock := &VirtualClock{}
	return &Observer{Metrics: NewRegistry(), Clock: clock, Trace: NewTracer(clock)}
}

// Counter returns the named counter (nil-safe).
func (o *Observer) Counter(name string, labels ...Label) *Counter {
	if o == nil {
		return nil
	}
	return o.Metrics.Counter(name, labels...)
}

// Gauge returns the named gauge (nil-safe).
func (o *Observer) Gauge(name string, labels ...Label) *Gauge {
	if o == nil {
		return nil
	}
	return o.Metrics.Gauge(name, labels...)
}

// Histogram returns the named histogram (nil-safe).
func (o *Observer) Histogram(name string, bounds []int64, labels ...Label) *Histogram {
	if o == nil {
		return nil
	}
	return o.Metrics.Histogram(name, bounds, labels...)
}

// StartSpan opens a span on the observer's tracer (nil-safe).
func (o *Observer) StartSpan(name string) *Span {
	if o == nil {
		return nil
	}
	return o.Trace.Start(name)
}

// Advance moves the observer's virtual clock forward by n work units
// (nil-safe).
func (o *Observer) Advance(n int64) {
	if o == nil {
		return
	}
	o.Clock.Advance(n)
}

// Snapshot freezes the observer's full state. A nil observer yields the
// empty snapshot.
func (o *Observer) Snapshot() Snapshot {
	s := NewSnapshot()
	if o == nil {
		return s
	}
	o.Metrics.snapshotInto(&s)
	o.Trace.snapshotInto(&s)
	return s
}
