package obs

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
)

func TestMetricKeyCanonical(t *testing.T) {
	cases := []struct {
		name   string
		labels []Label
		want   string
	}{
		{"plain", nil, "plain"},
		{"one", []Label{L("as", "DTAG")}, `one{as="DTAG"}`},
		{"sorted", []Label{L("z", "1"), L("a", "2")}, `sorted{a="2",z="1"}`},
		{"quoted", []Label{L("r", `ba"d`)}, `quoted{r="ba\"d"}`},
	}
	for _, c := range cases {
		if got := metricKey(c.name, c.labels); got != c.want {
			t.Errorf("metricKey(%q, %v) = %q, want %q", c.name, c.labels, got, c.want)
		}
	}
}

func TestCounterGaugeHistogram(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("drops", L("reason", "short"))
	c.Inc()
	c.Add(2)
	if c.Value() != 3 {
		t.Errorf("counter = %d, want 3", c.Value())
	}
	if r.Counter("drops", L("reason", "short")) != c {
		t.Error("same name+labels returned a different counter")
	}
	if r.Counter("drops", L("reason", "tag")) == c {
		t.Error("different labels returned the same counter")
	}

	g := r.Gauge("series")
	g.Set(41)
	g.Set(42)
	if g.Value() != 42 {
		t.Errorf("gauge = %d, want 42", g.Value())
	}

	h := r.Histogram("sends", []int64{1, 2, 4})
	for _, v := range []int64{1, 1, 3, 9} {
		h.Observe(v)
	}
	s := NewSnapshot()
	r.snapshotInto(&s)
	hs := s.Histograms["sends"]
	wantCounts := []int64{2, 0, 1, 1}
	if fmt.Sprint(hs.Counts) != fmt.Sprint(wantCounts) {
		t.Errorf("histogram counts = %v, want %v", hs.Counts, wantCounts)
	}
	if hs.Sum != 14 || hs.Count != 4 {
		t.Errorf("histogram sum/count = %d/%d, want 14/4", hs.Sum, hs.Count)
	}
}

func TestNilSafety(t *testing.T) {
	var o *Observer
	o.Counter("x").Inc()
	o.Gauge("y").Set(1)
	o.Histogram("z", nil).Observe(1)
	o.Advance(5)
	sp := o.StartSpan("stage")
	sp.End()
	if s := o.Snapshot(); len(s.Counters) != 0 || len(s.Spans) != 0 {
		t.Errorf("nil observer snapshot not empty: %+v", s)
	}
	var r *Registry
	r.Counter("x").Add(1)
	var c *VirtualClock
	if c.Now() != 0 {
		t.Error("nil clock Now != 0")
	}
	c.Advance(1)
	var tr *Tracer
	tr.Start("x").End()
	if err := (*PprofServer)(nil).Close(); err != nil {
		t.Errorf("nil pprof Close: %v", err)
	}
}

// TestConcurrentDeterminism is the core contract: any interleaving of
// commutative updates yields the same snapshot bytes.
func TestConcurrentDeterminism(t *testing.T) {
	run := func(workers int) []byte {
		o := NewObserver()
		sp := o.StartSpan("stage")
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := 0; i < 1000; i++ {
					o.Counter("events", L("kind", fmt.Sprint(i%3))).Inc()
					o.Histogram("values", nil).Observe(int64(i % 17))
				}
			}(w)
		}
		wg.Wait()
		o.Advance(int64(workers * 1000))
		sp.End()
		o.Gauge("total").Set(int64(workers * 1000))
		var buf bytes.Buffer
		if err := o.Snapshot().WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	// Same total work split across different worker counts must be
	// byte-identical.
	a, b := run(8), run(8)
	if !bytes.Equal(a, b) {
		t.Error("identical runs produced different snapshots")
	}
}

func TestSnapshotRoundTripAndEqual(t *testing.T) {
	o := NewObserver()
	o.Counter("c", L("a", "b")).Add(7)
	o.Gauge("g").Set(-3)
	o.Histogram("h", []int64{10}).Observe(4)
	sp := o.StartSpan("s1")
	o.Advance(11)
	sp.End()
	s := o.Snapshot()

	var buf bytes.Buffer
	if err := s.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !s.Equal(back) {
		t.Errorf("round trip changed snapshot:\n%+v\n%+v", s, back)
	}
	if len(back.Spans) != 1 || back.Spans[0].Units() != 11 {
		t.Errorf("spans = %+v, want one 11-unit span", back.Spans)
	}
	back.Counters[`c{a="b"}`] = 8
	if s.Equal(back) {
		t.Error("Equal ignored a counter difference")
	}
	if _, err := ReadSnapshot(strings.NewReader("{broken")); err == nil {
		t.Error("ReadSnapshot accepted malformed JSON")
	}
}

func TestSpansSortedCanonically(t *testing.T) {
	o := NewObserver()
	s1 := o.StartSpan("later")
	o.Advance(2)
	s2 := o.StartSpan("inner")
	o.Advance(1)
	s2.End()
	s1.End()
	snap := o.Snapshot()
	if len(snap.Spans) != 2 || snap.Spans[0].Name != "later" || snap.Spans[1].Name != "inner" {
		t.Errorf("spans not in (start, end, name) order: %+v", snap.Spans)
	}
}

func TestRender(t *testing.T) {
	o := NewObserver()
	o.Counter("sanitize_drops", L("reason", "short-duration")).Add(3)
	o.Counter("sanitize_drops", L("reason", "bad-tag")).Add(1)
	o.Counter("plain").Add(5)
	o.Gauge("pipeline_series_in").Set(100)
	o.Histogram("sends", []int64{1, 2}).Observe(2)
	sp := o.StartSpan("atlas/fleets")
	o.Advance(11)
	sp.End()
	var buf bytes.Buffer
	if err := o.Snapshot().Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"atlas/fleets", "11 units", "sanitize_drops",
		`reason="short-duration"`, "pipeline_series_in", "sends", "le 2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("render output missing %q:\n%s", want, out)
		}
	}
}

func TestStartPprof(t *testing.T) {
	if srv, err := StartPprof(""); srv != nil || err != nil {
		t.Fatalf("empty addr: got %v, %v", srv, err)
	}
	srv, err := StartPprof("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	resp, err := http.Get("http://" + srv.Addr() + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "goroutine") {
		t.Errorf("pprof index: status %d, body %q", resp.StatusCode, body)
	}
	if _, err := StartPprof("256.0.0.1:bad"); err == nil {
		t.Error("bad address accepted")
	}
}
