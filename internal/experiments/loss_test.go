package experiments

import (
	"bytes"
	"testing"

	"dynamips/internal/core"
	"dynamips/internal/faultnet"
)

// lossCfg is the soak configuration: small enough for CI, large enough
// that every AS profile fires outages, renumberings, and thousands of
// faulted exchanges.
func lossCfg(drop float64, workers int) Config {
	cfg := Config{Seed: 77, Hours: 4000, ProbeScale: 0.05, CDNScale: 0.02, CDNDays: 60, Workers: workers}
	if drop >= 0 {
		cfg.Faults = &faultnet.Profile{Drop: drop}
	}
	return cfg
}

// renderAtlas builds the Atlas pipeline and renders the deterministic
// reports the repo's byte-identity contract is stated over.
func renderAtlas(t *testing.T, cfg Config) (string, *AtlasData) {
	t.Helper()
	a, err := BuildAtlas(cfg)
	if err != nil {
		t.Fatalf("BuildAtlas(faults=%v workers=%d): %v", cfg.Faults, cfg.Workers, err)
	}
	var buf bytes.Buffer
	for _, run := range []func() error{
		func() error { return RunTable1(&buf, a) },
		func() error { return RunFig6(&buf, a) },
		func() error { return RunSanitizeReport(&buf, a) },
	} {
		if err := run(); err != nil {
			t.Fatal(err)
		}
	}
	return buf.String(), a
}

// TestPipelineUnderLoss is the soak test: the full Atlas pipeline runs at
// 0%, 10%, and 30% datagram loss, and at every loss rate the output must
// be byte-identical across worker counts (fault schedules ride per-link
// seeded streams, not goroutine timing). At 0% the fault path must also
// be byte-identical to the legacy no-faults path, and under loss the
// analysis may only ever see fewer assignment changes per probe than the
// clean run — gapped observations are dropped, never invented.
func TestPipelineUnderLoss(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	legacy, base := renderAtlas(t, lossCfg(-1, 1))

	zero, _ := renderAtlas(t, lossCfg(0, 1))
	if zero != legacy {
		t.Error("all-zero fault profile diverged from the no-faults pipeline")
	}

	baseChanges := probeChanges(base)
	for _, drop := range []float64{0, 0.1, 0.3} {
		seq, a := renderAtlas(t, lossCfg(drop, 1))
		for _, workers := range []int{2, 8} {
			if par, _ := renderAtlas(t, lossCfg(drop, workers)); par != seq {
				t.Errorf("drop=%v: workers=%d output differs from workers=1", drop, workers)
			}
		}
		if drop == 0 {
			continue
		}
		lost := probeChanges(a)
		fabricated := 0
		for id, n := range lost {
			if b, ok := baseChanges[id]; ok && n > b {
				fabricated++
				t.Logf("probe %d: %d changes under drop=%v vs %d clean", id, n, drop, b)
			}
		}
		if fabricated > 0 {
			t.Errorf("drop=%v: %d probes gained assignment changes — loss fabricated reassignments", drop, fabricated)
		}
		if len(a.PAS) == 0 {
			t.Fatalf("drop=%v: no probes survived sanitization", drop)
		}
	}
}

// probeChanges digests an analysis into per-probe change counts (both
// families summed).
func probeChanges(a *AtlasData) map[int]int {
	out := make(map[int]int, len(a.PAS))
	for _, pa := range a.PAS {
		out[pa.Probe.ID] = core.Changes(pa.V4) + core.Changes(pa.V6)
	}
	return out
}

// TestFaultProfileShapesPipeline checks that non-drop faults flow end to
// end: duplication and delay alone must leave the pipeline deterministic
// and non-empty.
func TestFaultProfileShapesPipeline(t *testing.T) {
	cfg := lossCfg(-1, 2)
	cfg.Faults = &faultnet.Profile{Dup: 0.2, Delay: 0.3, DelayMinMS: 10, DelayMaxMS: 5000}
	a, aa := renderAtlas(t, cfg)
	b, _ := renderAtlas(t, cfg)
	if a != b {
		t.Error("dup/delay profile not reproducible")
	}
	if len(aa.PAS) == 0 {
		t.Fatal("dup/delay profile emptied the pipeline")
	}
}
