package experiments

import (
	"fmt"
	"io"
	"sort"

	"dynamips/internal/cdn"
	"dynamips/internal/core"
	"dynamips/internal/rir"
	"dynamips/internal/stats"
)

// fig1Marks are the duration marks (hours) at which the Fig. 1 curves are
// sampled for textual output.
var fig1Marks = []struct {
	label string
	hours float64
}{
	{"1d", 24}, {"3d", 72}, {"1w", 168}, {"2w", 336},
	{"1m", 720}, {"3m", 2160}, {"6m", 4320}, {"1y", 8760},
}

// fig1ASes are the six ASes Fig. 1 (and Figs. 2/5) plots.
var fig1ASes = []uint32{3320, 3215, 7922, 6830, 2856, 5432}

// RunTable1 prints Table 1: per-AS assignment change counts.
func RunTable1(w io.Writer, a *AtlasData) error {
	fmt.Fprintf(w, "Table 1: assignment changes observed in the sanitized IP echo dataset\n")
	fmt.Fprintf(w, "%-12s %6s %8s %9s %9s %17s %9s\n",
		"AS", "ASN", "probes", "v4chg", "DSprobes", "DS v4chg (share)", "v6chg")
	rows := core.Table1(a.PAS, a.Names)
	for _, r := range rows {
		if _, known := a.Names[r.ASN]; !known {
			continue // foreign-AS virtual probes
		}
		fmt.Fprintln(w, r.String())
	}
	return nil
}

func curveRow(w io.Writer, name string, pts []stats.Point, totalYears float64) {
	fmt.Fprintf(w, "  %-14s (%7.2f yr)", name, totalYears)
	for _, m := range fig1Marks {
		fmt.Fprintf(w, " %s=%.2f", m.label, stats.FractionAtOrBelow(pts, m.hours))
	}
	fmt.Fprintln(w)
}

// RunFig1 prints the cumulative total-time-fraction curves per AS,
// sampled at the canonical duration marks.
func RunFig1(w io.Writer, a *AtlasData) error {
	fmt.Fprintln(w, "Figure 1: cumulative total time fraction of assignment durations")
	for _, asn := range fig1ASes {
		d := a.Durations[asn]
		if d == nil {
			continue
		}
		nds, ds, v6 := core.DurationCurves(d)
		ny, dy, vy := d.TotalYears()
		fmt.Fprintf(w, "%s (AS%d):\n", a.Names[asn], asn)
		curveRow(w, "IPv4 non-DS", nds, ny)
		curveRow(w, "IPv4 DS", ds, dy)
		curveRow(w, "IPv6 /64", v6, vy)
	}
	fmt.Fprintln(w, "\nDetected periodic renumbering (>=30% of assignment time at the mode):")
	for _, p := range core.DetectPeriodicRenumbering(a.Durations, 0.05, 0.3) {
		name := a.Names[p.ASN]
		if name == "" {
			continue
		}
		fmt.Fprintf(w, "  %-12s %-7s", name, p.Population)
		for _, m := range p.Modes {
			fmt.Fprintf(w, " %gh(%.0f%%)", m.Period, 100*m.Fraction)
		}
		fmt.Fprintln(w)
	}
	return nil
}

// RunSimultaneity prints §3.2's dual-stack change co-occurrence.
func RunSimultaneity(w io.Writer, a *AtlasData) error {
	fmt.Fprintln(w, "Dual-stack change simultaneity (share of v6 changes co-occurring with a v4 change)")
	sim := core.MeasureSimultaneity(a.PAS)
	for _, asn := range a.ASNs {
		s := sim[asn]
		if s == nil || s.V6Changes == 0 {
			continue
		}
		fmt.Fprintf(w, "  %-12s %6d v6 changes, %5.1f%% simultaneous\n",
			a.Names[asn], s.V6Changes, 100*s.Fraction())
	}
	return nil
}

// RunTable2 prints Table 2: changes across /24 and BGP prefix boundaries.
func RunTable2(w io.Writer, a *AtlasData) error {
	fmt.Fprintln(w, "Table 2: percentage of assignment changes across prefix boundaries")
	fmt.Fprintf(w, "%-12s %10s %12s %12s\n", "AS", "Diff /24", "Diff BGP v4", "Diff BGP v6")
	t2 := core.Table2(a.PAS, a.BGP)
	for _, asn := range a.ASNs {
		r := t2[asn]
		if r == nil {
			continue
		}
		d24, db4, db6 := r.Pct()
		fmt.Fprintf(w, "%-12s %9.0f%% %11.0f%% %11.0f%%\n", a.Names[asn], d24, db4, db6)
	}
	return nil
}

// cplBuckets summarize Fig. 5's spectra.
var cplBuckets = []struct {
	label    string
	from, to int
}{
	{"<24", 0, 23}, {"24-39", 24, 39}, {"40-47", 40, 47},
	{"48-55", 48, 55}, {">=56", 56, 64},
}

// RunFig5 prints the common-prefix-length spectra of successive /64
// assignments.
func RunFig5(w io.Writer, a *AtlasData) error {
	fmt.Fprintln(w, "Figure 5: common prefix length between subsequent IPv6 /64 assignments")
	spectra := core.CPLSpectra(a.PAS)
	for _, asn := range fig1ASes {
		spec := spectra[asn]
		if spec == nil || spec.TotalChanges() == 0 {
			continue
		}
		fmt.Fprintf(w, "%s (AS%d): %d changes, mode CPL %d\n", a.Names[asn], asn, spec.TotalChanges(), spec.ModeCPL())
		type row = struct {
			Label string
			Value float64
		}
		var rows []row
		for _, b := range cplBuckets {
			var ch, pr int
			for n := b.from; n <= b.to; n++ {
				ch += spec.Changes[n]
				pr += spec.Probes[n]
			}
			rows = append(rows, row{fmt.Sprintf("CPL %-6s %8d changes %6d probes", b.label, ch, pr), float64(ch)})
		}
		for _, line := range stats.RenderHistogram(rows, 30) {
			fmt.Fprintf(w, "  %s\n", line)
		}
	}
	return nil
}

// RunFig6 prints per-AS inferred subscriber prefix lengths.
func RunFig6(w io.Writer, a *AtlasData) error {
	fmt.Fprintln(w, "Figure 6: inferred prefix length identifying a subscriber, per AS")
	perAS, _ := core.SubscriberLengths(a.PAS)
	lengths := []int{48, 52, 56, 60, 62, 64}
	fmt.Fprintf(w, "%-12s %7s", "AS", "probes")
	for _, l := range lengths {
		fmt.Fprintf(w, " %5s", fmt.Sprintf("/%d", l))
	}
	fmt.Fprintln(w)
	for _, asn := range a.ASNs {
		h := perAS[asn]
		if h == nil || h.N == 0 {
			continue
		}
		fmt.Fprintf(w, "%-12s %7d", a.Names[asn], h.N)
		for _, l := range lengths {
			fmt.Fprintf(w, " %4.0f%%", 100*h.Fraction(l))
		}
		fmt.Fprintln(w)
	}
	return nil
}

// RunFig8 prints the unique-prefix distributions per AS.
func RunFig8(w io.Writer, a *AtlasData) error {
	fmt.Fprintln(w, "Figure 8: unique prefixes of each length observed per probe (median [p90])")
	dists := core.UniquePrefixes(a.PAS, a.BGP)
	for _, asn := range fig1ASes {
		d := dists[asn]
		if d == nil {
			continue
		}
		fmt.Fprintf(w, "%s (AS%d):", a.Names[asn], asn)
		for _, l := range core.UniquePrefixLengths {
			e := d.PerLen[l]
			fmt.Fprintf(w, " /%d=%.0f[%.0f]", l, e.Median(), e.Quantile(0.9))
		}
		fmt.Fprintf(w, " BGP=%.0f", d.BGPDist.Median())
		if pool, ok := core.InferPoolBoundary(d, 8); ok {
			fmt.Fprintf(w, "  (inferred pool boundary /%d)", pool)
		}
		fmt.Fprintln(w)
	}
	return nil
}

// RunFig9 prints the pooled inferred subscriber lengths.
func RunFig9(w io.Writer, a *AtlasData) error {
	fmt.Fprintln(w, "Figure 9: inferred subscriber prefix length, all probes pooled")
	_, pooled := core.SubscriberLengths(a.PAS)
	if pooled.N == 0 {
		return fmt.Errorf("experiments: no probes with IPv6 changes")
	}
	fmt.Fprintf(w, "probes with >=1 IPv6 change: %d\n", pooled.N)
	type row = struct {
		Label string
		Value float64
	}
	var rows []row
	for l := 42; l <= 64; l++ {
		if f := pooled.Fraction(l); f >= 0.005 {
			rows = append(rows, row{fmt.Sprintf("/%d %5.1f%%", l, 100*f), f})
		}
	}
	for _, line := range stats.RenderHistogram(rows, 40) {
		fmt.Fprintf(w, "  %s\n", line)
	}
	return nil
}

// RunFig2 prints CDN association-duration CDFs for the Fig. 2 ISPs.
func RunFig2(w io.Writer, c *CDNData) error {
	fmt.Fprintln(w, "Figure 2: CDN address association durations (days)")
	marks := []float64{1, 7, 14, 30, 90, 150}
	for _, asn := range fig1ASes {
		e := c.Groups.ByOperator[asn]
		if e == nil || e.Len() == 0 {
			continue
		}
		fmt.Fprintf(w, "  %-10s median=%5.1fd  CDF:", c.Dataset.BGP.Name(asn), e.Median())
		for _, m := range marks {
			fmt.Fprintf(w, " %gd=%.2f", m, e.At(m))
		}
		fmt.Fprintln(w)
	}
	return nil
}

// RunFig3 prints per-registry fixed/mobile box stats.
func RunFig3(w io.Writer, c *CDNData) error {
	fmt.Fprintln(w, "Figure 3: CDN association duration by registry (days)")
	for _, reg := range rir.All() {
		fixed, mobile := c.Groups.RegistryBox(reg)
		fmt.Fprintf(w, "  %-8s fixed : %s\n", reg, fixed)
		fmt.Fprintf(w, "  %-8s mobile: %s\n", reg, mobile)
	}
	return nil
}

// RunFig4 prints the /64-per-/24 degree distributions.
func RunFig4(w io.Writer, c *CDNData) error {
	fmt.Fprintln(w, "Figure 4: IPv6 /64s associated per IPv4 /24")
	dd := cdn.Degrees(c.Dataset.Assocs, c.Mobile)
	fmt.Fprintf(w, "  mobile: unique peak %.0f, weighted peak %.0f, /64-connectivity-1 %.0f%%\n",
		dd.MobileUnique.PeakX(), dd.MobileWeighted.PeakX(), 100*dd.Connectivity1Frac[true])
	fmt.Fprintf(w, "  fixed : unique peak %.0f, weighted peak %.0f, /64-connectivity-1 %.0f%%\n",
		dd.FixedUnique.PeakX(), dd.FixedWeighted.PeakX(), 100*dd.Connectivity1Frac[false])
	printDensity := func(name string, h *stats.LogHistogram) {
		fmt.Fprintf(w, "  %s density:", name)
		for _, p := range h.Density() {
			if p.Y >= 0.02 {
				fmt.Fprintf(w, " %.0f:%.2f", p.X, p.Y)
			}
		}
		fmt.Fprintln(w)
	}
	printDensity("mobile unique", dd.MobileUnique)
	printDensity("fixed unique", dd.FixedUnique)
	return nil
}

// RunFig7 prints trailing-zero delegation inference per registry.
func RunFig7(w io.Writer, c *CDNData) error {
	fmt.Fprintln(w, "Figure 7: trailing zeros of fixed /64s -> inferred delegated prefix length")
	tz := cdn.TrailingZerosByRegistry(c.Dataset, c.Mobile)
	for _, reg := range rir.All() {
		b := tz[reg]
		if b == nil || b.Total == 0 {
			continue
		}
		fmt.Fprintf(w, "  %-8s (%4.1f%% inferable, %d /64s):", reg, 100*b.InferableFrac(), b.Total)
		for _, l := range []int{48, 52, 56, 60} {
			fmt.Fprintf(w, " /%d=%.2f", l, b.Frac(l))
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "  mobile /64s with trailing zeros: %.1f%% (no consistent structure)\n",
		100*cdn.MobileTrailingZeroFrac(c.Dataset, c.Mobile))
	return nil
}

// RunGlobalDurations prints §4.2's global fixed/mobile summary.
func RunGlobalDurations(w io.Writer, c *CDNData) error {
	fmt.Fprintln(w, "Global association durations (§4.2)")
	f, m := c.Groups.Fixed, c.Groups.Mobile
	fmt.Fprintf(w, "  fixed : n=%d median=%.0fd p20-longest>=%.0fd\n", f.Len(), f.Median(), f.Quantile(0.8))
	fmt.Fprintf(w, "  mobile: n=%d median=%.0fd p75=%.0fd max-tail<=30d: %.2f\n",
		m.Len(), m.Median(), m.Quantile(0.75), m.At(30))
	fmt.Fprintf(w, "  associations: %d raw, %d after ASN filter (%d mismatches removed)\n",
		c.Dataset.RawCount, len(c.Dataset.Assocs), c.Dataset.Mismatches)
	mobileShare := mobile64Share(c)
	fmt.Fprintf(w, "  unique /64s from cellular access: %.1f%%\n", 100*mobileShare)
	return nil
}

func mobile64Share(c *CDNData) float64 {
	seen := make(map[uint64]bool)
	var mob, tot float64
	for _, a := range c.Dataset.Assocs {
		if seen[a.K64] {
			continue
		}
		seen[a.K64] = true
		tot++
		if c.Mobile[a.K24] {
			mob++
		}
	}
	if tot == 0 {
		return 0
	}
	return mob / tot
}

// RunSanitizeReport prints the Appendix A.1 pipeline accounting.
func RunSanitizeReport(w io.Writer, a *AtlasData) error {
	fmt.Fprintln(w, "Appendix A.1: sanitization accounting")
	fmt.Fprintf(w, "  clean probes: %d\n", len(a.Sanitize.Clean))
	reasons := make([]string, 0, len(a.Sanitize.Drops))
	for r := range a.Sanitize.Drops {
		reasons = append(reasons, r)
	}
	sort.Strings(reasons)
	for _, r := range reasons {
		fmt.Fprintf(w, "  dropped %-15s %d\n", r+":", a.Sanitize.Drops[r])
	}
	fmt.Fprintf(w, "  probes split into virtual probes: %d\n", a.Sanitize.VirtualSplits)
	return nil
}

// RunEvolution prints §3.2's per-year duration trend: mean sandwiched
// duration per simulated year for the ASes whose policy shifts mid-horizon
// (DTAG, Orange — the paper finds their durations lengthening).
func RunEvolution(w io.Writer, a *AtlasData) error {
	fmt.Fprintln(w, "Evolution over time (§3.2): share of assignment time in short durations, per year")
	eras := core.CollectDurationsByEra(a.PAS, 8760)
	report := func(name string, asn uint32, markHours float64) {
		fmt.Fprintf(w, "  %-8s (<=%gh)", name, markHours)
		for _, e := range eras {
			d := e.PerAS[asn]
			if d == nil {
				continue
			}
			nds, ds, v6 := core.DurationCurves(d)
			fmt.Fprintf(w, "  y%d: nds=%.2f ds=%.2f v6=%.2f", e.Era,
				stats.FractionAtOrBelow(nds, markHours),
				stats.FractionAtOrBelow(ds, markHours),
				stats.FractionAtOrBelow(v6, markHours))
		}
		fmt.Fprintln(w)
	}
	report("DTAG", 3320, 24)
	report("Orange", 3215, 168)
	fmt.Fprintln(w, "(the paper finds durations lengthening over the years, especially DTAG and Orange)")
	return nil
}

// RunZmapBias prints the responsiveness-estimator ablation: the paper
// suspects ZMap-style probing under-reports session durations (§3.2, vs.
// Moura et al.); this measures the bias directly on the same assignment
// histories the echo method observes.
func RunZmapBias(w io.Writer, a *AtlasData) error {
	fmt.Fprintln(w, "ZMap-style responsiveness estimator vs echo-derived durations (§3.2)")
	fmt.Fprintf(w, "%-12s %14s %14s %8s"+"\n", "AS", "echo median", "zmap median", "bias")
	resp := core.ResponsivenessDurations(a.PAS, core.DefaultResponsivenessConfig())
	for _, asn := range a.ASNs {
		d := a.Durations[asn]
		r := resp[asn]
		if d == nil || len(r) == 0 {
			continue
		}
		echo := append(append([]float64(nil), d.V4NonDS...), d.V4DS...)
		if len(echo) == 0 {
			continue
		}
		e := stats.NewECDF(echo)
		z := stats.NewECDF(r)
		fmt.Fprintf(w, "%-12s %13.0fh %13.0fh %7.1fx"+"\n",
			a.Names[asn], e.Median(), z.Median(), core.MedianBias(echo, r))
	}
	fmt.Fprintln(w, "(Moura et al. reported 10-20h renewals for ISPs whose true periods are 24h-2w)")
	return nil
}

// RunTracking prints §6's EUI-64 trackability measurement: Atlas probes
// use stable interface identifiers, so a passive observer can follow a
// device across renumberings by IID alone.
func RunTracking(w io.Writer, a *AtlasData) error {
	fmt.Fprintln(w, "EUI-64 tracking across renumbering (§6)")
	rep := core.MeasureTracking(a.Sanitize.Clean)
	fmt.Fprintf(w, "  devices with IPv6:        %d\n", rep.Devices)
	fmt.Fprintf(w, "  /64 changes observed:     %d\n", rep.Changes)
	fmt.Fprintf(w, "  linkable by stable IID:   %d (%.1f%%)\n", rep.Linkable, 100*rep.LinkableFrac())
	fmt.Fprintf(w, "  IID collisions:           %d\n", rep.Collisions)
	devices := core.LinkByIID(a.Sanitize.Clean)
	multi := 0
	for _, d := range devices {
		if len(d.Prefixes) > 1 {
			multi++
		}
	}
	fmt.Fprintf(w, "  devices followed across >1 prefix: %d of %d\n", multi, len(devices))
	return nil
}

// Experiment names accepted by Run, in paper order.
var Names = []string{
	"table1", "fig1", "simultaneity", "fig2", "fig3", "fig4",
	"table2", "fig5", "fig6", "fig7", "fig8", "fig9",
	"globaldur", "sanitize", "evolution", "zmapbias", "tracking",
}

// atlasExperiments marks which experiments need the Atlas pipeline (the
// rest need the CDN pipeline).
var atlasExperiments = map[string]bool{
	"table1": true, "fig1": true, "simultaneity": true, "table2": true,
	"fig5": true, "fig6": true, "fig8": true, "fig9": true, "sanitize": true,
	"evolution": true, "zmapbias": true, "tracking": true,
}

// NeedsAtlas reports whether the named experiment consumes the Atlas
// pipeline.
func NeedsAtlas(name string) bool { return atlasExperiments[name] }

// RunAtlasExperiment dispatches an Atlas-pipeline experiment.
func RunAtlasExperiment(name string, w io.Writer, a *AtlasData) error {
	switch name {
	case "table1":
		return RunTable1(w, a)
	case "fig1":
		return RunFig1(w, a)
	case "simultaneity":
		return RunSimultaneity(w, a)
	case "table2":
		return RunTable2(w, a)
	case "fig5":
		return RunFig5(w, a)
	case "fig6":
		return RunFig6(w, a)
	case "fig8":
		return RunFig8(w, a)
	case "fig9":
		return RunFig9(w, a)
	case "sanitize":
		return RunSanitizeReport(w, a)
	case "evolution":
		return RunEvolution(w, a)
	case "zmapbias":
		return RunZmapBias(w, a)
	case "tracking":
		return RunTracking(w, a)
	default:
		return fmt.Errorf("experiments: unknown atlas experiment %q", name)
	}
}

// RunCDNExperiment dispatches a CDN-pipeline experiment.
func RunCDNExperiment(name string, w io.Writer, c *CDNData) error {
	switch name {
	case "fig2":
		return RunFig2(w, c)
	case "fig3":
		return RunFig3(w, c)
	case "fig4":
		return RunFig4(w, c)
	case "fig7":
		return RunFig7(w, c)
	case "globaldur":
		return RunGlobalDurations(w, c)
	default:
		return fmt.Errorf("experiments: unknown cdn experiment %q", name)
	}
}

// Run builds whichever pipeline the experiment needs and runs it. Callers
// running several experiments should build the pipelines once and use the
// typed dispatchers.
func Run(name string, w io.Writer, cfg Config) error {
	if NeedsAtlas(name) {
		a, err := BuildAtlas(cfg)
		if err != nil {
			return err
		}
		return RunAtlasExperiment(name, w, a)
	}
	c, err := BuildCDN(cfg)
	if err != nil {
		return err
	}
	return RunCDNExperiment(name, w, c)
}
