package experiments

import (
	"dynamips/internal/faultnet"
	"dynamips/internal/isp"
	"dynamips/internal/obs"
)

// recordFleetMetrics folds one AS's simulation totals into the run's
// counters, labeled by AS name. The per-AS stats are plain sums gathered
// single-threaded inside each simulation, and this merge runs in profile
// order, so the resulting counters are identical for any worker count.
func recordFleetMetrics(o *obs.Observer, as string, n isp.NetStats, echoesDropped int64) {
	if o == nil {
		return
	}
	link := func(fam string, s faultnet.LinkStats) {
		l := []obs.Label{obs.L("as", as), obs.L("fam", fam)}
		o.Counter("net_exchanges", l...).Add(s.Exchanges)
		o.Counter("net_exchanges_failed", l...).Add(s.Failed)
		o.Counter("net_sends", l...).Add(s.Sends)
		o.Counter("net_retransmits", l...).Add(s.Retransmits)
		o.Counter("net_delivered", l...).Add(s.Delivered)
		o.Counter("net_duplicates", l...).Add(s.Duplicates)
	}
	link("v4", n.Link4)
	link("v6", n.Link6)

	asl := obs.L("as", as)
	o.Counter("radius_access_requests", asl).Add(n.Radius.AccessRequests)
	o.Counter("radius_replay_hits", asl).Add(n.Radius.ReplayHits)
	o.Counter("radius_rejects", asl).Add(n.Radius.Rejects)

	o.Counter("dhcp6_solicits", asl).Add(n.DHCP6.Solicits)
	o.Counter("dhcp6_requests", asl).Add(n.DHCP6.Requests)
	o.Counter("dhcp6_renews", asl).Add(n.DHCP6.Renews)
	o.Counter("dhcp6_reassigns", asl).Add(n.DHCP6.Reassigns)
	o.Counter("dhcp6_no_bindings", asl).Add(n.DHCP6.NoBindings)
	o.Counter("dhcp6_lose_states", asl).Add(n.DHCP6.LoseStates)
	o.Counter("dhcp6_renumbers", asl).Add(n.DHCP6.Renumbers)

	o.Counter("atlas_echoes_dropped", asl).Add(echoesDropped)
}
