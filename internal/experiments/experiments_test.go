package experiments

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// buildOnce caches the reduced pipelines across tests in this package.
var (
	atlasCache *AtlasData
	cdnCache   *CDNData
)

func atlasData(t *testing.T) *AtlasData {
	t.Helper()
	if atlasCache == nil {
		a, err := BuildAtlas(Reduced())
		if err != nil {
			t.Fatalf("BuildAtlas: %v", err)
		}
		atlasCache = a
	}
	return atlasCache
}

func cdnData(t *testing.T) *CDNData {
	t.Helper()
	if cdnCache == nil {
		c, err := BuildCDN(Reduced())
		if err != nil {
			t.Fatalf("BuildCDN: %v", err)
		}
		cdnCache = c
	}
	return cdnCache
}

func TestBuildAtlas(t *testing.T) {
	a := atlasData(t)
	if len(a.PAS) < 100 {
		t.Fatalf("only %d probes analyzed", len(a.PAS))
	}
	if len(a.ASNs) != 11 {
		t.Errorf("simulated %d ASes, want 11", len(a.ASNs))
	}
	if a.Durations[3320] == nil {
		t.Error("no DTAG durations")
	}
	if len(a.Sanitize.Drops) == 0 {
		t.Error("sanitization dropped nothing")
	}
}

func TestBuildCDN(t *testing.T) {
	c := cdnData(t)
	if len(c.Dataset.Assocs) == 0 || len(c.Episodes) == 0 {
		t.Fatal("empty CDN pipeline")
	}
	if c.Groups.Fixed.Len() == 0 || c.Groups.Mobile.Len() == 0 {
		t.Fatal("empty duration groups")
	}
}

func TestAtlasExperimentsProduceOutput(t *testing.T) {
	a := atlasData(t)
	for _, name := range Names {
		if !NeedsAtlas(name) {
			continue
		}
		var buf bytes.Buffer
		if err := RunAtlasExperiment(name, &buf, a); err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if buf.Len() < 40 {
			t.Errorf("%s produced only %d bytes: %q", name, buf.Len(), buf.String())
		}
	}
}

func TestCDNExperimentsProduceOutput(t *testing.T) {
	c := cdnData(t)
	for _, name := range Names {
		if NeedsAtlas(name) {
			continue
		}
		var buf bytes.Buffer
		if err := RunCDNExperiment(name, &buf, c); err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if buf.Len() < 40 {
			t.Errorf("%s produced only %d bytes: %q", name, buf.Len(), buf.String())
		}
	}
}

func TestUnknownExperiment(t *testing.T) {
	var buf bytes.Buffer
	if err := RunAtlasExperiment("nope", &buf, atlasData(t)); err == nil {
		t.Error("unknown atlas experiment accepted")
	}
	if err := RunCDNExperiment("nope", &buf, cdnData(t)); err == nil {
		t.Error("unknown cdn experiment accepted")
	}
}

func TestTable1Content(t *testing.T) {
	var buf bytes.Buffer
	if err := RunTable1(&buf, atlasData(t)); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, name := range []string{"DTAG", "Comcast", "Orange", "BT", "Netcologne"} {
		if !strings.Contains(out, name) {
			t.Errorf("Table 1 missing %s:\n%s", name, out)
		}
	}
}

func TestFig1DetectsDTAGPeriodicity(t *testing.T) {
	var buf bytes.Buffer
	if err := RunFig1(&buf, atlasData(t)); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "DTAG") || !strings.Contains(out, "24h(") {
		t.Errorf("Fig 1 output missing DTAG 24h mode:\n%s", out)
	}
}

func TestFig6ShowsDelegationGroundTruth(t *testing.T) {
	var buf bytes.Buffer
	if err := RunFig6(&buf, atlasData(t)); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Netcologne") {
		t.Errorf("Fig 6 missing Netcologne (the /48 delegator):\n%s", out)
	}
}

func TestRunDispatcher(t *testing.T) {
	var buf bytes.Buffer
	cfg := Reduced()
	cfg.ProbeScale = 0.05
	cfg.Hours = 8760
	if err := Run("sanitize", &buf, cfg); err != nil {
		t.Fatalf("Run(sanitize): %v", err)
	}
	if !strings.Contains(buf.String(), "clean probes") {
		t.Errorf("sanitize output: %q", buf.String())
	}
	cfg2 := Reduced()
	cfg2.CDNScale = 0.05
	buf.Reset()
	if err := Run("fig4", &buf, cfg2); err != nil {
		t.Fatalf("Run(fig4): %v", err)
	}
}

// TestDeterministicOutput: the same configuration reproduces every table
// byte-for-byte — the repository's reproducibility contract.
func TestDeterministicOutput(t *testing.T) {
	cfg := Config{Seed: 77, Hours: 6000, ProbeScale: 0.05, CDNScale: 0.02, CDNDays: 60}
	render := func() (string, string) {
		a, err := BuildAtlas(cfg)
		if err != nil {
			t.Fatalf("BuildAtlas: %v", err)
		}
		var t1, f6 bytes.Buffer
		if err := RunTable1(&t1, a); err != nil {
			t.Fatal(err)
		}
		if err := RunFig6(&f6, a); err != nil {
			t.Fatal(err)
		}
		return t1.String(), f6.String()
	}
	a1, b1 := render()
	a2, b2 := render()
	if a1 != a2 {
		t.Error("Table 1 not reproducible")
	}
	if b1 != b2 {
		t.Error("Fig 6 not reproducible")
	}
	c1, err := BuildCDN(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := BuildCDN(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var o1, o2 bytes.Buffer
	if err := RunFig7(&o1, c1); err != nil {
		t.Fatal(err)
	}
	if err := RunFig7(&o2, c2); err != nil {
		t.Fatal(err)
	}
	if o1.String() != o2.String() {
		t.Error("Fig 7 not reproducible")
	}
}

func TestFigureData(t *testing.T) {
	a := atlasData(t)
	c := cdnData(t)
	for _, name := range []string{"fig1", "fig5", "fig9"} {
		series, err := FigureData(name, a, nil)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(series) == 0 {
			t.Fatalf("%s: no series", name)
		}
		for _, s := range series {
			if s.Figure != name || len(s.Points) == 0 {
				t.Errorf("%s: bad series %+v", name, s.Panel)
			}
		}
	}
	for _, name := range []string{"fig2", "fig3", "fig4", "fig7"} {
		series, err := FigureData(name, nil, c)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(series) == 0 {
			t.Fatalf("%s: no series", name)
		}
	}
	if _, err := FigureData("table1", a, c); err == nil {
		t.Error("tabular experiment yielded figure data")
	}
	if _, err := FigureData("fig1", nil, c); err == nil {
		t.Error("fig1 without atlas pipeline accepted")
	}
	var buf bytes.Buffer
	if err := WriteFigureJSON(&buf, "fig9", a, nil); err != nil {
		t.Fatalf("WriteFigureJSON: %v", err)
	}
	var parsed []FigSeries
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("output not valid JSON: %v", err)
	}
	if len(parsed) != 1 || parsed[0].Series != "pct-of-probes" {
		t.Errorf("parsed = %+v", parsed)
	}
}

// TestParallelBuildEquivalence: the worker count bounds concurrency only —
// it must not change a byte of pipeline output.
func TestParallelBuildEquivalence(t *testing.T) {
	cfg := Config{Seed: 77, Hours: 6000, ProbeScale: 0.05, CDNScale: 0.02, CDNDays: 60}
	render := func(workers int) string {
		c := cfg
		c.Workers = workers
		a, err := BuildAtlas(c)
		if err != nil {
			t.Fatalf("BuildAtlas(workers=%d): %v", workers, err)
		}
		d, err := BuildCDN(c)
		if err != nil {
			t.Fatalf("BuildCDN(workers=%d): %v", workers, err)
		}
		var buf bytes.Buffer
		for _, run := range []func() error{
			func() error { return RunTable1(&buf, a) },
			func() error { return RunFig6(&buf, a) },
			func() error { return RunSanitizeReport(&buf, a) },
			func() error { return RunFig7(&buf, d) },
			func() error { return RunGlobalDurations(&buf, d) },
		} {
			if err := run(); err != nil {
				t.Fatal(err)
			}
		}
		return buf.String()
	}
	sequential := render(1)
	for _, workers := range []int{0, 3, 16} {
		if got := render(workers); got != sequential {
			t.Errorf("workers=%d output differs from sequential build", workers)
		}
	}
}
