// Package experiments regenerates every table and figure of the paper's
// evaluation from the synthetic pipeline: one runner per experiment, each
// printing the same rows/series the paper reports. DESIGN.md carries the
// experiment index; EXPERIMENTS.md records paper-vs-measured shapes.
package experiments

import (
	"fmt"

	"dynamips/internal/atlas"
	"dynamips/internal/bgp"
	"dynamips/internal/cdn"
	"dynamips/internal/checkpoint"
	"dynamips/internal/core"
	"dynamips/internal/faultnet"
	"dynamips/internal/isp"
	"dynamips/internal/obs"
)

// Config sizes the synthetic datasets. The defaults approximate the
// paper's populations at laptop scale.
type Config struct {
	// Seed drives every generator; the same seed reproduces every table
	// byte-for-byte.
	Seed int64
	// Hours is the Atlas horizon (the paper's window is ~50,400 hours).
	Hours int64
	// ProbeScale multiplies the per-AS probe counts from Table 1.
	ProbeScale float64
	// CDNScale and CDNDays size the CDN dataset.
	CDNScale float64
	CDNDays  int
	// Workers bounds the pipeline builders' fan-out; <= 0 uses one
	// worker per CPU. The worker count never changes the generated
	// datasets: every parallel stage draws from per-unit seed-derived
	// RNG streams and merges results in input order, so any value
	// reproduces the same tables byte-for-byte.
	Workers int
	// Faults, when non-nil, injects deterministic network faults into
	// both planes: assignment exchanges (RADIUS/DHCPv6) retransmit over
	// lossy links inside every AS simulation, and hourly echo
	// measurements are dropped from the probe fleets. Fault schedules
	// come from seed-derived faultnet streams, so the worker-count
	// invariance above holds under any profile, and a non-nil all-zero
	// profile reproduces the nil output byte-for-byte.
	Faults *faultnet.Profile
	// RelayHops, when positive, routes every AS simulation's assignment
	// exchanges through that many aggregation relay hops (isp.Config's
	// relay topology); RelayFaults is the per-hop fault profile (nil
	// reuses Faults). Like Faults, both are deterministic knobs: the
	// fault schedules derive from seeded streams.
	RelayHops   int
	RelayFaults *faultnet.Profile
	// Checkpoint, when non-nil, journals every completed work unit —
	// per-profile fleet builds, per-series core analyses, per-operator
	// CDN chunks — so an interrupted build resumes from the journal's
	// intact prefix and, by the determinism contract, produces output
	// byte-identical to an uninterrupted run. The caller must key the
	// checkpoint's manifest on this Config (minus Workers and Checkpoint
	// itself, which never change the output).
	Checkpoint *checkpoint.Run
	// Obs, when non-nil, receives the run's counters and virtual-time
	// span timings. Virtual time advances one tick per completed work
	// unit (fleet, sanitized series, analyzed probe, CDN operator), and
	// the per-unit stats fold in deterministic merge order, so the
	// snapshot is byte-identical for any Workers value. Like Workers and
	// Checkpoint, Obs never changes the generated datasets and must stay
	// out of the checkpoint manifest key.
	Obs *obs.Observer
}

// Default returns the configuration the benchmarks and the CLI use.
func Default() Config {
	return Config{Seed: 20201201, Hours: 50400, ProbeScale: 1, CDNScale: 1, CDNDays: 150}
}

// Reduced returns a fast configuration for tests.
func Reduced() Config {
	return Config{Seed: 20201201, Hours: 17520, ProbeScale: 0.3, CDNScale: 0.1, CDNDays: 150}
}

// probeCounts mirrors Table 1's "All probes" column (plus Sky UK, which
// appears in Fig. 6).
var probeCounts = map[string]int{
	"DTAG": 589, "Comcast": 415, "Orange": 425, "LGI": 445,
	"Free SAS": 138, "Kabel DE": 152, "Proximus": 114, "Versatel": 80,
	"BT": 170, "Netcologne": 43, "Sky UK": 90,
}

// AtlasData is the shared product of the Atlas pipeline: simulated ASes,
// generated fleets, sanitized series, per-probe analyses.
type AtlasData struct {
	Config    Config
	PAS       []core.ProbeAnalysis
	BGP       *bgp.Table
	Names     map[uint32]string
	Durations map[uint32]*core.ASDurations
	Sanitize  atlas.SanitizeResult
	// ASNs lists the simulated ASes in Table 1 order.
	ASNs []uint32
}

// BuildAtlas runs the full Atlas pipeline: one ISP simulation and probe
// fleet per built-in profile — the per-AS stages run concurrently under
// cfg.Workers — merged in profile order, sanitized, and analyzed.
func BuildAtlas(cfg Config) (*AtlasData, error) {
	if cfg.Hours <= 0 {
		cfg.Hours = 50400
	}
	if cfg.ProbeScale <= 0 {
		cfg.ProbeScale = 1
	}
	a := &AtlasData{
		Config: cfg,
		BGP:    &bgp.Table{},
		Names:  make(map[uint32]string),
	}
	// Each AS gets a seed derived from its profile index, so the fleets
	// are independent of build order and concurrency. When a checkpoint
	// is attached, every completed fleet is journaled (series plus BGP
	// announcements — the parts the merge below consumes) in profile
	// order.
	profiles := isp.Profiles()
	fleetSpan := cfg.Obs.StartSpan("atlas/fleets")
	fleets, err := checkpoint.Stage(cfg.Checkpoint, "atlas", len(profiles), cfg.Workers,
		func(i int) (fleetUnit, error) {
			prof := profiles[i]
			probes := int(float64(probeCounts[prof.Name]) * cfg.ProbeScale)
			if probes < 10 {
				probes = 10
			}
			subs := probes * 2
			res, err := isp.Run(isp.Config{
				Profile:     prof,
				Subscribers: subs,
				Hours:       cfg.Hours,
				Seed:        cfg.Seed + int64(i)*1000,
				Faults:      cfg.Faults,
				RelayHops:   cfg.RelayHops,
				RelayFaults: cfg.RelayFaults,
			})
			if err != nil {
				return fleetUnit{}, fmt.Errorf("experiments: simulating %s: %w", prof.Name, err)
			}
			fc := atlas.DefaultFleetConfig(probes, cfg.Seed+int64(i)*1000+1)
			if cfg.Faults != nil {
				fc.Faults = *cfg.Faults
			}
			fleet, err := atlas.BuildFleet(res, fc)
			if err != nil {
				return fleetUnit{}, fmt.Errorf("experiments: fleet for %s: %w", prof.Name, err)
			}
			return fleetUnit{
				Series:        fleet.Series,
				Routes:        fleet.BGP.Entries(),
				Net:           res.Net,
				EchoesDropped: fleet.EchoesDropped,
			}, nil
		},
		checkpoint.GobEncode[fleetUnit], checkpoint.GobDecode[fleetUnit])
	if err != nil {
		return nil, err
	}
	// Virtual time advances only here, after the parallel stage completes,
	// by the number of units it processed — one tick per fleet — so the
	// span reads the same under any worker count.
	cfg.Obs.Advance(int64(len(profiles)))
	fleetSpan.End()
	var all []atlas.Series
	for i, fleet := range fleets {
		prof := profiles[i]
		all = append(all, fleet.Series...)
		for _, e := range fleet.Routes {
			a.BGP.Announce(e.Prefix, e.ASN)
		}
		a.Names[prof.ASN] = prof.Name
		a.BGP.SetName(prof.ASN, prof.Name)
		a.ASNs = append(a.ASNs, prof.ASN)
		recordFleetMetrics(cfg.Obs, prof.Name, fleet.Net, fleet.EchoesDropped)
	}
	sanSpan := cfg.Obs.StartSpan("atlas/sanitize")
	sc := atlas.DefaultSanitizeConfig()
	sc.Obs = cfg.Obs
	a.Sanitize = atlas.Sanitize(all, a.BGP, sc)
	cfg.Obs.Advance(int64(len(all)))
	sanSpan.End()
	anaSpan := cfg.Obs.StartSpan("atlas/analyze")
	ec := core.DefaultExtractConfig()
	ec.Workers = cfg.Workers
	ec.Checkpoint = cfg.Checkpoint
	if a.PAS, err = core.AnalyzeErr(a.Sanitize.Clean, ec); err != nil {
		return nil, err
	}
	cfg.Obs.Advance(int64(len(a.Sanitize.Clean)))
	anaSpan.End()
	cfg.Obs.Counter("atlas_probes_analyzed").Add(int64(len(a.PAS)))
	a.Durations = core.CollectDurations(a.PAS)
	return a, nil
}

// fleetUnit is the journaled payload of one per-profile atlas build: the
// probe series and the AS's route announcements, exactly the parts
// BuildAtlas's merge consumes.
type fleetUnit struct {
	Series []atlas.Series
	Routes []bgp.Entry
	// Net and EchoesDropped carry the simulation's protocol/fault
	// accounting so resumed runs replay the same metrics the original
	// build would have recorded. (Adding fields is journal-safe: the
	// checkpoint key includes CodeVersion, which retires old journals.)
	Net           isp.NetStats
	EchoesDropped int64
}

// CDNData is the shared product of the CDN pipeline.
type CDNData struct {
	Dataset  *cdn.Dataset
	Episodes []cdn.Episode
	Mobile   map[uint32]bool
	Groups   *cdn.DurationGroups
}

// MobileDegreeThreshold is the unique-/64 count above which a /24 is
// labeled mobile. The paper's fixed /24s peak at 150–200 unique /64s and
// its mobile /24s orders of magnitude higher; the threshold sits between
// the two regimes and holds across dataset scales down to ~0.1 (fixed /24s cap out near 200 unique /64s).
const MobileDegreeThreshold = 350

// BuildCDN runs the CDN pipeline: generation, filtering, labeling,
// episode extraction, duration grouping.
func BuildCDN(cfg Config) (*CDNData, error) {
	gc := cdn.DefaultGenConfig(cfg.Seed)
	gc.Workers = cfg.Workers
	gc.Checkpoint = cfg.Checkpoint
	gc.Obs = cfg.Obs
	if cfg.CDNDays > 0 {
		gc.Days = cfg.CDNDays
	}
	if cfg.CDNScale > 0 {
		gc.Scale = cfg.CDNScale
	}
	ds, err := cdn.Generate(gc)
	if err != nil {
		return nil, fmt.Errorf("experiments: generating CDN dataset: %w", err)
	}
	c := &CDNData{Dataset: ds}
	anaSpan := cfg.Obs.StartSpan("cdn/analyze")
	c.Mobile = cdn.MobileLabel(ds.Assocs, MobileDegreeThreshold)
	c.Episodes = cdn.Episodes(ds.Assocs, cdn.DefaultEpisodeConfig())
	c.Groups = cdn.GroupDurations(ds, c.Episodes, c.Mobile)
	cfg.Obs.Advance(int64(len(ds.Operators)))
	anaSpan.End()
	cfg.Obs.Counter("cdn_episodes").Add(int64(len(c.Episodes)))
	return c, nil
}
