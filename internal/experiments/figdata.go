package experiments

import (
	"encoding/json"
	"fmt"
	"io"

	"dynamips/internal/cdn"
	"dynamips/internal/core"
	"dynamips/internal/rir"
	"dynamips/internal/stats"
)

// FigSeries is one plottable data series of a figure: the exact points a
// plotting tool needs to regenerate the paper's panel.
type FigSeries struct {
	Figure string        `json:"figure"`
	Panel  string        `json:"panel"`  // e.g. the AS or registry
	Series string        `json:"series"` // e.g. "v4-nds", "fixed"
	Points []stats.Point `json:"points"`
}

// FigureData returns the plottable series for a figure experiment.
// Supported: fig1, fig2, fig5, fig9 on the Atlas/CDN pipelines the name
// requires; other experiments are tabular and print via the text runners.
func FigureData(name string, a *AtlasData, c *CDNData) ([]FigSeries, error) {
	switch name {
	case "fig1":
		if a == nil {
			return nil, fmt.Errorf("experiments: fig1 needs the Atlas pipeline")
		}
		return dataFig1(a), nil
	case "fig2":
		if c == nil {
			return nil, fmt.Errorf("experiments: fig2 needs the CDN pipeline")
		}
		return dataFig2(c), nil
	case "fig3":
		if c == nil {
			return nil, fmt.Errorf("experiments: fig3 needs the CDN pipeline")
		}
		return dataFig3(c), nil
	case "fig4":
		if c == nil {
			return nil, fmt.Errorf("experiments: fig4 needs the CDN pipeline")
		}
		return dataFig4(c), nil
	case "fig7":
		if c == nil {
			return nil, fmt.Errorf("experiments: fig7 needs the CDN pipeline")
		}
		return dataFig7(c), nil
	case "fig5":
		if a == nil {
			return nil, fmt.Errorf("experiments: fig5 needs the Atlas pipeline")
		}
		return dataFig5(a), nil
	case "fig9":
		if a == nil {
			return nil, fmt.Errorf("experiments: fig9 needs the Atlas pipeline")
		}
		return dataFig9(a), nil
	default:
		return nil, fmt.Errorf("experiments: no figure data for %q (figures: fig1 fig2 fig3 fig4 fig5 fig7 fig9)", name)
	}
}

// WriteFigureJSON renders a figure's series as indented JSON.
func WriteFigureJSON(w io.Writer, name string, a *AtlasData, c *CDNData) error {
	series, err := FigureData(name, a, c)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(series)
}

func dataFig1(a *AtlasData) []FigSeries {
	var out []FigSeries
	for _, asn := range fig1ASes {
		d := a.Durations[asn]
		if d == nil {
			continue
		}
		nds, ds, v6 := core.DurationCurves(d)
		panel := a.Names[asn]
		out = append(out,
			FigSeries{Figure: "fig1", Panel: panel, Series: "v4-nds", Points: nds},
			FigSeries{Figure: "fig1", Panel: panel, Series: "v4-ds", Points: ds},
			FigSeries{Figure: "fig1", Panel: panel, Series: "v6", Points: v6},
		)
	}
	return out
}

func dataFig2(c *CDNData) []FigSeries {
	var out []FigSeries
	for _, asn := range fig1ASes {
		e := c.Groups.ByOperator[asn]
		if e == nil || e.Len() == 0 {
			continue
		}
		out = append(out, FigSeries{
			Figure: "fig2",
			Panel:  c.Dataset.BGP.Name(asn),
			Series: "association-duration-cdf",
			Points: e.Curve(),
		})
	}
	return out
}

func dataFig3(c *CDNData) []FigSeries {
	var out []FigSeries
	for _, reg := range rir.All() {
		pair := c.Groups.ByRegistry[reg]
		if pair == nil {
			continue
		}
		if pair.Fixed.Len() > 0 {
			out = append(out, FigSeries{Figure: "fig3", Panel: reg.String(),
				Series: "fixed", Points: boxPoints(pair.Fixed.Box())})
		}
		if pair.Mobile.Len() > 0 {
			out = append(out, FigSeries{Figure: "fig3", Panel: reg.String(),
				Series: "mobile", Points: boxPoints(pair.Mobile.Box())})
		}
	}
	return out
}

// boxPoints encodes a five-number summary as (quantile, value) points.
func boxPoints(b stats.BoxStats) []stats.Point {
	return []stats.Point{
		{X: 0.05, Y: b.P5}, {X: 0.25, Y: b.Q1}, {X: 0.5, Y: b.Median},
		{X: 0.75, Y: b.Q3}, {X: 0.95, Y: b.P95},
	}
}

func dataFig4(c *CDNData) []FigSeries {
	dd := cdn.Degrees(c.Dataset.Assocs, c.Mobile)
	return []FigSeries{
		{Figure: "fig4", Panel: "mobile", Series: "unique", Points: dd.MobileUnique.Density()},
		{Figure: "fig4", Panel: "mobile", Series: "weighted", Points: dd.MobileWeighted.Density()},
		{Figure: "fig4", Panel: "fixed", Series: "unique", Points: dd.FixedUnique.Density()},
		{Figure: "fig4", Panel: "fixed", Series: "weighted", Points: dd.FixedWeighted.Density()},
	}
}

func dataFig7(c *CDNData) []FigSeries {
	tz := cdn.TrailingZerosByRegistry(c.Dataset, c.Mobile)
	var out []FigSeries
	for _, reg := range rir.All() {
		b := tz[reg]
		if b == nil || b.Total == 0 {
			continue
		}
		pts := make([]stats.Point, 0, 4)
		for _, l := range []int{48, 52, 56, 60} {
			pts = append(pts, stats.Point{X: float64(l), Y: b.Frac(l)})
		}
		out = append(out, FigSeries{Figure: "fig7", Panel: reg.String(),
			Series: "frac-with-zeros", Points: pts})
	}
	return out
}

func dataFig5(a *AtlasData) []FigSeries {
	spectra := core.CPLSpectra(a.PAS)
	var out []FigSeries
	for _, asn := range fig1ASes {
		spec := spectra[asn]
		if spec == nil || spec.TotalChanges() == 0 {
			continue
		}
		changes := make([]stats.Point, 0, 65)
		probes := make([]stats.Point, 0, 65)
		for n := 0; n <= 64; n++ {
			if spec.Changes[n] > 0 {
				changes = append(changes, stats.Point{X: float64(n), Y: float64(spec.Changes[n])})
			}
			if spec.Probes[n] > 0 {
				probes = append(probes, stats.Point{X: float64(n), Y: float64(spec.Probes[n])})
			}
		}
		panel := a.Names[asn]
		out = append(out,
			FigSeries{Figure: "fig5", Panel: panel, Series: "changes", Points: changes},
			FigSeries{Figure: "fig5", Panel: panel, Series: "probes", Points: probes},
		)
	}
	return out
}

func dataFig9(a *AtlasData) []FigSeries {
	_, pooled := core.SubscriberLengths(a.PAS)
	pts := make([]stats.Point, 0, 23)
	for l := 42; l <= 64; l++ {
		if f := pooled.Fraction(l); f > 0 {
			pts = append(pts, stats.Point{X: float64(l), Y: 100 * f})
		}
	}
	return []FigSeries{{Figure: "fig9", Panel: "all-probes", Series: "pct-of-probes", Points: pts}}
}
