package experiments

import (
	"testing"

	"dynamips/internal/faultnet"
)

// TestRelayTopologyShapesPipeline: the relay knobs flow end to end —
// assignment exchanges routed through a lossy aggregation chain stay
// deterministic, keep the pipeline non-empty, and actually change the
// generated data relative to the direct path.
func TestRelayTopologyShapesPipeline(t *testing.T) {
	cfg := lossCfg(-1, 2)
	cfg.RelayHops = 2
	cfg.RelayFaults = &faultnet.Profile{Drop: 0.2}
	first, a := renderAtlas(t, cfg)
	again, _ := renderAtlas(t, cfg)
	if first != again {
		t.Error("relay pipeline not reproducible")
	}
	if len(a.PAS) == 0 {
		t.Fatal("relay chain emptied the pipeline")
	}
	direct, _ := renderAtlas(t, lossCfg(-1, 2))
	if first == direct {
		t.Error("lossy relay chain did not shape the output")
	}
}
