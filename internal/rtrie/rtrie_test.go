package rtrie

import (
	"math/rand"
	"net/netip"
	"testing"

	"dynamips/internal/netutil"
)

func mp(s string) netip.Prefix { return netip.MustParsePrefix(s) }
func ma(s string) netip.Addr   { return netip.MustParseAddr(s) }

func TestInsertGetLookup(t *testing.T) {
	var tr Trie[string]
	entries := map[string]string{
		"10.0.0.0/8":       "rfc1918-a",
		"10.1.0.0/16":      "pool-1",
		"10.1.2.0/24":      "pool-1-2",
		"2003::/19":        "dtag",
		"2003:0:a000::/40": "dtag-pool",
		"0.0.0.0/0":        "default4",
		"::/0":             "default6",
	}
	for p, v := range entries {
		if !tr.Insert(mp(p), v) {
			t.Errorf("Insert(%s) reported existing", p)
		}
	}
	if tr.Len() != len(entries) {
		t.Fatalf("Len = %d, want %d", tr.Len(), len(entries))
	}
	// Re-insert replaces without growing.
	if tr.Insert(mp("10.0.0.0/8"), "replaced") {
		t.Error("re-insert reported fresh")
	}
	if tr.Len() != len(entries) {
		t.Errorf("Len after replace = %d", tr.Len())
	}
	if v, ok := tr.Get(mp("10.0.0.0/8")); !ok || v != "replaced" {
		t.Errorf("Get = %q, %v", v, ok)
	}
	if _, ok := tr.Get(mp("10.9.0.0/16")); ok {
		t.Error("Get of absent prefix succeeded")
	}

	lookups := []struct {
		addr string
		want string
		pfx  string
	}{
		{"10.1.2.3", "pool-1-2", "10.1.2.0/24"},
		{"10.1.9.9", "pool-1", "10.1.0.0/16"},
		{"10.200.0.1", "replaced", "10.0.0.0/8"},
		{"192.0.2.1", "default4", "0.0.0.0/0"},
		{"2003:0:a0ff::1", "dtag-pool", "2003:0:a000::/40"},
		{"2003:10::1", "dtag", "2003::/19"},
		{"2a02::1", "default6", "::/0"},
	}
	for _, l := range lookups {
		v, p, ok := tr.Lookup(ma(l.addr))
		if !ok || v != l.want || p != mp(l.pfx) {
			t.Errorf("Lookup(%s) = (%q, %v, %v), want (%q, %v, true)", l.addr, v, p, ok, l.want, l.pfx)
		}
	}
}

func TestLookupMiss(t *testing.T) {
	var tr Trie[int]
	tr.Insert(mp("10.0.0.0/8"), 1)
	if _, _, ok := tr.Lookup(ma("11.0.0.1")); ok {
		t.Error("lookup outside table matched")
	}
	if _, _, ok := tr.Lookup(ma("2001:db8::1")); ok {
		t.Error("v6 lookup in v4-only table matched")
	}
}

func TestFamiliesIsolated(t *testing.T) {
	var tr Trie[int]
	tr.Insert(mp("::/0"), 6)
	if _, _, ok := tr.Lookup(ma("192.0.2.1")); ok {
		t.Error("IPv4 lookup matched ::/0")
	}
}

func TestLookupPrefix(t *testing.T) {
	var tr Trie[int]
	tr.Insert(mp("2003::/19"), 1)
	tr.Insert(mp("2003:0:a000::/40"), 2)
	v, p, ok := tr.LookupPrefix(mp("2003:0:a0ff::/56"))
	if !ok || v != 2 || p != mp("2003:0:a000::/40") {
		t.Errorf("LookupPrefix = (%d, %v, %v)", v, p, ok)
	}
	// A /16 query must not match the /19 entry (match longer than query).
	if _, _, ok := tr.LookupPrefix(mp("2003::/16")); ok {
		t.Error("LookupPrefix matched a more-specific entry")
	}
}

func TestDelete(t *testing.T) {
	var tr Trie[int]
	tr.Insert(mp("10.0.0.0/8"), 1)
	tr.Insert(mp("10.1.0.0/16"), 2)
	if !tr.Delete(mp("10.1.0.0/16")) {
		t.Fatal("Delete failed")
	}
	if tr.Delete(mp("10.1.0.0/16")) {
		t.Error("double Delete succeeded")
	}
	if tr.Len() != 1 {
		t.Errorf("Len = %d, want 1", tr.Len())
	}
	v, p, ok := tr.Lookup(ma("10.1.2.3"))
	if !ok || v != 1 || p != mp("10.0.0.0/8") {
		t.Errorf("Lookup after delete = (%d, %v, %v)", v, p, ok)
	}
	// Deleting a covering prefix keeps more-specifics reachable.
	tr.Insert(mp("10.1.0.0/16"), 2)
	if !tr.Delete(mp("10.0.0.0/8")) {
		t.Fatal("Delete /8 failed")
	}
	if v, _, ok := tr.Lookup(ma("10.1.2.3")); !ok || v != 2 {
		t.Errorf("more-specific lost after covering delete: (%d, %v)", v, ok)
	}
	if _, _, ok := tr.Lookup(ma("10.200.0.1")); ok {
		t.Error("deleted covering prefix still matches")
	}
}

func TestWalkOrderAndCompleteness(t *testing.T) {
	var tr Trie[string]
	ins := []string{"10.0.0.0/8", "192.0.2.0/24", "2003::/19", "::/0", "2003:0:a000::/40"}
	for _, p := range ins {
		tr.Insert(mp(p), p)
	}
	var got []string
	tr.Walk(func(p netip.Prefix, v string) bool {
		if p.String() != v {
			t.Errorf("walk key %v carries value %q", p, v)
		}
		got = append(got, v)
		return true
	})
	want := []string{"10.0.0.0/8", "192.0.2.0/24", "::/0", "2003::/19", "2003:0:a000::/40"}
	if len(got) != len(want) {
		t.Fatalf("walked %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("walk order %v, want %v", got, want)
		}
	}
	// Early stop.
	var n int
	tr.Walk(func(netip.Prefix, string) bool { n++; return n < 2 })
	if n != 2 {
		t.Errorf("early-stop walk visited %d", n)
	}
}

// TestLookupAgainstLinearScan cross-checks trie LPM against a brute-force
// linear scan over randomly generated tables and queries.
func TestLookupAgainstLinearScan(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		var tr Trie[int]
		type entry struct {
			p netip.Prefix
			v int
		}
		var entries []entry
		for i := 0; i < 200; i++ {
			var p netip.Prefix
			if rng.Intn(2) == 0 {
				bits := rng.Intn(25) + 8
				a := netutil.AddrFromU32(rng.Uint32())
				p, _ = a.Prefix(bits)
			} else {
				bits := rng.Intn(57) + 8
				a := netutil.AddrFrom128(rng.Uint64(), rng.Uint64())
				p, _ = a.Prefix(bits)
			}
			tr.Insert(p, i)
			entries = append(entries, entry{p, i})
		}
		// Dedup: later inserts win, mirror that in the scan.
		for q := 0; q < 500; q++ {
			var a netip.Addr
			if rng.Intn(2) == 0 {
				a = netutil.AddrFromU32(rng.Uint32())
			} else {
				a = netutil.AddrFrom128(rng.Uint64(), rng.Uint64())
			}
			bestLen, bestVal := -1, -1
			for _, e := range entries {
				if e.p.Contains(a) {
					if e.p.Bits() > bestLen {
						bestLen, bestVal = e.p.Bits(), e.v
					} else if e.p.Bits() == bestLen {
						bestVal = e.v // later insert replaced earlier
					}
				}
			}
			v, p, ok := tr.Lookup(a)
			if (bestLen >= 0) != ok {
				t.Fatalf("trial %d: Lookup(%v) ok=%v, scan found=%v", trial, a, ok, bestLen >= 0)
			}
			if ok && (v != bestVal || p.Bits() != bestLen) {
				t.Fatalf("trial %d: Lookup(%v) = (%d, /%d), scan = (%d, /%d)",
					trial, a, v, p.Bits(), bestVal, bestLen)
			}
		}
	}
}

func TestInsertInvalidPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Insert of zero prefix did not panic")
		}
	}()
	var tr Trie[int]
	tr.Insert(netip.Prefix{}, 0)
}

func BenchmarkTrieLookup(b *testing.B) {
	var tr Trie[int]
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 100000; i++ {
		a := netutil.AddrFrom128(0x2000_0000_0000_0000|rng.Uint64()>>3, 0)
		p, _ := a.Prefix(rng.Intn(33) + 16)
		tr.Insert(p, i)
	}
	addrs := make([]netip.Addr, 1024)
	for i := range addrs {
		addrs[i] = netutil.AddrFrom128(0x2000_0000_0000_0000|rng.Uint64()>>3, rng.Uint64())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Lookup(addrs[i%len(addrs)])
	}
}

// BenchmarkLinearScanLookup is the ablation baseline for the trie: the same
// LPM implemented as a linear scan, demonstrating why the pipeline uses a
// radix trie for pfx2as classification.
func BenchmarkLinearScanLookup(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	type entry struct {
		p netip.Prefix
		v int
	}
	entries := make([]entry, 10000)
	for i := range entries {
		a := netutil.AddrFrom128(0x2000_0000_0000_0000|rng.Uint64()>>3, 0)
		p, _ := a.Prefix(rng.Intn(33) + 16)
		entries[i] = entry{p, i}
	}
	addrs := make([]netip.Addr, 1024)
	for i := range addrs {
		addrs[i] = netutil.AddrFrom128(0x2000_0000_0000_0000|rng.Uint64()>>3, rng.Uint64())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := addrs[i%len(addrs)]
		best := -1
		for _, e := range entries {
			if e.p.Bits() > best && e.p.Contains(a) {
				best = e.p.Bits()
			}
		}
	}
}
