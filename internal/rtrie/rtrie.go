// Package rtrie implements a binary radix (Patricia-style path) trie over
// netip.Prefix keys with longest-prefix-match lookup for both IPv4 and IPv6.
// It backs the Routeviews-style pfx2as table (internal/bgp) and the RIR
// delegation map (internal/rir) that DynamIPs uses to classify addresses
// by routed BGP prefix and registry.
//
// The trie keeps separate roots per address family; IPv4-mapped IPv6
// addresses are unmapped before keying, matching netip semantics.
package rtrie

import (
	"fmt"
	"net/netip"

	"dynamips/internal/netutil"
)

type node[V any] struct {
	child [2]*node[V]
	val   V
	has   bool
}

// Trie is a longest-prefix-match table from netip.Prefix to V.
// The zero value is an empty table ready to use. Trie is not safe for
// concurrent mutation; concurrent lookups without writers are safe.
type Trie[V any] struct {
	v4, v6 node[V]
	n      int
}

// bitAt returns bit i (0 = most significant) of the address key.
func bitAt(hi, lo uint64, i int) int {
	if i < 64 {
		return int(hi >> (63 - i) & 1)
	}
	return int(lo >> (127 - i) & 1)
}

func (t *Trie[V]) rootAndKey(a netip.Addr) (*node[V], uint64, uint64, int) {
	a = a.Unmap()
	if a.Is4() {
		v := netutil.U32(a)
		return &t.v4, uint64(v) << 32, 0, 32
	}
	hi, lo := netutil.U128(a)
	return &t.v6, hi, lo, 128
}

// Insert adds or replaces the value for prefix p. It returns true when the
// prefix was not previously present.
func (t *Trie[V]) Insert(p netip.Prefix, v V) bool {
	if !p.IsValid() {
		panic(fmt.Sprintf("rtrie: insert of invalid prefix %v", p))
	}
	p = p.Masked()
	n, hi, lo, _ := t.rootAndKey(p.Addr())
	for i := 0; i < p.Bits(); i++ {
		b := bitAt(hi, lo, i)
		if n.child[b] == nil {
			n.child[b] = &node[V]{}
		}
		n = n.child[b]
	}
	fresh := !n.has
	n.val, n.has = v, true
	if fresh {
		t.n++
	}
	return fresh
}

// Len returns the number of prefixes stored.
func (t *Trie[V]) Len() int { return t.n }

// Get returns the value stored exactly at p.
func (t *Trie[V]) Get(p netip.Prefix) (V, bool) {
	var zero V
	if !p.IsValid() {
		return zero, false
	}
	p = p.Masked()
	n, hi, lo, _ := t.rootAndKey(p.Addr())
	for i := 0; i < p.Bits(); i++ {
		n = n.child[bitAt(hi, lo, i)]
		if n == nil {
			return zero, false
		}
	}
	if !n.has {
		return zero, false
	}
	return n.val, true
}

// Lookup returns the value of the longest stored prefix containing a, the
// matched prefix itself, and whether any prefix matched.
func (t *Trie[V]) Lookup(a netip.Addr) (V, netip.Prefix, bool) {
	var (
		zero    V
		best    V
		bestLen = -1
	)
	n, hi, lo, max := t.rootAndKey(a)
	for i := 0; ; i++ {
		if n.has {
			best, bestLen = n.val, i
		}
		if i >= max {
			break
		}
		n = n.child[bitAt(hi, lo, i)]
		if n == nil {
			break
		}
	}
	if bestLen < 0 {
		return zero, netip.Prefix{}, false
	}
	mp, err := a.Unmap().Prefix(bestLen)
	if err != nil {
		return zero, netip.Prefix{}, false
	}
	return best, mp, true
}

// LookupPrefix is Lookup keyed by a prefix's network address. It only
// returns matches that are no longer than p itself (i.e. true containment).
func (t *Trie[V]) LookupPrefix(p netip.Prefix) (V, netip.Prefix, bool) {
	v, mp, ok := t.Lookup(p.Addr())
	var zero V
	if !ok || mp.Bits() > p.Bits() {
		return zero, netip.Prefix{}, false
	}
	return v, mp, true
}

// Delete removes the value stored exactly at p and reports whether it was
// present. Interior nodes left empty are pruned.
func (t *Trie[V]) Delete(p netip.Prefix) bool {
	if !p.IsValid() {
		return false
	}
	p = p.Masked()
	root, hi, lo, _ := t.rootAndKey(p.Addr())
	path := make([]*node[V], 0, p.Bits()+1)
	n := root
	path = append(path, n)
	for i := 0; i < p.Bits(); i++ {
		n = n.child[bitAt(hi, lo, i)]
		if n == nil {
			return false
		}
		path = append(path, n)
	}
	if !n.has {
		return false
	}
	var zero V
	n.has, n.val = false, zero
	t.n--
	// Prune childless, valueless nodes bottom-up (never the root).
	for i := len(path) - 1; i > 0; i-- {
		nd := path[i]
		if nd.has || nd.child[0] != nil || nd.child[1] != nil {
			break
		}
		parent := path[i-1]
		b := bitAt(hi, lo, i-1)
		parent.child[b] = nil
	}
	return true
}

// Walk visits every stored (prefix, value) pair in lexicographic key order,
// IPv4 first. Returning false from fn stops the walk.
func (t *Trie[V]) Walk(fn func(p netip.Prefix, v V) bool) {
	if !walkNode(&t.v4, 0, 0, 0, true, fn) {
		return
	}
	walkNode(&t.v6, 0, 0, 0, false, fn)
}

// walkNode is the recursive body of Walk as a package-level function: a
// method-local closure would be re-allocated on every Walk call.
func walkNode[V any](n *node[V], hi, lo uint64, depth int, v4 bool, fn func(p netip.Prefix, v V) bool) bool {
	if n == nil {
		return true
	}
	if n.has {
		var p netip.Prefix
		if v4 {
			p = netip.PrefixFrom(netutil.AddrFromU32(uint32(hi>>32)), depth)
		} else {
			p = netip.PrefixFrom(netutil.AddrFrom128(hi, lo), depth)
		}
		if !fn(p, n.val) {
			return false
		}
	}
	if depth >= 128 || (v4 && depth >= 32) {
		return true
	}
	if !walkNode(n.child[0], hi, lo, depth+1, v4, fn) {
		return false
	}
	var nhi, nlo = hi, lo
	if depth < 64 {
		nhi = hi | 1<<(63-depth)
	} else {
		nlo = lo | 1<<(127-depth)
	}
	return walkNode(n.child[1], nhi, nlo, depth+1, v4, fn)
}
