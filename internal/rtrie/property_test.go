package rtrie

import (
	"math/rand"
	"net/netip"
	"testing"

	"dynamips/internal/netutil"
)

// TestInsertDeleteAgainstModel drives the trie with a random
// insert/delete workload and cross-checks every intermediate state
// against a map-plus-linear-scan model, exercising the pruning logic.
func TestInsertDeleteAgainstModel(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 10; trial++ {
		var tr Trie[int]
		model := make(map[netip.Prefix]int)

		randomPrefix := func() netip.Prefix {
			if rng.Intn(2) == 0 {
				bits := rng.Intn(17) + 8
				a := netutil.AddrFromU32(rng.Uint32())
				p, _ := a.Prefix(bits)
				return p
			}
			bits := rng.Intn(41) + 8
			a := netutil.AddrFrom128(rng.Uint64(), 0)
			p, _ := a.Prefix(bits)
			return p
		}

		var pool []netip.Prefix
		for step := 0; step < 400; step++ {
			switch {
			case len(pool) == 0 || rng.Intn(3) > 0:
				p := randomPrefix()
				v := step
				fresh := tr.Insert(p, v)
				_, existed := model[p]
				if fresh == existed {
					t.Fatalf("trial %d step %d: Insert(%v) fresh=%v but model existed=%v",
						trial, step, p, fresh, existed)
				}
				model[p] = v
				pool = append(pool, p)
			default:
				i := rng.Intn(len(pool))
				p := pool[i]
				ok := tr.Delete(p)
				_, existed := model[p]
				if ok != existed {
					t.Fatalf("trial %d step %d: Delete(%v) = %v but model existed=%v",
						trial, step, p, ok, existed)
				}
				delete(model, p)
				pool[i] = pool[len(pool)-1]
				pool = pool[:len(pool)-1]
			}
			if tr.Len() != len(model) {
				t.Fatalf("trial %d step %d: Len=%d model=%d", trial, step, tr.Len(), len(model))
			}
		}

		// Final state: every model entry retrievable, every lookup
		// matches a scan.
		for p, v := range model {
			if got, ok := tr.Get(p); !ok || got != v {
				t.Fatalf("trial %d: Get(%v) = (%d,%v), want (%d,true)", trial, p, got, ok, v)
			}
		}
		for q := 0; q < 200; q++ {
			var a netip.Addr
			if rng.Intn(2) == 0 {
				a = netutil.AddrFromU32(rng.Uint32())
			} else {
				a = netutil.AddrFrom128(rng.Uint64(), rng.Uint64())
			}
			bestBits := -1
			bestVal := 0
			for p, v := range model {
				if p.Contains(a) && p.Bits() > bestBits {
					bestBits, bestVal = p.Bits(), v
				}
			}
			v, mp, ok := tr.Lookup(a)
			if ok != (bestBits >= 0) {
				t.Fatalf("trial %d: Lookup(%v) ok=%v scan=%v", trial, a, ok, bestBits >= 0)
			}
			if ok && (v != bestVal || mp.Bits() != bestBits) {
				t.Fatalf("trial %d: Lookup(%v) = (%d,/%d) scan (%d,/%d)",
					trial, a, v, mp.Bits(), bestVal, bestBits)
			}
		}
		// Walk visits exactly the model's entries.
		visited := 0
		tr.Walk(func(p netip.Prefix, v int) bool {
			if mv, ok := model[p]; !ok || mv != v {
				t.Fatalf("trial %d: walk visited unexpected (%v,%d)", trial, p, v)
			}
			visited++
			return true
		})
		if visited != len(model) {
			t.Fatalf("trial %d: walk visited %d of %d", trial, visited, len(model))
		}
	}
}
