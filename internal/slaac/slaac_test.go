package slaac

import (
	"net/netip"
	"testing"
	"testing/quick"
)

func TestEUI64KnownVector(t *testing.T) {
	// RFC 4291 appendix A example: MAC 00:00:5E:10:00:52:13 style —
	// using 34:56:78:9A:BC:DE: EUI-64 = 3656:78FF:FE9A:BCDE with the
	// U/L bit flipped.
	mac := [6]byte{0x34, 0x56, 0x78, 0x9A, 0xBC, 0xDE}
	got := EUI64(mac)
	if got != 0x365678FFFE9ABCDE {
		t.Fatalf("EUI64 = %016x, want 365678fffe9abcde", got)
	}
	if !IsEUI64(got) {
		t.Error("EUI-64 signature not detected")
	}
}

func TestEUI64RoundTripProperty(t *testing.T) {
	f := func(mac [6]byte) bool {
		iid := EUI64(mac)
		back, ok := MACFromEUI64(iid)
		return ok && back == mac && IsEUI64(iid)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMACFromEUI64Rejects(t *testing.T) {
	if _, ok := MACFromEUI64(0x1234567890ABCDEF); ok {
		t.Error("non-EUI-64 IID inverted")
	}
}

func TestStableOpaque(t *testing.T) {
	p1 := netip.MustParsePrefix("2003:1000:0:100::/64")
	p2 := netip.MustParsePrefix("2003:1000:0:200::/64")
	secret := []byte("device-secret")
	a := StableOpaque(p1, "eth0", secret, 0)
	// Stable: same inputs, same IID.
	if b := StableOpaque(p1, "eth0", secret, 0); b != a {
		t.Error("stable-opaque IID not stable")
	}
	// Unlinkable across prefixes, interfaces, secrets, and DAD retries.
	for name, other := range map[string]uint64{
		"prefix":    StableOpaque(p2, "eth0", secret, 0),
		"interface": StableOpaque(p1, "wlan0", secret, 0),
		"secret":    StableOpaque(p1, "eth0", []byte("other"), 0),
		"dad":       StableOpaque(p1, "eth0", secret, 1),
	} {
		if other == a {
			t.Errorf("IID collides when %s changes", name)
		}
	}
	if IsEUI64(a) {
		t.Error("opaque IID carries the EUI-64 signature")
	}
}

func TestTemporaryRotates(t *testing.T) {
	secret := []byte("s")
	seen := map[uint64]bool{}
	for r := uint64(0); r < 50; r++ {
		iid := Temporary(secret, r)
		if seen[iid] {
			t.Fatalf("temporary IID repeated at rotation %d", r)
		}
		seen[iid] = true
	}
	if Temporary(secret, 3) != Temporary(secret, 3) {
		t.Error("temporary IID not deterministic per rotation")
	}
}

func TestAddress(t *testing.T) {
	p := netip.MustParsePrefix("2003:1000:0:100::/64")
	a, err := Address(p, EUI64([6]byte{0x34, 0x56, 0x78, 0x9A, 0xBC, 0xDE}))
	if err != nil {
		t.Fatalf("Address: %v", err)
	}
	if a != netip.MustParseAddr("2003:1000:0:100:3656:78ff:fe9a:bcde") {
		t.Errorf("Address = %v", a)
	}
	if _, err := Address(netip.MustParsePrefix("2003::/56"), 1); err == nil {
		t.Error("non-/64 accepted")
	}
	if _, err := Address(netip.MustParsePrefix("10.0.0.0/24"), 1); err == nil {
		t.Error("IPv4 accepted")
	}
}
