// Package slaac implements the IPv6 host-addressing mechanisms the paper
// describes in §2.1: hosts autonomously form the 64-bit interface
// identifier under stateless address autoconfiguration — historically the
// stable EUI-64 form derived from the MAC (RFC 4862 [56]), today often
// RFC 7217 stable-opaque identifiers ([18]) or RFC 4941 temporary
// "privacy addresses" ([32]) that rotate over time. Which form a device
// uses decides whether it is trackable across renumbering (§2.3, §6).
package slaac

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"net/netip"

	"dynamips/internal/netutil"
)

// EUI64 derives the modified EUI-64 interface identifier from a 48-bit
// MAC: the universal/local bit is inverted and 0xFFFE is inserted between
// the OUI and the NIC-specific bytes (RFC 4291 appendix A).
func EUI64(mac [6]byte) uint64 {
	var b [8]byte
	copy(b[:3], mac[:3])
	b[0] ^= 0x02 // flip U/L
	b[3], b[4] = 0xFF, 0xFE
	copy(b[5:], mac[3:])
	return binary.BigEndian.Uint64(b[:])
}

// IsEUI64 reports whether an IID has the EUI-64 signature (the 0xFFFE
// filler), the pattern hitlist studies ([3], [17]) scan for.
func IsEUI64(iid uint64) bool {
	return (iid>>24)&0xFFFF == 0xFFFE
}

// MACFromEUI64 inverts EUI64, recovering the device MAC — why stable
// EUI-64 addressing is "no longer recommended" ([20], RFC 8064).
func MACFromEUI64(iid uint64) ([6]byte, bool) {
	if !IsEUI64(iid) {
		return [6]byte{}, false
	}
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], iid)
	var mac [6]byte
	copy(mac[:3], b[:3])
	mac[0] ^= 0x02
	copy(mac[3:], b[5:])
	return mac, true
}

// StableOpaque derives an RFC 7217 semantically-opaque IID: stable per
// (prefix, interface, secret) but unlinkable across prefixes — the
// recommended replacement for EUI-64. dadCounter disambiguates duplicate
// address detection retries.
func StableOpaque(prefix netip.Prefix, ifaceName string, secret []byte, dadCounter uint8) uint64 {
	h := sha256.New()
	hi, _ := netutil.U128(prefix.Addr())
	var pfx [8]byte
	binary.BigEndian.PutUint64(pfx[:], hi)
	h.Write(pfx[:])
	h.Write([]byte(ifaceName))
	h.Write([]byte{dadCounter})
	h.Write(secret)
	sum := h.Sum(nil)
	iid := binary.BigEndian.Uint64(sum[:8])
	// Clear the U/L bit: opaque IIDs are local-scope.
	return iid &^ (1 << 57)
}

// Temporary derives an RFC 4941 temporary IID for the given rotation
// index: a fresh pseudorandom identifier per interval, chained from the
// previous state exactly as §3.2.1 of the RFC sketches.
func Temporary(secret []byte, rotation uint64) uint64 {
	h := sha256.New()
	var r [8]byte
	binary.BigEndian.PutUint64(r[:], rotation)
	h.Write(secret)
	h.Write(r[:])
	sum := h.Sum(nil)
	return binary.BigEndian.Uint64(sum[:8]) &^ (1 << 57)
}

// Address composes a full IPv6 address from a /64 prefix and an IID.
func Address(prefix netip.Prefix, iid uint64) (netip.Addr, error) {
	if !prefix.Addr().Is6() || prefix.Addr().Unmap().Is4() || prefix.Bits() != 64 {
		return netip.Addr{}, fmt.Errorf("slaac: need an IPv6 /64, got %v", prefix)
	}
	hi, _ := netutil.U128(prefix.Addr())
	return netutil.AddrFrom128(hi, iid), nil
}
