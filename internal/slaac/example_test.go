package slaac_test

import (
	"fmt"
	"net/netip"

	"dynamips/internal/slaac"
)

// ExampleEUI64 derives the stable interface identifier a device forms
// from its MAC — and shows why it is trackable: the MAC comes back out.
func ExampleEUI64() {
	mac := [6]byte{0x34, 0x56, 0x78, 0x9A, 0xBC, 0xDE}
	iid := slaac.EUI64(mac)
	addr, _ := slaac.Address(netip.MustParsePrefix("2003:1000:0:100::/64"), iid)
	back, _ := slaac.MACFromEUI64(iid)
	fmt.Printf("%v %02x\n", addr, back)
	// Output: 2003:1000:0:100:3656:78ff:fe9a:bcde 3456789abcde
}
