package atlas

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/netip"
	"strings"
)

// Adapter for the real RIPE Atlas "IP echo" result format (measurements
// 12027/13027, [48]/[49] in the paper): probes perform HTTP GETs and the
// result objects carry the echoed X-Client-IP header. This parser accepts
// the public JSON stream so the sanitization and analysis pipeline can run
// on the actual dataset, not only on synthetic fleets.

// ripeResult mirrors the fields of one Atlas HTTP measurement result we
// need; unknown fields are ignored.
type ripeResult struct {
	PrbID     int            `json:"prb_id"`
	Timestamp int64          `json:"timestamp"`
	SrcAddr   string         `json:"src_addr"`
	Result    []ripeHTTPPart `json:"result"`
}

type ripeHTTPPart struct {
	AF     int      `json:"af"`
	Header []string `json:"hdr"`
	// Newer firmware exposes the echoed address directly.
	XClientIP string `json:"x_client_ip"`
}

// ReadRIPEResults parses a stream of RIPE Atlas HTTP measurement results
// (one JSON object per line, as served by the Atlas API with
// format=txt) into Records. epoch is the Unix time mapped to hour 0;
// timestamps are floored to the hourly grid the paper's analysis uses.
// Results without a recoverable X-Client-IP are skipped; malformed JSON
// lines are an error.
func ReadRIPEResults(r io.Reader, epoch int64) ([]Record, error) {
	var out []Record
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 16*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		raw := strings.TrimSpace(sc.Text())
		if raw == "" {
			continue
		}
		var res ripeResult
		if err := json.Unmarshal([]byte(raw), &res); err != nil {
			return nil, fmt.Errorf("atlas: ripe result line %d: %w", line, err)
		}
		rec, ok := res.toRecord(epoch)
		if ok {
			out = append(out, rec)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("atlas: reading ripe results: %w", err)
	}
	return out, nil
}

func (res *ripeResult) toRecord(epoch int64) (Record, bool) {
	echo, af, ok := res.clientIP()
	if !ok {
		return Record{}, false
	}
	rec := Record{
		ProbeID: res.PrbID,
		Hour:    (res.Timestamp - epoch) / 3600,
		Family:  af,
		Echo:    echo,
	}
	if src, err := netip.ParseAddr(res.SrcAddr); err == nil {
		rec.Src = src
	}
	return rec, true
}

// clientIP extracts the echoed public address from whichever field the
// probe firmware used.
func (res *ripeResult) clientIP() (netip.Addr, int, bool) {
	for _, part := range res.Result {
		if part.XClientIP != "" {
			if a, err := netip.ParseAddr(part.XClientIP); err == nil {
				return a, familyOf(a, part.AF), true
			}
		}
		for _, h := range part.Header {
			k, v, found := strings.Cut(h, ":")
			if !found || !strings.EqualFold(strings.TrimSpace(k), EchoHeader) {
				continue
			}
			if a, err := netip.ParseAddr(strings.TrimSpace(v)); err == nil {
				return a, familyOf(a, part.AF), true
			}
		}
	}
	return netip.Addr{}, 0, false
}

func familyOf(a netip.Addr, af int) int {
	if af == 4 || af == 6 {
		return af
	}
	if a.Unmap().Is4() {
		return 4
	}
	return 6
}
