package atlas

import (
	"context"
	"fmt"
	"net/netip"
)

// Prober is the probe-side measurement loop: it performs IP echo
// measurements against a live echo endpoint and accumulates Records on
// the hourly grid, exactly the data path a real Atlas probe follows. The
// caller supplies the virtual hour per measurement (real deployments pass
// wall-clock hours; tests compress time).
type Prober struct {
	ProbeID int
	// Family tags the records (4 or 6); the echoed address family is
	// whatever the transport used.
	Family int
	// Client performs the echo measurement.
	Client *EchoClient
	// Src is the address reported as src_addr (a residential IPv4 probe
	// reports its RFC 1918 address; an IPv6 probe mirrors the echo).
	Src netip.Addr

	records []Record
}

// MeasureAt performs one echo measurement and records it at the given
// hour.
func (p *Prober) MeasureAt(ctx context.Context, hour int64) (Record, error) {
	if p.Client == nil {
		return Record{}, fmt.Errorf("atlas: prober without client")
	}
	addr, err := p.Client.Measure(ctx)
	if err != nil {
		return Record{}, fmt.Errorf("atlas: probe %d at hour %d: %w", p.ProbeID, hour, err)
	}
	src := p.Src
	if !src.IsValid() {
		src = addr // IPv6 probes report their own address as src_addr
	}
	rec := Record{ProbeID: p.ProbeID, Hour: hour, Family: p.Family, Echo: addr, Src: src}
	p.records = append(p.records, rec)
	return rec, nil
}

// Records returns everything measured so far.
func (p *Prober) Records() []Record { return p.records }

// Series compresses the measurements into an RLE series.
func (p *Prober) Series() Series {
	all := Compress(p.records)
	if len(all) == 0 {
		return Series{Probe: Probe{ID: p.ProbeID}}
	}
	ser := all[0]
	ser.Probe.ID = p.ProbeID
	return ser
}
