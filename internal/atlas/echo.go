package atlas

import (
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/netip"
	"time"

	"dynamips/internal/obs"
)

// EchoHeader is the response header carrying the client's publicly visible
// address, as in the RIPE Atlas IP echo measurements (§3.1).
const EchoHeader = "X-Client-IP"

// EchoHandler implements the echo server's HTTP endpoint: it answers every
// GET with the peer address that opened the TCP connection in the
// X-Client-IP header.
func EchoHandler() http.Handler { return EchoHandlerObs(nil) }

// EchoHandlerObs is EchoHandler with request accounting: every request
// increments echo_requests on o, and unresolvable peers increment
// echo_errors. A nil observer disables accounting.
func EchoHandlerObs(o *obs.Observer) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		o.Counter("echo_requests").Inc()
		host, _, err := net.SplitHostPort(r.RemoteAddr)
		if err != nil {
			host = r.RemoteAddr
		}
		addr, err := netip.ParseAddr(host)
		if err != nil {
			o.Counter("echo_errors").Inc()
			http.Error(w, "cannot determine client address", http.StatusInternalServerError)
			return
		}
		w.Header().Set(EchoHeader, addr.Unmap().String())
		w.WriteHeader(http.StatusOK)
	})
}

// EchoServer wraps an http.Server running the echo endpoint.
type EchoServer struct {
	srv  *http.Server
	ln   net.Listener
	addr string
}

// StartEchoServer listens on the given address ("127.0.0.1:0" for an
// ephemeral test port) and serves the echo endpoint until Close.
func StartEchoServer(listen string) (*EchoServer, error) {
	return StartEchoServerObs(listen, nil)
}

// StartEchoServerObs is StartEchoServer with request accounting on o.
func StartEchoServerObs(listen string, o *obs.Observer) (*EchoServer, error) {
	ln, err := net.Listen("tcp", listen)
	if err != nil {
		return nil, fmt.Errorf("atlas: echo listen: %w", err)
	}
	s := &EchoServer{
		srv: &http.Server{
			Handler: EchoHandlerObs(o),
			// Bound every connection phase so a stalled or malicious
			// client can't pin a goroutine: the echo exchange is a
			// header-only GET, so tight limits are safe.
			ReadHeaderTimeout: 5 * time.Second,
			ReadTimeout:       10 * time.Second,
			WriteTimeout:      10 * time.Second,
			IdleTimeout:       60 * time.Second,
			MaxHeaderBytes:    1 << 16,
		},
		ln:   ln,
		addr: ln.Addr().String(),
	}
	//lint:ignore goroutines background echo listener joined by EchoServer.Close; serves header-only GETs off the sim path
	go s.srv.Serve(ln) //nolint:errcheck // Serve returns ErrServerClosed on Close
	return s, nil
}

// Addr returns the server's listen address.
func (s *EchoServer) Addr() string { return s.addr }

// URL returns the echo endpoint URL.
func (s *EchoServer) URL() string { return "http://" + s.addr + "/" }

// Close shuts the server down with a short default drain.
func (s *EchoServer) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	return s.Shutdown(ctx)
}

// Shutdown drains in-flight connections until ctx expires, then force
// closes whatever is left so the listener is always released.
func (s *EchoServer) Shutdown(ctx context.Context) error {
	err := s.srv.Shutdown(ctx)
	if err != nil {
		s.srv.Close() //nolint:errcheck // best-effort after failed drain
	}
	return err
}

// EchoClient is the probe-side measurement: one HTTP GET per invocation,
// returning the echoed public address.
type EchoClient struct {
	// URL is the echo endpoint.
	URL string
	// HTTPClient overrides the default client (tests inject transports
	// or source-address dialers).
	HTTPClient *http.Client
}

// Measure performs one IP echo measurement.
func (c *EchoClient) Measure(ctx context.Context) (netip.Addr, error) {
	hc := c.HTTPClient
	if hc == nil {
		hc = &http.Client{Timeout: 5 * time.Second}
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.URL, nil)
	if err != nil {
		return netip.Addr{}, fmt.Errorf("atlas: building echo request: %w", err)
	}
	resp, err := hc.Do(req)
	if err != nil {
		return netip.Addr{}, fmt.Errorf("atlas: echo request: %w", err)
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body) //nolint:errcheck // drain for keep-alive
	if resp.StatusCode != http.StatusOK {
		return netip.Addr{}, fmt.Errorf("atlas: echo status %d", resp.StatusCode)
	}
	v := resp.Header.Get(EchoHeader)
	if v == "" {
		return netip.Addr{}, fmt.Errorf("atlas: echo response missing %s", EchoHeader)
	}
	addr, err := netip.ParseAddr(v)
	if err != nil {
		return netip.Addr{}, fmt.Errorf("atlas: parsing echoed address %q: %w", v, err)
	}
	return addr, nil
}
