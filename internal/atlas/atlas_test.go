package atlas

import (
	"bytes"
	"context"
	"net/netip"
	"testing"

	"dynamips/internal/bgp"
	"dynamips/internal/isp"
)

func simResult(t *testing.T) *isp.Result {
	t.Helper()
	p, ok := isp.ProfileByName("DTAG")
	if !ok {
		t.Fatal("DTAG profile missing")
	}
	res, err := isp.Run(isp.Config{Profile: p, Subscribers: 150, Hours: 6000, Seed: 5})
	if err != nil {
		t.Fatalf("isp.Run: %v", err)
	}
	return res
}

func cleanFleet(t *testing.T, res *isp.Result, probes int) *Fleet {
	t.Helper()
	cfg := FleetConfig{Probes: probes, Seed: 2, JoinSpreadFrac: 0.3, UptimeMeanHours: 4000, DowntimeMeanHours: 6}
	f, err := BuildFleet(res, cfg)
	if err != nil {
		t.Fatalf("BuildFleet: %v", err)
	}
	return f
}

func TestSpanBasics(t *testing.T) {
	sp := Span{Start: 10, End: 13, Echo: netip.MustParseAddr("2003:1000:0:100::2:1")}
	if sp.Hours() != 4 {
		t.Errorf("Hours = %d", sp.Hours())
	}
	if sp.Prefix64() != netip.MustParsePrefix("2003:1000:0:100::/64") {
		t.Errorf("Prefix64 = %v", sp.Prefix64())
	}
}

func TestExpandCompressRoundTrip(t *testing.T) {
	ser := Series{
		Probe: Probe{ID: 7},
		V4: []Span{
			{Start: 0, End: 5, Echo: netip.MustParseAddr("81.10.0.1"), Src: privateProbeSrc},
			{Start: 6, End: 9, Echo: netip.MustParseAddr("81.10.0.2"), Src: privateProbeSrc},
			{Start: 20, End: 22, Echo: netip.MustParseAddr("81.10.0.2"), Src: privateProbeSrc},
		},
		V6: []Span{
			{Start: 0, End: 9, Echo: netip.MustParseAddr("2003:1000::1"), Src: netip.MustParseAddr("2003:1000::1")},
		},
	}
	recs := ser.Expand()
	if len(recs) != 10+3+10 {
		t.Fatalf("expanded to %d records", len(recs))
	}
	back := Compress(recs)
	if len(back) != 1 {
		t.Fatalf("compressed to %d series", len(back))
	}
	got := back[0]
	if got.Probe.ID != 7 || len(got.V4) != 3 || len(got.V6) != 1 {
		t.Fatalf("round trip: %+v", got)
	}
	for i := range ser.V4 {
		if got.V4[i] != ser.V4[i] {
			t.Errorf("V4[%d] = %+v, want %+v", i, got.V4[i], ser.V4[i])
		}
	}
	if got.V6[0] != ser.V6[0] {
		t.Errorf("V6[0] = %+v", got.V6[0])
	}
}

func TestCompressMergesAdjacentAndDropsDuplicates(t *testing.T) {
	a := netip.MustParseAddr("81.10.0.1")
	recs := []Record{
		{ProbeID: 1, Hour: 2, Family: 4, Echo: a},
		{ProbeID: 1, Hour: 1, Family: 4, Echo: a},
		{ProbeID: 1, Hour: 2, Family: 4, Echo: a}, // duplicate hour
		{ProbeID: 1, Hour: 3, Family: 4, Echo: a},
	}
	out := Compress(recs)
	if len(out) != 1 || len(out[0].V4) != 1 {
		t.Fatalf("Compress = %+v", out)
	}
	if out[0].V4[0].Start != 1 || out[0].V4[0].End != 3 {
		t.Errorf("span = %+v", out[0].V4[0])
	}
}

func TestRecordsJSONLRoundTrip(t *testing.T) {
	recs := []Record{
		{ProbeID: 1, Hour: 5, Family: 4, Echo: netip.MustParseAddr("81.10.0.1"), Src: privateProbeSrc},
		{ProbeID: 1, Hour: 5, Family: 6, Echo: netip.MustParseAddr("2003::1"), Src: netip.MustParseAddr("2003::1")},
	}
	var buf bytes.Buffer
	if err := WriteRecords(&buf, recs); err != nil {
		t.Fatalf("WriteRecords: %v", err)
	}
	got, err := ReadRecords(&buf)
	if err != nil {
		t.Fatalf("ReadRecords: %v", err)
	}
	if len(got) != 2 || got[0] != recs[0] || got[1] != recs[1] {
		t.Errorf("round trip: %+v", got)
	}
}

func TestReadRecordsBadLine(t *testing.T) {
	if _, err := ReadRecords(bytes.NewBufferString("{not json}\n")); err == nil {
		t.Error("bad line accepted")
	}
}

func TestSeriesJSONLRoundTrip(t *testing.T) {
	res := simResult(t)
	f := cleanFleet(t, res, 20)
	var buf bytes.Buffer
	if err := WriteSeries(&buf, f.Series); err != nil {
		t.Fatalf("WriteSeries: %v", err)
	}
	got, err := ReadSeries(&buf)
	if err != nil {
		t.Fatalf("ReadSeries: %v", err)
	}
	if len(got) != len(f.Series) {
		t.Fatalf("read %d series, want %d", len(got), len(f.Series))
	}
	for i := range got {
		if got[i].Probe.ID != f.Series[i].Probe.ID ||
			len(got[i].V4) != len(f.Series[i].V4) ||
			len(got[i].V6) != len(f.Series[i].V6) {
			t.Errorf("series %d differs after round trip", i)
		}
	}
}

func TestEchoServerAndClient(t *testing.T) {
	srv, err := StartEchoServer("127.0.0.1:0")
	if err != nil {
		t.Fatalf("StartEchoServer: %v", err)
	}
	defer srv.Close()
	cl := &EchoClient{URL: srv.URL()}
	addr, err := cl.Measure(context.Background())
	if err != nil {
		t.Fatalf("Measure: %v", err)
	}
	if !addr.IsLoopback() {
		t.Errorf("echoed %v, want loopback", addr)
	}
	// Repeated measurements keep working (keep-alive path).
	for i := 0; i < 3; i++ {
		if _, err := cl.Measure(context.Background()); err != nil {
			t.Fatalf("Measure %d: %v", i, err)
		}
	}
}

func TestBuildFleetBasics(t *testing.T) {
	res := simResult(t)
	f := cleanFleet(t, res, 50)
	if len(f.Series) != 50 {
		t.Fatalf("fleet has %d series", len(f.Series))
	}
	for _, ser := range f.Series {
		if f.Truth[ser.Probe.ID] != KindClean {
			t.Fatalf("clean config produced %v probe", f.Truth[ser.Probe.ID])
		}
		if len(ser.V4) == 0 {
			t.Fatalf("probe %d has no v4 spans", ser.Probe.ID)
		}
		for i, sp := range ser.V4 {
			if sp.End < sp.Start {
				t.Fatalf("probe %d span %d inverted", ser.Probe.ID, i)
			}
			if i > 0 && sp.Start <= ser.V4[i-1].End {
				t.Fatalf("probe %d spans overlap", ser.Probe.ID)
			}
			if !sp.Src.IsPrivate() {
				t.Fatalf("clean probe %d has public v4 src %v", ser.Probe.ID, sp.Src)
			}
		}
		for _, sp := range ser.V6 {
			if sp.Src != sp.Echo {
				t.Fatalf("clean probe %d v6 src != echo", ser.Probe.ID)
			}
		}
	}
}

func TestBuildFleetStableIID(t *testing.T) {
	res := simResult(t)
	f := cleanFleet(t, res, 50)
	for _, ser := range f.Series {
		var iid uint64
		for i, sp := range ser.V6 {
			hi := sp.Echo.As16()
			var lo uint64
			for _, b := range hi[8:] {
				lo = lo<<8 | uint64(b)
			}
			if i == 0 {
				iid = lo
			} else if lo != iid {
				t.Fatalf("probe %d IID changed: %x -> %x", ser.Probe.ID, iid, lo)
			}
		}
	}
}

func TestBuildFleetErrors(t *testing.T) {
	res := simResult(t)
	if _, err := BuildFleet(res, FleetConfig{Probes: 0}); err == nil {
		t.Error("zero probes accepted")
	}
	if _, err := BuildFleet(res, FleetConfig{Probes: 10000}); err == nil {
		t.Error("more probes than subscribers accepted")
	}
}

func TestSanitizeKeepsCleanProbes(t *testing.T) {
	res := simResult(t)
	f := cleanFleet(t, res, 60)
	out := Sanitize(f.Series, f.BGP, DefaultSanitizeConfig())
	// Some clean probes may join late and observe < 720 hours.
	if len(out.Clean)+out.Drops[DropShort] != 60 {
		t.Fatalf("clean=%d drops=%v", len(out.Clean), out.Drops)
	}
	for _, ser := range out.Clean {
		if ser.Probe.ASN != res.Profile.ASN {
			t.Errorf("probe %d assigned ASN %d", ser.Probe.ID, ser.Probe.ASN)
		}
	}
}

func TestSanitizeFiltersAnomalies(t *testing.T) {
	res := simResult(t)
	cfg := DefaultFleetConfig(100, 3)
	f, err := BuildFleet(res, cfg)
	if err != nil {
		t.Fatalf("BuildFleet: %v", err)
	}
	out := Sanitize(f.Series, f.BGP, DefaultSanitizeConfig())

	// Index the surviving probe IDs (virtual probes map back via /10).
	surviving := map[int]bool{}
	for _, ser := range out.Clean {
		surviving[ser.Probe.ID] = true
	}
	for _, ser := range f.Series {
		kind := f.Truth[ser.Probe.ID]
		id := ser.Probe.ID
		switch kind {
		case KindBadTag, KindAtypicalNAT, KindMultihomed:
			if surviving[id] || surviving[id*10+1] {
				t.Errorf("%v probe %d survived sanitization", kind, id)
			}
		case KindASSwitch:
			if surviving[id] {
				t.Errorf("as-switch probe %d survived unsplit", id)
			}
		}
	}
	for _, reason := range []string{DropBadTag, DropAtypicalNAT, DropMultihomed} {
		if out.Drops[reason] == 0 {
			t.Errorf("no drops recorded for %s (drops=%v)", reason, out.Drops)
		}
	}
	if out.VirtualSplits == 0 {
		t.Error("no virtual splits recorded")
	}
	// No test-address entries survive.
	for _, ser := range out.Clean {
		for _, sp := range ser.V4 {
			if sp.Echo == TestAddr {
				t.Fatalf("test address survived in probe %d", ser.Probe.ID)
			}
		}
	}
	// Every surviving series is single-AS.
	for _, ser := range out.Clean {
		seen := map[uint32]bool{}
		for _, sp := range ser.V4 {
			asn, _, _ := f.BGP.Origin(sp.Echo)
			seen[asn] = true
		}
		if len(seen) > 1 {
			t.Errorf("probe %d spans multiple ASes after sanitize", ser.Probe.ID)
		}
	}
}

func TestSanitizeShortProbes(t *testing.T) {
	res := simResult(t)
	cfg := FleetConfig{Probes: 40, Seed: 11, JoinSpreadFrac: 0.2, ShortFrac: 1.0}
	f, err := BuildFleet(res, cfg)
	if err != nil {
		t.Fatalf("BuildFleet: %v", err)
	}
	out := Sanitize(f.Series, f.BGP, DefaultSanitizeConfig())
	if len(out.Clean) != 0 {
		t.Errorf("%d short probes survived", len(out.Clean))
	}
	if out.Drops[DropShort] != 40 {
		t.Errorf("Drops = %v", out.Drops)
	}
}

func TestPrependTestAddr(t *testing.T) {
	ser := Series{V4: []Span{{Start: 0, End: 10, Echo: netip.MustParseAddr("81.10.0.1")}}}
	PrependTestAddr(&ser)
	if len(ser.V4) != 2 || ser.V4[0].Echo != TestAddr || ser.V4[1].Start != 2 {
		t.Errorf("PrependTestAddr: %+v", ser.V4)
	}
	// Too-short first span: no-op.
	short := Series{V4: []Span{{Start: 0, End: 1, Echo: netip.MustParseAddr("81.10.0.1")}}}
	PrependTestAddr(&short)
	if len(short.V4) != 1 {
		t.Errorf("short PrependTestAddr modified series")
	}
}

func TestDualStackCriterion(t *testing.T) {
	ser := Series{
		V4: []Span{{Start: 0, End: 799}},
		V6: []Span{{Start: 0, End: 100}},
	}
	if ser.DualStack(720) {
		t.Error("100h of v6 counted as dual-stack")
	}
	ser.V6 = []Span{{Start: 0, End: 799}}
	if !ser.DualStack(720) {
		t.Error("800h of both not counted as dual-stack")
	}
}

func TestKindString(t *testing.T) {
	if KindClean.String() != "clean" || KindASSwitch.String() != "as-switch" {
		t.Error("kind names wrong")
	}
	if Kind(99).String() != "unknown" {
		t.Error("unknown kind name wrong")
	}
}

// BenchmarkCompressVsExpand is the RLE ablation: hourly records cost ~50x
// the space and proportional decode time versus RLE series.
func BenchmarkExpandHourly(b *testing.B) {
	ser := Series{Probe: Probe{ID: 1}}
	addr := netip.MustParseAddr("81.10.0.1")
	for i := int64(0); i < 100; i++ {
		ser.V4 = append(ser.V4, Span{Start: i * 24, End: i*24 + 23, Echo: addr, Src: privateProbeSrc})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := ser.Expand(); len(got) != 2400 {
			b.Fatal("bad expansion")
		}
	}
}

func BenchmarkCompressHourly(b *testing.B) {
	ser := Series{Probe: Probe{ID: 1}}
	addr := netip.MustParseAddr("81.10.0.1")
	for i := int64(0); i < 100; i++ {
		ser.V4 = append(ser.V4, Span{Start: i * 24, End: i*24 + 23, Echo: addr, Src: privateProbeSrc})
	}
	recs := ser.Expand()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := Compress(recs); len(got) != 1 {
			b.Fatal("bad compression")
		}
	}
}

func TestValidateSeries(t *testing.T) {
	good := Series{
		Probe: Probe{ID: 1},
		V4:    []Span{{Start: 0, End: 5, Echo: netip.MustParseAddr("81.10.0.1")}},
		V6:    []Span{{Start: 0, End: 5, Echo: netip.MustParseAddr("2003::1")}},
	}
	if err := ValidateSeries(&good); err != nil {
		t.Fatalf("valid series rejected: %v", err)
	}
	bad := map[string]Series{
		"inverted": {V4: []Span{{Start: 5, End: 0, Echo: netip.MustParseAddr("81.10.0.1")}}},
		"no echo":  {V4: []Span{{Start: 0, End: 5}}},
		"family":   {V4: []Span{{Start: 0, End: 5, Echo: netip.MustParseAddr("2003::1")}}},
		"overlap": {V4: []Span{
			{Start: 0, End: 5, Echo: netip.MustParseAddr("81.10.0.1")},
			{Start: 3, End: 9, Echo: netip.MustParseAddr("81.10.0.2")},
		}},
	}
	for name, ser := range bad {
		ser := ser
		if err := ValidateSeries(&ser); err == nil {
			t.Errorf("%s: invalid series accepted", name)
		}
	}
}

func TestReadSeriesRejectsCorrupt(t *testing.T) {
	var buf bytes.Buffer
	buf.WriteString(`{"probe":{"prb_id":1},"v4":[{"start":9,"end":2,"x_client_ip":"81.10.0.1","src_addr":"192.168.1.2"}],"v6":null}` + "\n")
	if _, err := ReadSeries(&buf); err == nil {
		t.Error("corrupt series file accepted")
	}
}

// TestSanitizeUnroutedSpans: unrouted echoes carry no AS attribution.
// They must not read as an A,0,A alternation (dropping the probe as
// multihomed), and AS-switch splitting must not fabricate AS-0 virtual
// probes from them.
func TestSanitizeUnroutedSpans(t *testing.T) {
	table := &bgp.Table{}
	table.Announce(netip.MustParsePrefix("81.10.0.0/16"), 3320)
	table.Announce(netip.MustParsePrefix("203.0.113.0/24"), 64501)
	homeA := netip.MustParseAddr("81.10.0.1")
	homeB := netip.MustParseAddr("81.10.0.9")
	unrouted := netip.MustParseAddr("100.64.0.1")
	foreign := netip.MustParseAddr("203.0.113.7")

	// Transiently unrouted echo between two stretches of the home AS.
	ser := Series{
		Probe: Probe{ID: 1, ASN: 3320},
		V4: []Span{
			{Start: 0, End: 800, Echo: homeA},
			{Start: 801, End: 820, Echo: unrouted},
			{Start: 821, End: 1700, Echo: homeB},
		},
	}
	out := Sanitize([]Series{ser}, table, DefaultSanitizeConfig())
	if len(out.Clean) != 1 || out.Drops[DropMultihomed] != 0 {
		t.Fatalf("transiently unrouted probe mishandled: clean=%d drops=%v", len(out.Clean), out.Drops)
	}
	if out.Clean[0].Probe.ASN != 3320 {
		t.Errorf("probe ASN = %d, want 3320", out.Clean[0].Probe.ASN)
	}

	// Genuine AS switch with an unrouted stretch in the middle.
	sw := Series{
		Probe: Probe{ID: 2, ASN: 3320},
		V4: []Span{
			{Start: 0, End: 900, Echo: homeA},
			{Start: 901, End: 920, Echo: unrouted},
			{Start: 921, End: 1900, Echo: foreign},
		},
	}
	out = Sanitize([]Series{sw}, table, DefaultSanitizeConfig())
	if out.VirtualSplits != 1 || len(out.Clean) != 2 {
		t.Fatalf("switch probe: splits=%d clean=%d drops=%v", out.VirtualSplits, len(out.Clean), out.Drops)
	}
	for _, c := range out.Clean {
		if c.Probe.ASN == 0 {
			t.Error("AS-0 virtual probe emitted")
		}
		for _, sp := range c.V4 {
			if sp.Echo == unrouted {
				t.Error("unrouted span survived into a split part")
			}
		}
	}
}
