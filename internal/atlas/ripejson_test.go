package atlas

import (
	"net/netip"
	"strings"
	"testing"
)

func TestReadRIPEResults(t *testing.T) {
	in := `{"fw":4790,"prb_id":101,"timestamp":1004400,"msm_id":12027,"src_addr":"192.168.1.5","result":[{"af":4,"res":200,"hdr":["Date: x","X-Client-IP: 81.10.0.7"]}]}
{"fw":5020,"prb_id":101,"timestamp":1008000,"msm_id":13027,"src_addr":"2003:1000:0:100::2","result":[{"af":6,"x_client_ip":"2003:1000:0:100::2"}]}

{"fw":4790,"prb_id":102,"timestamp":1004400,"msm_id":12027,"result":[{"af":4,"res":599}]}
{"fw":4790,"prb_id":103,"timestamp":1004400,"msm_id":12027,"result":[{"hdr":["x-client-ip:  93.184.216.34"]}]}
`
	recs, err := ReadRIPEResults(strings.NewReader(in), 1000800)
	if err != nil {
		t.Fatalf("ReadRIPEResults: %v", err)
	}
	if len(recs) != 3 {
		t.Fatalf("records = %+v", recs)
	}
	r0 := recs[0]
	if r0.ProbeID != 101 || r0.Hour != 1 || r0.Family != 4 ||
		r0.Echo != netip.MustParseAddr("81.10.0.7") || r0.Src != netip.MustParseAddr("192.168.1.5") {
		t.Errorf("record 0 = %+v", r0)
	}
	r1 := recs[1]
	if r1.Family != 6 || r1.Hour != 2 || r1.Echo != netip.MustParseAddr("2003:1000:0:100::2") {
		t.Errorf("record 1 = %+v", r1)
	}
	// Case-insensitive header with missing af: family derived from the
	// address.
	r2 := recs[2]
	if r2.ProbeID != 103 || r2.Family != 4 || r2.Echo != netip.MustParseAddr("93.184.216.34") {
		t.Errorf("record 2 = %+v", r2)
	}
}

func TestReadRIPEResultsErrors(t *testing.T) {
	if _, err := ReadRIPEResults(strings.NewReader("{broken\n"), 0); err == nil {
		t.Error("broken JSON accepted")
	}
}

func TestReadRIPEResultsIntoPipeline(t *testing.T) {
	// Parsed records must flow through Compress and the analyzer.
	in := `{"prb_id":7,"timestamp":3600,"src_addr":"192.168.1.9","result":[{"af":4,"hdr":["X-Client-IP: 81.10.0.1"]}]}
{"prb_id":7,"timestamp":7200,"src_addr":"192.168.1.9","result":[{"af":4,"hdr":["X-Client-IP: 81.10.0.1"]}]}
{"prb_id":7,"timestamp":10800,"src_addr":"192.168.1.9","result":[{"af":4,"hdr":["X-Client-IP: 81.10.0.2"]}]}
`
	recs, err := ReadRIPEResults(strings.NewReader(in), 0)
	if err != nil {
		t.Fatal(err)
	}
	series := Compress(recs)
	if len(series) != 1 || len(series[0].V4) != 2 {
		t.Fatalf("series = %+v", series)
	}
	if series[0].V4[0].Hours() != 2 || series[0].V4[1].Hours() != 1 {
		t.Errorf("spans = %+v", series[0].V4)
	}
}

// TestReadRIPEResultsCorruptedInput: truncated or garbage streams must
// return an error or skip the unusable line — never panic and never
// fabricate a record.
func TestReadRIPEResultsCorruptedInput(t *testing.T) {
	cases := []struct {
		name    string
		in      string
		wantErr bool
	}{
		{"truncated object", `{"prb_id":7,"timestamp":36`, true},
		{"binary garbage", "\x00\x01\x02\xff\xfe garbage\n", true},
		{"bare array", "[1,2,3]\n", true},
		{"wrong field type", `{"prb_id":"seven","timestamp":3600}` + "\n", true},
		{"result not a list", `{"prb_id":7,"result":{"af":4}}` + "\n", true},
		{"hdr not strings", `{"prb_id":7,"result":[{"hdr":[42]}]}` + "\n", true},
		{"valid JSON, no echo", `{"prb_id":7,"timestamp":3600,"result":[{"af":4,"hdr":["Date: x"]}]}` + "\n", false},
		{"unparsable echo addr", `{"prb_id":7,"result":[{"x_client_ip":"not-an-ip"}]}` + "\n", false},
		{"unparsable src addr", `{"prb_id":7,"src_addr":"::gg","result":[{"x_client_ip":"81.10.0.1"}]}` + "\n", false},
		{"header without colon", `{"prb_id":7,"result":[{"hdr":["X-Client-IP 81.10.0.1"]}]}` + "\n", false},
		{"null result entry", `{"prb_id":7,"result":[null]}` + "\n", false},
		{"blank lines only", "\n\n\n", false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			recs, err := ReadRIPEResults(strings.NewReader(c.in), 0)
			if c.wantErr {
				if err == nil {
					t.Fatalf("corrupted input accepted: %+v", recs)
				}
				return
			}
			if err != nil {
				t.Fatalf("skippable input errored: %v", err)
			}
			// Only the "unparsable src" case yields a record (the echo is
			// fine); everything else must yield none.
			if c.name != "unparsable src addr" && len(recs) != 0 {
				t.Fatalf("fabricated records: %+v", recs)
			}
		})
	}
}

// TestReadRIPEResultsOversizedLine: a line beyond the scanner's buffer is
// an error, not a hang or a panic.
func TestReadRIPEResultsOversizedLine(t *testing.T) {
	huge := `{"prb_id":7,"junk":"` + strings.Repeat("x", 17*1024*1024) + `"}`
	if _, err := ReadRIPEResults(strings.NewReader(huge), 0); err == nil {
		t.Error("oversized line accepted")
	}
}
