package atlas

import (
	"fmt"
	"math"
	"math/rand"
	"net/netip"

	"dynamips/internal/bgp"
	"dynamips/internal/faultnet"
	"dynamips/internal/isp"
	"dynamips/internal/netutil"
	"dynamips/internal/slaac"
)

// Kind is the ground-truth classification of a generated probe, used to
// validate the sanitization pipeline against what the generator injected.
type Kind int

// Probe kinds. Only KindClean probes should survive sanitization intact;
// KindASSwitch probes should survive as split virtual probes.
const (
	KindClean Kind = iota
	KindShort
	KindMultihomed
	KindBadTag
	KindAtypicalNAT
	KindASSwitch
)

var kindNames = [...]string{"clean", "short", "multihomed", "bad-tag", "atypical-nat", "as-switch"}

// String names the kind.
func (k Kind) String() string {
	if k < 0 || int(k) >= len(kindNames) {
		return "unknown"
	}
	return kindNames[k]
}

// Foreign ASes used to synthesize multihoming and AS-switch anomalies.
var (
	foreignASN1     = uint32(64500)
	foreignASN2     = uint32(64501)
	foreignV4Pfx1   = netip.MustParsePrefix("198.51.100.0/24")
	foreignV4Pfx2   = netip.MustParsePrefix("203.0.113.0/24")
	foreignV6Pfx1   = netip.MustParsePrefix("3fff:100::/32")
	foreignV6Pfx2   = netip.MustParsePrefix("3fff:200::/32")
	privateProbeSrc = netip.MustParseAddr("192.168.1.2")
)

// FleetConfig shapes the probe fleet derived from one AS simulation.
type FleetConfig struct {
	// Probes is the number of probes to host (each on a distinct
	// simulated subscriber).
	Probes int
	// Seed makes the fleet reproducible.
	Seed int64
	// JoinSpreadFrac spreads probe join times uniformly over this
	// fraction of the horizon (Atlas probes joined over years).
	JoinSpreadFrac float64
	// UptimeMeanHours and DowntimeMeanHours model probe connectivity as
	// alternating exponential up/down periods. Zero disables downtime.
	UptimeMeanHours   float64
	DowntimeMeanHours float64
	// PrivacyIIDFrac is the fraction of probes whose host rotates its
	// interface identifier on every prefix change (RFC 4941 privacy
	// addresses). Atlas probes deliberately use stable IIDs, but the
	// option models general device populations for the §6 tracking
	// analysis. The /64 still identifies the subscriber either way.
	PrivacyIIDFrac float64
	// Anomaly fractions (Appendix A.1's filtered populations).
	ShortFrac       float64
	MultihomedFrac  float64
	BadTagFrac      float64
	AtypicalNATFrac float64
	TestAddrFrac    float64
	ASSwitchFrac    float64
	// Faults models the measurement plane's own lossiness: each hourly
	// echo is independently lost with probability Faults.Drop, punching
	// single-hour gaps into the observation spans (the missing
	// measurements Sanitize must tolerate without fabricating
	// reassignments). Decisions come from per-probe faultnet streams
	// seeded by Seed, so the fleet's main RNG — join times, anomalies —
	// is untouched and the zero profile changes nothing.
	Faults faultnet.Profile
}

// DefaultFleetConfig returns the configuration used by the experiments:
// mostly clean probes with the anomaly mix the appendix describes.
func DefaultFleetConfig(probes int, seed int64) FleetConfig {
	return FleetConfig{
		Probes:            probes,
		Seed:              seed,
		JoinSpreadFrac:    0.6,
		UptimeMeanHours:   4000,
		DowntimeMeanHours: 8,
		ShortFrac:         0.08,
		MultihomedFrac:    0.05,
		BadTagFrac:        0.03,
		AtypicalNATFrac:   0.03,
		TestAddrFrac:      0.10,
		ASSwitchFrac:      0.04,
	}
}

// Fleet is a generated probe population with its ground truth.
type Fleet struct {
	Series []Series
	Truth  map[int]Kind
	BGP    *bgp.Table
	Result *isp.Result
	// EchoesDropped counts the measured hours the fault profile's echo
	// loss removed across the fleet — the measurement-plane side of the
	// pipeline's fault accounting.
	EchoesDropped int64
}

// BuildFleet derives a probe fleet from an AS simulation. Each probe sits
// behind one simulated subscriber's CPE and reports that subscriber's
// public IPv4 address and a stable (EUI-64-style) address inside the
// subscriber's LAN /64.
func BuildFleet(res *isp.Result, cfg FleetConfig) (*Fleet, error) {
	if cfg.Probes <= 0 || cfg.Probes > len(res.Subscribers) {
		return nil, fmt.Errorf("atlas: %d probes requested from %d subscribers", cfg.Probes, len(res.Subscribers))
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	f := &Fleet{
		Truth:  make(map[int]Kind),
		Result: res,
		BGP:    fleetBGP(res),
	}
	for i := 0; i < cfg.Probes; i++ {
		sub := res.Subscribers[i]
		probe := Probe{
			ID:           int(res.Profile.ASN)*100000 + i,
			ASN:          res.Profile.ASN,
			SubscriberID: sub.ID,
		}
		kind := pickKind(rng, cfg)
		if kind == KindMultihomed && !sub.DualStack {
			kind = KindClean // keep the mix simple: anomalies on DS probes
		}

		join := int64(rng.Float64() * cfg.JoinSpreadFrac * float64(res.Hours))
		end := res.Hours - 1
		if kind == KindShort {
			end = join + int64(rng.Float64()*600) // under a month observed
			if end >= res.Hours {
				end = res.Hours - 1
			}
		}
		up := upSegments(rng, join, end, cfg.UptimeMeanHours, cfg.DowntimeMeanHours)

		// Atlas probes use stable EUI-64 interface identifiers derived
		// from their MAC — deliberately, "to facilitate their use as
		// reliable measurement targets" (§6).
		var probeMAC [6]byte
		rng.Read(probeMAC[:])
		probeMAC[0] &^= 0x01 // unicast
		hostID := slaac.EUI64(probeMAC)
		privacySecret := probeMAC[:]
		privacy := rng.Float64() < cfg.PrivacyIIDFrac
		ser := Series{Probe: probe}
		ser.V4 = buildFamilySpans(up, v4Timeline(sub), func(a netip.Addr) (netip.Addr, netip.Addr) {
			return a, privateProbeSrc
		})
		if sub.DualStack {
			ser.V6 = buildFamilySpans(up, v6Timeline(sub), func(p netip.Addr) (netip.Addr, netip.Addr) {
				host := hostID
				if privacy {
					// An RFC 4941 temporary IID rotated per observed
					// prefix: deterministic in the prefix so
					// re-observations of one assignment agree.
					host = slaac.Temporary(privacySecret, netutil.Key64(p))
				}
				addr := withHost(netutil.Prefix64(p), host)
				return addr, addr
			})
		}
		applyAnomaly(&ser, kind, rng)
		if rng.Float64() < cfg.TestAddrFrac {
			PrependTestAddr(&ser)
		}
		if cfg.Faults.Drop > 0 {
			before := measuredHours(ser.V4) + measuredHours(ser.V6)
			ser.V4 = dropEchoes(ser.V4, cfg.Faults.Drop, faultnet.NewStream(uint64(cfg.Seed), uint64(2*i)))
			ser.V6 = dropEchoes(ser.V6, cfg.Faults.Drop, faultnet.NewStream(uint64(cfg.Seed), uint64(2*i+1)))
			f.EchoesDropped += before - measuredHours(ser.V4) - measuredHours(ser.V6)
		}
		f.Truth[probe.ID] = kind
		if kind == KindBadTag {
			ser.Probe.Tags = append(ser.Probe.Tags, "datacentre")
		}
		f.Series = append(f.Series, ser)
	}
	return f, nil
}

func pickKind(rng *rand.Rand, cfg FleetConfig) Kind {
	x := rng.Float64()
	switch {
	case x < cfg.ShortFrac:
		return KindShort
	case x < cfg.ShortFrac+cfg.MultihomedFrac:
		return KindMultihomed
	case x < cfg.ShortFrac+cfg.MultihomedFrac+cfg.BadTagFrac:
		return KindBadTag
	case x < cfg.ShortFrac+cfg.MultihomedFrac+cfg.BadTagFrac+cfg.AtypicalNATFrac:
		return KindAtypicalNAT
	case x < cfg.ShortFrac+cfg.MultihomedFrac+cfg.BadTagFrac+cfg.AtypicalNATFrac+cfg.ASSwitchFrac:
		return KindASSwitch
	default:
		return KindClean
	}
}

func fleetBGP(res *isp.Result) *bgp.Table {
	t := &bgp.Table{}
	for _, e := range res.BGP.Entries() {
		t.Announce(e.Prefix, e.ASN)
	}
	t.SetName(res.Profile.ASN, res.Profile.Name)
	t.Announce(foreignV4Pfx1, foreignASN1)
	t.Announce(foreignV6Pfx1, foreignASN1)
	t.Announce(foreignV4Pfx2, foreignASN2)
	t.Announce(foreignV6Pfx2, foreignASN2)
	return t
}

type segment struct{ a, b int64 }

func upSegments(rng *rand.Rand, join, end int64, upMean, downMean float64) []segment {
	if upMean <= 0 || downMean <= 0 {
		return []segment{{join, end}}
	}
	var segs []segment
	t := join
	for t <= end {
		up := max(int64(1), int64(rng.ExpFloat64()*upMean))
		b := min(t+up-1, end)
		segs = append(segs, segment{t, b})
		down := max(int64(1), int64(rng.ExpFloat64()*downMean))
		t = b + 1 + down
	}
	return segs
}

type step struct {
	start int64
	addr  netip.Addr
}

func v4Timeline(sub *isp.Subscriber) []step {
	out := make([]step, len(sub.V4))
	for i, st := range sub.V4 {
		out[i] = step{st.Start, st.Addr}
	}
	return out
}

func v6Timeline(sub *isp.Subscriber) []step {
	out := make([]step, len(sub.V6))
	for i, st := range sub.V6 {
		out[i] = step{st.Start, st.LAN.Addr()}
	}
	return out
}

// buildFamilySpans intersects uptime segments with the assignment timeline,
// emitting one span per (segment ∩ assignment) stretch.
func buildFamilySpans(up []segment, steps []step, render func(netip.Addr) (echo, src netip.Addr)) []Span {
	if len(steps) == 0 {
		return nil
	}
	var spans []Span
	for _, seg := range up {
		// Find the step active at seg.a (last step with start <= seg.a).
		i := 0
		for i+1 < len(steps) && steps[i+1].start <= seg.a {
			i++
		}
		for a := seg.a; a <= seg.b && i < len(steps); {
			end := seg.b
			if i+1 < len(steps) && steps[i+1].start-1 < end {
				end = steps[i+1].start - 1
			}
			if end >= a {
				echo, src := render(steps[i].addr)
				spans = append(spans, Span{Start: a, End: end, Echo: echo, Src: src})
			}
			a = end + 1
			i++
		}
	}
	return spans
}

func withHost(p netip.Prefix, host uint64) netip.Addr {
	hi, _ := netutil.U128(p.Addr())
	return netutil.AddrFrom128(hi, host)
}

func foreignAddr4(pfx netip.Prefix, rng *rand.Rand) netip.Addr {
	a, err := netutil.HostAddr(pfx, uint64(rng.Intn(200)+2))
	if err != nil {
		panic(err)
	}
	return a
}

func foreignAddr6(pfx netip.Prefix, rng *rand.Rand) netip.Addr {
	p64, err := netutil.SubPrefix(pfx, 64, uint64(rng.Intn(1<<16)))
	if err != nil {
		panic(err)
	}
	return withHost(p64, rng.Uint64()|1)
}

func applyAnomaly(ser *Series, kind Kind, rng *rand.Rand) {
	switch kind {
	case KindAtypicalNAT:
		// The probe reports a public src_addr in IPv4 (no home NAT) and a
		// src_addr differing from the echoed address in IPv6.
		for i := range ser.V4 {
			ser.V4[i].Src = ser.V4[i].Echo
		}
		for i := range ser.V6 {
			hi, lo := netutil.U128(ser.V6[i].Src)
			ser.V6[i].Src = netutil.AddrFrom128(hi, lo^0xff)
		}

	case KindMultihomed:
		// Alternate chunks of each span between the home ISP and a
		// foreign AS, as a dual-WAN deployment looks from the echo server.
		alt4 := foreignAddr4(foreignV4Pfx1, rng)
		alt6 := foreignAddr6(foreignV6Pfx1, rng)
		ser.V4 = alternate(ser.V4, alt4, privateProbeSrc, rng)
		ser.V6 = alternate(ser.V6, alt6, alt6, rng)

	case KindASSwitch:
		// The owner changed ISP mid-life: all observations after the
		// switch come from a different AS.
		ser.V4 = switchTail(ser.V4, foreignAddr4(foreignV4Pfx2, rng))
		ser.V6 = switchTail(ser.V6, foreignAddr6(foreignV6Pfx2, rng))

	default:
		// TestAddr contamination is orthogonal: applied by the caller
		// through PrependTestAddr when the draw selects it.
	}
}

func alternate(spans []Span, altEcho, altSrc netip.Addr, rng *rand.Rand) []Span {
	var out []Span
	for _, sp := range spans {
		use := rng.Intn(2) == 0
		for a := sp.Start; a <= sp.End; {
			chunk := int64(6 + rng.Intn(18))
			b := min(a+chunk-1, sp.End)
			s := sp
			s.Start, s.End = a, b
			if use {
				s.Echo, s.Src = altEcho, altSrc
			}
			out = append(out, s)
			use = !use
			a = b + 1
		}
	}
	return out
}

func switchTail(spans []Span, alt netip.Addr) []Span {
	if len(spans) < 2 {
		return spans
	}
	cut := len(spans) / 2
	out := append([]Span(nil), spans...)
	for i := cut; i < len(out); i++ {
		out[i].Echo = alt
		out[i].Src = alt
		if out[i].Src.Is4() {
			out[i].Src = privateProbeSrc
		}
	}
	return out
}

// measuredHours sums the measured hours across spans.
func measuredHours(spans []Span) int64 {
	var n int64
	for _, sp := range spans {
		n += sp.Hours()
	}
	return n
}

// dropEchoes removes individual measured hours from spans with
// probability p each, splitting the RLE spans around the gaps. Lost hours
// are located by geometric skip-sampling (inversion of the geometric
// distribution), so the cost is proportional to the number of losses, not
// the number of measured hours, and the spans stay run-length encoded.
func dropEchoes(spans []Span, p float64, st *faultnet.Stream) []Span {
	if p <= 0 || len(spans) == 0 {
		return spans
	}
	if p >= 1 {
		return nil
	}
	// nextGap draws how many hours survive before the next loss.
	logq := math.Log(1 - p)
	nextGap := func() int64 {
		return int64(math.Log(1-st.Float64()) / logq)
	}
	out := make([]Span, 0, len(spans))
	loss := nextGap() // index of the next lost hour, counted over measured hours
	var off int64
	for _, sp := range spans {
		n := sp.Hours()
		cur := sp
		for loss < off+n {
			h := sp.Start + (loss - off)
			if h > cur.Start {
				left := cur
				left.End = h - 1
				out = append(out, left)
			}
			cur.Start = h + 1
			loss += 1 + nextGap()
		}
		if cur.Start <= cur.End {
			out = append(out, cur)
		}
		off += n
	}
	return out
}

// PrependTestAddr marks the first hours of a probe's IPv4 history with the
// RIPE test address, as probes tested before shipping show.
func PrependTestAddr(ser *Series) {
	if len(ser.V4) == 0 || ser.V4[0].Hours() < 3 {
		return
	}
	first := ser.V4[0]
	test := first
	test.End = first.Start + 1
	test.Echo = TestAddr
	rest := first
	rest.Start = first.Start + 2
	ser.V4 = append([]Span{test, rest}, ser.V4[1:]...)
}
