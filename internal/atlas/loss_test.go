package atlas

import (
	"reflect"
	"testing"

	"dynamips/internal/faultnet"
	"dynamips/internal/isp"
)

func lossSimResult(t *testing.T) *isp.Result {
	t.Helper()
	profs := isp.Profiles()
	res, err := isp.Run(isp.Config{
		Profile:     profs[0],
		Subscribers: 60,
		Hours:       6000,
		Seed:        1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func lossFleet(t *testing.T, res *isp.Result, drop float64) *Fleet {
	t.Helper()
	cfg := DefaultFleetConfig(30, 2)
	cfg.Faults = faultnet.Profile{Drop: drop}
	f, err := BuildFleet(res, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestDropEchoesDeterministic(t *testing.T) {
	res := lossSimResult(t)
	a := lossFleet(t, res, 0.1)
	b := lossFleet(t, res, 0.1)
	if !reflect.DeepEqual(a.Series, b.Series) {
		t.Fatal("identical seeds produced different lossy fleets")
	}
}

func TestDropEchoesZeroProfileChangesNothing(t *testing.T) {
	res := lossSimResult(t)
	clean := lossFleet(t, res, 0)
	base, err := BuildFleet(res, DefaultFleetConfig(30, 2))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(clean.Series, base.Series) {
		t.Fatal("zero-drop fault profile perturbed the fleet")
	}
}

func TestDropEchoesShrinksObservations(t *testing.T) {
	res := lossSimResult(t)
	base := lossFleet(t, res, 0)
	lossy := lossFleet(t, res, 0.3)
	var baseH, lossH int64
	for i := range base.Series {
		baseH += base.Series[i].ObservedHours()
		lossH += lossy.Series[i].ObservedHours()
		for _, sp := range lossy.Series[i].V4 {
			if sp.Start > sp.End {
				t.Fatalf("probe %d: inverted span %+v", i, sp)
			}
		}
	}
	if lossH >= baseH {
		t.Fatalf("30%% echo loss did not shrink observations: %d -> %d hours", baseH, lossH)
	}
	// The binomial expectation is 70% survival; allow a wide band.
	if f := float64(lossH) / float64(baseH); f < 0.6 || f > 0.8 {
		t.Fatalf("30%% loss left %.1f%% of hours, want ~70%%", 100*f)
	}
}

// TestDropEchoesSplitsDoNotFabricateValues asserts the lossy spans carry
// only values the clean spans carried, over sub-ranges of the clean
// spans: gaps remove observations, never invent them.
func TestDropEchoesSplitsDoNotFabricateValues(t *testing.T) {
	res := lossSimResult(t)
	base := lossFleet(t, res, 0)
	lossy := lossFleet(t, res, 0.2)
	for i := range base.Series {
		cover := base.Series[i].V4
		for _, sp := range lossy.Series[i].V4 {
			found := false
			for _, b := range cover {
				if sp.Start >= b.Start && sp.End <= b.End && sp.Echo == b.Echo && sp.Src == b.Src {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("probe %d: lossy span %+v not contained in any clean span", i, sp)
			}
		}
	}
}

func TestDropEchoesUnitGeometry(t *testing.T) {
	spans := []Span{{Start: 0, End: 99, Echo: TestAddr, Src: TestAddr}}
	out := dropEchoes(spans, 0.5, faultnet.NewStream(3, 0))
	var hours int64
	last := int64(-1)
	for _, sp := range out {
		if sp.Start > sp.End || sp.Start <= last {
			t.Fatalf("bad span order/geometry: %+v (prev end %d)", out, last)
		}
		last = sp.End
		hours += sp.Hours()
	}
	if hours >= 100 || hours == 0 {
		t.Fatalf("p=0.5 drop left %d of 100 hours", hours)
	}
	if got := dropEchoes(spans, 1, faultnet.NewStream(3, 0)); got != nil {
		t.Fatalf("p=1 kept spans: %+v", got)
	}
	if got := dropEchoes(spans, 0, faultnet.NewStream(3, 0)); !reflect.DeepEqual(got, spans) {
		t.Fatalf("p=0 altered spans: %+v", got)
	}
}
