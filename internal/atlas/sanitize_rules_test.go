package atlas

import (
	"net/netip"
	"testing"

	"dynamips/internal/bgp"
	"dynamips/internal/obs"
)

// sanitizeRulesTable announces the two-AS topology every rule fixture
// lives in: the home AS 3320 and a foreign AS 64501.
func sanitizeRulesTable() *bgp.Table {
	table := &bgp.Table{}
	table.Announce(netip.MustParsePrefix("81.10.0.0/16"), 3320)
	table.Announce(netip.MustParsePrefix("203.0.113.0/24"), 64501)
	return table
}

// longSpan is a clean year-long home-AS observation.
func longSpan() []Span {
	return []Span{{Start: 0, End: 8759, Echo: netip.MustParseAddr("81.10.0.1")}}
}

// TestSanitizeRules enumerates every drop rule with one minimal fixture
// each, asserting both the drop decision (SanitizeResult.Drops) and the
// per-rule observability counter the pipeline dashboards read.
func TestSanitizeRules(t *testing.T) {
	home := netip.MustParseAddr("81.10.0.1")
	homeB := netip.MustParseAddr("81.10.0.9")
	foreign := netip.MustParseAddr("203.0.113.7")

	cases := []struct {
		name   string
		series Series
		reason string // expected drop reason ("" = survives)
		clean  int    // expected surviving series
		splits int    // expected virtual splits
	}{
		{
			name:   "clean probe survives",
			series: Series{Probe: Probe{ID: 1, ASN: 3320}, V4: longSpan()},
			clean:  1,
		},
		{
			name:   "short-duration",
			series: Series{Probe: Probe{ID: 2, ASN: 3320}, V4: []Span{{Start: 0, End: 99, Echo: home}}},
			reason: DropShort,
		},
		{
			name: "bad-tag",
			series: Series{
				Probe: Probe{ID: 3, ASN: 3320, Tags: []string{"system-anchor"}},
				V4:    longSpan(),
			},
			reason: DropBadTag,
		},
		{
			name: "atypical-nat public v4 src",
			series: Series{
				Probe: Probe{ID: 4, ASN: 3320},
				V4:    []Span{{Start: 0, End: 8759, Echo: home, Src: netip.MustParseAddr("81.10.0.2")}},
			},
			reason: DropAtypicalNAT,
		},
		{
			name: "atypical-nat v6 src differs from echo",
			series: Series{
				Probe: Probe{ID: 5, ASN: 3320},
				V4:    longSpan(),
				V6: []Span{{
					Start: 0, End: 8759,
					Echo: netip.MustParseAddr("2001:db8::1"),
					Src:  netip.MustParseAddr("2001:db8::2"),
				}},
			},
			reason: DropAtypicalNAT,
		},
		{
			name: "multihomed AS alternation",
			series: Series{
				Probe: Probe{ID: 6, ASN: 3320},
				V4: []Span{
					{Start: 0, End: 3000, Echo: home},
					{Start: 3001, End: 6000, Echo: foreign},
					{Start: 6001, End: 9000, Echo: homeB},
				},
			},
			reason: DropMultihomed,
		},
		{
			name: "multihomed address flip-flop",
			series: Series{
				Probe: Probe{ID: 7, ASN: 3320},
				V4: []Span{
					{Start: 0, End: 999, Echo: home},
					{Start: 1000, End: 1999, Echo: homeB},
					{Start: 2000, End: 2999, Echo: home},
					{Start: 3000, End: 3999, Echo: homeB},
					{Start: 4000, End: 4999, Echo: home},
					{Start: 5000, End: 5999, Echo: homeB},
					{Start: 6000, End: 6999, Echo: home},
					{Start: 7000, End: 7999, Echo: homeB},
				},
			},
			reason: DropMultihomed,
		},
		{
			name: "AS switch splits into virtual probes",
			series: Series{
				Probe: Probe{ID: 8, ASN: 3320},
				V4: []Span{
					{Start: 0, End: 4999, Echo: home},
					{Start: 5000, End: 9999, Echo: foreign},
				},
			},
			clean:  2,
			splits: 1,
		},
		{
			name: "AS switch with short remainder drops the short part",
			series: Series{
				Probe: Probe{ID: 9, ASN: 3320},
				V4: []Span{
					{Start: 0, End: 4999, Echo: home},
					{Start: 5000, End: 5099, Echo: foreign},
				},
			},
			reason: DropShort,
			clean:  1,
			splits: 1,
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			o := obs.NewObserver()
			cfg := DefaultSanitizeConfig()
			cfg.Obs = o
			res := Sanitize([]Series{tc.series}, sanitizeRulesTable(), cfg)

			wantDrops := 0
			if tc.reason != "" {
				wantDrops = 1
			}
			if got := res.Drops[tc.reason]; tc.reason != "" && got != wantDrops {
				t.Errorf("Drops[%s] = %d, want %d (all drops: %v)", tc.reason, got, wantDrops, res.Drops)
			}
			total := 0
			for _, n := range res.Drops {
				total += n
			}
			if total != wantDrops {
				t.Errorf("total drops = %d, want %d (%v)", total, wantDrops, res.Drops)
			}
			if len(res.Clean) != tc.clean {
				t.Errorf("clean = %d, want %d", len(res.Clean), tc.clean)
			}
			if res.VirtualSplits != tc.splits {
				t.Errorf("splits = %d, want %d", res.VirtualSplits, tc.splits)
			}

			// The per-rule counter must agree with the drop decision.
			if tc.reason != "" {
				if got := o.Counter("sanitize_drops", obs.L("reason", tc.reason)).Value(); got != int64(wantDrops) {
					t.Errorf("counter sanitize_drops{reason=%s} = %d, want %d", tc.reason, got, wantDrops)
				}
			}
			for _, reason := range []string{DropShort, DropBadTag, DropAtypicalNAT, DropMultihomed} {
				if reason == tc.reason {
					continue
				}
				if got := o.Counter("sanitize_drops", obs.L("reason", reason)).Value(); got != 0 {
					t.Errorf("counter sanitize_drops{reason=%s} = %d, want 0", reason, got)
				}
			}
			if got := o.Counter("sanitize_virtual_splits").Value(); got != int64(tc.splits) {
				t.Errorf("counter sanitize_virtual_splits = %d, want %d", got, tc.splits)
			}
			if got := o.Counter("sanitize_series_in").Value(); got != 1 {
				t.Errorf("counter sanitize_series_in = %d, want 1", got)
			}
			if got := o.Counter("sanitize_series_clean").Value(); got != int64(tc.clean) {
				t.Errorf("counter sanitize_series_clean = %d, want %d", got, tc.clean)
			}
		})
	}
}
