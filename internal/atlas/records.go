// Package atlas models the RIPE Atlas "IP echo" dataset (§3.1): probes in
// home networks perform hourly HTTP GETs against an echo server that
// returns the publicly visible client address in an X-Client-IP header.
//
// The package provides the record schema and JSONL codec, run-length
// encoded observation series, a real net/http echo server and probe
// client, a fleet generator that derives probe observations from
// internal/isp ground truth (with the anomaly types Appendix A.1
// describes), and the full sanitization pipeline from that appendix.
package atlas

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/netip"

	"dynamips/internal/netutil"
)

// TestAddr is the RIPE NCC address probes echoed while being tested before
// distribution; Appendix A.1 filters all entries carrying it.
var TestAddr = netip.MustParseAddr("193.0.0.78")

// Probe is one Atlas probe's metadata.
type Probe struct {
	ID           int      `json:"prb_id"`
	ASN          uint32   `json:"asn"`
	Tags         []string `json:"tags,omitempty"`
	SubscriberID int      `json:"subscriber_id"`
}

// Record is one hourly IP-echo measurement, the JSONL interchange unit.
type Record struct {
	ProbeID int        `json:"prb_id"`
	Hour    int64      `json:"hour"`
	Family  int        `json:"af"` // 4 or 6
	Echo    netip.Addr `json:"x_client_ip"`
	Src     netip.Addr `json:"src_addr"`
}

// Span is a run-length encoded stretch of identical hourly observations:
// the probe reported the same (Echo, Src) pair every hour in [Start, End].
type Span struct {
	Start int64      `json:"start"`
	End   int64      `json:"end"` // inclusive
	Echo  netip.Addr `json:"x_client_ip"`
	Src   netip.Addr `json:"src_addr"`
}

// Hours returns the number of hourly observations the span covers.
func (s Span) Hours() int64 { return s.End - s.Start + 1 }

// Prefix64 returns the /64 of the echoed address (IPv6 spans).
func (s Span) Prefix64() netip.Prefix { return netutil.Prefix64(s.Echo) }

// Series is one probe's full observation history, RLE per family.
type Series struct {
	Probe Probe  `json:"probe"`
	V4    []Span `json:"v4"`
	V6    []Span `json:"v6"`
}

// ObservedHours returns the total hours with at least one family observed,
// approximated as the max of the two families' coverage.
func (s *Series) ObservedHours() int64 {
	var h4, h6 int64
	for _, sp := range s.V4 {
		h4 += sp.Hours()
	}
	for _, sp := range s.V6 {
		h6 += sp.Hours()
	}
	return max(h4, h6)
}

// DualStack reports whether the probe yielded more than a month of both
// IPv4 and IPv6 measurements, the paper's dual-stack probe criterion
// (Table 1, fn. 3).
func (s *Series) DualStack(minHours int64) bool {
	var h4, h6 int64
	for _, sp := range s.V4 {
		h4 += sp.Hours()
	}
	for _, sp := range s.V6 {
		h6 += sp.Hours()
	}
	return h4 >= minHours && h6 >= minHours
}

// Expand converts a series to hourly records (both families interleaved by
// hour then family), the raw form of the public dataset.
func (s *Series) Expand() []Record {
	var recs []Record
	for _, sp := range s.V4 {
		for h := sp.Start; h <= sp.End; h++ {
			recs = append(recs, Record{ProbeID: s.Probe.ID, Hour: h, Family: 4, Echo: sp.Echo, Src: sp.Src})
		}
	}
	for _, sp := range s.V6 {
		for h := sp.Start; h <= sp.End; h++ {
			recs = append(recs, Record{ProbeID: s.Probe.ID, Hour: h, Family: 6, Echo: sp.Echo, Src: sp.Src})
		}
	}
	return recs
}

// Compress rebuilds RLE series from hourly records. Records may arrive in
// any order; output spans are maximal runs of identical (Echo, Src) at
// contiguous hours. Probe metadata beyond the ID is left zero — callers
// re-attach it from their probe table.
func Compress(recs []Record) []Series {
	type key struct {
		probe  int
		family int
	}
	byKey := make(map[key][]Record)
	for _, r := range recs {
		k := key{r.ProbeID, r.Family}
		byKey[k] = append(byKey[k], r)
	}
	byProbe := make(map[int]*Series)
	var order []int
	for k, rs := range byKey {
		// Insertion sort is avoided: sort by hour.
		sortRecords(rs)
		ser, ok := byProbe[k.probe]
		if !ok {
			ser = &Series{Probe: Probe{ID: k.probe}}
			byProbe[k.probe] = ser
			order = append(order, k.probe)
		}
		var spans []Span
		for _, r := range rs {
			n := len(spans)
			if n > 0 && spans[n-1].End+1 == r.Hour && spans[n-1].Echo == r.Echo && spans[n-1].Src == r.Src {
				spans[n-1].End = r.Hour
				continue
			}
			if n > 0 && spans[n-1].End >= r.Hour {
				continue // duplicate hour
			}
			spans = append(spans, Span{Start: r.Hour, End: r.Hour, Echo: r.Echo, Src: r.Src})
		}
		if k.family == 4 {
			ser.V4 = spans
		} else {
			ser.V6 = spans
		}
	}
	sortInts(order)
	out := make([]Series, 0, len(order))
	for _, id := range order {
		out = append(out, *byProbe[id])
	}
	return out
}

func sortRecords(rs []Record) {
	// Small helper kept allocation-free; hours are nearly sorted in
	// generated data, so insertion-style sort.Slice is fine.
	for i := 1; i < len(rs); i++ {
		for j := i; j > 0 && rs[j].Hour < rs[j-1].Hour; j-- {
			rs[j], rs[j-1] = rs[j-1], rs[j]
		}
	}
}

func sortInts(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// WriteRecords writes records as JSON lines.
func WriteRecords(w io.Writer, recs []Record) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i := range recs {
		if err := enc.Encode(&recs[i]); err != nil {
			return fmt.Errorf("atlas: encoding record %d: %w", i, err)
		}
	}
	return bw.Flush()
}

// ReadRecords parses JSON lines into records.
func ReadRecords(r io.Reader) ([]Record, error) {
	var recs []Record
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 4*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var rec Record
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			return nil, fmt.Errorf("atlas: line %d: %w", line, err)
		}
		recs = append(recs, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("atlas: reading records: %w", err)
	}
	return recs, nil
}

// WriteSeries writes RLE series as JSON lines (one series per line).
func WriteSeries(w io.Writer, series []Series) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i := range series {
		if err := enc.Encode(&series[i]); err != nil {
			return fmt.Errorf("atlas: encoding series %d: %w", i, err)
		}
	}
	return bw.Flush()
}

// ReadSeries parses JSONL series, validating each probe's span layout.
func ReadSeries(r io.Reader) ([]Series, error) {
	var out []Series
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 16*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var ser Series
		if err := json.Unmarshal(sc.Bytes(), &ser); err != nil {
			return nil, fmt.Errorf("atlas: line %d: %w", line, err)
		}
		if err := ValidateSeries(&ser); err != nil {
			return nil, fmt.Errorf("atlas: line %d: %w", line, err)
		}
		out = append(out, ser)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("atlas: reading series: %w", err)
	}
	return out, nil
}

// ValidateSeries checks the invariants every analysis assumes: spans
// sorted by start, non-overlapping, non-inverted, with valid echoed
// addresses of the right family.
func ValidateSeries(s *Series) error {
	check := func(spans []Span, family string, want4 bool) error {
		for i, sp := range spans {
			if sp.End < sp.Start {
				return fmt.Errorf("probe %d %s span %d inverted", s.Probe.ID, family, i)
			}
			if !sp.Echo.IsValid() {
				return fmt.Errorf("probe %d %s span %d has no echoed address", s.Probe.ID, family, i)
			}
			if sp.Echo.Unmap().Is4() != want4 {
				return fmt.Errorf("probe %d %s span %d wrong family: %v", s.Probe.ID, family, i, sp.Echo)
			}
			if i > 0 && sp.Start <= spans[i-1].End {
				return fmt.Errorf("probe %d %s spans %d/%d overlap or are unsorted", s.Probe.ID, family, i-1, i)
			}
		}
		return nil
	}
	if err := check(s.V4, "v4", true); err != nil {
		return err
	}
	return check(s.V6, "v6", false)
}
