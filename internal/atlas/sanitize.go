package atlas

import (
	"sort"

	"dynamips/internal/bgp"
	"dynamips/internal/obs"
)

// Drop reasons reported by Sanitize, matching Appendix A.1's filters.
const (
	DropShort       = "short-duration"
	DropBadTag      = "bad-tag"
	DropAtypicalNAT = "atypical-nat"
	DropMultihomed  = "multihomed"
)

// DefaultBadTags are the probe tags whose presence disqualifies a probe
// from the residential analysis (Appendix A.1).
var DefaultBadTags = []string{"multihomed", "datacentre", "core", "system-anchor"}

// SanitizeConfig tunes the pipeline.
type SanitizeConfig struct {
	// MinObservedHours is the minimum observation coverage; the paper
	// keeps probes that yielded measurements for at least a month.
	MinObservedHours int64
	// BadTags lists disqualifying probe tags (DefaultBadTags if nil).
	BadTags []string
	// Obs receives per-rule drop counters and split/series gauges. Nil
	// disables instrumentation.
	Obs *obs.Observer
}

// DefaultSanitizeConfig mirrors the paper: one month minimum coverage.
func DefaultSanitizeConfig() SanitizeConfig {
	return SanitizeConfig{MinObservedHours: 720}
}

// SanitizeResult is the pipeline outcome.
type SanitizeResult struct {
	// Clean holds the surviving series, each confined to a single AS,
	// sorted by probe ID. Virtual probes from AS-switch splitting carry
	// derived IDs (originalID*10 + part).
	Clean []Series
	// Drops counts filtered probes by reason.
	Drops map[string]int
	// VirtualSplits counts probes split into per-AS virtual probes.
	VirtualSplits int
}

// Sanitize applies the Appendix A.1 pipeline: strip test-address entries,
// drop short-lived probes, drop disqualifying tags, drop atypical NAT
// deployments, drop multihomed probes (alternating ASes or addresses), and
// split probes that permanently switched AS into virtual probes.
func Sanitize(in []Series, table *bgp.Table, cfg SanitizeConfig) SanitizeResult {
	if cfg.MinObservedHours <= 0 {
		cfg.MinObservedHours = 720
	}
	badTags := cfg.BadTags
	if badTags == nil {
		badTags = DefaultBadTags
	}
	res := SanitizeResult{Drops: make(map[string]int)}

	for _, ser := range in {
		s := ser
		s.V4 = stripTestAddr(s.V4)
		s.V6 = stripTestAddr(s.V6)

		if hasBadTag(s.Probe.Tags, badTags) {
			res.Drops[DropBadTag]++
			continue
		}
		if s.ObservedHours() < cfg.MinObservedHours {
			res.Drops[DropShort]++
			continue
		}
		if atypicalNAT(&s) {
			res.Drops[DropAtypicalNAT]++
			continue
		}
		seq4 := asnSequence(s.V4, table)
		seq6 := asnSequence(s.V6, table)
		if alternates(seq4) || alternates(seq6) || addrAlternates(s.V4) {
			res.Drops[DropMultihomed]++
			continue
		}
		switch {
		case len(seq4) > 1 || len(seq6) > 1:
			// Single A→B transition in at least one family: the owner
			// changed ISP. Split into one virtual probe per AS.
			parts := splitByASN(&s, table)
			res.VirtualSplits++
			for _, p := range parts {
				if p.ObservedHours() >= cfg.MinObservedHours {
					res.Clean = append(res.Clean, p)
				} else {
					res.Drops[DropShort]++
				}
			}
		default:
			if len(seq4) == 1 {
				s.Probe.ASN = seq4[0]
			} else if len(seq6) == 1 {
				s.Probe.ASN = seq6[0]
			}
			res.Clean = append(res.Clean, s)
		}
	}
	sort.Slice(res.Clean, func(i, j int) bool { return res.Clean[i].Probe.ID < res.Clean[j].Probe.ID })
	if o := cfg.Obs; o != nil {
		for reason, n := range res.Drops {
			o.Counter("sanitize_drops", obs.L("reason", reason)).Add(int64(n))
		}
		o.Counter("sanitize_virtual_splits").Add(int64(res.VirtualSplits))
		o.Counter("sanitize_series_in").Add(int64(len(in)))
		o.Counter("sanitize_series_clean").Add(int64(len(res.Clean)))
	}
	return res
}

func stripTestAddr(spans []Span) []Span {
	out := spans[:0:0]
	for _, sp := range spans {
		if sp.Echo != TestAddr {
			out = append(out, sp)
		}
	}
	return out
}

func hasBadTag(tags, bad []string) bool {
	for _, t := range tags {
		for _, b := range bad {
			if t == b {
				return true
			}
		}
	}
	return false
}

// atypicalNAT reports probes deployed outside the expected residential
// topology: IPv4 probes whose src_addr is already public (no home NAT), or
// IPv6 probes whose src_addr differs from the echoed address.
func atypicalNAT(s *Series) bool {
	for _, sp := range s.V4 {
		if sp.Src.IsValid() && !sp.Src.IsPrivate() {
			return true
		}
	}
	for _, sp := range s.V6 {
		if sp.Src.IsValid() && sp.Src != sp.Echo {
			return true
		}
	}
	return false
}

// asnSequence maps spans to origin ASNs and collapses consecutive
// duplicates. Unrouted addresses carry no attribution signal and are
// skipped: a transiently unrouted echo between two stretches of the home
// AS must not read as an A,0,A alternation (which would drop the probe as
// multihomed) or as an AS transition (which would split it).
func asnSequence(spans []Span, table *bgp.Table) []uint32 {
	var seq []uint32
	for _, sp := range spans {
		asn, _, ok := table.Origin(sp.Echo)
		if !ok {
			continue
		}
		if n := len(seq); n == 0 || seq[n-1] != asn {
			seq = append(seq, asn)
		}
	}
	return seq
}

// alternates reports whether an ASN recurs non-consecutively (A,B,A …),
// the signature of a multihomed deployment.
func alternates(seq []uint32) bool {
	seen := make(map[uint32]bool, len(seq))
	for _, a := range seq {
		if seen[a] {
			return true
		}
		seen[a] = true
	}
	return false
}

// addrAlternates reports sustained flip-flopping between addresses
// (x, y, x consecutive triples), the signature of a multihomed deployment
// whose both links sit in the same AS. Dynamic pools do occasionally
// re-issue a subscriber's old address, so a handful of returns is normal;
// multihoming produces them for a large share of the history.
func addrAlternates(spans []Span) bool {
	if len(spans) < 8 {
		return false
	}
	returns := 0
	for i := 2; i < len(spans); i++ {
		if spans[i].Echo == spans[i-2].Echo && spans[i].Echo != spans[i-1].Echo {
			returns++
		}
	}
	return returns >= 4 && returns*4 >= len(spans)
}

// splitByASN splits a series at AS transitions, producing one virtual probe
// per AS (Appendix A.1: 2,517 probes became per-AS virtual probes).
// Unrouted spans are discarded rather than collected into a fictitious
// AS-0 virtual probe.
func splitByASN(s *Series, table *bgp.Table) []Series {
	type bucket struct {
		v4, v6 []Span
	}
	buckets := map[uint32]*bucket{}
	var order []uint32
	add := func(sp Span, v6 bool) {
		asn, _, ok := table.Origin(sp.Echo)
		if !ok {
			return
		}
		b, ok := buckets[asn]
		if !ok {
			b = &bucket{}
			buckets[asn] = b
			order = append(order, asn)
		}
		if v6 {
			b.v6 = append(b.v6, sp)
		} else {
			b.v4 = append(b.v4, sp)
		}
	}
	for _, sp := range s.V4 {
		add(sp, false)
	}
	for _, sp := range s.V6 {
		add(sp, true)
	}
	out := make([]Series, 0, len(order))
	for i, asn := range order {
		p := s.Probe
		p.ID = s.Probe.ID*10 + i + 1
		p.ASN = asn
		out = append(out, Series{Probe: p, V4: buckets[asn].v4, V6: buckets[asn].v6})
	}
	return out
}
