package atlas

import (
	"context"
	"testing"
)

func TestProberEndToEnd(t *testing.T) {
	srv, err := StartEchoServer("127.0.0.1:0")
	if err != nil {
		t.Fatalf("StartEchoServer: %v", err)
	}
	defer srv.Close()
	p := &Prober{
		ProbeID: 42,
		Family:  4,
		Client:  &EchoClient{URL: srv.URL()},
		Src:     privateProbeSrc,
	}
	ctx := context.Background()
	for h := int64(0); h < 5; h++ {
		rec, err := p.MeasureAt(ctx, h)
		if err != nil {
			t.Fatalf("MeasureAt(%d): %v", h, err)
		}
		if !rec.Echo.IsLoopback() {
			t.Fatalf("echoed %v", rec.Echo)
		}
		if rec.Src != privateProbeSrc {
			t.Fatalf("src = %v", rec.Src)
		}
	}
	if len(p.Records()) != 5 {
		t.Fatalf("records = %d", len(p.Records()))
	}
	ser := p.Series()
	if ser.Probe.ID != 42 {
		t.Errorf("series probe = %d", ser.Probe.ID)
	}
	// Five identical hourly measurements compress to one span.
	if len(ser.V4) != 1 || ser.V4[0].Hours() != 5 {
		t.Errorf("series spans = %+v", ser.V4)
	}
}

func TestProberWithoutClient(t *testing.T) {
	p := &Prober{ProbeID: 1, Family: 4}
	if _, err := p.MeasureAt(context.Background(), 0); err == nil {
		t.Error("prober without client measured")
	}
	if ser := p.Series(); ser.Probe.ID != 1 || len(ser.V4) != 0 {
		t.Errorf("empty series = %+v", ser)
	}
}

func TestProberV6SrcMirrorsEcho(t *testing.T) {
	srv, err := StartEchoServer("[::1]:0")
	if err != nil {
		t.Skip("IPv6 loopback unavailable:", err)
	}
	defer srv.Close()
	p := &Prober{ProbeID: 7, Family: 6, Client: &EchoClient{URL: srv.URL()}}
	rec, err := p.MeasureAt(context.Background(), 3)
	if err != nil {
		t.Fatalf("MeasureAt: %v", err)
	}
	if rec.Src != rec.Echo {
		t.Errorf("v6 src %v != echo %v", rec.Src, rec.Echo)
	}
}
